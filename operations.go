package dcnr

// This file exposes the operational-analysis layer: traffic routing and
// congestion studies (§3.1/§3.2), maintenance and configuration practices
// (§5.1/§5.2), and the fault-injection drills of §5.7.

import (
	"dcnr/internal/capacity"
	"dcnr/internal/drill"
	"dcnr/internal/fleet"
	"dcnr/internal/ops"
	"dcnr/internal/optical"
	"dcnr/internal/routing"
	"dcnr/internal/service"
	"dcnr/internal/simrand"
	"dcnr/internal/topology"
	"dcnr/internal/traffic"
	"dcnr/internal/wan"
)

// Network is the device graph the routing, impact, and drill layers
// operate on.
type Network = topology.Network

// ClusterSpec and FabricSpec size data center builds.
type (
	ClusterSpec = topology.ClusterSpec
	FabricSpec  = topology.FabricSpec
)

// NewNetwork returns an empty device graph.
func NewNetwork() *Network { return topology.NewNetwork() }

// BuildCluster constructs a cluster-design data center inside n and
// returns its core device names.
func BuildCluster(n *Network, spec ClusterSpec) ([]string, error) {
	return topology.BuildCluster(n, spec)
}

// BuildFabric constructs a fabric-design data center inside n and returns
// its core device names.
func BuildFabric(n *Network, spec FabricSpec) ([]string, error) {
	return topology.BuildFabric(n, spec)
}

// InterconnectCores links every core in a to every core in b.
func InterconnectCores(n *Network, a, b []string) error {
	return topology.InterconnectCores(n, a, b)
}

// ReferenceTopology returns the compact two-data-center network (one
// cluster DC, one fabric DC) used throughout the impact, traffic, and
// drill analyses.
func ReferenceTopology() (*Network, error) { return fleet.RepresentativeTopology() }

// Demand is a directed traffic demand in Gb/s.
type Demand = routing.Demand

// Router routes demands over a network with failures.
type Router = routing.Router

// NewRouter returns a Router over net with every device up.
func NewRouter(net *Network) *Router { return routing.New(net) }

// TrafficConfig sizes a generated demand matrix.
type TrafficConfig = traffic.Config

// TrafficReport summarizes network load under one failure scenario.
type TrafficReport = traffic.Report

// GenerateTraffic builds the §3.2 demand matrix (user-facing + cross-DC
// bulk) for net, deterministically in seed.
func GenerateTraffic(net *Network, cfg TrafficConfig, seed uint64) ([]Demand, error) {
	return traffic.Generate(net, cfg, simrand.New(seed))
}

// StudyTraffic routes demands with the given devices failed (after core
// failover reassignment) and reports load, congestion, and lost volume.
func StudyTraffic(net *Network, demands []Demand, down map[string]bool) TrafficReport {
	return traffic.Study(net, demands, down)
}

// Reassign retargets demands whose core endpoint is down to a surviving
// core in the same data center — the BGP/edge failover behaviour.
func Reassign(net *Network, demands []Demand, down map[string]bool) []Demand {
	return traffic.Reassign(net, demands, down)
}

// Impact assessment.

// FaultScope describes how much of a redundancy group a failure consumed.
type FaultScope = service.Scope

// Fault scopes, in increasing blast radius.
const (
	ScopeDevice = service.ScopeDevice
	ScopeGroup  = service.ScopeGroup
	ScopeUnit   = service.ScopeUnit
)

// ImpactAssessment is the topology-derived verdict on a failure.
type ImpactAssessment = service.Assessment

// ImpactAssessor evaluates failures against a topology.
type ImpactAssessor = service.Assessor

// NewImpactAssessor builds an assessor over net.
func NewImpactAssessor(net *Network) *ImpactAssessor { return service.NewAssessor(net) }

// Maintenance and configuration operations.

// DrainPolicy selects how maintenance handles live traffic.
type DrainPolicy = ops.DrainPolicy

// Drain policies.
const (
	NoDrain    = ops.NoDrain
	DrainFirst = ops.DrainFirst
)

// MaintenanceScheduler performs rolling maintenance over redundancy groups.
type MaintenanceScheduler = ops.Scheduler

// MaintenanceReport records one rolling-maintenance run.
type MaintenanceReport = ops.MaintenanceReport

// NewMaintenanceScheduler returns a scheduler assessing mishaps against the
// assessor, seeded deterministically.
func NewMaintenanceScheduler(assessor *ImpactAssessor, seed uint64) (*MaintenanceScheduler, error) {
	return ops.NewScheduler(assessor, simrand.New(seed))
}

// ConfigChange is a configuration change heading for the fleet.
type ConfigChange = ops.Change

// ConfigGuard is the change-deployment pipeline (review + canary).
type ConfigGuard = ops.Guard

// NewConfigGuard returns the guarded pipeline §5.1 describes.
func NewConfigGuard(canarySize int) ConfigGuard { return ops.NewGuard(canarySize) }

// UnguardedConfig returns a pipeline with no protections.
func UnguardedConfig() ConfigGuard { return ops.Unguarded() }

// ConfigBlastStudy deploys n faulty changes and returns the mean number of
// devices each misconfigured.
func ConfigBlastStudy(g ConfigGuard, n, fleetSize int, seed uint64) (float64, error) {
	return ops.BlastStudy(g, n, fleetSize, simrand.New(seed))
}

// Drills (§5.7).

// DrillScenario is one injected failure.
type DrillScenario = drill.Scenario

// DrillCriteria grades a drill.
type DrillCriteria = drill.Criteria

// DrillResult is a graded drill outcome.
type DrillResult = drill.Result

// DrillRunner executes drills against a topology and demand matrix.
type DrillRunner = drill.Runner

// DefaultDrillCriteria tolerates a single stranded rack, 2% lost volume,
// and 95% peak utilization.
func DefaultDrillCriteria() DrillCriteria { return drill.DefaultCriteria() }

// NewDrillRunner validates demands and returns a runner.
func NewDrillRunner(net *Network, demands []Demand, criteria DrillCriteria) (*DrillRunner, error) {
	return drill.NewRunner(net, demands, criteria)
}

// StandardDrills builds the §5.7 suite: a single-device outage per type
// plus a disconnect drill per data center.
func StandardDrills(net *Network) ([]DrillScenario, error) { return drill.StandardDrills(net) }

// DataCenterDisconnect builds the paper's headline drill for one DC.
func DataCenterDisconnect(net *Network, dc string) (DrillScenario, error) {
	return drill.DataCenterDisconnect(net, dc)
}

// WAN traffic engineering (§3.2's cross-DC backbone).

// WANConfig sizes the engineered backbone.
type WANConfig = wan.Config

// WANBackbone is the plane-partitioned cross-DC backbone.
type WANBackbone = wan.Backbone

// WANDemand is a region-pair traffic demand.
type WANDemand = wan.Demand

// WANReport is a traffic-engineering outcome.
type WANReport = wan.Report

// NewWANBackbone builds the four-plane backbone of §3.2.
func NewWANBackbone(cfg WANConfig) (*WANBackbone, error) { return wan.New(cfg) }

// Optical layer (§3.2's circuits → segments → channels hierarchy).

// OpticalInventory is the physical layer beneath the backbone links.
type OpticalInventory = optical.Inventory

// OpticalSegment is one physical fiber span.
type OpticalSegment = optical.Segment

// OpticalMedium is a segment's physical environment.
type OpticalMedium = optical.Medium

// Optical media.
const (
	Terrestrial = optical.Terrestrial
	Submarine   = optical.Submarine
)

// BuildOpticalInventory derives the optical layer for a backbone topology:
// a shared last-mile conduit per edge (the shared-risk group behind
// correlated cuts) plus diverse long-haul spans per link.
func BuildOpticalInventory(topo *BackboneTopology, seed uint64) *OpticalInventory {
	return optical.BuildInventory(topo, seed)
}

// Capacity planning (§5.2's N+1 core provisioning, §6.1's four-nines rule).

// CapacityPlan is a provisioning recommendation.
type CapacityPlan = capacity.Plan

// FourNines is the §6.1 availability planning target (99.99%).
const FourNines = capacity.FourNines

// DeviceUnavailability returns steady-state unavailability from MTBF and
// MTTR in hours.
func DeviceUnavailability(mtbf, mttr float64) (float64, error) {
	return capacity.Unavailability(mtbf, mttr)
}

// GroupRisk returns the probability a redundancy group of n devices has
// more than spare devices down at once.
func GroupRisk(n, spare int, unavailability float64) (float64, error) {
	return capacity.GroupRisk(n, spare, unavailability)
}

// ProvisionGroup sizes a redundancy group to keep the risk of losing more
// than its spares below maxRisk.
func ProvisionGroup(need int, unavailability, maxRisk float64) (CapacityPlan, error) {
	return capacity.Provision(need, unavailability, maxRisk)
}
