package dcnr

// One benchmark per table and figure of the paper's evaluation (see
// DESIGN.md's per-experiment index). Dataset generation happens once,
// outside the timed region; each benchmark times the analysis that
// regenerates its artifact. cmd/repro prints the same rows.

import (
	"sync"
	"testing"

	"dcnr/internal/des"
	"dcnr/internal/remediation"
	"dcnr/internal/simrand"
)

var (
	benchOnce  sync.Once
	benchIntra *IntraResult
	benchInter *BackboneResult
	benchErr   error
)

func benchData(b *testing.B) (*IntraResult, *BackboneResult) {
	b.Helper()
	benchOnce.Do(func() {
		benchIntra, benchErr = SimulateIntraDC(IntraConfig{Seed: 20181031})
		if benchErr != nil {
			return
		}
		cfg := DefaultBackboneConfig()
		cfg.Seed = 20161001
		benchInter, benchErr = SimulateBackbone(cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchIntra, benchInter
}

// BenchmarkTable1AutomatedRepair times the automated repair engine itself:
// fault submission through priority assignment, wait scheduling, and
// outcome delivery (Table 1's machinery).
func BenchmarkTable1AutomatedRepair(b *testing.B) {
	sim := &des.Simulator{}
	engine := remediation.NewEngine(sim, simrand.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Submit(RSW, remediation.PortPingFailure, func(remediation.Outcome) {})
		if i%1024 == 0 {
			sim.Run(sim.Now() + 1e6)
		}
	}
	sim.Run(1e18)
	st := engine.Stats()[RSW]
	if st.Issues != b.N {
		b.Fatalf("issues = %d, want %d", st.Issues, b.N)
	}
	b.ReportMetric(st.RepairRatio(), "repair-ratio")
}

func BenchmarkTable2RootCauses(b *testing.B) {
	intra, _ := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist := intra.Analysis.RootCauseDistribution()
		if len(dist) == 0 {
			b.Fatal("empty distribution")
		}
	}
}

func BenchmarkTable3SevLevels(b *testing.B) {
	intra, _ := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range Severities {
			if intra.Store.Query().Year(2017).Severity(s).Count() < 0 {
				b.Fatal("impossible")
			}
		}
	}
}

func BenchmarkTable4Continents(b *testing.B) {
	_, inter := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := inter.Analysis.ByContinent()
		if len(rows) != len(Continents) {
			b.Fatal("missing continents")
		}
	}
}

func BenchmarkFig2RootCauseByDevice(b *testing.B) {
	intra, _ := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(intra.Analysis.RootCauseByDevice()) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig3IncidentRate(b *testing.B) {
	intra, _ := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for y := FirstYear; y <= LastYear; y++ {
			if intra.Analysis.IncidentRate(y) == nil {
				b.Fatal("nil rates")
			}
		}
	}
}

func BenchmarkFig4SevByDevice(b *testing.B) {
	intra, _ := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(intra.Analysis.SeverityBreakdown(2017)) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig5SevRateOverTime(b *testing.B) {
	intra, _ := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(intra.Analysis.SevRatePerDevice()) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig6SwitchesVsEmployees(b *testing.B) {
	intra, _ := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(intra.Analysis.SwitchesVsEmployees()) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig7IncidentFractions(b *testing.B) {
	intra, _ := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(intra.Analysis.IncidentFractions()) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig8NormalizedIncidents(b *testing.B) {
	intra, _ := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(intra.Analysis.NormalizedIncidents(2017)) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig9DesignIncidents(b *testing.B) {
	intra, _ := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(intra.Analysis.DesignIncidents(2017)) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig10DesignRate(b *testing.B) {
	intra, _ := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(intra.Analysis.DesignRate()) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig11Population(b *testing.B) {
	intra, _ := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(intra.Analysis.PopulationBreakdown()) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig12MTBI(b *testing.B) {
	intra, _ := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for y := FirstYear; y <= LastYear; y++ {
			if intra.Analysis.MTBI(y) == nil {
				b.Fatal("nil MTBI")
			}
		}
	}
}

func BenchmarkFig13P75IRT(b *testing.B) {
	intra, _ := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for y := FirstYear; y <= LastYear; y++ {
			if intra.Analysis.P75IRT(y) == nil {
				b.Fatal("nil p75IRT")
			}
		}
	}
}

func BenchmarkFig14IRTvsScale(b *testing.B) {
	intra, _ := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(intra.Analysis.IRTvsScale()) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig15EdgeMTBF(b *testing.B) {
	_, inter := benchData(b)
	b.ResetTimer()
	var fit ExpFit
	for i := 0; i < b.N; i++ {
		var err error
		fit, err = FitCurve(inter.Analysis.EdgeMTBF())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fit.R2, "R2")
}

func BenchmarkFig16EdgeMTTR(b *testing.B) {
	_, inter := benchData(b)
	b.ResetTimer()
	var fit ExpFit
	for i := 0; i < b.N; i++ {
		var err error
		fit, err = FitCurve(inter.Analysis.EdgeMTTR())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fit.R2, "R2")
}

func BenchmarkFig17VendorMTBF(b *testing.B) {
	_, inter := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(inter.Analysis.VendorMTBF()) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig18VendorMTTR(b *testing.B) {
	_, inter := benchData(b)
	b.ResetTimer()
	var fit ExpFit
	for i := 0; i < b.N; i++ {
		var err error
		fit, err = FitCurve(inter.Analysis.VendorMTTR())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fit.R2, "R2")
}

// BenchmarkAblationRemediation runs the full 2017 counterfactual pair per
// iteration (§5.6): the heaviest experiment, reported as whole-run time.
func BenchmarkAblationRemediation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on, err := SimulateIntraDC(IntraConfig{Seed: 11, FromYear: 2017, ToYear: 2017})
		if err != nil {
			b.Fatal(err)
		}
		off, err := SimulateIntraDC(IntraConfig{Seed: 11, FromYear: 2017, ToYear: 2017, DisableRemediation: true})
		if err != nil {
			b.Fatal(err)
		}
		if off.Incidents <= on.Incidents {
			b.Fatal("ablation had no effect")
		}
		if i == 0 {
			b.ReportMetric(float64(off.Incidents)/float64(on.Incidents), "incident-increase-x")
		}
	}
}

// BenchmarkAblationRedundancy times topology-derived impact assessment
// across all device types and scopes (§5.2/§5.4's redundancy arguments).
func BenchmarkAblationRedundancy(b *testing.B) {
	intra, _ := benchData(b)
	_ = intra
	net, err := newBenchTopology()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := assessAllScopes(net); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateIntraDC and BenchmarkSimulateBackbone time dataset
// generation itself — the substrate every experiment rests on.
func BenchmarkSimulateIntraDC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := SimulateIntraDC(IntraConfig{Seed: uint64(i), FromYear: 2017, ToYear: 2017})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Faults), "faults/run")
		}
	}
}

func BenchmarkSimulateBackbone(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultBackboneConfig()
		cfg.Seed = uint64(i)
		res, err := SimulateBackbone(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(res.Notices)), "notices/run")
		}
	}
}

// SEV query-engine benches: the indexed store paths the per-figure
// analyses ride on (point lookups, posting-list intersections, one-pass
// grouped aggregations).

func BenchmarkSevQueryIndexedCount(b *testing.B) {
	intra, _ := benchData(b)
	store := intra.Store
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if store.Query().Year(2017).Severity(Sev3).Count() < 0 {
			b.Fatal("impossible")
		}
	}
}

func BenchmarkSevQueryGroupedCounts(b *testing.B) {
	intra, _ := benchData(b)
	store := intra.Store
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(store.Query().CountByYearDeviceType()) == 0 {
			b.Fatal("empty")
		}
		if len(store.Query().CountByYearSeverity()) == 0 {
			b.Fatal("empty")
		}
	}
}

// Ingest benches: the per-report Add path (a sorted insert into the
// start-time index per report) against the batched AddAll path (one
// index build per batch) over the same simulated dataset.

func benchIngestReports(b *testing.B) []SEVReport {
	intra, _ := benchData(b)
	reports := intra.Store.All()
	for i := range reports {
		reports[i].ID = 0
	}
	return reports
}

func BenchmarkSevQueryIngestAdd(b *testing.B) {
	reports := benchIngestReports(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store := NewSEVStore()
		for _, r := range reports {
			if _, err := store.Add(r); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(reports)), "reports/op")
}

func BenchmarkSevQueryIngestAddAll(b *testing.B) {
	reports := benchIngestReports(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store := NewSEVStore()
		if _, err := store.AddAll(reports); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(reports)), "reports/op")
}

// BenchmarkReproFanOut measures the all-experiments fan-out speedup the
// repro runner exposes: the same 21 analysis regenerations serial vs on a
// bounded pool.
func BenchmarkReproFanOut(b *testing.B) {
	intra, inter := benchData(b)
	tasks := []func() error{
		func() error { intra.Analysis.RootCauseDistribution(); return nil },
		func() error { intra.Analysis.RootCauseByDevice(); return nil },
		func() error { intra.Analysis.SeverityBreakdown(2017); return nil },
		func() error { intra.Analysis.SevRatePerDevice(); return nil },
		func() error { intra.Analysis.IncidentFractions(); return nil },
		func() error { intra.Analysis.NormalizedIncidents(2017); return nil },
		func() error { intra.Analysis.DesignIncidents(2017); return nil },
		func() error { intra.Analysis.DesignRate(); return nil },
		func() error { intra.Analysis.PopulationBreakdown(); return nil },
		func() error { intra.Analysis.IRTvsScale(); return nil },
		func() error {
			for y := FirstYear; y <= LastYear; y++ {
				intra.Analysis.MTBI(y)
				intra.Analysis.P75IRT(y)
				intra.Analysis.IncidentRate(y)
			}
			return nil
		},
		func() error { _, err := FitCurve(inter.Analysis.EdgeMTBF()); return err },
		func() error { _, err := FitCurve(inter.Analysis.EdgeMTTR()); return err },
		func() error { _, err := FitCurve(inter.Analysis.VendorMTTR()); return err },
		func() error { inter.Analysis.ByContinent(); return nil },
	}
	for _, workers := range []int{1, 4} {
		name := "serial"
		if workers > 1 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := RunLimit(workers, len(tasks), func(j int) error { return tasks[j]() }); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Operational benches: the mechanisms behind §3.1, §5.1, §5.2, and §5.7.

func BenchmarkCongestionAfterFailure(b *testing.B) {
	net, err := ReferenceTopology()
	if err != nil {
		b.Fatal(err)
	}
	demands, err := GenerateTraffic(net, TrafficConfig{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	down := map[string]bool{net.DevicesOfType(CSW)[0].Name: true}
	b.ResetTimer()
	var rep TrafficReport
	for i := 0; i < b.N; i++ {
		rep = StudyTraffic(net, demands, down)
	}
	b.ReportMetric(rep.MaxUtilization, "peak-util")
}

func BenchmarkAblationDrainPolicy(b *testing.B) {
	net, err := ReferenceTopology()
	if err != nil {
		b.Fatal(err)
	}
	var group []string
	unit := net.DevicesOfType(CSW)[0].Unit
	for _, d := range net.DevicesOfType(CSW) {
		if d.Unit == unit {
			group = append(group, d.Name)
		}
	}
	sched, err := NewMaintenanceScheduler(NewImpactAssessor(net), 1)
	if err != nil {
		b.Fatal(err)
	}
	sched.MishapProb = 1
	b.ResetTimer()
	incidents := [2]int{}
	for i := 0; i < b.N; i++ {
		for pi, policy := range []DrainPolicy{NoDrain, DrainFirst} {
			rep, err := sched.RollingMaintenance(group, policy)
			if err != nil {
				b.Fatal(err)
			}
			incidents[pi] += rep.IncidentCount()
		}
	}
	if incidents[1] != 0 {
		b.Fatalf("drained maintenance caused %d incidents", incidents[1])
	}
}

func BenchmarkAblationConfigGuard(b *testing.B) {
	var guarded, unguarded float64
	for i := 0; i < b.N; i++ {
		var err error
		guarded, err = ConfigBlastStudy(NewConfigGuard(10), 200, 10000, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		unguarded, err = ConfigBlastStudy(UnguardedConfig(), 200, 10000, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(unguarded/guarded, "blast-reduction-x")
}

func BenchmarkDrillSuite(b *testing.B) {
	net, err := ReferenceTopology()
	if err != nil {
		b.Fatal(err)
	}
	demands, err := GenerateTraffic(net, TrafficConfig{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	runner, err := NewDrillRunner(net, demands, DefaultDrillCriteria())
	if err != nil {
		b.Fatal(err)
	}
	scenarios, err := StandardDrills(net)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := runner.RunAll(scenarios)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(scenarios) {
			b.Fatal("missing results")
		}
	}
}

// BenchmarkWANReroute times the §3.2 traffic engineer under a three-plane
// fiber cut.
func BenchmarkWANReroute(b *testing.B) {
	bb, err := NewWANBackbone(WANConfig{Regions: []string{"east", "central", "west"}})
	if err != nil {
		b.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		if err := bb.SetLinkDown("east", "west", p, true); err != nil {
			b.Fatal(err)
		}
	}
	demands := []WANDemand{
		{From: "east", To: "west", Gbps: 900},
		{From: "east", To: "central", Gbps: 300},
	}
	b.ResetTimer()
	var rep WANReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = bb.Engineer(demands)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.MeanPathHops, "mean-hops")
}
