package dcnr_test

import (
	"fmt"
	"log"

	"dcnr"
)

// ExampleSimulateIntraDC runs the seven-year intra-data-center study and
// prints the 2017 incident shares of the two headline device types.
func ExampleSimulateIntraDC() {
	res, err := dcnr.SimulateIntraDC(dcnr.IntraConfig{Seed: 20181031})
	if err != nil {
		log.Fatal(err)
	}
	fr := res.Analysis.IncidentFractions()[2017]
	fmt.Printf("Core %.0f%% RSW %.0f%%\n", 100*fr[dcnr.Core], 100*fr[dcnr.RSW])
	// Output: Core 36% RSW 25%
}

// ExampleSimulateBackbone fits the edge-MTBF exponential model of §6.1.
func ExampleSimulateBackbone() {
	cfg := dcnr.DefaultBackboneConfig()
	cfg.Seed = 20161001
	res, err := dcnr.SimulateBackbone(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fit, err := dcnr.FitCurve(res.Analysis.EdgeMTBF())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("B = %.2f\n", fit.B)
	// Output: B = 2.35
}

// ExampleParseDeviceName shows the §4.3.1 naming-convention classifier.
func ExampleParseDeviceName() {
	dt, err := dcnr.ParseDeviceName("rsw042.pod007.dc3.regionb")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(dt, dt.Design(), dcnr.RemediationSupported(dt))
	// Output: RSW Shared true
}

// ExampleNewImpactAssessor demonstrates topology-derived severity: the
// same switch is harmless alone and an outage as a group cascade.
func ExampleNewImpactAssessor() {
	net, err := dcnr.ReferenceTopology()
	if err != nil {
		log.Fatal(err)
	}
	assessor := dcnr.NewImpactAssessor(net)
	csw := net.DevicesOfType(dcnr.CSW)[0].Name
	isolated, _ := assessor.Assess(csw, dcnr.ScopeDevice)
	cascade, _ := assessor.Assess(csw, dcnr.ScopeUnit)
	fmt.Println(isolated.Severity, cascade.Severity)
	// Output: SEV3 SEV1
}

// ExampleFitExponential fits the paper's §6.1 model form to a percentile
// curve.
func ExampleFitExponential() {
	metric := map[string]float64{
		"edge1": 500, "edge2": 800, "edge3": 1300, "edge4": 2100, "edge5": 3400,
	}
	fit, err := dcnr.FitCurve(metric)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("R2 > 0.9: %v\n", fit.R2 > 0.9)
	// Output: R2 > 0.9: true
}

// ExampleProvisionGroup recovers §5.2's eight-core design point from the
// measured Core reliability.
func ExampleProvisionGroup() {
	u, err := dcnr.DeviceUnavailability(39495, 30) // Core MTBI / repair hours
	if err != nil {
		log.Fatal(err)
	}
	plan, err := dcnr.ProvisionGroup(7, u, dcnr.FourNines)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("provision %d cores (%d spare)\n", plan.Provision, plan.Spares())
	// Output: provision 8 cores (1 spare)
}

// ExampleNewWANBackbone shows §3.2's reroute-on-cut behaviour.
func ExampleNewWANBackbone() {
	bb, err := dcnr.NewWANBackbone(dcnr.WANConfig{Regions: []string{"east", "central", "west"}})
	if err != nil {
		log.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		if err := bb.SetLinkDown("east", "west", p, true); err != nil {
			log.Fatal(err)
		}
	}
	rep, err := bb.Engineer([]dcnr.WANDemand{{From: "east", To: "west", Gbps: 100}})
	if err != nil {
		log.Fatal(err)
	}
	f := rep.Flows[0]
	fmt.Printf("rerouted %.0f Gb/s via %s, dropped %.0f\n", f.ReroutedGbps, f.Via, f.DroppedGbps)
	// Output: rerouted 100 Gb/s via central, dropped 0
}
