// Command repro regenerates every table and figure of the paper's
// evaluation from a simulated dataset.
//
// Usage:
//
//	repro [-experiment id] [-seed N] [-scale N] [-format text|csv]
//	      [-parallel N] [-metrics-addr ADDR] [-trace FILE] [-list]
//	repro -verify [-seed N]
//	repro -sweep-report FILE
//
// Without -experiment, all experiments run across a bounded worker pool
// (-parallel, default one worker per CPU) and print in paper order:
// table1–table4, fig2–fig18, the ablations (remediation, redundancy,
// drain, config), and the operational studies (congestion, drill-suite,
// wan-reroute, optical-attribution), followed by a per-analysis wall-time
// footer. -verify grades the paper's headline claims and exits non-zero if
// any fails. -sweep-report diffs a dcsweep campaign report against the
// paper's Table 1 repair ratios and Table 2 root-cause mix, reporting for
// each whether the paper's point estimate falls inside the sweep's
// cross-run p5–p95 band.
//
// -metrics-addr serves runtime introspection over HTTP for the duration of
// the run: /debug/vars (expvar, including the simulation's metrics under
// "dcnr"), /metrics (Prometheus text format), /healthz (200 while no SLO
// alert rule is firing, 503 otherwise), /slo (the streaming health engine's
// full JSON report), /journal (the causal incident journal's summary —
// lifecycle counts and per-device-type MTTR phase decomposition, live as
// the intra-DC dataset builds), /metrics/history (the wall-clock metric
// timeline as JSONL, windowable with ?from=S&to=S&metric=NAME), its SSE
// companion /metrics/history/events (new sample blocks as they flush), and
// /debug/pprof/ (the standard profiling endpoints).
// -trace records a Chrome trace-event file
// covering the simulation's hot paths and every analysis task, loadable in
// chrome://tracing or Perfetto.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"dcnr"
	"dcnr/internal/faults"
	"dcnr/internal/report"
	"dcnr/internal/serve"
	"dcnr/internal/service"
	"dcnr/internal/topology"
)

func main() {
	var (
		experiment  = flag.String("experiment", "", "experiment id to run (default: all)")
		seed        = flag.Uint64("seed", 20181031, "simulation seed")
		scale       = flag.Int("scale", 1, "fleet population scale")
		list        = flag.Bool("list", false, "list experiment ids and exit")
		verify      = flag.Bool("verify", false, "grade the paper's headline claims and exit non-zero on failures")
		format      = flag.String("format", "text", "output format: text or csv")
		parallel    = flag.Int("parallel", runtime.NumCPU(), "worker pool size for the all-experiments run (1 = serial)")
		metricsAddr = flag.String("metrics-addr", "", "serve expvar, Prometheus, and pprof on this address (e.g. :8080) for the duration of the run")
		traceOut    = flag.String("trace", "", "write a Chrome trace-event file to this file")
		sweepReport = flag.String("sweep-report", "", "diff a dcsweep report's variance bands against the paper's values and exit")
	)
	flag.Parse()
	switch *format {
	case "text":
	case "csv":
		csvOutput = true
	default:
		fmt.Fprintf(os.Stderr, "repro: unknown -format %q\n", *format)
		os.Exit(1)
	}

	if *list {
		for _, id := range experimentOrder {
			fmt.Printf("%-22s %s\n", id, experiments[id].title)
		}
		return
	}
	if *sweepReport != "" {
		if err := runSweepDiff(os.Stdout, *sweepReport); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		return
	}

	d := &datasets{seed: *seed, scale: *scale}
	if *metricsAddr != "" {
		d.metrics = dcnr.NewMetricsRegistry()
		eng, err := dcnr.NewHealthEngine(dcnr.HealthTargetsForScale(*scale), nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		d.health = eng
		d.journal = dcnr.NewJournal()
		// A wall-clock timeline of the simulation's core series backs
		// /metrics/history: one sample per second of wall time, for as
		// long as the run lasts.
		tl := dcnr.NewTimeline(0)
		smp := dcnr.NewTimelineSampler(tl, "wall", d.metrics, faults.TimelineCounters, faults.TimelineGauges)
		shutdown, addr, err := startMetricsServer(*metricsAddr, d.metrics, d.health, d.journal, tl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		// Teardown order (defers run last-in-first-out): stop the sampler,
		// close the timeline so SSE streams end, then close the server and
		// join its goroutine.
		defer shutdown()
		defer tl.Close()
		stopSampler := smp.StartWall(time.Second)
		defer stopSampler()
		fmt.Fprintf(os.Stderr, "repro: introspection on http://%s (/debug/vars, /metrics, /healthz, /slo, /journal, /metrics/history, /debug/pprof/)\n", addr)
	}
	if *traceOut != "" {
		d.trace = dcnr.NewTracer()
	}

	if *verify {
		ok, err := runVerify(os.Stdout, d)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		if !ok {
			os.Exit(2)
		}
		return
	}
	if err := run(os.Stdout, *experiment, d, *parallel); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
	if *traceOut != "" {
		if err := writeTraceFile(*traceOut, d.trace); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "repro: trace: %d events → %s\n", d.trace.Len(), *traceOut)
	}
}

// startMetricsServer serves runtime introspection on addr until the
// returned shutdown function is called: the full internal/serve
// introspection suite — /debug/vars (expvar with the simulation's metrics
// published under "dcnr"), /metrics (Prometheus text exposition),
// /healthz and /slo (the SLO engine's liveness verdict and full JSON
// report; eng may be nil, which reads as permanently healthy), /journal
// (the causal journal's summary; jnl may be nil, which reads as an empty
// journal), /metrics/history and /metrics/history/events (the attached
// timeline's windowed JSONL history and SSE delta stream; tl may be nil,
// which serves empty histories), and /debug/pprof/. The shutdown function
// stops the server AND joins the serving goroutine — callers must invoke
// it so no goroutine outlives the run. The bound address is returned so
// callers can pass ":0" and discover the port.
func startMetricsServer(addr string, reg *dcnr.MetricsRegistry, eng *dcnr.HealthEngine, jnl *dcnr.Journal, tl *dcnr.Timeline) (func(), string, error) {
	srv := serve.New(serve.Options{
		Addr:          addr,
		Name:          "repro: metrics",
		Metrics:       reg,
		Health:        eng,
		Journal:       jnl,
		Timeline:      tl,
		Introspection: true,
	})
	bound, err := srv.Start()
	if err != nil {
		return nil, "", err
	}
	return srv.Shutdown, bound, nil
}

// writeTraceFile writes the trace to path, losing neither the write error
// nor the close error (a failed close is a truncated trace).
func writeTraceFile(path string, tr *dcnr.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return errors.Join(tr.WriteJSON(f), f.Close())
}

// runVerify prints the claims scoreboard and reports whether every claim
// held.
func runVerify(w io.Writer, d *datasets) (bool, error) {
	intra, err := d.intraDC()
	if err != nil {
		return false, err
	}
	inter, err := d.inter()
	if err != nil {
		return false, err
	}
	results := intra.Analysis.VerifyIntraClaims()
	results = append(results, inter.Analysis.VerifyInterClaims()...)
	t := &report.Table{
		Title:   fmt.Sprintf("Reproduction scoreboard (seed %d)", d.seed),
		Headers: []string{"Verdict", "Claim", "Measured"},
	}
	allPass := true
	for _, r := range results {
		verdict := "PASS"
		if !r.Pass {
			verdict = "FAIL"
			allPass = false
		}
		t.AddRow(verdict, r.Claim, r.Detail)
	}
	if err := t.Render(w); err != nil {
		return false, err
	}
	if _, err := fmt.Fprintf(w, "%d/%d claims reproduced\n", countPass(results), len(results)); err != nil {
		return false, err
	}
	return allPass, nil
}

func countPass(results []dcnr.ClaimResult) int {
	n := 0
	for _, r := range results {
		if r.Pass {
			n++
		}
	}
	return n
}

// datasets carries the lazily-built simulation outputs shared by the
// experiments. Builds are guarded by sync.Once so experiments running
// concurrently on the worker pool share one dataset per kind.
type datasets struct {
	seed  uint64
	scale int

	// metrics and trace, when non-nil, instrument the shared dataset
	// builds (and, for trace, the analysis fan-out in runAll). health
	// streams SLO state out of the intra-DC build for /healthz and /slo.
	metrics *dcnr.MetricsRegistry
	trace   *dcnr.Tracer
	health  *dcnr.HealthEngine
	journal *dcnr.Journal

	intraOnce sync.Once
	intra     *dcnr.IntraResult
	intraErr  error

	backboneOnce sync.Once
	backbone     *dcnr.BackboneResult
	backboneErr  error
}

func (d *datasets) intraDC() (*dcnr.IntraResult, error) {
	d.intraOnce.Do(func() {
		d.intra, d.intraErr = dcnr.SimulateIntraDC(dcnr.IntraConfig{
			Observe: dcnr.Observe{
				Metrics: d.metrics, Trace: d.trace,
				Health: d.health, Journal: d.journal,
			},
			Seed: d.seed, Scale: d.scale,
		})
	})
	return d.intra, d.intraErr
}

func (d *datasets) inter() (*dcnr.BackboneResult, error) {
	d.backboneOnce.Do(func() {
		cfg := dcnr.DefaultBackboneConfig()
		cfg.Seed = d.seed
		cfg.Metrics = d.metrics
		cfg.Trace = d.trace
		d.backbone, d.backboneErr = dcnr.SimulateBackbone(cfg)
	})
	return d.backbone, d.backboneErr
}

type experimentFunc func(d *datasets, w io.Writer) error

type experimentDef struct {
	title string
	run   experimentFunc
}

var experimentOrder = []string{
	"table1", "table2", "table3", "table4",
	"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
	"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
	"fig17", "fig18",
	"ablation-remediation", "ablation-redundancy",
	"congestion", "ablation-drain", "ablation-config", "drill-suite",
	"wan-reroute", "optical-attribution",
}

// experiments is populated by init (experiment functions read their own
// titles from the map, so a composite literal would be an init cycle).
var experiments map[string]experimentDef

func init() {
	experiments = map[string]experimentDef{
		"table1":               {"Table 1: automated repair ratios, priorities, waits, repair times", table1},
		"table2":               {"Table 2: root causes of intra-DC network incidents", table2},
		"table3":               {"Table 3: SEV levels with representative incidents", table3},
		"table4":               {"Table 4: edge distribution and reliability by continent", table4},
		"fig2":                 {"Figure 2: root cause distribution by device type", fig2},
		"fig3":                 {"Figure 3: incident rate per device type per year", fig3},
		"fig4":                 {"Figure 4: SEV level mix by device type (2017)", fig4},
		"fig5":                 {"Figure 5: SEVs per device over time by level", fig5},
		"fig6":                 {"Figure 6: normalized switches vs employees", fig6},
		"fig7":                 {"Figure 7: fraction of incidents per year by device type", fig7},
		"fig8":                 {"Figure 8: incidents per year normalized to total 2017 SEVs", fig8},
		"fig9":                 {"Figure 9: incidents by network design (normalized)", fig9},
		"fig10":                {"Figure 10: incidents per device by network design", fig10},
		"fig11":                {"Figure 11: population breakdown by device type", fig11},
		"fig12":                {"Figure 12: mean time between incidents (device-hours)", fig12},
		"fig13":                {"Figure 13: p75 incident resolution time (hours)", fig13},
		"fig14":                {"Figure 14: p75 resolution time vs fleet size", fig14},
		"fig15":                {"Figure 15: edge MTBF percentile curve and model", fig15},
		"fig16":                {"Figure 16: edge MTTR percentile curve and model", fig16},
		"fig17":                {"Figure 17: vendor MTBF percentile curve", fig17},
		"fig18":                {"Figure 18: vendor MTTR percentile curve and model", fig18},
		"ablation-remediation": {"Ablation: automated remediation on vs off (§5.6)", ablationRemediation},
		"ablation-redundancy":  {"Ablation: redundancy scope vs service impact (§5.2, §5.4)", ablationRedundancy},
		"congestion":           {"Congestion after failures (§3.1's slow-repair argument)", congestionStudy},
		"ablation-drain":       {"Ablation: drain-before-maintenance policy (§5.2)", ablationDrain},
		"ablation-config":      {"Ablation: config change review + canary (§5.1)", ablationConfig},
		"drill-suite":          {"Fault injection and disaster recovery drills (§5.7)", drillSuite},
		"wan-reroute":          {"WAN capacity loss and rerouting across optical planes (§3.2)", wanReroute},
		"optical-attribution":  {"Optical-layer failure attribution: segments and shared risk (§3.2)", opticalAttribution},
	}
}

func run(w io.Writer, id string, d *datasets, workers int) error {
	if id != "" {
		def, ok := experiments[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		return def.run(d, w)
	}
	return runAll(w, d, workers)
}

// Trace categories of the spans runAll records; the wall-time footer is
// rebuilt from them.
const (
	datasetCat  = "dataset"
	analysisCat = "analysis"
)

// buildNames labels the shared dataset builds in traces and the footer.
var buildNames = []string{"dataset: intra-DC", "dataset: backbone"}

// runAll regenerates every experiment across a bounded worker pool. The
// two shared datasets are built first as their own (possibly concurrent)
// timed tasks, so no experiment's measured time includes blocking on
// another worker's sync.Once build. Each experiment renders into its own
// buffer so output stays in paper order no matter which worker finished
// first.
//
// Timing is the trace recorder's job: every build and experiment runs
// under a per-task span (one trace lane per pool worker), and the footer
// table re-derives per-analysis wall time from the recorded spans. When
// -trace is set the same spans land in the exported file, so the footer
// and the trace viewer can never disagree.
func runAll(w io.Writer, d *datasets, workers int) error {
	tr := d.trace
	if tr == nil {
		// No export requested: a private tracer still carries the
		// footer's timings.
		tr = dcnr.NewTracer()
	}
	begin := time.Now()
	builds := []func() error{
		func() error { _, err := d.intraDC(); return err },
		func() error { _, err := d.inter(); return err },
	}
	if err := dcnr.RunLimitTraced(workers, len(builds), tr, datasetCat,
		func(i int) string { return buildNames[i] },
		func(i int) error { return builds[i]() }); err != nil {
		return err
	}
	bufs := make([]bytes.Buffer, len(experimentOrder))
	err := dcnr.RunLimitTraced(workers, len(experimentOrder), tr, analysisCat,
		func(i int) string { return experimentOrder[i] },
		func(i int) error {
			id := experimentOrder[i]
			if err := experiments[id].run(d, &bufs[i]); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			return nil
		})
	if err != nil {
		return err
	}
	elapsed := time.Since(begin)
	for i := range bufs {
		if _, err := w.Write(bufs[i].Bytes()); err != nil {
			return err
		}
	}
	return emitTimings(w, tr, elapsed, workers)
}

// emitTimings renders the per-analysis wall-time footer from the spans
// runAll recorded on tr (categories "dataset" and "analysis"; other
// categories — DES events, remediation intervals — are someone else's).
func emitTimings(w io.Writer, tr *dcnr.Tracer, elapsed time.Duration, workers int) error {
	durs := make(map[string]time.Duration)
	for _, e := range tr.Events() {
		if e.Phase == "X" && (e.Cat == datasetCat || e.Cat == analysisCat) {
			durs[e.Name] += time.Duration(e.Dur * float64(time.Microsecond))
		}
	}
	t := &report.Table{
		Title:   "Per-analysis wall time",
		Note:    "regeneration cost of each artifact, from trace spans; serial sum vs wall clock shows the fan-out speedup",
		Headers: []string{"Experiment", "Time"},
	}
	serial := time.Duration(0)
	for _, name := range buildNames {
		serial += durs[name]
		t.AddRow(name, durs[name].Round(time.Microsecond).String())
	}
	for _, id := range experimentOrder {
		serial += durs[id]
		t.AddRow(id, durs[id].Round(time.Microsecond).String())
	}
	t.AddRow("serial sum", serial.Round(time.Microsecond).String())
	t.AddRow(fmt.Sprintf("wall clock (%d workers)", workers), elapsed.Round(time.Microsecond).String())
	if elapsed > 0 {
		t.AddRow("speedup", fmt.Sprintf("%.2fx", float64(serial)/float64(elapsed)))
	}
	return emit(t, w)
}

func table1(d *datasets, w io.Writer) error {
	res, err := d.intraDC()
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   experiments["table1"].title,
		Note:    "paper: Core 75% / p0 / 4m / 30.1s — FSW 99.5% / 2.25 / 3d / 4.45s — RSW 99.7% / 2.22 / 1d / 2.91s",
		Headers: []string{"Device", "Repair Ratio", "Avg Priority", "Avg Wait (h)", "Avg Repair (s)"},
	}
	for _, dt := range []dcnr.DeviceType{dcnr.Core, dcnr.FSW, dcnr.RSW} {
		s := res.RemediationStats[dt]
		t.AddRow(dt.String(), report.Pct(s.RepairRatio()), report.F(s.AvgPriority()),
			report.F(s.AvgWaitHours()), report.F(s.AvgRepairSeconds()))
	}
	return emit(t, w)
}

func table2(d *datasets, w io.Writer) error {
	res, err := d.intraDC()
	if err != nil {
		return err
	}
	dist := res.Analysis.RootCauseDistribution()
	t := &report.Table{
		Title:   experiments["table2"].title,
		Note:    "paper: maintenance 17%, hardware 13%, configuration 13%, bug 12%, accidents 10%, capacity 5%, undetermined 29%",
		Headers: []string{"Category", "Distribution"},
	}
	for _, c := range dcnr.RootCauses {
		t.AddRow(c.String(), report.Pct(dist[c]))
	}
	return emit(t, w)
}

func table3(d *datasets, w io.Writer) error {
	res, err := d.intraDC()
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   experiments["table3"].title,
		Headers: []string{"Level", "Count (2017)", "Representative incident"},
	}
	for _, s := range dcnr.Severities {
		reports := res.Store.Query().Year(2017).Severity(s).Reports()
		example := "(none this year)"
		if len(reports) > 0 {
			example = reports[0].Title + " — " + reports[0].Impact
		}
		t.AddRow(s.String(), fmt.Sprint(len(reports)), example)
	}
	return emit(t, w)
}

func table4(d *datasets, w io.Writer) error {
	res, err := d.inter()
	if err != nil {
		return err
	}
	rows := res.Analysis.ByContinent()
	t := &report.Table{
		Title:   experiments["table4"].title,
		Note:    "paper: NA 37%/1848h/17h, EU 33%/2029h/19h, Asia 14%/2352h/11h, SA 10%/1579h/9h, Africa 4%/5400h/22h, AU 2%/1642h/2h",
		Headers: []string{"Continent", "Distribution", "MTBF (h)", "MTTR (h)"},
	}
	for _, c := range dcnr.Continents {
		r := rows[c]
		t.AddRow(c.String(), report.Pct(r.Share), report.F(r.MTBF), report.F(r.MTTR))
	}
	return emit(t, w)
}

func fig2(d *datasets, w io.Writer) error {
	res, err := d.intraDC()
	if err != nil {
		return err
	}
	byCause := res.Analysis.RootCauseByDevice()
	t := &report.Table{
		Title:   experiments["fig2"].title,
		Headers: append([]string{"Root cause"}, typeHeaders()...),
	}
	for _, c := range dcnr.RootCauses {
		row := []string{c.String()}
		for _, dt := range dcnr.IntraDCTypes {
			row = append(row, report.Pct(byCause[c][dt]))
		}
		t.AddRow(row...)
	}
	return emit(t, w)
}

func fig3(d *datasets, w io.Writer) error {
	res, err := d.intraDC()
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   experiments["fig3"].title,
		Note:    "incidents per active device; log-scale in the paper",
		Headers: append([]string{"Year"}, typeHeaders()...),
	}
	for y := dcnr.FirstYear; y <= dcnr.LastYear; y++ {
		rates := res.Analysis.IncidentRate(y)
		row := []string{fmt.Sprint(y)}
		for _, dt := range dcnr.IntraDCTypes {
			row = append(row, report.F(rates[dt]))
		}
		t.AddRow(row...)
	}
	return emit(t, w)
}

func fig4(d *datasets, w io.Writer) error {
	res, err := d.intraDC()
	if err != nil {
		return err
	}
	br := res.Analysis.SeverityBreakdown(2017)
	t := &report.Table{
		Title:   experiments["fig4"].title,
		Note:    "paper N values: SEV3 82%, SEV2 13%, SEV1 5%",
		Headers: append([]string{"Level", "N"}, typeHeaders()...),
	}
	for _, s := range dcnr.Severities {
		row := []string{s.String(), report.Pct(br[s].Share)}
		for _, dt := range dcnr.IntraDCTypes {
			row = append(row, report.Pct(br[s].ByDevice[dt]))
		}
		t.AddRow(row...)
	}
	return emit(t, w)
}

func fig5(d *datasets, w io.Writer) error {
	res, err := d.intraDC()
	if err != nil {
		return err
	}
	rates := res.Analysis.SevRatePerDevice()
	t := &report.Table{
		Title:   experiments["fig5"].title,
		Note:    "SEVs per deployed network device; inflection at fabric deployment (2015)",
		Headers: []string{"Year", "SEV3", "SEV2", "SEV1"},
	}
	for _, y := range report.SortedInts(rates) {
		t.AddRow(fmt.Sprint(y), report.F(rates[y][dcnr.Sev3]), report.F(rates[y][dcnr.Sev2]), report.F(rates[y][dcnr.Sev1]))
	}
	return emit(t, w)
}

func fig6(d *datasets, w io.Writer) error {
	res, err := d.intraDC()
	if err != nil {
		return err
	}
	pts := res.Analysis.SwitchesVsEmployees()
	t := &report.Table{
		Title:   experiments["fig6"].title,
		Headers: []string{"Employees", "Normalized switches"},
	}
	for _, p := range pts {
		t.AddRow(report.F(p.X), report.F(p.Y))
	}
	return emit(t, w)
}

func fig7(d *datasets, w io.Writer) error {
	res, err := d.intraDC()
	if err != nil {
		return err
	}
	fr := res.Analysis.IncidentFractions()
	t := &report.Table{
		Title:   experiments["fig7"].title,
		Headers: append([]string{"Year"}, typeHeaders()...),
	}
	for _, y := range report.SortedInts(fr) {
		row := []string{fmt.Sprint(y)}
		for _, dt := range dcnr.IntraDCTypes {
			row = append(row, report.Pct(fr[y][dt]))
		}
		t.AddRow(row...)
	}
	return emit(t, w)
}

func fig8(d *datasets, w io.Writer) error {
	res, err := d.intraDC()
	if err != nil {
		return err
	}
	norm := res.Analysis.NormalizedIncidents(2017)
	t := &report.Table{
		Title:   experiments["fig8"].title,
		Note:    "paper 2017: Core ≈ 34%, RSW ≈ 28% of SEVs; 9.4x total growth from 2011",
		Headers: append([]string{"Year"}, typeHeaders()...),
	}
	for _, y := range report.SortedInts(norm) {
		row := []string{fmt.Sprint(y)}
		for _, dt := range dcnr.IntraDCTypes {
			row = append(row, report.F(norm[y][dt]))
		}
		t.AddRow(row...)
	}
	return emit(t, w)
}

func fig9(d *datasets, w io.Writer) error {
	res, err := d.intraDC()
	if err != nil {
		return err
	}
	di := res.Analysis.DesignIncidents(2017)
	t := &report.Table{
		Title:   experiments["fig9"].title,
		Note:    "paper: 2017 fabric incidents ≈ 50% of cluster incidents",
		Headers: []string{"Year", "Cluster", "Fabric"},
	}
	for _, y := range report.SortedInts(di) {
		t.AddRow(fmt.Sprint(y), report.F(di[y][dcnr.DesignCluster]), report.F(di[y][dcnr.DesignFabric]))
	}
	return emit(t, w)
}

func fig10(d *datasets, w io.Writer) error {
	res, err := d.intraDC()
	if err != nil {
		return err
	}
	dr := res.Analysis.DesignRate()
	t := &report.Table{
		Title:   experiments["fig10"].title,
		Note:    "incidents per device; fabric consistently below cluster after 2015",
		Headers: []string{"Year", "Cluster", "Fabric"},
	}
	for _, y := range report.SortedInts(dr) {
		t.AddRow(fmt.Sprint(y), report.F(dr[y][dcnr.DesignCluster]), report.F(dr[y][dcnr.DesignFabric]))
	}
	return emit(t, w)
}

func fig11(d *datasets, w io.Writer) error {
	res, err := d.intraDC()
	if err != nil {
		return err
	}
	pb := res.Analysis.PopulationBreakdown()
	t := &report.Table{
		Title:   experiments["fig11"].title,
		Headers: append([]string{"Year"}, typeHeaders()...),
	}
	for _, y := range report.SortedInts(pb) {
		row := []string{fmt.Sprint(y)}
		for _, dt := range dcnr.IntraDCTypes {
			row = append(row, report.F(pb[y][dt]))
		}
		t.AddRow(row...)
	}
	return emit(t, w)
}

func fig12(d *datasets, w io.Writer) error {
	res, err := d.intraDC()
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   experiments["fig12"].title,
		Note:    "paper 2017: Core ≈ 39 495, RSW ≈ 9 958 828 device-hours; fabric ≈ 3.2x cluster",
		Headers: append([]string{"Year"}, typeHeaders()...),
	}
	for y := dcnr.FirstYear; y <= dcnr.LastYear; y++ {
		mtbi := res.Analysis.MTBI(y)
		row := []string{fmt.Sprint(y)}
		for _, dt := range dcnr.IntraDCTypes {
			row = append(row, report.F(mtbi[dt]))
		}
		t.AddRow(row...)
	}
	fab := res.Analysis.DesignMTBI(2017, dcnr.DesignFabric)
	clu := res.Analysis.DesignMTBI(2017, dcnr.DesignCluster)
	t.AddRow("2017 design MTBI", fmt.Sprintf("fabric %s", report.F(fab)),
		fmt.Sprintf("cluster %s", report.F(clu)), fmt.Sprintf("ratio %.2fx", fab/clu))
	return emit(t, w)
}

func fig13(d *datasets, w io.Writer) error {
	res, err := d.intraDC()
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   experiments["fig13"].title,
		Headers: append([]string{"Year"}, typeHeaders()...),
	}
	for y := dcnr.FirstYear; y <= dcnr.LastYear; y++ {
		irt := res.Analysis.P75IRT(y)
		row := []string{fmt.Sprint(y)}
		for _, dt := range dcnr.IntraDCTypes {
			row = append(row, report.F(irt[dt]))
		}
		t.AddRow(row...)
	}
	return emit(t, w)
}

func fig14(d *datasets, w io.Writer) error {
	res, err := d.intraDC()
	if err != nil {
		return err
	}
	pts := res.Analysis.IRTvsScale()
	t := &report.Table{
		Title:   experiments["fig14"].title,
		Note:    "positive correlation: larger networks take longer to resolve incidents",
		Headers: []string{"p75 IRT (h)", "Normalized switches"},
	}
	for _, p := range pts {
		t.AddRow(report.F(p.X), report.F(p.Y))
	}
	return emit(t, w)
}

// curveTable renders a percentile curve plus its fitted exponential model.
func curveTable(w io.Writer, title, note string, metric map[string]float64, fitNote bool) error {
	t := &report.Table{
		Title:   title,
		Note:    note,
		Headers: []string{"Percentile", "Value (h)"},
	}
	curve := dcnr.Curve(metric)
	// Print ~20 evenly spaced curve points.
	step := len(curve) / 20
	if step < 1 {
		step = 1
	}
	lastPrinted := -1
	for i := 0; i < len(curve); i += step {
		t.AddRow(report.Pct(curve[i].X), report.F(curve[i].Y))
		lastPrinted = i
	}
	if n := len(curve); n > 0 && lastPrinted != n-1 {
		t.AddRow(report.Pct(curve[n-1].X), report.F(curve[n-1].Y))
	}
	if fitNote {
		if fit, err := dcnr.FitCurve(metric); err == nil {
			t.AddRow("model", fmt.Sprintf("%.2f * e^(%.4f p), R2 = %.3f", fit.A, fit.B, fit.R2))
		}
	}
	return emit(t, w)
}

func fig15(d *datasets, w io.Writer) error {
	res, err := d.inter()
	if err != nil {
		return err
	}
	return curveTable(w, experiments["fig15"].title,
		"paper model: 462.88*e^(2.3408p), R2 = 0.94", res.Analysis.EdgeMTBF(), true)
}

func fig16(d *datasets, w io.Writer) error {
	res, err := d.inter()
	if err != nil {
		return err
	}
	return curveTable(w, experiments["fig16"].title,
		"paper model: 1.513*e^(4.256p), R2 = 0.87", res.Analysis.EdgeMTTR(), true)
}

func fig17(d *datasets, w io.Writer) error {
	res, err := d.inter()
	if err != nil {
		return err
	}
	return curveTable(w, experiments["fig17"].title,
		"paper: vendor MTBF spans orders of magnitude; p50 ≈ 2326 h", res.Analysis.VendorMTBF(), false)
}

func fig18(d *datasets, w io.Writer) error {
	res, err := d.inter()
	if err != nil {
		return err
	}
	return curveTable(w, experiments["fig18"].title,
		"paper model: 1.1345*e^(4.7709p), R2 = 0.98", res.Analysis.VendorMTTR(), true)
}

func ablationRemediation(d *datasets, w io.Writer) error {
	on, err := dcnr.SimulateIntraDC(dcnr.IntraConfig{Seed: d.seed, Scale: d.scale, FromYear: 2017, ToYear: 2017})
	if err != nil {
		return err
	}
	off, err := dcnr.SimulateIntraDC(dcnr.IntraConfig{Seed: d.seed, Scale: d.scale, FromYear: 2017, ToYear: 2017, DisableRemediation: true})
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   experiments["ablation-remediation"].title,
		Note:    "2017 fleet; incidents with the automated repair engine enabled vs disabled",
		Headers: []string{"Device", "Incidents (on)", "Incidents (off)", "Increase"},
	}
	for _, dt := range []dcnr.DeviceType{dcnr.RSW, dcnr.FSW, dcnr.Core, dcnr.CSW} {
		a := on.Store.Query().DeviceType(dt).Count()
		b := off.Store.Query().DeviceType(dt).Count()
		incr := "-"
		if a > 0 {
			incr = fmt.Sprintf("%.0fx", float64(b)/float64(a))
		}
		t.AddRow(dt.String(), fmt.Sprint(a), fmt.Sprint(b), incr)
	}
	t.AddRow("total", fmt.Sprint(on.Incidents), fmt.Sprint(off.Incidents),
		fmt.Sprintf("%.0fx", float64(off.Incidents)/float64(on.Incidents)))
	return emit(t, w)
}

func ablationRedundancy(d *datasets, w io.Writer) error {
	net, err := fleetTopology()
	if err != nil {
		return err
	}
	assessor := service.NewAssessor(net)
	t := &report.Table{
		Title:   experiments["ablation-redundancy"].title,
		Note:    "severity of one failure per device type and scope, computed from the topology",
		Headers: []string{"Device type", "Scope", "Stranded racks", "Capacity loss", "Severity"},
	}
	for _, dt := range dcnr.IntraDCTypes {
		devices := net.DevicesOfType(dt)
		if len(devices) == 0 {
			continue
		}
		for _, scope := range []service.Scope{service.ScopeDevice, service.ScopeGroup, service.ScopeUnit} {
			as, err := assessor.Assess(devices[0].Name, scope)
			if err != nil {
				return err
			}
			t.AddRow(dt.String(), scope.String(), fmt.Sprint(as.StrandedRacks),
				report.Pct(as.CapacityLoss), as.Severity.String())
		}
	}
	return emit(t, w)
}

func fleetTopology() (*topology.Network, error) {
	n := topology.NewNetwork()
	c1, err := topology.BuildCluster(n, topology.ClusterSpec{DC: "dc1", Region: "ra", Clusters: 4, RacksPerCluster: 16})
	if err != nil {
		return nil, err
	}
	c2, err := topology.BuildFabric(n, topology.FabricSpec{DC: "dc2", Region: "rb", Pods: 4, RacksPerPod: 16})
	if err != nil {
		return nil, err
	}
	if err := topology.InterconnectCores(n, c1, c2); err != nil {
		return nil, err
	}
	return n, nil
}

func typeHeaders() []string {
	hs := make([]string, 0, len(dcnr.IntraDCTypes))
	for _, dt := range dcnr.IntraDCTypes {
		hs = append(hs, dt.String())
	}
	return hs
}

// csvOutput switches experiment rendering to CSV (set by -format csv).
var csvOutput bool

// emit renders a table in the selected output format.
func emit(t *report.Table, w io.Writer) error {
	if csvOutput {
		return t.RenderCSV(w)
	}
	return t.Render(w)
}
