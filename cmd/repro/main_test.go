package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"dcnr"
)

func TestRunSingleExperiments(t *testing.T) {
	// One shared dataset build covers the cheap experiments; the heavy
	// all-experiments path is exercised by TestRunAll below (not in
	// -short mode).
	d := &datasets{seed: 7, scale: 1}
	cheap := []string{"table3", "fig6", "fig11", "ablation-redundancy", "congestion", "wan-reroute", "drill-suite", "ablation-config"}
	for _, id := range cheap {
		var b strings.Builder
		if err := experiments[id].run(d, &b); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(b.String(), experiments[id].title) {
			t.Errorf("%s output missing title", id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "fig99", &datasets{seed: 1, scale: 1}, 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	if len(experimentOrder) != len(experiments) {
		t.Fatalf("order lists %d, registry has %d", len(experimentOrder), len(experiments))
	}
	for _, id := range experimentOrder {
		def, ok := experiments[id]
		if !ok {
			t.Errorf("%s in order but not registry", id)
			continue
		}
		if def.title == "" || def.run == nil {
			t.Errorf("%s has empty definition", id)
		}
	}
}

func TestRunAllAndVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	var b strings.Builder
	d := &datasets{seed: 20181031, scale: 1, trace: dcnr.NewTracer()}
	if err := run(&b, "", d, 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table 1", "Table 4", "Figure 15", "Figure 18", "Ablation", "WAN", "Per-analysis wall time", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("all-experiments output missing %q", want)
		}
	}
	// The fan-out must not perturb output order: experiments appear in
	// paper order regardless of which worker finished first.
	if strings.Index(out, "Table 1") > strings.Index(out, "Figure 15") {
		t.Error("parallel run reordered experiment output")
	}
	// The footer was rebuilt from trace spans: every experiment has a
	// recorded analysis span, plus the two dataset builds.
	spans := map[string]bool{}
	for _, e := range d.trace.Events() {
		if e.Phase == "X" && (e.Cat == datasetCat || e.Cat == analysisCat) {
			spans[e.Name] = true
		}
	}
	for _, id := range append(append([]string{}, buildNames...), experimentOrder...) {
		if !spans[id] {
			t.Errorf("no trace span recorded for %s", id)
		}
	}
	b.Reset()
	ok, err := runVerify(&b, &datasets{seed: 20181031, scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("verification failed:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "claims reproduced") {
		t.Error("scoreboard footer missing")
	}
}

func TestMetricsServerEndpoints(t *testing.T) {
	reg := dcnr.NewMetricsRegistry()
	reg.Counter("repro_test_total").Add(7)
	eng, err := dcnr.NewHealthEngine(dcnr.HealthTargetsForScale(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	tl := dcnr.NewTimeline(0)
	smp := dcnr.NewTimelineSampler(tl, "wall", reg, []string{"repro_test_total"}, nil)
	smp.Sample(1)
	smp.Flush()
	shutdown, addr, err := startMetricsServer("127.0.0.1:0", reg, eng, dcnr.NewJournal(), tl)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}

	if body := get("/debug/vars"); !strings.Contains(body, `"dcnr"`) || !strings.Contains(body, "repro_test_total") {
		t.Errorf("/debug/vars missing published registry:\n%s", body)
	}
	if body := get("/metrics"); !strings.Contains(body, "repro_test_total 7") {
		t.Errorf("/metrics missing Prometheus exposition:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%s", body)
	}
	// An idle engine with no rule firing answers healthy, and /slo serves
	// the engine's JSON report.
	if body := get("/healthz"); !strings.Contains(body, "ok") {
		t.Errorf("/healthz not ok for quiet engine:\n%s", body)
	}
	var rep dcnr.SLOReport
	if err := json.Unmarshal([]byte(get("/slo")), &rep); err != nil {
		t.Errorf("/slo is not a JSON SLO report: %v", err)
	}
	if !rep.Healthy {
		t.Error("/slo reports unhealthy for a quiet engine")
	}
	if len(rep.Rules) == 0 {
		t.Error("/slo report lists no rules")
	}
	// /journal serves the causal journal's summary — empty before any
	// simulation has recorded into it, but well-formed JSON.
	var jsum dcnr.JournalSummary
	if err := json.Unmarshal([]byte(get("/journal")), &jsum); err != nil {
		t.Errorf("/journal is not a JSON journal summary: %v", err)
	}
	if jsum.Records != 0 {
		t.Errorf("/journal reports %d records for an idle journal", jsum.Records)
	}

	// /metrics/history serves the attached timeline's samples as JSONL.
	if body := get("/metrics/history"); !strings.Contains(body, `{"t":1,"m":"repro_test_total","v":7}`) {
		t.Errorf("/metrics/history missing timeline sample:\n%s", body)
	}
	if body := get("/metrics/history?metric=no_such_series"); strings.TrimSpace(body) != "" {
		t.Errorf("/metrics/history filter leaked samples:\n%s", body)
	}

	// A second server (tests and reruns) re-points the shared expvar at
	// the new registry instead of panicking on a duplicate publish. A nil
	// engine reads as permanently healthy.
	reg2 := dcnr.NewMetricsRegistry()
	reg2.Counter("repro_second_total").Inc()
	shutdown2, addr2, err := startMetricsServer("127.0.0.1:0", reg2, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown2()
	if body := get("/metrics"); !strings.Contains(body, "repro_second_total") {
		t.Errorf("first server still exposing old registry after re-publish:\n%s", body)
	}
	// A nil timeline serves an empty (but 200) history.
	resp, err := http.Get("http://" + addr2 + "/metrics/history")
	if err != nil {
		t.Fatalf("GET nil-timeline /metrics/history: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET nil-timeline /metrics/history: status %d, err %v", resp.StatusCode, err)
	}
	if strings.TrimSpace(string(body)) != "" {
		t.Errorf("nil-timeline /metrics/history not empty:\n%s", body)
	}
}

// TestMetricsServerShutdownJoins pins the server lifecycle: shutdown
// returns only after the serving goroutine has exited, and the port is
// actually released — no goroutine or listener outlives the call.
func TestMetricsServerShutdownJoins(t *testing.T) {
	shutdown, addr, err := startMetricsServer("127.0.0.1:0", dcnr.NewMetricsRegistry(), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	returned := make(chan struct{})
	go func() {
		shutdown()
		close(returned)
	}()
	select {
	case <-returned:
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown did not return; serving goroutine not joined")
	}
	// The listener must be gone: a fresh bind of the same address succeeds.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("address still bound after shutdown: %v", err)
	}
	ln.Close()
	// A second shutdown-after-shutdown must not panic or hang (Close is
	// idempotent and the done channel is already closed).
	shutdown()
}
