package main

import (
	"strings"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	// One shared dataset build covers the cheap experiments; the heavy
	// all-experiments path is exercised by TestRunAll below (not in
	// -short mode).
	d := &datasets{seed: 7, scale: 1}
	cheap := []string{"table3", "fig6", "fig11", "ablation-redundancy", "congestion", "wan-reroute", "drill-suite", "ablation-config"}
	for _, id := range cheap {
		var b strings.Builder
		if err := experiments[id].run(d, &b); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(b.String(), experiments[id].title) {
			t.Errorf("%s output missing title", id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "fig99", 1, 1, 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	if len(experimentOrder) != len(experiments) {
		t.Fatalf("order lists %d, registry has %d", len(experimentOrder), len(experiments))
	}
	for _, id := range experimentOrder {
		def, ok := experiments[id]
		if !ok {
			t.Errorf("%s in order but not registry", id)
			continue
		}
		if def.title == "" || def.run == nil {
			t.Errorf("%s has empty definition", id)
		}
	}
}

func TestRunAllAndVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	var b strings.Builder
	if err := run(&b, "", 20181031, 1, 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table 1", "Table 4", "Figure 15", "Figure 18", "Ablation", "WAN", "Per-analysis wall time", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("all-experiments output missing %q", want)
		}
	}
	// The fan-out must not perturb output order: experiments appear in
	// paper order regardless of which worker finished first.
	if strings.Index(out, "Table 1") > strings.Index(out, "Figure 15") {
		t.Error("parallel run reordered experiment output")
	}
	b.Reset()
	ok, err := runVerify(&b, 20181031, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("verification failed:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "claims reproduced") {
		t.Error("scoreboard footer missing")
	}
}
