package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcnr"
)

// syntheticReport builds a minimal sweep report whose baseline bands
// bracket some paper values and miss others, to pin the verdict logic.
func syntheticReport(t *testing.T) string {
	t.Helper()
	rep := dcnr.SweepReport{
		Seeds:  []uint64{1, 2},
		Scales: []int{1},
		Scenarios: []dcnr.SweepScenario{
			{Name: "baseline", FromYear: 2011, ToYear: 2017},
		},
		Groups: []dcnr.SweepGroup{{
			Scenario: "baseline",
			Scale:    1,
			Seeds:    2,
			RepairRatio: map[string]dcnr.SweepBand{
				"Core": {Mean: 0.74, P5: 0.72, P95: 0.76, N: 2}, // brackets 0.75
				"FSW":  {Mean: 0.90, P5: 0.89, P95: 0.91, N: 2}, // misses 0.995
				"RSW":  {Mean: 0.997, P5: 0.996, P95: 0.998, N: 2},
			},
			RootCauseMix: map[string]dcnr.SweepBand{
				"Maintenance": {Mean: 0.16, P5: 0.14, P95: 0.18, N: 2},
			},
		}},
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sweep_report.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSweepDiff(t *testing.T) {
	var buf bytes.Buffer
	if err := runSweepDiff(&buf, syntheticReport(t)); err != nil {
		t.Fatalf("runSweepDiff: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"scenario \"baseline\", scale 1, 2 seeds",
		"repair ratio Core",
		"root cause Maintenance",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Core (0.75 in [0.72, 0.76]) and Maintenance (0.17 in [0.14, 0.18])
	// and RSW (0.997 in [0.996, 0.998]) are within; FSW is outside; the
	// root causes absent from the synthetic report are missing.
	if !strings.Contains(out, "3/10 paper values inside their sweep band") {
		t.Errorf("verdict summary wrong:\n%s", out)
	}
	if !strings.Contains(out, "outside") || !strings.Contains(out, "missing") {
		t.Errorf("expected both outside and missing verdicts:\n%s", out)
	}
}

func TestRunSweepDiffErrors(t *testing.T) {
	if err := runSweepDiff(os.Stdout, filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Errorf("runSweepDiff accepted a missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSweepDiff(os.Stdout, bad); err == nil {
		t.Errorf("runSweepDiff accepted malformed JSON")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSweepDiff(os.Stdout, empty); err == nil {
		t.Errorf("runSweepDiff accepted a report with no groups")
	}
}
