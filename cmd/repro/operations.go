package main

// Operational experiments beyond the paper's tables and figures: the
// mechanisms behind its §3.1/§5.1/§5.2/§5.7 claims, made measurable.

import (
	"fmt"
	"io"

	"dcnr"
	"dcnr/internal/report"
)

func congestionStudy(d *datasets, w io.Writer) error {
	net, err := dcnr.ReferenceTopology()
	if err != nil {
		return err
	}
	demands, err := dcnr.GenerateTraffic(net, dcnr.TrafficConfig{}, d.seed)
	if err != nil {
		return err
	}
	// Progressive CSW loss within one cluster: watch the surviving
	// members of the redundancy group heat up.
	var cluster []string
	unit := net.DevicesOfType(dcnr.CSW)[0].Unit
	for _, dev := range net.DevicesOfType(dcnr.CSW) {
		if dev.Unit == unit {
			cluster = append(cluster, dev.Name)
		}
	}
	t := &report.Table{
		Title:   experiments["congestion"].title,
		Note:    "§3.1: fewer switches to route requests means more congestion on the survivors",
		Headers: []string{"Scenario", "Surviving-CSW peak util", "Network peak util", "Lost volume"},
	}
	addRow := func(name string, down map[string]bool) {
		router := dcnr.NewRouter(net)
		router.SetDown(down)
		load, _ := router.Route(dcnr.Reassign(net, demands, down))
		util := router.Utilization(load, nil)
		survivorPeak := 0.0
		for _, csw := range cluster {
			if !down[csw] && util[csw] > survivorPeak {
				survivorPeak = util[csw]
			}
		}
		rep := dcnr.StudyTraffic(net, demands, down)
		t.AddRow(name, report.Pct(survivorPeak), report.Pct(rep.MaxUtilization),
			report.Pct(rep.LostFraction()))
	}
	addRow("healthy", nil)
	for n := 1; n < len(cluster); n++ {
		down := map[string]bool{}
		for i := 0; i < n; i++ {
			down[cluster[i]] = true
		}
		addRow(fmt.Sprintf("%d of %d cluster CSWs down", n, len(cluster)), down)
	}
	// One core down: failover absorbs it.
	addRow("1 of 8 cores down", map[string]bool{net.DevicesOfType(dcnr.Core)[0].Name: true})
	return emit(t, w)
}

func ablationDrain(d *datasets, w io.Writer) error {
	net, err := dcnr.ReferenceTopology()
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   experiments["ablation-drain"].title,
		Note:    "§5.2: draining devices before maintenance limited repair impact; CSA MTBI rose two orders of magnitude",
		Headers: []string{"Policy", "Steps", "Mishaps", "Service incidents"},
	}
	for _, policy := range []dcnr.DrainPolicy{dcnr.NoDrain, dcnr.DrainFirst} {
		assessor := dcnr.NewImpactAssessor(net)
		sched, err := dcnr.NewMaintenanceScheduler(assessor, d.seed)
		if err != nil {
			return err
		}
		steps, mishaps, incidents := 0, 0, 0
		// A year of monthly maintenance across every CSW redundancy group.
		groups := cswGroups(net)
		for month := 0; month < 12; month++ {
			for _, group := range groups {
				rep, err := sched.RollingMaintenance(group, policy)
				if err != nil {
					return err
				}
				steps += rep.Steps
				mishaps += rep.Mishaps
				incidents += rep.IncidentCount()
			}
		}
		t.AddRow(policy.String(), fmt.Sprint(steps), fmt.Sprint(mishaps), fmt.Sprint(incidents))
	}
	return emit(t, w)
}

func cswGroups(net *dcnr.Network) [][]string {
	byUnit := map[string][]string{}
	var order []string
	for _, dev := range net.DevicesOfType(dcnr.CSW) {
		if len(byUnit[dev.Unit]) == 0 {
			order = append(order, dev.Unit)
		}
		byUnit[dev.Unit] = append(byUnit[dev.Unit], dev.Name)
	}
	groups := make([][]string, 0, len(order))
	for _, unit := range order {
		groups = append(groups, byUnit[unit])
	}
	return groups
}

func ablationConfig(d *datasets, w io.Writer) error {
	t := &report.Table{
		Title:   experiments["ablation-config"].title,
		Note:    "§5.1: review + canary testing explain the misconfiguration rate gap vs Wu et al.",
		Headers: []string{"Pipeline", "Mean devices misconfigured per faulty change"},
	}
	const fleetSize, trials = 10000, 2000
	pipelines := []struct {
		name  string
		guard dcnr.ConfigGuard
	}{
		{"no protections", dcnr.UnguardedConfig()},
		{"review only", func() dcnr.ConfigGuard {
			g := dcnr.NewConfigGuard(0)
			return g
		}()},
		{"review + 10-switch canary", dcnr.NewConfigGuard(10)},
	}
	for _, p := range pipelines {
		blast, err := dcnr.ConfigBlastStudy(p.guard, trials, fleetSize, d.seed)
		if err != nil {
			return err
		}
		t.AddRow(p.name, report.F(blast))
	}
	return emit(t, w)
}

func drillSuite(d *datasets, w io.Writer) error {
	net, err := dcnr.ReferenceTopology()
	if err != nil {
		return err
	}
	demands, err := dcnr.GenerateTraffic(net, dcnr.TrafficConfig{}, d.seed)
	if err != nil {
		return err
	}
	runner, err := dcnr.NewDrillRunner(net, demands, dcnr.DefaultDrillCriteria())
	if err != nil {
		return err
	}
	scenarios, err := dcnr.StandardDrills(net)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   experiments["drill-suite"].title,
		Note:    "§5.7: periodic fault injection and disaster recovery testing",
		Headers: []string{"Drill", "Stranded racks", "Peak util", "Lost volume", "Verdict"},
	}
	for _, sc := range scenarios {
		res, err := runner.Run(sc)
		if err != nil {
			return err
		}
		verdict := "PASS"
		if !res.Pass {
			verdict = "FAIL: " + res.Failures[0]
		}
		t.AddRow(sc.Name, fmt.Sprint(res.StrandedRacks),
			report.Pct(res.Load.MaxUtilization), report.Pct(res.Load.LostFraction()), verdict)
	}
	return emit(t, w)
}

func wanReroute(d *datasets, w io.Writer) error {
	bb, err := dcnr.NewWANBackbone(dcnr.WANConfig{
		Regions: []string{"east", "central", "west"},
	})
	if err != nil {
		return err
	}
	demands := []dcnr.WANDemand{
		{From: "east", To: "west", Gbps: 900},
		{From: "east", To: "central", Gbps: 300},
		{From: "central", To: "west", Gbps: 300},
	}
	t := &report.Table{
		Title:   experiments["wan-reroute"].title,
		Note:    "§3.2: fiber cuts cost capacity; traffic reroutes over other links at a latency cost",
		Headers: []string{"east-west planes cut", "Direct", "Rerouted", "Dropped", "Mean hops"},
	}
	for cuts := 0; cuts <= 4; cuts++ {
		if cuts > 0 {
			if err := bb.SetLinkDown("east", "west", cuts-1, true); err != nil {
				return err
			}
		}
		rep, err := bb.Engineer(demands)
		if err != nil {
			return err
		}
		f := rep.Flows[0] // the east-west flow
		t.AddRow(fmt.Sprintf("%d of 4", cuts),
			report.F(f.DirectGbps), report.F(f.ReroutedGbps), report.F(f.DroppedGbps),
			fmt.Sprintf("%.2f", rep.MeanPathHops))
	}
	return emit(t, w)
}

func opticalAttribution(d *datasets, w io.Writer) error {
	res, err := d.inter()
	if err != nil {
		return err
	}
	inv := dcnr.BuildOpticalInventory(res.Topology, d.seed)
	// Attribute the raw link downtime records (the BackboneResult keeps
	// the reconstructed intervals; re-derive raw records via simulate).
	cfg := dcnr.DefaultBackboneConfig()
	cfg.Seed = d.seed
	downs, err := res.Topology.Simulate(cfg)
	if err != nil {
		return err
	}
	stats, err := inv.FailuresByMedium(downs)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   experiments["optical-attribution"].title,
		Note:    "§3.2: links are circuits of segments; correlated cuts hit the shared last-mile conduit",
		Headers: []string{"Metric", "Value"},
	}
	groups := inv.SharedRiskGroups()
	t.AddRow("optical segments", fmt.Sprint(len(inv.Segments())))
	t.AddRow("shared-risk groups (edge conduits)", fmt.Sprint(len(groups)))
	cutCount, isolatedCount := 0, 0
	for _, dn := range downs {
		if dn.Cut {
			cutCount++
		} else {
			isolatedCount++
		}
	}
	t.AddRow("failures on shared conduits (cuts)", fmt.Sprint(cutCount))
	t.AddRow("failures on private long-haul spans", fmt.Sprint(isolatedCount))
	for _, m := range []dcnr.OpticalMedium{dcnr.Terrestrial, dcnr.Submarine} {
		s := stats[m]
		t.AddRow(fmt.Sprintf("%v failures / mean repair", m),
			fmt.Sprintf("%d / %s h", s.Failures, report.F(s.MeanMTTR)))
	}
	return emit(t, w)
}
