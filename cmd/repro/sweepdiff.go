package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"dcnr"
	"dcnr/internal/report"
)

// paperRepairRatios is Table 1's automated-repair success column.
var paperRepairRatios = []struct {
	device string
	value  float64
}{
	{"Core", 0.75},
	{"FSW", 0.995},
	{"RSW", 0.997},
}

// paperRootCauseMix is Table 2's root-cause share column.
var paperRootCauseMix = []struct {
	cause string
	value float64
}{
	{"Maintenance", 0.17},
	{"Hardware", 0.13},
	{"Configuration", 0.13},
	{"Bug", 0.12},
	{"Accidents", 0.10},
	{"Capacity planning", 0.05},
	{"Undetermined", 0.29},
}

// runSweepDiff loads a dcsweep report and diffs the paper's point
// estimates against the sweep's cross-run variance bands: a paper value
// inside a statistic's empirical p5–p95 band means the reproduction
// brackets it, not just approximates it. The baseline scenario's
// smallest-scale group is the comparison target.
func runSweepDiff(w io.Writer, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep dcnr.SweepReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	g := baselineGroup(rep)
	if g == nil {
		return fmt.Errorf("%s: no groups in report", path)
	}

	t := &report.Table{
		Title: fmt.Sprintf("Sweep vs paper: scenario %q, scale %d, %d seeds", g.Scenario, g.Scale, g.Seeds),
		Note: "Paper point estimates against the sweep's cross-run mean and p5–p95 band. " +
			"Within = the paper value falls inside the band.",
		Headers: []string{"statistic", "paper", "sweep mean", "p5", "p95", "verdict"},
	}
	within, total := 0, 0
	addRow := func(name string, paper float64, band dcnr.SweepBand, ok bool, fmtv func(float64) string) {
		if !ok || band.N == 0 {
			t.AddRow(name, fmtv(paper), "—", "—", "—", "missing")
			total++
			return
		}
		verdict := "within"
		if paper < band.P5 || paper > band.P95 {
			verdict = "outside"
		} else {
			within++
		}
		total++
		t.AddRow(name, fmtv(paper), fmtv(band.Mean), fmtv(band.P5), fmtv(band.P95), verdict)
	}
	for _, p := range paperRepairRatios {
		band, ok := g.RepairRatio[p.device]
		addRow("repair ratio "+p.device, p.value, band, ok, report.Pct)
	}
	for _, p := range paperRootCauseMix {
		band, ok := g.RootCauseMix[p.cause]
		addRow("root cause "+p.cause, p.value, band, ok, report.Pct)
	}
	if err := emit(t, w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%d/%d paper values inside their sweep band\n", within, total)
	return err
}

// baselineGroup picks the comparison target: the "baseline" scenario at
// its smallest swept scale, or failing that the report's first group.
func baselineGroup(rep dcnr.SweepReport) *dcnr.SweepGroup {
	var best *dcnr.SweepGroup
	for i := range rep.Groups {
		g := &rep.Groups[i]
		if g.Scenario != "baseline" {
			continue
		}
		if best == nil || g.Scale < best.Scale {
			best = g
		}
	}
	if best == nil && len(rep.Groups) > 0 {
		best = &rep.Groups[0]
	}
	return best
}
