// Command dcnrload is the load harness for dcnrd: it replays the paper-
// figure-weighted query mix against a daemon at rising concurrency and
// records throughput, latency percentiles, and cache hit rate per step —
// the numbers behind BENCH_serve.json (make bench-serve).
//
// Usage:
//
//	dcnrload [-addr HOST:PORT] [-steps 1,2,4,8] [-requests N]
//	         [-shards N] [-cache N] [-reports N] [-seed N] [-out FILE]
//
// With -addr, dcnrload drives an already-running daemon. Without it, the
// harness self-hosts: it builds an in-process daemon on a loopback
// listener (-shards/-cache), seeds it with a deterministic synthetic
// dataset (-reports/-seed), and drives that over real HTTP — one command,
// no orchestration.
//
// The query mix weights the endpoints by how often the paper's analyses
// consult them: device-type and yearly count breakdowns (Figures 2-5,
// Tables 3-4) dominate, root-cause counts (Table 2) and resolution-time
// percentile bands (the MTTR figures) follow, plus a thin tail of
// filtered deep-dives. Each concurrency step replays the same mix with a
// fresh deterministic PRNG stream per worker, so repeated steps re-ask
// the same ~dozen normalized queries and the daemon's result cache is
// exercised the way a dashboard fleet would.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dcnr/internal/serve"
	"dcnr/internal/sev"
	"dcnr/internal/stats"
)

func main() {
	var (
		addr     = flag.String("addr", "", "target dcnrd address (default: self-host an in-process daemon)")
		steps    = flag.String("steps", "1,2,4,8", "comma-separated concurrency ladder")
		requests = flag.Int("requests", 400, "requests per concurrency step")
		shards   = flag.Int("shards", runtime.GOMAXPROCS(0), "shard count for the self-hosted daemon")
		cache    = flag.Int("cache", serve.DefaultCacheEntries, "cache capacity for the self-hosted daemon")
		reports  = flag.Int("reports", 5000, "synthetic dataset size for the self-hosted daemon")
		seed     = flag.Uint64("seed", 20181031, "PRNG seed for the dataset and the query mix")
		out      = flag.String("out", "", "write the JSON report to this file (default stdout)")
	)
	flag.Parse()
	ladder, err := parseSteps(*steps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcnrload:", err)
		os.Exit(1)
	}
	cfg := loadConfig{
		addr: *addr, steps: ladder, requests: *requests,
		shards: *shards, cache: *cache, reports: *reports, seed: *seed,
	}
	rep, err := runLoad(cfg, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcnrload:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcnrload:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		_, _ = os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "dcnrload:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dcnrload: wrote %s\n", *out)
}

// queryMix is the paper-figure-weighted endpoint mix. Weights are
// relative request shares; the paths are already normalized, so the set
// of distinct cache keys per generation equals the number of rows here.
var queryMix = []struct {
	path   string
	weight int
}{
	{"/query/count?by=device", 18},         // device-type mix (Fig. 4, Table 3)
	{"/query/count?by=year", 14},           // yearly growth (Fig. 2)
	{"/query/count?by=severity", 10},       // severity mix
	{"/query/count?by=year-severity", 10},  // Fig. 3
	{"/query/count?by=year-device", 8},     // Fig. 5
	{"/query/count?by=year-design", 6},     // design ablation
	{"/query/count?by=cause", 8},           // root causes (Table 2)
	{"/query/resolutions?by=device", 10},   // MTTR bands by type
	{"/query/resolutions?by=year", 6},      // MTTR trend
	{"/query/resolutions", 4},              // fleet-wide band
	{"/query/count?by=year&device=rsw", 4}, // rack-switch deep dive
	{"/query/count?severity=sev3", 2},      // filtered count
}

// loadConfig parameterizes one harness run.
type loadConfig struct {
	addr     string // "" = self-host
	steps    []int
	requests int
	shards   int
	cache    int
	reports  int
	seed     uint64
}

// stepResult is one concurrency step's measurements.
type stepResult struct {
	Concurrency  int     `json:"concurrency"`
	Requests     int     `json:"requests"`
	Errors       int     `json:"errors"`
	QPS          float64 `json:"qps"`
	P50Millis    float64 `json:"p50_ms"`
	P99Millis    float64 `json:"p99_ms"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// benchReport is the BENCH_serve.json shape.
type benchReport struct {
	Bench           string       `json:"bench"`
	CPUs            int          `json:"cpus"`
	Go              string       `json:"go"`
	Shards          int          `json:"shards"`
	CacheEntries    int          `json:"cache_entries"`
	Reports         int          `json:"reports"`
	RequestsPerStep int          `json:"requests_per_step"`
	MixQueries      int          `json:"mix_queries"`
	Steps           []stepResult `json:"steps"`
}

// runLoad runs the ladder and returns the report. With cfg.addr empty it
// self-hosts a daemon for the duration of the run.
func runLoad(cfg loadConfig, stderr io.Writer) (*benchReport, error) {
	target := cfg.addr
	shards := cfg.shards
	if target == "" {
		d, addr, err := selfHost(cfg)
		if err != nil {
			return nil, err
		}
		defer d.Shutdown()
		target = addr
		_, _ = fmt.Fprintf(stderr, "dcnrload: self-hosting %v with %d reports on %s\n", d, cfg.reports, addr)
	}
	base := "http://" + target

	maxC := 1
	for _, c := range cfg.steps {
		if c > maxC {
			maxC = c
		}
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: maxC}}

	rep := &benchReport{
		Bench:           "serve",
		CPUs:            runtime.NumCPU(),
		Go:              runtime.Version(),
		Shards:          shards,
		CacheEntries:    cfg.cache,
		Reports:         cfg.reports,
		RequestsPerStep: cfg.requests,
		MixQueries:      len(queryMix),
	}
	for i, c := range cfg.steps {
		res, err := runStep(client, base, c, cfg.requests, cfg.seed+uint64(i)*1e6)
		if err != nil {
			return nil, err
		}
		rep.Steps = append(rep.Steps, res)
		_, _ = fmt.Fprintf(stderr, "dcnrload: c=%d qps=%.0f p50=%.2fms p99=%.2fms hit=%.0f%%\n",
			c, res.QPS, res.P50Millis, res.P99Millis, 100*res.CacheHitRate)
	}
	return rep, nil
}

// runStep replays the mix with c workers until the request budget is
// spent, then merges per-worker samples into one measurement.
func runStep(client *http.Client, base string, c, requests int, seed uint64) (stepResult, error) {
	type workerStats struct {
		latencies []float64 // milliseconds
		hits      int
		hdrs      int // responses carrying an X-Cache header
		errs      int
	}
	perWorker := (requests + c - 1) / c
	ws := make([]workerStats, c)
	var wg sync.WaitGroup
	start := time.Now()
	for w := range ws {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// One deterministic PRNG stream per worker: same seed, same
			// replayed mix.
			rng := splitmix64(seed + uint64(w))
			st := &ws[w]
			st.latencies = make([]float64, 0, perWorker)
			for range perWorker {
				path := pickQuery(rng.next())
				t0 := time.Now()
				resp, err := client.Get(base + path)
				if err != nil {
					st.errs++
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
				st.latencies = append(st.latencies, float64(time.Since(t0))/1e6)
				if resp.StatusCode != 200 {
					st.errs++
					continue
				}
				switch resp.Header.Get("X-Cache") {
				case "hit":
					st.hits++
					st.hdrs++
				case "miss":
					st.hdrs++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var all []float64
	res := stepResult{Concurrency: c}
	hits, hdrs := 0, 0
	for _, st := range ws {
		all = append(all, st.latencies...)
		res.Requests += len(st.latencies)
		res.Errors += st.errs
		hits += st.hits
		hdrs += st.hdrs
	}
	if res.Requests == 0 {
		return res, fmt.Errorf("step c=%d: every request failed", c)
	}
	sort.Float64s(all)
	ps, err := stats.Percentiles(all, 50, 99)
	if err != nil {
		return res, err
	}
	res.QPS = float64(res.Requests) / elapsed
	res.P50Millis = ps[0]
	res.P99Millis = ps[1]
	if hdrs > 0 {
		res.CacheHitRate = float64(hits) / float64(hdrs)
	}
	return res, nil
}

// pickQuery maps one random draw onto the weighted mix.
func pickQuery(draw uint64) string {
	total := 0
	for _, q := range queryMix {
		total += q.weight
	}
	n := int(draw % uint64(total))
	for _, q := range queryMix {
		if n < q.weight {
			return q.path
		}
		n -= q.weight
	}
	return queryMix[0].path
}

// selfHost builds, seeds, and starts an in-process daemon on loopback.
func selfHost(cfg loadConfig) (*serve.Daemon, string, error) {
	dcfg := serve.Config{Addr: "127.0.0.1:0", Shards: cfg.shards, CacheEntries: cfg.cache}
	d, err := serve.NewDaemon(&dcfg)
	if err != nil {
		return nil, "", err
	}
	if _, err := d.Store().AddAll(syntheticReports(cfg.reports, cfg.seed)); err != nil {
		d.Shutdown()
		return nil, "", err
	}
	addr, err := d.Start()
	if err != nil {
		d.Shutdown()
		return nil, "", err
	}
	return d, addr, nil
}

// syntheticReports generates a deterministic dataset spread across the
// indexed dimensions: seven study years, every switch tier, the full
// severity ladder, and long-tailed resolution times.
func syntheticReports(n int, seed uint64) []sev.Report {
	devices := []string{
		"rsw%03d.cl%03d.dc%d.ra", "csw%03d.cl%03d.dc%d.ra", "csa%03d.dc%d.ra",
		"esw%03d.cl%03d.dc%d.ra", "ssw%03d.cl%03d.dc%d.ra", "fsw%03d.cl%03d.dc%d.ra",
	}
	rng := splitmix64(seed)
	out := make([]sev.Report, n)
	for i := range out {
		r := rng.next()
		tier := devices[r%uint64(len(devices))]
		var device string
		if strings.Count(tier, "%") == 3 {
			device = fmt.Sprintf(tier, 1+r%40, 1+(r>>8)%8, 1+(r>>16)%4)
		} else {
			device = fmt.Sprintf(tier, 1+r%40, 1+(r>>16)%4)
		}
		dur := 0.5 + float64((r>>32)%8)
		out[i] = sev.Report{
			Severity:   sev.Severity(1 + (r>>24)%3),
			Device:     device,
			Start:      float64(i * 2),
			Duration:   dur,
			Resolution: dur + float64((r>>40)%240)/2, // tail up to ~5 days
			Year:       2011 + int((r>>48)%7),
		}
	}
	return out
}

// parseSteps parses the "-steps 1,2,4" ladder.
func parseSteps(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || c < 1 {
			return nil, fmt.Errorf("bad -steps entry %q", part)
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -steps")
	}
	return out, nil
}

// splitmix64 is the tiny deterministic PRNG behind the dataset and the
// mix sampling — stdlib-only and stable across runs.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
