package main

import (
	"strings"
	"testing"

	"dcnr/internal/sev"
)

// TestRunLoadSelfHost is the dcnrd+dcnrload e2e smoke test: the harness
// self-hosts a sharded daemon on a real loopback listener, replays the
// paper-figure mix up the concurrency ladder, and the report shows
// traffic flowing and the cache warming on the repeated mix.
func TestRunLoadSelfHost(t *testing.T) {
	cfg := loadConfig{
		steps: []int{1, 2}, requests: 120,
		shards: 2, cache: 64, reports: 400, seed: 1,
	}
	var stderr strings.Builder
	rep, err := runLoad(cfg, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shards != 2 || rep.Reports != 400 || len(rep.Steps) != 2 {
		t.Fatalf("report shape: %+v", rep)
	}
	for i, st := range rep.Steps {
		if st.Concurrency != cfg.steps[i] {
			t.Errorf("step %d concurrency = %d", i, st.Concurrency)
		}
		if st.Requests == 0 || st.Errors != 0 {
			t.Errorf("step %d: requests %d errors %d", i, st.Requests, st.Errors)
		}
		if st.QPS <= 0 || st.P99Millis < st.P50Millis {
			t.Errorf("step %d: qps %f p50 %f p99 %f", i, st.QPS, st.P50Millis, st.P99Millis)
		}
	}
	// The mix re-asks ~a dozen normalized queries, so by the second step
	// the cache must be carrying most of the load.
	if hr := rep.Steps[len(rep.Steps)-1].CacheHitRate; hr <= 0.5 {
		t.Errorf("final-step cache hit rate = %f, want > 0.5", hr)
	}
	if !strings.Contains(stderr.String(), "self-hosting") {
		t.Errorf("missing self-host banner: %s", stderr.String())
	}
}

// TestSyntheticReportsValid: the generated dataset passes store
// validation wholesale and covers the indexed dimensions.
func TestSyntheticReportsValid(t *testing.T) {
	reports := syntheticReports(500, 7)
	st := sev.NewStore()
	if _, err := st.AddAll(reports); err != nil {
		t.Fatal(err)
	}
	if len(st.Query().CountByDeviceType()) < 4 {
		t.Errorf("device spread: %v", st.Query().CountByDeviceType())
	}
	if len(st.Query().CountByYear()) != 7 {
		t.Errorf("year spread: %v", st.Query().CountByYear())
	}
	// Deterministic: same seed, same dataset.
	again := syntheticReports(500, 7)
	for i := range reports {
		if reports[i].Device != again[i].Device || reports[i].Resolution != again[i].Resolution {
			t.Fatalf("report %d differs across runs", i)
		}
	}
}

// TestPickQueryCoversMix: a modest PRNG stream reaches every mix row.
func TestPickQueryCoversMix(t *testing.T) {
	rng := splitmix64(3)
	seen := map[string]bool{}
	for range 4096 {
		seen[pickQuery(rng.next())] = true
	}
	if len(seen) != len(queryMix) {
		t.Errorf("mix coverage: %d/%d paths drawn", len(seen), len(queryMix))
	}
}

func TestParseSteps(t *testing.T) {
	got, err := parseSteps(" 1, 2,8 ")
	if err != nil || len(got) != 3 || got[2] != 8 {
		t.Fatalf("parseSteps = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "a,b", "2,-1"} {
		if _, err := parseSteps(bad); err == nil {
			t.Errorf("parseSteps(%q) accepted", bad)
		}
	}
}
