module dcnr/cmd/dcnrlint/testdata/fixturemod

go 1.24

require dcnr v0.0.0

replace dcnr => ../../../..
