// Package clean is violation-free: the end-to-end test asserts the driver
// reports nothing for it.
package clean

import (
	"sort"

	"dcnr/internal/des"
	"dcnr/internal/simrand"
)

// Jittered schedules with seeded randomness on simulation time.
func Jittered(sim *des.Simulator, rng *simrand.Stream, h des.Handler) {
	sim.After(rng.Exp(1), h)
}

// Sorted returns map keys deterministically.
func Sorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
