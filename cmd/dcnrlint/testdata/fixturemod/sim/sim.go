// Package sim seeds one violation per analyzer so the end-to-end test can
// assert the driver walks go list packages, type-checks them against the
// dcnr module, and reports every analyzer's findings with exit status 1.
package sim

import (
	"os"
	"sync"
	"time"

	"dcnr/internal/des"
	"dcnr/internal/obs"
	"dcnr/internal/obs/journal"
)

// Scheduler owns a mutex and a simulator but schedules unlocked
// (heaplock) and stamps events with the wall clock (simdeterminism).
type Scheduler struct {
	mu  sync.Mutex
	sim *des.Simulator

	// started holds a metric by value (obsnilsafe).
	started obs.Counter
}

// Kick schedules without the lock and reads the wall clock.
func (s *Scheduler) Kick() {
	s.sim.After(float64(time.Now().Unix()%10), func(float64) {})
	s.mu.Lock()
	s.started.Inc()
	s.mu.Unlock()
}

// Log stamps a journal record with the wall clock through a local
// (simtaint: the taint flows through stamp's return value into the
// deterministic-output sink Lane.Record).
func (s *Scheduler) Log(l *journal.Lane) {
	rec := journal.Record{Kind: 1, Aux: stamp()}
	l.Record(rec)
}

func stamp() float64 {
	return float64(time.Now().UnixNano())
}

// Dump discards the close error (errchecklite).
func Dump(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	f.Close()
}
