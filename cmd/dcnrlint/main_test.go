package main

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dcnr/internal/analyzers"
)

// buildLint compiles the dcnrlint binary once per test run, into a
// directory that outlives any single test (t.TempDir is per-test).
var lintBin struct {
	once sync.Once
	path string
	err  error
}

func buildLint(t *testing.T) string {
	t.Helper()
	lintBin.once.Do(func() {
		dir, err := os.MkdirTemp("", "dcnrlint-e2e")
		if err != nil {
			lintBin.err = err
			return
		}
		lintBin.path = filepath.Join(dir, "dcnrlint")
		if out, err := exec.Command("go", "build", "-o", lintBin.path, ".").CombinedOutput(); err != nil {
			lintBin.err = errors.New(string(out))
		}
	})
	if lintBin.err != nil {
		t.Fatalf("building dcnrlint: %v", lintBin.err)
	}
	return lintBin.path
}

func TestMain(m *testing.M) {
	code := m.Run()
	if lintBin.path != "" {
		os.RemoveAll(filepath.Dir(lintBin.path))
	}
	os.Exit(code)
}

// runLint executes the binary and returns stdout, stderr, and exit code.
func runLint(t *testing.T, dir string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(buildLint(t), args...)
	cmd.Dir = dir
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		var exit *exec.ExitError
		if !errors.As(err, &exit) {
			t.Fatalf("running dcnrlint: %v\n%s", err, stderr.String())
		}
		code = exit.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

// TestFixtureModuleEndToEnd runs the built driver over the self-contained
// fixture module (its go.mod replaces dcnr with this repository), which
// seeds one violation per analyzer plus one clean package.
func TestFixtureModuleEndToEnd(t *testing.T) {
	stdout, stderr, code := runLint(t, filepath.Join("testdata", "fixturemod"), "-json", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings)\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	var diags []analyzers.Diagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("-json output is not a diagnostic array: %v\n%s", err, stdout)
	}
	want := []string{
		"sim/sim.go:23 obsnilsafe",     // value obs.Counter field
		"sim/sim.go:28 heaplock",       // sim.After without the mutex
		"sim/sim.go:28 lockflow",       // same site, proven via the unlocked path Kick
		"sim/sim.go:28 simdeterminism", // time.Now in simulation scope
		"sim/sim.go:39 simtaint",       // wall-clock stamp reaches Lane.Record
		"sim/sim.go:43 simdeterminism", // time.Now inside the stamp helper
		"sim/sim.go:52 errchecklite",   // discarded f.Close error
	}
	got := make([]string, 0, len(diags))
	for _, d := range diags {
		got = append(got, filepath.ToSlash(d.File)+":"+itoa(d.Line)+" "+d.Analyzer)
	}
	if len(got) != len(want) {
		t.Fatalf("findings mismatch:\ngot  %q\nwant %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

func TestFixtureCleanPackage(t *testing.T) {
	stdout, stderr, code := runLint(t, filepath.Join("testdata", "fixturemod"), "./clean/...")
	if code != 0 || strings.TrimSpace(stdout) != "" {
		t.Fatalf("clean package: exit %d, stdout %q, stderr %q", code, stdout, stderr)
	}
}

// TestRealTreeClean is the acceptance gate: the repository itself must
// lint clean, so `make lint` can sit in `make verify`.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("lints the whole repository")
	}
	stdout, stderr, code := runLint(t, "../..", "./...")
	if code != 0 {
		t.Fatalf("repository does not lint clean (exit %d):\n%s%s", code, stdout, stderr)
	}
}

// TestRealTreeHotClean extends the acceptance gate to the compiler-backed
// hotalloc analyzer: every //hot:noalloc region in the repository must be
// escape-free, so `make lint-hot` can gate CI.
func TestRealTreeHotClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and lints the whole repository")
	}
	stdout, stderr, code := runLint(t, "../..", "-hot", "./...")
	if code != 0 {
		t.Fatalf("repository does not pass -hot (exit %d):\n%s%s", code, stdout, stderr)
	}
}

func TestListAnalyzers(t *testing.T) {
	stdout, _, code := runLint(t, ".", "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, a := range analyzers.All {
		if !strings.Contains(stdout, a.Name) {
			t.Errorf("-list output missing %q:\n%s", a.Name, stdout)
		}
	}
	for _, name := range []string{"simtaint", "lockflow", "hotalloc"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing module analyzer %q:\n%s", name, stdout)
		}
	}
}

// TestExplain pins the -explain contract: every analyzer prints a
// non-trivial invariant statement; unknown names are a driver error.
func TestExplain(t *testing.T) {
	for _, name := range []string{"simdeterminism", "simtaint", "lockflow", "hotalloc"} {
		stdout, stderr, code := runLint(t, ".", "-explain", name)
		if code != 0 {
			t.Fatalf("-explain %s exited %d: %s", name, code, stderr)
		}
		if !strings.HasPrefix(stdout, name) || len(stdout) < 200 {
			t.Errorf("-explain %s output too thin:\n%s", name, stdout)
		}
	}
	_, stderr, code := runLint(t, ".", "-explain", "nosuch")
	if code != 2 || !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("-explain nosuch: exit %d, stderr %q", code, stderr)
	}
}

// TestGraphDOT runs -graph over the fixture module and checks the DOT
// neighborhood: the matched function is highlighted and its static call
// edge is present.
func TestGraphDOT(t *testing.T) {
	stdout, stderr, code := runLint(t, filepath.Join("testdata", "fixturemod"),
		"-graph", "Scheduler.Log", "./...")
	if code != 0 {
		t.Fatalf("-graph exited %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "digraph callgraph") {
		t.Fatalf("-graph did not emit DOT:\n%s", stdout)
	}
	if !strings.Contains(stdout, "fillcolor=lightyellow") {
		t.Errorf("-graph should highlight the matched root:\n%s", stdout)
	}
	if !strings.Contains(stdout, "Scheduler).Log\" -> ") || !strings.Contains(stdout, "stamp") {
		t.Errorf("-graph should include the Log -> stamp call edge:\n%s", stdout)
	}
}

// TestTimeFlag checks -time reports the load stage and one line per
// analyzer on stderr without disturbing the findings on stdout.
func TestTimeFlag(t *testing.T) {
	_, stderr, code := runLint(t, filepath.Join("testdata", "fixturemod"), "-time", "./clean/...")
	if code != 0 {
		t.Fatalf("-time clean run exited %d: %s", code, stderr)
	}
	for _, stage := range []string{"load", "simdeterminism", "simtaint", "lockflow"} {
		if !strings.Contains(stderr, stage) {
			t.Errorf("-time output missing stage %q:\n%s", stage, stderr)
		}
	}
}

// TestJSONEmptyArray pins the tooling contract: no findings still emits a
// valid (empty) JSON array, not null.
func TestJSONEmptyArray(t *testing.T) {
	stdout, _, code := runLint(t, filepath.Join("testdata", "fixturemod"), "-json", "./clean/...")
	if code != 0 {
		t.Fatalf("clean -json run exited %d", code)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Errorf("empty findings should encode as []: %q", stdout)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
