// Command dcnrlint runs the project-invariant static analysis suite
// (internal/analyzers) over Go packages and reports findings.
//
// Usage:
//
//	dcnrlint [-C dir] [-json] [-list] [-hot] [-time] [packages...]
//	dcnrlint -explain <analyzer>
//	dcnrlint [-C dir] -graph <func> [-depth n] [packages...]
//
// Packages default to ./... and accept any `go list` pattern. Exit status
// is 0 with no findings, 1 when diagnostics were reported, and 2 on driver
// failure (unparseable or untypeable source, go list errors).
//
// The default run executes the per-package analyzers plus the
// inter-procedural module analyzers (simtaint, lockflow). -hot adds the
// compiler-backed hotalloc gate, which shells out to `go build
// -gcflags=-m` and is therefore split into its own `make lint-hot`
// target. -time appends per-analyzer wall timings to stderr so lint
// latency stays visible in CI logs.
//
// -explain prints an analyzer's full invariant contract (what it checks,
// why, and where its golden fixture lives). -graph emits the call-graph
// neighborhood of a function — every node within -depth call hops — as
// Graphviz DOT on stdout, for debugging inter-procedural findings.
//
// Findings print as file:line:col: message (analyzer); -json emits the
// same diagnostics as a JSON array for tooling. A finding is suppressed by
// a `//lint:allow <analyzer> [reason]` comment on the flagged line or the
// line directly above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"dcnr/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("dcnrlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	list := fs.Bool("list", false, "list analyzers and exit")
	dir := fs.String("C", ".", "run as if started in this directory")
	hot := fs.Bool("hot", false, "also run the compiler-backed hotalloc gate")
	timings := fs.Bool("time", false, "report per-analyzer wall timings on stderr")
	explain := fs.String("explain", "", "print an analyzer's invariant contract and exit")
	graph := fs.String("graph", "", "emit the call-graph neighborhood of a function as DOT")
	depth := fs.Int("depth", 2, "call-hop radius for -graph")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers.All {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		for _, a := range analyzers.AllModule {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-16s %s\n", analyzers.HotAlloc.Name, analyzers.HotAlloc.Doc)
		return 0
	}
	if *explain != "" {
		return runExplain(*explain)
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if *graph != "" {
		return runGraph(*dir, patterns, *graph, *depth)
	}

	modList := analyzers.AllModule
	if *hot {
		modList = append(append([]*analyzers.ModuleAnalyzer{}, modList...), analyzers.HotAlloc)
	}
	diags, wall, err := analyzers.RunModule(*dir, patterns, analyzers.All, modList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcnrlint: %v\n", err)
		return 2
	}
	if *timings {
		for _, t := range wall {
			fmt.Fprintf(os.Stderr, "dcnrlint: %-16s %8.1fms\n", t.Name, float64(t.Wall.Microseconds())/1000)
		}
	}
	// The findings are the product: a failed write to stdout (a closed
	// pipe under `head`, say) must not masquerade as a clean run.
	if err := printDiags(os.Stdout, diags, *jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "dcnrlint: writing diagnostics: %v\n", err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// runExplain prints the named analyzer's contract: the one-line doc, then
// the full invariant statement with its fixture pointer.
func runExplain(name string) int {
	var doc, contract string
	if a := analyzers.ByName(name); a != nil {
		doc, contract = a.Doc, a.Contract
	} else if a := analyzers.ModuleByName(name); a != nil {
		doc, contract = a.Doc, a.Contract
	} else {
		fmt.Fprintf(os.Stderr, "dcnrlint: unknown analyzer %q (see -list)\n", name)
		return 2
	}
	fmt.Printf("%s — %s\n\n%s\n", name, doc, contract)
	return 0
}

// runGraph loads the module and writes the DOT neighborhood of the
// matched function(s) to stdout.
func runGraph(dir string, patterns []string, fn string, depth int) int {
	m, err := analyzers.LoadModule(dir, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcnrlint: %v\n", err)
		return 2
	}
	if err := m.Graph().WriteDOT(os.Stdout, fn, depth); err != nil {
		fmt.Fprintf(os.Stderr, "dcnrlint: %v\n", err)
		return 2
	}
	return 0
}

func printDiags(w io.Writer, diags []analyzers.Diagnostic, jsonOut bool) error {
	if jsonOut {
		if diags == nil {
			diags = []analyzers.Diagnostic{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(diags)
	}
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return err
		}
	}
	return nil
}
