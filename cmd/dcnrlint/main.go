// Command dcnrlint runs the project-invariant static analysis suite
// (internal/analyzers) over Go packages and reports findings.
//
// Usage:
//
//	dcnrlint [-C dir] [-json] [-list] [packages...]
//
// Packages default to ./... and accept any `go list` pattern. Exit status
// is 0 with no findings, 1 when diagnostics were reported, and 2 on driver
// failure (unparseable or untypeable source, go list errors).
//
// Findings print as file:line:col: message (analyzer); -json emits the
// same diagnostics as a JSON array for tooling. A finding is suppressed by
// a `//lint:allow <analyzer> [reason]` comment on the flagged line or the
// line directly above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"dcnr/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("dcnrlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	list := fs.Bool("list", false, "list analyzers and exit")
	dir := fs.String("C", ".", "run as if started in this directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers.All {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analyzers.Run(*dir, patterns, analyzers.All)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcnrlint: %v\n", err)
		return 2
	}
	// The findings are the product: a failed write to stdout (a closed
	// pipe under `head`, say) must not masquerade as a clean run.
	if err := printDiags(os.Stdout, diags, *jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "dcnrlint: writing diagnostics: %v\n", err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func printDiags(w io.Writer, diags []analyzers.Diagnostic, jsonOut bool) error {
	if jsonOut {
		if diags == nil {
			diags = []analyzers.Diagnostic{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(diags)
	}
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return err
		}
	}
	return nil
}
