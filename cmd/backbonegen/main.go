// Command backbonegen exercises the full inter-data-center pipeline over a
// real network socket: it simulates the backbone, plays each vendor's
// repair notices through the TCP notification protocol to a collector, and
// prints the reliability analysis of what the collector reconstructed —
// the §4.3.2 ingest path end to end.
//
// Usage:
//
//	backbonegen [-seed N] [-edges N] [-months N] [-listen 127.0.0.1:0]
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"flag"

	"dcnr"
	"dcnr/internal/notify"
	"dcnr/internal/report"
)

func main() {
	var (
		seed   = flag.Uint64("seed", 20161001, "simulation seed")
		edges  = flag.Int("edges", 120, "number of edge nodes")
		months = flag.Int("months", 18, "observation window in months")
		listen = flag.String("listen", "127.0.0.1:0", "collector listen address")
	)
	flag.Parse()
	if err := run(*seed, *edges, *months, *listen); err != nil {
		fmt.Fprintln(os.Stderr, "backbonegen:", err)
		os.Exit(1)
	}
}

func run(seed uint64, edges, months int, listen string) error {
	cfg := dcnr.DefaultBackboneConfig()
	cfg.Seed = seed
	cfg.Edges = edges
	cfg.Months = months
	res, err := dcnr.SimulateBackbone(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("simulated %d months: %d edges, %d links, %d vendors, %d notices\n",
		months, len(res.Topology.Edges), len(res.Topology.Links),
		len(res.Topology.Vendors), len(res.Notices))

	// Collector side: parse each message off the wire into the ticket
	// store.
	coll := dcnr.NewTicketCollector()
	coll.WindowHours = cfg.WindowHours()
	server := notify.NewServer(func(text string) error {
		return coll.IngestText(text)
	})
	addr, err := server.Start(listen)
	if err != nil {
		return err
	}
	defer server.Close()
	fmt.Printf("collector listening on %s\n", addr)

	// Vendor side: group notices per vendor and deliver each vendor's
	// stream over its own connection.
	byVendor := make(map[string][]string)
	var vendorOrder []string
	for _, n := range res.Notices {
		if _, ok := byVendor[n.Vendor]; !ok {
			vendorOrder = append(vendorOrder, n.Vendor)
		}
		byVendor[n.Vendor] = append(byVendor[n.Vendor], n.Format())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	sent := 0
	for _, vendor := range vendorOrder {
		if err := notify.SendAll(ctx, addr, byVendor[vendor]); err != nil {
			return fmt.Errorf("delivering %s notices: %w", vendor, err)
		}
		sent += len(byVendor[vendor])
	}
	fmt.Printf("delivered %d notices over TCP; collector reconstructed %d intervals (%d still open)\n\n",
		sent, len(coll.Downtimes()), coll.Open())

	// Analyze what actually arrived.
	analysis, err := newAnalysis(res, coll, cfg.WindowHours())
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   "Backbone reliability (from wire-delivered tickets)",
		Headers: []string{"Metric", "p50", "p90", "Model"},
	}
	addCurve := func(name string, metric map[string]float64, fitted bool) {
		curve := dcnr.Curve(metric)
		if len(curve) == 0 {
			t.AddRow(name, "-", "-", "-")
			return
		}
		p50 := curve[len(curve)/2].Y
		p90 := curve[len(curve)*9/10].Y
		model := "-"
		if fitted {
			if fit, err := dcnr.FitCurve(metric); err == nil {
				model = fmt.Sprintf("%.2f*e^(%.2fp) R2=%.2f", fit.A, fit.B, fit.R2)
			}
		}
		t.AddRow(name, report.F(p50), report.F(p90), model)
	}
	addCurve("edge MTBF (h)", analysis.EdgeMTBF(), true)
	addCurve("edge MTTR (h)", analysis.EdgeMTTR(), true)
	addCurve("vendor MTBF (h)", analysis.VendorMTBF(), false)
	addCurve("vendor MTTR (h)", analysis.VendorMTTR(), true)
	return t.Render(os.Stdout)
}

func newAnalysis(res *dcnr.BackboneResult, coll *dcnr.TicketCollector, window float64) (*dcnr.InterAnalysis, error) {
	return dcnr.NewInterAnalysis(res.Topology, coll.Downtimes(), window)
}
