package main

import "testing"

func TestRunSmallPipeline(t *testing.T) {
	// A small end-to-end run over a real loopback socket.
	if err := run(5, 12, 3, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadConfig(t *testing.T) {
	if err := run(1, 2, 3, "127.0.0.1:0"); err == nil {
		t.Error("too-few-edges config accepted")
	}
	if err := run(1, 12, 3, "256.0.0.1:99999"); err == nil {
		t.Error("invalid listen address accepted")
	}
}
