package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// maxPoints bounds each metric's in-memory history: enough for the widest
// plausible sparkline many times over, tiny either way.
const maxPoints = 600

// histories accumulates per-metric sample values from the timeline's SSE
// stream, keeping the most recent maxPoints of each.
type histories struct {
	mu   sync.Mutex
	max  int
	data map[string][]float64
}

func newHistories(max int) *histories {
	return &histories{max: max, data: make(map[string][]float64)}
}

// add appends one sample value to metric's history, evicting the oldest
// point once the cap is reached.
func (h *histories) add(metric string, v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	vals := append(h.data[metric], v)
	if len(vals) > h.max {
		vals = vals[len(vals)-h.max:]
	}
	h.data[metric] = vals
}

// snapshot returns a copy of every history, so rendering never races the
// SSE follower.
func (h *histories) snapshot() map[string][]float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string][]float64, len(h.data))
	for m, vals := range h.data {
		out[m] = append([]float64(nil), vals...)
	}
	return out
}

// metricNames returns the history's metric names, sorted for a stable
// render order.
func metricNames(hist map[string][]float64) []string {
	names := make([]string, 0, len(hist))
	for m := range hist {
		names = append(names, m)
	}
	sort.Strings(names)
	return names
}

// follow consumes the timeline SSE stream at url, feeding every sample
// into the history, reconnecting (with a fixed short backoff) until ctx is
// canceled. Errors are absorbed: a dashboard whose history source is down
// keeps rendering the campaign snapshot with empty sparklines.
func (h *histories) follow(ctx context.Context, url string) {
	for ctx.Err() == nil {
		h.followOnce(ctx, url)
		select {
		case <-ctx.Done():
		case <-time.After(time.Second):
		}
	}
}

// followOnce holds one SSE connection open, ingesting events until the
// stream ends or ctx is canceled.
func (h *histories) followOnce(ctx context.Context, url string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var data []string
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case line == "":
			h.ingest(strings.Join(data, "\n"))
			data = data[:0]
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		}
	}
}

// ingest parses one SSE event payload — a chunk of timeline JSONL — and
// records every sample it carries. Unparseable lines are skipped: one
// malformed sample must not wedge the stream.
func (h *histories) ingest(payload string) {
	for _, line := range strings.Split(payload, "\n") {
		if line == "" {
			continue
		}
		var s struct {
			M string  `json:"m"`
			V float64 `json:"v"`
		}
		if err := json.Unmarshal([]byte(line), &s); err != nil || s.M == "" {
			continue
		}
		h.add(s.M, s.V)
	}
}
