package main

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dcnr"
)

func TestSparkline(t *testing.T) {
	got := sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if got != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp sparkline = %q", got)
	}
	if got := sparkline([]float64{5, 5, 5}, 3); got != "▁▁▁" {
		t.Errorf("flat sparkline = %q, want lowest blocks", got)
	}
	// Windows to the last width values and pads short series.
	if got := sparkline([]float64{9, 9, 0, 8}, 2); got != "▁█" {
		t.Errorf("windowed sparkline = %q", got)
	}
	if got := sparkline([]float64{1}, 3); got != "▁  " {
		t.Errorf("padded sparkline = %q", got)
	}
	if got := sparkline(nil, 4); got != "    " {
		t.Errorf("empty sparkline = %q", got)
	}
}

func TestProgressBar(t *testing.T) {
	if got := progressBar(2, 4, 8); got != "[████░░░░]  50%" {
		t.Errorf("half bar = %q", got)
	}
	if got := progressBar(4, 4, 4); got != "[████] 100%" {
		t.Errorf("full bar = %q", got)
	}
	if got := progressBar(0, 0, 4); got != "[░░░░]   0%" {
		t.Errorf("empty-grid bar = %q", got)
	}
}

func TestFmtHelpers(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{950, "950"}, {8200, "8200"}, {82000, "82.0k"},
		{71_500_000, "71.5M"}, {2.5e9, "2.5G"}, {3.25, "3.2"},
	}
	for _, c := range cases {
		if got := fmtCount(c.v); got != c.want {
			t.Errorf("fmtCount(%g) = %q, want %q", c.v, got, c.want)
		}
	}
	if got := fmtSeconds(3723); got != "1h02m03s" {
		t.Errorf("fmtSeconds(3723) = %q", got)
	}
	if got := fmtSeconds(63); got != "1m03s" {
		t.Errorf("fmtSeconds(63) = %q", got)
	}
	if got := fmtSeconds(9); got != "9s" {
		t.Errorf("fmtSeconds(9) = %q", got)
	}
}

func TestScenarioRows(t *testing.T) {
	runs := []dcnr.SweepRunStatus{
		{Scenario: "baseline", State: "done", EventsPerSec: 100, SimHoursPerSec: 10},
		{Scenario: "baseline", State: "done", EventsPerSec: 300, SimHoursPerSec: 30},
		{Scenario: "baseline", State: "running", Straggler: true},
		{Scenario: "no-remediation", State: "failed"},
	}
	rows := scenarioRows(runs)
	if len(rows) != 2 {
		t.Fatalf("got %d scenario rows, want 2", len(rows))
	}
	b := rows[0]
	if b.name != "baseline" || b.done != 2 || b.running != 1 || b.total != 3 {
		t.Errorf("baseline row = %+v", b)
	}
	if b.evPerSec != 200 || b.simHPerSec != 20 {
		t.Errorf("baseline means = (%g ev/s, %g sim-h/s), want (200, 20)", b.evPerSec, b.simHPerSec)
	}
	if b.stragglers != 1 {
		t.Errorf("baseline stragglers = %d, want 1", b.stragglers)
	}
	if n := rows[1]; n.name != "no-remediation" || n.failed != 1 {
		t.Errorf("no-remediation row = %+v", n)
	}
}

func TestRenderFrame(t *testing.T) {
	cs := dcnr.SweepCampaignStatus{
		Total: 4, Completed: 2, Running: 1,
		ElapsedSeconds: 12,
		Events:         150000, SimHours: 17520,
		Runs: []dcnr.SweepRunStatus{
			{Scenario: "baseline", State: "done", EventsPerSec: 5000, SimHoursPerSec: 800},
			{Scenario: "baseline", State: "done", EventsPerSec: 7000, SimHoursPerSec: 1000},
			{Scenario: "baseline", State: "running"},
			{Scenario: "baseline", State: "pending"},
		},
	}
	hist := map[string][]float64{"sweep_runs_total": {0, 1, 2}}
	frame := renderFrame(cs, hist, 80)
	for _, want := range []string{
		"2/4 done", "1 running", "elapsed 12s",
		"baseline", "events/s", "6000",
		"sweep_runs_total", "▁▄█",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
}

func TestHistoriesIngestAndCap(t *testing.T) {
	h := newHistories(3)
	h.ingest(`{"t":1,"m":"a","v":1}` + "\n" + `{"t":2,"m":"b","v":9}` + "\nnot json\n")
	for i := 0; i < 5; i++ {
		h.add("a", float64(i))
	}
	snap := h.snapshot()
	if want := []float64{2, 3, 4}; len(snap["a"]) != 3 || snap["a"][0] != want[0] || snap["a"][2] != want[2] {
		t.Errorf("capped history = %v, want %v", snap["a"], want)
	}
	if len(snap["b"]) != 1 || snap["b"][0] != 9 {
		t.Errorf("ingested history b = %v", snap["b"])
	}
	if names := metricNames(snap); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("metric names = %v", names)
	}
}

// TestWatchAgainstStatusServer drives the dashboard end to end against a
// real sweep status handler: a tiny campaign completes, the timeline SSE
// stream feeds the sparklines, and watch exits on its own once every run
// is done.
func TestWatchAgainstStatusServer(t *testing.T) {
	status := dcnr.NewSweepStatus()
	tl := dcnr.NewTimeline(0)
	reg := dcnr.NewMetricsRegistry()
	reg.Counter("sweep_runs_total").Inc()
	smp := dcnr.NewTimelineSampler(tl, "wall", reg, []string{"sweep_runs_total"}, nil)
	smp.Sample(1)
	smp.Flush()
	status.AttachTimeline(tl)
	srv := httptest.NewServer(status.Handler())
	// Teardown order (defers run last-in-first-out): cancel the watcher's
	// context so the SSE follower stops reconnecting, close the timeline so
	// the in-flight /metrics/history/events handler returns, then close the
	// server (which waits for active requests).
	defer srv.Close()
	defer tl.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	done := make(chan error, 1)
	var buf syncBuffer
	go func() {
		done <- watch(ctx, &buf, srv.URL, 10*time.Millisecond, 60, 0)
	}()

	// SSE subscribers only see blocks flushed after they connect, so keep
	// the timeline moving while the dashboard watches.
	go func() {
		for i := 2; ; i++ {
			select {
			case <-ctx.Done():
				return
			case <-time.After(5 * time.Millisecond):
			}
			reg.Counter("sweep_runs_total").Inc()
			smp.Sample(float64(i))
			smp.Flush()
		}
	}()

	// Hold the sweep until a rendered frame proves the SSE pipeline is
	// live end to end — the campaign can otherwise finish (and the
	// dashboard exit) before the follower has connected.
	deadline := time.Now().Add(30 * time.Second)
	for !strings.Contains(buf.String(), "sweep_runs_total") {
		if time.Now().After(deadline) {
			t.Fatal("no timeline samples reached the dashboard")
		}
		time.Sleep(5 * time.Millisecond)
	}

	sweepDone := make(chan error, 1)
	go func() {
		_, err := dcnr.Sweep(dcnr.SweepConfig{
			Seeds:     []uint64{1},
			Scenarios: []dcnr.SweepScenario{{Name: "baseline", FromYear: 2014, ToYear: 2014}},
			Status:    status,
		})
		sweepDone <- err
	}()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("watch: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("watch did not exit after the campaign finished")
	}
	if err := <-sweepDone; err != nil {
		t.Fatalf("sweep: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"1/1 done", "baseline", "100%", "sweep_runs_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard output missing %q", want)
		}
	}
}

// TestWatchFramesLimit pins -frames: the loop exits after N frames even
// while the campaign is still pending.
func TestWatchFramesLimit(t *testing.T) {
	status := dcnr.NewSweepStatus()
	srv := httptest.NewServer(status.Handler())
	defer srv.Close()
	var buf syncBuffer
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := watch(ctx, &buf, srv.URL, time.Millisecond, 60, 2); err != nil {
		t.Fatalf("watch: %v", err)
	}
	if got := strings.Count(buf.String(), "dcnr campaign"); got != 2 {
		t.Errorf("rendered %d frames, want 2", got)
	}
}

// TestWatchServerGone pins the end-of-campaign shape: once at least one
// frame has rendered, the status server disappearing (dcsweep tears it
// down when the last run finishes) ends the watch cleanly instead of
// erroring.
func TestWatchServerGone(t *testing.T) {
	status := dcnr.NewSweepStatus()
	srv := httptest.NewServer(status.Handler())
	var buf syncBuffer
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	done := make(chan error, 1)
	go func() {
		done <- watch(ctx, &buf, srv.URL, time.Millisecond, 60, 0)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(buf.String(), "dcnr campaign") {
		if time.Now().After(deadline) {
			t.Fatal("no frame rendered before server shutdown")
		}
		time.Sleep(time.Millisecond)
	}
	srv.Close()
	if err := <-done; err != nil {
		t.Fatalf("watch after server shutdown: %v", err)
	}
	if !strings.Contains(buf.String(), "gone") {
		t.Error("missing server-gone notice in dashboard output")
	}

	// With no frame ever rendered, the same failure is a real error.
	if err := watch(ctx, &buf, srv.URL, time.Millisecond, 60, 0); err == nil {
		t.Error("watch against a dead server returned nil on the first poll")
	}
}

// TestFetchCampaignErrors pins the failure modes: non-200 and bad JSON.
func TestFetchCampaignErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/bad":
			http.Error(w, "nope", http.StatusNotFound)
		default:
			_, _ = w.Write([]byte("not json"))
		}
	}))
	defer srv.Close()
	client := srv.Client()
	if _, err := fetchCampaign(context.Background(), client, srv.URL+"/bad"); err == nil {
		t.Error("no error for 404 response")
	}
	if _, err := fetchCampaign(context.Background(), client, srv.URL+"/garbled"); err == nil {
		t.Error("no error for malformed JSON")
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: watch writes from its own
// goroutine while assertions read after it exits.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
