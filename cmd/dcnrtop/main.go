// Command dcnrtop is a live terminal dashboard for a running dcsweep
// campaign: point it at the sweep's -status-addr and it renders campaign
// progress, per-scenario throughput, and sparkline metric histories in
// place, top-style, until the campaign finishes.
//
// Usage:
//
//	dcnrtop [-addr HOST:PORT] [-interval DUR] [-width N] [-frames N]
//
// The dashboard is read-only and stdlib-only: it polls /campaign for the
// snapshot (progress grid, per-run resource attribution, straggler flags)
// and follows the /metrics/history/events SSE stream for the wall-clock
// metric timeline behind the sparklines. Endpoints that are absent (an
// older server, or no timeline attached) degrade to empty sections — the
// dashboard never fails because one source is missing.
//
// -interval sets the poll-and-redraw cadence (default 1s). -frames, when
// positive, exits after that many frames — useful for scripting and
// capturing a single snapshot (-frames 1). Otherwise dcnrtop exits when
// every run has finished, or on interrupt.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"dcnr"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:8080", "dcsweep -status-addr to watch")
		interval = flag.Duration("interval", time.Second, "poll and redraw cadence")
		width    = flag.Int("width", 80, "render width in columns")
		frames   = flag.Int("frames", 0, "exit after N frames (0 = until the campaign finishes)")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := watch(ctx, os.Stdout, "http://"+*addr, *interval, *width, *frames); err != nil &&
		!errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "dcnrtop:", err)
		os.Exit(1)
	}
}

// ANSI control fragments: redraw in place rather than scroll, and keep the
// cursor out of the way while the dashboard owns the terminal.
const (
	ansiClearHome  = "\x1b[H\x1b[2J"
	ansiHideCursor = "\x1b[?25l"
	ansiShowCursor = "\x1b[?25h"
)

// watch runs the poll-render loop against base until the campaign
// finishes, maxFrames frames have rendered, or ctx is canceled.
func watch(ctx context.Context, w io.Writer, base string, interval time.Duration, width, maxFrames int) error {
	client := &http.Client{Timeout: 5 * time.Second}
	hist := newHistories(maxPoints)
	go hist.follow(ctx, base+"/metrics/history/events")

	if _, err := io.WriteString(w, ansiHideCursor); err != nil {
		return err
	}
	// The restore error is consciously dropped: a terminal that cannot
	// take the escape sequence anymore has nothing left to un-hide.
	defer func() { _, _ = io.WriteString(w, ansiShowCursor) }()

	for frame := 1; ; frame++ {
		cs, err := fetchCampaign(ctx, client, base+"/campaign")
		if err != nil {
			// After a first successful frame, the server disappearing is the
			// normal end of a watch: dcsweep tears the status listener down
			// when the campaign finishes, and the final run can complete
			// between two polls. Before any frame it is a real error (wrong
			// address, nothing listening).
			if frame > 1 && ctx.Err() == nil {
				_, _ = fmt.Fprintf(w, "\nstatus server at %s gone — campaign finished or server stopped\n", base)
				return nil
			}
			return err
		}
		out := ansiClearHome + renderFrame(cs, hist.snapshot(), width)
		if _, err := io.WriteString(w, out); err != nil {
			return err
		}
		if maxFrames > 0 && frame >= maxFrames {
			return nil
		}
		if cs.Total > 0 && cs.Completed+cs.Failed == cs.Total {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(interval):
		}
	}
}

// fetchCampaign GETs and decodes one campaign snapshot.
func fetchCampaign(ctx context.Context, client *http.Client, url string) (dcnr.SweepCampaignStatus, error) {
	var cs dcnr.SweepCampaignStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return cs, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return cs, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return cs, fmt.Errorf("GET %s: status %s", url, strings.TrimSpace(resp.Status))
	}
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		return cs, fmt.Errorf("GET %s: decoding snapshot: %w", url, err)
	}
	return cs, nil
}
