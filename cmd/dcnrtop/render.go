package main

import (
	"fmt"
	"strings"

	"dcnr"
)

// sparkTicks are the eight block glyphs a sparkline quantizes into.
var sparkTicks = []rune("▁▂▃▄▅▆▇█")

// renderFrame assembles one full dashboard frame: header, progress bar,
// per-scenario throughput table, and the sparkline metric histories.
// It is a pure function of its inputs, so frames are directly testable.
func renderFrame(cs dcnr.SweepCampaignStatus, hist map[string][]float64, width int) string {
	if width < 40 {
		width = 40
	}
	var b strings.Builder
	fmt.Fprintf(&b, "dcnr campaign  %d/%d done  %d running  %d failed  elapsed %s\n",
		cs.Completed, cs.Total, cs.Running, cs.Failed, fmtSeconds(cs.ElapsedSeconds))
	if cs.Events > 0 {
		fmt.Fprintf(&b, "simulated %s events, %s sim-hours across completed runs\n",
			fmtCount(float64(cs.Events)), fmtCount(cs.SimHours))
	}
	b.WriteString(progressBar(cs.Completed+cs.Failed, cs.Total, width-10))
	b.WriteString("\n\n")
	b.WriteString(scenarioTable(cs.Runs))
	if len(hist) > 0 {
		b.WriteString("\n")
		b.WriteString(sparklineSection(hist, width))
	}
	return b.String()
}

// progressBar renders completion as a fixed-width bar: █ done, ░ to go.
func progressBar(done, total, width int) string {
	if width < 1 {
		width = 1
	}
	filled := 0
	if total > 0 {
		filled = done * width / total
	}
	if filled > width {
		filled = width
	}
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(done) / float64(total)
	}
	return fmt.Sprintf("[%s%s] %3.0f%%",
		strings.Repeat("█", filled), strings.Repeat("░", width-filled), pct)
}

// scenarioRow is one scenario's aggregate over the campaign grid.
type scenarioRow struct {
	name       string
	done       int
	total      int
	running    int
	failed     int
	stragglers int
	evPerSec   float64 // mean over completed runs
	simHPerSec float64 // mean over completed runs
}

// scenarioRows folds the per-run grid into one row per scenario, in first-
// appearance (grid) order.
func scenarioRows(runs []dcnr.SweepRunStatus) []scenarioRow {
	idx := make(map[string]int)
	var rows []scenarioRow
	for _, r := range runs {
		i, ok := idx[r.Scenario]
		if !ok {
			i = len(rows)
			idx[r.Scenario] = i
			rows = append(rows, scenarioRow{name: r.Scenario})
		}
		row := &rows[i]
		row.total++
		switch r.State {
		case "done":
			row.done++
			row.evPerSec += r.EventsPerSec
			row.simHPerSec += r.SimHoursPerSec
		case "running":
			row.running++
		case "failed":
			row.failed++
		}
		if r.Straggler {
			row.stragglers++
		}
	}
	for i := range rows {
		if rows[i].done > 0 {
			rows[i].evPerSec /= float64(rows[i].done)
			rows[i].simHPerSec /= float64(rows[i].done)
		}
	}
	return rows
}

// scenarioTable renders the per-scenario throughput table.
func scenarioTable(runs []dcnr.SweepRunStatus) string {
	rows := scenarioRows(runs)
	if len(rows) == 0 {
		return "(no runs)\n"
	}
	nameW := len("scenario")
	for _, r := range rows {
		if len(r.name) > nameW {
			nameW = len(r.name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  %9s  %7s  %10s  %10s  %s\n",
		nameW, "scenario", "done", "running", "events/s", "sim-h/s", "notes")
	for _, r := range rows {
		notes := ""
		if r.failed > 0 {
			notes = fmt.Sprintf("%d failed", r.failed)
		}
		if r.stragglers > 0 {
			if notes != "" {
				notes += ", "
			}
			notes += fmt.Sprintf("%d straggling", r.stragglers)
		}
		fmt.Fprintf(&b, "%-*s  %5d/%-3d  %7d  %10s  %10s  %s\n",
			nameW, r.name, r.done, r.total, r.running,
			fmtCount(r.evPerSec), fmtCount(r.simHPerSec), notes)
	}
	return b.String()
}

// sparklineSection renders one sparkline row per metric, sorted by name.
func sparklineSection(hist map[string][]float64, width int) string {
	names := metricNames(hist)
	nameW := 0
	for _, m := range names {
		if len(m) > nameW {
			nameW = len(m)
		}
	}
	sparkW := width - nameW - 16
	if sparkW < 8 {
		sparkW = 8
	}
	var b strings.Builder
	for _, m := range names {
		vals := hist[m]
		last := 0.0
		if len(vals) > 0 {
			last = vals[len(vals)-1]
		}
		fmt.Fprintf(&b, "%-*s %s %s\n", nameW, m, sparkline(vals, sparkW), fmtCount(last))
	}
	return b.String()
}

// sparkline quantizes the last width values into the eight block glyphs,
// scaled between the window's min and max (a flat series renders as the
// lowest block).
func sparkline(vals []float64, width int) string {
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	if len(vals) == 0 {
		return strings.Repeat(" ", width)
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		tick := 0
		if hi > lo {
			tick = int((v - lo) / (hi - lo) * float64(len(sparkTicks)-1))
		}
		b.WriteRune(sparkTicks[tick])
	}
	if pad := width - len(vals); pad > 0 {
		b.WriteString(strings.Repeat(" ", pad))
	}
	return b.String()
}

// fmtCount humanizes a non-negative magnitude: 950, 8.2k, 71.5M.
func fmtCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	case v == float64(int64(v)):
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// fmtSeconds renders a duration in whole seconds as 1h02m03s style.
func fmtSeconds(s float64) string {
	sec := int(s)
	switch {
	case sec >= 3600:
		return fmt.Sprintf("%dh%02dm%02ds", sec/3600, sec%3600/60, sec%60)
	case sec >= 60:
		return fmt.Sprintf("%dm%02ds", sec/60, sec%60)
	default:
		return fmt.Sprintf("%ds", sec)
	}
}
