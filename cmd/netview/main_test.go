package main

import (
	"strings"
	"testing"
)

func TestRunBothDesigns(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "both", 4, 16); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Layers", "RSW", "Core", "cluster", "fabric", "Path diversity"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSingleDesigns(t *testing.T) {
	for _, d := range []string{"cluster", "fabric"} {
		var b strings.Builder
		if err := run(&b, d, 2, 4); err != nil {
			t.Fatalf("%s: %v", d, err)
		}
	}
}

func TestRunBadInput(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "mesh", 2, 4); err == nil {
		t.Error("unknown design accepted")
	}
	if err := run(&b, "cluster", 0, 4); err == nil {
		t.Error("zero units accepted")
	}
}
