// Command netview prints a textual rendering of Figure 1: the layered
// architecture of a cluster-design and/or fabric-design data center, with
// per-layer populations, connectivity degrees, blast radii, and path
// diversity — the structural facts the paper's reliability arguments rest
// on.
//
// Usage:
//
//	netview [-design cluster|fabric|both] [-units N] [-racks N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dcnr"
	"dcnr/internal/report"
)

func main() {
	var (
		design = flag.String("design", "both", "network design: cluster, fabric, or both")
		units  = flag.Int("units", 4, "clusters (cluster design) or pods (fabric design) per data center")
		racks  = flag.Int("racks", 16, "racks per cluster/pod")
	)
	flag.Parse()
	if err := run(os.Stdout, *design, *units, *racks); err != nil {
		fmt.Fprintln(os.Stderr, "netview:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, design string, units, racks int) error {
	net := dcnr.NewNetwork()
	var clusterCores, fabricCores []string
	var err error
	wantCluster := design == "cluster" || design == "both"
	wantFabric := design == "fabric" || design == "both"
	if !wantCluster && !wantFabric {
		return fmt.Errorf("unknown design %q (cluster, fabric, both)", design)
	}
	if wantCluster {
		clusterCores, err = dcnr.BuildCluster(net, dcnr.ClusterSpec{
			DC: "dc1", Region: "regiona", Clusters: units, RacksPerCluster: racks,
		})
		if err != nil {
			return err
		}
	}
	if wantFabric {
		fabricCores, err = dcnr.BuildFabric(net, dcnr.FabricSpec{
			DC: "dc2", Region: "regionb", Pods: units, RacksPerPod: racks,
		})
		if err != nil {
			return err
		}
	}
	if wantCluster && wantFabric {
		if err := dcnr.InterconnectCores(net, clusterCores, fabricCores); err != nil {
			return err
		}
	}

	if _, err := fmt.Fprintf(w, "network: %d devices, %d links\n\n", net.NumDevices(), net.NumLinks()); err != nil {
		return err
	}

	t := &report.Table{
		Title:   "Layers (Figure 1)",
		Headers: []string{"Type", "Design", "Count", "Degree", "Downstream racks", "Commodity", "Auto-repair"},
	}
	for _, dt := range dcnr.IntraDCTypes {
		devices := net.DevicesOfType(dt)
		if len(devices) == 0 {
			continue
		}
		sample := devices[0]
		t.AddRow(dt.String(), dt.Design().String(), fmt.Sprint(len(devices)),
			fmt.Sprint(net.Degree(sample.Name)),
			fmt.Sprint(net.DownstreamRacks(sample.Name)),
			fmt.Sprint(dt.Commodity()), fmt.Sprint(dcnr.RemediationSupported(dt)))
	}
	if err := t.Render(w); err != nil {
		return err
	}

	// Path diversity: the redundancy the reliability arguments lean on.
	pd := &report.Table{
		Title:   "Path diversity (rack to core)",
		Headers: []string{"Design", "Shortest path", "Node-disjoint paths"},
	}
	addPath := func(label string, cores []string) {
		if len(cores) == 0 {
			return
		}
		for _, rsw := range net.DevicesOfType(dcnr.RSW) {
			if !net.Reachable(rsw.Name, cores[0], nil) {
				continue
			}
			r := dcnr.NewRouter(net)
			path := r.Path(rsw.Name, cores[0])
			pd.AddRow(label, strings.Join(pathTypes(net, path), " → "),
				fmt.Sprint(net.DisjointPaths(rsw.Name, cores[0])))
			return
		}
	}
	addPath("cluster", clusterCores)
	addPath("fabric", fabricCores)
	return pd.Render(w)
}

func pathTypes(net *dcnr.Network, path []string) []string {
	out := make([]string, 0, len(path))
	for _, name := range path {
		out = append(out, net.Device(name).Type.String())
	}
	return out
}
