package main

import (
	"os"
	"path/filepath"
	"testing"

	"dcnr"
)

func datasetFile(t *testing.T) string {
	t.Helper()
	store := dcnr.NewSEVStore()
	reports := []dcnr.SEVReport{
		{Severity: dcnr.Sev3, Device: "rsw001.cl001.dc1.ra", RootCauses: []dcnr.RootCause{dcnr.Hardware}, Start: 1, Duration: 1, Resolution: 2, Year: 2016, Title: "a"},
		{Severity: dcnr.Sev1, Device: "core001.dc1.ra", RootCauses: []dcnr.RootCause{dcnr.Configuration}, Start: 2, Duration: 1, Resolution: 2, Year: 2017, Title: "b"},
		{Severity: dcnr.Sev2, Device: "csw001.cl001.dc1.ra", Start: 3, Duration: 1, Resolution: 2, Year: 2017, Title: "c"},
	}
	for _, r := range reports {
		if _, err := store.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "sevs.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := store.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestQueriesAndGroupings(t *testing.T) {
	path := datasetFile(t)
	cases := []struct {
		name string
		call func() error
	}{
		{"list", func() error { return run(path, 0, "", 0, "", "", 10) }},
		{"year filter", func() error { return run(path, 2017, "", 0, "", "", 10) }},
		{"type filter", func() error { return run(path, 0, "RSW", 0, "", "", 10) }},
		{"severity filter", func() error { return run(path, 0, "", 1, "", "", 10) }},
		{"cause filter", func() error { return run(path, 0, "", 0, "Configuration", "", 10) }},
		{"group year", func() error { return run(path, 0, "", 0, "", "year", 10) }},
		{"group type", func() error { return run(path, 0, "", 0, "", "type", 10) }},
		{"group severity", func() error { return run(path, 0, "", 0, "", "severity", 10) }},
		{"group cause", func() error { return run(path, 0, "", 0, "", "cause", 10) }},
		{"truncated list", func() error { return run(path, 0, "", 0, "", "", 1) }},
	}
	for _, c := range cases {
		if err := c.call(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestQueryErrors(t *testing.T) {
	path := datasetFile(t)
	if err := run("missing.json", 0, "", 0, "", "", 10); err == nil {
		t.Error("missing file accepted")
	}
	if err := run(path, 0, "XYZ", 0, "", "", 10); err == nil {
		t.Error("unknown type accepted")
	}
	if err := run(path, 0, "", 9, "", "", 10); err == nil {
		t.Error("invalid severity accepted")
	}
	if err := run(path, 0, "", 0, "Gremlins", "", 10); err == nil {
		t.Error("unknown cause accepted")
	}
	if err := run(path, 0, "", 0, "", "vibes", 10); err == nil {
		t.Error("unknown grouping accepted")
	}
}
