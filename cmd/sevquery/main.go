// Command sevquery runs aggregate queries over a SEV dataset file produced
// by dcsim — the CLI stand-in for the SQL queries the study ran against its
// SEV database (§4.2).
//
// Usage:
//
//	sevquery -data sevs.json [-year N] [-type RSW] [-severity 1..3]
//	         [-cause Maintenance] [-group year|type|severity|cause] [-show N]
//
// Filters compose; -group prints counts per group instead of reports.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dcnr"
	"dcnr/internal/report"
)

func main() {
	var (
		data     = flag.String("data", "sevs.json", "SEV dataset file (from dcsim)")
		year     = flag.Int("year", 0, "filter: start year")
		devType  = flag.String("type", "", "filter: device type (RSW, CSW, CSA, ESW, SSW, FSW, Core)")
		severity = flag.Int("severity", 0, "filter: SEV level 1..3")
		cause    = flag.String("cause", "", "filter: root cause category")
		group    = flag.String("group", "", "group counts by: year, type, severity, cause")
		show     = flag.Int("show", 10, "max reports to print when not grouping")
	)
	flag.Parse()
	if err := run(*data, *year, *devType, *severity, *cause, *group, *show); err != nil {
		fmt.Fprintln(os.Stderr, "sevquery:", err)
		os.Exit(1)
	}
}

func run(path string, year int, devType string, severity int, cause, group string, show int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	store := dcnr.NewSEVStore()
	if err := store.ReadJSON(f); err != nil {
		return err
	}

	q := store.Query()
	if year != 0 {
		q = q.Year(year)
	}
	if devType != "" {
		dt, err := dcnr.ParseDeviceName(strings.ToLower(devType) + "001")
		if err != nil {
			return fmt.Errorf("unknown device type %q", devType)
		}
		q = q.DeviceType(dt)
	}
	if severity != 0 {
		s := dcnr.Severity(severity)
		if !s.Valid() {
			return fmt.Errorf("severity must be 1..3, got %d", severity)
		}
		q = q.Severity(s)
	}
	if cause != "" {
		rc, err := parseCause(cause)
		if err != nil {
			return err
		}
		q = q.RootCause(rc)
	}

	switch group {
	case "":
		return printReports(q.Reports(), show)
	case "year":
		t := &report.Table{Headers: []string{"Year", "SEVs"}}
		byYear := q.CountByYear()
		for _, y := range report.SortedInts(byYear) {
			t.AddRow(fmt.Sprint(y), fmt.Sprint(byYear[y]))
		}
		return t.Render(os.Stdout)
	case "type":
		t := &report.Table{Headers: []string{"Device type", "SEVs"}}
		byType := q.CountByDeviceType()
		for _, dt := range dcnr.IntraDCTypes {
			if n := byType[dt]; n > 0 {
				t.AddRow(dt.String(), fmt.Sprint(n))
			}
		}
		return t.Render(os.Stdout)
	case "severity":
		t := &report.Table{Headers: []string{"Level", "SEVs"}}
		bySev := q.CountBySeverity()
		for _, s := range dcnr.Severities {
			t.AddRow(s.String(), fmt.Sprint(bySev[s]))
		}
		return t.Render(os.Stdout)
	case "cause":
		t := &report.Table{Headers: []string{"Root cause", "SEVs"}}
		byCause := q.CountByRootCause()
		for _, c := range dcnr.RootCauses {
			t.AddRow(c.String(), fmt.Sprint(byCause[c]))
		}
		return t.Render(os.Stdout)
	default:
		return fmt.Errorf("unknown -group %q", group)
	}
}

func parseCause(s string) (dcnr.RootCause, error) {
	for _, c := range dcnr.RootCauses {
		if strings.EqualFold(c.String(), s) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown root cause %q", s)
}

func printReports(reports []dcnr.SEVReport, show int) error {
	fmt.Printf("%d matching SEVs\n\n", len(reports))
	t := &report.Table{Headers: []string{"ID", "Level", "Year", "Device", "Resolution (h)", "Title"}}
	for i, r := range reports {
		if i >= show {
			t.AddRow("...", "", "", "", "", fmt.Sprintf("(%d more)", len(reports)-show))
			break
		}
		t.AddRow(fmt.Sprint(r.ID), r.Severity.String(), fmt.Sprint(r.Year), r.Device,
			report.F(r.Resolution), r.Title)
	}
	return t.Render(os.Stdout)
}
