// Command dcsim runs the full study simulation — seven years of intra-data-
// center operation and eighteen months of backbone operation — and writes
// the generated datasets to disk for later analysis with sevquery or the
// dcnr library.
//
// Usage:
//
//	dcsim [-seed N] [-scale N] [-out DIR]
//
// Outputs: DIR/sevs.json (the SEV dataset) and DIR/tickets.txt (the vendor
// notice archive).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dcnr"
	"dcnr/internal/tickets"
)

func main() {
	var (
		seed  = flag.Uint64("seed", 20181031, "simulation seed")
		scale = flag.Int("scale", 1, "fleet population scale")
		out   = flag.String("out", ".", "output directory")
	)
	flag.Parse()
	if err := run(*seed, *scale, *out); err != nil {
		fmt.Fprintln(os.Stderr, "dcsim:", err)
		os.Exit(1)
	}
}

func run(seed uint64, scale int, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	intra, err := dcnr.SimulateIntraDC(dcnr.IntraConfig{Seed: seed, Scale: scale})
	if err != nil {
		return err
	}
	sevPath := filepath.Join(dir, "sevs.json")
	f, err := os.Create(sevPath)
	if err != nil {
		return err
	}
	if err := intra.Store.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("intra-DC: %d faults → %d SEVs (%d years) → %s\n",
		intra.Faults, intra.Incidents, dcnr.LastYear-dcnr.FirstYear+1, sevPath)

	cfg := dcnr.DefaultBackboneConfig()
	cfg.Seed = seed
	inter, err := dcnr.SimulateBackbone(cfg)
	if err != nil {
		return err
	}
	ticketPath := filepath.Join(dir, "tickets.txt")
	tf, err := os.Create(ticketPath)
	if err != nil {
		return err
	}
	if err := tickets.WriteAll(tf, inter.Notices); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	fmt.Printf("backbone: %d edges, %d links, %d vendors, %d repair tickets → %s\n",
		len(inter.Topology.Edges), len(inter.Topology.Links), len(inter.Topology.Vendors),
		len(inter.Notices), ticketPath)
	return nil
}
