// Command dcsim runs the full study simulation — seven years of intra-data-
// center operation and eighteen months of backbone operation — and writes
// the generated datasets to disk for later analysis with sevquery or the
// dcnr library.
//
// Usage:
//
//	dcsim [-seed N] [-scale N] [-out DIR] [-metrics-out FILE] [-trace FILE]
//	      [-journal FILE] [-health-out FILE]
//	      [-timeline FILE] [-timeline-cadence HOURS]
//	      [-log-level LEVEL] [-log-format text|json]
//	      [-elevate-year YEAR] [-elevate-factor F]
//
// Outputs: DIR/sevs.json (the SEV dataset) and DIR/tickets.txt (the vendor
// notice archive). With -metrics-out, a JSON snapshot of the simulation's
// metrics (event counts, remediation queue histograms, query-path counters)
// is written to FILE; with -trace, a Chrome trace-event file loadable in
// chrome://tracing or Perfetto.
//
// With -journal, the intra-DC run records its causal incident journal —
// one JSONL record per fault-lifecycle event (fault_raised, fault_detected,
// ticket_cut, dispatched, escalated, repaired, incident_opened,
// incident_closed), each linked to its cause by parent ID — and writes it
// to FILE; every SEV in sevs.json then resolves to a complete causal chain
// (load the stream back with dcnr.ReadJournal).
//
// With -timeline, the intra-DC run samples its core metric series on a
// simulation-clock grid — every -timeline-cadence simulated hours (default
// 24, one point per simulated day) — and writes the history to FILE as
// JSONL, one {"t":H,"m":NAME,"v":V} sample per line. The sampler rides the
// event kernel, so the file is byte-identical for a given seed and scale
// no matter the wall-clock conditions.
//
// With -health-out, a streaming SLO engine follows the intra-DC run —
// incident burn rates, MTTR degradation, alert rule transitions — and its
// final report is written to FILE as JSON. With -log-level, structured logs
// go to stderr carrying both the wall clock and the simulation clock
// (sim_hours); -log-format picks text or JSON records. The -elevate-year /
// -elevate-factor pair multiplies fault rates for one calendar year, which
// drives the health rules through their pending→firing→resolved lifecycle —
// useful for alert-pipeline drills.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"

	"dcnr"
	"dcnr/internal/tickets"
)

func main() {
	var o options
	flag.Uint64Var(&o.seed, "seed", 20181031, "simulation seed")
	flag.IntVar(&o.scale, "scale", 1, "fleet population scale")
	flag.StringVar(&o.dir, "out", ".", "output directory")
	flag.StringVar(&o.metricsOut, "metrics-out", "", "write a JSON metrics snapshot to this file")
	flag.StringVar(&o.traceOut, "trace", "", "write a Chrome trace-event file to this file")
	flag.StringVar(&o.journalOut, "journal", "", "write the causal incident journal as JSONL to this file")
	flag.StringVar(&o.healthOut, "health-out", "", "run the SLO/health engine and write its report to this file")
	flag.StringVar(&o.timelineOut, "timeline", "", "sample metric timelines on the simulation clock and write them as JSONL to this file")
	flag.Float64Var(&o.timelineCadence, "timeline-cadence", 0, "timeline sampling cadence in simulated hours (default 24)")
	flag.StringVar(&o.logLevel, "log-level", "", "enable structured logs to stderr at this level (debug, info, warn, error)")
	flag.StringVar(&o.logFormat, "log-format", "text", "structured log format: text or json")
	flag.IntVar(&o.elevateYear, "elevate-year", 0, "multiply intra-DC fault rates during this calendar year")
	flag.Float64Var(&o.elevateFactor, "elevate-factor", 0, "fault-rate multiplier applied in -elevate-year")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "dcsim:", err)
		os.Exit(1)
	}
}

// options collects every dcsim knob; the zero value plus seed/scale/dir is
// a plain uninstrumented run.
type options struct {
	seed            uint64
	scale           int
	dir             string
	metricsOut      string
	traceOut        string
	journalOut      string
	healthOut       string
	timelineOut     string
	timelineCadence float64
	logLevel        string
	logFormat       string
	elevateYear     int
	elevateFactor   float64
	logW            io.Writer // log destination; nil means os.Stderr
}

func run(o options) error {
	if err := os.MkdirAll(o.dir, 0o755); err != nil {
		return err
	}

	// Telemetry is opt-in: uninstrumented runs keep nil registry/tracer/
	// engine/logger, which the simulation hot paths treat as zero-cost
	// no-ops. Logging needs the registry too: the handler reads the
	// des_sim_hours gauge to stamp records with the simulation clock.
	var reg *dcnr.MetricsRegistry
	if o.metricsOut != "" || o.logLevel != "" {
		reg = dcnr.NewMetricsRegistry()
	}
	var tracer *dcnr.Tracer
	if o.traceOut != "" {
		tracer = dcnr.NewTracer()
	}
	var health *dcnr.HealthEngine
	if o.healthOut != "" {
		var err error
		health, err = dcnr.NewHealthEngine(dcnr.HealthTargetsForScale(o.scale), nil)
		if err != nil {
			return err
		}
	}
	var jnl *dcnr.Journal
	if o.journalOut != "" {
		jnl = dcnr.NewJournal()
	}
	var tline *dcnr.Timeline
	if o.timelineOut != "" {
		tline = dcnr.NewTimeline(o.timelineCadence)
	}
	var logger *slog.Logger
	if o.logLevel != "" {
		level, err := dcnr.ParseLogLevel(o.logLevel)
		if err != nil {
			return err
		}
		w := o.logW
		if w == nil {
			w = os.Stderr
		}
		h, err := dcnr.NewSimLogHandler(w, o.logFormat, level, reg.Gauge("des_sim_hours"))
		if err != nil {
			return err
		}
		logger = slog.New(h)
	}

	intra, err := dcnr.SimulateIntraDC(dcnr.IntraConfig{
		Observe: dcnr.Observe{
			Metrics: reg, Trace: tracer, Health: health,
			Logger: logger, Journal: jnl, Timeline: tline,
		},
		Seed: o.seed, Scale: o.scale,
		ElevateYear: o.elevateYear, ElevateFactor: o.elevateFactor,
	})
	if err != nil {
		return err
	}
	// The intra-DC trace is the bulk of the file (a couple hundred
	// thousand spans); start streaming it to disk now, while the backbone
	// phase simulates on a fork of the same timeline. The fork is appended
	// once the backbone finishes, so the write costs almost no wall time.
	var (
		bbTracer   *dcnr.Tracer
		traceFile  *os.File
		traceWrite *dcnr.TraceJSONWriter
		traceDone  chan error
	)
	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		traceFile = f
		traceWrite = dcnr.NewTraceJSONWriter(f)
		traceDone = make(chan error, 1)
		go func() { traceDone <- traceWrite.Add(tracer) }()
		bbTracer = tracer.Fork()
	}
	finishTrace := func() error {
		if traceFile == nil {
			return nil
		}
		err := <-traceDone
		if err == nil {
			err = traceWrite.Add(bbTracer)
		}
		err = errors.Join(err, traceWrite.Close(), traceFile.Close())
		traceFile = nil
		return err
	}

	// Like the trace, the journal (a few hundred thousand records) is
	// indexed and streamed to disk while the backbone phase simulates;
	// finishJournal joins the writer before the totals are printed. The
	// index is built inside the goroutine too — assembling the ID-ordered
	// record array is the expensive half of serialization.
	var (
		journalIdx  *dcnr.JournalIndex
		journalFile *os.File
		journalDone chan error
	)
	if o.journalOut != "" {
		f, err := os.Create(o.journalOut)
		if err != nil {
			return errors.Join(err, finishTrace())
		}
		journalFile = f
		journalDone = make(chan error, 1)
		go func() {
			journalIdx = jnl.Index()
			journalDone <- journalIdx.WriteJSONL(f)
		}()
	}
	finishJournal := func() error {
		if journalFile == nil {
			return nil
		}
		err := errors.Join(<-journalDone, journalFile.Close())
		journalFile = nil
		return err
	}

	sevPath := filepath.Join(o.dir, "sevs.json")
	if err := writeFile(sevPath, intra.Store.WriteJSON); err != nil {
		return errors.Join(err, finishJournal(), finishTrace())
	}
	fmt.Printf("intra-DC: %d faults → %d SEVs (%d years) → %s\n",
		intra.Faults, intra.Incidents, dcnr.LastYear-dcnr.FirstYear+1, sevPath)

	cfg := dcnr.DefaultBackboneConfig()
	cfg.Seed = o.seed
	cfg.Metrics = reg
	cfg.Trace = bbTracer
	inter, err := dcnr.SimulateBackbone(cfg)
	if err != nil {
		return errors.Join(err, finishJournal(), finishTrace())
	}
	ticketPath := filepath.Join(o.dir, "tickets.txt")
	if err := writeFile(ticketPath, func(w io.Writer) error {
		return tickets.WriteAll(w, inter.Notices)
	}); err != nil {
		return errors.Join(err, finishJournal(), finishTrace())
	}
	fmt.Printf("backbone: %d edges, %d links, %d vendors, %d repair tickets → %s\n",
		len(inter.Topology.Edges), len(inter.Topology.Links), len(inter.Topology.Vendors),
		len(inter.Notices), ticketPath)

	if o.journalOut != "" {
		if err := finishJournal(); err != nil {
			return errors.Join(err, finishTrace())
		}
		chains := dcnr.AttachJournal(intra.Store, journalIdx)
		fmt.Printf("journal: %d records, %d incident chains → %s\n",
			journalIdx.Len(), chains, o.journalOut)
	}

	if o.timelineOut != "" {
		if err := writeFile(o.timelineOut, tline.WriteJSONL); err != nil {
			return err
		}
		fmt.Printf("timeline: %d samples (every %gh of sim time) → %s\n",
			tline.Len(), tline.Cadence(), o.timelineOut)
	}

	if o.healthOut != "" {
		if err := writeFile(o.healthOut, health.WriteJSON); err != nil {
			return err
		}
		rep := health.Report()
		fmt.Printf("health: healthy=%v, %d alert transitions → %s\n",
			rep.Healthy, len(rep.Transitions), o.healthOut)
	}
	if o.metricsOut != "" {
		if err := writeMetrics(o.metricsOut, reg); err != nil {
			return err
		}
		fmt.Printf("metrics: %s\n", o.metricsOut)
	}
	if o.traceOut != "" {
		if err := finishTrace(); err != nil {
			return err
		}
		fmt.Printf("trace: %d events → %s\n", tracer.Len()+bbTracer.Len(), o.traceOut)
	}
	return nil
}

// writeFile creates path, streams the dataset through write, and closes
// the file, losing neither the write error nor the close error (a failed
// close on a buffered filesystem is a truncated dataset).
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return errors.Join(write(f), f.Close())
}

func writeMetrics(path string, reg *dcnr.MetricsRegistry) error {
	return writeFile(path, func(w io.Writer) error {
		_, err := fmt.Fprintln(w, reg.ExpvarVar().String())
		return err
	})
}
