// Command dcsim runs the full study simulation — seven years of intra-data-
// center operation and eighteen months of backbone operation — and writes
// the generated datasets to disk for later analysis with sevquery or the
// dcnr library.
//
// Usage:
//
//	dcsim [-seed N] [-scale N] [-out DIR] [-metrics-out FILE] [-trace FILE]
//
// Outputs: DIR/sevs.json (the SEV dataset) and DIR/tickets.txt (the vendor
// notice archive). With -metrics-out, a JSON snapshot of the simulation's
// metrics (event counts, remediation queue histograms, query-path counters)
// is written to FILE; with -trace, a Chrome trace-event file loadable in
// chrome://tracing or Perfetto.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dcnr"
	"dcnr/internal/tickets"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 20181031, "simulation seed")
		scale      = flag.Int("scale", 1, "fleet population scale")
		out        = flag.String("out", ".", "output directory")
		metricsOut = flag.String("metrics-out", "", "write a JSON metrics snapshot to this file")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event file to this file")
	)
	flag.Parse()
	if err := run(*seed, *scale, *out, *metricsOut, *traceOut); err != nil {
		fmt.Fprintln(os.Stderr, "dcsim:", err)
		os.Exit(1)
	}
}

func run(seed uint64, scale int, dir, metricsOut, traceOut string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	// Telemetry is opt-in: uninstrumented runs keep nil registry/tracer,
	// which the simulation hot paths treat as zero-cost no-ops.
	var reg *dcnr.MetricsRegistry
	var tracer *dcnr.Tracer
	if metricsOut != "" {
		reg = dcnr.NewMetricsRegistry()
	}
	if traceOut != "" {
		tracer = dcnr.NewTracer()
	}

	intra, err := dcnr.SimulateIntraDC(dcnr.IntraConfig{
		Seed: seed, Scale: scale, Metrics: reg, Trace: tracer,
	})
	if err != nil {
		return err
	}
	sevPath := filepath.Join(dir, "sevs.json")
	if err := writeFile(sevPath, intra.Store.WriteJSON); err != nil {
		return err
	}
	fmt.Printf("intra-DC: %d faults → %d SEVs (%d years) → %s\n",
		intra.Faults, intra.Incidents, dcnr.LastYear-dcnr.FirstYear+1, sevPath)

	cfg := dcnr.DefaultBackboneConfig()
	cfg.Seed = seed
	cfg.Metrics = reg
	cfg.Trace = tracer
	inter, err := dcnr.SimulateBackbone(cfg)
	if err != nil {
		return err
	}
	ticketPath := filepath.Join(dir, "tickets.txt")
	if err := writeFile(ticketPath, func(w io.Writer) error {
		return tickets.WriteAll(w, inter.Notices)
	}); err != nil {
		return err
	}
	fmt.Printf("backbone: %d edges, %d links, %d vendors, %d repair tickets → %s\n",
		len(inter.Topology.Edges), len(inter.Topology.Links), len(inter.Topology.Vendors),
		len(inter.Notices), ticketPath)

	if metricsOut != "" {
		if err := writeMetrics(metricsOut, reg); err != nil {
			return err
		}
		fmt.Printf("metrics: %s\n", metricsOut)
	}
	if traceOut != "" {
		if err := writeTrace(traceOut, tracer); err != nil {
			return err
		}
		fmt.Printf("trace: %d events → %s\n", tracer.Len(), traceOut)
	}
	return nil
}

// writeFile creates path, streams the dataset through write, and closes
// the file, losing neither the write error nor the close error (a failed
// close on a buffered filesystem is a truncated dataset).
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return errors.Join(write(f), f.Close())
}

func writeMetrics(path string, reg *dcnr.MetricsRegistry) error {
	return writeFile(path, func(w io.Writer) error {
		_, err := fmt.Fprintln(w, reg.ExpvarVar().String())
		return err
	})
}

func writeTrace(path string, tr *dcnr.Tracer) error {
	return writeFile(path, tr.WriteJSON)
}
