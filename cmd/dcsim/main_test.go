package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"dcnr"
)

func TestRunWritesDatasets(t *testing.T) {
	dir := t.TempDir()
	if err := run(3, 1, dir, "", ""); err != nil {
		t.Fatal(err)
	}
	// The SEV dataset loads back and covers the study period.
	f, err := os.Open(filepath.Join(dir, "sevs.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	store := dcnr.NewSEVStore()
	if err := store.ReadJSON(f); err != nil {
		t.Fatal(err)
	}
	if store.Len() < 300 {
		t.Errorf("SEV dataset has only %d reports", store.Len())
	}
	// The ticket archive parses notice by notice.
	data, err := os.ReadFile(filepath.Join(dir, "tickets.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty ticket archive")
	}
}

func TestRunBadDirectory(t *testing.T) {
	if err := run(1, 1, "/dev/null/not-a-dir", "", ""); err == nil {
		t.Error("invalid output directory accepted")
	}
}

func TestRunWritesMetricsAndTrace(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.json")
	tracePath := filepath.Join(dir, "trace.json")
	if err := run(3, 1, dir, metricsPath, tracePath); err != nil {
		t.Fatal(err)
	}

	// The metrics snapshot is valid JSON and carries the simulation's
	// counters from both the intra-DC and backbone runs.
	var snap struct {
		Counters   map[string]int64              `json:"counters"`
		Gauges     map[string]float64            `json:"gauges"`
		Histograms map[string]map[string]float64 `json:"-"`
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics snapshot is not valid JSON: %v", err)
	}
	if snap.Counters["des_events_fired_total"] == 0 {
		t.Error("no DES events recorded in metrics snapshot")
	}
	if snap.Counters["remediation_submitted_total"] == 0 {
		t.Error("no remediation submissions recorded in metrics snapshot")
	}

	// The trace file is valid Chrome trace-event JSON: a traceEvents
	// array whose entries carry phase and name fields.
	var trace struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	data, err = os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace file is not valid Chrome trace JSON: %v", err)
	}
	if len(trace.TraceEvents) < 100 {
		t.Fatalf("trace has only %d events", len(trace.TraceEvents))
	}
	phases := map[string]bool{}
	for _, e := range trace.TraceEvents {
		if e.Phase == "" {
			t.Fatalf("trace event %q missing phase", e.Name)
		}
		phases[e.Phase] = true
	}
	for _, ph := range []string{"M", "X"} {
		if !phases[ph] {
			t.Errorf("trace has no %q events (phases seen: %v)", ph, phases)
		}
	}
}
