package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcnr"
)

func TestRunWritesDatasets(t *testing.T) {
	dir := t.TempDir()
	if err := run(options{seed: 3, scale: 1, dir: dir}); err != nil {
		t.Fatal(err)
	}
	// The SEV dataset loads back and covers the study period.
	f, err := os.Open(filepath.Join(dir, "sevs.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	store := dcnr.NewSEVStore()
	if err := store.ReadJSON(f); err != nil {
		t.Fatal(err)
	}
	if store.Len() < 300 {
		t.Errorf("SEV dataset has only %d reports", store.Len())
	}
	// The ticket archive parses notice by notice.
	data, err := os.ReadFile(filepath.Join(dir, "tickets.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty ticket archive")
	}
}

func TestRunBadDirectory(t *testing.T) {
	if err := run(options{seed: 1, scale: 1, dir: "/dev/null/not-a-dir"}); err == nil {
		t.Error("invalid output directory accepted")
	}
}

func TestRunRejectsBadLogFlags(t *testing.T) {
	dir := t.TempDir()
	if err := run(options{seed: 1, scale: 1, dir: dir, logLevel: "loud"}); err == nil {
		t.Error("invalid log level accepted")
	}
	if err := run(options{seed: 1, scale: 1, dir: dir, logLevel: "info", logFormat: "yaml"}); err == nil {
		t.Error("invalid log format accepted")
	}
}

func TestRunWritesMetricsAndTrace(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.json")
	tracePath := filepath.Join(dir, "trace.json")
	if err := run(options{seed: 3, scale: 1, dir: dir, metricsOut: metricsPath, traceOut: tracePath}); err != nil {
		t.Fatal(err)
	}

	// The metrics snapshot is valid JSON and carries the simulation's
	// counters from both the intra-DC and backbone runs.
	var snap struct {
		Counters   map[string]int64              `json:"counters"`
		Gauges     map[string]float64            `json:"gauges"`
		Histograms map[string]map[string]float64 `json:"-"`
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics snapshot is not valid JSON: %v", err)
	}
	if snap.Counters["des_events_fired_total"] == 0 {
		t.Error("no DES events recorded in metrics snapshot")
	}
	if snap.Counters["remediation_submitted_total"] == 0 {
		t.Error("no remediation submissions recorded in metrics snapshot")
	}

	// The trace file is valid Chrome trace-event JSON: a traceEvents
	// array whose entries carry phase and name fields.
	var trace struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	data, err = os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace file is not valid Chrome trace JSON: %v", err)
	}
	if len(trace.TraceEvents) < 100 {
		t.Fatalf("trace has only %d events", len(trace.TraceEvents))
	}
	phases := map[string]bool{}
	for _, e := range trace.TraceEvents {
		if e.Phase == "" {
			t.Fatalf("trace event %q missing phase", e.Name)
		}
		phases[e.Phase] = true
	}
	for _, ph := range []string{"M", "X"} {
		if !phases[ph] {
			t.Errorf("trace has no %q events (phases seen: %v)", ph, phases)
		}
	}
}

// TestRunWritesJournal is the end-to-end causal-chain acceptance check: a
// fixed-seed -journal run must leave a JSONL stream in which every closed
// incident resolves, parent ID by parent ID, to a complete chain rooted at
// a fault_raised record, with phase decomposition to match.
func TestRunWritesJournal(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.jsonl")
	if err := run(options{seed: 3, scale: 1, dir: dir, journalOut: journalPath}); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	x, err := dcnr.ReadJournal(f)
	if err != nil {
		t.Fatalf("journal stream does not load back: %v", err)
	}
	if x.Len() == 0 {
		t.Fatal("journal stream is empty")
	}
	incidents := x.Incidents()
	if len(incidents) == 0 {
		t.Fatal("journal recorded no closed incidents")
	}
	for _, closed := range incidents {
		if !x.Complete(closed.ID) {
			t.Fatalf("incident %d does not chain back to a fault_raised record: %+v",
				closed.ID, x.Chain(closed.ID))
		}
	}

	// The journal agrees with the dataset: one chain per SEV report, and
	// the summary's phase decomposition is populated.
	sf, err := os.Open(filepath.Join(dir, "sevs.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	store := dcnr.NewSEVStore()
	if err := store.ReadJSON(sf); err != nil {
		t.Fatal(err)
	}
	if len(incidents) != store.Len() {
		t.Errorf("journal has %d incident chains, dataset has %d SEVs", len(incidents), store.Len())
	}
	sum := x.Summary()
	if sum.Incomplete != 0 || sum.CompleteChains != len(incidents) {
		t.Errorf("summary reports %d complete / %d incomplete chains over %d incidents",
			sum.CompleteChains, sum.Incomplete, len(incidents))
	}
	if len(sum.Phases) == 0 {
		t.Error("summary has no per-device-type phase decomposition")
	}
	if n := dcnr.AttachJournal(store, x); n != store.Len() {
		t.Errorf("journal provenance attached to %d of %d reports", n, store.Len())
	}
}

// TestRunHealthOutAndStructuredLogs is the end-to-end alert drill: an
// elevated-fault-rate run must leave a firing transition in the -health-out
// report, and the structured logs must be JSON records carrying both
// clocks.
func TestRunHealthOutAndStructuredLogs(t *testing.T) {
	dir := t.TempDir()
	healthPath := filepath.Join(dir, "health.json")
	var logBuf bytes.Buffer
	err := run(options{
		seed: 7, scale: 1, dir: dir,
		healthOut: healthPath,
		logLevel:  "info", logFormat: "json", logW: &logBuf,
		elevateYear: 2014, elevateFactor: 5,
	})
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(healthPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep dcnr.SLOReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("health report is not valid JSON: %v", err)
	}
	fired := false
	for _, tr := range rep.Transitions {
		if tr.To == "firing" {
			fired = true
		}
	}
	if !fired {
		t.Errorf("elevated run produced no firing transition: %+v", rep.Transitions)
	}
	if len(rep.Types) == 0 {
		t.Error("health report has no per-type statistics")
	}

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no structured logs emitted")
	}
	sawSimClock := false
	for _, line := range lines {
		var rec struct {
			Time     string  `json:"time"`
			Msg      string  `json:"msg"`
			SimHours float64 `json:"sim_hours"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		if rec.Time == "" {
			t.Fatalf("log line lost the wall clock: %s", line)
		}
		if rec.SimHours > 0 {
			sawSimClock = true
		}
	}
	if !sawSimClock {
		t.Error("no log line carried the simulation clock")
	}
}
