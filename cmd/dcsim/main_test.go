package main

import (
	"os"
	"path/filepath"
	"testing"

	"dcnr"
)

func TestRunWritesDatasets(t *testing.T) {
	dir := t.TempDir()
	if err := run(3, 1, dir); err != nil {
		t.Fatal(err)
	}
	// The SEV dataset loads back and covers the study period.
	f, err := os.Open(filepath.Join(dir, "sevs.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	store := dcnr.NewSEVStore()
	if err := store.ReadJSON(f); err != nil {
		t.Fatal(err)
	}
	if store.Len() < 300 {
		t.Errorf("SEV dataset has only %d reports", store.Len())
	}
	// The ticket archive parses notice by notice.
	data, err := os.ReadFile(filepath.Join(dir, "tickets.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty ticket archive")
	}
}

func TestRunBadDirectory(t *testing.T) {
	if err := run(1, 1, "/dev/null/not-a-dir"); err == nil {
		t.Error("invalid output directory accepted")
	}
}
