// Command apidump prints the exported API surface of a package in a
// stable, diffable text form: every exported constant, variable, function,
// and type — with exported struct fields and exported methods expanded —
// one declaration per line, sorted.
//
// Usage:
//
//	apidump [-dir DIR] [PATTERN]
//
// PATTERN defaults to "." (the package in DIR). The repository pins the
// facade's surface in api.txt; `make apicheck` regenerates the dump and
// fails on any drift, so changes to the public API are always explicit in
// review. Regenerate the golden file with `make api` after an intentional
// change.
package main

import (
	"flag"
	"fmt"
	"go/types"
	"os"
	"sort"
	"strings"

	"dcnr/internal/analyzers"
)

func main() {
	dir := flag.String("dir", ".", "directory to resolve the package pattern in")
	flag.Parse()
	pattern := "."
	if flag.NArg() > 0 {
		pattern = flag.Arg(0)
	}
	if err := run(os.Stdout, *dir, pattern); err != nil {
		fmt.Fprintln(os.Stderr, "apidump:", err)
		os.Exit(1)
	}
}

func run(w *os.File, dir, pattern string) error {
	pkgs, err := analyzers.Load(dir, []string{pattern})
	if err != nil {
		return err
	}
	for _, pkg := range pkgs {
		for _, line := range dump(pkg.Types) {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// qual renders every foreign package by its full import path, so the dump
// never depends on import aliasing.
func qual(p *types.Package) string { return p.Path() }

// dump renders one package's exported surface as sorted text lines.
func dump(pkg *types.Package) []string {
	var lines []string
	scope := pkg.Scope()
	for _, name := range scope.Names() { // already sorted
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		switch o := obj.(type) {
		case *types.Const:
			lines = append(lines, fmt.Sprintf("const %s %s = %s",
				name, types.TypeString(o.Type(), qual), o.Val()))
		case *types.Var:
			lines = append(lines, fmt.Sprintf("var %s %s",
				name, types.TypeString(o.Type(), qual)))
		case *types.Func:
			lines = append(lines, "func "+name+strings.TrimPrefix(
				types.TypeString(o.Type(), qual), "func"))
		case *types.TypeName:
			lines = append(lines, dumpType(o)...)
		}
	}
	return lines
}

// dumpType renders a type declaration plus its exported fields and
// methods, each on its own line so a diff pinpoints the changed member.
func dumpType(o *types.TypeName) []string {
	name := o.Name()
	var lines []string
	if o.IsAlias() {
		// Resolve the alias chain so the dump names the real target, not
		// the alias itself.
		lines = append(lines, fmt.Sprintf("type %s = %s",
			name, types.TypeString(types.Unalias(o.Type()), qual)))
	} else {
		lines = append(lines, fmt.Sprintf("type %s %s",
			name, types.TypeString(o.Type().Underlying(), qual)))
	}
	// Exported struct fields, one line each so a diff pinpoints the
	// changed member; embedded structs surface as their own field line,
	// their promoted members belong to the embedded type's dump.
	if st, ok := o.Type().Underlying().(*types.Struct); ok {
		if !o.IsAlias() {
			// The underlying struct body would duplicate the field lines.
			lines[0] = fmt.Sprintf("type %s struct", name)
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			lines = append(lines, fmt.Sprintf("  %s.%s %s",
				name, f.Name(), types.TypeString(f.Type(), qual)))
		}
	}
	// Exported methods via the pointer method set (the superset).
	mset := types.NewMethodSet(types.NewPointer(o.Type()))
	var methods []string
	for i := 0; i < mset.Len(); i++ {
		m := mset.At(i).Obj()
		if !m.Exported() {
			continue
		}
		methods = append(methods, fmt.Sprintf("  %s.%s%s",
			name, m.Name(), strings.TrimPrefix(types.TypeString(m.Type(), qual), "func")))
	}
	sort.Strings(methods)
	return append(lines, methods...)
}
