// Command dcnrd is the long-running SEV query daemon: it loads (or
// simulates) a SEV dataset into a sharded in-memory store and serves
// every table/figure aggregation of the paper over HTTP/JSON until
// interrupted.
//
// Usage:
//
//	dcnrd [-addr HOST:PORT] [-shards N] [-cache N]
//	      [-sevs FILE | -simulate] [-seed N] [-scale N]
//	      [-log-level LEVEL] [-log-format text|json]
//
// Endpoints:
//
//	/query/count        SEV counts, filterable (year, device, severity,
//	                    design, cause, since, until) and groupable
//	                    (?by=device|severity|year|cause|severity-device|
//	                    year-severity|year-device|year-design)
//	/query/resolutions  resolution-time percentile bands (count, mean,
//	                    p50/p75/p90/p99), groupable by device or year
//	/ingest             POST a JSON array of reports; the batch lands
//	                    atomically and bumps the dataset generation
//	/stats              dataset + cache counters
//
// Query responses are cached in an LRU keyed by normalized query +
// dataset generation and carry an ETag; clients replaying If-None-Match
// see 304 until an ingest changes the dataset under them. The full
// runtime-introspection suite (/metrics, /healthz, /slo, /journal,
// /metrics/history + SSE, /debug/pprof/) is mounted alongside, with a
// wall-clock timeline sampling the serve_* series once a second.
//
// -sevs loads a dataset file (the sevs.json shape dcsim writes);
// -simulate generates one in-process with the study simulation at
// -seed/-scale, wiring the simulation's own journal and SLO engine into
// the daemon's /journal and /healthz. Without either, the daemon starts
// empty and fills over POST /ingest.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dcnr"
	"dcnr/internal/serve"
)

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address (\":0\" binds a free port)")
	flag.IntVar(&o.shards, "shards", runtime.GOMAXPROCS(0), "store shard count (one query goroutine per shard)")
	flag.IntVar(&o.cache, "cache", serve.DefaultCacheEntries, "result cache capacity in entries")
	flag.StringVar(&o.sevs, "sevs", "", "load this SEV dataset file (sevs.json) at startup")
	flag.BoolVar(&o.simulate, "simulate", false, "generate the dataset in-process with the study simulation")
	flag.Uint64Var(&o.seed, "seed", 20181031, "simulation seed for -simulate")
	flag.IntVar(&o.scale, "scale", 1, "fleet population scale for -simulate")
	flag.StringVar(&o.logLevel, "log-level", "", "structured logs to stderr at this level (debug, info, warn, error)")
	flag.StringVar(&o.logFormat, "log-format", "text", "structured log format: text or json")
	flag.Parse()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := runDaemon(o, os.Stderr, nil, stop); err != nil {
		fmt.Fprintln(os.Stderr, "dcnrd:", err)
		os.Exit(1)
	}
}

// options collects every dcnrd knob.
type options struct {
	addr      string
	shards    int
	cache     int
	sevs      string
	simulate  bool
	seed      uint64
	scale     int
	logLevel  string
	logFormat string
}

// runDaemon builds, loads, and serves the daemon until stop delivers.
// ready (when non-nil) receives the bound address once the listener is
// up — the e2e test's hook for ":0". Teardown order matters: stop the
// sampler, close the timeline so SSE subscribers end, then shut the
// daemon down (severing connections, joining the serving goroutine, and
// stopping the shard goroutines).
func runDaemon(o options, stderr io.Writer, ready func(addr string), stop <-chan os.Signal) error {
	reg := dcnr.NewMetricsRegistry()
	var logger *slog.Logger
	if o.logLevel != "" {
		level, err := dcnr.ParseLogLevel(o.logLevel)
		if err != nil {
			return err
		}
		h, err := dcnr.NewSimLogHandler(stderr, o.logFormat, level, nil)
		if err != nil {
			return err
		}
		logger = slog.New(h)
	}

	// With -simulate the simulation and the daemon share one obs stack:
	// the journal and SLO engine the run filled back /journal and
	// /healthz, and the same registry carries both the sim_* and serve_*
	// series.
	var (
		health *dcnr.HealthEngine
		jnl    *dcnr.Journal
	)
	if o.simulate {
		var err error
		health, err = dcnr.NewHealthEngine(dcnr.HealthTargetsForScale(o.scale), nil)
		if err != nil {
			return err
		}
		jnl = dcnr.NewJournal()
	}
	tl := dcnr.NewTimeline(0)

	cfg := serve.Config{
		Addr:         o.addr,
		Shards:       o.shards,
		CacheEntries: o.cache,
		Obs: dcnr.Observe{
			Metrics: reg, Health: health, Logger: logger,
			Journal: jnl, Timeline: tl,
		},
	}
	d, err := serve.NewDaemon(&cfg)
	if err != nil {
		return err
	}
	defer d.Shutdown()

	switch {
	case o.sevs != "" && o.simulate:
		return fmt.Errorf("-sevs and -simulate are mutually exclusive")
	case o.sevs != "":
		f, err := os.Open(o.sevs)
		if err != nil {
			return err
		}
		loadErr := d.LoadJSON(f)
		if err := f.Close(); err != nil {
			return err
		}
		if loadErr != nil {
			return fmt.Errorf("loading %s: %w", o.sevs, loadErr)
		}
		_, _ = fmt.Fprintf(stderr, "dcnrd: loaded %d reports from %s\n", d.Store().Len(), o.sevs)
	case o.simulate:
		res, err := dcnr.SimulateIntraDC(dcnr.IntraConfig{
			Observe: dcnr.Observe{
				Metrics: reg, Health: health, Logger: logger, Journal: jnl,
			},
			Seed: o.seed, Scale: o.scale,
		})
		if err != nil {
			return err
		}
		if _, err := d.Store().AddAll(res.Store.All()); err != nil {
			return err
		}
		_, _ = fmt.Fprintf(stderr, "dcnrd: simulated %d reports (seed %d, scale %d)\n", d.Store().Len(), o.seed, o.scale)
	}

	// The wall timeline samples the serve_* request counters once a
	// second for /metrics/history and its SSE stream.
	smp := dcnr.NewTimelineSampler(tl, "wall", reg, []string{
		"serve_queries_total", "serve_cache_hits_total",
		"serve_cache_misses_total", "serve_ingest_reports_total",
	}, nil)
	defer tl.Close()
	stopSampler := smp.StartWall(time.Second)
	defer stopSampler()

	addr, err := d.Start()
	if err != nil {
		return err
	}
	_, _ = fmt.Fprintf(stderr, "dcnrd: %s serving on http://%s (/query/count, /query/resolutions, /ingest, /stats, /metrics, /metrics/history)\n", d, addr)
	if ready != nil {
		ready(addr)
	}
	<-stop
	_, _ = fmt.Fprintln(stderr, "dcnrd: shutting down")
	return nil
}
