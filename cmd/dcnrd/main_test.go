package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dcnr"
)

// syncBuffer is a goroutine-safe bytes.Buffer: the daemon goroutine
// writes its banner while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startTestDaemon runs runDaemon against a loopback listener and returns
// the bound address plus the daemon's stderr. Cleanup delivers the stop
// signal and joins the daemon goroutine, failing the test if it exited
// early or dirty.
func startTestDaemon(t *testing.T, o options) (string, *syncBuffer) {
	t.Helper()
	o.addr = "127.0.0.1:0"
	var out syncBuffer
	ready := make(chan string, 1)
	stop := make(chan os.Signal, 1)
	errc := make(chan error, 1)
	go func() { errc <- runDaemon(o, &out, func(a string) { ready <- a }, stop) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v\nstderr: %s", err, out.String())
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}
	t.Cleanup(func() {
		stop <- os.Interrupt
		select {
		case err := <-errc:
			if err != nil {
				t.Errorf("daemon exited with error: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("daemon did not stop on signal")
		}
	})
	return addr, &out
}

// TestDaemonEndToEnd drives the full dcnrd lifecycle over a real
// listener: start empty, stream a batch in over POST /ingest, query it
// back through the cache, check the obs endpoints, and shut down on
// signal.
func TestDaemonEndToEnd(t *testing.T) {
	addr, out := startTestDaemon(t, options{shards: 2, cache: 64})
	base := "http://" + addr

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		return resp, string(body)
	}

	if resp, body := get("/query/count"); resp.StatusCode != 200 || !strings.Contains(body, `"count":0`) {
		t.Fatalf("empty daemon /query/count: %d %s", resp.StatusCode, body)
	}
	batch := `[{"severity":2,"device":"rsw001.cl001.dc1.ra","duration":1,"resolution":3,"year":2015},
	           {"severity":1,"device":"csa001.dc1.ra","duration":2,"resolution":5,"year":2016}]`
	resp, err := http.Post(base+"/ingest", "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	ib, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(ib), `"ingested":2`) {
		t.Fatalf("POST /ingest: %d %s", resp.StatusCode, ib)
	}

	r1, body := get("/query/count?by=device")
	if r1.Header.Get("X-Cache") != "miss" || !strings.Contains(body, `"RSW":1`) {
		t.Errorf("first query: X-Cache=%q body=%s", r1.Header.Get("X-Cache"), body)
	}
	r2, _ := get("/query/count?by=device")
	if r2.Header.Get("X-Cache") != "hit" {
		t.Errorf("repeat query X-Cache = %q, want hit", r2.Header.Get("X-Cache"))
	}
	if _, body := get("/stats"); !strings.Contains(body, `"reports":2`) {
		t.Errorf("/stats = %s", body)
	}
	if _, body := get("/metrics"); !strings.Contains(body, "serve_queries_total") {
		t.Errorf("/metrics missing serve series: %s", body)
	}
	if resp, body := get("/healthz"); resp.StatusCode != 200 || body != "ok\n" {
		t.Errorf("/healthz: %d %q", resp.StatusCode, body)
	}
	if !strings.Contains(out.String(), "serving on http://"+addr) {
		t.Errorf("missing banner in stderr: %s", out.String())
	}
}

// TestDaemonLoadsDataset starts dcnrd with -sevs pointing at a dataset
// file and queries it back.
func TestDaemonLoadsDataset(t *testing.T) {
	st := dcnr.NewSEVStore()
	for i := range 10 {
		if _, err := st.Add(dcnr.SEVReport{
			Severity: dcnr.Severity(1 + i%3), Device: "ssw001.cl001.dc1.ra",
			Start: float64(i), Duration: 1, Resolution: 2, Year: 2013,
		}); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "sevs.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	addr, out := startTestDaemon(t, options{shards: 2, cache: 16, sevs: path})
	resp, err := http.Get("http://" + addr + "/query/count?year=2013")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if !strings.Contains(string(body), `"count":10`) {
		t.Errorf("/query/count?year=2013 = %s", body)
	}
	if !strings.Contains(out.String(), "loaded 10 reports") {
		t.Errorf("missing load banner: %s", out.String())
	}
}

// TestDaemonFlagConflict pins the -sevs/-simulate exclusivity error.
func TestDaemonFlagConflict(t *testing.T) {
	var out syncBuffer
	err := runDaemon(options{addr: "127.0.0.1:0", sevs: "x.json", simulate: true}, &out, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("err = %v", err)
	}
}
