package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dcnr"
)

func TestParseSeeds(t *testing.T) {
	seeds, err := parseSeeds("7, 9,11", 0, 0)
	if err != nil {
		t.Fatalf("parseSeeds: %v", err)
	}
	if want := []uint64{7, 9, 11}; !reflect.DeepEqual(seeds, want) {
		t.Errorf("explicit seeds = %v, want %v", seeds, want)
	}
	seeds, err = parseSeeds("", 100, 3)
	if err != nil {
		t.Fatalf("parseSeeds(base): %v", err)
	}
	if want := []uint64{100, 101, 102}; !reflect.DeepEqual(seeds, want) {
		t.Errorf("generated seeds = %v, want %v", seeds, want)
	}
	if _, err := parseSeeds("", 1, 0); err == nil {
		t.Errorf("parseSeeds accepted zero runs")
	}
	if _, err := parseSeeds("1,x", 0, 0); err == nil {
		t.Errorf("parseSeeds accepted a non-numeric seed")
	}
}

func TestParseScenarios(t *testing.T) {
	scs, err := parseScenarios("baseline,no-remediation,elevate:2014:5")
	if err != nil {
		t.Fatalf("parseScenarios: %v", err)
	}
	if len(scs) != 3 {
		t.Fatalf("got %d scenarios, want 3", len(scs))
	}
	if !scs[1].DisableRemediation {
		t.Errorf("no-remediation spec did not disable remediation")
	}
	if scs[2].ElevateYear != 2014 || scs[2].ElevateFactor != 5 {
		t.Errorf("elevate spec parsed as %+v", scs[2])
	}
	if scs[2].Name != "elevate-2014x5" {
		t.Errorf("elevate name = %q", scs[2].Name)
	}

	def, err := parseScenarios("default")
	if err != nil {
		t.Fatalf("parseScenarios(default): %v", err)
	}
	if !reflect.DeepEqual(def, dcnr.DefaultSweepScenarios()) {
		t.Errorf("default spec = %+v, want DefaultSweepScenarios()", def)
	}

	for _, bad := range []string{"warp", "elevate:2014", "elevate:x:5", "elevate:2014:x"} {
		if _, err := parseScenarios(bad); err == nil {
			t.Errorf("parseScenarios(%q) did not fail", bad)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	var stdout bytes.Buffer
	o := options{
		seedBase:  1,
		runs:      2,
		scales:    "1",
		scenarios: "baseline",
		workers:   2,
		out:       filepath.Join(dir, "sweep_report.json"),
		runsOut:   filepath.Join(dir, "runs.jsonl"),
		stdout:    &stdout,
	}
	if err := run(o); err != nil {
		t.Fatalf("run: %v", err)
	}

	data, err := os.ReadFile(o.out)
	if err != nil {
		t.Fatalf("reading report: %v", err)
	}
	var rep dcnr.SweepReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.Groups) != 1 || rep.Groups[0].Seeds != 2 {
		t.Errorf("report groups = %+v, want one baseline group over 2 seeds", rep.Groups)
	}

	runsData, err := os.ReadFile(o.runsOut)
	if err != nil {
		t.Fatalf("reading runs: %v", err)
	}
	if lines := strings.Count(string(runsData), "\n"); lines != 2 {
		t.Errorf("runs stream has %d lines, want 2", lines)
	}
	if !strings.Contains(stdout.String(), "sweep: 2 runs") {
		t.Errorf("summary output missing run count: %q", stdout.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	base := options{seedBase: 1, runs: 1, scales: "1", scenarios: "baseline", out: filepath.Join(t.TempDir(), "r.json")}
	for name, mutate := range map[string]func(*options){
		"bad scale":    func(o *options) { o.scales = "one" },
		"bad scenario": func(o *options) { o.scenarios = "warp" },
		"zero runs":    func(o *options) { o.runs = 0 },
		"bad seeds":    func(o *options) { o.seeds = "1,frog" },
	} {
		o := base
		mutate(&o)
		if err := run(o); err == nil {
			t.Errorf("%s: run accepted invalid options", name)
		}
	}
}
