package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"dcnr"
)

func TestParseSeeds(t *testing.T) {
	seeds, err := parseSeeds("7, 9,11", 0, 0)
	if err != nil {
		t.Fatalf("parseSeeds: %v", err)
	}
	if want := []uint64{7, 9, 11}; !reflect.DeepEqual(seeds, want) {
		t.Errorf("explicit seeds = %v, want %v", seeds, want)
	}
	seeds, err = parseSeeds("", 100, 3)
	if err != nil {
		t.Fatalf("parseSeeds(base): %v", err)
	}
	if want := []uint64{100, 101, 102}; !reflect.DeepEqual(seeds, want) {
		t.Errorf("generated seeds = %v, want %v", seeds, want)
	}
	if _, err := parseSeeds("", 1, 0); err == nil {
		t.Errorf("parseSeeds accepted zero runs")
	}
	if _, err := parseSeeds("1,x", 0, 0); err == nil {
		t.Errorf("parseSeeds accepted a non-numeric seed")
	}
}

func TestParseScenarios(t *testing.T) {
	scs, err := parseScenarios("baseline,no-remediation,elevate:2014:5")
	if err != nil {
		t.Fatalf("parseScenarios: %v", err)
	}
	if len(scs) != 3 {
		t.Fatalf("got %d scenarios, want 3", len(scs))
	}
	if !scs[1].DisableRemediation {
		t.Errorf("no-remediation spec did not disable remediation")
	}
	if scs[2].ElevateYear != 2014 || scs[2].ElevateFactor != 5 {
		t.Errorf("elevate spec parsed as %+v", scs[2])
	}
	if scs[2].Name != "elevate-2014x5" {
		t.Errorf("elevate name = %q", scs[2].Name)
	}

	def, err := parseScenarios("default")
	if err != nil {
		t.Fatalf("parseScenarios(default): %v", err)
	}
	if !reflect.DeepEqual(def, dcnr.DefaultSweepScenarios()) {
		t.Errorf("default spec = %+v, want DefaultSweepScenarios()", def)
	}

	for _, bad := range []string{"warp", "elevate:2014", "elevate:x:5", "elevate:2014:x"} {
		if _, err := parseScenarios(bad); err == nil {
			t.Errorf("parseScenarios(%q) did not fail", bad)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	var stdout bytes.Buffer
	o := options{
		seedBase:  1,
		runs:      2,
		scales:    "1",
		scenarios: "baseline",
		workers:   2,
		out:       filepath.Join(dir, "sweep_report.json"),
		runsOut:   filepath.Join(dir, "runs.jsonl"),
		stdout:    &stdout,
	}
	if err := run(o); err != nil {
		t.Fatalf("run: %v", err)
	}

	data, err := os.ReadFile(o.out)
	if err != nil {
		t.Fatalf("reading report: %v", err)
	}
	var rep dcnr.SweepReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.Groups) != 1 || rep.Groups[0].Seeds != 2 {
		t.Errorf("report groups = %+v, want one baseline group over 2 seeds", rep.Groups)
	}

	runsData, err := os.ReadFile(o.runsOut)
	if err != nil {
		t.Fatalf("reading runs: %v", err)
	}
	if lines := strings.Count(string(runsData), "\n"); lines != 2 {
		t.Errorf("runs stream has %d lines, want 2", lines)
	}
	if !strings.Contains(stdout.String(), "sweep: 2 runs") {
		t.Errorf("summary output missing run count: %q", stdout.String())
	}
}

// syncBuffer is a mutex-guarded buffer so the test can read run's stdout
// while run is still writing to it from another goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRunStatusAndJournal is the live-introspection end-to-end check: with
// -status-addr the campaign serves /campaign and /journal while it runs,
// and with -journal the per-run causal journals land on disk in run order.
func TestRunStatusAndJournal(t *testing.T) {
	dir := t.TempDir()
	var stdout syncBuffer
	o := options{
		seedBase:   1,
		runs:       2,
		scales:     "1",
		scenarios:  "baseline",
		workers:    1,
		out:        filepath.Join(dir, "sweep_report.json"),
		journalOut: filepath.Join(dir, "journal.jsonl"),
		statusAddr: "127.0.0.1:0",
		stdout:     &stdout,
	}
	done := make(chan error, 1)
	go func() { done <- run(o) }()

	// The bound address is printed before the sweep starts; poll for it.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("status address never printed; stdout: %q", stdout.String())
		}
		if _, rest, ok := strings.Cut(stdout.String(), "status: http://"); ok {
			addr = strings.Fields(rest)[0]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Query the campaign while it runs: the grid is visible immediately,
	// completion counts trail the workers.
	resp, err := http.Get("http://" + addr + "/campaign")
	if err != nil {
		t.Fatalf("GET /campaign: %v", err)
	}
	var cs dcnr.SweepCampaignStatus
	err = json.NewDecoder(resp.Body).Decode(&cs)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/campaign is not valid JSON: %v", err)
	}
	if cs.Total != 2 || len(cs.Runs) != 2 {
		t.Errorf("/campaign reports %d runs (%d rows), want 2", cs.Total, len(cs.Runs))
	}
	resp, err = http.Get("http://" + addr + "/journal")
	if err != nil {
		t.Fatalf("GET /journal: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("GET /journal: status %d", resp.StatusCode)
	}

	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}

	// The journal stream carries one header per run, in run order, each
	// followed by that run's records.
	data, err := os.ReadFile(o.journalOut)
	if err != nil {
		t.Fatalf("reading journal: %v", err)
	}
	headers, records := 0, 0
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec struct {
			Run  *int   `json:"run"`
			ID   int    `json:"id"`
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("journal line is not JSON: %v\n%s", err, line)
		}
		if rec.ID == 0 {
			if rec.Run == nil || *rec.Run != headers {
				t.Fatalf("journal header out of order: %s", line)
			}
			headers++
			continue
		}
		records++
	}
	if headers != 2 {
		t.Errorf("journal has %d run headers, want 2", headers)
	}
	if records == 0 {
		t.Error("journal has no records")
	}
}

// TestServeStatusShutdownJoins pins the status-server lifecycle: shutdown
// returns only after the serving goroutine exits, severs a live SSE
// subscriber rather than waiting for it, and releases the port — nothing
// serveStatus spawned outlives the call.
func TestServeStatusShutdownJoins(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	shutdown, addr, err := serveStatus("127.0.0.1:0", dcnr.NewSweepStatus(), logger)
	if err != nil {
		t.Fatalf("serveStatus: %v", err)
	}

	// Hold a live SSE stream open: the handler is now parked in its
	// select, waiting for events or the connection to go away.
	resp, err := http.Get("http://" + addr + "/campaign/events")
	if err != nil {
		t.Fatalf("GET /campaign/events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("/campaign/events Content-Type = %q", ct)
	}

	returned := make(chan struct{})
	go func() {
		shutdown()
		close(returned)
	}()
	select {
	case <-returned:
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown did not return with a live SSE subscriber; serving goroutine not joined")
	}

	// The subscriber's connection was severed, so the stream ends.
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		r := bufio.NewReader(resp.Body)
		for {
			if _, err := r.ReadString('\n'); err != nil {
				return
			}
		}
	}()
	select {
	case <-readDone:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream still open after shutdown")
	}

	// And the port is free for the next campaign.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("address still bound after shutdown: %v", err)
	}
	ln.Close()
	if s := logBuf.String(); strings.Contains(s, "status server stopped") {
		t.Errorf("clean shutdown logged a server failure: %s", s)
	}
}

// TestRunStatusBindFailureLogs pins the degraded path: an unbindable
// -status-addr is reported through the ops logger (stderr by default) and
// the campaign still completes.
func TestRunStatusBindFailureLogs(t *testing.T) {
	dir := t.TempDir()
	var logBuf bytes.Buffer
	o := options{
		seedBase:   1,
		runs:       1,
		scales:     "1",
		scenarios:  "baseline",
		out:        filepath.Join(dir, "sweep_report.json"),
		statusAddr: "256.256.256.256:0",
		logW:       &logBuf,
		stdout:     &bytes.Buffer{},
	}
	if err := run(o); err != nil {
		t.Fatalf("bind failure aborted the campaign: %v", err)
	}
	if _, err := os.Stat(o.out); err != nil {
		t.Errorf("campaign report missing after bind failure: %v", err)
	}
	if !strings.Contains(logBuf.String(), "failed to bind") {
		t.Errorf("bind failure not logged: %q", logBuf.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	base := options{seedBase: 1, runs: 1, scales: "1", scenarios: "baseline", out: filepath.Join(t.TempDir(), "r.json")}
	for name, mutate := range map[string]func(*options){
		"bad scale":    func(o *options) { o.scales = "one" },
		"bad scenario": func(o *options) { o.scenarios = "warp" },
		"zero runs":    func(o *options) { o.runs = 0 },
		"bad seeds":    func(o *options) { o.seeds = "1,frog" },
	} {
		o := base
		mutate(&o)
		if err := run(o); err == nil {
			t.Errorf("%s: run accepted invalid options", name)
		}
	}
}
