// Command dcsweep runs a scenario-sweep campaign: a grid of simulation
// runs — seed × scale × scenario — across a bounded worker pool, with
// per-run statistics streamed as JSONL and the paper's key statistics
// aggregated into cross-run mean/p5/p95 bands.
//
// Usage:
//
//	dcsweep [-seeds CSV | -seed-base N -runs N] [-scales CSV]
//	        [-scenarios SPEC] [-workers N] [-backbone]
//	        [-out FILE] [-runs-out FILE] [-journal FILE] [-metrics-out FILE]
//	        [-timeline FILE] [-timeline-cadence HOURS]
//	        [-trace FILE] [-status-addr ADDR]
//	        [-log-level LEVEL] [-log-format text|json]
//
// The grid is the cross product of seeds, scales, and scenarios. Seeds
// come either from -seeds (comma-separated values) or the pair
// -seed-base/-runs (N consecutive seeds starting at the base). -scenarios
// is a comma-separated list of specs:
//
//	baseline              the full study period, remediation on
//	no-remediation        the §5.6 ablation
//	elevate:YEAR:FACTOR   burn drill — fault rates × FACTOR during YEAR
//	default               shorthand for all three standard scenarios
//
// The aggregated report goes to -out (default sweep_report.json); it is
// byte-identical for a given grid at any -workers value, so reports can be
// diffed across machines and runs. With -runs-out, every per-run record is
// streamed to FILE as JSON lines in run order; with -metrics-out, the
// merged metrics snapshot of all runs; with -trace, a Chrome trace-event
// file with one lane per pool worker. With -log-level, one progress record
// per completed run goes to stderr.
//
// With -journal, every run's causal incident journal is streamed to FILE
// in run order: a header line naming the run, then one JSONL record per
// fault-lifecycle event (record IDs restart at each header; index one
// run's section at a time with dcnr.ReadJournal). The stream is
// byte-identical at any -workers value.
//
// With -timeline, every run's metric timeline — its core series sampled on
// the simulation clock every -timeline-cadence simulated hours (default
// 24) — is streamed to FILE in run order: a header line naming the run,
// then one {"t":H,"m":NAME,"v":V} sample per line. The stream is
// byte-identical at any -workers value.
//
// -status-addr serves live campaign introspection over HTTP while the
// sweep runs: /campaign (a JSON snapshot — per-run state, completed/total,
// per-run resource attribution, z-score straggler flags, live cross-run
// p5/p95 bands), /campaign/events (server-sent events, one per completed
// run), /journal (the merged causal-journal summary of completed runs),
// and /metrics/history (+/events) — a wall-clock timeline of the campaign's
// sweep_* progress series, sampled once a second, as windowed JSONL and an
// SSE delta stream. A failed bind is logged and the campaign proceeds
// without introspection; the report is byte-identical either way.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"dcnr"
	"dcnr/internal/serve"
)

// sweepTimelineCounters and sweepTimelineGauges are the campaign progress
// series the -status-addr wall timeline samples.
var (
	sweepTimelineCounters = []string{
		"sweep_runs_total", "sweep_run_failures_total",
		"sweep_faults_total", "sweep_incidents_total",
	}
	sweepTimelineGauges = []string{"sweep_active_workers"}
)

func main() {
	var o options
	flag.StringVar(&o.seeds, "seeds", "", "comma-separated seeds to sweep (overrides -seed-base/-runs)")
	flag.Uint64Var(&o.seedBase, "seed-base", 1, "first seed when -seeds is not given")
	flag.IntVar(&o.runs, "runs", 16, "number of consecutive seeds when -seeds is not given")
	flag.StringVar(&o.scales, "scales", "1", "comma-separated fleet scales to sweep")
	flag.StringVar(&o.scenarios, "scenarios", "baseline", "comma-separated scenario specs (baseline, no-remediation, elevate:YEAR:FACTOR, default)")
	flag.IntVar(&o.workers, "workers", 0, "worker pool size (0 = one per CPU; clamped to the CPU count)")
	flag.BoolVar(&o.backbone, "backbone", false, "add an inter-DC backbone leg to every run")
	flag.StringVar(&o.out, "out", "sweep_report.json", "write the aggregated report to this file")
	flag.StringVar(&o.runsOut, "runs-out", "", "stream per-run JSONL records to this file")
	flag.StringVar(&o.journalOut, "journal", "", "stream every run's causal incident journal to this file")
	flag.StringVar(&o.timelineOut, "timeline", "", "stream every run's metric timeline to this file as JSONL")
	flag.Float64Var(&o.timelineCadence, "timeline-cadence", 0, "per-run timeline sampling cadence in simulated hours (default 24)")
	flag.StringVar(&o.statusAddr, "status-addr", "", "serve live campaign status on this address (e.g. :8080) while the sweep runs")
	flag.StringVar(&o.metricsOut, "metrics-out", "", "write the merged metrics snapshot of all runs to this file")
	flag.StringVar(&o.traceOut, "trace", "", "write a Chrome trace-event file to this file")
	flag.StringVar(&o.logLevel, "log-level", "", "enable per-run progress logs to stderr at this level (debug, info, warn, error)")
	flag.StringVar(&o.logFormat, "log-format", "text", "structured log format: text or json")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "dcsweep:", err)
		os.Exit(1)
	}
}

// options collects every dcsweep knob; the defaults run a 16-seed baseline
// sweep at scale 1.
type options struct {
	seeds           string
	seedBase        uint64
	runs            int
	scales          string
	scenarios       string
	workers         int
	backbone        bool
	out             string
	runsOut         string
	journalOut      string
	timelineOut     string
	timelineCadence float64
	statusAddr      string
	metricsOut      string
	traceOut        string
	logLevel        string
	logFormat       string
	logW            io.Writer // log destination; nil means os.Stderr
	stdout          io.Writer // summary destination; nil means os.Stdout
}

func run(o options) error {
	seeds, err := parseSeeds(o.seeds, o.seedBase, o.runs)
	if err != nil {
		return err
	}
	scales, err := parseInts(o.scales)
	if err != nil {
		return fmt.Errorf("-scales: %w", err)
	}
	scenarios, err := parseScenarios(o.scenarios)
	if err != nil {
		return err
	}

	cfg := dcnr.SweepConfig{
		Seeds:     seeds,
		Scales:    scales,
		Scenarios: scenarios,
		Workers:   o.workers,
		Backbone:  o.backbone,
	}

	// Telemetry is opt-in, exactly as in dcsim: nil wiring is a zero-cost
	// no-op inside the runs.
	var reg *dcnr.MetricsRegistry
	if o.metricsOut != "" || o.logLevel != "" {
		reg = dcnr.NewMetricsRegistry()
		cfg.Observe.Metrics = reg
	}
	var tracer *dcnr.Tracer
	if o.traceOut != "" {
		tracer = dcnr.NewTracer()
		cfg.Observe.Trace = tracer
	}
	if o.logLevel != "" {
		level, err := dcnr.ParseLogLevel(o.logLevel)
		if err != nil {
			return err
		}
		w := o.logW
		if w == nil {
			w = os.Stderr
		}
		h, err := dcnr.NewSimLogHandler(w, o.logFormat, level, nil)
		if err != nil {
			return err
		}
		cfg.Observe.Logger = slog.New(h)
	}

	var runsFile *os.File
	if o.runsOut != "" {
		runsFile, err = os.Create(o.runsOut)
		if err != nil {
			return err
		}
		cfg.Results = runsFile
	}
	var journalFile *os.File
	if o.journalOut != "" {
		journalFile, err = os.Create(o.journalOut)
		if err != nil {
			return err
		}
		cfg.Journal = journalFile
	}
	var timelineFile *os.File
	if o.timelineOut != "" {
		timelineFile, err = os.Create(o.timelineOut)
		if err != nil {
			return err
		}
		cfg.Timeline = timelineFile
		cfg.TimelineCadence = o.timelineCadence
	}
	stdout := o.stdout
	if stdout == nil {
		stdout = os.Stdout
	}
	if o.statusAddr != "" {
		status := dcnr.NewSweepStatus()
		cfg.Status = status
		logger := opsLogger(o, cfg.Observe.Logger)
		if shutdown, addr, serveErr := serveStatus(o.statusAddr, status, logger); serveErr != nil {
			// A dead status endpoint is an observability gap, not a reason
			// to abandon the campaign — report it and sweep anyway.
			logger.Warn("campaign status server failed to bind; sweeping without introspection",
				"addr", o.statusAddr, "err", serveErr)
		} else {
			defer shutdown()
			// A wall-clock timeline of the campaign's own progress series
			// backs /metrics/history: one sample per second for as long as
			// the sweep runs. The series live on the campaign registry;
			// when -metrics-out didn't make one, a private registry is
			// installed to carry the sweep_* bookkeeping (Result.Metrics
			// then merges but is dropped unread — the report bytes are
			// unchanged either way).
			sreg := reg
			if sreg == nil {
				sreg = dcnr.NewMetricsRegistry()
				cfg.Observe.Metrics = sreg
			}
			tl := dcnr.NewTimeline(0)
			smp := dcnr.NewTimelineSampler(tl, "wall", sreg, sweepTimelineCounters, sweepTimelineGauges)
			status.AttachTimeline(tl)
			// Teardown order (defers run last-in-first-out, before the
			// shutdown above): stop the sampler, close the timeline so SSE
			// streams end, then the server closes and joins.
			defer tl.Close()
			stopSampler := smp.StartWall(time.Second)
			defer stopSampler()
			if _, err := fmt.Fprintf(stdout,
				"status: http://%s (/campaign, /campaign/events, /journal, /metrics/history)\n", addr); err != nil {
				return err
			}
		}
	}
	res, sweepErr := dcnr.Sweep(cfg)
	if runsFile != nil {
		if err := runsFile.Close(); err != nil && sweepErr == nil {
			sweepErr = err
		}
	}
	if journalFile != nil {
		if err := journalFile.Close(); err != nil && sweepErr == nil {
			sweepErr = err
		}
	}
	if timelineFile != nil {
		if err := timelineFile.Close(); err != nil && sweepErr == nil {
			sweepErr = err
		}
	}
	if sweepErr != nil {
		return sweepErr
	}

	if err := writeFile(o.out, res.WriteReport); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(stdout, "sweep: %d runs (%d seeds × %d scales × %d scenarios) → %s\n",
		len(res.Runs), len(cfg.Seeds), len(cfg.Scales), len(cfg.Scenarios), o.out); err != nil {
		return err
	}
	for _, g := range res.Report.Groups {
		if _, err := fmt.Fprintf(stdout, "  %s ×%d: incidents %.0f [p5 %.0f, p95 %.0f] over %d seeds\n",
			g.Scenario, g.Scale, g.Incidents.Mean, g.Incidents.P5, g.Incidents.P95, g.Seeds); err != nil {
			return err
		}
	}

	if o.metricsOut != "" {
		if err := writeFile(o.metricsOut, res.Metrics.WriteJSON); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(stdout, "metrics: %s\n", o.metricsOut); err != nil {
			return err
		}
	}
	if o.traceOut != "" {
		if err := writeFile(o.traceOut, tracer.WriteJSON); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(stdout, "trace: %d events → %s\n", tracer.Len(), o.traceOut); err != nil {
			return err
		}
	}
	if o.journalOut != "" {
		if _, err := fmt.Fprintf(stdout, "journal: %s\n", o.journalOut); err != nil {
			return err
		}
	}
	if o.timelineOut != "" {
		if _, err := fmt.Fprintf(stdout, "timeline: %s\n", o.timelineOut); err != nil {
			return err
		}
	}
	return nil
}

// serveStatus binds the campaign status endpoints on addr and serves them
// until the returned shutdown function is called. Shutdown severs any
// live SSE subscribers (their handlers return via the request context)
// and joins the serving goroutine, so nothing it spawned can outlive the
// sweep — in particular no late logger.Warn against a writer the caller
// has already torn down. It returns the bound address so ":0" works in
// tests.
func serveStatus(addr string, status *dcnr.SweepStatus, logger *slog.Logger) (func(), string, error) {
	srv := serve.New(serve.Options{Addr: addr, Name: "campaign status", Logger: logger})
	srv.Register("/", status.Handler())
	bound, err := srv.Start()
	if err != nil {
		return nil, "", err
	}
	return srv.Shutdown, bound, nil
}

// opsLogger returns the campaign logger, falling back — when -log-level is
// absent — to a warn-level SimHandler logger on stderr, so operational
// problems (a status server that cannot bind or dies mid-campaign) are
// reported even on otherwise-silent runs.
func opsLogger(o options, configured *slog.Logger) *slog.Logger {
	if configured != nil {
		return configured
	}
	w := o.logW
	if w == nil {
		w = os.Stderr
	}
	format := o.logFormat
	if format == "" {
		format = "text"
	}
	h, err := dcnr.NewSimLogHandler(w, format, slog.LevelWarn, nil)
	if err != nil {
		// Unreachable for the fixed text/json formats; fall back to slog's
		// default handler rather than dropping the report.
		return slog.New(slog.NewTextHandler(w, nil))
	}
	return slog.New(h)
}

// parseSeeds resolves the seed list: an explicit CSV wins; otherwise runs
// consecutive seeds starting at base.
func parseSeeds(csv string, base uint64, runs int) ([]uint64, error) {
	if csv != "" {
		parts := strings.Split(csv, ",")
		seeds := make([]uint64, 0, len(parts))
		for _, p := range parts {
			s, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("-seeds: %w", err)
			}
			seeds = append(seeds, s)
		}
		return seeds, nil
	}
	if runs <= 0 {
		return nil, fmt.Errorf("-runs must be positive, got %d", runs)
	}
	seeds := make([]uint64, runs)
	for i := range seeds {
		seeds[i] = base + uint64(i)
	}
	return seeds, nil
}

func parseInts(csv string) ([]int, error) {
	parts := strings.Split(csv, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

// parseScenarios turns the -scenarios spec list into sweep scenarios.
func parseScenarios(csv string) ([]dcnr.SweepScenario, error) {
	var out []dcnr.SweepScenario
	for _, spec := range strings.Split(csv, ",") {
		spec = strings.TrimSpace(spec)
		switch {
		case spec == "default":
			out = append(out, dcnr.DefaultSweepScenarios()...)
		case spec == "baseline":
			out = append(out, dcnr.SweepScenario{Name: "baseline"})
		case spec == "no-remediation":
			out = append(out, dcnr.SweepScenario{Name: "no-remediation", DisableRemediation: true})
		case strings.HasPrefix(spec, "elevate:"):
			parts := strings.Split(spec, ":")
			if len(parts) != 3 {
				return nil, fmt.Errorf("-scenarios: %q: want elevate:YEAR:FACTOR", spec)
			}
			year, err := strconv.Atoi(parts[1])
			if err != nil {
				return nil, fmt.Errorf("-scenarios: %q: %w", spec, err)
			}
			factor, err := strconv.ParseFloat(parts[2], 64)
			if err != nil {
				return nil, fmt.Errorf("-scenarios: %q: %w", spec, err)
			}
			out = append(out, dcnr.SweepScenario{
				Name:          fmt.Sprintf("elevate-%dx%g", year, factor),
				ElevateYear:   year,
				ElevateFactor: factor,
			})
		default:
			return nil, fmt.Errorf("-scenarios: unknown spec %q", spec)
		}
	}
	return out, nil
}

// writeFile creates path, streams the report through write, and closes the
// file, losing neither the write error nor the close error.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return errors.Join(write(f), f.Close())
}
