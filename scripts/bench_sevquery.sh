#!/bin/sh
# Snapshot the analysis and SEV query-engine benchmarks into
# BENCH_sevquery.json at the repo root. Runs the per-table/figure
# benchmarks plus the BenchmarkSevQuery* store benches and records ns/op
# per benchmark, so indexed-query speedups (and regressions) are diffable
# across PRs. Usage: scripts/bench_sevquery.sh [benchtime]
set -eu

cd "$(dirname "$0")/.."
BENCHTIME="${1:-200ms}"
OUT="BENCH_sevquery.json"

go test -run '^$' \
	-bench 'BenchmarkTable|BenchmarkFig|BenchmarkSevQuery|BenchmarkReproFanOut' \
	-benchtime "$BENCHTIME" . |
	awk -v benchtime="$BENCHTIME" '
		/^goos:/   { goos = $2 }
		/^goarch:/ { goarch = $2 }
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix
			names[++n] = name
			nsop[name] = $3
		}
		END {
			printf "{\n"
			printf "  \"goos\": \"%s\",\n", goos
			printf "  \"goarch\": \"%s\",\n", goarch
			printf "  \"benchtime\": \"%s\",\n", benchtime
			printf "  \"ns_per_op\": {\n"
			for (i = 1; i <= n; i++) {
				printf "    \"%s\": %s%s\n", names[i], nsop[names[i]], i < n ? "," : ""
			}
			printf "  }\n}\n"
		}
	' >"$OUT"

echo "wrote $OUT"
