#!/bin/sh
# Measure the streaming SLO/health engine's cost and record it in
# BENCH_health.json at the repo root:
#
#   - end-to-end wall time of dcsim, baseline vs with the health engine
#     (-health-out) vs with the engine plus structured warn-level logging,
#     best of N runs;
#   - the health micro-benchmarks (record/evaluate/report ns/op, live and
#     through the nil no-op engine).
#
# The guardrail is the engine overhead: a default-scale dcsim run with
# -health-out must stay within 5% of the uninstrumented one. The engine
# sees every fault/repair/incident and evaluates daily, so this bounds the
# cost of always-on SLO tracking.
#
# Usage: scripts/bench_health.sh [reps]
set -eu

cd "$(dirname "$0")/.."
REPS="${1:-3}"
OUT="BENCH_health.json"
BIN="$(mktemp -d)"
WORK="$(mktemp -d)"
trap 'rm -rf "$BIN" "$WORK"' EXIT

go build -o "$BIN/dcsim" ./cmd/dcsim

now_ms() { date +%s%N | awk '{ printf "%.3f", $1 / 1000000 }'; }

time_ms() {
	start=$(now_ms)
	"$@" >/dev/null 2>&1
	end=$(now_ms)
	awk -v a="$start" -v b="$end" 'BEGIN { printf "%.3f", b - a }'
}

min() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.3f", (a == "" || b < a) ? b : a }'; }

pct_over() { awk -v base="$1" -v inst="$2" 'BEGIN { printf "%.2f", (inst - base) / base * 100 }'; }

# Variants interleave within each rep so machine-load drift hits every
# variant alike; each variant's best-of-REPS is then compared.
BASE="" HEALTH="" HEALTH_LOGGED=""
i=0
while [ "$i" -lt "$REPS" ]; do
	echo "rep $((i + 1))/$REPS" >&2
	BASE=$(min "$BASE" "$(time_ms "$BIN/dcsim" -seed 1 -out "$WORK/base")")
	HEALTH=$(min "$HEALTH" "$(time_ms "$BIN/dcsim" -seed 1 -out "$WORK/h" -health-out "$WORK/health.json")")
	HEALTH_LOGGED=$(min "$HEALTH_LOGGED" "$(time_ms "$BIN/dcsim" -seed 1 -out "$WORK/hl" -health-out "$WORK/health2.json" -log-level warn -log-format json)")
	i=$((i + 1))
done

echo "health micro-benchmarks" >&2
MICRO=$(go test -run '^$' -bench 'BenchmarkHealth' -benchtime 100ms ./internal/obs/health/ |
	awk '
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			names[++n] = name
			nsop[name] = $3
		}
		END {
			for (i = 1; i <= n; i++)
				printf "    \"%s\": %s%s\n", names[i], nsop[names[i]], i < n ? "," : ""
		}
	')

{
	printf '{\n'
	printf '  "goos": "%s",\n' "$(go env GOOS)"
	printf '  "goarch": "%s",\n' "$(go env GOARCH)"
	printf '  "reps": %s,\n' "$REPS"
	printf '  "end_to_end_ms": {\n'
	printf '    "dcsim_baseline": %s,\n' "$BASE"
	printf '    "dcsim_health": %s,\n' "$HEALTH"
	printf '    "dcsim_health_logged": %s\n' "$HEALTH_LOGGED"
	printf '  },\n'
	printf '  "overhead_pct": {\n'
	printf '    "dcsim_health": %s,\n' "$(pct_over "$BASE" "$HEALTH")"
	printf '    "dcsim_health_logged": %s\n' "$(pct_over "$BASE" "$HEALTH_LOGGED")"
	printf '  },\n'
	printf '  "ns_per_op": {\n'
	printf '%s\n' "$MICRO"
	printf '  }\n'
	printf '}\n'
} >"$OUT"

echo "wrote $OUT"
awk '/dcsim_health/ && /,$/ { gsub(/[ ",]/, ""); print "  " $0 }' "$OUT" >&2
