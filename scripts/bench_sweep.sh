#!/bin/sh
# Measure the scenario-sweep campaign engine and record it in
# BENCH_sweep.json at the repo root:
#
#   - end-to-end wall time of a 16-run seed sweep at scale 1, on 8 workers
#     vs 1 worker, best of N reps, plus the resulting speedup and the
#     machine's CPU count (the speedup ceiling — on a 1-CPU box the
#     parallel run can only tie the serial one);
#   - a hard determinism check: the 8-worker report, the 1-worker report,
#     and a repeated 8-worker report must be byte-identical, or the script
#     fails. The JSONL run streams must match the same way.
#
# The engine's contract is that worker count affects wall time only, never
# output; this script is the executable form of that contract.
#
# Usage: scripts/bench_sweep.sh [reps]
set -eu

cd "$(dirname "$0")/.."
REPS="${1:-3}"
OUT="BENCH_sweep.json"
BIN="$(mktemp -d)"
WORK="$(mktemp -d)"
trap 'rm -rf "$BIN" "$WORK"' EXIT

go build -o "$BIN/dcsweep" ./cmd/dcsweep
CPUS="$(nproc 2>/dev/null || echo 1)"
# The engine clamps workers to the CPU count (oversubscription only adds
# scheduler churn), so the "8 workers" variant effectively runs min(8, CPUS).
EFFECTIVE_8=$([ "$CPUS" -lt 8 ] && echo "$CPUS" || echo 8)

SWEEP_ARGS="-seed-base 1 -runs 16 -scales 1 -scenarios baseline"

now_ms() { date +%s%N | awk '{ printf "%.3f", $1 / 1000000 }'; }

time_ms() {
	start=$(now_ms)
	"$@" >/dev/null 2>&1
	end=$(now_ms)
	awk -v a="$start" -v b="$end" 'BEGIN { printf "%.3f", b - a }'
}

min() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.3f", (a == "" || b < a) ? b : a }'; }

# Variants interleave within each rep so machine-load drift hits every
# variant alike; each variant's best-of-REPS is then compared.
SERIAL="" PAR=""
i=0
while [ "$i" -lt "$REPS" ]; do
	echo "rep $((i + 1))/$REPS" >&2
	SERIAL=$(min "$SERIAL" "$(time_ms "$BIN/dcsweep" $SWEEP_ARGS -workers 1 -out "$WORK/w1.json" -runs-out "$WORK/w1.jsonl")")
	PAR=$(min "$PAR" "$(time_ms "$BIN/dcsweep" $SWEEP_ARGS -workers 8 -out "$WORK/w8.json" -runs-out "$WORK/w8.jsonl")")
	i=$((i + 1))
done

echo "determinism check" >&2
"$BIN/dcsweep" $SWEEP_ARGS -workers 8 -out "$WORK/w8b.json" -runs-out "$WORK/w8b.jsonl" >/dev/null
cmp "$WORK/w1.json" "$WORK/w8.json" || { echo "FAIL: serial and parallel reports differ" >&2; exit 1; }
cmp "$WORK/w8.json" "$WORK/w8b.json" || { echo "FAIL: repeated parallel reports differ" >&2; exit 1; }
cmp "$WORK/w1.jsonl" "$WORK/w8.jsonl" || { echo "FAIL: serial and parallel run streams differ" >&2; exit 1; }
cmp "$WORK/w8.jsonl" "$WORK/w8b.jsonl" || { echo "FAIL: repeated parallel run streams differ" >&2; exit 1; }

SPEEDUP=$(awk -v s="$SERIAL" -v p="$PAR" 'BEGIN { printf "%.2f", s / p }')

{
	printf '{\n'
	printf '  "goos": "%s",\n' "$(go env GOOS)"
	printf '  "goarch": "%s",\n' "$(go env GOARCH)"
	printf '  "cpus": %s,\n' "$CPUS"
	printf '  "workers_requested": 8,\n'
	printf '  "workers_effective": %s,\n' "$EFFECTIVE_8"
	printf '  "reps": %s,\n' "$REPS"
	printf '  "grid": "16 seeds x scale 1 x baseline",\n'
	printf '  "end_to_end_ms": {\n'
	printf '    "dcsweep_workers_1": %s,\n' "$SERIAL"
	printf '    "dcsweep_workers_8": %s\n' "$PAR"
	printf '  },\n'
	printf '  "speedup_8_over_1": %s,\n' "$SPEEDUP"
	printf '  "speedup_target": "4x with >= 8 CPUs; bounded by cpus above",\n'
	printf '  "deterministic_reports": true\n'
	printf '}\n'
} >"$OUT"

echo "wrote $OUT (cpus=$CPUS, serial=${SERIAL}ms, parallel=${PAR}ms, speedup=${SPEEDUP}x)"

# The 4x criterion only binds where the hardware can express it: with
# fewer than 8 CPUs the pool cannot outrun the machine, so the check
# degrades to requiring the parallel run not be slower than ~serial.
if [ "$CPUS" -ge 8 ]; then
	awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 4) }' ||
		{ echo "FAIL: speedup ${SPEEDUP}x < 4x on $CPUS CPUs" >&2; exit 1; }
else
	awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 0.85) }' ||
		{ echo "FAIL: parallel run regressed serial (speedup ${SPEEDUP}x) on $CPUS CPUs" >&2; exit 1; }
fi
