#!/bin/sh
# Snapshot the serving-layer benchmark into BENCH_serve.json at the repo
# root: dcnrload self-hosts a dcnrd daemon, replays the paper-figure
# query mix at a rising concurrency ladder, and records qps, latency
# percentiles, and cache hit-rate per step, so serving regressions are
# diffable across PRs.
#
# The gate is machine-independent: every step must complete its requests
# error-free with nonzero throughput, p99 must stay under a deliberately
# generous bound, and the repeated mix must land some cache hits. Actual
# qps numbers are recorded but never gated on.
#
# Usage: scripts/bench_serve.sh [smoke]
set -eu

cd "$(dirname "$0")/.."
OUT="BENCH_serve.json"

if [ "${1:-}" = "smoke" ]; then
	STEPS="1,2"
	REQUESTS=200
	REPORTS=2000
else
	STEPS="1,2,4,8"
	REQUESTS=400
	REPORTS=5000
fi

go run ./cmd/dcnrload -steps "$STEPS" -requests "$REQUESTS" \
	-reports "$REPORTS" -out "$OUT"

awk '
	function num(s) { gsub(/[",]/, "", s); return s + 0 }
	/"errors":/         { if (num($2) != 0) fail = "step reported request errors" }
	/"qps":/            { if (num($2) <= 0) fail = "step reported zero qps" }
	/"p99_ms":/         { if (num($2) > 5000) fail = "p99 above the 5s smoke bound" }
	/"cache_hit_rate":/ { hit = num($2) }
	END {
		if (hit <= 0) fail = "no cache hits on the repeated mix"
		if (fail) { print "bench-serve gate: " fail; exit 1 }
	}
' "$OUT"

echo "bench-serve gate passed"
