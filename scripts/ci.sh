#!/bin/sh
# The CI gate, fail-fast and in dependency order: cheap structural checks
# before expensive dynamic ones.
#
#   1. build     - everything compiles
#   2. vet       - stock go vet
#   3. lint      - cmd/dcnrlint project invariants + gofmt cleanliness
#   4. race      - full test suite under the race detector
#   5. test-obs  - focused race pass over telemetry + instrumented paths
#
# Steps 3-5 are the layered defense for the PR-2 race class: heaplock
# flags unlocked DES-heap scheduling statically, and the remediation
# concurrency tests catch it dynamically under -race.
#
# Usage: scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

step() {
	echo "==> ci: $1"
	shift
	"$@"
}

step build make build
step vet make vet
step lint make lint
step race make race
step test-obs make test-obs

echo "==> ci: all gates passed"
