#!/bin/sh
# The CI gate, fail-fast and in dependency order: cheap structural checks
# before expensive dynamic ones.
#
#   1. build       - everything compiles
#   2. vet         - stock go vet
#   3. lint        - cmd/dcnrlint project invariants (per-package +
#                    inter-procedural simtaint/lockflow, with per-analyzer
#                    timings) + gofmt cleanliness
#   4. lint-hot    - compiler-backed hotalloc gate: //hot:noalloc regions
#                    must be free of heap escapes per `go build -m`
#   5. apicheck    - exported facade API matches the reviewed api.txt
#   6. race        - full test suite under the race detector
#   7. test-obs    - focused race pass over telemetry + instrumented paths
#   8. bench-des   - smoke run of the DES kernel benchmarks; gates only on
#                    the machine-independent invariant (0 allocs/op in
#                    steady state), not on timings
#   9. bench-serve - smoke run of the query-daemon load harness; gates
#                    only on machine-independent invariants (error-free
#                    steps, nonzero qps, generous p99 bound, cache hits
#                    on the repeated mix), never on absolute timings
#  10. test-health - focused race pass over the SLO engine and its wiring;
#                    on failure an elevated-run SLO report is dumped to
#                    health_slo_failure.json for triage
#
# Steps 3-6 are the layered defense for the PR-2 race class: heaplock
# flags unlocked DES-heap scheduling syntactically, lockflow proves the
# inter-procedural variant (mutations hidden behind helpers reachable from
# unlocked entry points), and the remediation concurrency tests catch it
# dynamically under -race.
#
# Usage: scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

step() {
	echo "==> ci: $1"
	shift
	"$@"
}

step build make build
step vet make vet
step lint make lint
step lint-hot make lint-hot
step apicheck make apicheck
step race make race
step test-obs make test-obs
step bench-des ./scripts/bench_des.sh smoke
step bench-serve ./scripts/bench_serve.sh smoke

# The health gate dumps a full /slo-shaped report from an elevated run on
# failure, so a broken alert pipeline leaves its state behind as an
# artifact instead of only a test log.
echo "==> ci: test-health"
if ! make test-health; then
	echo "==> ci: test-health failed; dumping elevated-run SLO report" >&2
	go run ./cmd/dcsim -seed 7 -elevate-year 2014 -elevate-factor 5 \
		-out "$(mktemp -d)" -health-out health_slo_failure.json >&2 || true
	echo "==> ci: SLO report at health_slo_failure.json" >&2
	exit 1
fi

echo "==> ci: all gates passed"
