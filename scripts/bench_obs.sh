#!/bin/sh
# Measure the telemetry subsystem's cost and record it in BENCH_obs.json
# at the repo root:
#
#   - end-to-end wall time of dcsim and repro, uninstrumented vs with
#     metrics (and, for dcsim, with full tracing), best of N runs;
#   - the obs micro-benchmarks (counter/gauge/histogram/span ns/op, both
#     live and through nil no-ops) plus the instrumented DES kernel bench.
#
# The guardrails are the end-to-end dcsim overheads, enforced as hard
# failures: metrics-only must stay within 5% of the uninstrumented run,
# the causal journal — fixed-size records staged in per-lane rings —
# also within 5%, and full tracing — which records every DES event
# through the ring recorder and pipelines the trace write behind the
# backbone phase — within 15%.
#
# Both the journal and the trace hide their serialization (index, encode,
# write) behind the backbone phase on a second core; on a single-CPU
# machine there is no second core and that work lands on the critical
# path, so the journal gate is relaxed to the traced budget (15%) there.
#
# Usage: scripts/bench_obs.sh [reps]
set -eu

cd "$(dirname "$0")/.."
REPS="${1:-3}"
OUT="BENCH_obs.json"
BIN="$(mktemp -d)"
WORK="$(mktemp -d)"
trap 'rm -rf "$BIN" "$WORK"' EXIT

go build -o "$BIN/dcsim" ./cmd/dcsim
go build -o "$BIN/repro" ./cmd/repro

now_ms() { date +%s%N | awk '{ printf "%.3f", $1 / 1000000 }'; }

time_ms() {
	start=$(now_ms)
	"$@" >/dev/null 2>&1
	end=$(now_ms)
	awk -v a="$start" -v b="$end" 'BEGIN { printf "%.3f", b - a }'
}

min() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.3f", (a == "" || b < a) ? b : a }'; }

pct_over() { awk -v base="$1" -v inst="$2" 'BEGIN { printf "%.2f", (inst - base) / base * 100 }'; }

# Variants are interleaved within each rep (baseline, metrics, traced,
# baseline, …) so slow machine-load drift hits every variant alike instead
# of biasing whichever phase ran during the busy minute; each variant's
# best-of-REPS is then compared.
DCSIM_BASE="" DCSIM_METRICS="" DCSIM_JOURNALED="" DCSIM_TRACED="" REPRO_BASE="" REPRO_METRICS=""
i=0
while [ "$i" -lt "$REPS" ]; do
	echo "rep $((i + 1))/$REPS" >&2
	DCSIM_BASE=$(min "$DCSIM_BASE" "$(time_ms "$BIN/dcsim" -seed 1 -out "$WORK/base")")
	DCSIM_METRICS=$(min "$DCSIM_METRICS" "$(time_ms "$BIN/dcsim" -seed 1 -out "$WORK/m" -metrics-out "$WORK/metrics.json")")
	DCSIM_JOURNALED=$(min "$DCSIM_JOURNALED" "$(time_ms "$BIN/dcsim" -seed 1 -out "$WORK/j" -journal "$WORK/journal.jsonl")")
	DCSIM_TRACED=$(min "$DCSIM_TRACED" "$(time_ms "$BIN/dcsim" -seed 1 -out "$WORK/t" -trace "$WORK/trace.json")")
	REPRO_BASE=$(min "$REPRO_BASE" "$(time_ms "$BIN/repro" -seed 1)")
	REPRO_METRICS=$(min "$REPRO_METRICS" "$(time_ms "$BIN/repro" -seed 1 -metrics-addr 127.0.0.1:0)")
	i=$((i + 1))
done

echo "obs micro-benchmarks" >&2
MICRO=$(go test -run '^$' -bench 'BenchmarkObs' -benchtime 100ms ./internal/obs/ ./internal/obs/journal/ ./internal/des/ |
	awk '
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			names[++n] = name
			nsop[name] = $3
		}
		END {
			for (i = 1; i <= n; i++)
				printf "    \"%s\": %s%s\n", names[i], nsop[names[i]], i < n ? "," : ""
		}
	')

{
	printf '{\n'
	printf '  "goos": "%s",\n' "$(go env GOOS)"
	printf '  "goarch": "%s",\n' "$(go env GOARCH)"
	printf '  "reps": %s,\n' "$REPS"
	printf '  "end_to_end_ms": {\n'
	printf '    "dcsim_baseline": %s,\n' "$DCSIM_BASE"
	printf '    "dcsim_metrics": %s,\n' "$DCSIM_METRICS"
	printf '    "dcsim_journaled": %s,\n' "$DCSIM_JOURNALED"
	printf '    "dcsim_traced": %s,\n' "$DCSIM_TRACED"
	printf '    "repro_baseline": %s,\n' "$REPRO_BASE"
	printf '    "repro_metrics": %s\n' "$REPRO_METRICS"
	printf '  },\n'
	printf '  "overhead_pct": {\n'
	printf '    "dcsim_metrics": %s,\n' "$(pct_over "$DCSIM_BASE" "$DCSIM_METRICS")"
	printf '    "dcsim_journaled": %s,\n' "$(pct_over "$DCSIM_BASE" "$DCSIM_JOURNALED")"
	printf '    "dcsim_traced": %s,\n' "$(pct_over "$DCSIM_BASE" "$DCSIM_TRACED")"
	printf '    "repro_metrics": %s\n' "$(pct_over "$REPRO_BASE" "$REPRO_METRICS")"
	printf '  },\n'
	printf '  "ns_per_op": {\n'
	printf '%s\n' "$MICRO"
	printf '  }\n'
	printf '}\n'
} >"$OUT"

echo "wrote $OUT"
awk '/dcsim_metrics/ && /,$/ { gsub(/[ ",]/, ""); print "  " $0 }' "$OUT" >&2

METRICS_PCT=$(pct_over "$DCSIM_BASE" "$DCSIM_METRICS")
JOURNALED_PCT=$(pct_over "$DCSIM_BASE" "$DCSIM_JOURNALED")
TRACED_PCT=$(pct_over "$DCSIM_BASE" "$DCSIM_TRACED")

# The journal's index+encode+write runs concurrently with the backbone
# phase, so its budget assumes a core is free to absorb it. With only one
# CPU the pipeline degenerates to serial and the journal pays its full
# serialization cost on the critical path, like the trace does — gate it
# at the traced budget there.
NCPU=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
JOURNAL_BUDGET=5
if [ "$NCPU" -le 1 ]; then
	JOURNAL_BUDGET=15
	echo "note: single CPU — journal write cannot overlap the backbone phase; gating journal at ${JOURNAL_BUDGET}%" >&2
fi

awk -v m="$METRICS_PCT" 'BEGIN { exit !(m < 5) }' ||
	{ echo "FAIL: dcsim metrics overhead ${METRICS_PCT}% >= 5%" >&2; exit 1; }
awk -v j="$JOURNALED_PCT" -v lim="$JOURNAL_BUDGET" 'BEGIN { exit !(j < lim) }' ||
	{ echo "FAIL: dcsim journal overhead ${JOURNALED_PCT}% >= ${JOURNAL_BUDGET}%" >&2; exit 1; }
awk -v t="$TRACED_PCT" 'BEGIN { exit !(t < 15) }' ||
	{ echo "FAIL: dcsim traced overhead ${TRACED_PCT}% >= 15%" >&2; exit 1; }
echo "overhead gates passed (metrics ${METRICS_PCT}% < 5%, journal ${JOURNALED_PCT}% < ${JOURNAL_BUDGET}%, traced ${TRACED_PCT}% < 15%)"
