#!/bin/sh
# Measure the telemetry subsystem's cost and record it in BENCH_obs.json
# at the repo root:
#
#   - end-to-end wall time of dcsim and repro, uninstrumented vs with
#     metrics (and, for dcsim, with the timeline sampler and with full
#     tracing), median of N runs after a discarded warm-up rep;
#   - the obs micro-benchmarks (counter/gauge/histogram/span/timeline
#     ns/op, both live and through nil no-ops) plus the instrumented DES
#     kernel bench.
#
# The guardrails are the end-to-end dcsim overheads, enforced as hard
# failures: metrics-only must stay within 5% of the uninstrumented run,
# the timeline sampler — fixed-width samples staged in per-lane rings,
# driven off the DES clock — also within 5%, the causal journal within
# 5%, and full tracing — which records every DES event through the ring
# recorder and pipelines the trace write behind the backbone phase —
# within 15%.
#
# Both the journal and the trace hide their serialization (index, encode,
# write) behind the backbone phase on a second core; on a single-CPU
# machine there is no second core and that work lands on the critical
# path, so the journal gate is relaxed to the traced budget (15%) there.
#
# Gating compares medians, not minima or means: the min rewards the one
# lucky scheduling outcome and the mean lets one page-cache-cold outlier
# fail an otherwise healthy run. Overheads are computed per rep — each
# instrumented run against the baseline run of its own rep, adjacent in
# time — and the gate takes the median of those paired overheads, which
# cancels machine-load drift that a ratio of cross-rep aggregates would
# keep. The first rep of every variant is a warm-up (binary page-in,
# branch predictors, file cache) and is discarded.
#
# Usage: scripts/bench_obs.sh [reps]
set -eu

cd "$(dirname "$0")/.."
REPS="${1:-5}"
OUT="BENCH_obs.json"
BIN="$(mktemp -d)"
WORK="$(mktemp -d)"
trap 'rm -rf "$BIN" "$WORK"' EXIT

go build -o "$BIN/dcsim" ./cmd/dcsim
go build -o "$BIN/repro" ./cmd/repro

now_ms() { date +%s%N | awk '{ printf "%.3f", $1 / 1000000 }'; }

time_ms() {
	start=$(now_ms)
	"$@" >/dev/null 2>&1
	end=$(now_ms)
	awk -v a="$start" -v b="$end" 'BEGIN { printf "%.3f", b - a }'
}

# median of a space-separated list of numbers (even count: mean of the
# two middle values).
median() {
	printf '%s\n' $1 | sort -n | awk '
		{ v[NR] = $1 }
		END {
			if (NR % 2) printf "%.3f", v[(NR + 1) / 2]
			else printf "%.3f", (v[NR / 2] + v[NR / 2 + 1]) / 2
		}'
}

pct_over() { awk -v base="$1" -v inst="$2" 'BEGIN { printf "%.2f", (inst - base) / base * 100 }'; }

# Variants are interleaved within each rep (baseline, metrics, timeline,
# …, baseline, …) so slow machine-load drift hits every variant alike
# instead of biasing whichever phase ran during the busy minute, and each
# rep's overheads are taken against that same rep's baseline. Rep 0 is a
# warm-up: every variant runs but nothing is recorded.
DCSIM_BASE="" DCSIM_METRICS="" DCSIM_TIMELINE="" DCSIM_JOURNALED="" DCSIM_TRACED="" REPRO_BASE="" REPRO_METRICS=""
OV_METRICS="" OV_TIMELINE="" OV_JOURNALED="" OV_TRACED="" OV_RMETRICS=""
i=0
while [ "$i" -le "$REPS" ]; do
	if [ "$i" -eq 0 ]; then
		echo "warm-up rep (discarded)" >&2
	else
		echo "rep $i/$REPS" >&2
	fi
	base=$(time_ms "$BIN/dcsim" -seed 1 -out "$WORK/base")
	metrics=$(time_ms "$BIN/dcsim" -seed 1 -out "$WORK/m" -metrics-out "$WORK/metrics.json")
	timeline=$(time_ms "$BIN/dcsim" -seed 1 -out "$WORK/tl" -timeline "$WORK/timeline.jsonl")
	journaled=$(time_ms "$BIN/dcsim" -seed 1 -out "$WORK/j" -journal "$WORK/journal.jsonl")
	traced=$(time_ms "$BIN/dcsim" -seed 1 -out "$WORK/t" -trace "$WORK/trace.json")
	rbase=$(time_ms "$BIN/repro" -seed 1)
	rmetrics=$(time_ms "$BIN/repro" -seed 1 -metrics-addr 127.0.0.1:0)
	if [ "$i" -gt 0 ]; then
		DCSIM_BASE="$DCSIM_BASE $base"
		DCSIM_METRICS="$DCSIM_METRICS $metrics"
		DCSIM_TIMELINE="$DCSIM_TIMELINE $timeline"
		DCSIM_JOURNALED="$DCSIM_JOURNALED $journaled"
		DCSIM_TRACED="$DCSIM_TRACED $traced"
		REPRO_BASE="$REPRO_BASE $rbase"
		REPRO_METRICS="$REPRO_METRICS $rmetrics"
		OV_METRICS="$OV_METRICS $(pct_over "$base" "$metrics")"
		OV_TIMELINE="$OV_TIMELINE $(pct_over "$base" "$timeline")"
		OV_JOURNALED="$OV_JOURNALED $(pct_over "$base" "$journaled")"
		OV_TRACED="$OV_TRACED $(pct_over "$base" "$traced")"
		OV_RMETRICS="$OV_RMETRICS $(pct_over "$rbase" "$rmetrics")"
	fi
	i=$((i + 1))
done

DCSIM_BASE=$(median "$DCSIM_BASE")
DCSIM_METRICS=$(median "$DCSIM_METRICS")
DCSIM_TIMELINE=$(median "$DCSIM_TIMELINE")
DCSIM_JOURNALED=$(median "$DCSIM_JOURNALED")
DCSIM_TRACED=$(median "$DCSIM_TRACED")
REPRO_BASE=$(median "$REPRO_BASE")
REPRO_METRICS=$(median "$REPRO_METRICS")
# Paired medians: these are the gated numbers, and they deliberately do
# not equal recomputing the ratio from the median times above.
METRICS_PCT=$(median "$OV_METRICS")
TIMELINE_PCT=$(median "$OV_TIMELINE")
JOURNALED_PCT=$(median "$OV_JOURNALED")
TRACED_PCT=$(median "$OV_TRACED")
RMETRICS_PCT=$(median "$OV_RMETRICS")

echo "obs micro-benchmarks" >&2
MICRO=$(go test -run '^$' -bench 'BenchmarkObs' -benchtime 100ms ./internal/obs/ ./internal/obs/journal/ ./internal/obs/timeline/ ./internal/des/ |
	awk '
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			names[++n] = name
			nsop[name] = $3
		}
		END {
			for (i = 1; i <= n; i++)
				printf "    \"%s\": %s%s\n", names[i], nsop[names[i]], i < n ? "," : ""
		}
	')

{
	printf '{\n'
	printf '  "goos": "%s",\n' "$(go env GOOS)"
	printf '  "goarch": "%s",\n' "$(go env GOARCH)"
	printf '  "reps": %s,\n' "$REPS"
	printf '  "end_to_end_ms": {\n'
	printf '    "dcsim_baseline": %s,\n' "$DCSIM_BASE"
	printf '    "dcsim_metrics": %s,\n' "$DCSIM_METRICS"
	printf '    "dcsim_timeline": %s,\n' "$DCSIM_TIMELINE"
	printf '    "dcsim_journaled": %s,\n' "$DCSIM_JOURNALED"
	printf '    "dcsim_traced": %s,\n' "$DCSIM_TRACED"
	printf '    "repro_baseline": %s,\n' "$REPRO_BASE"
	printf '    "repro_metrics": %s\n' "$REPRO_METRICS"
	printf '  },\n'
	printf '  "overhead_pct": {\n'
	printf '    "dcsim_metrics": %s,\n' "$METRICS_PCT"
	printf '    "dcsim_timeline": %s,\n' "$TIMELINE_PCT"
	printf '    "dcsim_journaled": %s,\n' "$JOURNALED_PCT"
	printf '    "dcsim_traced": %s,\n' "$TRACED_PCT"
	printf '    "repro_metrics": %s\n' "$RMETRICS_PCT"
	printf '  },\n'
	printf '  "ns_per_op": {\n'
	printf '%s\n' "$MICRO"
	printf '  }\n'
	printf '}\n'
} >"$OUT"

echo "wrote $OUT"
awk '/dcsim_metrics/ && /,$/ { gsub(/[ ",]/, ""); print "  " $0 }' "$OUT" >&2

# The journal's index+encode+write runs concurrently with the backbone
# phase, so its budget assumes a core is free to absorb it. With only one
# CPU the pipeline degenerates to serial and the journal pays its full
# serialization cost on the critical path, like the trace does — gate it
# at the traced budget there.
NCPU=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
JOURNAL_BUDGET=5
if [ "$NCPU" -le 1 ]; then
	JOURNAL_BUDGET=15
	echo "note: single CPU — journal write cannot overlap the backbone phase; gating journal at ${JOURNAL_BUDGET}%" >&2
fi

awk -v m="$METRICS_PCT" 'BEGIN { exit !(m < 5) }' ||
	{ echo "FAIL: dcsim metrics overhead ${METRICS_PCT}% >= 5%" >&2; exit 1; }
awk -v t="$TIMELINE_PCT" 'BEGIN { exit !(t < 5) }' ||
	{ echo "FAIL: dcsim timeline overhead ${TIMELINE_PCT}% >= 5%" >&2; exit 1; }
awk -v j="$JOURNALED_PCT" -v lim="$JOURNAL_BUDGET" 'BEGIN { exit !(j < lim) }' ||
	{ echo "FAIL: dcsim journal overhead ${JOURNALED_PCT}% >= ${JOURNAL_BUDGET}%" >&2; exit 1; }
awk -v t="$TRACED_PCT" 'BEGIN { exit !(t < 15) }' ||
	{ echo "FAIL: dcsim traced overhead ${TRACED_PCT}% >= 15%" >&2; exit 1; }
echo "overhead gates passed (metrics ${METRICS_PCT}% < 5%, timeline ${TIMELINE_PCT}% < 5%, journal ${JOURNALED_PCT}% < ${JOURNAL_BUDGET}%, traced ${TRACED_PCT}% < 15%)"
