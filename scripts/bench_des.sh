#!/bin/sh
# Measure the DES kernel hot path and record it in BENCH_des.json at the
# repo root:
#
#   - BenchmarkScheduleAndRun: schedule 10k events into a recycled
#     simulator and drain them, uninstrumented (ns/op + allocs/op);
#   - BenchmarkObsScheduleAndRunInstrumented: the same loop with a metrics
#     registry attached — the number the pooled-kernel refactor gates on,
#     compared against the pre-refactor recorded baseline of 7821045 ns/op;
#   - the steady-state allocation gate: both loops must run at
#     0 allocs/op, or event pooling has regressed.
#
# The script fails if the instrumented loop is less than 5x faster than
# the recorded baseline or if either loop allocates.
#
# Usage: scripts/bench_des.sh [benchtime|smoke]
#   benchtime  go test -benchtime value (default 300ms)
#   smoke      quick CI mode: short run, allocation gate only, no JSON
set -eu

cd "$(dirname "$0")/.."
MODE="${1:-300ms}"
OUT="BENCH_des.json"
BASELINE_NS=7821045

BENCHTIME="$MODE"
if [ "$MODE" = "smoke" ]; then
	BENCHTIME="20x"
fi

RES=$(go test -run '^$' \
	-bench 'BenchmarkScheduleAndRun$|BenchmarkObsScheduleAndRunInstrumented$' \
	-benchtime "$BENCHTIME" ./internal/des/)

# The -N GOMAXPROCS suffix on benchmark names is absent when GOMAXPROCS=1.
ns_of() { printf '%s\n' "$RES" | awk -v b="$1" '$1 ~ "^"b"(-[0-9]+)?$" { print $3; exit }'; }
allocs_of() { printf '%s\n' "$RES" | awk -v b="$1" '$1 ~ "^"b"(-[0-9]+)?$" { for (i = 2; i < NF; i++) if ($(i+1) == "allocs/op") { print $i; exit } }'; }

PLAIN_NS=$(ns_of BenchmarkScheduleAndRun)
PLAIN_ALLOCS=$(allocs_of BenchmarkScheduleAndRun)
INST_NS=$(ns_of BenchmarkObsScheduleAndRunInstrumented)
INST_ALLOCS=$(allocs_of BenchmarkObsScheduleAndRunInstrumented)

[ -n "$PLAIN_NS" ] && [ -n "$INST_NS" ] ||
	{ echo "FAIL: could not parse benchmark output:"; printf '%s\n' "$RES"; exit 1; } >&2

# Steady-state allocation gate: the pooled kernel recycles nodes through
# the free list, so after the first iteration warms the slabs neither loop
# may allocate. This is machine-independent, so it runs in smoke mode too.
for gate in "plain:$PLAIN_ALLOCS" "instrumented:$INST_ALLOCS"; do
	case "$gate" in
	*:0) ;;
	*) echo "FAIL: ${gate%%:*} schedule-and-run allocates ${gate#*:} allocs/op, want 0 (event pooling regressed)" >&2
		exit 1 ;;
	esac
done

if [ "$MODE" = "smoke" ]; then
	echo "bench-des smoke: 0 allocs/op on both loops (plain ${PLAIN_NS} ns/op, instrumented ${INST_NS} ns/op)"
	exit 0
fi

REDUCTION=$(awk -v base="$BASELINE_NS" -v inst="$INST_NS" 'BEGIN { printf "%.2f", base / inst }')

{
	printf '{\n'
	printf '  "goos": "%s",\n' "$(go env GOOS)"
	printf '  "goarch": "%s",\n' "$(go env GOARCH)"
	printf '  "benchtime": "%s",\n' "$BENCHTIME"
	printf '  "events_per_iteration": 10000,\n'
	printf '  "schedule_and_run": { "ns_per_op": %s, "allocs_per_op": %s },\n' "$PLAIN_NS" "$PLAIN_ALLOCS"
	printf '  "schedule_and_run_instrumented": { "ns_per_op": %s, "allocs_per_op": %s },\n' "$INST_NS" "$INST_ALLOCS"
	printf '  "recorded_baseline_ns_per_op": %s,\n' "$BASELINE_NS"
	printf '  "instrumented_reduction_x": %s,\n' "$REDUCTION"
	printf '  "reduction_target": ">= 5x vs the recorded pre-refactor instrumented baseline"\n'
	printf '}\n'
} >"$OUT"

echo "wrote $OUT (plain=${PLAIN_NS} ns/op, instrumented=${INST_NS} ns/op, reduction=${REDUCTION}x)"

awk -v r="$REDUCTION" 'BEGIN { exit !(r >= 5) }' ||
	{ echo "FAIL: instrumented reduction ${REDUCTION}x < 5x vs recorded ${BASELINE_NS} ns/op baseline" >&2; exit 1; }
