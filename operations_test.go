package dcnr

import (
	"testing"
)

func TestReferenceTopology(t *testing.T) {
	net, err := ReferenceTopology()
	if err != nil {
		t.Fatal(err)
	}
	if net.NumDevices() == 0 {
		t.Fatal("empty reference topology")
	}
	for _, dt := range IntraDCTypes {
		if len(net.DevicesOfType(dt)) == 0 {
			t.Errorf("no %v devices", dt)
		}
	}
}

func TestBuildHelpersCompose(t *testing.T) {
	n := NewNetwork()
	c1, err := BuildCluster(n, ClusterSpec{DC: "dc1", Region: "r", Clusters: 1, RacksPerCluster: 2})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := BuildFabric(n, FabricSpec{DC: "dc2", Region: "r", Pods: 1, RacksPerPod: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := InterconnectCores(n, c1, c2); err != nil {
		t.Fatal(err)
	}
	if !n.Reachable(c1[0], c2[0], nil) {
		t.Error("cores not interconnected")
	}
}

func TestTrafficFacade(t *testing.T) {
	net, err := ReferenceTopology()
	if err != nil {
		t.Fatal(err)
	}
	demands, err := GenerateTraffic(net, TrafficConfig{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(demands) == 0 {
		t.Fatal("no demands")
	}
	rep := StudyTraffic(net, demands, nil)
	if rep.TotalGbps <= 0 || rep.UnroutableGbps != 0 {
		t.Errorf("healthy study: %+v", rep)
	}
	r := NewRouter(net)
	load, unroutable := r.Route(demands)
	if len(unroutable) != 0 || len(load) == 0 {
		t.Error("router facade broken")
	}
	re := Reassign(net, demands, map[string]bool{net.DevicesOfType(Core)[0].Name: true})
	if len(re) != len(demands) {
		t.Error("Reassign changed demand count")
	}
}

func TestImpactFacade(t *testing.T) {
	net, err := ReferenceTopology()
	if err != nil {
		t.Fatal(err)
	}
	assessor := NewImpactAssessor(net)
	csw := net.DevicesOfType(CSW)[0].Name
	as, err := assessor.Assess(csw, ScopeDevice)
	if err != nil {
		t.Fatal(err)
	}
	if as.Severity != Sev3 {
		t.Errorf("isolated CSW failure = %v", as.Severity)
	}
	as, err = assessor.Assess(csw, ScopeUnit)
	if err != nil {
		t.Fatal(err)
	}
	if as.Severity != Sev1 {
		t.Errorf("CSW cascade = %v", as.Severity)
	}
}

func TestMaintenanceFacade(t *testing.T) {
	net, err := ReferenceTopology()
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewMaintenanceScheduler(NewImpactAssessor(net), 7)
	if err != nil {
		t.Fatal(err)
	}
	sched.MishapProb = 1
	var group []string
	unit := net.DevicesOfType(CSW)[0].Unit
	for _, d := range net.DevicesOfType(CSW) {
		if d.Unit == unit {
			group = append(group, d.Name)
		}
	}
	drained, err := sched.RollingMaintenance(group, DrainFirst)
	if err != nil {
		t.Fatal(err)
	}
	undrained, err := sched.RollingMaintenance(group, NoDrain)
	if err != nil {
		t.Fatal(err)
	}
	if drained.IncidentCount() != 0 || undrained.IncidentCount() == 0 {
		t.Errorf("drain ablation: drained=%d undrained=%d",
			drained.IncidentCount(), undrained.IncidentCount())
	}
}

func TestConfigFacade(t *testing.T) {
	guarded, err := ConfigBlastStudy(NewConfigGuard(10), 500, 10000, 3)
	if err != nil {
		t.Fatal(err)
	}
	unguarded, err := ConfigBlastStudy(UnguardedConfig(), 500, 10000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if guarded >= unguarded {
		t.Errorf("guard did not reduce blast: %v vs %v", guarded, unguarded)
	}
}

func TestDrillFacade(t *testing.T) {
	net, err := ReferenceTopology()
	if err != nil {
		t.Fatal(err)
	}
	demands, err := GenerateTraffic(net, TrafficConfig{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewDrillRunner(net, demands, DefaultDrillCriteria())
	if err != nil {
		t.Fatal(err)
	}
	sc, err := DataCenterDisconnect(net, "dc1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Error("DC disconnect passed default criteria")
	}
	scenarios, err := StandardDrills(net)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) < len(IntraDCTypes) {
		t.Errorf("standard drills = %d", len(scenarios))
	}
}

func TestWANFacade(t *testing.T) {
	bb, err := NewWANBackbone(WANConfig{Regions: []string{"a", "b", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < bb.Planes(); p++ {
		if err := bb.SetLinkDown("a", "b", p, true); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := bb.Engineer([]WANDemand{{From: "a", To: "b", Gbps: 100}})
	if err != nil {
		t.Fatal(err)
	}
	f := rep.Flows[0]
	if f.ReroutedGbps != 100 || f.Via != "c" {
		t.Errorf("flow = %+v, want full reroute via c", f)
	}
}

func TestCapacityFacade(t *testing.T) {
	u, err := DeviceUnavailability(39495, 30)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ProvisionGroup(7, u, FourNines)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Provision != 8 {
		t.Errorf("plan = %+v, want the paper's 8 cores", plan)
	}
	risk, err := GroupRisk(8, 1, u)
	if err != nil {
		t.Fatal(err)
	}
	if risk >= FourNines {
		t.Errorf("8-core risk %v above four-nines target", risk)
	}
}

func TestReviewFacade(t *testing.T) {
	r := SEVReport{
		Severity: Sev3, Device: "rsw001.cl001.dc1.ra",
		Start: 1, Duration: 1, Resolution: 2, Year: 2017,
		Title: "x", Impact: "y",
	}
	if issues := CompletenessIssues(&r); len(issues) != 0 {
		t.Errorf("complete report flagged: %v", issues)
	}
	store := NewSEVStore()
	id, err := store.Add(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Publish(id, "reviewer"); err != nil {
		t.Fatal(err)
	}
}
