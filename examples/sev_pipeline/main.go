// SEV pipeline: the §4.2 incident-report workflow, by hand. Authors the
// paper's three representative SEVs (the RSW software bug, the faulty CSA
// module, the misconfigured load balancer), stores them, round-trips the
// dataset through JSON, and runs the queries an engineer would.
package main

import (
	"bytes"
	"fmt"
	"log"

	"dcnr"
)

func main() {
	store := dcnr.NewSEVStore()

	// SEV3 (§4.2): switch crash from software bug. August 17–22, 2017.
	mustAdd(store, dcnr.SEVReport{
		Severity:   dcnr.Sev3,
		Device:     "rsw042.pod007.dc3.regionb",
		RootCauses: []dcnr.RootCause{dcnr.Bug},
		Year:       2017,
		Start:      hoursSinceEpoch(2017, 228), // mid-August
		Duration:   120,                        // five days to fix and confirm
		Resolution: 122,
		Title:      "switch crash from software bug",
		Impact:     "RSW crashed whenever software disabled a port; hardware counter allocation failed",
		Reviewed:   true,
	})

	// SEV2 (§4.2): traffic drop from faulty hardware module. October 2013.
	mustAdd(store, dcnr.SEVReport{
		Severity:         dcnr.Sev2,
		Device:           "csa001.dc1.regiona",
		RootCauses:       []dcnr.RootCause{dcnr.Hardware},
		Year:             2013,
		Start:            hoursSinceEpoch(2013, 298),
		Duration:         5.0 / 60, // five minutes of request failures
		Resolution:       24.7,     // closed next day after module replacement
		Title:            "traffic drop from faulty hardware module",
		Impact:           "traffic shifted to alternate devices; web and cache tiers exhausted CPU and failed 2.4% of requests",
		ServicesAffected: []string{"web", "cache"},
		Reviewed:         true,
	})

	// SEV1 (§4.2): data center outage from incorrect load balancing.
	// January 2012.
	mustAdd(store, dcnr.SEVReport{
		Severity:         dcnr.Sev1,
		Device:           "core003.dc2.regiona",
		RootCauses:       []dcnr.RootCause{dcnr.Configuration, dcnr.Maintenance},
		Year:             2012,
		Start:            hoursSinceEpoch(2012, 25),
		Duration:         4,
		Resolution:       4,
		Title:            "data center outage from incorrect load balancing",
		Impact:           "software upgrade routed all traffic onto one path; port overload partitioned the data center",
		ServicesAffected: []string{"web", "cache", "storage", "batch", "realtime"},
		Reviewed:         true,
	})

	// The dataset is a plain JSON artifact: write, then reload.
	var buf bytes.Buffer
	if err := store.WriteJSON(&buf); err != nil {
		log.Fatal(err)
	}
	reloaded := dcnr.NewSEVStore()
	if err := reloaded.ReadJSON(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored and reloaded %d SEV reports\n\n", reloaded.Len())

	// Queries: the §4.3.1 classifications.
	fmt.Println("by severity:")
	for _, s := range dcnr.Severities {
		for _, r := range reloaded.Query().Severity(s).Reports() {
			dt, _ := r.DeviceType()
			fmt.Printf("  %s  %-4v (%v design)  %q\n", s, dt, r.Design(), r.Title)
		}
	}

	fmt.Println("\nmulti-cause counting (§5.1): the SEV1 counts toward both categories")
	for _, c := range []dcnr.RootCause{dcnr.Configuration, dcnr.Maintenance} {
		fmt.Printf("  %-14s %d report(s)\n", c, reloaded.Query().RootCause(c).Count())
	}

	humanInduced := reloaded.Query().RootCause(dcnr.Configuration).Count() +
		reloaded.Query().RootCause(dcnr.Bug).Count()
	fmt.Printf("\nhuman-induced issues: %d of %d reports\n", humanInduced, reloaded.Len())
}

func mustAdd(store *dcnr.SEVStore, r dcnr.SEVReport) {
	if _, err := store.Add(r); err != nil {
		log.Fatal(err)
	}
}

// hoursSinceEpoch converts (year, day-of-year) to simulation hours.
func hoursSinceEpoch(year, day int) float64 {
	return float64(year-dcnr.FirstYear)*365*24 + float64(day)*24
}
