// Fabric vs cluster: the §5.5 design-comparison study. Simulates the study
// period and tracks how the two intra-data-center network designs diverge
// year by year — incident counts, per-device rates, and MTBI — around the
// 2015 fabric deployment inflection.
package main

import (
	"fmt"
	"log"

	"dcnr"
)

func main() {
	res, err := dcnr.SimulateIntraDC(dcnr.IntraConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	a := res.Analysis

	fmt.Println("year  cluster-pop  fabric-pop  cluster-SEVs  fabric-SEVs  cluster-rate  fabric-rate")
	di := a.DesignIncidents(2017)
	dr := a.DesignRate()
	baseline := res.Store.Query().Year(2017).Count()
	for year := dcnr.FirstYear; year <= dcnr.LastYear; year++ {
		cPop := res.Fleet.DesignPopulation(year, dcnr.DesignCluster)
		fPop := res.Fleet.DesignPopulation(year, dcnr.DesignFabric)
		cSEV := int(di[year][dcnr.DesignCluster] * float64(baseline))
		fSEV := int(di[year][dcnr.DesignFabric] * float64(baseline))
		marker := ""
		if year == dcnr.FabricDeployYear {
			marker = "  <- fabric deployed"
		}
		fmt.Printf("%d  %11d  %10d  %12d  %11d  %12.4f  %11.4f%s\n",
			year, cPop, fPop, cSEV, fSEV,
			dr[year][dcnr.DesignCluster], dr[year][dcnr.DesignFabric], marker)
	}

	fmt.Println()
	fab2017 := a.DesignMTBI(2017, dcnr.DesignFabric)
	clu2017 := a.DesignMTBI(2017, dcnr.DesignCluster)
	fmt.Printf("2017 MTBI: fabric %.0f vs cluster %.0f device-hours — fabric switches fail %.1fx less often\n",
		fab2017, clu2017, fab2017/clu2017)
	fmt.Printf("2017 incidents: fabric is %.0f%% of cluster (paper: ~50%%)\n",
		100*di[2017][dcnr.DesignFabric]/di[2017][dcnr.DesignCluster])

	// Why: fabric devices are commodity hardware under software-managed
	// automated remediation (§5.2).
	fmt.Println("\nremediation support by device type:")
	for _, dt := range dcnr.IntraDCTypes {
		fmt.Printf("  %-5s design=%-8v commodity=%-5v automated-repair=%v\n",
			dt, dt.Design(), dt.Commodity(), dcnr.RemediationSupported(dt))
	}
}
