// Disaster drill: §5.7's reliability exercises. Builds a two-data-center
// topology, generates the production demand matrix, and runs the standard
// drill suite — single-device outages for every type plus a full
// data-center disconnection — grading each outcome against the paper's
// fault-tolerance expectations.
package main

import (
	"fmt"
	"log"

	"dcnr"
)

func main() {
	net, err := dcnr.ReferenceTopology()
	if err != nil {
		log.Fatal(err)
	}
	demands, err := dcnr.GenerateTraffic(net, dcnr.TrafficConfig{}, 2018)
	if err != nil {
		log.Fatal(err)
	}
	runner, err := dcnr.NewDrillRunner(net, demands, dcnr.DefaultDrillCriteria())
	if err != nil {
		log.Fatal(err)
	}
	scenarios, err := dcnr.StandardDrills(net)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("running %d drills against %d devices, %d demands\n\n",
		len(scenarios), net.NumDevices(), len(demands))
	passes := 0
	for _, sc := range scenarios {
		res, err := runner.Run(sc)
		if err != nil {
			log.Fatal(err)
		}
		status := "PASS"
		if res.Pass {
			passes++
		} else {
			status = "FAIL"
		}
		fmt.Printf("%-16s %s  stranded=%-3d peak=%.0f%% lost=%.1f%%\n",
			sc.Name, status, res.StrandedRacks,
			100*res.Load.MaxUtilization, 100*res.Load.LostFraction())
		for _, reason := range res.Failures {
			fmt.Printf("                   └─ %s\n", reason)
		}
	}
	fmt.Printf("\n%d/%d drills passed\n", passes, len(scenarios))
	fmt.Println("\nThe data-center disconnect drills are *meant* to fail against")
	fmt.Println("single-region criteria: they quantify exactly what cross-region")
	fmt.Println("replication and traffic engineering must absorb (§5.7, §6.4).")

	// The §2 argument in one pair of numbers: the same device count,
	// wildly different service impact depending on where redundancy sits.
	assessor := dcnr.NewImpactAssessor(net)
	csw := net.DevicesOfType(dcnr.CSW)[0].Name
	masked, err := assessor.Assess(csw, dcnr.ScopeDevice)
	if err != nil {
		log.Fatal(err)
	}
	cascade, err := assessor.Assess(csw, dcnr.ScopeUnit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame switch, two fates: isolated failure → %v (%s);\n  whole-group cascade → %v (%s)\n",
		masked.Severity, masked.Impact, cascade.Severity, cascade.Impact)
}
