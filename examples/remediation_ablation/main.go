// Remediation ablation: §5.6's counterfactual. Runs the 2017 fleet twice —
// with the automated repair engine on and off — and shows how incident
// rates for remediation-supported device types explode without it, while
// unsupported types are unchanged.
package main

import (
	"fmt"
	"log"

	"dcnr"
)

func main() {
	on, err := dcnr.SimulateIntraDC(dcnr.IntraConfig{
		Seed: 11, FromYear: 2017, ToYear: 2017,
	})
	if err != nil {
		log.Fatal(err)
	}
	off, err := dcnr.SimulateIntraDC(dcnr.IntraConfig{
		Seed: 11, FromYear: 2017, ToYear: 2017, DisableRemediation: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("2017 fleet, identical fault stream, automated remediation on vs off")
	fmt.Println()
	fmt.Println("type   supported  SEVs(on)  SEVs(off)  rate(on)   rate(off)")
	for _, dt := range dcnr.IntraDCTypes {
		pop := on.Fleet.Population(2017, dt)
		if pop == 0 {
			continue
		}
		a := on.Store.Query().DeviceType(dt).Count()
		b := off.Store.Query().DeviceType(dt).Count()
		fmt.Printf("%-5s  %-9v  %8d  %9d  %9.5f  %9.5f\n",
			dt, dcnr.RemediationSupported(dt), a, b,
			float64(a)/float64(pop), float64(b)/float64(pop))
	}

	fmt.Println()
	fmt.Printf("total SEVs: %d with remediation, %d without (%.0fx)\n",
		on.Incidents, off.Incidents, float64(off.Incidents)/float64(on.Incidents))

	// Table 1 context: what the engine actually did in the "on" run.
	fmt.Println("\nautomated repair activity (on run):")
	for _, dt := range []dcnr.DeviceType{dcnr.Core, dcnr.FSW, dcnr.RSW} {
		s := on.RemediationStats[dt]
		fmt.Printf("  %-5s %6d issues, %.2f%% repaired, avg priority %.2f, avg wait %.1f h, avg repair %.1f s\n",
			dt, s.Issues, 100*s.RepairRatio(), s.AvgPriority(), s.AvgWaitHours(), s.AvgRepairSeconds())
	}
}
