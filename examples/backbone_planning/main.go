// Backbone planning: the §6.1 capacity-planning workflow. Simulates the
// backbone, models edge MTBF/MTTR as exponential functions of the
// percentile (the paper's models), and computes the conditional-risk
// percentile Facebook plans capacity against (99.99th).
package main

import (
	"fmt"
	"log"
	"sort"

	"dcnr"
)

func main() {
	cfg := dcnr.DefaultBackboneConfig()
	cfg.Seed = 20161001
	res, err := dcnr.SimulateBackbone(cfg)
	if err != nil {
		log.Fatal(err)
	}
	a := res.Analysis
	fmt.Printf("18-month backbone simulation: %d link repair tickets across %d edges\n\n",
		a.LinkFailureCount(), len(res.Topology.Edges))

	// Fit the paper's reliability models to the measured curves.
	mtbfFit, err := dcnr.FitCurve(a.EdgeMTBF())
	if err != nil {
		log.Fatal(err)
	}
	mttrFit, err := dcnr.FitCurve(a.EdgeMTTR())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edge MTBF model: %.2f * e^(%.4f p)  R2=%.3f   (paper: 462.88 * e^(2.3408 p), R2=0.94)\n",
		mtbfFit.A, mtbfFit.B, mtbfFit.R2)
	fmt.Printf("edge MTTR model: %.2f * e^(%.4f p)  R2=%.3f   (paper: 1.513 * e^(4.256 p),  R2=0.87)\n\n",
		mttrFit.A, mttrFit.B, mttrFit.R2)

	// Use the models the way the paper describes: estimate how reliable
	// the p-th percentile edge is.
	for _, p := range []float64{0.25, 0.50, 0.90} {
		fmt.Printf("p=%.2f edge: fails every ~%.0f h, recovers in ~%.1f h\n",
			p, mtbfFit.Eval(p), mttrFit.Eval(p))
	}

	// Conditional risk: probability an edge is unavailable at a random
	// instant. Capacity is planned against the 99.99th percentile.
	plan, err := a.PlanRisk(99.99)
	if err != nil {
		log.Fatal(err)
	}
	median, _ := a.PlanRisk(50)
	fmt.Printf("\nconditional risk: median %.5f, planning percentile (99.99th) %.5f\n", median, plan)
	fmt.Printf("→ provision spare capacity to absorb %.2f%% unavailability on the worst edges\n\n", 100*plan)

	// The riskiest edges, for the capacity team's attention.
	risk := a.ConditionalRisk()
	type edgeRisk struct {
		name string
		r    float64
	}
	var ranked []edgeRisk
	for name, r := range risk {
		ranked = append(ranked, edgeRisk{name, r})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].r > ranked[j].r })
	fmt.Println("highest-risk edges:")
	for _, er := range ranked[:5] {
		fmt.Printf("  %s  unavailable %.3f%% of the time\n", er.name, 100*er.r)
	}

	// The same arithmetic sizes intra-DC redundancy groups: §5.2's
	// "eight Cores ... tolerate one unavailable Core".
	unavail, err := dcnr.DeviceUnavailability(39495, 30) // Core MTBI and repair time
	if err != nil {
		log.Fatal(err)
	}
	corePlan, err := dcnr.ProvisionGroup(7, unavail, dcnr.FourNines)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncore provisioning: need 7, provision %d (%d spare) → residual risk %.2e (target %.0e)\n",
		corePlan.Provision, corePlan.Spares(), corePlan.Risk, dcnr.FourNines)
}
