// Quickstart: simulate the seven-year intra-data-center study and print the
// headline numbers — the 30-second tour of the dcnr API.
package main

import (
	"fmt"
	"log"

	"dcnr"
)

func main() {
	// One call simulates fleet growth, fault injection, automated
	// remediation, and service impact for 2011–2017.
	res, err := dcnr.SimulateIntraDC(dcnr.IntraConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d device faults; automation masked all but %d SEVs\n\n",
		res.Faults, res.Incidents)

	// Table 2: what actually causes service-level incidents?
	fmt.Println("root causes (Table 2):")
	dist := res.Analysis.RootCauseDistribution()
	for _, c := range dcnr.RootCauses {
		fmt.Printf("  %-18s %5.1f%%\n", c, 100*dist[c])
	}

	// §5.4: who causes the 2017 incidents?
	fmt.Println("\n2017 incident share by device type (Figure 8):")
	fr := res.Analysis.IncidentFractions()[2017]
	for _, dt := range dcnr.IntraDCTypes {
		fmt.Printf("  %-5s %5.1f%%\n", dt, 100*fr[dt])
	}

	// §5.6: fabric vs cluster mean time between incidents.
	fab := res.Analysis.DesignMTBI(2017, dcnr.DesignFabric)
	clu := res.Analysis.DesignMTBI(2017, dcnr.DesignCluster)
	fmt.Printf("\n2017 MTBI: fabric %.0f device-hours, cluster %.0f (%.1fx more reliable)\n",
		fab, clu, fab/clu)
}
