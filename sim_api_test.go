package dcnr

// Tests for the unified simulation API surface: config validation and
// normalization, and the equivalence contract between the deprecated flat
// observability fields and the embedded Observe struct.

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestIntraConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     IntraConfig
		wantErr string
	}{
		{"negative scale", IntraConfig{Scale: -1}, "Scale must be >= 0"},
		{"unordered years", IntraConfig{FromYear: 2015, ToYear: 2012}, "not ordered"},
		{"before study", IntraConfig{FromYear: 2005, ToYear: 2012}, "outside study period"},
		{"after study", IntraConfig{FromYear: 2012, ToYear: 2025}, "outside study period"},
		{"elevation factor too low", IntraConfig{ElevateYear: 2014, ElevateFactor: 1}, "ElevateFactor must be > 1"},
		{"elevation factor without year", IntraConfig{ElevateFactor: 5, FromYear: 2014, ToYear: 2015}, "ElevateYear"},
		{"elevation outside range", IntraConfig{ElevateYear: 2011, ElevateFactor: 5, FromYear: 2014, ToYear: 2015}, "outside simulated range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestIntraConfigValidateNormalizes(t *testing.T) {
	cfg := IntraConfig{}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if cfg.Scale != 1 {
		t.Errorf("Scale = %d, want 1", cfg.Scale)
	}
	if cfg.FromYear != FirstYear || cfg.ToYear != LastYear {
		t.Errorf("years [%d, %d], want the study period [%d, %d]",
			cfg.FromYear, cfg.ToYear, FirstYear, LastYear)
	}
	// Idempotent: a second pass changes nothing.
	before := cfg
	if err := cfg.Validate(); err != nil {
		t.Fatalf("second Validate: %v", err)
	}
	if cfg != before {
		t.Errorf("Validate is not idempotent: %+v vs %+v", cfg, before)
	}
	// The entry point rejects what Validate rejects, before simulating.
	if _, err := SimulateIntraDC(IntraConfig{Scale: -3}); err == nil {
		t.Errorf("SimulateIntraDC accepted a negative scale")
	}
}

func TestIntraConfigValidateFoldsFlatFields(t *testing.T) {
	reg := NewMetricsRegistry()
	tr := NewTracer()
	cfg := IntraConfig{Metrics: reg, Trace: tr}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if cfg.Observe.Metrics != reg || cfg.Observe.Trace != tr {
		t.Errorf("flat fields did not fold into Observe")
	}
	if cfg.Metrics != nil || cfg.Trace != nil || cfg.Health != nil || cfg.Logger != nil {
		t.Errorf("flat fields not cleared after folding")
	}

	// An explicitly set Observe field wins over the flat one.
	reg2 := NewMetricsRegistry()
	cfg2 := IntraConfig{Observe: Observe{Metrics: reg2}, Metrics: reg}
	if err := cfg2.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if cfg2.Observe.Metrics != reg2 {
		t.Errorf("flat Metrics overrode an explicit Observe.Metrics")
	}
}

func TestBackboneConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*BackboneConfig)
		wantErr string
	}{
		{"too few edges", func(c *BackboneConfig) { c.Edges = 2 }, "edges"},
		{"min links", func(c *BackboneConfig) { c.MinLinks = 1 }, "MinLinks"},
		{"max below min", func(c *BackboneConfig) { c.MinLinks = 8; c.MaxLinks = 4 }, "MaxLinks"},
		{"negative months", func(c *BackboneConfig) { c.Months = -1 }, "Months"},
		{"negative vendors", func(c *BackboneConfig) { c.Vendors = -1 }, "Vendors"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultBackboneConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
			if _, simErr := SimulateBackbone(cfg); simErr == nil {
				t.Errorf("SimulateBackbone accepted the invalid config")
			}
		})
	}

	// The zero config normalizes to the study-sized defaults.
	var cfg BackboneConfig
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate(zero): %v", err)
	}
	def := DefaultBackboneConfig()
	if cfg.Edges != def.Edges || cfg.Months != def.Months || cfg.Vendors != def.Vendors {
		t.Errorf("zero config normalized to %+v, want defaults %+v", cfg, def)
	}
}

// scrubWallClock zeroes the wall-clock-dependent parts of a snapshot —
// the des_event_wall_seconds histogram's sum and bucket distribution vary
// between identical-seed runs; only its count is deterministic.
func scrubWallClock(s *MetricsSnapshot) {
	for name, h := range s.Histograms {
		if name != "des_event_wall_seconds" {
			continue
		}
		h.Sum = 0
		h.Counts = nil
		s.Histograms[name] = h
	}
}

func TestObserveEquivalentToFlatFields(t *testing.T) {
	runWith := func(build func(reg *MetricsRegistry) IntraConfig) MetricsSnapshot {
		t.Helper()
		reg := NewMetricsRegistry()
		cfg := build(reg)
		cfg.Seed = 11
		cfg.FromYear, cfg.ToYear = 2014, 2014
		if _, err := SimulateIntraDC(cfg); err != nil {
			t.Fatal(err)
		}
		snap := reg.Snapshot()
		scrubWallClock(&snap)
		return snap
	}

	flat := runWith(func(reg *MetricsRegistry) IntraConfig {
		return IntraConfig{Metrics: reg}
	})
	embedded := runWith(func(reg *MetricsRegistry) IntraConfig {
		return IntraConfig{Observe: Observe{Metrics: reg}}
	})
	if !reflect.DeepEqual(flat, embedded) {
		t.Errorf("deprecated flat Metrics and Observe.Metrics produced different runs:\nflat:     %+v\nembedded: %+v",
			flat, embedded)
	}
	if flat.Counters["des_events_fired_total"] == 0 {
		t.Fatalf("equivalence test ran an uninstrumented simulation")
	}
}

func TestSweepFacade(t *testing.T) {
	var jsonl bytes.Buffer
	res, err := Sweep(SweepConfig{
		Seeds:     []uint64{3, 4},
		Workers:   2,
		Scenarios: []SweepScenario{{Name: "baseline", FromYear: 2014, ToYear: 2014}},
		Results:   &jsonl,
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(res.Runs))
	}
	if got := len(res.Report.Groups); got != 1 {
		t.Fatalf("got %d groups, want 1", got)
	}
	if res.Report.Groups[0].Incidents.N != 2 {
		t.Errorf("incidents band N = %d, want 2", res.Report.Groups[0].Incidents.N)
	}
	if lines := strings.Count(jsonl.String(), "\n"); lines != 2 {
		t.Errorf("JSONL stream has %d lines, want 2", lines)
	}
	var rep bytes.Buffer
	if err := res.WriteReport(&rep); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	if !strings.Contains(rep.String(), "\"scenario\": \"baseline\"") {
		t.Errorf("report JSON missing the scenario group")
	}
	if err := DefaultSweepScenariosValid(); err != nil {
		t.Errorf("default scenarios invalid: %v", err)
	}
}

// DefaultSweepScenariosValid checks the standard campaign passes sweep
// validation.
func DefaultSweepScenariosValid() error {
	cfg := SweepConfig{Seeds: []uint64{1}, Scenarios: DefaultSweepScenarios()}
	return cfg.Validate()
}
