package dcnr

// End-to-end shape assertions through the public API: the headline claims
// of the paper that DESIGN.md commits to reproducing, checked on datasets
// generated and analyzed exclusively via the dcnr facade. Finer-grained
// shape checks live next to the analysis code in internal/core.

import (
	"math"
	"sync"
	"testing"

	"dcnr/internal/service"
	"dcnr/internal/topology"
)

var (
	shapeOnce  sync.Once
	shapeIntra *IntraResult
	shapeInter *BackboneResult
	shapeErr   error
)

func shapeData(t *testing.T) (*IntraResult, *BackboneResult) {
	t.Helper()
	shapeOnce.Do(func() {
		shapeIntra, shapeErr = SimulateIntraDC(IntraConfig{Seed: 20181031})
		if shapeErr != nil {
			return
		}
		cfg := DefaultBackboneConfig()
		cfg.Seed = 20161001
		shapeInter, shapeErr = SimulateBackbone(cfg)
	})
	if shapeErr != nil {
		t.Fatal(shapeErr)
	}
	return shapeIntra, shapeInter
}

func TestShapeHeadlines2017(t *testing.T) {
	intra, _ := shapeData(t)
	fr := intra.Analysis.IncidentFractions()[2017]
	// §5.4: Core ≈ 34% and RSW ≈ 28% of 2017 service-level incidents.
	if math.Abs(fr[Core]-0.34) > 0.08 {
		t.Errorf("Core 2017 share = %.3f, want ~0.34", fr[Core])
	}
	if math.Abs(fr[RSW]-0.28) > 0.08 {
		t.Errorf("RSW 2017 share = %.3f, want ~0.28", fr[RSW])
	}
}

func TestShapeFabricHalvesIncidents(t *testing.T) {
	intra, _ := shapeData(t)
	di := intra.Analysis.DesignIncidents(2017)
	ratio := di[2017][DesignFabric] / di[2017][DesignCluster]
	if ratio < 0.3 || ratio > 0.75 {
		t.Errorf("2017 fabric:cluster incidents = %.2f, want ~0.5 (§5.5)", ratio)
	}
	mtbiRatio := intra.Analysis.DesignMTBI(2017, DesignFabric) /
		intra.Analysis.DesignMTBI(2017, DesignCluster)
	if mtbiRatio < 2.0 || mtbiRatio > 5.0 {
		t.Errorf("fabric:cluster MTBI = %.2f, want ~3.2 (§5.6)", mtbiRatio)
	}
}

func TestShapeBackboneModels(t *testing.T) {
	_, inter := shapeData(t)
	mtbf, err := FitCurve(inter.Analysis.EdgeMTBF())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 462.88·e^(2.3408p), R²=0.94.
	if mtbf.B < 1.6 || mtbf.B > 3.2 {
		t.Errorf("edge MTBF B = %.2f, want ~2.34", mtbf.B)
	}
	if mtbf.R2 < 0.8 {
		t.Errorf("edge MTBF R² = %.2f", mtbf.R2)
	}
	mttr, err := FitCurve(inter.Analysis.EdgeMTTR())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 1.513·e^(4.256p), R²=0.87.
	if mttr.B < 2.5 || mttr.B > 6.0 {
		t.Errorf("edge MTTR B = %.2f, want ~4.26", mttr.B)
	}
}

func TestShapeAnalysisReadsDataNotCalibration(t *testing.T) {
	// The DESIGN.md seam check: corrupt the generated dataset and confirm
	// the analysis result moves with the data. If the analysis secretly
	// echoed the generator's calibration tables, deleting every 2017 Core
	// SEV would change nothing.
	intra, _ := shapeData(t)
	pruned := NewSEVStore()
	for _, r := range intra.Store.All() {
		dt, err := r.DeviceType()
		if err != nil {
			t.Fatal(err)
		}
		if r.Year == 2017 && dt == Core {
			continue
		}
		r.ID = 0 // let the store reassign
		if _, err := pruned.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	a := NewIntraAnalysis(pruned, intra.Fleet)
	if got := a.IncidentFractions()[2017][Core]; got != 0 {
		t.Errorf("Core share after pruning = %.3f, want 0 — analysis not data-driven", got)
	}
	if got := a.MTBI(2017)[Core]; got != 0 {
		t.Errorf("Core MTBI after pruning = %v, want omitted", got)
	}
	// Other types' fractions rescale to the smaller total.
	fr := a.IncidentFractions()[2017]
	sum := 0.0
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("pruned fractions sum to %v", sum)
	}
}

func TestShapeSeverityMixDominatedBySev3(t *testing.T) {
	intra, _ := shapeData(t)
	br := intra.Analysis.SeverityBreakdown(2017)
	if br[Sev3].Share < br[Sev2].Share || br[Sev2].Share < br[Sev1].Share {
		t.Errorf("severity ordering violated: SEV3 %.2f SEV2 %.2f SEV1 %.2f",
			br[Sev3].Share, br[Sev2].Share, br[Sev1].Share)
	}
}

func TestShapeContinentOrdering(t *testing.T) {
	_, inter := shapeData(t)
	rows := inter.Analysis.ByContinent()
	if rows[Africa].MTBF <= rows[SouthAmerica].MTBF {
		t.Errorf("Africa MTBF %.0f not above South America %.0f (Table 4)",
			rows[Africa].MTBF, rows[SouthAmerica].MTBF)
	}
	if rows[Australia].MTTR >= rows[Africa].MTTR {
		t.Errorf("Australia MTTR %.1f not below Africa %.1f (Table 4)",
			rows[Australia].MTTR, rows[Africa].MTTR)
	}
}

// newBenchTopology and assessAllScopes back BenchmarkAblationRedundancy.

func newBenchTopology() (*topology.Network, error) {
	n := topology.NewNetwork()
	c1, err := topology.BuildCluster(n, topology.ClusterSpec{DC: "dc1", Region: "ra", Clusters: 4, RacksPerCluster: 16})
	if err != nil {
		return nil, err
	}
	c2, err := topology.BuildFabric(n, topology.FabricSpec{DC: "dc2", Region: "rb", Pods: 4, RacksPerPod: 16})
	if err != nil {
		return nil, err
	}
	if err := topology.InterconnectCores(n, c1, c2); err != nil {
		return nil, err
	}
	return n, nil
}

func assessAllScopes(net *topology.Network) error {
	assessor := service.NewAssessor(net)
	for _, dt := range IntraDCTypes {
		devices := net.DevicesOfType(dt)
		if len(devices) == 0 {
			continue
		}
		for _, scope := range []service.Scope{service.ScopeDevice, service.ScopeGroup, service.ScopeUnit} {
			if _, err := assessor.Assess(devices[0].Name, scope); err != nil {
				return err
			}
		}
	}
	return nil
}

func TestAssessAllScopes(t *testing.T) {
	net, err := newBenchTopology()
	if err != nil {
		t.Fatal(err)
	}
	if err := assessAllScopes(net); err != nil {
		t.Fatal(err)
	}
}

// TestClaimsRobustAcrossSeeds re-grades the headline claims on several
// fresh seeds: the reproduction must not hinge on one lucky draw. A small
// number of single-claim misses is tolerated (Poisson noise on ~190-event
// years; R² seed variance), but the overwhelming majority must hold.
func TestClaimsRobustAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	totalClaims, totalPass := 0, 0
	for seed := uint64(1); seed <= 5; seed++ {
		intra, err := SimulateIntraDC(IntraConfig{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultBackboneConfig()
		cfg.Seed = seed
		inter, err := SimulateBackbone(cfg)
		if err != nil {
			t.Fatal(err)
		}
		results := intra.Analysis.VerifyIntraClaims()
		results = append(results, inter.Analysis.VerifyInterClaims()...)
		for _, r := range results {
			totalClaims++
			if r.Pass {
				totalPass++
			} else {
				t.Logf("seed %d: claim %s missed (%s)", seed, r.ID, r.Detail)
			}
		}
	}
	if rate := float64(totalPass) / float64(totalClaims); rate < 0.9 {
		t.Errorf("claims pass rate across seeds = %.2f (%d/%d), want ≥ 0.90",
			rate, totalPass, totalClaims)
	}
}

// TestPaperScaleDataset checks the scale knob: scale 5 produces the
// "thousands of incidents" volume of the paper without moving per-device
// rates.
func TestPaperScaleDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-5 simulation")
	}
	res, err := SimulateIntraDC(IntraConfig{Seed: 2, Scale: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.Len() < 2500 {
		t.Errorf("scale-5 dataset has %d SEVs, want thousands", res.Store.Len())
	}
	// Per-device incident rates are scale-invariant.
	unit, err := SimulateIntraDC(IntraConfig{Seed: 2, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	r5 := res.Analysis.IncidentRate(2017)[Core]
	r1 := unit.Analysis.IncidentRate(2017)[Core]
	if r5 <= 0 || r1 <= 0 {
		t.Fatal("missing rates")
	}
	if ratio := r5 / r1; ratio < 0.6 || ratio > 1.6 {
		t.Errorf("Core rate moved with scale: %.3f vs %.3f", r5, r1)
	}
	// And the claims still hold at scale.
	failed := 0
	for _, r := range res.Analysis.VerifyIntraClaims() {
		if !r.Pass {
			failed++
			t.Logf("scale-5 claim missed: %s (%s)", r.ID, r.Detail)
		}
	}
	if failed > 2 {
		t.Errorf("%d claims failed at scale 5", failed)
	}
}
