package dcnr

// Cross-subsystem integration tests: the live monitoring→remediation→SEV
// path over real UDP sockets, and the vendor→collector ticket path over
// real TCP sockets, each ending in the analysis engine.

import (
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"context"

	"dcnr/internal/des"
	"dcnr/internal/monitor"
	"dcnr/internal/notify"
	"dcnr/internal/remediation"
	"dcnr/internal/service"
	"dcnr/internal/simrand"
	"dcnr/internal/tickets"
)

// TestMonitorToSEVPipeline drives the intra-DC ingest path end to end: a
// device stops sending UDP heartbeats, the liveness monitor raises a
// DevicePingFailure, the remediation engine escalates it (forced), the
// impact assessor grades it, and a SEV lands in the store.
func TestMonitorToSEVPipeline(t *testing.T) {
	netw, err := ReferenceTopology()
	if err != nil {
		t.Fatal(err)
	}
	assessor := service.NewAssessor(netw)
	store := NewSEVStore()
	sim := &des.Simulator{}
	engine := remediation.NewEngine(sim, simrand.New(1))
	engine.SetEnabled(false) // force escalation so one fault = one SEV

	var mu sync.Mutex
	var faults []string
	mon, err := monitor.New(50*time.Millisecond, 2, func(device string) {
		mu.Lock()
		faults = append(faults, device)
		mu.Unlock()
		dt, err := ParseDeviceName(device)
		if err != nil {
			t.Errorf("monitor reported unparseable device %q", device)
			return
		}
		engine.Submit(dt, remediation.DevicePingFailure, func(o remediation.Outcome) {
			if o.Repaired {
				return
			}
			as, err := assessor.Assess(device, service.ScopeDevice)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := store.Add(SEVReport{
				Severity:   as.Severity,
				Device:     device,
				RootCauses: []RootCause{Hardware},
				Start:      sim.Now(),
				Duration:   1,
				Resolution: 2,
				Year:       FirstYear,
				Title:      "device ping failure detected by liveness monitor",
				Impact:     as.Impact,
			}); err != nil {
				t.Error(err)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}

	// Heartbeats arrive over a real UDP socket.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go mon.ServePacket(pc)
	defer pc.Close()

	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	healthy := netw.DevicesOfType(CSW)[0].Name
	failing := netw.DevicesOfType(CSW)[1].Name
	for _, d := range []string{healthy, failing} {
		if err := monitor.SendHeartbeat(conn, d); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for mon.Tracked() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if mon.Tracked() != 2 {
		t.Fatalf("monitor tracked %d devices", mon.Tracked())
	}

	// The healthy device keeps beating; the failing one goes silent.
	for i := 0; i < 4; i++ {
		time.Sleep(40 * time.Millisecond)
		if err := monitor.SendHeartbeat(conn, healthy); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(30 * time.Millisecond)
	down := mon.Check(time.Now())
	if len(down) != 1 || down[0] != failing {
		t.Fatalf("down = %v, want [%s]", down, failing)
	}
	sim.Run(math.Inf(1)) // deliver the engine's escalation callback

	mu.Lock()
	defer mu.Unlock()
	if len(faults) != 1 {
		t.Fatalf("faults = %v", faults)
	}
	if store.Len() != 1 {
		t.Fatalf("SEVs = %d, want 1", store.Len())
	}
	rep := store.All()[0]
	if rep.Device != failing || rep.Severity != Sev3 {
		t.Errorf("SEV = %+v", rep)
	}
}

// TestTicketWirePipeline drives the inter-DC ingest path end to end over
// TCP: simulate the backbone, deliver every notice through the wire
// protocol, and confirm the analysis over what arrived matches the
// analysis over the generator's own records.
func TestTicketWirePipeline(t *testing.T) {
	cfg := DefaultBackboneConfig()
	cfg.Edges = 30
	cfg.Seed = 77
	res, err := SimulateBackbone(cfg)
	if err != nil {
		t.Fatal(err)
	}

	coll := NewTicketCollector()
	coll.WindowHours = cfg.WindowHours()
	server := notify.NewServer(coll.IngestText)
	addr, err := server.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	messages := make([]string, len(res.Notices))
	for i, n := range res.Notices {
		messages[i] = n.Format()
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := notify.SendAll(ctx, addr, messages); err != nil {
		t.Fatal(err)
	}
	if server.Received() != len(messages) {
		t.Fatalf("received %d of %d messages", server.Received(), len(messages))
	}

	wired, err := NewInterAnalysis(res.Topology, coll.Downtimes(), cfg.WindowHours())
	if err != nil {
		t.Fatal(err)
	}
	// The wire path must be lossless: identical vendor MTTRs either way.
	direct := res.Analysis.VendorMTTR()
	overWire := wired.VendorMTTR()
	if len(direct) != len(overWire) {
		t.Fatalf("vendor counts differ: %d vs %d", len(direct), len(overWire))
	}
	for vendor, want := range direct {
		if got := overWire[vendor]; math.Abs(got-want) > 1e-3 {
			t.Errorf("%s MTTR %v over wire, %v direct", vendor, got, want)
		}
	}
}

// TestTicketArchiveRoundTrip writes the notice archive the way dcsim does
// and replays it into a collector.
func TestTicketArchiveRoundTrip(t *testing.T) {
	cfg := DefaultBackboneConfig()
	cfg.Edges = 12
	cfg.Seed = 5
	res, err := SimulateBackbone(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coll := NewTicketCollector()
	coll.WindowHours = cfg.WindowHours()
	for _, n := range res.Notices {
		parsed, err := tickets.Parse(n.Format())
		if err != nil {
			t.Fatal(err)
		}
		if err := coll.Ingest(parsed); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := len(coll.Downtimes()), len(res.Downtimes); got != want {
		t.Errorf("archive round trip: %d intervals, want %d", got, want)
	}
}
