package dcnr

// This file re-exports the library's domain types and constants so that
// downstream code can name them without reaching into internal packages.
// All aliases are true type aliases: values flow freely between the facade
// and the internal implementations.

import (
	"io"
	"log/slog"

	"dcnr/internal/backbone"
	"dcnr/internal/core"
	"dcnr/internal/faults"
	"dcnr/internal/fleet"
	"dcnr/internal/notify"
	"dcnr/internal/obs"
	"dcnr/internal/obs/health"
	"dcnr/internal/obs/journal"
	"dcnr/internal/obs/timeline"
	"dcnr/internal/observe"
	"dcnr/internal/remediation"
	"dcnr/internal/serve"
	"dcnr/internal/sev"
	"dcnr/internal/sim"
	"dcnr/internal/stats"
	"dcnr/internal/sweep"
	"dcnr/internal/tickets"
	"dcnr/internal/topology"
)

// Observe bundles the observability wiring shared by every simulation
// entry point: Metrics, Trace, Health, and Logger. It is embedded by
// IntraConfig, BackboneConfig, and SweepConfig; set it once and pass the
// same struct to any plane:
//
//	o := dcnr.Observe{Metrics: dcnr.NewMetricsRegistry()}
//	res, err := dcnr.SimulateIntraDC(dcnr.IntraConfig{Observe: o})
type Observe = observe.Observe

// IntraConfig parameterizes the intra-data-center simulation. The
// embedded Observe struct carries the observability wiring; the flat
// Metrics/Trace/Health/Logger fields remain as deprecated passthroughs.
type IntraConfig = sim.IntraConfig

// IntraResult carries the generated dataset and its analysis handles.
type IntraResult = sim.IntraResult

// BackboneResult carries the generated backbone dataset and its analysis.
type BackboneResult = sim.BackboneResult

// SweepConfig parameterizes a scenario-sweep campaign: the seed × scale ×
// scenario grid, the worker-pool bound, and the JSONL results stream.
type SweepConfig = sweep.Config

// SweepScenario is one named variant of the simulation inside a sweep —
// the baseline, the no-remediation ablation, a burn drill, or a year
// slice.
type SweepScenario = sweep.Scenario

// SweepRunStats is the per-run record a sweep reduces each simulation to:
// one JSON line of the Results stream.
type SweepRunStats = sweep.RunStats

// SweepBand is the cross-run distribution of one statistic: mean with an
// empirical p5–p95 band.
type SweepBand = sweep.Band

// SweepGroup aggregates every run sharing a (scenario, scale) cell.
type SweepGroup = sweep.Group

// SweepReport is the aggregated campaign output, deterministic for a
// given grid; write it with SweepResult.WriteReport.
type SweepReport = sweep.Report

// SweepResult is a completed campaign: report, per-run records, and the
// merged metrics of every instrumented run.
type SweepResult = sweep.Result

// DefaultSweepScenarios returns the standard campaign scenarios: baseline,
// the §5.6 no-remediation ablation, and a 5× burn drill in 2014.
func DefaultSweepScenarios() []SweepScenario { return sweep.DefaultScenarios() }

// Study period bounds.
const (
	// FirstYear is the first year of the intra-DC study period.
	FirstYear = fleet.FirstYear
	// LastYear is the final year of the intra-DC study period.
	LastYear = fleet.LastYear
	// FabricDeployYear is when the fabric design enters the fleet.
	FabricDeployYear = fleet.FabricDeployYear
	// AutomatedRepairYear is when automated remediation was enabled.
	AutomatedRepairYear = fleet.AutomatedRepairYear
)

// DeviceType identifies a network device type (RSW, CSW, …, Core).
type DeviceType = topology.DeviceType

// Device type constants, in the paper's display order.
const (
	RSW  = topology.RSW
	CSW  = topology.CSW
	CSA  = topology.CSA
	FSW  = topology.FSW
	SSW  = topology.SSW
	ESW  = topology.ESW
	Core = topology.Core
	BBR  = topology.BBR
)

// DeviceTypes lists every device type; IntraDCTypes the intra-DC subset.
var (
	DeviceTypes  = topology.DeviceTypes
	IntraDCTypes = topology.IntraDCTypes
)

// Design identifies a network design generation.
type Design = topology.Design

// Network design constants.
const (
	DesignShared  = topology.DesignShared
	DesignCluster = topology.DesignCluster
	DesignFabric  = topology.DesignFabric
)

// Severity is a SEV level (Sev1 highest, Sev3 lowest).
type Severity = sev.Severity

// Severity constants.
const (
	Sev1 = sev.Sev1
	Sev2 = sev.Sev2
	Sev3 = sev.Sev3
)

// Severities lists the SEV levels from most to least severe.
var Severities = sev.Severities

// RootCause is a Table 2 root-cause category.
type RootCause = sev.RootCause

// Root-cause constants (Table 2).
const (
	Maintenance   = sev.Maintenance
	Hardware      = sev.Hardware
	Configuration = sev.Configuration
	Bug           = sev.Bug
	Accident      = sev.Accident
	Capacity      = sev.Capacity
	Undetermined  = sev.Undetermined
)

// RootCauses lists the categories in Table 2 order.
var RootCauses = sev.RootCauses

// SEVReport is one service-level event report (§4.2).
type SEVReport = sev.Report

// SEVStore holds SEV reports and answers aggregate queries through an
// indexed query engine (posting lists per year, device type, severity,
// design, and root cause).
type SEVStore = sev.Store

// SEVQuery is a filtered, index-accelerated view over a SEVStore's
// reports; obtain one with SEVStore.Query and narrow it with the With*
// methods.
type SEVQuery = sev.Query

// NewSEVStore returns an empty SEV store.
func NewSEVStore() *SEVStore { return sev.NewStore() }

// ShardedSEVStore partitions a SEV dataset across goroutine-owned
// shards: ingest distributes reports round-robin, queries fan out to
// every shard and merge. It is the store behind the dcnrd daemon; use
// it directly when ingest and queries must overlap without a global
// lock. Close stops the shard goroutines.
type ShardedSEVStore = sev.Sharded

// NewShardedSEVStore returns a sharded SEV store with n shard
// goroutines (n < 1 is treated as 1).
func NewShardedSEVStore(n int) *ShardedSEVStore { return sev.NewSharded(n) }

// ServeConfig parameterizes a SEV query daemon: listen address, shard
// count, result-cache capacity, and the shared Observe wiring. Validate
// fills defaults and rejects out-of-range values; NewSEVDaemon calls it
// for you.
type ServeConfig = serve.Config

// ServeServer is the unified HTTP serving surface shared by repro,
// dcsweep, and dcnrd: New -> Register -> Start -> Shutdown, with
// optional observability endpoints mounted from whatever obs handles
// the Options carry. A nil *ServeServer no-ops Register and Shutdown.
type ServeServer = serve.Server

// ServeOptions configures a ServeServer: address, log label, and the
// nil-safe obs handles whose endpoints it should mount.
type ServeOptions = serve.Options

// NewServeServer returns an unstarted server for the given options.
func NewServeServer(opts ServeOptions) *ServeServer { return serve.New(opts) }

// SEVDaemon is the long-running query daemon behind cmd/dcnrd: a
// sharded SEV store served over HTTP/JSON (/query/count,
// /query/resolutions, /ingest, /stats) with an LRU result cache keyed
// by normalized query + dataset generation and ETag/If-None-Match
// revalidation. Shutdown is idempotent.
type SEVDaemon = serve.Daemon

// NewSEVDaemon validates cfg and returns an unstarted daemon.
func NewSEVDaemon(cfg *ServeConfig) (*SEVDaemon, error) { return serve.NewDaemon(cfg) }

// Fleet models device populations over the study period.
type Fleet = fleet.Model

// NewFleet returns a fleet model at the given population scale (>= 1).
func NewFleet(scale int) *Fleet { return fleet.New(scale) }

// IntraAnalysis computes the §5 statistics over a SEV dataset.
type IntraAnalysis = core.IntraAnalysis

// NewIntraAnalysis pairs a SEV dataset with its fleet model.
func NewIntraAnalysis(store *SEVStore, fl *Fleet) *IntraAnalysis {
	return core.NewIntraAnalysis(store, fl)
}

// InterAnalysis computes the §6 statistics over reconstructed vendor
// tickets.
type InterAnalysis = core.InterAnalysis

// NewInterAnalysis builds the inter-DC analysis over reconstructed
// downtime intervals, using the backbone inventory to enumerate links.
func NewInterAnalysis(topo *BackboneTopology, downs []Downtime, windowHours float64) (*InterAnalysis, error) {
	return core.NewInterAnalysis(topo, downs, windowHours)
}

// SeverityShare is one severity level's slice of Figure 4.
type SeverityShare = core.SeverityShare

// ClaimResult grades one of the paper's headline claims against a dataset
// (see IntraAnalysis.VerifyIntraClaims and InterAnalysis.VerifyInterClaims).
type ClaimResult = core.ClaimResult

// ContinentStats is one row of Table 4.
type ContinentStats = core.ContinentStats

// RemediationStats aggregates Table 1's per-device-type columns.
type RemediationStats = remediation.TypeStats

// FaultClass is the remediation taxonomy of §4.1.3.
type FaultClass = remediation.FaultClass

// BackboneConfig sizes the backbone and its simulation window.
type BackboneConfig = backbone.Config

// DefaultBackboneConfig returns the study-sized configuration (120 edges,
// 24 vendors, 18 months).
func DefaultBackboneConfig() BackboneConfig { return backbone.DefaultConfig() }

// BackboneTopology is a generated backbone inventory.
type BackboneTopology = backbone.Topology

// Continent locates an edge geographically (Table 4).
type Continent = backbone.Continent

// Continent constants.
const (
	NorthAmerica = backbone.NorthAmerica
	Europe       = backbone.Europe
	Asia         = backbone.Asia
	SouthAmerica = backbone.SouthAmerica
	Africa       = backbone.Africa
	Australia    = backbone.Australia
)

// Continents lists all continents in Table 4 order.
var Continents = backbone.Continents

// Notice is one vendor repair notification.
type Notice = tickets.Notice

// Downtime is one reconstructed link downtime interval.
type Downtime = tickets.Downtime

// TicketCollector pairs repair notices into downtime intervals.
type TicketCollector = tickets.Collector

// NewTicketCollector returns an empty collector.
func NewTicketCollector() *TicketCollector { return tickets.NewCollector() }

// ParseNotice decodes a vendor notice from its structured-email form.
func ParseNotice(text string) (Notice, error) { return tickets.Parse(text) }

// Point is an (X, Y) observation used by curves and fits.
type Point = stats.Point

// ExpFit is an exponential model y = A·e^(B·x) with its R².
type ExpFit = stats.ExpFit

// FitExponential fits y = A·e^(B·x) by least squares on log y, the §6.1
// modeling method.
func FitExponential(pts []Point) (ExpFit, error) { return stats.FitExponential(pts) }

// Curve converts a name→value metric into its percentile curve (Figures
// 15–18).
func Curve(metric map[string]float64) []Point { return core.Curve(metric) }

// FitCurve fits the exponential model to a metric's percentile curve.
func FitCurve(metric map[string]float64) (ExpFit, error) { return core.FitCurve(metric) }

// CompletenessIssues returns the §4.2 review findings for a report.
func CompletenessIssues(r *SEVReport) []string { return sev.CompletenessIssues(r) }

// MetricsRegistry is a concurrency-safe registry of counters, gauges, and
// histograms. Pass one through IntraConfig.Metrics / BackboneConfig.Metrics
// to collect simulation telemetry; read it back with Snapshot,
// WritePrometheus, or ExpvarVar.
type MetricsRegistry = obs.Registry

// MetricsSnapshot is a point-in-time copy of a registry's contents,
// JSON-serializable.
type MetricsSnapshot = obs.Snapshot

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Tracer records Chrome trace-event spans (load the WriteJSON output in
// chrome://tracing or Perfetto). A nil *Tracer is a valid no-op recorder.
type Tracer = obs.Tracer

// TraceEvent is one recorded trace event.
type TraceEvent = obs.Event

// NewTracer returns a tracer whose wall clock starts now.
func NewTracer() *Tracer { return obs.NewTracer() }

// TraceJSONWriter streams one Chrome trace-event file from several
// tracers (header → Add per tracer → trailer), letting a caller overlap
// writing one phase's trace with simulating the next on a Tracer.Fork.
type TraceJSONWriter = obs.TraceJSONWriter

// NewTraceJSONWriter starts a trace file on w.
func NewTraceJSONWriter(w io.Writer) *TraceJSONWriter { return obs.NewTraceJSONWriter(w) }

// HealthEngine is the streaming SLO evaluator: it consumes the
// simulation's fault/repair/incident stream, computes rolling-window
// incident rates, MTBF/MTTR estimates, and error-budget burn rates against
// calibration targets, and runs declarative alert rules through a
// pending→firing→resolved state machine. A nil *HealthEngine is a valid
// no-op. Pass one through IntraConfig.Health / BackboneConfig.Health.
type HealthEngine = health.Engine

// HealthTargets holds the calibration-derived SLO objectives a
// HealthEngine evaluates against.
type HealthTargets = health.Targets

// HealthRule is one declarative alert condition (signal, multi-window
// thresholds, for-duration).
type HealthRule = health.Rule

// SLOReport is a point-in-time health summary: per-device-type statistics,
// rule states, and the alert transition history. JSON-serializable.
type SLOReport = health.SLOReport

// HealthSink receives one text line per alert transition. NotifyRecorder
// and the internal notify client both satisfy it.
type HealthSink = health.Sink

// NotifyRecorder is an in-memory HealthSink that accumulates alert
// notifications for post-run inspection.
type NotifyRecorder = notify.Recorder

// NewHealthEngine returns an engine evaluating rules against targets
// (nil/empty rules means DefaultHealthRules()).
func NewHealthEngine(targets HealthTargets, rules []HealthRule) (*HealthEngine, error) {
	return health.New(targets, rules)
}

// HealthTargetsForScale derives SLO targets from the same calibration
// tables that shape the generator, for a fleet at the given scale.
func HealthTargetsForScale(scale int) HealthTargets {
	if scale < 1 {
		scale = 1
	}
	return faults.HealthTargets(fleet.New(scale))
}

// DefaultHealthRules returns the standard intra-DC rule set: SRE-style
// fast and slow incident burn-rate rules plus an MTTR-degradation rule.
func DefaultHealthRules() []HealthRule { return health.DefaultRules() }

// EdgeHealthRules returns the backbone edge-availability rule set
// (requires HealthTargets.EdgeAvailability to be set).
func EdgeHealthRules() []HealthRule { return health.EdgeRules() }

// Journal is the causal incident journal: an allocation-conscious wide-
// event stream recording the full fault lifecycle (fault raised → detected
// → ticket cut → dispatched → escalated → repaired → incident opened →
// closed) with stable IDs linking every record to its cause. A nil
// *Journal is a valid no-op. Pass one through IntraConfig.Observe.Journal
// and serialize it with WriteJSONL.
type Journal = journal.Journal

// JournalID identifies one journal record; 0 means none.
type JournalID = journal.ID

// JournalRecord is one fixed-size, pointer-free journal record.
type JournalRecord = journal.Record

// JournalIndex is a read-side index over journal records: chain walks
// (Chain, Complete), incident enumeration, and MTTR phase decomposition
// (Summary).
type JournalIndex = journal.Index

// JournalSummary is the journal's aggregate view: record and lifecycle
// counts plus per-device-type phase decomposition.
type JournalSummary = journal.Summary

// JournalPhaseStats is one device type's MTTR phase decomposition row.
type JournalPhaseStats = journal.PhaseStats

// NewJournal returns a journal pre-loaded with the simulation's name
// tables (device types, fault classes, severities), ready for
// IntraConfig.Observe.Journal.
func NewJournal() *Journal { return faults.NewJournal() }

// ReadJournal indexes a JSONL journal stream written by Journal.WriteJSONL
// or dcsim -journal. Lines without an "id" field (dcsweep's per-run
// campaign headers) are skipped, but note that dcsweep journal streams
// restart IDs at each header — index one run's section at a time.
func ReadJournal(r io.Reader) (*JournalIndex, error) { return journal.ReadJSONL(r) }

// SEVProvenance is the causal-chain summary a journal attaches to one SEV
// report: the record chain plus per-phase timings.
type SEVProvenance = sev.Provenance

// AttachJournal walks every closed incident in the index and attaches its
// provenance to the matching report in the store (a side table — the
// store's JSON serialization is unchanged). Returns how many reports
// gained provenance; read it back with SEVStore.Provenance.
func AttachJournal(store *SEVStore, x *JournalIndex) int { return sev.AttachJournal(store, x) }

// Timeline turns the registry's point-in-time metrics into time series:
// a sampler driven by the simulation clock captures registry deltas into
// pointer-free fixed-width samples on a fixed cadence grid. A nil
// *Timeline is a valid no-op. Pass one through
// IntraConfig.Observe.Timeline (or SweepConfig.Timeline for per-run
// streams) and serialize it with WriteJSONL; serve ServeHistory for
// windowed queries, or stream live deltas by passing Subscribe to the
// serve layer's SSE handler (ServeConfig / NewSEVDaemon side).
type Timeline = timeline.Timeline

// TimelineSample is one time-series point: the sample instant, the
// series' value, and its column ordinal.
type TimelineSample = timeline.Sample

// TimelineSampler reads a fixed set of registry series on each tick and
// records the ones that changed into a timeline lane; StartWall runs it
// on a wall-clock ticker for servers.
type TimelineSampler = timeline.Sampler

// NewTimeline returns an empty timeline sampling on the given sim-time
// cadence in hours; cadence <= 0 selects the default (24, one grid point
// per simulated day).
func NewTimeline(cadence float64) *Timeline { return timeline.New(cadence) }

// NewTimelineSampler builds a sampler over reg feeding a new lane of t,
// tracking the named counter and gauge series.
func NewTimelineSampler(t *Timeline, lane string, reg *MetricsRegistry, counters, gauges []string) *TimelineSampler {
	return timeline.NewSampler(t, lane, reg, counters, gauges)
}

// SweepStatus is the live campaign introspection table: a lock-free
// per-run progress grid updated by the sweep workers. Set one on
// SweepConfig.Status and serve SweepStatus.Handler (endpoints /campaign,
// /campaign/events, /journal, /metrics/history) to watch a campaign run.
// A nil *SweepStatus is a valid no-op.
type SweepStatus = sweep.Status

// SweepCampaignStatus is one point-in-time campaign snapshot: aggregate
// progress, live cross-run bands, and the per-run grid with z-score
// straggler flags.
type SweepCampaignStatus = sweep.CampaignStatus

// SweepRunStatus is one run's row in a campaign snapshot.
type SweepRunStatus = sweep.RunStatus

// NewSweepStatus returns an empty status table for SweepConfig.Status.
func NewSweepStatus() *SweepStatus { return sweep.NewStatus() }

// NewSimLogHandler returns a log/slog handler writing structured records
// (format "text" or "json") that carry both clocks: slog's wall-clock
// timestamp plus a sim_hours attribute taken from the record itself or,
// absent that, from the registry's des_sim_hours gauge. Pass
// reg.Gauge("des_sim_hours") as sim (or nil to disable the fallback).
func NewSimLogHandler(w io.Writer, format string, level slog.Leveler, sim *obs.Gauge) (slog.Handler, error) {
	return obs.NewSimHandler(w, format, level, sim)
}

// ParseLogLevel maps "debug", "info", "warn", or "error" to a slog.Level.
func ParseLogLevel(s string) (slog.Level, error) { return obs.ParseLogLevel(s) }
