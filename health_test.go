package dcnr

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

// TestHealthEngineElevatedScenario is the acceptance scenario: a full
// study-period run with one year's fault rate elevated 5× must drive a
// burn-rate rule through pending→firing→resolved, with the walk visible in
// the SLO report, the notify sink, and the structured logs — all stamped
// with matching simulation timestamps.
func TestHealthEngineElevatedScenario(t *testing.T) {
	eng, err := NewHealthEngine(HealthTargetsForScale(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := &NotifyRecorder{}
	eng.SetSink(rec)

	reg := NewMetricsRegistry()
	var logBuf bytes.Buffer
	h, err := NewSimLogHandler(&logBuf, "json", slog.LevelInfo, reg.Gauge("des_sim_hours"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateIntraDC(IntraConfig{
		Seed:          7,
		Metrics:       reg,
		Health:        eng,
		Logger:        slog.New(h),
		ElevateYear:   2014,
		ElevateFactor: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.Len() == 0 {
		t.Fatal("no SEVs generated")
	}

	rep := eng.Report()
	// The elevated year ended two sim-years before the run did, so every
	// window has drained: the run must end healthy again.
	if !rep.Healthy {
		t.Errorf("run should end healthy after windows drain: %+v", rep.Rules)
	}

	// At least one burn rule walked the full lifecycle.
	walks := map[string][]string{}
	for _, tr := range rep.Transitions {
		walks[tr.Rule] = append(walks[tr.Rule], tr.From+">"+tr.To)
	}
	fullWalk := ""
	for rule, w := range walks {
		joined := strings.Join(w, " ")
		if strings.Contains(joined, "inactive>pending") &&
			strings.Contains(joined, "pending>firing") &&
			strings.Contains(joined, "firing>inactive") {
			fullWalk = rule
		}
	}
	if fullWalk == "" {
		t.Fatalf("no rule completed pending→firing→resolved; transitions: %+v", rep.Transitions)
	}

	// Firing transitions land inside or just after the elevated year.
	for _, tr := range rep.Transitions {
		if tr.Rule == fullWalk && tr.To == "firing" {
			year := FirstYear + int(tr.AtSimHours/(365*24))
			if year < 2014 || year > 2015 {
				t.Errorf("rule %s fired in %d, expected during/just after elevated 2014", fullWalk, year)
			}
		}
	}

	// Every transition reached the notify sink.
	msgs := rec.Messages()
	if len(msgs) != len(rep.Transitions) {
		t.Fatalf("sink got %d messages, report has %d transitions", len(msgs), len(rep.Transitions))
	}
	firingMsg := false
	for _, m := range msgs {
		if strings.Contains(m, fullWalk) && strings.Contains(m, "-> firing") {
			firingMsg = true
		}
	}
	if !firingMsg {
		t.Errorf("no firing notification for %s in %v", fullWalk, msgs)
	}

	// Structured logs: the firing transition is logged with the same sim
	// timestamp the report records, alongside a wall-clock stamp.
	type logRec struct {
		Msg      string  `json:"msg"`
		Rule     string  `json:"rule"`
		To       string  `json:"to"`
		SimHours float64 `json:"sim_hours"`
		Time     string  `json:"time"`
	}
	simTimes := map[string]bool{}
	sawIncident := false
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var lr logRec
		if err := json.Unmarshal([]byte(line), &lr); err != nil {
			t.Fatalf("invalid log line: %v\n%s", err, line)
		}
		if lr.Time == "" {
			t.Fatalf("log line lost wall clock: %s", line)
		}
		if lr.Msg == "health alert transition" && lr.To == "firing" {
			simTimes[lr.Rule] = true
			found := false
			for _, tr := range rep.Transitions {
				if tr.Rule == lr.Rule && tr.To == "firing" && tr.AtSimHours == lr.SimHours {
					found = true
				}
			}
			if !found {
				t.Errorf("log sim_hours %v has no matching transition for %s", lr.SimHours, lr.Rule)
			}
		}
		if lr.Msg == "incident escalated" {
			sawIncident = true
			if lr.SimHours == 0 {
				t.Errorf("incident log without sim clock: %s", line)
			}
		}
	}
	if !simTimes[fullWalk] {
		t.Errorf("firing transition of %s never logged", fullWalk)
	}
	if !sawIncident {
		t.Error("no incident logs at info level")
	}

	// Health metrics surfaced in the shared registry.
	snap := reg.Snapshot()
	if snap.Counters["health_transitions_total"] != int64(len(rep.Transitions)) {
		t.Errorf("health_transitions_total = %d, want %d",
			snap.Counters["health_transitions_total"], len(rep.Transitions))
	}
	if snap.Counters["health_evaluations_total"] == 0 {
		t.Error("no health evaluations counted")
	}
	if int64(res.Incidents) != snap.Counters["health_incidents_total"] {
		t.Errorf("health_incidents_total = %d, want %d",
			snap.Counters["health_incidents_total"], res.Incidents)
	}
}

// TestHealthEngineCalibratedRunStaysQuiet guards the alert thresholds
// against false positives: an unelevated run must not fire any rule.
func TestHealthEngineCalibratedRunStaysQuiet(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		eng, err := NewHealthEngine(HealthTargetsForScale(1), nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := SimulateIntraDC(IntraConfig{Seed: seed, Health: eng}); err != nil {
			t.Fatal(err)
		}
		rep := eng.Report()
		for _, tr := range rep.Transitions {
			if tr.To == "firing" {
				t.Errorf("seed %d: rule %s fired on a calibrated run (value %.2f)", seed, tr.Rule, tr.Value)
			}
		}
	}
}

// TestBackboneHealthEdgeSignal wires a health engine with edge rules into
// the backbone simulation and checks the edge SLO is populated.
func TestBackboneHealthEdgeSignal(t *testing.T) {
	targets := HealthTargetsForScale(1)
	targets.EdgeAvailability = 0.999
	eng, err := NewHealthEngine(targets, EdgeHealthRules())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultBackboneConfig()
	cfg.Seed = 3
	cfg.Health = eng
	res, err := SimulateBackbone(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Downtimes) == 0 {
		t.Fatal("no downtimes generated")
	}
	rep := eng.Report()
	if rep.EdgeAvailability == nil {
		t.Fatal("edge SLO missing")
	}
	if rep.EdgeAvailability.DowntimeHours <= 0 {
		t.Error("edge downtime not fed to engine")
	}
	if rep.AsOfSimHours == 0 {
		t.Error("engine never evaluated")
	}
}

// TestSLOReportJSONRoundTrip keeps the report wire format stable for the
// /slo endpoint and -health-out consumers.
func TestSLOReportJSONRoundTrip(t *testing.T) {
	eng, err := NewHealthEngine(HealthTargetsForScale(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateIntraDC(IntraConfig{Seed: 2, FromYear: 2016, ToYear: 2017, Health: eng}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var rep SLOReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(rep.Types) == 0 || rep.Fleet.Incidents == 0 {
		t.Errorf("round-tripped report lost data: %+v", rep)
	}
	if rep.Types["RSW"].Population == 0 {
		t.Error("RSW population missing from report")
	}
}
