package dcnr_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dcnr"
)

// TestSimulateIntraDCInstrumented drives the whole intra-DC pipeline with a
// registry and tracer attached through the facade and checks that telemetry
// from every instrumented layer arrived: DES kernel, remediation engine,
// and SEV query engine.
func TestSimulateIntraDCInstrumented(t *testing.T) {
	reg := dcnr.NewMetricsRegistry()
	tr := dcnr.NewTracer()
	res, err := dcnr.SimulateIntraDC(dcnr.IntraConfig{
		Seed: 11, FromYear: 2016, ToYear: 2017, Metrics: reg, Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if snap.Counters["des_events_fired_total"] == 0 {
		t.Error("DES kernel recorded no events")
	}
	if snap.Counters["remediation_submitted_total"] == 0 {
		t.Error("remediation engine recorded no submissions")
	}
	if got := snap.Counters["remediation_repaired_total"] + snap.Counters["remediation_escalated_total"]; got != snap.Counters["remediation_submitted_total"] {
		t.Errorf("remediation outcomes %d != submissions %d", got, snap.Counters["remediation_submitted_total"])
	}

	// Analysis queries hit the instrumented store. Both a posting-list
	// query and a window-only query ride the indexed path (the latter via
	// the start-time index); only a predicate-free query scans.
	indexedBefore := snap.Counters["sev_queries_indexed_total"]
	res.Store.Query().Year(2017).Count()
	res.Store.Query().Since(0).Count()
	res.Store.Query().Count()
	snap = reg.Snapshot()
	if got := snap.Counters["sev_queries_indexed_total"] - indexedBefore; got != 2 {
		t.Errorf("indexed queries counted = %d, want 2", got)
	}
	if snap.Counters["sev_queries_scan_total"] == 0 {
		t.Error("scan-path query not counted")
	}

	// The trace carries both clocks: wall-track DES spans and sim-track
	// remediation spans.
	pids := map[int]bool{}
	for _, e := range tr.Events() {
		pids[e.PID] = true
	}
	if !pids[1] || !pids[2] {
		t.Errorf("trace missing a clock track (pids seen: %v)", pids)
	}

	// The exported file is one valid JSON object in trace-event format.
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var obj struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(obj.TraceEvents) < 3 {
		t.Errorf("trace has only %d events", len(obj.TraceEvents))
	}

	// Prometheus exposition includes counters from the run.
	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "des_events_fired_total") {
		t.Error("Prometheus exposition missing DES counter")
	}
}

// TestSimulateIntraDCTimelineDeterministic pins the timeline's contract at
// the facade: sampling rides the DES clock, so two identical runs produce
// byte-identical JSONL — no wall-clock jitter in what gets captured.
func TestSimulateIntraDCTimelineDeterministic(t *testing.T) {
	render := func() string {
		tl := dcnr.NewTimeline(24)
		cfg := dcnr.IntraConfig{Seed: 11, FromYear: 2016, ToYear: 2016}
		cfg.Observe.Timeline = tl
		if _, err := dcnr.SimulateIntraDC(cfg); err != nil {
			t.Fatal(err)
		}
		if tl.Len() == 0 {
			t.Fatal("timeline captured no samples")
		}
		var buf bytes.Buffer
		if err := tl.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first, second := render(), render()
	if first != second {
		t.Error("timeline JSONL differs between identical runs")
	}
	// Every line is a well-formed sample; the kernel's event counter is in.
	sawEvents := false
	for _, line := range strings.Split(strings.TrimSuffix(first, "\n"), "\n") {
		var s struct {
			T float64 `json:"t"`
			M string  `json:"m"`
			V float64 `json:"v"`
		}
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("timeline line %q is not valid JSON: %v", line, err)
		}
		if s.M == "des_events_fired_total" {
			sawEvents = true
		}
	}
	if !sawEvents {
		t.Error("timeline has no des_events_fired_total series")
	}
}

// TestSimulateBackboneInstrumented checks the backbone simulation feeds the
// same registry through BackboneConfig.
func TestSimulateBackboneInstrumented(t *testing.T) {
	reg := dcnr.NewMetricsRegistry()
	cfg := dcnr.DefaultBackboneConfig()
	cfg.Seed = 5
	cfg.Months = 2
	cfg.Metrics = reg
	if _, err := dcnr.SimulateBackbone(cfg); err != nil {
		t.Fatal(err)
	}
	if reg.Snapshot().Counters["des_events_fired_total"] == 0 {
		t.Error("backbone DES kernel recorded no events")
	}
}
