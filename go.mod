module dcnr

go 1.22
