module dcnr

go 1.24
