// Package dcnr (Data Center Network Reliability) reproduces the
// measurement study "A Large Scale Study of Data Center Network
// Reliability" (Meza, Xu, Veeraraghavan, Mutlu — IMC 2018) as a simulation
// and analysis library.
//
// The paper analyzed seven years of Facebook's intra-data-center
// service-level events (SEVs) and eighteen months of inter-data-center
// fiber repair tickets. Those datasets are proprietary, so this library
// ships a calibrated generative substitute for each:
//
//   - SimulateIntraDC runs a discrete-event simulation of a growing device
//     fleet (cluster and fabric network designs) under fault injection,
//     automated remediation, and topology-derived service impact,
//     producing a SEV dataset.
//   - SimulateBackbone generates a backbone of edges, vendors, and fiber
//     links, simulates link failures and fiber cuts, and round-trips the
//     resulting repair tickets through the vendor-notification pipeline.
//   - Sweep fans a grid of such runs — seed × scale × scenario — across a
//     bounded worker pool and aggregates the paper's key statistics into
//     cross-run mean/p5/p95 bands.
//
// Every simulation entry point takes a config whose Validate method
// normalizes defaults and rejects impossible parameters, and whose
// embedded Observe struct carries the shared observability wiring
// (Metrics, Trace, Health, Logger). Analysis re-derives every table and
// figure of the paper from the generated raw records — see IntraAnalysis
// and InterAnalysis. cmd/repro prints each experiment; EXPERIMENTS.md
// records paper-vs-measured values.
package dcnr

import (
	"dcnr/internal/core"
	"dcnr/internal/remediation"
	"dcnr/internal/sim"
	"dcnr/internal/sweep"
	"dcnr/internal/topology"
)

// Version identifies the library release.
const Version = "1.1.0"

// SimulateIntraDC runs the intra-data-center simulation and returns the
// dataset with analysis attached. The config is validated first (see
// IntraConfig.Validate); an invalid config returns an error before any
// simulation work happens.
func SimulateIntraDC(cfg IntraConfig) (*IntraResult, error) {
	return sim.IntraDC(cfg)
}

// SimulateBackbone generates a backbone per cfg, simulates its failure
// processes over the observation window, and round-trips the repair
// tickets through the generation→parse→pair pipeline, exactly as the
// study's data flowed (§4.3.2). The config is validated first (see
// BackboneConfig.Validate).
func SimulateBackbone(cfg BackboneConfig) (*BackboneResult, error) {
	return sim.Backbone(cfg)
}

// Sweep runs a scenario-sweep campaign: every (scenario, scale, seed) cell
// of the grid as an isolated simulation run across a bounded worker pool,
// with per-run statistics streamed to cfg.Results as JSONL and aggregated
// into cross-run mean/p5/p95 bands. The same grid yields a byte-identical
// report (Result.WriteReport) at any worker count.
func Sweep(cfg SweepConfig) (*SweepResult, error) {
	return sweep.Run(cfg)
}

// RunLimit runs n independent analysis tasks across a bounded pool of at
// most workers goroutines and waits for all of them (workers <= 0 means one
// per CPU). Every task runs even when an earlier one fails; the returned
// error is the failing task with the lowest index, so the outcome is
// deterministic under concurrency. cmd/repro uses it to regenerate all
// tables and figures in parallel; it fits any fan-out whose tasks are
// independent, such as sweeping seeds or scales.
func RunLimit(workers, n int, task func(i int) error) error {
	return core.RunLimit(workers, n, task)
}

// RunLimitTraced is RunLimit with per-task telemetry: each task records a
// wall-clock span on tr under category cat, named by name(i) (the task
// index when name is nil), with one trace lane per pool worker. A nil tr
// records nothing, so callers can thread an optional tracer straight
// through.
func RunLimitTraced(workers, n int, tr *Tracer, cat string, name func(i int) string, task func(i int) error) error {
	return core.RunLimitTraced(workers, n, tr, cat, name, task)
}

// RemediationSupported reports whether automated remediation covers the
// device type (§4.1.2: RSWs, FSWs, and some Core devices).
func RemediationSupported(t DeviceType) bool { return remediation.Supported(t) }

// ParseDeviceName recovers a device's type from its name prefix, the
// classification rule of §4.3.1.
func ParseDeviceName(name string) (DeviceType, error) {
	return topology.ParseDeviceName(name)
}
