// Package dcnr (Data Center Network Reliability) reproduces the
// measurement study "A Large Scale Study of Data Center Network
// Reliability" (Meza, Xu, Veeraraghavan, Mutlu — IMC 2018) as a simulation
// and analysis library.
//
// The paper analyzed seven years of Facebook's intra-data-center
// service-level events (SEVs) and eighteen months of inter-data-center
// fiber repair tickets. Those datasets are proprietary, so this library
// ships a calibrated generative substitute for each:
//
//   - SimulateIntraDC runs a discrete-event simulation of a growing device
//     fleet (cluster and fabric network designs) under fault injection,
//     automated remediation, and topology-derived service impact,
//     producing a SEV dataset.
//   - SimulateBackbone generates a backbone of edges, vendors, and fiber
//     links, simulates link failures and fiber cuts, and round-trips the
//     resulting repair tickets through the vendor-notification pipeline.
//
// Analysis then re-derives every table and figure of the paper from the
// generated raw records — see IntraAnalysis and InterAnalysis. cmd/repro
// prints each experiment; EXPERIMENTS.md records paper-vs-measured values.
package dcnr

import (
	"fmt"
	"log/slog"

	"dcnr/internal/backbone"
	"dcnr/internal/core"
	"dcnr/internal/faults"
	"dcnr/internal/fleet"
	"dcnr/internal/remediation"
	"dcnr/internal/tickets"
	"dcnr/internal/topology"
)

// Version identifies the library release.
const Version = "1.0.0"

// IntraConfig parameterizes the intra-data-center simulation.
type IntraConfig struct {
	// Seed roots all randomness; equal seeds give identical histories.
	Seed uint64
	// Scale multiplies the fleet population and incident volumes
	// uniformly. 1 (the default when zero) is the study's unit scale;
	// 5 produces a "thousands of incidents" dataset like the paper's.
	Scale int
	// FromYear and ToYear bound the simulated years, inclusive. Zero
	// values default to the full 2011–2017 study period.
	FromYear, ToYear int
	// DisableRemediation turns off the automated repair engine — the §5.6
	// ablation. Every fault on a remediation-supported device type then
	// escalates to a service-level incident.
	DisableRemediation bool
	// Metrics, when non-nil, receives counters, gauges, and histograms
	// from the simulation's hot paths (DES kernel, remediation engine,
	// SEV query engine). See the Observability section of README.md for
	// the metric names.
	Metrics *MetricsRegistry
	// Trace, when non-nil, records Chrome trace-event spans: per-event
	// handler timings on the wall-clock track and remediation
	// submit→outcome spans on the simulation-time track. Write the
	// result with Tracer.WriteJSON and load it in chrome://tracing or
	// Perfetto.
	Trace *Tracer
	// Health, when non-nil, receives every fault, repair, and incident
	// and is evaluated on a daily sim-time tick, judging the run against
	// its calibration targets live (burn-rate alert rules, MTBF/MTTR
	// estimates). Build one with NewHealthEngine(HealthTargetsForScale(
	// cfg.Scale), nil). See the Health/SLO section of README.md.
	Health *HealthEngine
	// Logger, when non-nil, receives structured records from the DES
	// kernel (debug), the remediation engine (debug), the faults driver
	// (incidents at info), and the health engine's alert transitions —
	// each carrying the simulation clock. Build the handler with
	// NewSimLogHandler so records carry the wall clock too.
	Logger *slog.Logger
	// ElevateYear and ElevateFactor (> 1) multiply the fault arrival
	// rate of one simulated year while health targets stay at
	// calibration — the anomaly-injection scenario that drives burn-rate
	// alerts through pending→firing→resolved. Zero values disable it.
	ElevateYear   int
	ElevateFactor float64
}

// IntraResult carries the generated dataset and its analysis handles.
type IntraResult struct {
	// Store is the generated SEV dataset.
	Store *SEVStore
	// Fleet is the population model the dataset was generated against.
	Fleet *Fleet
	// Analysis answers the §5 questions over the dataset.
	Analysis *IntraAnalysis
	// RemediationStats is the Table 1 data accumulated by the automated
	// repair engine, keyed by device type.
	RemediationStats map[DeviceType]RemediationStats
	// Faults and Incidents count generated device faults and the subset
	// that escalated into SEVs.
	Faults, Incidents int
}

// SimulateIntraDC runs the intra-data-center simulation and returns the
// dataset with analysis attached.
func SimulateIntraDC(cfg IntraConfig) (*IntraResult, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	if cfg.FromYear == 0 {
		cfg.FromYear = FirstYear
	}
	if cfg.ToYear == 0 {
		cfg.ToYear = LastYear
	}
	fl := fleet.New(cfg.Scale)
	driver, err := faults.NewDriver(fl, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("dcnr: building simulation: %w", err)
	}
	if cfg.DisableRemediation {
		driver.Engine.SetEnabled(false)
	}
	driver.Instrument(cfg.Metrics, cfg.Trace)
	driver.ElevateYear, driver.ElevateFactor = cfg.ElevateYear, cfg.ElevateFactor
	if cfg.Health != nil {
		cfg.Health.Instrument(cfg.Metrics)
		driver.SetHealth(cfg.Health)
	}
	if cfg.Logger != nil {
		driver.SetLogger(cfg.Logger)
		cfg.Health.SetLogger(cfg.Logger)
	}
	store, err := driver.Run(cfg.FromYear, cfg.ToYear)
	if err != nil {
		return nil, fmt.Errorf("dcnr: simulating: %w", err)
	}
	return &IntraResult{
		Store:            store,
		Fleet:            fl,
		Analysis:         core.NewIntraAnalysis(store, fl),
		RemediationStats: driver.Engine.Stats(),
		Faults:           driver.Faults(),
		Incidents:        driver.Incidents(),
	}, nil
}

// BackboneResult carries the generated backbone dataset and its analysis.
type BackboneResult struct {
	// Topology is the generated backbone inventory.
	Topology *BackboneTopology
	// Notices is the full vendor notification stream, time-ordered.
	Notices []Notice
	// Downtimes are the link downtime intervals the collector
	// reconstructed from the notices.
	Downtimes []Downtime
	// Analysis answers the §6 questions over the reconstructed intervals.
	Analysis *InterAnalysis
}

// healthEdgeEvalPeriod is the sim-hour cadence at which SimulateBackbone
// replays the observation window into an attached health engine: daily, so
// the edge-availability rule's for-duration semantics match the intra-DC
// plane's.
const healthEdgeEvalPeriod = 24.0

// SimulateBackbone generates a backbone per cfg, simulates its failure
// processes over the observation window, and round-trips the repair
// tickets through the generation→parse→pair pipeline, exactly as the
// study's data flowed (§4.3.2).
func SimulateBackbone(cfg BackboneConfig) (*BackboneResult, error) {
	topo, err := backbone.Build(cfg)
	if err != nil {
		return nil, fmt.Errorf("dcnr: building backbone: %w", err)
	}
	downs, err := topo.Simulate(cfg)
	if err != nil {
		return nil, fmt.Errorf("dcnr: simulating backbone: %w", err)
	}
	notices := tickets.Generate(topo, downs)
	coll := tickets.NewCollector()
	// Re-derive the window exactly as Simulate used it.
	full := cfg
	if full.Months == 0 {
		full.Months = backbone.DefaultConfig().Months
	}
	coll.WindowHours = full.WindowHours()
	for _, n := range notices {
		// Round-trip through the wire format: what the analysis sees is
		// what a parser recovered, not the generator's structs.
		parsed, err := tickets.Parse(n.Format())
		if err != nil {
			return nil, fmt.Errorf("dcnr: ticket round trip: %w", err)
		}
		if err := coll.Ingest(parsed); err != nil {
			return nil, fmt.Errorf("dcnr: collecting tickets: %w", err)
		}
	}
	dts := coll.Downtimes()
	if cfg.Health != nil {
		// Feed the reconstructed intervals to the health engine and
		// evaluate over the window, so edge-availability rules see the
		// same data the §6 analysis does.
		for _, dt := range dts {
			cfg.Health.RecordEdgeDown(dt.Start, dt.End)
		}
		for t := healthEdgeEvalPeriod; t <= coll.WindowHours; t += healthEdgeEvalPeriod {
			cfg.Health.Evaluate(t)
		}
	}
	analysis, err := core.NewInterAnalysis(topo, dts, coll.WindowHours)
	if err != nil {
		return nil, fmt.Errorf("dcnr: analyzing backbone: %w", err)
	}
	return &BackboneResult{
		Topology:  topo,
		Notices:   notices,
		Downtimes: dts,
		Analysis:  analysis,
	}, nil
}

// RunLimit runs n independent analysis tasks across a bounded pool of at
// most workers goroutines and waits for all of them (workers <= 0 means one
// per CPU). Every task runs even when an earlier one fails; the returned
// error is the failing task with the lowest index, so the outcome is
// deterministic under concurrency. cmd/repro uses it to regenerate all
// tables and figures in parallel; it fits any fan-out whose tasks are
// independent, such as sweeping seeds or scales.
func RunLimit(workers, n int, task func(i int) error) error {
	return core.RunLimit(workers, n, task)
}

// RunLimitTraced is RunLimit with per-task telemetry: each task records a
// wall-clock span on tr under category cat, named by name(i) (the task
// index when name is nil), with one trace lane per pool worker. A nil tr
// records nothing, so callers can thread an optional tracer straight
// through.
func RunLimitTraced(workers, n int, tr *Tracer, cat string, name func(i int) string, task func(i int) error) error {
	return core.RunLimitTraced(workers, n, tr, cat, name, task)
}

// RemediationSupported reports whether automated remediation covers the
// device type (§4.1.2: RSWs, FSWs, and some Core devices).
func RemediationSupported(t DeviceType) bool { return remediation.Supported(t) }

// ParseDeviceName recovers a device's type from its name prefix, the
// classification rule of §4.3.1.
func ParseDeviceName(name string) (DeviceType, error) {
	return topology.ParseDeviceName(name)
}
