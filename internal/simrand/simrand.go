// Package simrand provides deterministic, splittable pseudo-random streams
// for the simulator.
//
// Every source of randomness in the simulation is a named substream derived
// from a single root seed. Substreams are independent: adding a new consumer
// (a new device type, a new vendor) does not perturb the draws seen by
// existing consumers, so calibrated experiments remain stable as the
// simulator grows. The generator is a 64-bit SplitMix64/xoshiro256** pair,
// implemented here so the simulation does not depend on the (historically
// unstable) sequence of math/rand.
package simrand

import (
	"hash/fnv"
	"math"
)

// Stream is a deterministic pseudo-random stream. The zero value is not
// usable; construct streams with New or Source.Stream.
type Stream struct {
	s [4]uint64
}

// Source derives named substreams from a root seed.
type Source struct {
	seed uint64
}

// NewSource returns a Source rooted at seed.
func NewSource(seed uint64) *Source {
	return &Source{seed: seed}
}

// Stream derives the substream identified by name. The same (seed, name)
// pair always yields an identical stream.
func (s *Source) Stream(name string) *Stream {
	h := fnv.New64a()
	h.Write([]byte(name))
	return New(s.seed ^ h.Sum64())
}

// New returns a Stream seeded by seed via SplitMix64 state expansion.
func New(seed uint64) *Stream {
	st := &Stream{}
	sm := seed
	for i := range st.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		st.s[i] = z ^ (z >> 31)
	}
	// xoshiro256** requires a non-zero state; SplitMix64 guarantees that
	// except for astronomically unlikely seeds, which we guard anyway.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return st
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits (xoshiro256**).
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("simrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns a draw from the exponential distribution with the given mean.
// It panics if mean <= 0.
func (r *Stream) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("simrand: Exp with non-positive mean")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// LogNormal returns a draw from the log-normal distribution whose underlying
// normal has mean mu and standard deviation sigma.
func (r *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Normal())
}

// Normal returns a standard normal draw (Marsaglia polar method).
func (r *Stream) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Poisson returns a Poisson draw with the given mean (Knuth for small means,
// normal approximation above 64 to stay O(1)).
func (r *Stream) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		n := int(math.Round(mean + math.Sqrt(mean)*r.Normal()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Bool returns true with probability p.
func (r *Stream) Bool(p float64) bool {
	return r.Float64() < p
}

// Weighted returns an index drawn from the categorical distribution given by
// weights. Weights need not sum to 1; negative weights count as zero. If all
// weights are zero, Weighted returns 0.
func (r *Stream) Weighted(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return 0
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// Shuffle pseudo-randomly permutes the first n elements using swap.
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
