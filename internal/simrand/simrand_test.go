package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := NewSource(42).Stream("faults")
	b := NewSource(42).Stream("faults")
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d diverged: %d != %d", i, av, bv)
		}
	}
}

func TestSubstreamIndependence(t *testing.T) {
	src := NewSource(7)
	a := src.Stream("a")
	b := src.Stream("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("substreams a and b produced %d identical draws", same)
	}
}

func TestSubstreamStableUnderNewConsumers(t *testing.T) {
	// Drawing from a new substream must not change an existing one.
	s1 := NewSource(99)
	before := s1.Stream("vendor").Uint64()

	s2 := NewSource(99)
	_ = s2.Stream("brand-new-consumer").Uint64()
	after := s2.Stream("vendor").Uint64()

	if before != after {
		t.Fatalf("substream 'vendor' perturbed by new consumer: %d != %d", before, after)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(2)
	const mean = 250.0
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(mean)
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("Exp mean = %v, want within 2%% of %v", got, mean)
	}
}

func TestExpPanicsOnNonPositiveMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(3)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Normal variance = %v, want ~1", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(4)
	for _, mean := range []float64{0.5, 3, 20, 120} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean)/mean > 0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
}

func TestPoissonZeroAndNegative(t *testing.T) {
	r := New(5)
	if got := r.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := r.Poisson(-3); got != 0 {
		t.Errorf("Poisson(-3) = %d, want 0", got)
	}
}

func TestWeighted(t *testing.T) {
	r := New(6)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Weighted(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket drawn %d times", counts[1])
	}
	frac0 := float64(counts[0]) / n
	if math.Abs(frac0-0.25) > 0.01 {
		t.Errorf("bucket 0 frequency = %v, want ~0.25", frac0)
	}
}

func TestWeightedAllZero(t *testing.T) {
	r := New(7)
	if got := r.Weighted([]float64{0, 0, 0}); got != 0 {
		t.Errorf("Weighted(all-zero) = %d, want 0", got)
	}
	if got := r.Weighted([]float64{-1, -2}); got != 0 {
		t.Errorf("Weighted(all-negative) = %d, want 0", got)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(8)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		p := r.Perm(20)
		seen := make(map[int]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(seen) == 20
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogNormalPositive(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			if r.LogNormal(1, 0.5) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Exp(100)
	}
}
