// Package faults generates the intra-data-center operational history: seven
// years of device faults, pushed through automated (or, before 2013,
// manual) repair, with the unrepairable remainder escalating into SEV
// reports whose severity the service-impact model computes from the
// topology.
//
// The output of a run is a populated sev.Store — the simulated equivalent
// of the SEV database the paper queried — plus the remediation engine's
// Table 1 statistics.
package faults

import (
	"fmt"
	"log/slog"
	"math"

	"dcnr/internal/des"
	"dcnr/internal/fleet"
	"dcnr/internal/obs"
	"dcnr/internal/obs/health"
	"dcnr/internal/obs/journal"
	"dcnr/internal/obs/timeline"
	"dcnr/internal/observe"
	"dcnr/internal/remediation"
	"dcnr/internal/service"
	"dcnr/internal/sev"
	"dcnr/internal/simrand"
	"dcnr/internal/topology"
)

// Fault is one device issue detected by monitoring.
type Fault struct {
	// Device is the virtual fleet device name (type-prefixed). It is
	// fabricated lazily — the identity draws happen at schedule time (so
	// RNG stream order is independent of whether anything reads the name),
	// but the string itself is only built on the paths that render it:
	// incident reports and debug logs, a fraction of a percent of faults.
	Device string
	// Type is the device type.
	Type topology.DeviceType
	// Class is the issue taxonomy entry (§4.1.3).
	Class remediation.FaultClass
	// Scope is how much of the redundancy group the root cause consumed;
	// it only matters if the fault escalates.
	Scope service.Scope
	// Start is the detection time in hours since epoch.
	Start float64
	// Year is the calendar year of Start.
	Year int

	// ordinal and fabric are the deferred name-fabrication inputs drawn at
	// schedule time: the device's uniform position in that year's
	// population, and (for racks from the fabric deployment year on)
	// whether it lives in the fabric data center.
	ordinal int
	fabric  bool
}

// ensureDevice materializes the lazily-fabricated device name.
func (f *Fault) ensureDevice() {
	if f.Device != "" {
		return
	}
	unit, dc, region := "", "dc1", "regiona"
	switch f.Type {
	case topology.RSW:
		// Racks split across designs; fabric racks exist from 2015.
		if f.fabric {
			unit, dc, region = fmt.Sprintf("pod%03d", 1+f.ordinal/48), "dc2", "regionb"
		} else {
			unit = fmt.Sprintf("cl%03d", 1+f.ordinal/80)
		}
	case topology.CSW:
		unit = fmt.Sprintf("cl%03d", 1+f.ordinal/4)
	case topology.FSW:
		unit, dc, region = fmt.Sprintf("pod%03d", 1+f.ordinal/4), "dc2", "regionb"
	case topology.ESW, topology.SSW:
		dc, region = "dc2", "regionb"
	}
	f.Device = topology.MakeName(f.Type, f.ordinal, unit, dc, region)
}

// Driver runs the intra-DC simulation. Construct with NewDriver, then call
// Run.
type Driver struct {
	Fleet *fleet.Model
	// Engine is the automated repair system; disable it for the §5.6
	// ablation.
	Engine *remediation.Engine
	// Assessor judges escalated faults against the representative
	// topology.
	Assessor *service.Assessor
	// Store receives the escalated faults as SEV reports.
	Store *sev.Store

	// ElevateYear and ElevateFactor inject an anomaly: the fault arrival
	// rate of ElevateYear is multiplied by ElevateFactor (> 1) while the
	// health engine keeps judging against the unelevated calibration —
	// the scenario that drives burn-rate alerts through their lifecycle.
	// A zero factor (or year outside the run) changes nothing.
	ElevateYear   int
	ElevateFactor float64

	sim     *des.Simulator
	src     *simrand.Source
	manual  *simrand.Stream
	details *simrand.Stream
	repTopo *topology.Network
	health  *health.Engine
	logger  *slog.Logger
	// jlane is the driver's causal-journal lane (fault raised/detected and
	// incident opened/closed records); the remediation engine journals the
	// ticket→repair middle of each chain on its own lane. Nil is a no-op.
	jlane   *journal.Lane
	jhooked bool
	// tsampler feeds the attached metrics timeline on the kernel's
	// cadence grid; flushed at every simulator sync point. Nil is a
	// no-op.
	tsampler *timeline.Sampler
	thooked  bool
	// classShares caches remediation.ClassShares() — the weights are
	// constants, and fetching a fresh slice per fault was a measurable
	// share of the schedule loop's allocations.
	classShares []float64
	faults      int
	incidents   int
}

// NewDriver wires a Driver over a fresh simulator, representative topology,
// remediation engine, and SEV store, all seeded from seed.
func NewDriver(fl *fleet.Model, seed uint64) (*Driver, error) {
	repTopo, err := fleet.RepresentativeTopology()
	if err != nil {
		return nil, err
	}
	sim := &des.Simulator{}
	src := simrand.NewSource(seed)
	return &Driver{
		Fleet:       fl,
		Engine:      remediation.NewEngine(sim, src.Stream("remediation")),
		Assessor:    service.NewAssessor(repTopo),
		Store:       sev.NewStore(),
		sim:         sim,
		src:         src,
		manual:      src.Stream("manual-repair"),
		details:     src.Stream("incident-details"),
		repTopo:     repTopo,
		classShares: remediation.ClassShares(),
	}, nil
}

// Simulator exposes the driver's event loop (useful for composing extra
// processes before Run).
func (d *Driver) Simulator() *des.Simulator { return d.sim }

// Instrument attaches telemetry to the whole intra-DC pipeline: the DES
// kernel (event counters, queue depth, sim-vs-wall time), the remediation
// engine (queue depth, wait/repair histograms, submit→outcome trace
// spans), and the SEV store's query engine (indexed-vs-scan counters).
// Call before Run; either argument may be nil.
func (d *Driver) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	d.sim.Instrument(reg, tr)
	d.Engine.Instrument(reg, tr)
	d.Store.Instrument(reg)
}

// SetHealth attaches a streaming SLO engine: the driver feeds it every
// fault, repair, and incident, and schedules a daily sim-time evaluation
// tick across the run. Call before Run; nil detaches.
func (d *Driver) SetHealth(e *health.Engine) { d.health = e }

// NewJournal returns a causal journal pre-configured with the intra-DC
// name tables (device types, fault classes, severities), ready to pass
// through observe.Observe.Journal or SetJournal.
func NewJournal() *journal.Journal {
	j := journal.New()
	dev := make([]string, int(topology.BBR)+1)
	for _, t := range topology.DeviceTypes {
		dev[t] = t.String()
	}
	class := make([]string, len(remediation.FaultClasses))
	for i, c := range remediation.FaultClasses {
		class[i] = c.String()
	}
	sevs := make([]string, int(sev.Sev3)+1)
	for _, s := range sev.Severities {
		sevs[s] = s.String()
	}
	j.SetNames(dev, class, sevs)
	return j
}

// SetJournal attaches a causal journal: the driver records each fault's
// raised/detected entries and any incident's opened/closed entries, the
// remediation engine the ticket→dispatch/escalate→repair middle, all
// linked by parent IDs into one chain per fault. The journal's staged
// lanes are published at every simulator sync point and at the end of
// Run. Recording draws no randomness, so an attached journal never
// changes the generated dataset. Call before Run; nil detaches.
func (d *Driver) SetJournal(j *journal.Journal) {
	if j == nil {
		d.jlane = nil
		d.Engine.SetJournal(nil)
		return
	}
	d.jlane = j.Lane("faults")
	d.Engine.SetJournal(j)
	if !d.jhooked {
		// One hook per driver even if the journal is swapped: the closure
		// reads the current lane fields.
		d.jhooked = true
		d.sim.AddSyncHook(func() {
			d.jlane.Flush()
			d.Engine.FlushTrace()
		})
	}
}

// TimelineCounters and TimelineGauges name the registry series an
// intra-DC timeline tracks by default: the DES kernel's event counter,
// the remediation plane's ticket flow and queue, and the health engine's
// incident/transition counters. All are driven purely by simulation
// events, so their sampled series are deterministic for a fixed seed
// (wall-clock histograms are deliberately absent). The sampler resolves
// them get-or-create: a series its run never touches simply records
// nothing.
var (
	TimelineCounters = []string{
		"des_events_fired_total",
		"remediation_submitted_total",
		"remediation_repaired_total",
		"remediation_escalated_total",
		"health_incidents_total",
		"health_transitions_total",
	}
	TimelineGauges = []string{
		"des_queue_depth",
		"remediation_queue_depth",
		"health_rules_firing",
	}
)

// SetTimeline attaches a metrics timeline sampling reg's series on the
// timeline's cadence grid, timed by the DES clock: the driver registers a
// kernel sample hook (called at each crossed multiple of the cadence)
// and flushes the staged samples at every simulator sync point. Sampling
// reads only event-driven series and no wall clock, so an attached
// timeline never changes the generated dataset. Call before Run; a nil
// timeline (or nil registry) detaches.
func (d *Driver) SetTimeline(tl *timeline.Timeline, reg *obs.Registry) {
	if tl == nil || reg == nil {
		d.tsampler = nil
		d.sim.SetSampleHook(0, nil)
		return
	}
	d.tsampler = timeline.NewSampler(tl, "intra", reg, TimelineCounters, TimelineGauges)
	d.sim.SetSampleHook(tl.Cadence(), d.tsampler.Sample)
	if !d.thooked {
		// One hook per driver even if the timeline is swapped: the
		// closure reads the current sampler field.
		d.thooked = true
		d.sim.AddSyncHook(func() { d.tsampler.Flush() })
	}
}

// Observe wires a whole observability bundle in one call: Instrument with
// the registry and tracer, SetHealth (plus health-engine instrumentation)
// when a health engine is present, SetLogger when a logger is present,
// and SetJournal / SetTimeline for the streaming recorders. Each sink is
// guarded on its own nil check — attaching a logger without a health
// engine, or a health engine without metrics, wires exactly the sinks
// that exist. A timeline without a registry gets a private one: the
// sampler needs instrumented series to read, but the caller shouldn't
// have to ask for metrics output just to get history. Call before Run.
func (d *Driver) Observe(o observe.Observe) {
	reg := o.Metrics
	if reg == nil && o.Timeline != nil {
		reg = obs.NewRegistry()
	}
	d.Instrument(reg, o.Trace)
	if o.Health != nil {
		o.Health.Instrument(reg)
		d.SetHealth(o.Health)
	}
	if o.Logger != nil {
		d.SetLogger(o.Logger)
		if o.Health != nil {
			o.Health.SetLogger(o.Logger)
		}
	}
	if o.Journal != nil {
		d.SetJournal(o.Journal)
	}
	if o.Timeline != nil {
		d.SetTimeline(o.Timeline, reg)
	}
}

// SetLogger attaches a structured logger: the driver (and, through
// SetLogger on the engine it owns, the remediation plane) logs incidents
// at info and fault-level churn at debug, each record carrying the
// simulation clock. Pair with obs.NewSimHandler. Call before Run; nil
// detaches.
func (d *Driver) SetLogger(l *slog.Logger) {
	d.logger = l
	d.Engine.SetLogger(l)
	d.sim.SetLogger(l)
}

// Faults reports how many device faults the last Run generated.
func (d *Driver) Faults() int { return d.faults }

// Incidents reports how many faults escalated into SEVs.
func (d *Driver) Incidents() int { return d.incidents }

// Run simulates the years [from, to] (inclusive) and returns the populated
// SEV store. Faults arrive as a Poisson process per (year, device type)
// whose rate is the calibrated incident target divided by the type's
// repair-success probability — so the incident stream emerges from the
// fault stream passing through the repair machinery, not from sampling
// incidents directly.
func (d *Driver) Run(from, to int) (*sev.Store, error) {
	if from < fleet.FirstYear || to > fleet.LastYear || from > to {
		return nil, fmt.Errorf("faults: year range [%d, %d] outside study period", from, to)
	}
	volumes := d.src.Stream("volumes")
	for year := from; year <= to; year++ {
		for _, dt := range topology.IntraDCTypes {
			if d.Fleet.Population(year, dt) == 0 {
				continue
			}
			target := IncidentTarget(year, dt) * float64(d.Fleet.Scale())
			if target == 0 {
				continue
			}
			raw := target / escalationProb(dt)
			if year == d.ElevateYear && d.ElevateFactor > 0 {
				raw *= d.ElevateFactor
			}
			n := volumes.Poisson(raw)
			d.scheduleFaults(year, dt, n)
		}
	}
	d.scheduleHealthTicks(from, to)
	d.sim.Run(math.Inf(1))
	if d.health != nil {
		// Run(∞) leaves the clock at +Inf once the queue drains; close
		// the books at the finite end of the simulated range.
		d.health.Evaluate(des.YearStart(to+1, fleet.FirstYear))
	}
	// Publish any repair spans still staged in the engine's ring buffers so
	// a trace written after Run sees the full repair history, and any
	// journal records still staged in the driver's lane.
	d.Engine.FlushTrace()
	d.jlane.Flush()
	d.tsampler.Flush()
	return d.Store, nil
}

// healthEvalPeriod is the sim-time cadence of health-engine evaluations:
// one tick per simulated day, ~2.5k extra events over a full study run.
const healthEvalPeriod = 24.0

// scheduleHealthTicks pre-schedules the health engine's evaluation ticks
// over the simulated range. They are plain scheduled events (not
// des.Every) so the queue still drains and Run(∞) terminates.
func (d *Driver) scheduleHealthTicks(from, to int) {
	if d.health == nil {
		return
	}
	start := des.YearStart(from, fleet.FirstYear)
	end := des.YearStart(to+1, fleet.FirstYear)
	for t := start + healthEvalPeriod; t <= end; t += healthEvalPeriod {
		if _, err := d.sim.Schedule(t, func(now float64) { d.health.Evaluate(now) }); err != nil {
			panic(fmt.Sprintf("faults: scheduling health tick: %v", err))
		}
	}
}

func (d *Driver) scheduleFaults(year int, dt topology.DeviceType, n int) {
	timing := d.src.Stream(fmt.Sprintf("timing/%d/%s", year, dt))
	details := d.src.Stream(fmt.Sprintf("details/%d/%s", year, dt))
	yearStart := des.YearStart(year, fleet.FirstYear)
	pop := d.Fleet.Population(year, dt)
	fabricRacks := dt == topology.RSW && year >= fleet.FabricDeployYear
	for i := 0; i < n; i++ {
		f := Fault{
			Type:  dt,
			Class: remediation.FaultClass(details.Weighted(d.classShares)),
			Scope: service.Scope(details.Weighted(scopeWeights[dt])),
			Start: yearStart + timing.Float64()*des.HoursPerYear,
			Year:  year,
		}
		// Identity draws (ordinal uniform over that year's population, so
		// incident density per named device matches the fleet's) happen
		// here in the original stream order; the name string itself is
		// fabricated lazily by ensureDevice.
		f.ordinal = 1 + details.Intn(pop)
		if fabricRacks {
			f.fabric = details.Bool(0.5)
		}
		d.faults++
		if _, err := d.sim.Schedule(f.Start, func(float64) { d.handleFault(f) }); err != nil {
			panic(fmt.Sprintf("faults: scheduling fault: %v", err))
		}
	}
}

func (d *Driver) handleFault(f Fault) {
	d.health.RecordFault(f.Start, f.Type.String())
	// The fault's journal root: raised and detected coincide in this model
	// (monitoring detects instantaneously), and journaling both makes that
	// a recorded fact instead of an assumption baked into readers.
	raised := d.jlane.Record(journal.Record{
		Kind: journal.FaultRaised, Time: f.Start,
		Dev: uint8(f.Type), Class: int8(f.Class), Sev: -1,
	})
	detected := d.jlane.Record(journal.Record{
		Kind: journal.FaultDetected, Parent: raised, Time: f.Start,
		Dev: uint8(f.Type), Class: int8(f.Class), Sev: -1,
	})
	if d.logger != nil {
		f.ensureDevice()
		d.logger.Debug("fault detected",
			slog.String("device", f.Device),
			slog.String("class", f.Class.String()),
			obs.SimHours(f.Start))
	}
	// Before 2013 there is no automated repair: the manual repair desk
	// masks faults at the same per-type success rate, just slowly (§3.1's
	// "humans perform slow repairs" — which is why automation changed the
	// operational load, not the SEV stream).
	if f.Year < fleet.AutomatedRepairYear {
		if !d.manual.Bool(escalationProb(f.Type)) {
			d.health.RecordRepair(f.Start, f.Type.String())
			d.jlane.Record(journal.Record{
				Kind: journal.Repaired, Parent: detected, Time: f.Start,
				Dev: uint8(f.Type), Class: int8(f.Class), Sev: -1,
			})
			return // repaired by a technician; no service impact
		}
		d.recordIncident(f, detected)
		return
	}
	d.Engine.SubmitCause(f.Type, f.Class, detected, func(o remediation.Outcome) {
		if o.Repaired {
			d.health.RecordRepair(d.sim.Now(), f.Type.String())
			return
		}
		// The incident's cause is the engine's escalation record when the
		// journal is on, the detection record otherwise (both zero when
		// off — recordIncident then journals nothing with a parent).
		cause := o.Journal
		if cause == 0 {
			cause = detected
		}
		d.recordIncident(f, cause)
	})
}

// recordIncident escalates f into a SEV report; cause is the journal ID
// the incident records are parented on (0 with no journal attached).
func (d *Driver) recordIncident(f Fault, cause journal.ID) {
	f.ensureDevice()
	details := d.details
	rep := d.representative(details, f.Type)
	as, err := d.Assessor.Assess(rep, f.Scope)
	if err != nil {
		panic(fmt.Sprintf("faults: assessing %s: %v", rep, err))
	}
	resolution := d.resolutionHours(details, f.Year)
	duration := resolution * (0.05 + 0.45*details.Float64())
	report := sev.Report{
		Severity:         as.Severity,
		Device:           f.Device,
		RootCauses:       d.drawRootCauses(details),
		Start:            f.Start,
		Duration:         duration,
		Resolution:       resolution,
		Year:             f.Year,
		Title:            fmt.Sprintf("%s on %s (%s scope)", f.Class, f.Device, f.Scope),
		Impact:           as.Impact,
		ServicesAffected: as.Services,
		Reviewed:         true,
	}
	id, err := d.Store.Add(report)
	if err != nil {
		panic(fmt.Sprintf("faults: storing SEV: %v", err))
	}
	d.incidents++
	opened := d.jlane.Record(journal.Record{
		Kind: journal.IncidentOpened, Parent: cause, Time: f.Start,
		Ref: int32(id), Dev: uint8(f.Type), Class: int8(f.Class), Sev: int8(as.Severity),
	})
	d.jlane.Record(journal.Record{
		Kind: journal.IncidentClosed, Parent: opened, Time: f.Start + resolution,
		Aux: resolution, Ref: int32(id), Dev: uint8(f.Type), Class: int8(f.Class), Sev: int8(as.Severity),
	})
	d.health.RecordIncident(f.Start, f.Type.String(), resolution)
	if d.logger != nil {
		d.logger.Info("incident escalated",
			slog.Int("sev", id),
			slog.String("device", f.Device),
			slog.String("severity", as.Severity.String()),
			slog.Float64("resolution_hours", resolution),
			obs.SimHours(f.Start))
	}
}

// representative maps a virtual device to a same-type device in the
// representative topology for impact assessment. Sampling is capped to
// eight devices per type: redundancy structure is identical across a type's
// devices, and the cap keeps the assessor's memoization effective.
func (d *Driver) representative(rng *simrand.Stream, dt topology.DeviceType) string {
	devices := d.repTopo.DevicesOfType(dt)
	n := len(devices)
	if n > 8 {
		n = 8
	}
	return devices[rng.Intn(n)].Name
}

func (d *Driver) drawRootCauses(rng *simrand.Stream) []sev.RootCause {
	weights := make([]float64, 0, len(sev.RootCauses))
	for _, c := range sev.RootCauses {
		weights = append(weights, rootCauseWeights[c])
	}
	first := sev.RootCauses[rng.Weighted(weights)]
	if first == sev.Undetermined {
		// Undetermined SEVs have no recorded cause at all — engineers
		// only described symptoms (§5.1).
		return nil
	}
	causes := []sev.RootCause{first}
	if rng.Bool(multiCauseProb) {
		second := sev.RootCauses[rng.Weighted(weights)]
		if second != first && second != sev.Undetermined {
			causes = append(causes, second)
		}
	}
	return causes
}

// resolutionHours draws an incident resolution time whose yearly p75
// follows the Figure 13 calibration.
func (d *Driver) resolutionHours(rng *simrand.Stream, year int) float64 {
	p75 := resolutionP75[year]
	if p75 == 0 {
		p75 = resolutionP75[fleet.LastYear]
	}
	// For LogNormal(mu, sigma), p75 = exp(mu + 0.6745*sigma).
	mu := math.Log(p75) - 0.6745*resolutionSigma
	return rng.LogNormal(mu, resolutionSigma)
}
