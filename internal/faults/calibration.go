package faults

import (
	"dcnr/internal/fleet"
	"dcnr/internal/obs/health"
	"dcnr/internal/sev"
	"dcnr/internal/topology"
)

// This file holds the generator's calibration: the per-year incident
// volumes and mixes that make the *simulated* operational history
// statistically resemble the production history the paper measured. The
// analysis pipeline (internal/core) never reads these tables — it re-derives
// every statistic from the generated SEV reports, which is what makes the
// reproduction an end-to-end test of the paper's methodology rather than an
// echo of its numbers.

// incidentTotals is the expected number of network SEVs per year. The
// 2011→2017 growth is 9.4×, the figure §5.4 reports, and the values put the
// per-device SEV rate inflection at 2014–2015 (Figure 5).
var incidentTotals = map[int]float64{
	2011: 20,
	2012: 35,
	2013: 60,
	2014: 85,
	2015: 105,
	2016: 135,
	2017: 188,
}

// incidentShares distributes each year's SEVs across device types
// (Figures 7 and 8). The 2017 row realizes §5.4's headline: Core ≈ 34% and
// RSW ≈ 28% of service-level incidents; the 2013–2014 CSA spike drives the
// >1.0 CSA incident rates of §5.2; the fabric types ramp from 2015. Each
// row sums to 1.
var incidentShares = map[int]map[topology.DeviceType]float64{
	2011: {topology.Core: 0.30, topology.CSA: 0.12, topology.CSW: 0.38, topology.RSW: 0.20},
	2012: {topology.Core: 0.28, topology.CSA: 0.16, topology.CSW: 0.36, topology.RSW: 0.20},
	2013: {topology.Core: 0.22, topology.CSA: 0.30, topology.CSW: 0.28, topology.RSW: 0.20},
	2014: {topology.Core: 0.19, topology.CSA: 0.21, topology.CSW: 0.38, topology.RSW: 0.22},
	2015: {topology.Core: 0.24, topology.CSA: 0.052, topology.CSW: 0.386, topology.ESW: 0.01, topology.SSW: 0.01, topology.FSW: 0.042, topology.RSW: 0.26},
	2016: {topology.Core: 0.29, topology.CSA: 0.02, topology.CSW: 0.306, topology.ESW: 0.02, topology.SSW: 0.014, topology.FSW: 0.07, topology.RSW: 0.28},
	2017: {topology.Core: 0.36, topology.CSA: 0.02, topology.CSW: 0.207, topology.ESW: 0.026, topology.SSW: 0.017, topology.FSW: 0.07, topology.RSW: 0.30},
}

// rootCauseWeights is Table 2: the root-cause mix of network SEVs.
// Undetermined absorbs the residual so the weights sum to 100.
var rootCauseWeights = map[sev.RootCause]float64{
	sev.Maintenance:   17,
	sev.Hardware:      13,
	sev.Configuration: 13,
	sev.Bug:           12,
	sev.Accident:      10,
	sev.Capacity:      5,
	sev.Undetermined:  30,
}

// multiCauseProb is the probability a SEV carries a second root cause
// (§5.1 counts such SEVs toward multiple categories).
const multiCauseProb = 0.05

// scopeWeights calibrates, per device type, how often an escalated fault
// consumed one device, half its redundancy group under load, or the whole
// group. Pushed through the service-impact assessor these produce severity
// mixes near Figure 4's: Core ≈ 81/15/4, RSW ≈ 85/10/5, cluster types with
// relatively more SEV1s, fabric types with fewer. Order: device, group,
// unit.
var scopeWeights = map[topology.DeviceType][]float64{
	topology.Core: {81, 15, 4},
	topology.CSA:  {78, 14, 8},
	topology.CSW:  {80, 13, 7},
	topology.ESW:  {84, 13, 3},
	topology.SSW:  {84, 13, 3},
	topology.FSW:  {84, 13, 3},
	topology.RSW:  {85, 10, 5},
}

// resolutionP75 is the target 75th-percentile incident resolution time in
// hours per year (Figure 13): resolution times grow roughly 50× over the
// study as fleets grow and release processes become more thorough (§5.6).
var resolutionP75 = map[int]float64{
	2011: 3,
	2012: 6,
	2013: 12,
	2014: 24,
	2015: 48,
	2016: 90,
	2017: 160,
}

// resolutionSigma is the log-normal shape of resolution times; the p75
// targets pin the location parameter per year.
const resolutionSigma = 1.2

// escalationProb returns the probability that a fault on a device of type t
// cannot be repaired (by automation from 2013, by the manual repair desk
// before): §4.1.2's 1-in-397 (RSW), 1-in-214 (FSW), 1-in-4 (Core). Types
// without repair support escalate always.
func escalationProb(t topology.DeviceType) float64 {
	switch t {
	case topology.RSW:
		return 1.0 / 397
	case topology.FSW:
		return 1.0 / 214
	case topology.Core:
		return 1.0 / 4
	default:
		return 1
	}
}

// IncidentTarget returns the calibrated expected number of incidents for a
// device type in a year.
func IncidentTarget(year int, t topology.DeviceType) float64 {
	return incidentTotals[year] * incidentShares[year][t]
}

// TotalIncidentTarget returns the calibrated expected number of incidents
// across all device types in a year.
func TotalIncidentTarget(year int) float64 { return incidentTotals[year] }

// HealthTargets derives the streaming SLO objectives for a fleet from the
// same calibration tables that shape the generator: the health engine's
// error budgets are the expected incident volumes (scaled like the fleet),
// its MTTR objectives the Figure 13 resolution-p75 targets, and its MTBF
// denominators the per-year populations. This is the one place the
// calibration crosses into the observability plane; package health itself
// stays ignorant of the generator.
func HealthTargets(fl *fleet.Model) health.Targets {
	t := health.Targets{
		EpochYear:  fleet.FirstYear,
		Expected:   make(map[int]map[string]float64, fleet.NumYears),
		Population: make(map[int]map[string]int, fleet.NumYears),
		MTTRp75:    make(map[int]float64, fleet.NumYears),
	}
	for year := fleet.FirstYear; year <= fleet.LastYear; year++ {
		exp := make(map[string]float64)
		pop := make(map[string]int)
		for dt, n := range fl.Populations(year) {
			pop[dt.String()] = n
			if e := IncidentTarget(year, dt) * float64(fl.Scale()); e > 0 {
				exp[dt.String()] = e
			}
		}
		t.Expected[year] = exp
		t.Population[year] = pop
		t.MTTRp75[year] = resolutionP75[year]
	}
	return t
}
