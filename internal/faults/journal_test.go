package faults

import (
	"bytes"
	"testing"

	"dcnr/internal/fleet"
	"dcnr/internal/obs/journal"
	"dcnr/internal/sev"
)

// journaledRun runs [from, to] at the given seed with a journal attached
// and returns the driver, store, and journal.
func journaledRun(t *testing.T, seed uint64, from, to int) (*Driver, *sev.Store, *journal.Journal) {
	t.Helper()
	d, err := NewDriver(fleet.New(1), seed)
	if err != nil {
		t.Fatalf("NewDriver: %v", err)
	}
	j := NewJournal()
	d.SetJournal(j)
	store, err := d.Run(from, to)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return d, store, j
}

// TestJournalChainsComplete is the core causal invariant: every record —
// and in particular every closed incident — resolves to a complete chain
// rooted at a FaultRaised record, across both the manual era (2011–2012)
// and the automated era.
func TestJournalChainsComplete(t *testing.T) {
	d, store, j := journaledRun(t, 42, fleet.FirstYear, fleet.AutomatedRepairYear)
	x := j.Index()
	if x.Len() == 0 {
		t.Fatalf("journaled run produced no records")
	}
	s := x.Summary()
	if s.Faults != d.Faults() {
		t.Fatalf("journal faults = %d, driver faults = %d", s.Faults, d.Faults())
	}
	if s.Incidents != d.Incidents() {
		t.Fatalf("journal incidents = %d, driver incidents = %d", s.Incidents, d.Incidents())
	}
	if s.Incidents == 0 {
		t.Fatalf("run produced no incidents; widen the year range")
	}
	if s.CompleteChains != s.Incidents || s.Incomplete != 0 {
		t.Fatalf("%d/%d incident chains complete (%d incomplete)",
			s.CompleteChains, s.Incidents, s.Incomplete)
	}
	for _, closed := range x.Incidents() {
		if !x.Complete(closed.ID) {
			t.Fatalf("incident %d (SEV %d) has a broken chain: %+v",
				closed.ID, closed.Ref, x.Chain(closed.ID))
		}
		if closed.Ref == 0 {
			t.Fatalf("incident %d carries no SEV reference", closed.ID)
		}
		if _, err := store.Get(int(closed.Ref)); err != nil {
			t.Fatalf("incident %d references unknown SEV %d: %v", closed.ID, closed.Ref, err)
		}
	}
	// Automated-era incidents must have gone through the remediation
	// engine: their chains carry ticket_cut and escalated records.
	sawEscalated := false
	for _, closed := range x.Incidents() {
		for _, r := range x.Chain(closed.ID) {
			if r.Kind == journal.Escalated {
				sawEscalated = true
			}
		}
	}
	if !sawEscalated {
		t.Fatalf("no incident chain passed through an escalation record")
	}
}

// TestJournalDoesNotPerturbDataset pins the no-observer-effect contract:
// the same seed produces a byte-identical SEV dataset with and without a
// journal attached.
func TestJournalDoesNotPerturbDataset(t *testing.T) {
	_, journaled, _ := journaledRun(t, 7, fleet.FirstYear, fleet.AutomatedRepairYear)

	plain, err := NewDriver(fleet.New(1), 7)
	if err != nil {
		t.Fatalf("NewDriver: %v", err)
	}
	plainStore, err := plain.Run(fleet.FirstYear, fleet.AutomatedRepairYear)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	var a, b bytes.Buffer
	if err := journaled.WriteJSON(&a); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := plainStore.WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("journaled run changed the SEV dataset (%d vs %d bytes)", a.Len(), b.Len())
	}
}

// TestJournalDeterministicAcrossRuns pins that two identically-seeded
// journaled runs serialize byte-identical JSONL.
func TestJournalDeterministicAcrossRuns(t *testing.T) {
	_, _, j1 := journaledRun(t, 11, fleet.AutomatedRepairYear, fleet.AutomatedRepairYear)
	_, _, j2 := journaledRun(t, 11, fleet.AutomatedRepairYear, fleet.AutomatedRepairYear)
	var a, b bytes.Buffer
	if err := j1.WriteJSONL(&a); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if err := j2.WriteJSONL(&b); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if a.Len() == 0 || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("journal JSONL not deterministic (%d vs %d bytes)", a.Len(), b.Len())
	}
}

// TestAttachJournalProvenance pins the journal→SEV bridge: every incident
// in the store gains a provenance side record with a root-first chain,
// and the store's JSON serialization is unchanged by the attachment.
func TestAttachJournalProvenance(t *testing.T) {
	_, store, j := journaledRun(t, 42, fleet.FirstYear, fleet.AutomatedRepairYear)
	var before bytes.Buffer
	if err := store.WriteJSON(&before); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}

	x := j.Index()
	n := sev.AttachJournal(store, x)
	if n != store.Len() {
		t.Fatalf("AttachJournal attached %d of %d reports", n, store.Len())
	}
	reports := store.Query().Reports()
	for _, r := range reports {
		p, ok := store.Provenance(r.ID)
		if !ok {
			t.Fatalf("SEV %d has no provenance", r.ID)
		}
		if p.SEV != r.ID || len(p.Records) < 3 {
			t.Fatalf("SEV %d provenance = %+v", r.ID, p)
		}
		root, ok := x.Get(p.Records[0])
		if !ok || root.Kind != journal.FaultRaised {
			t.Fatalf("SEV %d provenance chain does not start at fault_raised: %+v", r.ID, p)
		}
		if p.ResolutionHours != r.Resolution {
			t.Fatalf("SEV %d provenance resolution %g != report %g", r.ID, p.ResolutionHours, r.Resolution)
		}
	}

	var after bytes.Buffer
	if err := store.WriteJSON(&after); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatalf("attaching provenance changed the report serialization")
	}
}
