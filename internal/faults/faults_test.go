package faults

import (
	"math"
	"testing"

	"dcnr/internal/fleet"
	"dcnr/internal/sev"
	"dcnr/internal/topology"
)

func runDriver(t *testing.T, seed uint64, from, to int) (*Driver, *sev.Store) {
	t.Helper()
	d, err := NewDriver(fleet.New(1), seed)
	if err != nil {
		t.Fatal(err)
	}
	store, err := d.Run(from, to)
	if err != nil {
		t.Fatal(err)
	}
	return d, store
}

func TestCalibrationTablesConsistent(t *testing.T) {
	for year := fleet.FirstYear; year <= fleet.LastYear; year++ {
		if incidentTotals[year] <= 0 {
			t.Errorf("no incident total for %d", year)
		}
		sum := 0.0
		for _, share := range incidentShares[year] {
			sum += share
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%d shares sum to %v, want 1", year, sum)
		}
		if resolutionP75[year] <= 0 {
			t.Errorf("no resolution target for %d", year)
		}
	}
	// Incident growth 2011→2017 must be the paper's 9.4×.
	growth := incidentTotals[2017] / incidentTotals[2011]
	if math.Abs(growth-9.4) > 0.1 {
		t.Errorf("incident growth = %.2f, want 9.4", growth)
	}
}

func TestScopeWeightsCoverAllTypes(t *testing.T) {
	for _, dt := range topology.IntraDCTypes {
		w, ok := scopeWeights[dt]
		if !ok || len(w) != 3 {
			t.Errorf("scope weights missing for %v", dt)
		}
	}
}

func TestEscalationProbs(t *testing.T) {
	if got := escalationProb(topology.RSW); got != 1.0/397 {
		t.Errorf("RSW escalation = %v", got)
	}
	if got := escalationProb(topology.CSA); got != 1 {
		t.Errorf("CSA escalation = %v", got)
	}
}

func TestRunRejectsBadYearRange(t *testing.T) {
	d, err := NewDriver(fleet.New(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{2010, 2011}, {2017, 2018}, {2015, 2012}} {
		if _, err := d.Run(r[0], r[1]); err == nil {
			t.Errorf("Run(%d, %d) accepted", r[0], r[1])
		}
	}
}

func TestSingleYearVolumes(t *testing.T) {
	d, store := runDriver(t, 42, 2017, 2017)
	got := float64(store.Len())
	want := TotalIncidentTarget(2017)
	if math.Abs(got-want) > 4*math.Sqrt(want) {
		t.Errorf("2017 incidents = %v, want ~%v", got, want)
	}
	if d.Incidents() != store.Len() {
		t.Errorf("Incidents() = %d, store has %d", d.Incidents(), store.Len())
	}
	if d.Faults() <= store.Len() {
		t.Errorf("faults (%d) should vastly exceed incidents (%d)", d.Faults(), store.Len())
	}
}

func TestFaultsVastlyOutnumberIncidents(t *testing.T) {
	// §4.1: the vast majority of issues are repaired by automation. With
	// RSW raw faults at ~397× incidents, total faults should be >50×
	// incidents in 2017.
	d, store := runDriver(t, 7, 2017, 2017)
	if ratio := float64(d.Faults()) / float64(store.Len()); ratio < 50 {
		t.Errorf("fault:incident ratio = %.1f, want > 50", ratio)
	}
}

func TestSevenYearRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full seven-year run")
	}
	_, store := runDriver(t, 1, fleet.FirstYear, fleet.LastYear)
	want := 0.0
	for y := fleet.FirstYear; y <= fleet.LastYear; y++ {
		want += TotalIncidentTarget(y)
	}
	got := float64(store.Len())
	if math.Abs(got-want) > 4*math.Sqrt(want) {
		t.Errorf("total incidents = %v, want ~%v", got, want)
	}
	// No fabric SEVs before deployment.
	for y := fleet.FirstYear; y < fleet.FabricDeployYear; y++ {
		if n := store.Query().Year(y).Design(topology.DesignFabric).Count(); n != 0 {
			t.Errorf("%d: %d fabric SEVs before deployment", y, n)
		}
	}
}

func TestReportsAreValidAndParseable(t *testing.T) {
	_, store := runDriver(t, 3, 2016, 2017)
	for _, r := range store.All() {
		if err := r.Validate(); err != nil {
			t.Fatalf("invalid report %d: %v", r.ID, err)
		}
		if _, err := r.DeviceType(); err != nil {
			t.Fatalf("unparseable device %q", r.Device)
		}
		if r.Year != 2016 && r.Year != 2017 {
			t.Fatalf("report year %d outside run range", r.Year)
		}
		yearStart := float64(r.Year-fleet.FirstYear) * 8760
		if r.Start < yearStart || r.Start >= yearStart+8760 {
			t.Fatalf("report start %v outside its year %d", r.Start, r.Year)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	_, s1 := runDriver(t, 99, 2017, 2017)
	_, s2 := runDriver(t, 99, 2017, 2017)
	a, b := s1.All(), s2.All()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Device != b[i].Device || a[i].Severity != b[i].Severity || a[i].Start != b[i].Start {
			t.Fatalf("report %d differs between identical runs", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	_, s1 := runDriver(t, 1, 2017, 2017)
	_, s2 := runDriver(t, 2, 2017, 2017)
	a, b := s1.All(), s2.All()
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i].Device != b[i].Device {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical histories")
		}
	}
}

func TestSeverityMixRoughlyCalibrated(t *testing.T) {
	// Pool several seeds of 2017 for a stable severity mix near the
	// paper's 82/13/5 (Figure 4's N values).
	counts := map[sev.Severity]int{}
	total := 0
	for seed := uint64(0); seed < 5; seed++ {
		_, store := runDriver(t, seed, 2017, 2017)
		for s, n := range store.Query().CountBySeverity() {
			counts[s] += n
			total += n
		}
	}
	frac := func(s sev.Severity) float64 { return float64(counts[s]) / float64(total) }
	if f := frac(sev.Sev3); math.Abs(f-0.82) > 0.06 {
		t.Errorf("SEV3 fraction = %.3f, want ~0.82", f)
	}
	if f := frac(sev.Sev2); math.Abs(f-0.13) > 0.05 {
		t.Errorf("SEV2 fraction = %.3f, want ~0.13", f)
	}
	if f := frac(sev.Sev1); math.Abs(f-0.05) > 0.04 {
		t.Errorf("SEV1 fraction = %.3f, want ~0.05", f)
	}
}

func TestRootCauseMixRoughlyTable2(t *testing.T) {
	counts := map[sev.RootCause]int{}
	reports := 0
	for seed := uint64(0); seed < 5; seed++ {
		_, store := runDriver(t, seed, 2016, 2017)
		for c, n := range store.Query().CountByRootCause() {
			counts[c] += n
		}
		reports += store.Len()
	}
	frac := func(c sev.RootCause) float64 { return float64(counts[c]) / float64(reports) }
	if f := frac(sev.Maintenance); math.Abs(f-0.17) > 0.05 {
		t.Errorf("maintenance fraction = %.3f, want ~0.17", f)
	}
	if f := frac(sev.Undetermined); math.Abs(f-0.29) > 0.06 {
		t.Errorf("undetermined fraction = %.3f, want ~0.29", f)
	}
	// §5.1: human-induced (config+bug) ≈ 2× hardware.
	human := frac(sev.Configuration) + frac(sev.Bug)
	hw := frac(sev.Hardware)
	if ratio := human / hw; ratio < 1.4 || ratio > 2.7 {
		t.Errorf("human:hardware root cause ratio = %.2f, want ~2", ratio)
	}
}

func TestAblationRemediationOff(t *testing.T) {
	// §5.6: without software-managed remediation, incident rates for
	// supported device types explode.
	dOn, err := NewDriver(fleet.New(1), 5)
	if err != nil {
		t.Fatal(err)
	}
	sOn, err := dOn.Run(2017, 2017)
	if err != nil {
		t.Fatal(err)
	}
	dOff, err := NewDriver(fleet.New(1), 5)
	if err != nil {
		t.Fatal(err)
	}
	dOff.Engine.SetEnabled(false)
	sOff, err := dOff.Run(2017, 2017)
	if err != nil {
		t.Fatal(err)
	}
	onRSW := sOn.Query().DeviceType(topology.RSW).Count()
	offRSW := sOff.Query().DeviceType(topology.RSW).Count()
	if offRSW < 50*maxInt(onRSW, 1) {
		t.Errorf("RSW incidents without remediation = %d, with = %d; want ≥50× increase", offRSW, onRSW)
	}
	// Unsupported types are unaffected by the ablation (same raw rate).
	onCSW := sOn.Query().DeviceType(topology.CSW).Count()
	offCSW := sOff.Query().DeviceType(topology.CSW).Count()
	if math.Abs(float64(onCSW-offCSW)) > 4*math.Sqrt(float64(maxInt(onCSW, 1))) {
		t.Errorf("CSW incidents changed under ablation: %d vs %d", onCSW, offCSW)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestTable1StatsEmergeFromRun(t *testing.T) {
	d, _ := runDriver(t, 11, 2017, 2017)
	st := d.Engine.Stats()
	rsw := st[topology.RSW]
	if rsw.Issues < 1000 {
		t.Fatalf("RSW issues = %d, want thousands", rsw.Issues)
	}
	if got := rsw.RepairRatio(); got < 0.99 {
		t.Errorf("RSW repair ratio = %.4f, want ~0.997", got)
	}
	core := st[topology.Core]
	if got := core.RepairRatio(); math.Abs(got-0.75) > 0.12 {
		t.Errorf("Core repair ratio = %.3f, want ~0.75", got)
	}
}

func BenchmarkSevenYearSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := NewDriver(fleet.New(1), uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Run(fleet.FirstYear, fleet.LastYear); err != nil {
			b.Fatal(err)
		}
	}
}
