// Package remediation implements the automated repair system of §4.1: the
// software that shields the fleet from the vast majority of device issues.
//
// A detected fault is submitted to the Engine, which decides whether
// automation can handle it. Supported device types (RSWs and FSWs fully,
// Core devices partially — Facebook's own software stack is not pervasive
// there) get a repair scheduled: the engine assigns a priority from 0
// (highest) to 3 (lowest), the repair waits in the queue according to its
// priority and the device type's backlog, then executes in seconds. Faults
// automation cannot fix escalate to humans and become network incidents —
// exactly the population the paper's intra-DC study analyzes (§4.1.3).
package remediation

import (
	"fmt"
	"log/slog"
	"sync"

	"dcnr/internal/des"
	"dcnr/internal/obs"
	"dcnr/internal/obs/journal"
	"dcnr/internal/simrand"
	"dcnr/internal/topology"
)

// FaultClass is the taxonomy of device issues §4.1.3 reports, with its
// observed remediation shares.
type FaultClass int

const (
	// PortPingFailure is an unresponsive device port (50% of
	// remediations), repaired by turning the port off and on again.
	PortPingFailure FaultClass = iota
	// ConfigBackupFailure is a configuration file backup failure (32.4%),
	// repaired by restarting the configuration service and reestablishing
	// a secure shell connection.
	ConfigBackupFailure
	// FanFailure is a failed fan (4.5%); automation extracts failure
	// details and alerts a technician.
	FanFailure
	// DevicePingFailure means the liveness monitor cannot ping the device
	// (4.0%); automation collects details and assigns a technician task.
	DevicePingFailure
	// OtherFailure covers the remaining 9.1% of issue types.
	OtherFailure

	numFaultClasses = int(OtherFailure) + 1
)

// FaultClasses lists every fault class.
var FaultClasses = []FaultClass{PortPingFailure, ConfigBackupFailure, FanFailure, DevicePingFailure, OtherFailure}

// ClassShares returns the observed share of each fault class among
// remediations (§4.1.3), usable as weights for a categorical draw.
func ClassShares() []float64 { return []float64{50.0, 32.4, 4.5, 4.0, 9.1} }

var faultClassNames = [numFaultClasses]string{
	"port ping failure",
	"configuration backup failure",
	"fan failure",
	"device ping failure",
	"other failure",
}

var faultClassActions = [numFaultClasses]string{
	"turn the port off and on again",
	"restart the configuration service and reestablish a secure shell connection",
	"extract failure details and alert a technician to examine the faulty fan",
	"collect details about the device and assign a task to a technician",
	"run device triage playbook",
}

// String names the fault class.
func (c FaultClass) String() string {
	if c < 0 || int(c) >= numFaultClasses {
		return fmt.Sprintf("FaultClass(%d)", int(c))
	}
	return faultClassNames[c]
}

// Action describes the automated repair applied for this class.
func (c FaultClass) Action() string {
	if c < 0 || int(c) >= numFaultClasses {
		return "unknown"
	}
	return faultClassActions[c]
}

// policy captures a device type's remediation behaviour, calibrated to
// Table 1 and §4.1.2.
type policy struct {
	supported bool
	// escalate is the probability automation cannot fix an issue (1 -
	// repair ratio): Core 1/4, FSW 1/214, RSW 1/397.
	escalate float64
	// priorityWeights gives the categorical distribution over priorities
	// 0..3.
	priorityWeights []float64
	// meanWaitHours is the average queueing delay before the repair runs.
	meanWaitHours float64
	// meanRepairSeconds is the average execution time of the repair.
	meanRepairSeconds float64
}

var policies = map[topology.DeviceType]policy{
	// Core repairs are always priority 0 and wait ~4 minutes; only 75% of
	// issues are automatable because most Cores run vendor firmware.
	topology.Core: {
		supported:         true,
		escalate:          1.0 / 4,
		priorityWeights:   []float64{1, 0, 0, 0},
		meanWaitHours:     4.0 / 60,
		meanRepairSeconds: 30.1,
	},
	// FSW: average priority 2.25, wait ~3 days, repair 4.45 s.
	topology.FSW: {
		supported:         true,
		escalate:          1.0 / 214,
		priorityWeights:   []float64{5, 10, 40, 45},
		meanWaitHours:     72,
		meanRepairSeconds: 4.45,
	},
	// RSW: average priority 2.22, wait ~1 day, repair 2.91 s.
	topology.RSW: {
		supported:         true,
		escalate:          1.0 / 397,
		priorityWeights:   []float64{5, 10, 43, 42},
		meanWaitHours:     24,
		meanRepairSeconds: 2.91,
	},
}

// Supported reports whether automated remediation covers the device type
// (§4.1.2: RSWs, FSWs, and some Core devices).
func Supported(t topology.DeviceType) bool { return policies[t].supported }

// Outcome reports what the engine did with a submitted fault.
type Outcome struct {
	// Repaired is true when automation fixed the issue; false means the
	// fault escalated to a human and becomes a network incident.
	Repaired bool
	// Priority is the assigned repair priority, 0 (highest) to 3
	// (lowest); -1 when the fault escalated without a repair attempt.
	Priority int
	// WaitHours is the time the repair waited in the queue.
	WaitHours float64
	// RepairSeconds is the repair's execution time.
	RepairSeconds float64
	// Action describes the repair that ran.
	Action string
	// Journal is the causal ID of the engine's terminal journal record
	// for this fault — the Repaired record for automated fixes, the
	// Escalated record otherwise — so the caller can parent follow-up
	// records (an incident) on it. 0 when the engine has no journal.
	Journal journal.ID
}

// TypeStats aggregates Table 1's per-device-type columns.
type TypeStats struct {
	Issues           int
	Repaired         int
	Escalated        int
	sumPriority      float64
	sumWaitHours     float64
	sumRepairSeconds float64
	prioritizedCount int
}

// RepairRatio is the fraction of issues automation fixed.
func (s TypeStats) RepairRatio() float64 {
	if s.Issues == 0 {
		return 0
	}
	return float64(s.Repaired) / float64(s.Issues)
}

// AvgPriority is the mean assigned priority among attempted repairs.
func (s TypeStats) AvgPriority() float64 {
	if s.prioritizedCount == 0 {
		return 0
	}
	return s.sumPriority / float64(s.prioritizedCount)
}

// AvgWaitHours is the mean queueing delay among attempted repairs.
func (s TypeStats) AvgWaitHours() float64 {
	if s.prioritizedCount == 0 {
		return 0
	}
	return s.sumWaitHours / float64(s.prioritizedCount)
}

// AvgRepairSeconds is the mean repair execution time.
func (s TypeStats) AvgRepairSeconds() float64 {
	if s.prioritizedCount == 0 {
		return 0
	}
	return s.sumRepairSeconds / float64(s.prioritizedCount)
}

// Engine is the automated repair system. It is driven by a des.Simulator:
// Submit schedules the repair's wait and execution as simulation events.
//
// Submit may be called from multiple goroutines: statistics, randomness,
// and the simulator's event queue are all touched under the engine's
// mutex, so concurrent submissions stay internally consistent. (Running
// the simulator concurrently with Submit is still the caller's problem —
// the DES kernel itself is single-threaded.)
type Engine struct {
	mu      sync.Mutex
	sim     *des.Simulator
	rng     *simrand.Stream
	enabled bool
	stats   map[topology.DeviceType]*TypeStats

	// Telemetry, attached by Instrument; nil fields are no-ops.
	mSubmitted *obs.Counter
	mRepaired  *obs.Counter
	mEscalated *obs.Counter
	gQueue     *obs.Gauge
	hWait      *obs.Histogram
	hRepair    *obs.Histogram
	tracer     *obs.Tracer
	// rings holds one batched span recorder per supported device type
	// (indexed by the type constant). Repairs are by far the most frequent
	// trace record the whole simulation produces (~one per fault), so the
	// hot path stages 48-byte records instead of building an args map and
	// taking the tracer lock each time. Submit's mutex satisfies the rings'
	// single-writer contract; FlushTrace publishes the tails.
	rings  []*obs.SpanRing
	logger *slog.Logger
	// jlane is the engine's causal-journal lane: ticket-cut, dispatch,
	// escalation, and repair records, parented on the IDs callers pass to
	// SubmitCause. Submit's mutex satisfies the lane's single-writer
	// contract; a nil lane is a no-op.
	jlane *journal.Lane
}

// NewEngine returns an enabled Engine drawing randomness from rng and
// scheduling on sim.
func NewEngine(sim *des.Simulator, rng *simrand.Stream) *Engine {
	return &Engine{
		sim:     sim,
		rng:     rng,
		enabled: true,
		stats:   make(map[topology.DeviceType]*TypeStats),
	}
}

// Instrument attaches telemetry to the engine. Metrics registered on reg:
// remediation_submitted_total, remediation_repaired_total, and
// remediation_escalated_total (counters — escalated/submitted is the
// escalation ratio), remediation_queue_depth (gauge of repairs currently
// waiting or executing), and the remediation_wait_hours /
// remediation_repair_seconds histograms. When tr is non-nil each automated
// repair records a submit→outcome span on the simulation-time track (one
// lane per device type) and each escalation an instant marker. Repair spans
// are staged in per-type ring buffers; call FlushTrace before reading the
// trace. Either argument may be nil.
func (e *Engine) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if reg != nil {
		e.mSubmitted = reg.Counter("remediation_submitted_total")
		e.mRepaired = reg.Counter("remediation_repaired_total")
		e.mEscalated = reg.Counter("remediation_escalated_total")
		e.gQueue = reg.Gauge("remediation_queue_depth")
		e.hWait = reg.Histogram("remediation_wait_hours",
			[]float64{0.05, 0.25, 1, 6, 24, 72, 168, 336})
		e.hRepair = reg.Histogram("remediation_repair_seconds",
			[]float64{1, 2, 5, 10, 30, 60, 120, 300})
	}
	e.tracer = tr
	e.rings = nil
	if tr != nil {
		e.rings = make([]*obs.SpanRing, int(topology.BBR)+1)
		for t := topology.DeviceType(0); int(t) < len(e.rings); t++ {
			if !policies[t].supported {
				continue
			}
			// The device type is carried by the lane, named once via
			// thread_name metadata, rather than repeated as an arg on
			// each of tens of thousands of repair spans.
			tr.Emit(obs.Event{Name: "thread_name", Phase: "M",
				PID: obs.SimPID, TID: int(t) + 1,
				Args: map[string]any{"name": t.String() + " remediation"}})
			e.rings[t] = tr.Ring(obs.SimPID, int(t)+1, "remediation", "repair",
				"priority", "wait_hours", "repair_seconds").
				SetNames(faultClassNames[:]...)
		}
	}
}

// FlushTrace publishes any repair spans still staged in the engine's ring
// buffers to the tracer, and any journal records still staged in its
// lane. Call after the simulation finishes, before the trace or journal
// is read or written; the faults driver does this at the end of Run.
func (e *Engine) FlushTrace() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range e.rings {
		r.Flush()
	}
	e.jlane.Flush()
}

// SetJournal attaches a causal journal: every submission records a
// ticket-cut entry parented on the fault's detection record (the cause ID
// passed to SubmitCause), then either a dispatched→repaired pair or an
// escalated record. Call before Run; nil detaches.
func (e *Engine) SetJournal(j *journal.Journal) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if j == nil {
		e.jlane = nil
		return
	}
	e.jlane = j.Lane("remediation")
}

// SetLogger attaches a structured logger: escalations log at debug with
// the simulation clock (incidents themselves are logged upstream by the
// faults driver, so info stays readable). Nil detaches.
func (e *Engine) SetLogger(l *slog.Logger) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.logger = l
}

// SetEnabled turns the engine on or off. A disabled engine escalates every
// fault — the §5.6 ablation.
func (e *Engine) SetEnabled(v bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.enabled = v
}

// Enabled reports whether automation is active.
func (e *Engine) Enabled() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.enabled
}

// Submit hands a detected fault on a device of type t to the engine. The
// done callback fires (as a simulation event) once the outcome is known:
// immediately for escalations, after wait+repair for automated fixes.
// Submit is safe to call concurrently; the event scheduling happens under
// the engine's mutex.
func (e *Engine) Submit(t topology.DeviceType, class FaultClass, done func(Outcome)) {
	e.SubmitCause(t, class, 0, done)
}

// SubmitCause is Submit with causal provenance: cause is the journal ID
// of the record that led to this submission (the fault's detection
// record), and becomes the parent of the ticket-cut entry the engine
// journals. With no journal attached — or a zero cause — the records are
// simply not written and SubmitCause behaves exactly like Submit.
func (e *Engine) SubmitCause(t topology.DeviceType, class FaultClass, cause journal.ID, done func(Outcome)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.stats[t]
	if st == nil {
		st = &TypeStats{}
		e.stats[t] = st
	}
	st.Issues++
	e.mSubmitted.Inc()
	now := e.sim.Now()
	ticket := e.jlane.Record(journal.Record{
		Kind: journal.TicketCut, Parent: cause, Time: now,
		Dev: uint8(t), Class: int8(class), Sev: -1,
	})

	pol := policies[t]
	if !e.enabled || !pol.supported || e.rng.Bool(pol.escalate) {
		st.Escalated++
		e.mEscalated.Inc()
		esc := e.jlane.Record(journal.Record{
			Kind: journal.Escalated, Parent: ticket, Time: now,
			Dev: uint8(t), Class: int8(class), Sev: -1,
		})
		if e.logger != nil {
			e.logger.Debug("repair escalated",
				slog.String("device_type", t.String()),
				slog.String("class", class.String()),
				obs.SimHours(e.sim.Now()))
		}
		if e.tracer != nil {
			e.tracer.SimInstant(int(t)+1, "remediation", "escalated: "+class.String(),
				e.sim.Now(), map[string]any{"device_type": t.String()})
		}
		e.sim.After(0, func(float64) {
			done(Outcome{Repaired: false, Priority: -1, Journal: esc})
		})
		return
	}

	priority := e.rng.Weighted(pol.priorityWeights)
	wait := e.rng.Exp(pol.meanWaitHours)
	// LogNormal(-σ²/2, σ) has mean exactly 1, so the repair-time average
	// matches the policy's calibrated mean.
	repairSec := e.rng.LogNormal(-0.125, 0.5) * pol.meanRepairSeconds
	st.Repaired++
	st.prioritizedCount++
	st.sumPriority += float64(priority)
	st.sumWaitHours += wait
	st.sumRepairSeconds += repairSec
	e.mRepaired.Inc()
	e.hWait.Observe(wait)
	e.hRepair.Observe(repairSec)
	e.gQueue.Add(1)
	if int(t) < len(e.rings) {
		e.rings[t].Record(int32(class), obs.SimMicros(e.sim.Now()),
			obs.SimMicros(wait+repairSec/3600),
			float64(priority), wait, repairSec)
	}
	// Journal the rest of the lifecycle up front: the dispatch and repair
	// times are already decided, and recording both here (rather than
	// inside the completion event) keeps the lane single-writer under this
	// mutex. The JSONL output is ID-ordered, so the future-timestamped
	// repair record lands in causal order regardless.
	disp := e.jlane.Record(journal.Record{
		Kind: journal.Dispatched, Parent: ticket, Time: now + wait, Aux: wait,
		Dev: uint8(t), Class: int8(class), Sev: -1,
	})
	rep := e.jlane.Record(journal.Record{
		Kind: journal.Repaired, Parent: disp, Time: now + wait + repairSec/3600, Aux: repairSec,
		Dev: uint8(t), Class: int8(class), Sev: -1,
	})

	out := Outcome{
		Repaired:      true,
		Priority:      priority,
		WaitHours:     wait,
		RepairSeconds: repairSec,
		Action:        class.Action(),
		Journal:       rep,
	}
	gQueue := e.gQueue
	e.sim.After(wait+repairSec/3600, func(float64) {
		gQueue.Add(-1)
		done(out)
	})
}

// Stats returns a copy of the per-type statistics accumulated so far.
func (e *Engine) Stats() map[topology.DeviceType]TypeStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[topology.DeviceType]TypeStats, len(e.stats))
	for t, s := range e.stats {
		out[t] = *s
	}
	return out
}
