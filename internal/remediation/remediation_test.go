package remediation

import (
	"math"
	"strings"
	"sync"
	"testing"

	"dcnr/internal/des"
	"dcnr/internal/obs"
	"dcnr/internal/simrand"
	"dcnr/internal/topology"
)

func newTestEngine() (*Engine, *des.Simulator) {
	sim := &des.Simulator{}
	return NewEngine(sim, simrand.New(7)), sim
}

func TestFaultClassStrings(t *testing.T) {
	for _, c := range FaultClasses {
		if strings.Contains(c.String(), "FaultClass(") {
			t.Errorf("class %d has no name", c)
		}
		if c.Action() == "unknown" {
			t.Errorf("class %d has no action", c)
		}
	}
	if FaultClass(99).Action() != "unknown" {
		t.Error("out-of-range action")
	}
	if !strings.Contains(FaultClass(99).String(), "99") {
		t.Error("out-of-range String")
	}
}

func TestClassSharesMatchPaper(t *testing.T) {
	shares := ClassShares()
	if len(shares) != len(FaultClasses) {
		t.Fatal("shares length mismatch")
	}
	sum := 0.0
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-100) > 0.01 {
		t.Errorf("shares sum = %v, want 100", sum)
	}
	if shares[PortPingFailure] != 50.0 || shares[ConfigBackupFailure] != 32.4 {
		t.Error("§4.1.3 shares wrong")
	}
}

func TestSupported(t *testing.T) {
	for _, dt := range []topology.DeviceType{topology.RSW, topology.FSW, topology.Core} {
		if !Supported(dt) {
			t.Errorf("%v should be supported", dt)
		}
	}
	for _, dt := range []topology.DeviceType{topology.CSA, topology.CSW, topology.ESW, topology.SSW, topology.BBR} {
		if Supported(dt) {
			t.Errorf("%v should not be supported", dt)
		}
	}
}

func TestUnsupportedTypeAlwaysEscalates(t *testing.T) {
	e, sim := newTestEngine()
	escalated := 0
	for i := 0; i < 100; i++ {
		e.Submit(topology.CSA, PortPingFailure, func(o Outcome) {
			if !o.Repaired {
				escalated++
			}
			if o.Priority != -1 {
				t.Error("escalated fault has a priority")
			}
		})
	}
	sim.Run(1000)
	if escalated != 100 {
		t.Errorf("escalated = %d, want 100", escalated)
	}
}

func TestDisabledEngineEscalatesEverything(t *testing.T) {
	e, sim := newTestEngine()
	e.SetEnabled(false)
	if e.Enabled() {
		t.Fatal("SetEnabled(false) ignored")
	}
	repaired := 0
	for i := 0; i < 200; i++ {
		e.Submit(topology.RSW, PortPingFailure, func(o Outcome) {
			if o.Repaired {
				repaired++
			}
		})
	}
	sim.Run(10000)
	if repaired != 0 {
		t.Errorf("disabled engine repaired %d faults", repaired)
	}
}

func TestRepairRatiosMatchTable1(t *testing.T) {
	e, sim := newTestEngine()
	const n = 20000
	for _, dt := range []topology.DeviceType{topology.RSW, topology.FSW, topology.Core} {
		for i := 0; i < n; i++ {
			e.Submit(dt, PortPingFailure, func(Outcome) {})
		}
	}
	sim.Run(1e9)
	st := e.Stats()
	cases := map[topology.DeviceType]float64{
		topology.RSW:  1 - 1.0/397, // 99.7%
		topology.FSW:  1 - 1.0/214, // 99.5%
		topology.Core: 0.75,
	}
	for dt, want := range cases {
		got := st[dt].RepairRatio()
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%v repair ratio = %.4f, want ~%.4f", dt, got, want)
		}
		if st[dt].Issues != n {
			t.Errorf("%v issues = %d", dt, st[dt].Issues)
		}
		if st[dt].Repaired+st[dt].Escalated != st[dt].Issues {
			t.Errorf("%v repaired+escalated != issues", dt)
		}
	}
}

func TestPrioritiesMatchTable1(t *testing.T) {
	e, sim := newTestEngine()
	const n = 20000
	for _, dt := range []topology.DeviceType{topology.RSW, topology.FSW, topology.Core} {
		for i := 0; i < n; i++ {
			e.Submit(dt, PortPingFailure, func(Outcome) {})
		}
	}
	sim.Run(1e9)
	st := e.Stats()
	if got := st[topology.Core].AvgPriority(); got != 0 {
		t.Errorf("Core avg priority = %v, want 0 (highest)", got)
	}
	if got := st[topology.FSW].AvgPriority(); math.Abs(got-2.25) > 0.05 {
		t.Errorf("FSW avg priority = %v, want ~2.25", got)
	}
	if got := st[topology.RSW].AvgPriority(); math.Abs(got-2.22) > 0.05 {
		t.Errorf("RSW avg priority = %v, want ~2.22", got)
	}
}

func TestWaitAndRepairTimesMatchTable1(t *testing.T) {
	e, sim := newTestEngine()
	const n = 20000
	for _, dt := range []topology.DeviceType{topology.RSW, topology.FSW, topology.Core} {
		for i := 0; i < n; i++ {
			e.Submit(dt, PortPingFailure, func(Outcome) {})
		}
	}
	sim.Run(1e9)
	st := e.Stats()
	// Waits: Core ~4 min, FSW ~3 d, RSW ~1 d.
	if got := st[topology.Core].AvgWaitHours(); math.Abs(got-4.0/60)/(4.0/60) > 0.05 {
		t.Errorf("Core avg wait = %v h, want ~0.0667", got)
	}
	if got := st[topology.FSW].AvgWaitHours(); math.Abs(got-72)/72 > 0.05 {
		t.Errorf("FSW avg wait = %v h, want ~72", got)
	}
	if got := st[topology.RSW].AvgWaitHours(); math.Abs(got-24)/24 > 0.05 {
		t.Errorf("RSW avg wait = %v h, want ~24", got)
	}
	// Repairs: Core ~30.1 s, FSW ~4.45 s, RSW ~2.91 s.
	if got := st[topology.Core].AvgRepairSeconds(); math.Abs(got-30.1)/30.1 > 0.05 {
		t.Errorf("Core avg repair = %v s, want ~30.1", got)
	}
	if got := st[topology.FSW].AvgRepairSeconds(); math.Abs(got-4.45)/4.45 > 0.05 {
		t.Errorf("FSW avg repair = %v s, want ~4.45", got)
	}
	if got := st[topology.RSW].AvgRepairSeconds(); math.Abs(got-2.91)/2.91 > 0.05 {
		t.Errorf("RSW avg repair = %v s, want ~2.91", got)
	}
}

func TestOutcomeTimingOnSimulator(t *testing.T) {
	// The done callback for a repaired fault must fire after the wait, as
	// a simulation event — not immediately.
	e, sim := newTestEngine()
	var doneAt float64 = -1
	var wait float64
	e.Submit(topology.Core, PortPingFailure, func(o Outcome) {
		if o.Repaired {
			doneAt = sim.Now()
			wait = o.WaitHours
		}
	})
	sim.Run(1e6)
	if doneAt < 0 {
		t.Skip("fault escalated on this seed")
	}
	if doneAt < wait {
		t.Errorf("done fired at %v, before the %v wait elapsed", doneAt, wait)
	}
}

func TestStatsZeroValue(t *testing.T) {
	var s TypeStats
	if s.RepairRatio() != 0 || s.AvgPriority() != 0 || s.AvgWaitHours() != 0 || s.AvgRepairSeconds() != 0 {
		t.Error("zero stats should yield zero averages")
	}
}

func TestStatsCopySemantics(t *testing.T) {
	e, sim := newTestEngine()
	e.Submit(topology.RSW, PortPingFailure, func(Outcome) {})
	sim.Run(1e6)
	st := e.Stats()
	s := st[topology.RSW]
	s.Issues = 999
	if e.Stats()[topology.RSW].Issues == 999 {
		t.Error("Stats exposes internal state")
	}
}

func TestStatsConsistentUnderConcurrentSubmit(t *testing.T) {
	// Submit is documented as concurrency-safe: stats, randomness, and the
	// simulator's queue are all guarded by the engine mutex. Hammer it from
	// several goroutines (run under -race via make verify) and assert the
	// per-type accounting stays internally consistent.
	e, sim := newTestEngine()
	const workers = 8
	const per = 500
	types := []topology.DeviceType{topology.RSW, topology.FSW, topology.Core, topology.CSA}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				e.Submit(types[(w+i)%len(types)], PortPingFailure, func(Outcome) {})
			}
		}()
	}
	wg.Wait()
	st := e.Stats()
	total := 0
	for dt, s := range st {
		if s.Repaired+s.Escalated != s.Issues {
			t.Errorf("%v: repaired %d + escalated %d != issues %d", dt, s.Repaired, s.Escalated, s.Issues)
		}
		if s.Repaired > 0 {
			if s.AvgWaitHours() <= 0 || s.AvgRepairSeconds() <= 0 {
				t.Errorf("%v: non-positive averages with %d repairs", dt, s.Repaired)
			}
			if p := s.AvgPriority(); p < 0 || p > 3 {
				t.Errorf("%v: avg priority %v out of range", dt, p)
			}
		}
		total += s.Issues
	}
	if total != workers*per {
		t.Errorf("issues total = %d, want %d", total, workers*per)
	}
	// Every submission scheduled exactly one outcome event; drain them.
	sim.Run(math.Inf(1))
	if got := sim.Fired(); got != workers*per {
		t.Errorf("outcome events fired = %d, want %d", got, workers*per)
	}
}

func TestInstrumentedEngineCounters(t *testing.T) {
	e, sim := newTestEngine()
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	e.Instrument(reg, tr)
	const n = 2000
	for i := 0; i < n; i++ {
		e.Submit(topology.RSW, PortPingFailure, func(Outcome) {})
	}
	for i := 0; i < 100; i++ {
		e.Submit(topology.CSA, FanFailure, func(Outcome) {}) // unsupported → escalates
	}
	snap := reg.Snapshot()
	if got := snap.Counters["remediation_submitted_total"]; got != n+100 {
		t.Errorf("submitted = %d, want %d", got, n+100)
	}
	rep := snap.Counters["remediation_repaired_total"]
	esc := snap.Counters["remediation_escalated_total"]
	if rep+esc != n+100 {
		t.Errorf("repaired %d + escalated %d != submitted %d", rep, esc, n+100)
	}
	if esc < 100 {
		t.Errorf("escalated = %d, want ≥ 100 (all CSA submissions)", esc)
	}
	st := e.Stats()
	if int64(st[topology.RSW].Repaired) != rep {
		t.Errorf("counter repaired %d != stats repaired %d", rep, st[topology.RSW].Repaired)
	}
	// Queue depth: every repaired fault is in flight until its outcome
	// event fires; afterwards the gauge returns to zero.
	if got := snap.Gauges["remediation_queue_depth"]; got != float64(rep) {
		t.Errorf("queue depth before run = %v, want %d", got, rep)
	}
	sim.Run(math.Inf(1))
	if got := reg.Gauge("remediation_queue_depth").Value(); got != 0 {
		t.Errorf("queue depth after run = %v, want 0", got)
	}
	if got := reg.Histogram("remediation_wait_hours", nil).Count(); got != rep {
		t.Errorf("wait histogram count = %d, want %d", got, rep)
	}
	// Trace: one sim-track span per repair (staged in ring buffers until
	// FlushTrace), one instant per escalation.
	e.FlushTrace()
	spans, instants := 0, 0
	for _, ev := range tr.Events() {
		if ev.PID != obs.SimPID {
			continue
		}
		switch ev.Phase {
		case "X":
			spans++
		case "i":
			instants++
		}
	}
	if int64(spans) != rep || int64(instants) != esc {
		t.Errorf("trace spans %d / instants %d, want %d / %d", spans, instants, rep, esc)
	}
}

func BenchmarkSubmit(b *testing.B) {
	sim := &des.Simulator{}
	e := NewEngine(sim, simrand.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Submit(topology.RSW, PortPingFailure, func(Outcome) {})
	}
	sim.Run(math.Inf(1))
}
