package remediation

import (
	"math"
	"strings"
	"testing"

	"dcnr/internal/des"
	"dcnr/internal/simrand"
	"dcnr/internal/topology"
)

func newTestEngine() (*Engine, *des.Simulator) {
	sim := &des.Simulator{}
	return NewEngine(sim, simrand.New(7)), sim
}

func TestFaultClassStrings(t *testing.T) {
	for _, c := range FaultClasses {
		if strings.Contains(c.String(), "FaultClass(") {
			t.Errorf("class %d has no name", c)
		}
		if c.Action() == "unknown" {
			t.Errorf("class %d has no action", c)
		}
	}
	if FaultClass(99).Action() != "unknown" {
		t.Error("out-of-range action")
	}
	if !strings.Contains(FaultClass(99).String(), "99") {
		t.Error("out-of-range String")
	}
}

func TestClassSharesMatchPaper(t *testing.T) {
	shares := ClassShares()
	if len(shares) != len(FaultClasses) {
		t.Fatal("shares length mismatch")
	}
	sum := 0.0
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-100) > 0.01 {
		t.Errorf("shares sum = %v, want 100", sum)
	}
	if shares[PortPingFailure] != 50.0 || shares[ConfigBackupFailure] != 32.4 {
		t.Error("§4.1.3 shares wrong")
	}
}

func TestSupported(t *testing.T) {
	for _, dt := range []topology.DeviceType{topology.RSW, topology.FSW, topology.Core} {
		if !Supported(dt) {
			t.Errorf("%v should be supported", dt)
		}
	}
	for _, dt := range []topology.DeviceType{topology.CSA, topology.CSW, topology.ESW, topology.SSW, topology.BBR} {
		if Supported(dt) {
			t.Errorf("%v should not be supported", dt)
		}
	}
}

func TestUnsupportedTypeAlwaysEscalates(t *testing.T) {
	e, sim := newTestEngine()
	escalated := 0
	for i := 0; i < 100; i++ {
		e.Submit(topology.CSA, PortPingFailure, func(o Outcome) {
			if !o.Repaired {
				escalated++
			}
			if o.Priority != -1 {
				t.Error("escalated fault has a priority")
			}
		})
	}
	sim.Run(1000)
	if escalated != 100 {
		t.Errorf("escalated = %d, want 100", escalated)
	}
}

func TestDisabledEngineEscalatesEverything(t *testing.T) {
	e, sim := newTestEngine()
	e.SetEnabled(false)
	if e.Enabled() {
		t.Fatal("SetEnabled(false) ignored")
	}
	repaired := 0
	for i := 0; i < 200; i++ {
		e.Submit(topology.RSW, PortPingFailure, func(o Outcome) {
			if o.Repaired {
				repaired++
			}
		})
	}
	sim.Run(10000)
	if repaired != 0 {
		t.Errorf("disabled engine repaired %d faults", repaired)
	}
}

func TestRepairRatiosMatchTable1(t *testing.T) {
	e, sim := newTestEngine()
	const n = 20000
	for _, dt := range []topology.DeviceType{topology.RSW, topology.FSW, topology.Core} {
		for i := 0; i < n; i++ {
			e.Submit(dt, PortPingFailure, func(Outcome) {})
		}
	}
	sim.Run(1e9)
	st := e.Stats()
	cases := map[topology.DeviceType]float64{
		topology.RSW:  1 - 1.0/397, // 99.7%
		topology.FSW:  1 - 1.0/214, // 99.5%
		topology.Core: 0.75,
	}
	for dt, want := range cases {
		got := st[dt].RepairRatio()
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%v repair ratio = %.4f, want ~%.4f", dt, got, want)
		}
		if st[dt].Issues != n {
			t.Errorf("%v issues = %d", dt, st[dt].Issues)
		}
		if st[dt].Repaired+st[dt].Escalated != st[dt].Issues {
			t.Errorf("%v repaired+escalated != issues", dt)
		}
	}
}

func TestPrioritiesMatchTable1(t *testing.T) {
	e, sim := newTestEngine()
	const n = 20000
	for _, dt := range []topology.DeviceType{topology.RSW, topology.FSW, topology.Core} {
		for i := 0; i < n; i++ {
			e.Submit(dt, PortPingFailure, func(Outcome) {})
		}
	}
	sim.Run(1e9)
	st := e.Stats()
	if got := st[topology.Core].AvgPriority(); got != 0 {
		t.Errorf("Core avg priority = %v, want 0 (highest)", got)
	}
	if got := st[topology.FSW].AvgPriority(); math.Abs(got-2.25) > 0.05 {
		t.Errorf("FSW avg priority = %v, want ~2.25", got)
	}
	if got := st[topology.RSW].AvgPriority(); math.Abs(got-2.22) > 0.05 {
		t.Errorf("RSW avg priority = %v, want ~2.22", got)
	}
}

func TestWaitAndRepairTimesMatchTable1(t *testing.T) {
	e, sim := newTestEngine()
	const n = 20000
	for _, dt := range []topology.DeviceType{topology.RSW, topology.FSW, topology.Core} {
		for i := 0; i < n; i++ {
			e.Submit(dt, PortPingFailure, func(Outcome) {})
		}
	}
	sim.Run(1e9)
	st := e.Stats()
	// Waits: Core ~4 min, FSW ~3 d, RSW ~1 d.
	if got := st[topology.Core].AvgWaitHours(); math.Abs(got-4.0/60)/(4.0/60) > 0.05 {
		t.Errorf("Core avg wait = %v h, want ~0.0667", got)
	}
	if got := st[topology.FSW].AvgWaitHours(); math.Abs(got-72)/72 > 0.05 {
		t.Errorf("FSW avg wait = %v h, want ~72", got)
	}
	if got := st[topology.RSW].AvgWaitHours(); math.Abs(got-24)/24 > 0.05 {
		t.Errorf("RSW avg wait = %v h, want ~24", got)
	}
	// Repairs: Core ~30.1 s, FSW ~4.45 s, RSW ~2.91 s.
	if got := st[topology.Core].AvgRepairSeconds(); math.Abs(got-30.1)/30.1 > 0.05 {
		t.Errorf("Core avg repair = %v s, want ~30.1", got)
	}
	if got := st[topology.FSW].AvgRepairSeconds(); math.Abs(got-4.45)/4.45 > 0.05 {
		t.Errorf("FSW avg repair = %v s, want ~4.45", got)
	}
	if got := st[topology.RSW].AvgRepairSeconds(); math.Abs(got-2.91)/2.91 > 0.05 {
		t.Errorf("RSW avg repair = %v s, want ~2.91", got)
	}
}

func TestOutcomeTimingOnSimulator(t *testing.T) {
	// The done callback for a repaired fault must fire after the wait, as
	// a simulation event — not immediately.
	e, sim := newTestEngine()
	var doneAt float64 = -1
	var wait float64
	e.Submit(topology.Core, PortPingFailure, func(o Outcome) {
		if o.Repaired {
			doneAt = sim.Now()
			wait = o.WaitHours
		}
	})
	sim.Run(1e6)
	if doneAt < 0 {
		t.Skip("fault escalated on this seed")
	}
	if doneAt < wait {
		t.Errorf("done fired at %v, before the %v wait elapsed", doneAt, wait)
	}
}

func TestStatsZeroValue(t *testing.T) {
	var s TypeStats
	if s.RepairRatio() != 0 || s.AvgPriority() != 0 || s.AvgWaitHours() != 0 || s.AvgRepairSeconds() != 0 {
		t.Error("zero stats should yield zero averages")
	}
}

func TestStatsCopySemantics(t *testing.T) {
	e, sim := newTestEngine()
	e.Submit(topology.RSW, PortPingFailure, func(Outcome) {})
	sim.Run(1e6)
	st := e.Stats()
	s := st[topology.RSW]
	s.Issues = 999
	if e.Stats()[topology.RSW].Issues == 999 {
		t.Error("Stats exposes internal state")
	}
}

func BenchmarkSubmit(b *testing.B) {
	sim := &des.Simulator{}
	e := NewEngine(sim, simrand.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Submit(topology.RSW, PortPingFailure, func(Outcome) {})
	}
	sim.Run(math.Inf(1))
}
