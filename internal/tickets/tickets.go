// Package tickets implements the vendor repair-ticket pipeline of §4.3.2.
//
// When a fiber vendor starts repairing a link, it notifies the operator
// with a structured email: the logical link ID, the affected circuit, the
// physical location, the start time, and the estimated duration. A matching
// confirmation arrives when the repair completes. These notices are parsed
// automatically and stored for reliability analysis.
//
// This package defines the notice format (a simple RFC-822-style
// header block), generates notices from simulated link downtime, parses
// them back, and pairs start/complete notices into downtime intervals —
// the dataset §6 analyzes. Transport between vendor and collector is
// provided by package notify.
package tickets

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"dcnr/internal/backbone"
)

// EventType distinguishes repair-start from repair-complete notices.
type EventType string

const (
	// RepairStart announces that a link is down and repair has begun.
	RepairStart EventType = "REPAIR_START"
	// RepairComplete confirms the repair finished and the link is up.
	RepairComplete EventType = "REPAIR_COMPLETE"
)

// Notice is one parsed vendor notification.
type Notice struct {
	// TicketID pairs the start and complete notices of one repair.
	TicketID string
	// Vendor, Link, Circuit, Edge identify the repaired elements.
	Vendor, Link, Circuit, Edge string
	// Continent is the physical location of the affected fiber.
	Continent backbone.Continent
	// Event is the notice type.
	Event EventType
	// AtHours is the event time in hours since the observation window
	// start.
	AtHours float64
	// EstimatedHours is the vendor's repair-duration estimate (start
	// notices only; vendors habitually underestimate).
	EstimatedHours float64
	// Maintenance marks planned maintenance rather than an unplanned cut.
	Maintenance bool
}

// Format renders the notice in the structured-email form vendors send.
func (n Notice) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ticket-ID: %s\n", n.TicketID)
	fmt.Fprintf(&b, "Vendor: %s\n", n.Vendor)
	fmt.Fprintf(&b, "Link: %s\n", n.Link)
	fmt.Fprintf(&b, "Circuit: %s\n", n.Circuit)
	fmt.Fprintf(&b, "Edge: %s\n", n.Edge)
	fmt.Fprintf(&b, "Continent: %s\n", n.Continent)
	fmt.Fprintf(&b, "Event: %s\n", n.Event)
	fmt.Fprintf(&b, "At-Hours: %.4f\n", n.AtHours)
	if n.Event == RepairStart {
		fmt.Fprintf(&b, "Estimated-Hours: %.4f\n", n.EstimatedHours)
	}
	fmt.Fprintf(&b, "Maintenance: %t\n", n.Maintenance)
	return b.String()
}

// continentByName inverts backbone.Continent.String for parsing.
var continentByName = func() map[string]backbone.Continent {
	m := make(map[string]backbone.Continent)
	for _, c := range backbone.Continents {
		m[c.String()] = c
	}
	return m
}()

// Parse decodes one notice from its structured-email form. Unknown header
// keys are ignored (vendors add noise); missing required keys are errors.
func Parse(text string) (Notice, error) {
	n := Notice{AtHours: -1}
	seen := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		key, value, ok := strings.Cut(line, ":")
		if !ok {
			return Notice{}, fmt.Errorf("tickets: malformed line %q", line)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		seen[key] = true
		switch key {
		case "Ticket-ID":
			n.TicketID = value
		case "Vendor":
			n.Vendor = value
		case "Link":
			n.Link = value
		case "Circuit":
			n.Circuit = value
		case "Edge":
			n.Edge = value
		case "Continent":
			c, ok := continentByName[value]
			if !ok {
				return Notice{}, fmt.Errorf("tickets: unknown continent %q", value)
			}
			n.Continent = c
		case "Event":
			switch EventType(value) {
			case RepairStart, RepairComplete:
				n.Event = EventType(value)
			default:
				return Notice{}, fmt.Errorf("tickets: unknown event %q", value)
			}
		case "At-Hours":
			f, err := strconv.ParseFloat(value, 64)
			if err != nil || f < 0 {
				return Notice{}, fmt.Errorf("tickets: bad At-Hours %q", value)
			}
			n.AtHours = f
		case "Estimated-Hours":
			f, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return Notice{}, fmt.Errorf("tickets: bad Estimated-Hours %q", value)
			}
			n.EstimatedHours = f
		case "Maintenance":
			b, err := strconv.ParseBool(value)
			if err != nil {
				return Notice{}, fmt.Errorf("tickets: bad Maintenance %q", value)
			}
			n.Maintenance = b
		}
	}
	if err := sc.Err(); err != nil {
		return Notice{}, fmt.Errorf("tickets: reading notice: %w", err)
	}
	for _, req := range []string{"Ticket-ID", "Vendor", "Link", "Edge", "Event", "At-Hours"} {
		if !seen[req] {
			return Notice{}, fmt.Errorf("tickets: missing required header %s", req)
		}
	}
	return n, nil
}

// Generate produces the notice stream for a simulated set of link downtime
// intervals: one start and one complete notice per interval, ordered by
// event time (starts and completes interleaved, as they arrive in the
// field).
func Generate(topo *backbone.Topology, downs []backbone.LinkDown) []Notice {
	circuits := make(map[string]string, len(topo.Links))
	for _, l := range topo.Links {
		circuits[l.Name] = l.CircuitID
	}
	notices := make([]Notice, 0, 2*len(downs))
	for i, d := range downs {
		id := fmt.Sprintf("TKT-%06d", i+1)
		base := Notice{
			TicketID:    id,
			Vendor:      d.Vendor,
			Link:        d.Link,
			Circuit:     circuits[d.Link],
			Edge:        d.Edge,
			Continent:   d.Continent,
			Maintenance: !d.Cut,
		}
		start := base
		start.Event = RepairStart
		start.AtHours = d.Start
		// Vendors estimate ~80% of the actual duration.
		start.EstimatedHours = 0.8 * d.Duration()
		complete := base
		complete.Event = RepairComplete
		complete.AtHours = d.End
		notices = append(notices, start, complete)
	}
	sort.SliceStable(notices, func(i, j int) bool { return notices[i].AtHours < notices[j].AtHours })
	return notices
}

// Downtime is a reconstructed link downtime interval: the collector's
// output record.
type Downtime struct {
	TicketID           string
	Vendor, Link, Edge string
	Continent          backbone.Continent
	Start, End         float64
	Maintenance        bool
}

// Duration returns the interval length in hours.
func (d Downtime) Duration() float64 { return d.End - d.Start }

// Collector pairs start/complete notices into Downtime records, the
// automated parsing-and-database step of §4.3.2.
type Collector struct {
	open      map[string]Notice
	completed []Downtime
	// WindowHours clips repairs still open at the end of the observation
	// window; zero means no clipping.
	WindowHours float64
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector {
	return &Collector{open: make(map[string]Notice)}
}

// Ingest consumes one notice. Completes without a matching start, and
// duplicate starts, are errors — the monitoring systems §4.3.2 describes
// check exactly this kind of consistency.
func (c *Collector) Ingest(n Notice) error {
	switch n.Event {
	case RepairStart:
		if _, dup := c.open[n.TicketID]; dup {
			return fmt.Errorf("tickets: duplicate start for %s", n.TicketID)
		}
		c.open[n.TicketID] = n
	case RepairComplete:
		start, ok := c.open[n.TicketID]
		if !ok {
			return fmt.Errorf("tickets: complete without start for %s", n.TicketID)
		}
		if n.AtHours < start.AtHours {
			return fmt.Errorf("tickets: %s completes at %v before start %v", n.TicketID, n.AtHours, start.AtHours)
		}
		delete(c.open, n.TicketID)
		c.completed = append(c.completed, Downtime{
			TicketID:    n.TicketID,
			Vendor:      start.Vendor,
			Link:        start.Link,
			Edge:        start.Edge,
			Continent:   start.Continent,
			Start:       start.AtHours,
			End:         n.AtHours,
			Maintenance: start.Maintenance,
		})
	default:
		return fmt.Errorf("tickets: unknown event %q", n.Event)
	}
	return nil
}

// IngestText parses and ingests one structured-email notice.
func (c *Collector) IngestText(text string) error {
	n, err := Parse(text)
	if err != nil {
		return err
	}
	return c.Ingest(n)
}

// Open reports how many repairs are in progress (started, not completed).
func (c *Collector) Open() int { return len(c.open) }

// Downtimes returns the completed intervals sorted by start time. Repairs
// still open are clipped to WindowHours when it is set, mirroring the
// study's fixed observation window.
func (c *Collector) Downtimes() []Downtime {
	out := append([]Downtime(nil), c.completed...)
	if c.WindowHours > 0 {
		for _, start := range c.open {
			out = append(out, Downtime{
				TicketID:    start.TicketID,
				Vendor:      start.Vendor,
				Link:        start.Link,
				Edge:        start.Edge,
				Continent:   start.Continent,
				Start:       start.AtHours,
				End:         c.WindowHours,
				Maintenance: start.Maintenance,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].TicketID < out[j].TicketID
	})
	return out
}

// WriteAll formats notices to w separated by blank lines — the mbox-like
// archive format used by cmd/backbonegen.
func WriteAll(w io.Writer, notices []Notice) error {
	for _, n := range notices {
		if _, err := io.WriteString(w, n.Format()+"\n"); err != nil {
			return err
		}
	}
	return nil
}
