package tickets

import (
	"strings"
	"testing"

	"dcnr/internal/backbone"
)

// FuzzParse checks that Parse never panics and that accepted notices
// re-format and re-parse to the same notice (idempotent round trip).
func FuzzParse(f *testing.F) {
	f.Add(sampleFuzzNotice().Format())
	f.Add("Ticket-ID: X\nVendor: v\nLink: l\nEdge: e\nEvent: REPAIR_START\nAt-Hours: 1\n")
	f.Add("")
	f.Add("garbage\n\n::\n")
	f.Add("Ticket-ID: a\nAt-Hours: -1\n")
	f.Add(strings.Repeat("Vendor: v\n", 100))
	f.Fuzz(func(t *testing.T, text string) {
		n, err := Parse(text)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted notices round-trip.
		n2, err := Parse(n.Format())
		if err != nil {
			t.Fatalf("re-parse of formatted notice failed: %v\n%s", err, n.Format())
		}
		if n2.TicketID != n.TicketID || n2.Event != n.Event || n2.Continent != n.Continent {
			t.Fatalf("round trip changed notice: %+v vs %+v", n, n2)
		}
	})
}

func sampleFuzzNotice() Notice {
	return Notice{
		TicketID: "TKT-000001", Vendor: "vendor01", Link: "link0001",
		Circuit: "CKT-00001-01", Edge: "edge001", Continent: backbone.Asia,
		Event: RepairStart, AtHours: 10, EstimatedHours: 2,
	}
}
