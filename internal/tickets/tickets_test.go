package tickets

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"dcnr/internal/backbone"
)

func sampleNotice() Notice {
	return Notice{
		TicketID:       "TKT-000001",
		Vendor:         "vendor03",
		Link:           "link0042",
		Circuit:        "CKT-00042-01",
		Edge:           "edge013",
		Continent:      backbone.Europe,
		Event:          RepairStart,
		AtHours:        123.4567,
		EstimatedHours: 4.5,
		Maintenance:    true,
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	n := sampleNotice()
	got, err := Parse(n.Format())
	if err != nil {
		t.Fatal(err)
	}
	if got.TicketID != n.TicketID || got.Vendor != n.Vendor || got.Link != n.Link ||
		got.Edge != n.Edge || got.Continent != n.Continent || got.Event != n.Event ||
		got.Maintenance != n.Maintenance {
		t.Errorf("round trip lost fields: %+v", got)
	}
	if got.AtHours != 123.4567 || got.EstimatedHours != 4.5 {
		t.Errorf("numeric fields: %v, %v", got.AtHours, got.EstimatedHours)
	}
}

func TestCompleteNoticeOmitsEstimate(t *testing.T) {
	n := sampleNotice()
	n.Event = RepairComplete
	if strings.Contains(n.Format(), "Estimated-Hours") {
		t.Error("complete notice carries an estimate")
	}
}

func TestParseToleratesUnknownHeadersAndWhitespace(t *testing.T) {
	text := sampleNotice().Format() + "X-Vendor-Noise: lorem ipsum\n  \n"
	if _, err := Parse(text); err != nil {
		t.Errorf("noise header rejected: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"malformed line":    "Ticket-ID TKT-1\n",
		"unknown continent": strings.Replace(sampleNotice().Format(), "Europe", "Atlantis", 1),
		"unknown event":     strings.Replace(sampleNotice().Format(), "REPAIR_START", "REPAIR_MAYBE", 1),
		"bad hours":         strings.Replace(sampleNotice().Format(), "123.4567", "yesterday", 1),
		"negative hours":    strings.Replace(sampleNotice().Format(), "123.4567", "-5", 1),
		"bad maintenance":   strings.Replace(sampleNotice().Format(), "Maintenance: true", "Maintenance: maybe", 1),
		"missing required":  "Ticket-ID: TKT-1\nVendor: v\n",
	}
	for name, text := range cases {
		if _, err := Parse(text); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func buildDowns(t *testing.T) (*backbone.Topology, []backbone.LinkDown) {
	t.Helper()
	cfg := backbone.Config{Edges: 20, Seed: 4}
	topo, err := backbone.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	downs, err := topo.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return topo, downs
}

func TestGeneratePairsAndOrders(t *testing.T) {
	topo, downs := buildDowns(t)
	notices := Generate(topo, downs)
	if len(notices) != 2*len(downs) {
		t.Fatalf("notices = %d, want %d", len(notices), 2*len(downs))
	}
	starts, completes := 0, 0
	for i, n := range notices {
		if i > 0 && notices[i].AtHours < notices[i-1].AtHours {
			t.Fatal("notices not time-ordered")
		}
		switch n.Event {
		case RepairStart:
			starts++
			if n.EstimatedHours <= 0 && n.AtHours > 0 {
				// Zero-duration intervals are possible but rare; only
				// flag systematically missing estimates.
				continue
			}
		case RepairComplete:
			completes++
		}
	}
	if starts != completes {
		t.Errorf("starts %d != completes %d", starts, completes)
	}
}

func TestCollectorReconstructsIntervals(t *testing.T) {
	topo, downs := buildDowns(t)
	notices := Generate(topo, downs)
	c := NewCollector()
	for _, n := range notices {
		if err := c.Ingest(n); err != nil {
			t.Fatal(err)
		}
	}
	if c.Open() != 0 {
		t.Errorf("%d repairs left open", c.Open())
	}
	got := c.Downtimes()
	if len(got) != len(downs) {
		t.Fatalf("reconstructed %d intervals, want %d", len(got), len(downs))
	}
	// Total downtime must be preserved exactly.
	var wantSum, gotSum float64
	for _, d := range downs {
		wantSum += d.Duration()
	}
	for _, d := range got {
		gotSum += d.Duration()
	}
	if diff := wantSum - gotSum; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("total downtime %v != %v", gotSum, wantSum)
	}
}

func TestCollectorTextPath(t *testing.T) {
	c := NewCollector()
	start := sampleNotice()
	if err := c.IngestText(start.Format()); err != nil {
		t.Fatal(err)
	}
	complete := start
	complete.Event = RepairComplete
	complete.AtHours = 130
	if err := c.IngestText(complete.Format()); err != nil {
		t.Fatal(err)
	}
	ds := c.Downtimes()
	if len(ds) != 1 || ds[0].Duration() <= 0 {
		t.Fatalf("downtimes = %+v", ds)
	}
	if err := c.IngestText("garbage"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestCollectorConsistencyChecks(t *testing.T) {
	c := NewCollector()
	start := sampleNotice()
	if err := c.Ingest(start); err != nil {
		t.Fatal(err)
	}
	if err := c.Ingest(start); err == nil {
		t.Error("duplicate start accepted")
	}
	orphan := sampleNotice()
	orphan.TicketID = "TKT-999999"
	orphan.Event = RepairComplete
	if err := c.Ingest(orphan); err == nil {
		t.Error("orphan complete accepted")
	}
	early := start
	early.Event = RepairComplete
	early.AtHours = start.AtHours - 1
	if err := c.Ingest(early); err == nil {
		t.Error("complete before start accepted")
	}
	bad := start
	bad.Event = "REPAIR_MAYBE"
	if err := c.Ingest(bad); err == nil {
		t.Error("bad event accepted")
	}
}

func TestCollectorClipsOpenRepairs(t *testing.T) {
	c := NewCollector()
	c.WindowHours = 1000
	start := sampleNotice()
	if err := c.Ingest(start); err != nil {
		t.Fatal(err)
	}
	ds := c.Downtimes()
	if len(ds) != 1 {
		t.Fatalf("clipped downtimes = %d, want 1", len(ds))
	}
	if ds[0].End != 1000 {
		t.Errorf("clipped end = %v, want 1000", ds[0].End)
	}
	// Without a window, open repairs are excluded.
	c.WindowHours = 0
	if got := c.Downtimes(); len(got) != 0 {
		t.Errorf("unclipped downtimes = %d, want 0", len(got))
	}
}

func TestWriteAll(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, []Notice{sampleNotice(), sampleNotice()}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "Ticket-ID:"); got != 2 {
		t.Errorf("wrote %d notices", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(at, est float64, maint bool, which uint8) bool {
		n := sampleNotice()
		if at < 0 {
			at = -at
		}
		if at > 1e6 {
			at = 1e6
		}
		n.AtHours = at
		n.EstimatedHours = est
		n.Maintenance = maint
		n.Continent = backbone.Continents[int(which)%len(backbone.Continents)]
		got, err := Parse(n.Format())
		if err != nil {
			return false
		}
		return got.Continent == n.Continent && got.Maintenance == n.Maintenance
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParse(b *testing.B) {
	text := sampleNotice().Format()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(text); err != nil {
			b.Fatal(err)
		}
	}
}
