// Package stats implements the statistical machinery the reliability study
// relies on: summary statistics, percentiles, least-squares exponential fits
// of percentile curves (the MTBF/MTTR models of §6), linear regression, and
// correlation.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned by estimators that need more samples than
// they were given.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Summary holds the moments of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Sum    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns an error for an empty
// sample or p outside [0, 100].
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrInsufficientData
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), nil
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Percentiles returns the given percentiles of xs in one pass over a single
// sorted copy. All requested percentiles are validated before any O(n log n)
// work happens, so bad input fails fast on large samples.
func Percentiles(xs []float64, ps ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrInsufficientData
	}
	for _, p := range ps {
		if p < 0 || p > 100 {
			return nil, errors.New("stats: percentile out of range")
		}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = percentileSorted(sorted, p)
	}
	return out, nil
}

// Point is an (X, Y) observation.
type Point struct {
	X, Y float64
}

// LinearFit is a least-squares line y = Intercept + Slope*x with its
// coefficient of determination.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLinear fits a least-squares line to pts. It returns
// ErrInsufficientData for fewer than two points or zero X variance.
func FitLinear(pts []Point) (LinearFit, error) {
	n := float64(len(pts))
	if n < 2 {
		return LinearFit{}, ErrInsufficientData
	}
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
		sxx += p.X * p.X
		sxy += p.X * p.Y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearFit{}, ErrInsufficientData
	}
	fit := LinearFit{Slope: (n*sxy - sx*sy) / den}
	fit.Intercept = (sy - fit.Slope*sx) / n

	meanY := sy / n
	var ssTot, ssRes float64
	for _, p := range pts {
		pred := fit.Intercept + fit.Slope*p.X
		ssRes += (p.Y - pred) * (p.Y - pred)
		ssTot += (p.Y - meanY) * (p.Y - meanY)
	}
	if ssTot == 0 {
		fit.R2 = 1
	} else {
		fit.R2 = 1 - ssRes/ssTot
	}
	return fit, nil
}

// ExpFit is an exponential model y = A * exp(B*x) fitted by least squares on
// log(y) — the method §6.1 of the paper states it used. R2 is computed in
// the original (non-log) space so it is comparable to the paper's reported
// R² values.
type ExpFit struct {
	A, B float64
	R2   float64
}

// Eval returns the model's prediction at x.
func (f ExpFit) Eval(x float64) float64 { return f.A * math.Exp(f.B*x) }

// FitExponential fits y = A*exp(B*x) to pts. All Y values must be positive;
// non-positive Y values are rejected because the log-linearization is
// undefined for them.
func FitExponential(pts []Point) (ExpFit, error) {
	logPts := make([]Point, 0, len(pts))
	for _, p := range pts {
		if p.Y <= 0 {
			return ExpFit{}, errors.New("stats: exponential fit requires positive Y")
		}
		logPts = append(logPts, Point{X: p.X, Y: math.Log(p.Y)})
	}
	lin, err := FitLinear(logPts)
	if err != nil {
		return ExpFit{}, err
	}
	fit := ExpFit{A: math.Exp(lin.Intercept), B: lin.Slope}

	meanY := 0.0
	for _, p := range pts {
		meanY += p.Y
	}
	meanY /= float64(len(pts))
	var ssTot, ssRes float64
	for _, p := range pts {
		pred := fit.Eval(p.X)
		ssRes += (p.Y - pred) * (p.Y - pred)
		ssTot += (p.Y - meanY) * (p.Y - meanY)
	}
	if ssTot == 0 {
		fit.R2 = 1
	} else {
		fit.R2 = 1 - ssRes/ssTot
	}
	return fit, nil
}

// PercentileCurve maps each sample to the fraction of samples at or below it:
// the solid lines of Figures 15–18. The returned points are sorted by value,
// with X the percentile fraction in (0, 1] and Y the sample value.
func PercentileCurve(xs []float64) []Point {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pts := make([]Point, len(sorted))
	for i, v := range sorted {
		pts[i] = Point{X: float64(i+1) / float64(len(sorted)), Y: v}
	}
	return pts
}

// Correlation returns the Pearson correlation coefficient of pts, or an
// error when either variance is zero or there are fewer than two points.
func Correlation(pts []Point) (float64, error) {
	n := float64(len(pts))
	if n < 2 {
		return 0, ErrInsufficientData
	}
	var sx, sy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
	}
	mx, my := sx/n, sy/n
	var sxy, sxx, syy float64
	for _, p := range pts {
		dx, dy := p.X-mx, p.Y-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, ErrInsufficientData
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Histogram counts xs into nbins equal-width bins over [min, max]. Values
// outside the range are clamped into the terminal bins.
func Histogram(xs []float64, min, max float64, nbins int) []int {
	if nbins <= 0 || max <= min {
		return nil
	}
	counts := make([]int, nbins)
	width := (max - min) / float64(nbins)
	for _, x := range xs {
		i := int((x - min) / width)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	return counts
}
