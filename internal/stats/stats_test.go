package stats

import (
	"math"
	"testing"
	"testing/quick"

	"dcnr/internal/simrand"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if s.Mean != 5 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	// Sample std dev of this classic set is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); !almostEqual(s.StdDev, want, 1e-12) {
		t.Errorf("StdDev = %v, want %v", s.StdDev, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Sum != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
		{75, 40},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", c.p, err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	got, err := Percentile([]float64{0, 10}, 75)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 7.5, 1e-12) {
		t.Errorf("P75 of {0,10} = %v, want 7.5", got)
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty sample: want error")
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("p=-1: want error")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("p=101: want error")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestPercentiles(t *testing.T) {
	got, err := Percentiles([]float64{1, 2, 3, 4, 5}, 0, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Percentiles[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// Percentiles must reject out-of-range requests before copying and sorting
// the sample: with a large slice, p = 101 fails fast and the input stays
// exactly as it was.
func TestPercentilesValidatesBeforeSorting(t *testing.T) {
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = float64(len(xs) - i) // strictly descending
	}
	if _, err := Percentiles(xs, 50, 101); err == nil {
		t.Fatal("p = 101 accepted")
	}
	for i := range xs {
		if xs[i] != float64(len(xs)-i) {
			t.Fatalf("input reordered at %d: %v", i, xs[i])
		}
	}
	if _, err := Percentiles(xs, -1); err == nil {
		t.Fatal("p = -1 accepted")
	}
}

func TestFitLinearExact(t *testing.T) {
	pts := []Point{{0, 1}, {1, 3}, {2, 5}, {3, 7}}
	fit, err := FitLinear(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-12) || !almostEqual(fit.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if fit.R2 != 1 {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]Point{{1, 1}}); err == nil {
		t.Error("one point: want error")
	}
	if _, err := FitLinear([]Point{{1, 1}, {1, 2}}); err == nil {
		t.Error("zero X variance: want error")
	}
}

func TestFitExponentialRecoversModel(t *testing.T) {
	// Sample the paper's edge-MTBF model MTBF(p) = 462.88*e^(2.3408p) and
	// confirm the fitter recovers A and B.
	const a, b = 462.88, 2.3408
	var pts []Point
	for p := 0.05; p <= 1.0; p += 0.05 {
		pts = append(pts, Point{X: p, Y: a * math.Exp(b*p)})
	}
	fit, err := FitExponential(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.A, a, 1e-6) || !almostEqual(fit.B, b, 1e-6) {
		t.Errorf("fit = %+v, want A=%v B=%v", fit, a, b)
	}
	if fit.R2 < 0.9999 {
		t.Errorf("R2 = %v, want ~1 for noiseless data", fit.R2)
	}
}

func TestFitExponentialNoisy(t *testing.T) {
	r := simrand.New(11)
	const a, b = 1.513, 4.256 // paper's edge-MTTR model
	var pts []Point
	for p := 0.02; p <= 1.0; p += 0.02 {
		noise := 1 + 0.1*(r.Float64()-0.5)
		pts = append(pts, Point{X: p, Y: a * math.Exp(b*p) * noise})
	}
	fit, err := FitExponential(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.B-b)/b > 0.05 {
		t.Errorf("B = %v, want within 5%% of %v", fit.B, b)
	}
	if fit.R2 < 0.9 {
		t.Errorf("R2 = %v, want > 0.9", fit.R2)
	}
}

func TestFitExponentialRejectsNonPositive(t *testing.T) {
	if _, err := FitExponential([]Point{{0, 1}, {1, 0}}); err == nil {
		t.Error("want error for Y=0")
	}
	if _, err := FitExponential([]Point{{0, 1}, {1, -2}}); err == nil {
		t.Error("want error for Y<0")
	}
}

func TestPercentileCurve(t *testing.T) {
	pts := PercentileCurve([]float64{30, 10, 20})
	if len(pts) != 3 {
		t.Fatalf("len = %d", len(pts))
	}
	wantY := []float64{10, 20, 30}
	for i, p := range pts {
		if p.Y != wantY[i] {
			t.Errorf("point %d Y = %v, want %v", i, p.Y, wantY[i])
		}
		wantX := float64(i+1) / 3
		if !almostEqual(p.X, wantX, 1e-12) {
			t.Errorf("point %d X = %v, want %v", i, p.X, wantX)
		}
	}
	if PercentileCurve(nil) != nil {
		t.Error("empty input: want nil")
	}
}

func TestPercentileCurveMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := simrand.New(seed)
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = r.Exp(100)
		}
		pts := PercentileCurve(xs)
		for i := 1; i < len(pts); i++ {
			if pts[i].Y < pts[i-1].Y || pts[i].X <= pts[i-1].X {
				return false
			}
		}
		return pts[len(pts)-1].X == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelation(t *testing.T) {
	pts := []Point{{1, 2}, {2, 4}, {3, 6}}
	c, err := Correlation(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c, 1, 1e-12) {
		t.Errorf("perfect positive correlation = %v", c)
	}
	pts = []Point{{1, 6}, {2, 4}, {3, 2}}
	c, _ = Correlation(pts)
	if !almostEqual(c, -1, 1e-12) {
		t.Errorf("perfect negative correlation = %v", c)
	}
}

func TestCorrelationErrors(t *testing.T) {
	if _, err := Correlation([]Point{{1, 1}}); err == nil {
		t.Error("one point: want error")
	}
	if _, err := Correlation([]Point{{1, 1}, {1, 2}, {1, 3}}); err == nil {
		t.Error("zero variance: want error")
	}
}

func TestHistogram(t *testing.T) {
	counts := Histogram([]float64{0.5, 1.5, 2.5, 2.6, -1, 11}, 0, 10, 10)
	if counts[0] != 2 { // 0.5 and clamped -1
		t.Errorf("bin 0 = %d, want 2", counts[0])
	}
	if counts[2] != 2 {
		t.Errorf("bin 2 = %d, want 2", counts[2])
	}
	if counts[9] != 1 { // clamped 11
		t.Errorf("bin 9 = %d, want 1", counts[9])
	}
	if Histogram(nil, 0, 0, 10) != nil {
		t.Error("max<=min: want nil")
	}
	if Histogram(nil, 0, 1, 0) != nil {
		t.Error("nbins=0: want nil")
	}
}

func TestFitExponentialPropertyRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := simrand.New(seed)
		a := 1 + r.Float64()*1000
		b := 0.5 + r.Float64()*5
		var pts []Point
		for p := 0.1; p <= 1.0; p += 0.1 {
			pts = append(pts, Point{X: p, Y: a * math.Exp(b*p)})
		}
		fit, err := FitExponential(pts)
		if err != nil {
			return false
		}
		return almostEqual(fit.A, a, 1e-6) && almostEqual(fit.B, b, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFitExponential(b *testing.B) {
	r := simrand.New(1)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.Exp(1000)
	}
	pts := PercentileCurve(xs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = FitExponential(pts)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	// Percentile(xs, p) is non-decreasing in p for any sample.
	f := func(seed uint64) bool {
		r := simrand.New(seed)
		xs := make([]float64, 1+r.Intn(60))
		for i := range xs {
			xs[i] = r.Exp(50)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v, err := Percentile(xs, p)
			if err != nil || v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
