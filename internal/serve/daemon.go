package serve

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"dcnr/internal/obs"
	"dcnr/internal/sev"
)

// Daemon is the long-running SEV query service: a sharded store behind
// the HTTP aggregation API, with an LRU result cache keyed by normalized
// query + dataset generation. Build with NewDaemon, load data with
// LoadJSON (or stream batches to POST /ingest), run with Start, release
// with Shutdown.
//
// The cache-generation contract: every response to a query endpoint
// carries an ETag derived from (dataset generation, normalized query).
// POST /ingest bumps the generation, which changes every ETag and every
// cache key at once — no invalidation walk, stale entries age out of the
// LRU. A client replaying If-None-Match sees 304 exactly until the
// dataset changes under it.
type Daemon struct {
	cfg   Config
	store *sev.Sharded
	srv   *Server
	cache *lru

	// Server-side cache statistics: the source of truth for /stats, and
	// mirrored into the obs registry when one is attached.
	hits, misses, notModified, ingested atomic.Uint64

	mQueries, mHits, mMisses, mNotModified *obs.Counter
	mIngestReports, mIngestBatches         *obs.Counter
	hLatency                               *obs.Histogram

	shutdownOnce sync.Once
}

// NewDaemon validates cfg (normalizing defaults in place per the
// Config.Validate contract), builds the sharded store, and mounts the
// query API plus the full introspection suite on a new Server. The
// daemon owns the store and the server: Shutdown releases both.
func NewDaemon(cfg *Config) (*Daemon, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:   *cfg,
		store: sev.NewSharded(cfg.Shards),
		cache: newLRU(cfg.CacheEntries),
	}
	d.store.Instrument(cfg.Obs.Metrics)
	if reg := cfg.Obs.Metrics; reg != nil {
		d.mQueries = reg.Counter("serve_queries_total")
		d.mHits = reg.Counter("serve_cache_hits_total")
		d.mMisses = reg.Counter("serve_cache_misses_total")
		d.mNotModified = reg.Counter("serve_not_modified_total")
		d.mIngestReports = reg.Counter("serve_ingest_reports_total")
		d.mIngestBatches = reg.Counter("serve_ingest_batches_total")
		d.hLatency = reg.Histogram("serve_query_seconds",
			[]float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1})
	}
	d.srv = New(Options{
		Addr:          cfg.Addr,
		Name:          "dcnrd",
		Logger:        cfg.Obs.Logger,
		Metrics:       cfg.Obs.Metrics,
		Health:        cfg.Obs.Health,
		Journal:       cfg.Obs.Journal,
		Timeline:      cfg.Obs.Timeline,
		Introspection: true,
	})
	d.registerAPI()
	return d, nil
}

// Store exposes the daemon's sharded store, e.g. for direct seeding in
// tests or for the simulate path in cmd/dcnrd.
func (d *Daemon) Store() *sev.Sharded { return d.store }

// LoadJSON ingests a SEV dataset (the sevs.json shape dcsim writes) as
// one batch: explicit IDs preserved, duplicates rejected, one generation
// bump.
func (d *Daemon) LoadJSON(r io.Reader) error {
	if err := d.store.ReadJSON(r); err != nil {
		return err
	}
	d.ingested.Store(uint64(d.store.Len()))
	return nil
}

// Start binds the daemon's listener and serves until Shutdown. It
// returns the bound address.
func (d *Daemon) Start() (string, error) { return d.srv.Start() }

// Addr returns the bound address after Start.
func (d *Daemon) Addr() string { return d.srv.Addr() }

// Shutdown stops the HTTP server (severing live connections and joining
// the serving goroutine) and then stops the shard goroutines.
// Idempotent.
func (d *Daemon) Shutdown() {
	d.shutdownOnce.Do(func() {
		d.srv.Shutdown()
		d.store.Close()
	})
}

// Generation returns the store's dataset generation.
func (d *Daemon) Generation() uint64 { return d.store.Generation() }

// statsResponse is the GET /stats body.
type statsResponse struct {
	Reports      int    `json:"reports"`
	Generation   uint64 `json:"generation"`
	Shards       int    `json:"shards"`
	CacheEntries int    `json:"cache_entries"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	NotModified  uint64 `json:"not_modified"`
}

func (d *Daemon) stats() statsResponse {
	return statsResponse{
		Reports:      d.store.Len(),
		Generation:   d.store.Generation(),
		Shards:       d.store.Shards(),
		CacheEntries: d.cache.len(),
		CacheHits:    d.hits.Load(),
		CacheMisses:  d.misses.Load(),
		NotModified:  d.notModified.Load(),
	}
}

// String renders a one-line daemon description for logs.
func (d *Daemon) String() string {
	return fmt.Sprintf("dcnrd{shards: %d, cache: %d}", d.cfg.Shards, d.cfg.CacheEntries)
}
