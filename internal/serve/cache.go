package serve

import (
	"container/list"
	"sync"
)

// lru is the bounded result cache: encoded response bodies keyed by
// normalized query + dataset generation. Ingest never walks the cache to
// invalidate — a bumped generation changes every key, so stale entries
// simply stop being looked up and age out of the LRU order.
type lru struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, order: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached body for key, refreshing its recency.
func (c *lru) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key, evicting from the cold end over capacity.
func (c *lru) put(key string, body []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	for c.order.Len() > c.cap {
		cold := c.order.Back()
		c.order.Remove(cold)
		delete(c.entries, cold.Value.(*cacheEntry).key)
	}
}

// len returns the resident entry count.
func (c *lru) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
