// Package serve is the repo's one HTTP serving layer: a Server wraps the
// listener / mux / serving-goroutine / shutdown plumbing that cmd/repro,
// cmd/dcsweep, and the timeline SSE handlers each used to carry their own
// copy of, and the Daemon (daemon.go) builds the sharded SEV query API on
// top of it.
//
// The lifecycle is a strict three-phase contract:
//
//	s := serve.New(opts)   // construct (no goroutines yet)
//	s.Register(pat, h)     // mount routes — construction phase only
//	addr, err := s.Start() // bind + serve on a background goroutine
//	...
//	s.Shutdown()           // sever connections AND join the goroutine
//
// New and Register run on one goroutine before Start; they are not
// synchronized (the obsnilsafe and lockflow analyzers enforce the
// constructor-only discipline for types that share a Server). Shutdown is
// idempotent and safe from any goroutine: it closes active connections
// (streaming subscribers must not stall process exit) and joins the
// serving goroutine, so no log write can land after it returns — the
// PR-8 shutdown-func contract.
package serve

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"sync/atomic"

	"dcnr/internal/obs"
	"dcnr/internal/obs/health"
	"dcnr/internal/obs/journal"
	"dcnr/internal/obs/timeline"
)

// Options configures a Server. Every observability hook is optional and
// nil-safe: a nil field serves the endpoint's empty/healthy shape rather
// than 404ing, so dashboards can be pointed at any process.
type Options struct {
	// Addr is the listen address; ":0" binds a free port (Start returns
	// the bound address).
	Addr string
	// Name prefixes log messages, e.g. "repro: metrics" → "repro: metrics
	// server stopped". Defaults to "serve".
	Name string
	// Logger, when non-nil, receives a Warn when the serving goroutine
	// stops unexpectedly; otherwise the report goes to stderr.
	Logger *slog.Logger
	// Metrics backs /metrics and the process-wide "dcnr" expvar when
	// Introspection is set.
	Metrics *obs.Registry
	// Health backs /healthz and /slo; nil reads as permanently healthy.
	Health *health.Engine
	// Journal backs /journal; nil reads as an empty journal.
	Journal *journal.Journal
	// Timeline backs /metrics/history and /metrics/history/events; nil
	// serves empty histories and an immediately-ending stream.
	Timeline *timeline.Timeline
	// Introspection mounts the full runtime-introspection suite:
	// /debug/vars, /metrics, /healthz, /slo, /journal, /metrics/history,
	// /metrics/history/events, and /debug/pprof/. Without it the Server
	// serves only what Register mounts.
	Introspection bool
}

// Server is the unified HTTP serving API. Create with New, mount routes
// with Register, run with Start, and release with Shutdown. A nil Server
// is inert: Register and Shutdown are no-ops, Start errors.
type Server struct {
	opts Options
	mux  *http.ServeMux
	// routes records every mounted pattern in registration order — plain
	// slice by design: Register belongs to the single-goroutine
	// construction phase.
	routes []string

	srv  *http.Server
	ln   net.Listener
	done chan struct{}
	once sync.Once
}

// publishedRegistry backs the process-wide "dcnr" expvar: expvar.Publish
// panics on duplicate names, so the var is published once and reads
// whichever registry the latest introspective Server installed.
var (
	publishedRegistry atomic.Pointer[obs.Registry]
	publishOnce       sync.Once
)

// New returns an unstarted Server. With opts.Introspection it mounts the
// introspection suite immediately, so Register calls see those patterns
// as taken.
func New(opts Options) *Server {
	if opts.Name == "" {
		opts.Name = "serve"
	}
	s := &Server{opts: opts, mux: http.NewServeMux()}
	if opts.Introspection {
		s.mountIntrospection()
	}
	return s
}

// Register mounts h at pattern. Construction phase only: Register is not
// synchronized and must happen-before Start on the same goroutine (or
// under the caller's own lock — see the lockflow analyzer). A nil Server
// ignores the call.
func (s *Server) Register(pattern string, h http.Handler) {
	if s == nil {
		return
	}
	s.routes = append(s.routes, pattern)
	s.mux.Handle(pattern, h)
}

// Routes returns the mounted patterns in registration order (the
// introspection suite first when enabled).
func (s *Server) Routes() []string {
	if s == nil {
		return nil
	}
	return append([]string(nil), s.routes...)
}

// Start binds the listener and serves on a background goroutine. It
// returns the bound address, so callers can pass ":0" and discover the
// port. Start may be called once; the caller must pair it with Shutdown
// so no goroutine outlives the run.
func (s *Server) Start() (string, error) {
	if s == nil {
		return "", errors.New("serve: Start on a nil Server")
	}
	if s.srv != nil {
		return "", errors.New("serve: Start called twice")
	}
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.logStopped(err)
		}
	}()
	return ln.Addr().String(), nil
}

// Addr returns the bound address after Start ("" before).
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown stops the server and joins the serving goroutine. Close (not
// http.Server.Shutdown) also severs active connections — a scraper
// holding a streaming response open must not stall process exit — and
// the join guarantees no goroutine log write lands after Shutdown
// returns. Idempotent; a no-op before Start or on a nil Server.
func (s *Server) Shutdown() {
	if s == nil || s.srv == nil {
		return
	}
	s.once.Do(func() {
		_ = s.srv.Close()
		<-s.done
	})
}

func (s *Server) logStopped(err error) {
	if s.opts.Logger != nil {
		s.opts.Logger.Warn(s.opts.Name+" server stopped", "err", err)
		return
	}
	fmt.Fprintf(os.Stderr, "%s server stopped: %v\n", s.opts.Name, err)
}

// mountIntrospection wires the runtime-introspection suite onto the mux,
// every handler nil-safe against its missing hook.
func (s *Server) mountIntrospection() {
	reg, eng, jnl, tl := s.opts.Metrics, s.opts.Health, s.opts.Journal, s.opts.Timeline
	publishedRegistry.Store(reg)
	publishOnce.Do(func() {
		expvar.Publish("dcnr", expvar.Func(func() any {
			if r := publishedRegistry.Load(); r != nil {
				return r.Snapshot()
			}
			return nil
		}))
	})
	s.Register("/debug/vars", expvar.Handler())
	s.Register("/metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if r := publishedRegistry.Load(); r != nil {
			// A failed write means the scraper hung up mid-response;
			// there is no one left to report it to.
			_ = r.WritePrometheus(w)
		}
	}))
	s.Register("/healthz", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		// As with /metrics, a failed write means the prober hung up.
		rep := eng.Report()
		if rep.Healthy {
			_, _ = fmt.Fprintln(w, "ok")
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		for _, rs := range rep.Rules {
			if rs.State == "firing" {
				_, _ = fmt.Fprintf(w, "firing: %s\n", rs.Name)
			}
		}
	}))
	s.Register("/slo", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// Same contract as /metrics: a failed write is the scraper's
		// hang-up, not ours.
		_ = eng.WriteJSON(w)
	}))
	s.Register("/journal", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		// Summaries read only the journal's flushed prefix, so this is
		// safe to serve while the simulation is still recording.
		data, err := json.Marshal(jnl.Index().Summary())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(append(data, '\n'))
	}))
	s.Register("/metrics/history", http.HandlerFunc(tl.ServeHistory))
	s.Register("/metrics/history/events", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		StreamSSE(w, r, tl.Subscribe)
	}))
	s.Register("/debug/pprof/", http.HandlerFunc(pprof.Index))
	s.Register("/debug/pprof/cmdline", http.HandlerFunc(pprof.Cmdline))
	s.Register("/debug/pprof/profile", http.HandlerFunc(pprof.Profile))
	s.Register("/debug/pprof/symbol", http.HandlerFunc(pprof.Symbol))
	s.Register("/debug/pprof/trace", http.HandlerFunc(pprof.Trace))
}
