package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dcnr/internal/obs"
	"dcnr/internal/obs/timeline"
)

// TestServerLifecycle pins the three-phase contract: Register before
// Start, Start binds ":0" and returns the address, Shutdown severs and
// joins, and a second Shutdown is a no-op.
func TestServerLifecycle(t *testing.T) {
	s := New(Options{Addr: "127.0.0.1:0", Name: "test"})
	s.Register("/ping", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, "pong\n")
	}))
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/ping")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if string(body) != "pong\n" {
		t.Errorf("/ping = %q", body)
	}
	if got := s.Addr(); got != addr {
		t.Errorf("Addr() = %q, Start returned %q", got, addr)
	}
	s.Shutdown()
	s.Shutdown() // idempotent
	if _, err := http.Get("http://" + addr + "/ping"); err == nil {
		t.Error("server still serving after Shutdown")
	}
	if _, err := s.Start(); err == nil {
		t.Error("second Start did not error")
	}
}

// TestServerNil pins the nil contract: Register and Shutdown no-op,
// Start errors.
func TestServerNil(t *testing.T) {
	var s *Server
	s.Register("/x", http.NotFoundHandler())
	s.Shutdown()
	if _, err := s.Start(); err == nil {
		t.Error("nil Start did not error")
	}
	if s.Routes() != nil {
		t.Error("nil Routes not nil")
	}
	if s.Addr() != "" {
		t.Error("nil Addr not empty")
	}
}

// TestServerIntrospection pins the introspection suite against nil
// hooks: every endpoint answers its empty/healthy shape.
func TestServerIntrospection(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("test_total").Inc()
	s := New(Options{Addr: "127.0.0.1:0", Metrics: reg, Introspection: true})
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "test_total") {
		t.Errorf("/metrics: %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz with nil engine: %d %q", code, body)
	}
	if code, _ := get("/slo"); code != 200 {
		t.Errorf("/slo: %d", code)
	}
	if code, body := get("/journal"); code != 200 || !strings.Contains(body, "{") {
		t.Errorf("/journal: %d %q", code, body)
	}
	if code, body := get("/metrics/history"); code != 200 || body != "" {
		t.Errorf("/metrics/history with nil timeline: %d %q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "dcnr") {
		t.Errorf("/debug/vars: %d", code)
		_ = body
	}
	// Routes lists the suite in mount order.
	routes := s.Routes()
	if len(routes) == 0 || routes[0] != "/debug/vars" {
		t.Errorf("Routes() = %v", routes)
	}
}

// TestStreamSSETimeline drives the shared SSE loop against a live
// timeline subscription — the replacement for timeline.ServeEvents.
func TestStreamSSETimeline(t *testing.T) {
	tl := timeline.New(24)
	col := tl.Column("a")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		StreamSSE(w, r, tl.Subscribe)
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	lane := tl.Lane("sim")
	lane.Record(col, 5, 1)
	lane.Flush()
	tl.Close() // ends the stream so ReadAll terminates
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if want := "data: {\"t\":5,\"m\":\"a\",\"v\":1}\n\n"; string(body) != want {
		t.Errorf("SSE stream = %q, want %q", body, want)
	}
}

// TestWriteSSEFraming pins the multi-line chunk framing (moved from the
// timeline package with the handler).
func TestWriteSSEFraming(t *testing.T) {
	rec := httptest.NewRecorder()
	if err := writeSSE(rec, []byte("{\"a\":1}\n{\"b\":2}\n")); err != nil {
		t.Fatal(err)
	}
	want := "data: {\"a\":1}\ndata: {\"b\":2}\n\n"
	if rec.Body.String() != want {
		t.Errorf("writeSSE = %q, want %q", rec.Body.String(), want)
	}
}

// TestConfigValidate pins the self-validating config: defaults filled in
// one place, idempotent, invalid fields rejected.
func TestConfigValidate(t *testing.T) {
	var c Config
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Addr != ":0" || c.Shards < 1 || c.CacheEntries != DefaultCacheEntries {
		t.Errorf("normalized zero config = %+v", c)
	}
	before := c
	if err := c.Validate(); err != nil || c != before {
		t.Errorf("Validate not idempotent: %+v -> %+v (%v)", before, c, err)
	}
	for _, bad := range []Config{
		{Shards: -1},
		{Shards: MaxShards + 1},
		{CacheEntries: -5},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

// TestLRU pins capacity eviction and recency refresh.
func TestLRU(t *testing.T) {
	c := newLRU(2)
	c.put("a", []byte("1"))
	c.put("b", []byte("2"))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted under capacity")
	}
	c.put("c", []byte("3")) // evicts b (a was refreshed)
	if _, ok := c.get("b"); ok {
		t.Error("b survived past capacity")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("recently-used a evicted instead of b")
	}
	if c.len() != 2 {
		t.Errorf("len = %d", c.len())
	}
	// Zero capacity never stores.
	z := newLRU(0)
	z.put("x", []byte("1"))
	if _, ok := z.get("x"); ok {
		t.Error("zero-capacity cache stored an entry")
	}
}
