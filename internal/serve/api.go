package serve

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"dcnr/internal/sev"
	"dcnr/internal/stats"
	"dcnr/internal/topology"
)

// params is one parsed query-endpoint request: the SEV filters plus the
// grouping dimension. Parsing canonicalizes every value (device and
// cause names are matched case-insensitively and re-rendered from the
// parsed value), so two spellings of the same query share one cache key.
type params struct {
	year     *int
	device   *topology.DeviceType
	severity *sev.Severity
	design   *topology.Design
	cause    *sev.RootCause
	since    *float64
	until    *float64
	by       string
}

func parseDeviceType(s string) (topology.DeviceType, error) {
	for _, t := range topology.DeviceTypes {
		if strings.EqualFold(s, t.String()) {
			return t, nil
		}
	}
	return 0, fmt.Errorf("unknown device type %q", s)
}

func parseDesign(s string) (topology.Design, error) {
	for _, d := range []topology.Design{topology.DesignShared, topology.DesignCluster, topology.DesignFabric} {
		if strings.EqualFold(s, d.String()) {
			return d, nil
		}
	}
	return 0, fmt.Errorf("unknown design %q", s)
}

func parseRootCause(s string) (sev.RootCause, error) {
	for _, c := range sev.RootCauses {
		if strings.EqualFold(s, c.String()) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown root cause %q", s)
}

// parseParams reads the filter/grouping query parameters. allowedBy
// lists the endpoint's valid `by` dimensions ("" entries allowed).
func parseParams(r *http.Request, allowedBy ...string) (params, error) {
	var p params
	q := r.URL.Query()
	if s := q.Get("year"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			return p, fmt.Errorf("bad year: %v", err)
		}
		p.year = &v
	}
	if s := q.Get("device"); s != "" {
		t, err := parseDeviceType(s)
		if err != nil {
			return p, err
		}
		p.device = &t
	}
	if s := q.Get("severity"); s != "" {
		n, err := strconv.Atoi(strings.TrimPrefix(strings.ToUpper(s), "SEV"))
		if err != nil {
			return p, fmt.Errorf("bad severity: %v", err)
		}
		v := sev.Severity(n)
		if !v.Valid() {
			return p, fmt.Errorf("bad severity %d", n)
		}
		p.severity = &v
	}
	if s := q.Get("design"); s != "" {
		d, err := parseDesign(s)
		if err != nil {
			return p, err
		}
		p.design = &d
	}
	if s := q.Get("cause"); s != "" {
		c, err := parseRootCause(s)
		if err != nil {
			return p, err
		}
		p.cause = &c
	}
	for _, bound := range []struct {
		name string
		dst  **float64
	}{{"since", &p.since}, {"until", &p.until}} {
		if s := q.Get(bound.name); s != "" {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return p, fmt.Errorf("bad %s: %v", bound.name, err)
			}
			*bound.dst = &v
		}
	}
	p.by = q.Get("by")
	for _, ok := range allowedBy {
		if p.by == ok {
			return p, nil
		}
	}
	return p, fmt.Errorf("bad by=%q (want one of %s)", p.by, strings.Join(allowedBy, "|"))
}

// normalized renders the params in canonical field order with canonical
// value spellings — the cache-key and ETag basis.
func (p params) normalized() string {
	var sb strings.Builder
	add := func(k, v string) {
		if sb.Len() > 0 {
			sb.WriteByte('&')
		}
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(v)
	}
	if p.year != nil {
		add("year", strconv.Itoa(*p.year))
	}
	if p.device != nil {
		add("device", p.device.String())
	}
	if p.severity != nil {
		add("severity", strconv.Itoa(int(*p.severity)))
	}
	if p.design != nil {
		add("design", p.design.String())
	}
	if p.cause != nil {
		add("cause", p.cause.String())
	}
	if p.since != nil {
		add("since", strconv.FormatFloat(*p.since, 'g', -1, 64))
	}
	if p.until != nil {
		add("until", strconv.FormatFloat(*p.until, 'g', -1, 64))
	}
	if p.by != "" {
		add("by", p.by)
	}
	return sb.String()
}

// apply narrows the fan-out query with every set filter.
func (p params) apply(q sev.ShardedQuery) sev.ShardedQuery {
	if p.year != nil {
		q = q.Year(*p.year)
	}
	if p.device != nil {
		q = q.DeviceType(*p.device)
	}
	if p.severity != nil {
		q = q.Severity(*p.severity)
	}
	if p.design != nil {
		q = q.Design(*p.design)
	}
	if p.cause != nil {
		q = q.RootCause(*p.cause)
	}
	if p.since != nil {
		q = q.Since(*p.since)
	}
	if p.until != nil {
		q = q.Until(*p.until)
	}
	return q
}

// etagFor derives the ETag for a normalized query at a generation: a
// deterministic function of both, so If-None-Match revalidates without
// recomputing the aggregation.
func etagFor(gen uint64, path, norm string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(path))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(norm))
	return fmt.Sprintf("\"%d-%x\"", gen, h.Sum64())
}

// registerAPI mounts the query endpoints.
func (d *Daemon) registerAPI() {
	d.srv.Register("/query/count", d.cached(d.handleCount,
		"", "device", "severity", "year", "cause", "severity-device", "year-severity", "year-device", "year-design"))
	d.srv.Register("/query/resolutions", d.cached(d.handleResolutions,
		"", "device", "year"))
	d.srv.Register("/ingest", http.HandlerFunc(d.handleIngest))
	d.srv.Register("/stats", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, d.stats())
	}))
}

// cached wraps a query handler with the normalize → ETag → LRU flow:
// parse and canonicalize the request, revalidate If-None-Match against
// the generation-bearing ETag (304, no recompute), then serve from the
// LRU or compute and fill it. Responses carry ETag and X-Cache (hit |
// miss) headers.
func (d *Daemon) cached(compute func(sev.ShardedQuery, params) (any, error), allowedBy ...string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		started := time.Now()
		d.mQueries.Inc()
		p, err := parseParams(r, allowedBy...)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		norm := p.normalized()
		gen := d.store.Generation()
		etag := etagFor(gen, r.URL.Path, norm)
		w.Header().Set("ETag", etag)
		if r.Header.Get("If-None-Match") == etag {
			d.notModified.Add(1)
			d.mNotModified.Inc()
			w.WriteHeader(http.StatusNotModified)
			return
		}
		key := fmt.Sprintf("%d|%s|%s", gen, r.URL.Path, norm)
		if body, ok := d.cache.get(key); ok {
			d.hits.Add(1)
			d.mHits.Inc()
			w.Header().Set("X-Cache", "hit")
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(body)
			d.hLatency.Observe(time.Since(started).Seconds())
			return
		}
		d.misses.Add(1)
		d.mMisses.Inc()
		v, err := compute(p.apply(d.store.Query()), p)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		body, err := json.Marshal(v)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		body = append(body, '\n')
		d.cache.put(key, body)
		w.Header().Set("X-Cache", "miss")
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
		d.hLatency.Observe(time.Since(started).Seconds())
	})
}

// countResponse is the GET /query/count body: Count for ungrouped
// queries, Groups (one- or two-level, canonical string keys) otherwise.
type countResponse struct {
	Count  *int           `json:"count,omitempty"`
	Groups map[string]any `json:"groups,omitempty"`
}

func countKeys[K comparable](m map[K]int, render func(K) string) map[string]any {
	out := make(map[string]any, len(m))
	for k, v := range m {
		out[render(k)] = v
	}
	return out
}

func nestedKeys[K1, K2 comparable](m map[K1]map[K2]int, r1 func(K1) string, r2 func(K2) string) map[string]any {
	out := make(map[string]any, len(m))
	for k1, row := range m {
		inner := make(map[string]int, len(row))
		for k2, v := range row {
			inner[r2(k2)] = v
		}
		out[r1(k1)] = inner
	}
	return out
}

func itoaKey(y int) string                   { return strconv.Itoa(y) }
func devKey(t topology.DeviceType) string    { return t.String() }
func sevKey(s sev.Severity) string           { return s.String() }
func causeKey(c sev.RootCause) string        { return c.String() }
func designKey(dn topology.Design) string    { return dn.String() }
func (d *Daemon) query() sev.ShardedQuery    { return d.store.Query() }
func groups(m map[string]any) *countResponse { return &countResponse{Groups: m} }
func scalar(n int) *countResponse            { return &countResponse{Count: &n} }

func (d *Daemon) handleCount(q sev.ShardedQuery, p params) (any, error) {
	switch p.by {
	case "":
		return scalar(q.Count()), nil
	case "device":
		return groups(countKeys(q.CountByDeviceType(), devKey)), nil
	case "severity":
		return groups(countKeys(q.CountBySeverity(), sevKey)), nil
	case "year":
		return groups(countKeys(q.CountByYear(), itoaKey)), nil
	case "cause":
		return groups(countKeys(q.CountByRootCause(), causeKey)), nil
	case "severity-device":
		return groups(nestedKeys(q.CountBySeverityDeviceType(), sevKey, devKey)), nil
	case "year-severity":
		return groups(nestedKeys(q.CountByYearSeverity(), itoaKey, sevKey)), nil
	case "year-device":
		return groups(nestedKeys(q.CountByYearDeviceType(), itoaKey, devKey)), nil
	case "year-design":
		return groups(nestedKeys(q.CountByYearDesign(), itoaKey, designKey)), nil
	}
	return nil, fmt.Errorf("bad by=%q", p.by)
}

// band summarizes one resolution-time sample set as percentile bands
// (hours): the shape Figures 13/14 plot.
type band struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P75   float64 `json:"p75"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

func makeBand(xs []float64) (band, error) {
	ps, err := stats.Percentiles(xs, 50, 75, 90, 99)
	if err != nil {
		return band{}, err
	}
	return band{Count: len(xs), Mean: stats.Mean(xs), P50: ps[0], P75: ps[1], P90: ps[2], P99: ps[3]}, nil
}

// resolutionsResponse is the GET /query/resolutions body: percentile
// bands per group ("all" for ungrouped queries). Empty groups are
// omitted — a percentile of nothing is undefined, not zero.
type resolutionsResponse struct {
	Groups map[string]band `json:"groups"`
}

func (d *Daemon) handleResolutions(q sev.ShardedQuery, p params) (any, error) {
	samples := make(map[string][]float64)
	switch p.by {
	case "":
		if xs := q.Resolutions(); len(xs) > 0 {
			samples["all"] = xs
		}
	case "device":
		for t, xs := range q.ResolutionsByDeviceType() {
			samples[devKey(t)] = xs
		}
	case "year":
		for y, xs := range q.ResolutionsByYear() {
			samples[itoaKey(y)] = xs
		}
	default:
		return nil, fmt.Errorf("bad by=%q", p.by)
	}
	out := resolutionsResponse{Groups: make(map[string]band, len(samples))}
	for k, xs := range samples {
		if len(xs) == 0 {
			continue
		}
		b, err := makeBand(xs)
		if err != nil {
			return nil, err
		}
		out.Groups[k] = b
	}
	return out, nil
}

// handleIngest is POST /ingest: a JSON array of reports ingested as one
// batch (IDs assigned when zero, duplicates rejected atomically),
// bumping the dataset generation — which invalidates every cached
// response at once.
func (d *Daemon) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var reports []sev.Report
	if err := json.NewDecoder(r.Body).Decode(&reports); err != nil {
		http.Error(w, "decoding batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	ids, err := d.store.AddAll(reports)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	d.ingested.Add(uint64(len(ids)))
	d.mIngestBatches.Inc()
	d.mIngestReports.Add(int64(len(ids)))
	sort.Ints(ids)
	WriteJSON(w, struct {
		Ingested   int    `json:"ingested"`
		Generation uint64 `json:"generation"`
	}{len(ids), d.store.Generation()})
}
