package serve

import (
	"fmt"
	"runtime"

	"dcnr/internal/observe"
)

// DefaultCacheEntries is the result-cache capacity Validate fills in
// when Config.CacheEntries is zero.
const DefaultCacheEntries = 1024

// MaxShards bounds the partition count: shards are goroutine-owned, so a
// shard count wildly beyond any machine's core count only adds fan-out
// overhead.
const MaxShards = 256

// Config configures the SEV query daemon. The zero value is runnable:
// Validate normalizes it to one shard per CPU, the default cache size,
// and an OS-assigned port, following the sim.IntraConfig pattern —
// normalization happens in one place, NewDaemon calls it, and an
// explicitly invalid field is rejected rather than silently clamped.
type Config struct {
	// Addr is the listen address ("host:port"); empty means ":0", an
	// OS-assigned port.
	Addr string
	// Shards is the number of goroutine-owned store partitions queries
	// fan out across; 0 means one per CPU (GOMAXPROCS). Negative or
	// beyond MaxShards is rejected.
	Shards int
	// CacheEntries bounds the LRU result cache (responses keyed by
	// normalized query + dataset generation); 0 means
	// DefaultCacheEntries. Negative is rejected.
	CacheEntries int
	// Obs carries the optional observability bundle: Metrics instruments
	// the query engine and the serve layer, Health/Journal/Timeline back
	// the introspection endpoints. Zero means uninstrumented.
	Obs observe.Observe
}

// Validate normalizes cfg in place and reports the first invalid field.
// It is idempotent: validating a validated config changes nothing.
func (c *Config) Validate() error {
	if c.Addr == "" {
		c.Addr = ":0"
	}
	if c.Shards == 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Shards < 0 {
		return fmt.Errorf("serve: negative shard count %d", c.Shards)
	}
	if c.Shards > MaxShards {
		return fmt.Errorf("serve: shard count %d exceeds %d", c.Shards, MaxShards)
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = DefaultCacheEntries
	}
	if c.CacheEntries < 0 {
		return fmt.Errorf("serve: negative cache capacity %d", c.CacheEntries)
	}
	return nil
}
