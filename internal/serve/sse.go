package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// StreamSSE streams chunks from a subscription as server-sent events
// until the source closes the channel or the client goes away. subscribe
// is called once; its cancel runs when the stream ends. Each chunk may
// span multiple newline-separated lines — every line becomes one `data:`
// line of a single event, so the client reassembles the chunk by joining
// the event's data lines with newlines.
//
// This is the one SSE loop in the tree: the timeline delta stream, the
// sweep campaign event stream, and any Daemon stream all mount it.
func StreamSSE(w http.ResponseWriter, r *http.Request, subscribe func() (<-chan []byte, func())) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	ch, cancel := subscribe()
	defer cancel()
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case chunk, ok := <-ch:
			if !ok {
				return // source closed the stream
			}
			if err := writeSSE(w, chunk); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// writeSSE frames one chunk as a single SSE event: every newline-ended
// line becomes a data: line.
func writeSSE(w io.Writer, chunk []byte) error {
	start := 0
	for i, b := range chunk {
		if b != '\n' {
			continue
		}
		if _, err := fmt.Fprintf(w, "data: %s\n", chunk[start:i]); err != nil {
			return err
		}
		start = i + 1
	}
	if start < len(chunk) {
		if _, err := fmt.Fprintf(w, "data: %s\n", chunk[start:]); err != nil {
			return err
		}
	}
	_, err := w.Write([]byte("\n"))
	return err
}

// WriteJSON writes v as a JSON response. The write error is consciously
// dropped after the header went out — a client that hung up mid-response
// is its own problem, not the server's.
func WriteJSON(w http.ResponseWriter, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(append(data, '\n')); err != nil {
		return
	}
}
