package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"dcnr/internal/obs"
	"dcnr/internal/observe"
	"dcnr/internal/sev"
)

// daemonReports builds n valid reports across the indexed dimensions.
func daemonReports(n, base int) []sev.Report {
	devices := []string{
		"rsw001.cl001.dc1.ra", "csw001.cl001.dc1.ra", "csa001.dc1.ra",
		"esw001.cl001.dc1.ra", "ssw001.cl001.dc1.ra",
	}
	out := make([]sev.Report, n)
	for i := range out {
		k := base + i
		out[i] = sev.Report{
			Severity:   sev.Severity(1 + k%3),
			Device:     devices[k%len(devices)],
			Start:      float64(k * 3),
			Duration:   1,
			Resolution: float64(2 + k%7),
			Year:       2011 + k%7,
		}
	}
	return out
}

// startDaemon builds, seeds, and starts a daemon, returning its base URL
// and a cleanup-registered handle.
func startDaemon(t *testing.T, cfg Config, seed int) (*Daemon, string) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	d, err := NewDaemon(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Shutdown)
	if seed > 0 {
		if _, err := d.Store().AddAll(daemonReports(seed, 0)); err != nil {
			t.Fatal(err)
		}
	}
	addr, err := d.Start()
	if err != nil {
		t.Fatal(err)
	}
	return d, "http://" + addr
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	if v != nil {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("GET %s: decoding %q: %v", url, body, err)
		}
	}
	return resp
}

// TestDaemonQueryEndpoints cross-checks the HTTP aggregations against
// direct store queries.
func TestDaemonQueryEndpoints(t *testing.T) {
	d, base := startDaemon(t, Config{Shards: 3}, 200)
	var count struct {
		Count *int `json:"count"`
	}
	getJSON(t, base+"/query/count", &count)
	if count.Count == nil || *count.Count != 200 {
		t.Fatalf("/query/count = %+v, want 200", count)
	}
	var bySev struct {
		Groups map[string]int `json:"groups"`
	}
	getJSON(t, base+"/query/count?by=severity", &bySev)
	want := d.Store().Query().CountBySeverity()
	for s, n := range want {
		if bySev.Groups[s.String()] != n {
			t.Errorf("by=severity[%s] = %d, want %d", s, bySev.Groups[s.String()], n)
		}
	}
	// Filtered + grouped, with canonicalized device spelling.
	var nested struct {
		Groups map[string]map[string]int `json:"groups"`
	}
	getJSON(t, base+"/query/count?by=year-severity&device=rsw", &nested)
	if len(nested.Groups) == 0 {
		t.Error("year-severity with device filter returned no groups")
	}
	var res struct {
		Groups map[string]struct {
			Count int     `json:"count"`
			P50   float64 `json:"p50"`
			P99   float64 `json:"p99"`
		} `json:"groups"`
	}
	getJSON(t, base+"/query/resolutions", &res)
	if res.Groups["all"].Count != 200 || res.Groups["all"].P99 < res.Groups["all"].P50 {
		t.Errorf("/query/resolutions = %+v", res.Groups["all"])
	}
	getJSON(t, base+"/query/resolutions?by=device", &res)
	if len(res.Groups) == 0 {
		t.Error("resolutions by=device empty")
	}
	// Bad requests 400.
	for _, bad := range []string{
		"/query/count?by=bogus", "/query/count?year=twenty",
		"/query/count?device=nope", "/query/resolutions?by=severity",
	} {
		resp, err := http.Get(base + bad)
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("GET %s: %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestDaemonCacheGenerationBump is the LRU invalidation-on-ingest test:
// a repeated query hits the cache and revalidates to 304; POST /ingest
// bumps the generation, after which the same query misses (new key, new
// ETag) and returns the new result.
func TestDaemonCacheGenerationBump(t *testing.T) {
	d, base := startDaemon(t, Config{Shards: 2}, 50)
	url := base + "/query/count"

	resp1 := getJSON(t, url, nil)
	if xc := resp1.Header.Get("X-Cache"); xc != "miss" {
		t.Fatalf("first query X-Cache = %q", xc)
	}
	etag := resp1.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on query response")
	}
	resp2 := getJSON(t, url, nil)
	if xc := resp2.Header.Get("X-Cache"); xc != "hit" {
		t.Errorf("repeated query X-Cache = %q, want hit", xc)
	}
	if resp2.Header.Get("ETag") != etag {
		t.Errorf("ETag changed without ingest: %q -> %q", etag, resp2.Header.Get("ETag"))
	}
	// Conditional revalidation: 304 without recompute.
	req, _ := http.NewRequest("GET", url, nil)
	req.Header.Set("If-None-Match", etag)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match status = %d, want 304", resp3.StatusCode)
	}

	// Ingest bumps the generation: same query, new ETag, cache miss, new
	// count.
	batch, _ := json.Marshal(daemonReports(25, 1000))
	ir, err := http.Post(base+"/ingest", "application/json", bytes.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	ingestBody, _ := io.ReadAll(ir.Body)
	_ = ir.Body.Close()
	if ir.StatusCode != 200 {
		t.Fatalf("POST /ingest: %d %s", ir.StatusCode, ingestBody)
	}
	if !strings.Contains(string(ingestBody), `"ingested":25`) {
		t.Errorf("ingest response = %s", ingestBody)
	}

	var after struct {
		Count *int `json:"count"`
	}
	resp4 := getJSON(t, url, &after)
	if xc := resp4.Header.Get("X-Cache"); xc != "miss" {
		t.Errorf("post-ingest query X-Cache = %q, want miss", xc)
	}
	if resp4.Header.Get("ETag") == etag {
		t.Error("ETag unchanged across an ingest")
	}
	if after.Count == nil || *after.Count != 75 {
		t.Errorf("post-ingest count = %+v, want 75", after)
	}
	// The stale pre-ingest ETag no longer revalidates.
	req2, _ := http.NewRequest("GET", url, nil)
	req2.Header.Set("If-None-Match", etag)
	resp5, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp5.Body.Close()
	if resp5.StatusCode == http.StatusNotModified {
		t.Error("stale ETag revalidated after ingest")
	}
	if g := d.Generation(); g != 2 {
		t.Errorf("generation = %d, want 2 (seed batch + ingest)", g)
	}
}

// TestDaemonIngestRejectsBadBatch pins atomic rejection over HTTP:
// invalid reports and duplicate IDs answer 400 without partial ingest or
// a generation bump.
func TestDaemonIngestRejectsBadBatch(t *testing.T) {
	d, base := startDaemon(t, Config{Shards: 2}, 10)
	gen := d.Generation()
	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(base+"/ingest", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`not json`); code != 400 {
		t.Errorf("malformed body: %d", code)
	}
	if code := post(`[{"severity":9,"device":"rsw001.cl001.dc1.ra"}]`); code != 400 {
		t.Errorf("invalid report: %d", code)
	}
	if code := post(`[{"id":1,"severity":3,"device":"rsw001.cl001.dc1.ra","duration":1,"resolution":2,"year":2017}]`); code != 400 {
		t.Errorf("duplicate ID: %d", code)
	}
	if d.Generation() != gen {
		t.Error("generation bumped by rejected ingest")
	}
	var count struct {
		Count *int `json:"count"`
	}
	getJSON(t, base+"/query/count", &count)
	if *count.Count != 10 {
		t.Errorf("count after rejected batches = %d", *count.Count)
	}
	// GET on /ingest and POST on query endpoints are method errors.
	resp, _ := http.Get(base + "/ingest")
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /ingest: %d", resp.StatusCode)
	}
}

// TestDaemonStatsAndMetrics checks /stats counters and the serve_*
// series when a registry is attached.
func TestDaemonStatsAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	d, base := startDaemon(t, Config{Shards: 2, Obs: observe.Observe{Metrics: reg}}, 20)
	getJSON(t, base+"/query/count", nil)
	getJSON(t, base+"/query/count", nil)
	var st statsResponse
	getJSON(t, base+"/stats", &st)
	if st.Reports != 20 || st.Shards != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("cache stats = hits %d misses %d, want 1/1", st.CacheHits, st.CacheMisses)
	}
	if v := reg.Counter("serve_cache_hits_total").Value(); v != 1 {
		t.Errorf("serve_cache_hits_total = %d", v)
	}
	if v := reg.Counter("serve_queries_total").Value(); v != 2 {
		t.Errorf("serve_queries_total = %d", v)
	}
	_ = d
}

// TestDaemonLRUCapacityEviction: a cache smaller than the query set
// still serves correct results, just with misses.
func TestDaemonLRUCapacityEviction(t *testing.T) {
	_, base := startDaemon(t, Config{Shards: 1, CacheEntries: 2}, 30)
	urls := []string{
		base + "/query/count",
		base + "/query/count?by=severity",
		base + "/query/count?by=year",
		base + "/query/count?by=device",
	}
	for range [3]int{} {
		for _, u := range urls {
			getJSON(t, u, nil)
		}
	}
	var st statsResponse
	getJSON(t, base+"/stats", &st)
	if st.CacheEntries > 2 {
		t.Errorf("cache entries = %d, cap 2", st.CacheEntries)
	}
}

// TestDaemonNormalizedKeys: different spellings of one query share a
// cache entry.
func TestDaemonNormalizedKeys(t *testing.T) {
	_, base := startDaemon(t, Config{Shards: 2}, 20)
	r1 := getJSON(t, base+"/query/count?device=rsw&year=2013", nil)
	if r1.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first spelling: %q", r1.Header.Get("X-Cache"))
	}
	r2 := getJSON(t, base+"/query/count?year=2013&device=RSW", nil)
	if r2.Header.Get("X-Cache") != "hit" {
		t.Errorf("re-spelled query X-Cache = %q, want hit", r2.Header.Get("X-Cache"))
	}
	if r1.Header.Get("ETag") != r2.Header.Get("ETag") {
		t.Errorf("spellings got different ETags: %q vs %q", r1.Header.Get("ETag"), r2.Header.Get("ETag"))
	}
}

// TestDaemonString is a smoke test for the log description.
func TestDaemonString(t *testing.T) {
	cfg := Config{Shards: 2, CacheEntries: 8, Addr: "127.0.0.1:0"}
	d, err := NewDaemon(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	if got := fmt.Sprint(d); got != "dcnrd{shards: 2, cache: 8}" {
		t.Errorf("String = %q", got)
	}
}
