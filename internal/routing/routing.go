// Package routing computes equal-cost multi-path (ECMP) routes over the
// data center topology and the per-device load they induce.
//
// The paper's operational arguments lean on routing behaviour throughout:
// slow repairs "mean fewer switches to route requests ... and more
// congestion in the network" (§3.1), incidents manifest as "increased
// latency from congested links" (§4.2), and capacity loss shifts traffic
// onto surviving devices (the SEV2 example). This package makes those
// effects computable: given a set of failed devices and a demand matrix, it
// routes each demand across the surviving equal-cost shortest paths
// (fractionally, as hashed flows balance in aggregate) and reports load,
// utilization, and unroutable demands.
package routing

import (
	"fmt"
	"sort"

	"dcnr/internal/topology"
)

// Demand is a directed traffic demand between two devices, in Gb/s.
type Demand struct {
	Src, Dst string
	Gbps     float64
}

// Load maps device name → Gb/s transiting the device (including at the
// source and destination).
type Load map[string]float64

// Router routes demands over a Network with some devices down. The zero
// value is unusable; construct with New.
type Router struct {
	net  *topology.Network
	down map[string]bool
}

// New returns a Router over net with every device up.
func New(net *topology.Network) *Router {
	return &Router{net: net, down: map[string]bool{}}
}

// SetDown replaces the failed-device set. A nil map means all up.
func (r *Router) SetDown(down map[string]bool) {
	if down == nil {
		down = map[string]bool{}
	}
	r.down = down
}

// Down reports whether the named device is currently failed.
func (r *Router) Down(name string) bool { return r.down[name] }

// distances returns BFS hop counts from dst over up devices (reverse
// distances: the ECMP DAG toward dst follows strictly decreasing values).
func (r *Router) distances(dst string) map[string]int {
	if r.down[dst] || r.net.Device(dst) == nil {
		return nil
	}
	dist := map[string]int{dst: 0}
	queue := []string{dst}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range r.net.Neighbors(cur) {
			if r.down[nb] {
				continue
			}
			if _, seen := dist[nb]; seen {
				continue
			}
			dist[nb] = dist[cur] + 1
			queue = append(queue, nb)
		}
	}
	return dist
}

// NextHops returns the ECMP next hops from cur toward dst: the up
// neighbors one hop closer to dst, sorted for determinism. It returns nil
// when dst is unreachable from cur.
func (r *Router) NextHops(cur, dst string) []string {
	dist := r.distances(dst)
	d, ok := dist[cur]
	if !ok || r.down[cur] {
		return nil
	}
	var hops []string
	for _, nb := range r.net.Neighbors(cur) {
		if nd, ok := dist[nb]; ok && nd == d-1 {
			hops = append(hops, nb)
		}
	}
	sort.Strings(hops)
	return hops
}

// Distance returns the shortest-path hop count from src to dst over up
// devices, or -1 when dst is unreachable. With ECMP every used path has
// this length, so it doubles as the latency proxy: failures that force
// traffic around a dead layer lengthen it.
func (r *Router) Distance(src, dst string) int {
	dist := r.distances(dst)
	d, ok := dist[src]
	if !ok || r.down[src] {
		return -1
	}
	return d
}

// Path returns one deterministic shortest path (lowest-name next hop at
// each step), or nil if dst is unreachable.
func (r *Router) Path(src, dst string) []string {
	dist := r.distances(dst)
	if _, ok := dist[src]; !ok || r.down[src] {
		return nil
	}
	path := []string{src}
	cur := src
	for cur != dst {
		hops := r.nextHopsWithDist(cur, dist)
		if len(hops) == 0 {
			return nil
		}
		cur = hops[0]
		path = append(path, cur)
	}
	return path
}

func (r *Router) nextHopsWithDist(cur string, dist map[string]int) []string {
	d, ok := dist[cur]
	if !ok {
		return nil
	}
	var hops []string
	for _, nb := range r.net.Neighbors(cur) {
		if nd, ok := dist[nb]; ok && nd == d-1 {
			hops = append(hops, nb)
		}
	}
	sort.Strings(hops)
	return hops
}

// Route routes every demand across its ECMP DAG, splitting flow equally at
// each hop, and returns the accumulated per-device load plus the demands
// that could not be routed (source or destination down or partitioned).
func (r *Router) Route(demands []Demand) (Load, []Demand) {
	load := make(Load)
	var unroutable []Demand
	for _, dm := range demands {
		if !r.routeOne(dm, load) {
			unroutable = append(unroutable, dm)
		}
	}
	return load, unroutable
}

// routeOne spreads dm.Gbps over the ECMP DAG toward dm.Dst. Flow through
// each device is accumulated into load. Reports false if unroutable.
func (r *Router) routeOne(dm Demand, load Load) bool {
	if dm.Gbps < 0 {
		return false
	}
	dist := r.distances(dm.Dst)
	if _, ok := dist[dm.Src]; !ok || r.down[dm.Src] {
		return false
	}
	if dm.Src == dm.Dst {
		load[dm.Src] += dm.Gbps
		return true
	}
	// Propagate flow down the DAG in decreasing-distance order. flow[v]
	// is the traffic arriving at v.
	flow := map[string]float64{dm.Src: dm.Gbps}
	// Process devices ordered by distance, farthest first; within a
	// distance, name order for determinism.
	order := []string{dm.Src}
	seen := map[string]bool{dm.Src: true}
	for i := 0; i < len(order); i++ {
		cur := order[i]
		for _, nb := range r.nextHopsWithDist(cur, dist) {
			if !seen[nb] {
				seen[nb] = true
				order = append(order, nb)
			}
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		if dist[order[i]] != dist[order[j]] {
			return dist[order[i]] > dist[order[j]]
		}
		return order[i] < order[j]
	})
	for _, cur := range order {
		f := flow[cur]
		if f == 0 {
			continue
		}
		load[cur] += f
		if cur == dm.Dst {
			continue
		}
		hops := r.nextHopsWithDist(cur, dist)
		if len(hops) == 0 {
			return false
		}
		share := f / float64(len(hops))
		for _, nb := range hops {
			flow[nb] += share
		}
	}
	return true
}

// CapacityModel returns a device type's forwarding capacity in Gb/s.
type CapacityModel func(t topology.DeviceType) float64

// DefaultCapacity reflects the bisection-bandwidth ordering of Figure 1's
// hierarchy: rack switches terminate the least traffic, core devices the
// most.
func DefaultCapacity(t topology.DeviceType) float64 {
	switch t {
	case topology.Core:
		return 6400
	case topology.CSA, topology.ESW:
		return 3200
	case topology.SSW, topology.CSW:
		return 1600
	case topology.FSW:
		return 800
	default: // RSW, BBR
		return 480
	}
}

// Utilization converts a Load into per-device utilization fractions under
// the capacity model. Unknown devices are skipped.
func (r *Router) Utilization(load Load, capacity CapacityModel) map[string]float64 {
	if capacity == nil {
		capacity = DefaultCapacity
	}
	out := make(map[string]float64, len(load))
	for name, gbps := range load {
		d := r.net.Device(name)
		if d == nil {
			continue
		}
		c := capacity(d.Type)
		if c <= 0 {
			continue
		}
		out[name] = gbps / c
	}
	return out
}

// Congested returns the devices whose utilization meets or exceeds the
// threshold, sorted by descending utilization then name.
func Congested(util map[string]float64, threshold float64) []string {
	var names []string
	for name, u := range util {
		if u >= threshold {
			names = append(names, name)
		}
	}
	sort.Slice(names, func(i, j int) bool {
		if util[names[i]] != util[names[j]] {
			return util[names[i]] > util[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// MaxUtilization returns the highest utilization and the device carrying
// it ("" and 0 for an empty report).
func MaxUtilization(util map[string]float64) (string, float64) {
	best, bestU := "", 0.0
	for name, u := range util {
		if u > bestU || (u == bestU && (best == "" || name < best)) {
			best, bestU = name, u
		}
	}
	return best, bestU
}

// Validate sanity-checks a demand list against the network.
func Validate(net *topology.Network, demands []Demand) error {
	for i, dm := range demands {
		if net.Device(dm.Src) == nil {
			return fmt.Errorf("routing: demand %d has unknown src %q", i, dm.Src)
		}
		if net.Device(dm.Dst) == nil {
			return fmt.Errorf("routing: demand %d has unknown dst %q", i, dm.Dst)
		}
		if dm.Gbps < 0 {
			return fmt.Errorf("routing: demand %d has negative volume", i)
		}
	}
	return nil
}
