package routing

import (
	"math"
	"testing"
	"testing/quick"

	"dcnr/internal/fleet"
	"dcnr/internal/topology"
)

func testNet(t *testing.T) *topology.Network {
	t.Helper()
	net, err := fleet.RepresentativeTopology()
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func first(t *testing.T, net *topology.Network, dt topology.DeviceType) string {
	t.Helper()
	ds := net.DevicesOfType(dt)
	if len(ds) == 0 {
		t.Fatalf("no %v", dt)
	}
	return ds[0].Name
}

func TestNextHopsHealthy(t *testing.T) {
	net := testNet(t)
	r := New(net)
	rsw := first(t, net, topology.RSW)
	core := first(t, net, topology.Core)
	hops := r.NextHops(rsw, core)
	// A cluster RSW's next hops toward a core are its 4 CSWs.
	if len(hops) != 4 {
		t.Fatalf("next hops = %v", hops)
	}
	for _, h := range hops {
		if d := net.Device(h); d.Type != topology.CSW {
			t.Errorf("next hop %s is %v, want CSW", h, d.Type)
		}
	}
}

func TestNextHopsRespectFailures(t *testing.T) {
	net := testNet(t)
	r := New(net)
	rsw := first(t, net, topology.RSW)
	core := first(t, net, topology.Core)
	all := r.NextHops(rsw, core)
	r.SetDown(map[string]bool{all[0]: true})
	reduced := r.NextHops(rsw, core)
	if len(reduced) != len(all)-1 {
		t.Fatalf("hops after failure = %v", reduced)
	}
	for _, h := range reduced {
		if h == all[0] {
			t.Error("failed device still a next hop")
		}
	}
}

func TestPathShortest(t *testing.T) {
	net := testNet(t)
	r := New(net)
	rsw := first(t, net, topology.RSW)
	core := first(t, net, topology.Core)
	path := r.Path(rsw, core)
	// Cluster design: RSW → CSW → CSA → Core.
	if len(path) != 4 {
		t.Fatalf("path = %v", path)
	}
	if path[0] != rsw || path[len(path)-1] != core {
		t.Errorf("path endpoints wrong: %v", path)
	}
	types := []topology.DeviceType{topology.RSW, topology.CSW, topology.CSA, topology.Core}
	for i, name := range path {
		if net.Device(name).Type != types[i] {
			t.Errorf("hop %d = %v, want %v", i, net.Device(name).Type, types[i])
		}
	}
}

func TestPathUnreachable(t *testing.T) {
	net := testNet(t)
	r := New(net)
	rsw := first(t, net, topology.RSW)
	core := first(t, net, topology.Core)
	// Kill every CSW neighbor: the rack is stranded.
	down := map[string]bool{}
	for _, nb := range net.Neighbors(rsw) {
		down[nb] = true
	}
	r.SetDown(down)
	if p := r.Path(rsw, core); p != nil {
		t.Errorf("path through dead CSWs: %v", p)
	}
	if hops := r.NextHops(rsw, core); hops != nil {
		t.Errorf("next hops through dead CSWs: %v", hops)
	}
}

func TestRouteConservesFlowAtDestination(t *testing.T) {
	net := testNet(t)
	r := New(net)
	rsw := first(t, net, topology.RSW)
	core := first(t, net, topology.Core)
	load, unroutable := r.Route([]Demand{{Src: rsw, Dst: core, Gbps: 40}})
	if len(unroutable) != 0 {
		t.Fatalf("unroutable = %v", unroutable)
	}
	if math.Abs(load[rsw]-40) > 1e-9 {
		t.Errorf("source load = %v, want 40", load[rsw])
	}
	if math.Abs(load[core]-40) > 1e-9 {
		t.Errorf("destination load = %v, want 40 (flow must reconverge)", load[core])
	}
}

func TestRouteSplitsAcrossECMP(t *testing.T) {
	net := testNet(t)
	r := New(net)
	rsw := first(t, net, topology.RSW)
	core := first(t, net, topology.Core)
	load, _ := r.Route([]Demand{{Src: rsw, Dst: core, Gbps: 40}})
	// The 4 CSWs each carry a quarter.
	for _, nb := range net.Neighbors(rsw) {
		if math.Abs(load[nb]-10) > 1e-9 {
			t.Errorf("CSW %s load = %v, want 10", nb, load[nb])
		}
	}
}

func TestFailureShiftsLoadToSurvivors(t *testing.T) {
	// §3.1: fewer switches to route requests → higher load on the rest.
	net := testNet(t)
	r := New(net)
	rsw := first(t, net, topology.RSW)
	core := first(t, net, topology.Core)
	csws := net.Neighbors(rsw)
	load, _ := r.Route([]Demand{{Src: rsw, Dst: core, Gbps: 40}})
	before := load[csws[1]]

	r.SetDown(map[string]bool{csws[0]: true})
	load2, unroutable := r.Route([]Demand{{Src: rsw, Dst: core, Gbps: 40}})
	if len(unroutable) != 0 {
		t.Fatalf("unroutable after single CSW failure: %v", unroutable)
	}
	after := load2[csws[1]]
	if math.Abs(before-10) > 1e-9 || math.Abs(after-40.0/3) > 1e-9 {
		t.Errorf("survivor load %v → %v, want 10 → 13.33", before, after)
	}
	if load2[csws[0]] != 0 {
		t.Error("failed device carries load")
	}
}

func TestRouteUnroutableCases(t *testing.T) {
	net := testNet(t)
	r := New(net)
	rsw := first(t, net, topology.RSW)
	core := first(t, net, topology.Core)
	r.SetDown(map[string]bool{rsw: true})
	_, unroutable := r.Route([]Demand{{Src: rsw, Dst: core, Gbps: 1}})
	if len(unroutable) != 1 {
		t.Error("demand from a failed source routed")
	}
	r.SetDown(nil)
	_, unroutable = r.Route([]Demand{{Src: rsw, Dst: core, Gbps: -1}})
	if len(unroutable) != 1 {
		t.Error("negative demand routed")
	}
}

func TestRouteSelfDemand(t *testing.T) {
	net := testNet(t)
	r := New(net)
	rsw := first(t, net, topology.RSW)
	load, unroutable := r.Route([]Demand{{Src: rsw, Dst: rsw, Gbps: 5}})
	if len(unroutable) != 0 || load[rsw] != 5 {
		t.Errorf("self demand: load=%v unroutable=%v", load[rsw], unroutable)
	}
}

func TestFlowConservationProperty(t *testing.T) {
	// For random demands, destination load always equals the demand sum
	// of routable flows (ECMP splitting must not leak flow).
	net := testNet(t)
	racks := net.DevicesOfType(topology.RSW)
	cores := net.DevicesOfType(topology.Core)
	r := New(net)
	f := func(rackIdx, coreIdx uint8, gbps10 uint8) bool {
		src := racks[int(rackIdx)%len(racks)].Name
		dst := cores[int(coreIdx)%len(cores)].Name
		gbps := float64(gbps10) / 10
		load, unroutable := r.Route([]Demand{{Src: src, Dst: dst, Gbps: gbps}})
		if len(unroutable) != 0 {
			return false
		}
		return math.Abs(load[dst]-gbps) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilizationAndCongestion(t *testing.T) {
	net := testNet(t)
	r := New(net)
	rsw := first(t, net, topology.RSW)
	core := first(t, net, topology.Core)
	// 480 Gb/s fills the RSW to exactly 1.0 under the default model.
	load, _ := r.Route([]Demand{{Src: rsw, Dst: core, Gbps: 480}})
	util := r.Utilization(load, nil)
	if math.Abs(util[rsw]-1.0) > 1e-9 {
		t.Errorf("RSW utilization = %v, want 1.0", util[rsw])
	}
	congested := Congested(util, 0.9)
	if len(congested) == 0 || congested[0] != rsw {
		t.Errorf("congested = %v, want RSW first", congested)
	}
	name, u := MaxUtilization(util)
	if name != rsw || u != util[rsw] {
		t.Errorf("MaxUtilization = %s %v", name, u)
	}
	if n, u := MaxUtilization(nil); n != "" || u != 0 {
		t.Error("MaxUtilization of empty report")
	}
}

func TestDefaultCapacityOrdering(t *testing.T) {
	if !(DefaultCapacity(topology.Core) > DefaultCapacity(topology.CSA) &&
		DefaultCapacity(topology.CSA) > DefaultCapacity(topology.CSW) &&
		DefaultCapacity(topology.CSW) > DefaultCapacity(topology.RSW)) {
		t.Error("capacity must follow the bisection-bandwidth hierarchy")
	}
}

func TestValidate(t *testing.T) {
	net := testNet(t)
	rsw := first(t, net, topology.RSW)
	if err := Validate(net, []Demand{{Src: rsw, Dst: rsw, Gbps: 1}}); err != nil {
		t.Errorf("valid demand rejected: %v", err)
	}
	if err := Validate(net, []Demand{{Src: "ghost", Dst: rsw, Gbps: 1}}); err == nil {
		t.Error("unknown src accepted")
	}
	if err := Validate(net, []Demand{{Src: rsw, Dst: "ghost", Gbps: 1}}); err == nil {
		t.Error("unknown dst accepted")
	}
	if err := Validate(net, []Demand{{Src: rsw, Dst: rsw, Gbps: -1}}); err == nil {
		t.Error("negative volume accepted")
	}
}

func BenchmarkRouteSingleDemand(b *testing.B) {
	net, err := fleet.RepresentativeTopology()
	if err != nil {
		b.Fatal(err)
	}
	r := New(net)
	src := net.DevicesOfType(topology.RSW)[0].Name
	dst := net.DevicesOfType(topology.Core)[0].Name
	demands := []Demand{{Src: src, Dst: dst, Gbps: 40}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, un := r.Route(demands); len(un) != 0 {
			b.Fatal("unroutable")
		}
	}
}

func TestDistance(t *testing.T) {
	net := testNet(t)
	r := New(net)
	rsw := first(t, net, topology.RSW)
	core := first(t, net, topology.Core)
	// Cluster design: RSW → CSW → CSA → Core = 3 hops.
	if got := r.Distance(rsw, core); got != 3 {
		t.Errorf("Distance = %d, want 3", got)
	}
	if got := r.Distance(rsw, rsw); got != 0 {
		t.Errorf("self distance = %d", got)
	}
	down := map[string]bool{}
	for _, nb := range net.Neighbors(rsw) {
		down[nb] = true
	}
	r.SetDown(down)
	if got := r.Distance(rsw, core); got != -1 {
		t.Errorf("stranded distance = %d, want -1", got)
	}
}
