// Package obs is the telemetry layer of the reproduction: a dependency-free
// (standard library only) metrics registry and trace recorder that the
// simulation, remediation, monitoring, and analysis packages report into.
//
// The paper's whole contribution is measurement, so the pipeline that
// regenerates it must itself be measurable: regressions like the SEV query
// engine silently falling back to sequential scans, or remediation queue
// buildup, are invisible without counters on the hot paths. The design
// constraints, in order:
//
//   - Zero cost when disabled. Every metric type is safe to call through a
//     nil pointer (a no-op), so un-instrumented simulations pay only a
//     predictable nil check.
//   - Safe under concurrency. Counters, gauges, and histogram buckets are
//     lock-free atomics; the registry itself takes a lock only on metric
//     creation and snapshot, never on the observation path.
//   - Standard exposition. A Registry renders as a point-in-time Snapshot,
//     as an expvar.Var (for -metrics-addr style debug endpoints), and as
//     Prometheus text exposition format.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. The nil Counter is a valid
// no-op, so instrumented code never branches on "is telemetry attached".
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative deltas are a programming error; they are applied
// as-is so tests can detect them in snapshots).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that goes up and down. The nil Gauge is a valid no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add applies a delta with a compare-and-swap loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bounds are inclusive
// upper limits in ascending order; observations above the last bound land
// in an implicit +Inf bucket. The nil Histogram is a valid no-op.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists are short (≤ ~12) and the branch predictor
	// beats binary search at that size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Batch returns a single-goroutine staging buffer for h: Observe on the
// batch is plain arithmetic (no atomics), and Flush folds the staged
// samples into the shared histogram in one pass. Hot loops that observe
// per event (the DES kernel) stage locally and flush at sync points, so
// concurrent snapshot readers see slightly stale but always consistent
// totals. A nil Histogram returns a nil (no-op) batch.
func (h *Histogram) Batch() *HistogramBatch {
	if h == nil {
		return nil
	}
	return &HistogramBatch{h: h, counts: make([]int64, len(h.counts))}
}

// HistogramBatch stages observations for one Histogram. It is NOT safe for
// concurrent use — one goroutine owns a batch. The nil batch is a no-op.
type HistogramBatch struct {
	h      *Histogram
	counts []int64
	count  int64
	sum    float64
}

// Observe stages one sample.
func (b *HistogramBatch) Observe(v float64) {
	if b == nil {
		return
	}
	bounds := b.h.bounds
	i := 0
	for i < len(bounds) && v > bounds[i] {
		i++
	}
	b.counts[i]++
	b.count++
	b.sum += v
}

// ObserveN stages n samples of value v in one bucket scan — how callers
// that time in windows (one clock read across n events) attribute the
// per-event average to each event.
func (b *HistogramBatch) ObserveN(v float64, n int64) {
	if b == nil || n <= 0 {
		return
	}
	bounds := b.h.bounds
	i := 0
	for i < len(bounds) && v > bounds[i] {
		i++
	}
	b.counts[i] += n
	b.count += n
	b.sum += v * float64(n)
}

// Flush publishes the staged samples to the shared histogram and clears
// the batch. Cheap when nothing is staged.
func (b *HistogramBatch) Flush() {
	if b == nil || b.count == 0 {
		return
	}
	h := b.h
	for i, c := range b.counts {
		if c != 0 {
			h.counts[i].Add(c)
			b.counts[i] = 0
		}
	}
	h.count.Add(b.count)
	b.count = 0
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + b.sum)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	b.sum = 0
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// HistogramSnapshot is a Histogram frozen at a point in time. Counts are
// per-bucket (not cumulative); the final entry is the +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) of the observed
// distribution by linear interpolation inside the bucket that contains
// the target rank — the standard Prometheus histogram_quantile estimate.
// An empty snapshot returns NaN; ranks landing in the +Inf bucket return
// the last finite bound (the estimate saturates, as in Prometheus).
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count <= 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := int64(0)
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		if float64(cum) >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.Bounds[i-1]
			}
			inBucket := float64(h.Counts[i])
			if inBucket == 0 {
				return bound
			}
			below := float64(cum) - inBucket
			return lower + (bound-lower)*(rank-below)/inBucket
		}
	}
	if len(h.Bounds) == 0 {
		return math.NaN()
	}
	return h.Bounds[len(h.Bounds)-1]
}

// merge folds another histogram snapshot into h. Bucket layouts must
// match; mismatches report an error so callers do not silently sum
// incompatible distributions.
func (h *HistogramSnapshot) merge(other HistogramSnapshot) error {
	if len(other.Bounds) != len(h.Bounds) {
		return fmt.Errorf("obs: merging histograms with %d vs %d bounds", len(other.Bounds), len(h.Bounds))
	}
	for i := range h.Bounds {
		if h.Bounds[i] != other.Bounds[i] {
			return fmt.Errorf("obs: merging histograms with different bounds at %d: %v vs %v",
				i, h.Bounds[i], other.Bounds[i])
		}
	}
	for i := range h.Counts {
		h.Counts[i] += other.Counts[i]
	}
	h.Count += other.Count
	h.Sum += other.Sum
	return nil
}

// Snapshot is a Registry frozen at a point in time, suitable for JSON
// encoding (it is what the expvar exposition serves).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Merge folds other into s: counters add, histograms merge bucket-wise
// (same-name histograms must share bucket layouts), and gauges take
// other's value (last writer wins — gauges are point-in-time levels, not
// accumulations). It is how multi-registry runs (one registry per shard
// or per simulation) combine into a single exposition.
func (s *Snapshot) Merge(other Snapshot) error {
	if s.Counters == nil {
		s.Counters = make(map[string]int64)
	}
	if s.Gauges == nil {
		s.Gauges = make(map[string]float64)
	}
	if s.Histograms == nil {
		s.Histograms = make(map[string]HistogramSnapshot)
	}
	for name, v := range other.Counters {
		s.Counters[name] += v
	}
	for name, v := range other.Gauges {
		s.Gauges[name] = v
	}
	for name, oh := range other.Histograms {
		mine, ok := s.Histograms[name]
		if !ok {
			mine = HistogramSnapshot{
				Bounds: append([]float64(nil), oh.Bounds...),
				Counts: make([]int64, len(oh.Counts)),
			}
		}
		if err := mine.merge(oh); err != nil {
			return fmt.Errorf("%w (histogram %q)", err, name)
		}
		s.Histograms[name] = mine
	}
	return nil
}

// MergeSnapshots folds a sequence of snapshots into one, left to right,
// under Snapshot.Merge's rules (counters add, histograms merge bucket-wise,
// gauges last-writer-wins). It is the one-call form the sweep engine uses
// to combine per-run registries into a single campaign-wide exposition.
func MergeSnapshots(snaps ...Snapshot) (Snapshot, error) {
	var out Snapshot
	for i := range snaps {
		if err := out.Merge(snaps[i]); err != nil {
			return Snapshot{}, err
		}
	}
	return out, nil
}

// WriteJSON writes the snapshot as indented JSON. Map keys serialize
// sorted, so equal snapshots produce byte-identical output.
func (s Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Registry holds named metrics. Lookups are get-or-create: the first caller
// of a name defines it, later callers share the same metric. Registering
// one name as two different metric kinds panics — that is a wiring bug, not
// a runtime condition. The zero Registry is not usable; construct with
// NewRegistry. A nil *Registry hands out nil metrics, so a whole subsystem
// can be instrumented or not with a single nil check at wiring time.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

func (r *Registry) checkFree(name, want string) {
	if _, ok := r.counters[name]; ok && want != "counter" {
		panic(fmt.Sprintf("obs: %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok && want != "gauge" {
		panic(fmt.Sprintf("obs: %q already registered as a gauge", name))
	}
	if _, ok := r.histograms[name]; ok && want != "histogram" {
		panic(fmt.Sprintf("obs: %q already registered as a histogram", name))
	}
}

// Counter returns the counter with the given name, creating it on first
// use. Nil registries return a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFree(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFree(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram with the given name, creating it with the
// given bucket bounds on first use. Later calls ignore bounds and return
// the existing histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	r.checkFree(name, "histogram")
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

// Snapshot returns a point-in-time copy of every metric.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		snap.Histograms[name] = hs
	}
	return snap
}

// ExpvarVar adapts the registry to the expvar interface: the returned Var
// renders the current Snapshot as JSON. Publish it under a name of your
// choosing (expvar.Publish panics on duplicate names, so callers own that
// decision).
func (r *Registry) ExpvarVar() expvar.Var {
	return expvar.Func(func() any { return r.Snapshot() })
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, histograms
// as cumulative le-labelled buckets with _sum and _count series. Metric
// names are emitted as registered — callers pick exposition-safe
// snake_case names.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, snap.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %v\n", name, name, snap.Gauges[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(bound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %v\n%s_count %d\n",
			name, h.Count, name, h.Sum, name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promFloat renders a histogram bound the way Prometheus' own exposition
// library does: infinities as +Inf/-Inf, integral bounds with an explicit
// ".0", and the shortest round-trippable decimal otherwise. fmt's %v would
// render the bound 1.0 as a bare "1", which scrapers treat as a different
// series than the "1.0" every other Prometheus client emits — bucket
// continuity would silently break the first time a registry from this
// package replaced one from client_golang.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}
