package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
)

// The sim-time slog handler makes every structured log record carry both
// clocks the reproduction runs on: the wall clock (slog's standard "time"
// attribute, stamped by log/slog itself) and the simulation clock (a
// "sim_hours" attribute). Emitters inside the event loop attach sim_hours
// explicitly — they know the exact event time — and records from outside
// the loop fall back to the handler's sim-time gauge, which the
// instrumented DES kernel keeps current (des_sim_hours). Either way a log
// line is joinable against trace spans and health-engine transitions on
// the simulation timeline.

// SimHoursKey is the attribute key carrying simulation time in hours since
// the epoch. Emitters with exact event times attach it themselves; the
// handler adds it (from its gauge) when absent.
const SimHoursKey = "sim_hours"

// SimHours is a convenience constructor for the simulation-time attribute.
func SimHours(hours float64) slog.Attr { return slog.Float64(SimHoursKey, hours) }

// SimHandler is a slog.Handler that decorates an inner text or JSON
// handler with the simulation clock. Construct with NewSimHandler.
type SimHandler struct {
	inner slog.Handler
	sim   *Gauge // fallback sim-time source; may be nil
}

// ParseLogLevel maps the -log-level flag vocabulary (debug, info, warn,
// error) to a slog.Level.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error)", s)
}

// NewSimHandler returns a SimHandler writing to w in the given format
// ("text" or "json"), filtering below level, and reading fallback
// simulation time from sim (usually the registry's des_sim_hours gauge;
// nil disables the fallback). Writes to w are serialized by an internal
// mutex, so one handler may receive records from concurrent simulations.
func NewSimHandler(w io.Writer, format string, level slog.Leveler, sim *Gauge) (*SimHandler, error) {
	lw := &lockedWriter{w: w}
	opts := &slog.HandlerOptions{Level: level}
	var inner slog.Handler
	switch strings.ToLower(format) {
	case "text", "":
		inner = slog.NewTextHandler(lw, opts)
	case "json":
		inner = slog.NewJSONHandler(lw, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (text, json)", format)
	}
	return &SimHandler{inner: inner, sim: sim}, nil
}

// lockedWriter serializes writes: slog handlers guarantee atomicity per
// record, but two handlers sharing a file (or one handler fed from two
// goroutines mid-simulation) still need the file-level lock.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// Enabled implements slog.Handler.
func (h *SimHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle implements slog.Handler: records lacking a sim_hours attribute
// gain one from the handler's gauge, so every line carries both clocks.
func (h *SimHandler) Handle(ctx context.Context, r slog.Record) error {
	if h.sim != nil && !hasSimHours(r) {
		r.AddAttrs(SimHours(h.sim.Value()))
	}
	return h.inner.Handle(ctx, r)
}

func hasSimHours(r slog.Record) bool {
	found := false
	r.Attrs(func(a slog.Attr) bool {
		if a.Key == SimHoursKey {
			found = true
			return false
		}
		return true
	})
	return found
}

// WithAttrs implements slog.Handler.
func (h *SimHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &SimHandler{inner: h.inner.WithAttrs(attrs), sim: h.sim}
}

// WithGroup implements slog.Handler.
func (h *SimHandler) WithGroup(name string) slog.Handler {
	return &SimHandler{inner: h.inner.WithGroup(name), sim: h.sim}
}
