package obs

import (
	"strconv"
	"sync"
	"time"
)

// SpanRing is a batched span recorder for instrumented hot loops: a
// fixed-size staging buffer of compact, allocation-free records that is
// flushed into the owning Tracer in batches, so the hot path never builds
// an args map and takes the tracer lock only once per ringBatch records.
//
// A ring is SINGLE-WRITER: exactly one goroutine may call Record /
// RecordWall / Flush at a time (callers that share a ring across
// goroutines, like the remediation engine, serialize on their own mutex).
// Readers (Tracer.Events, Tracer.WriteJSON, Tracer.Len) see only flushed
// records, so the writer must Flush before the trace is read — the DES
// kernel flushes on every Run/Step exit, the remediation engine in
// FlushTrace.
//
// Each record carries a name (an index into the ring's name table, or -1
// for the ring's default name), trace timestamps, and up to ringArgs
// numeric args materialized under the ring's fixed arg keys. String-valued
// args that are constant across the ring (a device type, a lane label) go
// in ConstArgs once instead of per record.
//
// All methods are safe on a nil *SpanRing, so call sites can hold an
// unconditional ring field that is nil when tracing is off.
type SpanRing struct {
	t        *Tracer
	pid, tid int
	cat      string
	name     string

	// names is the optional per-record name table; Record's name argument
	// indexes it. Set via SetNames before the first Record.
	names []string
	// keys are the arg keys, at most ringArgs; len(keys) args are
	// materialized per record.
	keys []string
	// constArgs are (key, value) pairs attached to every record.
	constArgs [][2]string

	buf [ringBatch]spanRec // staging buffer, single-writer
	n   int

	// flushed holds published records as immutable blocks of at most
	// ringBatch records: Flush appends one freshly-copied block instead of
	// growing a single flat slice, so publishing never re-copies earlier
	// records (a flat append spent more memory bandwidth on growslice
	// copies than the simulation spent producing the records).
	mu      sync.Mutex
	flushed [][]spanRec
	total   int
}

const (
	// ringBatch is the staging-buffer size: one tracer-lock acquisition
	// per this many records.
	ringBatch = 512
	// ringArgs is the per-record numeric arg capacity.
	ringArgs = 3
)

// spanRec is one compact span record: 48 bytes, no pointers, so a full
// staging buffer is a single 24 KiB GC-free block.
type spanRec struct {
	name int32 // index into SpanRing.names; -1 = ring default name
	ts   float64
	dur  float64
	args [ringArgs]float64
}

// Ring creates a batched span recorder on the given track and lane. The
// keys (at most 3) name the numeric args each record carries. Returns nil
// on a nil Tracer; every SpanRing method is nil-safe.
//
// name, cat, keys, and any SetNames / SetConstArg strings must be plain
// JSON-safe text (no quotes, backslashes, or control characters): the
// trace writer emits them without escaping.
func (t *Tracer) Ring(pid, tid int, cat, name string, keys ...string) *SpanRing {
	if t == nil {
		return nil
	}
	if len(keys) > ringArgs {
		keys = keys[:ringArgs]
	}
	r := &SpanRing{t: t, pid: pid, tid: tid, cat: cat, name: name, keys: keys}
	t.mu.Lock()
	t.rings = append(t.rings, r)
	t.mu.Unlock()
	return r
}

// SetNames installs the per-record name table; Record's first argument
// indexes it. Call once, before the first Record.
func (r *SpanRing) SetNames(names ...string) *SpanRing {
	if r == nil {
		return r
	}
	r.names = names
	return r
}

// SetConstArg attaches a string arg emitted with every record — for values
// that are constant across the ring, like the device type of a lane.
func (r *SpanRing) SetConstArg(key, value string) *SpanRing {
	if r == nil {
		return r
	}
	r.constArgs = append(r.constArgs, [2]string{key, value})
	return r
}

// Record appends a span with explicit trace timestamps (microseconds on
// the ring's track). name indexes the SetNames table; pass -1 for the
// ring's default name. Unused args are ignored at materialization (only
// len(keys) args are emitted).
//
//hot:noalloc
func (r *SpanRing) Record(name int32, ts, dur, a0, a1, a2 float64) {
	if r == nil {
		return
	}
	r.buf[r.n] = spanRec{name: name, ts: ts, dur: dur, args: [ringArgs]float64{a0, a1, a2}}
	r.n++
	if r.n == ringBatch {
		r.Flush()
	}
}

// RecordWall appends a wall-clock span measured by (start, wall),
// positioned relative to the tracer's origin — the hot-loop replacement
// for Begin/End that costs two plain stores instead of a map and a lock.
//
//hot:noalloc
func (r *SpanRing) RecordWall(name int32, start time.Time, wall time.Duration, a0, a1, a2 float64) {
	if r == nil {
		return
	}
	ts := float64(start.Sub(r.t.start)) / float64(time.Microsecond)
	r.Record(name, ts, float64(wall)/float64(time.Microsecond), a0, a1, a2)
}

// Flush publishes the staged records to readers. Only the writer may call
// it; it takes the tracer-side lock once for the whole batch.
func (r *SpanRing) Flush() {
	if r == nil || r.n == 0 {
		return
	}
	blk := make([]spanRec, r.n)
	copy(blk, r.buf[:r.n])
	r.mu.Lock()
	r.flushed = append(r.flushed, blk)
	r.total += r.n
	r.mu.Unlock()
	r.n = 0
}

// recName resolves a record's span name.
func (r *SpanRing) recName(rec spanRec) string {
	if rec.name >= 0 && int(rec.name) < len(r.names) {
		return r.names[rec.name]
	}
	return r.name
}

// blocks returns the flushed record blocks. The blocks themselves are
// immutable once published, so only the block list is copied.
func (r *SpanRing) blocks() [][]spanRec {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([][]spanRec(nil), r.flushed...)
}

// materialize converts the flushed records to regular Events (args maps
// included) — the compatibility path behind Tracer.Events.
func (r *SpanRing) materialize() []Event {
	var recs []spanRec
	for _, blk := range r.blocks() {
		recs = append(recs, blk...)
	}
	out := make([]Event, 0, len(recs))
	for _, rec := range recs {
		args := make(map[string]any, len(r.keys)+len(r.constArgs))
		for _, kv := range r.constArgs {
			args[kv[0]] = kv[1]
		}
		for i, k := range r.keys {
			args[k] = rec.args[i]
		}
		out = append(out, Event{
			Name:  r.recName(rec),
			Cat:   r.cat,
			Phase: "X",
			TS:    rec.ts,
			Dur:   rec.dur,
			PID:   r.pid,
			TID:   r.tid,
			Args:  args,
		})
	}
	return out
}

// appendJSONRecs writes the given records as trace-event JSON objects,
// comma-prefixed, assuming at least one event precedes them (the caller
// always writes the track-name metadata first). The encoder is hand-rolled:
// on a 200k-span trace the generic map-based path costs more than the
// simulation itself. Callers chunk recs so the output buffer can flush
// between chunks.
func (r *SpanRing) appendJSONRecs(b []byte, recs []spanRec) []byte {
	// The name-independent middle of every record is identical; build it
	// once.
	mid := []byte(`","cat":"` + r.cat + `","ph":"X","ts":`)
	var tail []byte
	tail = append(tail, `,"pid":`...)
	tail = strconv.AppendInt(tail, int64(r.pid), 10)
	tail = append(tail, `,"tid":`...)
	tail = strconv.AppendInt(tail, int64(r.tid), 10)
	tail = append(tail, `,"args":{`...)
	for _, kv := range r.constArgs {
		tail = append(tail, '"')
		tail = append(tail, kv[0]...)
		tail = append(tail, `":"`...)
		tail = append(tail, kv[1]...)
		tail = append(tail, `",`...)
	}
	for _, rec := range recs {
		b = append(b, `,{"name":"`...)
		b = append(b, r.recName(rec)...)
		b = append(b, mid...)
		b = appendTraceFloat(b, rec.ts)
		b = append(b, `,"dur":`...)
		b = appendTraceFloat(b, rec.dur)
		b = append(b, tail...)
		for i, k := range r.keys {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, '"')
			b = append(b, k...)
			b = append(b, `":`...)
			b = appendTraceFloat(b, rec.args[i])
		}
		b = append(b, `}}`...)
	}
	return b
}

// appendTraceFloat formats a trace number compactly: integers without a
// fraction, everything else with three decimals (nanosecond resolution on
// microsecond timestamps). Sub-millisecond precision beyond that is below
// what the viewer renders, and fixed precision keeps a 200k-event file
// tens of percent smaller than shortest-round-trip formatting.
//
// The three-decimal case is hand-rolled integer math: strconv's fixed-
// precision 'f' path routes large timestamps (a seven-year sim span is
// ~6e10 µs) through big-decimal conversion, which profiled as the single
// largest cost of writing a 200k-span trace.
func appendTraceFloat(b []byte, v float64) []byte {
	if i := int64(v); float64(i) == v && i > -1e15 && i < 1e15 {
		return strconv.AppendInt(b, i, 10)
	}
	av := v
	if av < 0 {
		av = -av
	}
	if av < 9e15 { // av*1000+0.5 stays exact in int64; NaN/Inf fall through
		n := int64(av*1000 + 0.5)
		if v < 0 {
			b = append(b, '-')
		}
		b = strconv.AppendInt(b, n/1000, 10)
		f := n % 1000
		return append(b, '.', byte('0'+f/100), byte('0'+f/10%10), byte('0'+f%10))
	}
	return strconv.AppendFloat(b, v, 'f', 3, 64)
}

// ringLen returns the number of flushed records.
func (r *SpanRing) ringLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
