package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestSpanRecordsCompleteEvent(t *testing.T) {
	tr := NewTracer()
	sp := tr.Begin("des", "event").SetArg("sim_now", 12.5)
	sp.End()
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d, want 1", len(evs))
	}
	e := evs[0]
	if e.Name != "event" || e.Cat != "des" || e.Phase != "X" || e.PID != WallPID || e.TID != 1 {
		t.Errorf("event = %+v", e)
	}
	if e.Args["sim_now"] != 12.5 {
		t.Errorf("args = %v", e.Args)
	}
	if e.Dur < 0 {
		t.Errorf("negative duration %v", e.Dur)
	}
}

func TestSimSpanUsesSimClock(t *testing.T) {
	tr := NewTracer()
	tr.EmitSimSpan(3, "remediation", "port ping failure", 24, 2, map[string]any{"priority": 1})
	tr.SimInstant(3, "remediation", "escalated", 30, nil)
	evs := tr.Events()
	if evs[0].PID != SimPID || evs[0].TS != SimMicros(24) || evs[0].Dur != SimMicros(2) || evs[0].TID != 3 {
		t.Errorf("sim span = %+v", evs[0])
	}
	if evs[1].Phase != "i" || evs[1].TS != SimMicros(30) {
		t.Errorf("sim instant = %+v", evs[1])
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer enabled")
	}
	sp := tr.Begin("a", "b").SetArg("k", 1)
	sp.End()
	tr.Emit(Event{Name: "x"})
	tr.Instant("a", "b", nil)
	tr.CounterSample("c", 1)
	tr.EmitSimSpan(1, "a", "b", 0, 1, nil)
	tr.SimInstant(1, "a", "b", 0, nil)
	if tr.Len() != 0 || tr.Events() != nil || tr.Now() != 0 {
		t.Error("nil tracer recorded state")
	}
	// WriteJSON on a nil tracer still emits a valid (metadata-only) trace.
	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	if len(f.TraceEvents) != 2 {
		t.Errorf("metadata events = %d, want 2", len(f.TraceEvents))
	}
}

func TestWriteJSONIsValidChromeTrace(t *testing.T) {
	tr := NewTracer()
	tr.Begin("repro", "table1").End()
	tr.CounterSample("des_queue_depth", 17)
	tr.EmitSimSpan(1, "remediation", "repair", 10, 0.5, nil)
	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents     []Event `json:"traceEvents"`
		DisplayTimeUnit string  `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b.Bytes(), &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// 2 metadata + 3 recorded.
	if len(f.TraceEvents) != 5 {
		t.Fatalf("events = %d, want 5", len(f.TraceEvents))
	}
	if f.TraceEvents[0].Phase != "M" || f.TraceEvents[1].Phase != "M" {
		t.Error("trace does not open with process_name metadata")
	}
	for _, e := range f.TraceEvents {
		if e.Phase == "" || e.Name == "" || e.PID == 0 {
			t.Errorf("malformed event %+v", e)
		}
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
}

func TestEmitDefaultsPIDandTID(t *testing.T) {
	tr := NewTracer()
	tr.Emit(Event{Name: "bare", Phase: "i"})
	e := tr.Events()[0]
	if e.PID != WallPID || e.TID != 1 {
		t.Errorf("defaults not applied: %+v", e)
	}
}

func TestConcurrentEmit(t *testing.T) {
	tr := NewTracer()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.BeginOn(w+1, "load", "task").End()
			}
		}()
	}
	wg.Wait()
	if tr.Len() != workers*per {
		t.Errorf("events = %d, want %d", tr.Len(), workers*per)
	}
}

// TestConcurrentFlushAndRecord exercises flushing (WriteJSON/Events/Len)
// while recorders are still emitting — the repro server can serve a trace
// dump mid-simulation, so snapshots must be internally consistent and
// every flush must parse as a complete Chrome trace. Run under -race.
func TestConcurrentFlushAndRecord(t *testing.T) {
	tr := NewTracer()
	const workers, per, flushes = 4, 300, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				switch i % 3 {
				case 0:
					tr.BeginOn(w+1, "work", "flush-race").End()
				case 1:
					tr.Instant("tick", "flush-race", nil)
				default:
					tr.CounterSample("depth", float64(i))
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		prev := 0
		for i := 0; i < flushes; i++ {
			var buf bytes.Buffer
			if err := tr.WriteJSON(&buf); err != nil {
				t.Errorf("flush %d: WriteJSON: %v", i, err)
				return
			}
			var f struct {
				TraceEvents []Event `json:"traceEvents"`
			}
			if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
				t.Errorf("flush %d: invalid trace JSON: %v", i, err)
				return
			}
			// Events only accumulate; a later flush can never see fewer.
			n := len(tr.Events())
			if n < prev {
				t.Errorf("flush %d: events shrank %d -> %d", i, prev, n)
				return
			}
			prev = n
			if tr.Len() < n {
				t.Errorf("flush %d: Len()=%d < observed %d", i, tr.Len(), n)
				return
			}
		}
	}()
	wg.Wait()
	if got := tr.Len(); got != workers*per {
		t.Errorf("final events = %d, want %d", got, workers*per)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("final WriteJSON: %v", err)
	}
}
