package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// The trace recorder emits Chrome trace-event JSON: the array-of-events
// format that chrome://tracing and Perfetto load directly. Two process
// lanes separate the two clocks the reproduction runs on:
//
//   - WallPID ("wall clock"): spans measured with time.Now — DES event
//     handling cost, per-analysis task time in the parallel runner.
//   - SimPID ("simulation time"): spans positioned on the virtual clock —
//     remediation submit→outcome intervals, fault lifecycles. One displayed
//     second on this track is one simulated hour (see SimMicros).
//
// All methods are safe on a nil *Tracer (no-ops) and safe for concurrent
// use; recording is an append under a mutex, cheap enough for the DES hot
// loop at study scale.
const (
	// WallPID is the trace process id of the wall-clock track.
	WallPID = 1
	// SimPID is the trace process id of the simulation-time track.
	SimPID = 2
)

// SimMicros converts simulation hours to trace microseconds on the SimPID
// track: 1 simulated hour renders as 1 second of trace time, which keeps a
// seven-year run (~61k hours) inside a comfortably navigable timeline.
func SimMicros(hours float64) float64 { return hours * 1e6 }

// Event is one Chrome trace event. Phase follows the trace-event spec:
// "X" complete (TS+Dur), "i" instant, "C" counter, "M" metadata.
type Event struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// Tracer records trace events. Construct with NewTracer; a nil *Tracer is a
// valid recorder that drops everything, so call sites gate hot-path work
// with Enabled() and otherwise call through unconditionally.
type Tracer struct {
	mu     sync.Mutex
	start  time.Time
	events []Event
	// rings are the batched hot-loop recorders created by Ring; their
	// flushed records join events at read time (Events, Len, WriteJSON).
	rings []*SpanRing
}

// NewTracer returns a Tracer whose wall-clock origin (trace ts 0) is now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// Fork returns a new, empty tracer sharing t's wall-clock origin, so
// events recorded on both land on one consistent timeline when written
// into the same file with a TraceJSONWriter. The fork lets a caller
// serialize one phase's (large) trace while a later phase records on the
// fork — the two never contend. A nil tracer forks to nil.
func (t *Tracer) Fork() *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{start: t.start}
}

// Enabled reports whether events are being recorded. It is the hot-path
// guard: skip building args maps when false.
func (t *Tracer) Enabled() bool { return t != nil }

// Now returns the current wall-clock trace timestamp in microseconds since
// the tracer's origin.
func (t *Tracer) Now() float64 {
	if t == nil {
		return 0
	}
	return float64(time.Since(t.start)) / float64(time.Microsecond)
}

// Emit records a raw event. Zero PID defaults to WallPID; zero TID to 1.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	if e.PID == 0 {
		e.PID = WallPID
	}
	if e.TID == 0 {
		e.TID = 1
	}
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Span is an in-flight wall-clock interval opened by Begin. End records it
// as a complete ("X") event. The zero Span (and any Span from a nil
// Tracer) is a no-op.
type Span struct {
	t     *Tracer
	tid   int
	cat   string
	name  string
	ts    float64
	begin time.Time
	args  map[string]any
}

// Begin opens a wall-clock span on lane 1 of the wall track.
func (t *Tracer) Begin(cat, name string) Span { return t.BeginOn(1, cat, name) }

// BeginOn opens a wall-clock span on the given lane (trace tid) of the
// wall track — the parallel runner uses one lane per worker.
func (t *Tracer) BeginOn(tid int, cat, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, tid: tid, cat: cat, name: name, ts: t.Now(), begin: time.Now()}
}

// SetArg attaches a key/value pair shown in the trace viewer's detail pane.
func (s Span) SetArg(key string, value any) Span {
	if s.t == nil {
		return s
	}
	if s.args == nil {
		s.args = make(map[string]any, 4)
	}
	s.args[key] = value
	return s
}

// End records the span. Duration is measured with the monotonic clock.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.Emit(Event{
		Name:  s.name,
		Cat:   s.cat,
		Phase: "X",
		TS:    s.ts,
		Dur:   float64(time.Since(s.begin)) / float64(time.Microsecond),
		PID:   WallPID,
		TID:   s.tid,
		Args:  s.args,
	})
}

// Instant records a zero-duration marker on the wall track.
func (t *Tracer) Instant(cat, name string, args map[string]any) {
	if t == nil {
		return
	}
	t.Emit(Event{Name: name, Cat: cat, Phase: "i", TS: t.Now(), PID: WallPID, TID: 1, Args: args})
}

// CounterSample records a counter ("C") sample on the wall track; the
// viewer renders consecutive samples of one name as a filled area chart.
func (t *Tracer) CounterSample(name string, value float64) {
	if t == nil {
		return
	}
	t.Emit(Event{Name: name, Phase: "C", TS: t.Now(), PID: WallPID, TID: 1,
		Args: map[string]any{"value": value}})
}

// EmitSimSpan records a complete event on the simulation-time track,
// positioned and sized in simulated hours.
func (t *Tracer) EmitSimSpan(tid int, cat, name string, startHours, durHours float64, args map[string]any) {
	if t == nil {
		return
	}
	t.Emit(Event{
		Name:  name,
		Cat:   cat,
		Phase: "X",
		TS:    SimMicros(startHours),
		Dur:   SimMicros(durHours),
		PID:   SimPID,
		TID:   tid,
		Args:  args,
	})
}

// SimInstant records a zero-duration marker on the simulation-time track.
func (t *Tracer) SimInstant(tid int, cat, name string, atHours float64, args map[string]any) {
	if t == nil {
		return
	}
	t.Emit(Event{Name: name, Cat: cat, Phase: "i", TS: SimMicros(atHours), PID: SimPID, TID: tid, Args: args})
}

// Len returns the number of recorded events, including every ring's
// flushed records.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	n := len(t.events)
	rings := t.rings
	t.mu.Unlock()
	for _, r := range rings {
		n += r.ringLen()
	}
	return n
}

// Events returns a copy of the recorded events: directly-emitted events in
// emission order, followed by each ring's flushed records (materialized
// with their args maps) in ring-creation order. Trace timestamps, not file
// order, position events on the timeline.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Event(nil), t.events...)
	rings := t.rings
	t.mu.Unlock()
	for _, r := range rings {
		out = append(out, r.materialize()...)
	}
	return out
}

// WriteJSON writes the trace in Chrome trace-event JSON object format,
// prefixed with metadata events that name the wall-clock and
// simulation-time tracks in the viewer.
//
// Directly-emitted events go through encoding/json; ring records use their
// hand-rolled encoder and a batched buffer, so a multi-hundred-thousand
// span trace streams out in tens of milliseconds instead of seconds. The
// two sections may interleave arbitrarily on disk — the viewer orders by
// timestamp, not file position.
func (t *Tracer) WriteJSON(w io.Writer) error {
	tw := NewTraceJSONWriter(w)
	if err := tw.Add(t); err != nil {
		return err
	}
	return tw.Close()
}

// TraceJSONWriter streams one Chrome trace-event file from any number of
// tracers: NewTraceJSONWriter writes the header, each Add appends one
// tracer's events, Close writes the trailer. Tracers that should share a
// timeline must share a wall-clock origin (Tracer.Fork).
//
// The point of the split is pipelining: a caller can Add an early phase's
// bulky trace — serialization plus disk write — while a later phase is
// still simulating on a fork, then Add the fork and Close. Methods must
// not be called concurrently with each other; an Add may run concurrently
// with recording on *other* tracers only.
type TraceJSONWriter struct {
	w   io.Writer
	buf []byte
	err error
}

// NewTraceJSONWriter starts a trace file on w: header plus the metadata
// events naming the wall-clock and simulation-time tracks.
func NewTraceJSONWriter(w io.Writer) *TraceJSONWriter {
	meta := []Event{
		{Name: "process_name", Phase: "M", PID: WallPID, TID: 1,
			Args: map[string]any{"name": "wall clock"}},
		{Name: "process_name", Phase: "M", PID: SimPID, TID: 1,
			Args: map[string]any{"name": "simulation time (1 s = 1 simulated hour)"}},
	}
	tw := &TraceJSONWriter{w: w, buf: make([]byte, 0, 1<<20)}
	tw.buf = append(tw.buf, `{"traceEvents":[`...)
	for i, e := range meta {
		if i > 0 {
			tw.buf = append(tw.buf, ',')
		}
		data, err := json.Marshal(e)
		if err != nil {
			tw.err = err
			return tw
		}
		tw.buf = append(tw.buf, data...)
	}
	return tw
}

func (tw *TraceJSONWriter) flush(force bool) error {
	if !force && len(tw.buf) < 1<<19 {
		return nil
	}
	if _, err := tw.w.Write(tw.buf); err != nil {
		tw.err = err
		return err
	}
	tw.buf = tw.buf[:0]
	return nil
}

// Add appends t's events — direct events first, then every ring's flushed
// records. A nil tracer adds nothing. Flush rings before calling: records
// still staged in a ring's buffer are not visible here.
func (tw *TraceJSONWriter) Add(t *Tracer) error {
	if tw.err != nil {
		return tw.err
	}
	var direct []Event
	var rings []*SpanRing
	if t != nil {
		t.mu.Lock()
		direct = append([]Event(nil), t.events...)
		rings = t.rings
		t.mu.Unlock()
	}
	for _, e := range direct {
		data, err := json.Marshal(e)
		if err != nil {
			tw.err = err
			return err
		}
		tw.buf = append(tw.buf, ',')
		tw.buf = append(tw.buf, data...)
		if err := tw.flush(false); err != nil {
			return err
		}
	}
	for _, r := range rings {
		for _, blk := range r.blocks() {
			tw.buf = r.appendJSONRecs(tw.buf, blk)
			if err := tw.flush(false); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close writes the trailer and flushes. It does not close the underlying
// writer.
func (tw *TraceJSONWriter) Close() error {
	if tw.err != nil {
		return tw.err
	}
	tw.buf = append(tw.buf, `],"displayTimeUnit":"ms"}`...)
	tw.buf = append(tw.buf, '\n')
	return tw.flush(true)
}
