package health

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"

	"dcnr/internal/obs"
)

// testTargets: one device type, 100 expected incidents/year flat across
// three years, slack 1.5. Budget for a 15-day window ≈ 1.5 * 100*360/8760
// ≈ 6.16 incidents.
func testTargets() Targets {
	exp := map[int]map[string]float64{}
	pop := map[int]map[string]int{}
	mttr := map[int]float64{}
	for y := 2011; y <= 2013; y++ {
		exp[y] = map[string]float64{"RSW": 100}
		pop[y] = map[string]int{"RSW": 1000}
		mttr[y] = 10
	}
	return Targets{EpochYear: 2011, Expected: exp, Population: pop, MTTRp75: mttr}
}

type recordingSink struct {
	mu   sync.Mutex
	msgs []string
}

func (r *recordingSink) Notify(text string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.msgs = append(r.msgs, text)
	return nil
}

func (r *recordingSink) all() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.msgs...)
}

func TestExpectedIncidentsIntegration(t *testing.T) {
	tg := testTargets()
	if got := tg.expectedIncidents("RSW", 0, hoursPerYear); got != 100 {
		t.Errorf("one full year = %v, want 100", got)
	}
	// Half of 2011 + half of 2012 at the same rate.
	got := tg.expectedIncidents("RSW", hoursPerYear/2, hoursPerYear*3/2)
	if got < 99.9 || got > 100.1 {
		t.Errorf("year-straddling window = %v, want ≈ 100", got)
	}
	// Windows reaching before the study start truncate.
	if got := tg.expectedIncidents("RSW", -hoursPerYear, hoursPerYear); got != 100 {
		t.Errorf("pre-epoch window = %v, want 100", got)
	}
	// Fleet-wide sums types.
	tg.Expected[2011]["Core"] = 50
	if got := tg.expectedIncidents(FleetWide, 0, hoursPerYear); got != 150 {
		t.Errorf("fleet-wide year = %v, want 150", got)
	}
}

// driveBurn feeds n incidents uniformly over (from, to] and evaluates
// daily, returning the engine.
func seedIncidents(e *Engine, n int, from, to float64) {
	step := (to - from) / float64(n)
	for i := 0; i < n; i++ {
		e.RecordIncident(from+float64(i)*step+step/2, "RSW", 5)
	}
}

func TestBurnRuleLifecycle(t *testing.T) {
	rule := Rule{
		Name: "fast", Signal: SignalIncidentBurn,
		Windows: []float64{15 * 24, 60 * 24}, Threshold: 2.0, For: 48,
	}
	e, err := New(testTargets(), []Rule{rule})
	if err != nil {
		t.Fatal(err)
	}
	sink := &recordingSink{}
	e.SetSink(sink)
	reg := obs.NewRegistry()
	e.Instrument(reg)

	// Year 1 at calibration: ~100 incidents, burn ≈ 0.67 — stays quiet.
	seedIncidents(e, 100, 0, hoursPerYear)
	for d := 1; d <= 365; d++ {
		e.Evaluate(float64(d) * 24)
	}
	if got := e.Report(); !got.Healthy {
		t.Fatalf("calibrated year should stay healthy: %+v", got.Rules)
	}
	if n := len(sink.all()); n != 0 {
		t.Fatalf("calibrated year produced %d notifications", n)
	}

	// Year 2 elevated 5×: both windows breach, rule walks
	// inactive→pending→firing.
	seedIncidents(e, 500, hoursPerYear, 2*hoursPerYear)
	for d := 366; d <= 730; d++ {
		e.Evaluate(float64(d) * 24)
	}
	rep := e.Report()
	if rep.Healthy {
		t.Fatal("elevated year should be firing")
	}
	if st := rep.Rules[0].State; st != "firing" {
		t.Fatalf("rule state = %s, want firing", st)
	}

	// Year 3 back to calibration: windows drain, rule resolves.
	seedIncidents(e, 100, 2*hoursPerYear, 3*hoursPerYear)
	for d := 731; d <= 1095; d++ {
		e.Evaluate(float64(d) * 24)
	}
	rep = e.Report()
	if !rep.Healthy {
		t.Fatalf("rule should have resolved: %+v", rep.Rules)
	}

	// The history must contain the full walk, in order.
	var walk []string
	for _, tr := range rep.Transitions {
		walk = append(walk, tr.From+">"+tr.To)
	}
	want := []string{"inactive>pending", "pending>firing", "firing>inactive"}
	if strings.Join(walk, " ") != strings.Join(want, " ") {
		t.Errorf("transition walk = %v, want %v", walk, want)
	}
	// Transitions reached the sink and the metrics.
	if msgs := sink.all(); len(msgs) != 3 || !strings.Contains(msgs[1], "firing") {
		t.Errorf("sink messages = %v", msgs)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["health_transitions_total"]; got != 3 {
		t.Errorf("health_transitions_total = %d, want 3", got)
	}
	if got := snap.Counters["health_evaluations_total"]; got != 1095 {
		t.Errorf("health_evaluations_total = %d, want 1095", got)
	}
	if _, ok := snap.Gauges["health_burn_fast"]; !ok {
		t.Error("per-rule burn gauge not registered")
	}
}

func TestForDurationGatesFiring(t *testing.T) {
	rule := Rule{
		Name: "gated", Signal: SignalIncidentBurn,
		Windows: []float64{15 * 24}, Threshold: 2.0, For: 72,
	}
	e, err := New(testTargets(), []Rule{rule})
	if err != nil {
		t.Fatal(err)
	}
	e.RecordFault(1, "RSW") // open the observation window
	// Burst breaching the 15-day window, placed after it can fill.
	seedIncidents(e, 30, 400, 410)
	e.Evaluate(420) // condition true → pending
	e.Evaluate(444) // held 24h < 72h → still pending
	rep := e.Report()
	if st := rep.Rules[0].State; st != "pending" {
		t.Fatalf("state after 24h = %s, want pending", st)
	}
	e.Evaluate(500) // held 80h ≥ 72h → firing
	if st := e.Report().Rules[0].State; st != "firing" {
		t.Fatalf("state after 80h = %s, want firing", st)
	}
}

func TestPendingResetsWhenConditionClears(t *testing.T) {
	rule := Rule{
		Name: "flappy", Signal: SignalIncidentBurn,
		Windows: []float64{10 * 24}, Threshold: 2.0, For: 1000,
	}
	e, err := New(testTargets(), []Rule{rule})
	if err != nil {
		t.Fatal(err)
	}
	e.RecordFault(1, "RSW") // open the observation window
	seedIncidents(e, 20, 400, 410)
	e.Evaluate(420)
	if st := e.Report().Rules[0].State; st != "pending" {
		t.Fatalf("state = %s, want pending", st)
	}
	// Window slides past the burst: condition clears before For elapses.
	e.Evaluate(420 + 12*24)
	if st := e.Report().Rules[0].State; st != "inactive" {
		t.Fatalf("state = %s, want inactive after condition cleared", st)
	}
	if n := len(e.Report().Transitions); n != 2 {
		t.Errorf("transitions = %d, want 2 (pending then back)", n)
	}
}

func TestMultiWindowAND(t *testing.T) {
	rule := Rule{
		Name: "and", Signal: SignalIncidentBurn,
		Windows: []float64{5 * 24, 60 * 24}, Threshold: 2.0, For: 0,
	}
	e, err := New(testTargets(), []Rule{rule})
	if err != nil {
		t.Fatal(err)
	}
	e.RecordFault(1, "RSW") // open the observation window
	// A short spike breaches the 5-day window but not the 60-day one.
	seedIncidents(e, 10, 2000, 2024)
	e.Evaluate(2048)
	rep := e.Report()
	if st := rep.Rules[0].State; st != "inactive" {
		t.Fatalf("short-window-only spike moved rule to %s; values %v", st, rep.Rules[0].Values)
	}
	if v := rep.Rules[0].Values; len(v) != 2 || v[0] <= v[1] {
		t.Errorf("expected short window hotter than long: %v", v)
	}
}

func TestMTTRSignalNeedsSamples(t *testing.T) {
	rule := Rule{
		Name: "mttr", Signal: SignalMTTR,
		Windows: []float64{90 * 24}, Threshold: 2.0, For: 0,
	}
	e, err := New(testTargets(), []Rule{rule})
	if err != nil {
		t.Fatal(err)
	}
	e.RecordFault(1, "RSW") // open the observation window
	// One short of the sample floor: unmeasurable, must stay inactive.
	for i := 0; i < minMTTRSamples-1; i++ {
		e.RecordIncident(2200+float64(i), "RSW", 100)
	}
	e.Evaluate(2400)
	if st := e.Report().Rules[0].State; st != "inactive" {
		t.Fatalf("under-sampled MTTR signal fired: %s", st)
	}
	// One more sample crosses the floor: p75=100 vs target 10 → fires.
	e.RecordIncident(2210, "RSW", 100)
	e.Evaluate(2424)
	if st := e.Report().Rules[0].State; st != "firing" {
		t.Fatalf("state = %s, want firing (p75 10× target, For=0)", st)
	}
}

func TestEdgeAvailabilitySignalAndReport(t *testing.T) {
	tg := testTargets()
	tg.EdgeAvailability = 0.999 // budget: 0.1% of the window
	e, err := New(tg, EdgeRules())
	if err != nil {
		t.Fatal(err)
	}
	e.Evaluate(1) // open the observation window
	// 720h window budget = 0.72h of downtime; record 3h.
	e.RecordEdgeDown(1000, 1003)
	e.Evaluate(1100)
	rep := e.Report()
	if rep.EdgeAvailability == nil {
		t.Fatal("edge SLO missing from report")
	}
	if rep.EdgeAvailability.DowntimeHours != 3 {
		t.Errorf("downtime = %v, want 3", rep.EdgeAvailability.DowntimeHours)
	}
	if st := rep.Rules[0].State; st != "pending" {
		t.Fatalf("edge rule state = %s, want pending (For=72h)", st)
	}
	e.Evaluate(1180)
	if st := e.Report().Rules[0].State; st != "firing" {
		t.Fatalf("edge rule state = %s, want firing", st)
	}
}

func TestOutOfOrderIncidentInsert(t *testing.T) {
	e, err := New(testTargets(), DefaultRules())
	if err != nil {
		t.Fatal(err)
	}
	e.RecordIncident(100, "RSW", 1)
	e.RecordIncident(50, "RSW", 1) // late arrival
	e.RecordIncident(75, "RSW", 1)
	if got := e.countIncidents("RSW", 60, 110); got != 2 {
		t.Errorf("window count over out-of-order inserts = %d, want 2", got)
	}
	if got := e.countIncidents(FleetWide, 0, 200); got != 3 {
		t.Errorf("fleet count = %d, want 3", got)
	}
}

func TestNilEngineIsNoOp(t *testing.T) {
	var e *Engine
	e.RecordFault(1, "RSW")
	e.RecordRepair(1, "RSW")
	e.RecordIncident(1, "RSW", 1)
	e.RecordEdgeDown(1, 2)
	e.Evaluate(10)
	e.SetSink(nil)
	e.SetLogger(nil)
	e.Instrument(obs.NewRegistry())
	if !e.Healthy() {
		t.Error("nil engine should be healthy")
	}
	rep := e.Report()
	if !rep.Healthy {
		t.Error("nil engine report should be healthy")
	}
}

func TestRuleValidation(t *testing.T) {
	bad := []Rule{
		{Name: "", Signal: SignalIncidentBurn, Windows: []float64{1}, Threshold: 1},
		{Name: "w", Signal: SignalIncidentBurn, Threshold: 1},
		{Name: "t", Signal: SignalIncidentBurn, Windows: []float64{1}},
		{Name: "s", Signal: "bogus", Windows: []float64{1}, Threshold: 1},
		{Name: "neg", Signal: SignalMTTR, Windows: []float64{1}, Threshold: 1, For: -1},
	}
	for _, r := range bad {
		if _, err := New(testTargets(), []Rule{r}); err == nil {
			t.Errorf("rule %+v should fail validation", r)
		}
	}
	dup := DefaultRules()
	if _, err := New(testTargets(), append(dup, dup[0])); err == nil {
		t.Error("duplicate rule names should fail")
	}
}

func TestReportJSONAndLogging(t *testing.T) {
	e, err := New(testTargets(), DefaultRules())
	if err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	h, err := obs.NewSimHandler(&logBuf, "json", slog.LevelInfo, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.SetLogger(slog.New(h))
	e.RecordFault(10, "RSW")
	e.RecordRepair(10, "RSW")
	seedIncidents(e, 200, 0, 60*24) // hot enough to transition
	for d := 1; d <= 70; d++ {      // run past the longest window filling
		e.Evaluate(float64(d) * 24)
	}
	var buf bytes.Buffer
	if err := e.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var rep SLOReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Types["RSW"].Faults != 1 || rep.Types["RSW"].Repairs != 1 {
		t.Errorf("fault/repair counts lost: %+v", rep.Types["RSW"])
	}
	if rep.Fleet.Incidents == 0 || rep.Fleet.MTBFHours <= 0 {
		t.Errorf("fleet stats empty: %+v", rep.Fleet)
	}
	if len(rep.Transitions) == 0 {
		t.Fatal("expected at least one transition")
	}
	// Transition logs carry the sim clock of the transition instant.
	line := logBuf.String()
	if !strings.Contains(line, "health alert transition") || !strings.Contains(line, obs.SimHoursKey) {
		t.Errorf("transition log missing or lacks sim_hours: %q", line)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.Split(strings.TrimSpace(line), "\n")[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec[obs.SimHoursKey].(float64) != rep.Transitions[0].AtSimHours {
		t.Errorf("log sim_hours %v != transition sim time %v", rec[obs.SimHoursKey], rep.Transitions[0].AtSimHours)
	}
}

func TestConcurrentRecordAndReport(t *testing.T) {
	e, err := New(testTargets(), DefaultRules())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			e.RecordIncident(float64(i), "RSW", 1)
			if i%50 == 0 {
				e.Evaluate(float64(i))
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = e.Report()
			_ = e.Healthy()
		}
	}()
	wg.Wait()
}
