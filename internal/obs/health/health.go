// Package health is a streaming SLO evaluation engine over the simulated
// operational history. It consumes the event stream the simulation already
// produces — device faults, escalated incidents, repairs, backbone edge
// downtime — and continuously judges it against calibration targets: the
// expected incident volumes, resolution-time percentiles, and populations
// that package faults uses to shape the generator. On top of the live
// signals sits a declarative alert-rule layer with SRE-style multi-window
// error-budget burn rates and a pending→firing→resolved state machine whose
// transitions are notified, logged with simulation timestamps, and counted
// in obs metrics.
//
// The engine is deliberately decoupled from the generator: package faults
// imports health (to feed it and to derive Targets from its calibration
// tables), never the reverse. Device types are plain strings here so the
// package depends only on internal/obs and the standard library. All Engine
// methods are safe on a nil receiver, following the obs idiom: an
// uninstrumented simulation pays one nil check per event.
package health

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"strings"
	"sync"

	"dcnr/internal/obs"
)

// hoursPerYear mirrors des.HoursPerYear without importing the kernel.
const hoursPerYear = 365 * 24

// FleetWide is the Rule.Type value (the empty string) selecting the whole
// fleet rather than one device type.
const FleetWide = ""

// minMTTRSamples is the minimum number of resolved incidents a window must
// hold before the MTTR signal is considered measurable. Resolution times
// are roughly log-normal with σ ≈ 1.2, so a sample p75 over n draws has a
// log-space standard error near 1.6/√n: below ~20 samples a single tail
// draw parks in the window and doubles the estimate on its own.
const minMTTRSamples = 20

// Targets holds the calibration-derived objectives the engine evaluates
// against. Package faults builds one from its calibration tables via
// HealthTargets; tests may construct them directly.
type Targets struct {
	// EpochYear anchors simulation hour 0 (hour t falls in calendar year
	// EpochYear + floor(t/8760)).
	EpochYear int
	// Expected is the calibrated expected incident count per calendar
	// year and device type; the error budget for a window is its
	// time-integral times BudgetSlack.
	Expected map[int]map[string]float64
	// Population is the deployed device count per year and type, the
	// MTBF denominator.
	Population map[int]map[string]int
	// MTTRp75 is the target 75th-percentile incident resolution time in
	// hours, per year.
	MTTRp75 map[int]float64
	// BudgetSlack scales expected volumes into the error budget
	// (budget = slack × expected). Zero means the default 1.5: a run
	// tracking its calibration burns ~2/3 of budget, leaving headroom so
	// Poisson noise alone does not page.
	BudgetSlack float64
	// EdgeAvailability is the target per-window backbone edge
	// availability (e.g. 0.9999); zero disables the edge signal.
	EdgeAvailability float64
	// ReportWindowHours is the rolling window SLOReport summarizes over.
	// Zero means the default 2160h (90 days).
	ReportWindowHours float64
}

func (t Targets) slack() float64 {
	if t.BudgetSlack > 0 {
		return t.BudgetSlack
	}
	return 1.5
}

func (t Targets) reportWindow() float64 {
	if t.ReportWindowHours > 0 {
		return t.ReportWindowHours
	}
	return 2160
}

// expectedIncidents integrates the calibrated incident rate for device
// type dt (FleetWide sums all types) over the sim-hour interval [from, to],
// crossing year boundaries as needed. Years without calibration contribute
// nothing, which truncates windows reaching before the study period.
func (t Targets) expectedIncidents(dt string, from, to float64) float64 {
	if from < 0 {
		from = 0
	}
	if to <= from {
		return 0
	}
	total := 0.0
	for year, types := range t.Expected {
		ys := float64(year-t.EpochYear) * hoursPerYear
		lo, hi := max(from, ys), min(to, ys+hoursPerYear)
		if hi <= lo {
			continue
		}
		rate := 0.0
		if dt == FleetWide {
			for _, v := range types {
				rate += v
			}
		} else {
			rate = types[dt]
		}
		total += rate * (hi - lo) / hoursPerYear
	}
	return total
}

// populationAt returns the deployed count for dt (FleetWide sums) in the
// year containing sim-hour t. Repair completions drain a little past the
// final calibrated year, so instants beyond the table fall back to the
// latest year with population data rather than reporting zero devices.
func (t Targets) populationAt(at float64, dt string) int {
	year := t.yearOf(at)
	types, ok := t.Population[year]
	for !ok && year > t.EpochYear {
		year--
		types, ok = t.Population[year]
	}
	if dt != FleetWide {
		return types[dt]
	}
	n := 0
	for _, v := range types {
		n += v
	}
	return n
}

func (t Targets) yearOf(at float64) int {
	if at <= 0 {
		return t.EpochYear
	}
	// An instant exactly on a year boundary (e.g. the final evaluation of
	// a run, at the first hour of the following year) belongs to the year
	// just completed, not a year with no calibration.
	return t.EpochYear + int((at-1e-9)/hoursPerYear)
}

// mttrTarget returns the resolution-p75 objective for the year containing
// sim-hour t, falling back to the latest calibrated year beyond the study
// period.
func (t Targets) mttrTarget(at float64) float64 {
	if v := t.MTTRp75[t.yearOf(at)]; v > 0 {
		return v
	}
	last := 0.0
	lastYear := 0
	for y, v := range t.MTTRp75 {
		if y > lastYear {
			lastYear, last = y, v
		}
	}
	return last
}

// Sink receives one line of text per alert transition. notify.Client and
// notify.Recorder satisfy it; SinkFunc adapts a closure.
type Sink interface {
	Notify(text string) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(text string) error

// Notify implements Sink.
func (f SinkFunc) Notify(text string) error { return f(text) }

// incident is one escalated fault on the engine's timeline.
type incident struct {
	at         float64
	resolution float64
}

// interval is one edge-downtime span.
type interval struct {
	start, end float64
}

// Engine is the streaming evaluator. Construct with New, then feed it
// Record* events (in roughly nondecreasing sim time; small inversions are
// re-sorted on insert) and call Evaluate on a periodic sim-time tick. All
// methods are goroutine-safe and no-ops on a nil receiver.
type Engine struct {
	mu      sync.Mutex
	targets Targets
	rules   []*ruleState
	sink    Sink
	logger  *slog.Logger
	now     float64

	// started is the earliest sim-hour any event or evaluation touched
	// (+Inf until the first). A rule window reaching before it is not
	// yet full and is unmeasurable — without this, every window at the
	// start of a run truncates to the same few days of data and the
	// multi-window AND degenerates, paging on the first handful of
	// incidents.
	started     float64
	faults      map[string]int64
	repairs     map[string]int64
	incidents   map[string][]incident
	edge        []interval
	transitions []Transition

	// Telemetry, attached by Instrument; nil-safe no-ops by default.
	mEvals       *obs.Counter
	mTransitions *obs.Counter
	mIncidents   *obs.Counter
	gFiring      *obs.Gauge
}

// New returns an Engine evaluating the given rules against targets. A nil
// or empty rule slice means DefaultRules(). Rule names must be unique.
func New(targets Targets, rules []Rule) (*Engine, error) {
	if len(rules) == 0 {
		rules = DefaultRules()
	}
	e := &Engine{
		targets:   targets,
		started:   math.Inf(1),
		faults:    make(map[string]int64),
		repairs:   make(map[string]int64),
		incidents: make(map[string][]incident),
	}
	seen := make(map[string]bool, len(rules))
	for _, r := range rules {
		if err := r.validate(); err != nil {
			return nil, err
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("health: duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
		e.rules = append(e.rules, &ruleState{Rule: r, state: StateInactive})
	}
	return e, nil
}

// SetSink directs alert-transition notifications to s (nil disables).
func (e *Engine) SetSink(s Sink) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sink = s
}

// SetLogger directs structured transition logs to l (nil disables). Pair
// with obs.NewSimHandler so records carry both clocks.
func (e *Engine) SetLogger(l *slog.Logger) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.logger = l
}

// Instrument attaches telemetry: health_evaluations_total and
// health_transitions_total counters, health_incidents_total, a
// health_rules_firing gauge, and one health_burn_<rule> gauge per rule
// holding the worst window's current signal value.
func (e *Engine) Instrument(reg *obs.Registry) {
	if e == nil || reg == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mEvals = reg.Counter("health_evaluations_total")
	e.mTransitions = reg.Counter("health_transitions_total")
	e.mIncidents = reg.Counter("health_incidents_total")
	e.gFiring = reg.Gauge("health_rules_firing")
	for _, rs := range e.rules {
		rs.gauge = reg.Gauge("health_burn_" + metricName(rs.Name))
	}
}

// metricName maps a rule name onto the exposition-safe charset.
func metricName(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// RecordFault notes a detected device fault (repairable or not) on a
// device of the given type at sim-hour at.
func (e *Engine) RecordFault(at float64, deviceType string) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.faults[deviceType]++
	e.noteTime(at)
}

// noteTime widens the engine's observed time range. Caller holds e.mu.
func (e *Engine) noteTime(at float64) {
	if at < e.started {
		e.started = at
	}
	if at > e.now {
		e.now = at
	}
}

// RecordRepair notes a fault masked by repair (automated or manual).
func (e *Engine) RecordRepair(at float64, deviceType string) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.repairs[deviceType]++
	e.noteTime(at)
}

// RecordIncident notes an escalated fault — a SEV — that started at
// sim-hour at on a device of the given type and took resolutionHours to
// resolve. Incidents may arrive slightly out of order (they surface when
// the failed repair attempt completes, not when the fault started); the
// insert keeps the per-type timeline sorted.
func (e *Engine) RecordIncident(at float64, deviceType string, resolutionHours float64) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mIncidents.Inc()
	e.noteTime(at)
	s := e.incidents[deviceType]
	in := incident{at: at, resolution: resolutionHours}
	if n := len(s); n == 0 || s[n-1].at <= at {
		s = append(s, in)
	} else {
		i := sort.Search(n, func(i int) bool { return s[i].at > at })
		s = append(s, incident{})
		copy(s[i+1:], s[i:])
		s[i] = in
	}
	e.incidents[deviceType] = s
}

// RecordEdgeDown notes a backbone edge downtime interval [start, end] in
// sim hours.
func (e *Engine) RecordEdgeDown(start, end float64) {
	if e == nil || end <= start {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.edge = append(e.edge, interval{start: start, end: end})
	e.noteTime(start)
	if end > e.now {
		e.now = end
	}
}

// countIncidents returns the number of incidents for dt (FleetWide sums
// all types) with start in (from, to].
func (e *Engine) countIncidents(dt string, from, to float64) int {
	count := func(s []incident) int {
		lo := sort.Search(len(s), func(i int) bool { return s[i].at > from })
		hi := sort.Search(len(s), func(i int) bool { return s[i].at > to })
		return hi - lo
	}
	if dt != FleetWide {
		return count(e.incidents[dt])
	}
	n := 0
	for _, s := range e.incidents {
		n += count(s)
	}
	return n
}

// resolutionsIn collects resolution times of incidents for dt in (from, to].
func (e *Engine) resolutionsIn(dt string, from, to float64) []float64 {
	var out []float64
	collect := func(s []incident) {
		lo := sort.Search(len(s), func(i int) bool { return s[i].at > from })
		hi := sort.Search(len(s), func(i int) bool { return s[i].at > to })
		for _, in := range s[lo:hi] {
			out = append(out, in.resolution)
		}
	}
	if dt != FleetWide {
		collect(e.incidents[dt])
	} else {
		for _, s := range e.incidents {
			collect(s)
		}
	}
	return out
}

// edgeDowntime returns total edge-down hours overlapping (from, to].
func (e *Engine) edgeDowntime(from, to float64) float64 {
	total := 0.0
	for _, iv := range e.edge {
		lo, hi := max(iv.start, from), min(iv.end, to)
		if hi > lo {
			total += hi - lo
		}
	}
	return total
}

// p75 returns the 75th-percentile of vs (nearest-rank on a sorted copy).
func p75(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	idx := (len(s)*3 + 3) / 4
	if idx > len(s) {
		idx = len(s)
	}
	return s[idx-1]
}

// Evaluate advances the rule state machines to sim-hour now: it computes
// every rule's signal over each of its windows, applies the
// threshold + for-duration logic, and emits any transitions through the
// sink, the logger, and the obs counters. Call it on a periodic sim-time
// tick (the faults driver schedules one per simulated day).
func (e *Engine) Evaluate(now float64) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.noteTime(now)
	e.mEvals.Inc()
	firing := 0
	var emitted []Transition
	for _, rs := range e.rules {
		values, measurable := e.signalValues(rs.Rule, now)
		rs.values = values
		worst := 0.0
		for _, v := range values {
			if v > worst {
				worst = v
			}
		}
		rs.gauge.Set(worst)
		condition := measurable && len(values) > 0
		for _, v := range values {
			if v < rs.Threshold {
				condition = false
			}
		}
		if tr, ok := e.step(rs, condition, worst, now); ok {
			emitted = append(emitted, tr)
		}
		if rs.state == StateFiring {
			firing++
		}
	}
	e.gFiring.Set(float64(firing))
	sink, logger := e.sink, e.logger
	e.mu.Unlock()

	// Notify and log outside the lock: a sink may block on I/O and a
	// reader may be serving Report concurrently.
	for _, tr := range emitted {
		if logger != nil {
			level := slog.LevelInfo
			if tr.To == StateFiring.String() {
				level = slog.LevelWarn
			}
			logger.Log(context.Background(), level, "health alert transition",
				slog.String("rule", tr.Rule),
				slog.String("from", tr.From),
				slog.String("to", tr.To),
				slog.Float64("value", tr.Value),
				obs.SimHours(tr.AtSimHours),
			)
		}
		if sink != nil {
			// Notification failure must not derail the simulation;
			// the transition is already in the report history.
			_ = sink.Notify(tr.Message)
		}
	}
}

// signalValues computes a rule's signal over each window ending at now.
// measurable is false when the signal has no basis yet (no budget in any
// window, too few MTTR samples, edge targets unset).
func (e *Engine) signalValues(r Rule, now float64) (values []float64, measurable bool) {
	values = make([]float64, len(r.Windows))
	measurable = true
	for i, w := range r.Windows {
		from := now - w
		if from < e.started {
			// The window reaches before the first observed event: it
			// is not yet full, and judging a truncated window against
			// a truncated budget pages on the first few incidents of a
			// run. Wait until the window fills.
			measurable = false
			continue
		}
		switch r.Signal {
		case SignalIncidentBurn:
			budget := e.targets.slack() * e.targets.expectedIncidents(r.Type, from, now)
			if budget <= 0 {
				measurable = false
				continue
			}
			values[i] = float64(e.countIncidents(r.Type, from, now)) / budget
		case SignalMTTR:
			target := e.targets.mttrTarget(now)
			samples := e.resolutionsIn(r.Type, from, now)
			if target <= 0 || len(samples) < minMTTRSamples {
				measurable = false
				continue
			}
			values[i] = p75(samples) / target
		case SignalEdgeAvailability:
			budget := 1 - e.targets.EdgeAvailability
			if e.targets.EdgeAvailability <= 0 || budget <= 0 || w <= 0 {
				measurable = false
				continue
			}
			values[i] = e.edgeDowntime(from, now) / w / budget
		default:
			measurable = false
		}
	}
	return values, measurable
}

// step applies one evaluation outcome to a rule's state machine and
// returns the transition it caused, if any. Caller holds e.mu.
func (e *Engine) step(rs *ruleState, condition bool, value, now float64) (Transition, bool) {
	from := rs.state
	switch rs.state {
	case StateInactive:
		if condition {
			rs.since = now
			// A zero For fires immediately, as in Prometheus.
			if rs.For <= 0 {
				rs.state = StateFiring
			} else {
				rs.state = StatePending
			}
		}
	case StatePending:
		switch {
		case !condition:
			rs.state = StateInactive
		case now-rs.since >= rs.For:
			rs.state = StateFiring
		}
	case StateFiring:
		if !condition {
			rs.state = StateInactive
		}
	}
	if rs.state == from {
		return Transition{}, false
	}
	if rs.state == StateInactive {
		rs.since = 0
	}
	tr := Transition{
		Rule:       rs.Name,
		From:       from.String(),
		To:         rs.state.String(),
		AtSimHours: now,
		Value:      value,
	}
	tr.Message = fmt.Sprintf("health: rule %s %s -> %s at sim %.1fh (signal %s=%.2f, threshold %.2f)",
		tr.Rule, tr.From, tr.To, now, rs.Signal, value, rs.Threshold)
	e.transitions = append(e.transitions, tr)
	e.mTransitions.Inc()
	return tr, true
}

// Healthy reports whether no rule is currently firing. A nil engine is
// vacuously healthy.
func (e *Engine) Healthy() bool {
	if e == nil {
		return true
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, rs := range e.rules {
		if rs.state == StateFiring {
			return false
		}
	}
	return true
}
