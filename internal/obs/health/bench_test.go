package health

import "testing"

// BenchmarkHealthRecordIncident measures the per-incident cost on the
// simulation's hot path: a sorted insert plus counter bumps.
func BenchmarkHealthRecordIncident(b *testing.B) {
	e, err := New(testTargets(), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.RecordIncident(float64(i), "RSW", 5)
	}
}

// BenchmarkHealthRecordIncidentNil is the uninstrumented no-op cost every
// run pays when no engine is configured.
func BenchmarkHealthRecordIncidentNil(b *testing.B) {
	var e *Engine
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.RecordIncident(float64(i), "RSW", 5)
	}
}

// BenchmarkHealthEvaluate measures one daily evaluation tick over a year
// of incident history: window counts, burn rates, and the rule state
// machine.
func BenchmarkHealthEvaluate(b *testing.B) {
	e, err := New(testTargets(), nil)
	if err != nil {
		b.Fatal(err)
	}
	seedIncidents(e, 100, 0, hoursPerYear)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Evaluate(hoursPerYear + float64(i%365)*24)
	}
}

// BenchmarkHealthReport measures building the full SLO report.
func BenchmarkHealthReport(b *testing.B) {
	e, err := New(testTargets(), nil)
	if err != nil {
		b.Fatal(err)
	}
	seedIncidents(e, 100, 0, hoursPerYear)
	e.Evaluate(hoursPerYear)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Report()
	}
}
