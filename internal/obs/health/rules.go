package health

import (
	"fmt"

	"dcnr/internal/obs"
)

// Signal names a quantity a rule evaluates. Burn-style signals are ratios:
// 1.0 means exactly on budget/target, higher is worse.
type Signal string

const (
	// SignalIncidentBurn is the error-budget burn rate of incident
	// volume: incidents observed in the window divided by the window's
	// budget (slack × calibrated expectation).
	SignalIncidentBurn Signal = "incident_burn"
	// SignalMTTR is the ratio of the window's observed p75 resolution
	// time to the calibrated p75 target for the current year.
	SignalMTTR Signal = "mttr"
	// SignalEdgeAvailability is the backbone edge downtime fraction in
	// the window divided by the availability budget (1 − target).
	SignalEdgeAvailability Signal = "edge_availability"
)

// Rule is one declarative alert condition. The rule's condition is true at
// an evaluation instant when the signal meets or exceeds Threshold over
// EVERY window (the SRE multi-window AND: the long window proves budget is
// really gone, the short one proves it is still burning). A true condition
// moves the rule Inactive→Pending; holding for For sim-hours moves it
// Pending→Firing; the first false evaluation returns it to Inactive
// (resolved).
type Rule struct {
	// Name identifies the rule in reports, notifications, and the
	// health_burn_<name> gauge. Must be unique and non-empty.
	Name string `json:"name"`
	// Type restricts the signal to one device type (faults uses the
	// topology.DeviceType string form, e.g. "RSW"); FleetWide ("") spans
	// the fleet.
	Type string `json:"type,omitempty"`
	// Signal selects the evaluated quantity.
	Signal Signal `json:"signal"`
	// Windows are the rolling window lengths in sim-hours; all must
	// breach Threshold for the condition to hold.
	Windows []float64 `json:"windows_hours"`
	// Threshold is the signal level at which the condition holds.
	Threshold float64 `json:"threshold"`
	// For is how long, in sim-hours, the condition must hold
	// continuously before the rule fires.
	For float64 `json:"for_hours"`
}

func (r Rule) validate() error {
	if r.Name == "" {
		return fmt.Errorf("health: rule with empty name")
	}
	if len(r.Windows) == 0 {
		return fmt.Errorf("health: rule %q has no windows", r.Name)
	}
	for _, w := range r.Windows {
		if w <= 0 {
			return fmt.Errorf("health: rule %q has non-positive window %v", r.Name, w)
		}
	}
	if r.Threshold <= 0 {
		return fmt.Errorf("health: rule %q has non-positive threshold %v", r.Name, r.Threshold)
	}
	if r.For < 0 {
		return fmt.Errorf("health: rule %q has negative for-duration %v", r.Name, r.For)
	}
	switch r.Signal {
	case SignalIncidentBurn, SignalMTTR, SignalEdgeAvailability:
	default:
		return fmt.Errorf("health: rule %q has unknown signal %q", r.Name, r.Signal)
	}
	return nil
}

// DefaultRules returns the standard intra-DC rule set. A calibrated run
// burns ≈ 1/slack ≈ 0.67 of its incident budget, so the fast-burn
// threshold of 2.0 needs roughly a 3× sustained elevation over two weeks,
// while the slow-burn rule catches milder elevation (≈ 2×) sustained over
// months. MTTR degradation pages when the observed p75 holds at 2.5× its
// calibration for two weeks — the threshold sits ~2.5 standard errors
// above the sample-p75 noise floor at the minimum sample count, so tail
// resolution draws alone do not page.
func DefaultRules() []Rule {
	return []Rule{
		{
			Name:      "incident-fast-burn",
			Signal:    SignalIncidentBurn,
			Windows:   []float64{15 * 24, 60 * 24},
			Threshold: 2.0,
			For:       48,
		},
		{
			Name:      "incident-slow-burn",
			Signal:    SignalIncidentBurn,
			Windows:   []float64{60 * 24, 180 * 24},
			Threshold: 1.35,
			For:       168,
		},
		{
			Name:      "mttr-degradation",
			Signal:    SignalMTTR,
			Windows:   []float64{90 * 24},
			Threshold: 2.5,
			For:       336,
		},
	}
}

// EdgeRules returns the backbone rule set (meaningful only when
// Targets.EdgeAvailability is set): edge downtime exhausting its
// availability budget over a rolling month, held for three days.
func EdgeRules() []Rule {
	return []Rule{
		{
			Name:      "edge-availability-burn",
			Signal:    SignalEdgeAvailability,
			Windows:   []float64{30 * 24},
			Threshold: 1.0,
			For:       72,
		},
	}
}

// State is an alert rule's position in the pending→firing lifecycle.
type State int

const (
	// StateInactive: the condition is false.
	StateInactive State = iota
	// StatePending: the condition is true but has not yet held for the
	// rule's For duration.
	StatePending
	// StateFiring: the condition has held continuously for at least For.
	StateFiring
)

// String returns the lowercase state name used in reports and logs.
func (s State) String() string {
	switch s {
	case StateInactive:
		return "inactive"
	case StatePending:
		return "pending"
	case StateFiring:
		return "firing"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ruleState is a Rule plus its live evaluation state.
type ruleState struct {
	Rule
	state  State
	since  float64   // sim-hour the rule entered pending (then firing)
	values []float64 // last evaluation's per-window signal values
	gauge  *obs.Gauge
}
