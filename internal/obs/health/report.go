package health

import (
	"encoding/json"
	"io"
)

// SLOReport is a point-in-time summary of the engine's view: live
// reliability statistics per device type over the report window, every
// rule's state and current signal values, and the full transition history.
// It marshals cleanly to JSON (dcsim -health-out, repro /slo).
type SLOReport struct {
	// AsOfSimHours is the simulation time the report reflects.
	AsOfSimHours float64 `json:"as_of_sim_hours"`
	// Year is the calendar year containing AsOfSimHours.
	Year int `json:"year"`
	// WindowHours is the rolling window the per-type statistics cover.
	WindowHours float64 `json:"window_hours"`
	// Healthy is false while any rule is firing.
	Healthy bool `json:"healthy"`
	// Types holds per-device-type statistics over the window.
	Types map[string]TypeSLO `json:"types"`
	// Fleet aggregates the same statistics across all types.
	Fleet TypeSLO `json:"fleet"`
	// Rules reports every rule's live state.
	Rules []RuleStatus `json:"rules"`
	// Transitions is the complete alert transition history, oldest
	// first.
	Transitions []Transition `json:"transitions"`
	// EdgeAvailability summarizes backbone edge downtime when the edge
	// signal is configured.
	EdgeAvailability *EdgeSLO `json:"edge_availability,omitempty"`
}

// TypeSLO is the rolling-window reliability summary for one device type.
type TypeSLO struct {
	// Population is the deployed device count in the current year.
	Population int `json:"population"`
	// Faults and Repairs count the full run, not the window: together
	// with Incidents they show how much the repair plane absorbs.
	Faults  int64 `json:"faults_total"`
	Repairs int64 `json:"repairs_total"`
	// Incidents is the number of incidents starting inside the window.
	Incidents int `json:"incidents"`
	// ExpectedIncidents is the calibrated expectation for the window.
	ExpectedIncidents float64 `json:"expected_incidents"`
	// BurnRate is Incidents over the window's error budget
	// (slack × ExpectedIncidents); 0 when the budget is empty.
	BurnRate float64 `json:"burn_rate"`
	// MTBFHours estimates mean device-hours between incidents over the
	// window (population × window / incidents); 0 with no incidents.
	MTBFHours float64 `json:"mtbf_hours"`
	// MTTRMeanHours and MTTRp75Hours summarize resolution times of the
	// window's incidents.
	MTTRMeanHours float64 `json:"mttr_mean_hours"`
	MTTRp75Hours  float64 `json:"mttr_p75_hours"`
}

// RuleStatus is one rule's live state in a report.
type RuleStatus struct {
	Rule
	// State is the lifecycle position: inactive, pending, or firing.
	State string `json:"state"`
	// SinceSimHours is when the rule entered pending (0 when inactive).
	SinceSimHours float64 `json:"since_sim_hours,omitempty"`
	// Values are the last evaluation's signal values, one per window.
	Values []float64 `json:"values"`
}

// Transition is one recorded state-machine edge.
type Transition struct {
	// Rule is the rule's name.
	Rule string `json:"rule"`
	// From and To are the state names.
	From string `json:"from"`
	To   string `json:"to"`
	// AtSimHours is the evaluation instant that caused the edge.
	AtSimHours float64 `json:"at_sim_hours"`
	// Value is the worst window's signal value at that instant.
	Value float64 `json:"value"`
	// Message is the human-readable line sent to the notify sink.
	Message string `json:"message"`
}

// EdgeSLO summarizes backbone edge availability over the report window.
type EdgeSLO struct {
	// Target is the configured availability objective.
	Target float64 `json:"target"`
	// DowntimeHours is edge downtime overlapping the window.
	DowntimeHours float64 `json:"downtime_hours"`
	// Availability is 1 − downtime/window.
	Availability float64 `json:"availability"`
	// BurnRate is the downtime fraction over the availability budget.
	BurnRate float64 `json:"burn_rate"`
}

// Report summarizes the engine at the latest evaluated/recorded sim time.
// A nil engine returns a zero, healthy report.
func (e *Engine) Report() SLOReport {
	if e == nil {
		return SLOReport{Healthy: true, Types: map[string]TypeSLO{}}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now
	window := e.targets.reportWindow()
	rep := SLOReport{
		AsOfSimHours: now,
		Year:         e.targets.yearOf(now),
		WindowHours:  window,
		Healthy:      true,
		Types:        make(map[string]TypeSLO),
		Transitions:  append([]Transition(nil), e.transitions...),
	}
	seen := make(map[string]bool)
	for dt := range e.incidents {
		seen[dt] = true
	}
	for dt := range e.faults {
		seen[dt] = true
	}
	for dt := range seen {
		rep.Types[dt] = e.typeSLO(dt, now, window)
	}
	rep.Fleet = e.typeSLO(FleetWide, now, window)
	for _, rs := range e.rules {
		if rs.state == StateFiring {
			rep.Healthy = false
		}
		rep.Rules = append(rep.Rules, RuleStatus{
			Rule:          rs.Rule,
			State:         rs.state.String(),
			SinceSimHours: rs.since,
			Values:        append([]float64(nil), rs.values...),
		})
	}
	if e.targets.EdgeAvailability > 0 {
		down := e.edgeDowntime(now-window, now)
		edge := &EdgeSLO{
			Target:        e.targets.EdgeAvailability,
			DowntimeHours: down,
			Availability:  1 - down/window,
		}
		if budget := 1 - e.targets.EdgeAvailability; budget > 0 {
			edge.BurnRate = down / window / budget
		}
		rep.EdgeAvailability = edge
	}
	return rep
}

// typeSLO computes one type's (or the fleet's) window statistics. Caller
// holds e.mu.
func (e *Engine) typeSLO(dt string, now, window float64) TypeSLO {
	from := now - window
	s := TypeSLO{
		Population:        e.targets.populationAt(now, dt),
		Incidents:         e.countIncidents(dt, from, now),
		ExpectedIncidents: e.targets.expectedIncidents(dt, from, now),
	}
	if dt == FleetWide {
		for _, n := range e.faults {
			s.Faults += n
		}
		for _, n := range e.repairs {
			s.Repairs += n
		}
	} else {
		s.Faults = e.faults[dt]
		s.Repairs = e.repairs[dt]
	}
	if budget := e.targets.slack() * s.ExpectedIncidents; budget > 0 {
		s.BurnRate = float64(s.Incidents) / budget
	}
	if s.Incidents > 0 {
		span := window
		if now < window {
			span = now
		}
		s.MTBFHours = float64(s.Population) * span / float64(s.Incidents)
		res := e.resolutionsIn(dt, from, now)
		sum := 0.0
		for _, r := range res {
			sum += r
		}
		s.MTTRMeanHours = sum / float64(len(res))
		s.MTTRp75Hours = p75(res)
	}
	return s
}

// WriteJSON writes the current report as indented JSON.
func (e *Engine) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e.Report())
}
