package obs

import (
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("events_total") != c {
		t.Error("get-or-create returned a different counter")
	}

	g := r.Gauge("queue_depth")
	g.Set(10)
	g.Add(-3.5)
	if g.Value() != 6.5 {
		t.Errorf("gauge = %v, want 6.5", g.Value())
	}
	if r.Gauge("queue_depth") != g {
		t.Error("get-or-create returned a different gauge")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["latency"]
	// 0.5 and 1 ≤ 1; 5 ≤ 10; 50 ≤ 100; 500 overflows.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if snap.Count != 5 {
		t.Errorf("count = %d", snap.Count)
	}
	if snap.Sum != 556.5 {
		t.Errorf("sum = %v", snap.Sum)
	}
	if h.Count() != 5 || h.Sum() != 556.5 {
		t.Errorf("direct accessors: count %d sum %v", h.Count(), h.Sum())
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []float64{1})
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics recorded values")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

func TestKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("dual")
}

func TestBadHistogramBoundsPanic(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	r.Histogram("bad", []float64{10, 5})
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Every worker races on the same names: creation and
			// observation must both be safe.
			c := r.Counter("hits")
			h := r.Histogram("obs", []float64{0.5})
			g := r.Gauge("level")
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(1)
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Histogram("obs", nil).Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if got := r.Histogram("obs", nil).Sum(); got != workers*per {
		t.Errorf("histogram sum = %v, want %d", got, workers*per)
	}
	if got := r.Gauge("level").Value(); got != workers*per {
		t.Errorf("gauge = %v, want %d", got, workers*per)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("des_events_fired_total").Add(42)
	r.Gauge("des_queue_depth").Set(7)
	h := r.Histogram("event_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE des_events_fired_total counter",
		"des_events_fired_total 42",
		"# TYPE des_queue_depth gauge",
		"des_queue_depth 7",
		"# TYPE event_seconds histogram",
		`event_seconds_bucket{le="0.1"} 1`,
		`event_seconds_bucket{le="1.0"} 2`, // cumulative; integral bound gets ".0"
		`event_seconds_bucket{le="+Inf"} 3`,
		"event_seconds_sum 5.55",
		"event_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestPrometheusLeBoundsCanonical pins the le label format against what a
// Prometheus scraper expects: integral bounds carry an explicit ".0" (so
// buckets stay continuous with series written by client_golang), fractional
// bounds are the shortest round-trippable decimal, and every value — +Inf
// included — parses back with strconv.ParseFloat the way the exposition
// parser does.
func TestPrometheusLeBoundsCanonical(t *testing.T) {
	bounds := []float64{0.005, 0.25, 1, 2.5, 10, 1e6}
	r := NewRegistry()
	r.Histogram("req_seconds", bounds).Observe(0.1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}

	// Scrape the le values back out of the bucket lines, parser-style.
	var got []string
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, "req_seconds_bucket{le=") {
			continue
		}
		quoted := strings.TrimSuffix(strings.TrimPrefix(strings.Fields(line)[0], "req_seconds_bucket{le="), "}")
		le, err := strconv.Unquote(quoted)
		if err != nil {
			t.Fatalf("unquoting le label in %q: %v", line, err)
		}
		got = append(got, le)
	}
	want := []string{"0.005", "0.25", "1.0", "2.5", "10.0", "1e+06", "+Inf"}
	if len(got) != len(want) {
		t.Fatalf("le values = %v, want %v", got, want)
	}
	for i, le := range got {
		if le != want[i] {
			t.Errorf("le[%d] = %q, want %q", i, le, want[i])
		}
		v, err := strconv.ParseFloat(le, 64)
		if err != nil {
			t.Errorf("le %q does not parse as a float: %v", le, err)
			continue
		}
		if i < len(bounds) && v != bounds[i] {
			t.Errorf("le %q parsed to %v, want bound %v", le, v, bounds[i])
		}
		if i == len(bounds) && !math.IsInf(v, +1) {
			t.Errorf("le %q parsed to %v, want +Inf", le, v)
		}
	}
}

func TestExpvarVarRendersSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Gauge("g").Set(2.5)
	var snap Snapshot
	if err := json.Unmarshal([]byte(r.ExpvarVar().String()), &snap); err != nil {
		t.Fatalf("expvar output is not JSON: %v", err)
	}
	if snap.Counters["c"] != 1 || snap.Gauges["g"] != 2.5 {
		t.Errorf("snapshot = %+v", snap)
	}
}
