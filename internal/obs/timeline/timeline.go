// Package timeline turns the point-in-time metrics of internal/obs into
// time series: a sampler driven by the simulation clock (or, for long-
// running servers, a wall-clock ticker) captures registry deltas into
// pointer-free fixed-width sample records, giving every run the temporal
// structure — fault storms, remediation backlogs, burn-rate ramps — that
// a final Snapshot flattens away. The paper's reliability numbers were
// read off production dashboards as time series; this package is that
// dashboard's data source.
//
// # Memory layout
//
// Samples are 24-byte pointer-free structs staged in per-lane rings — the
// SpanRing/journal pattern from internal/obs: each Lane has a
// single-writer staging buffer published as immutable blocks, so the hot
// path costs a changed-value check and one struct store, never a map or
// an encoder. Readers (WriteJSONL, Window, the HTTP handlers) see only
// flushed blocks: a mid-run reader observes a consistent prefix of each
// lane while writers keep recording.
//
// # Determinism
//
// Sim-time lanes are sampled on a fixed cadence grid (multiples of the
// configured cadence, timed by the DES clock), record only when a series'
// value changed, and read no wall clock and no randomness — so for a
// fixed seed the serialized timeline is bit-for-bit reproducible and an
// attached timeline never perturbs the simulation's RNG streams. Wall
// lanes (Sampler.StartWall) are for live servers and make no determinism
// claim.
//
// All methods are safe on a nil *Timeline, *Lane, and *Sampler, matching
// the project-wide observability contract: a nil timeline is a no-op
// costing the hot paths nothing.
package timeline

import (
	"io"
	"strconv"
	"sync"
)

// DefaultCadence is the sim-time sampling cadence when none is
// configured: one sample grid point per simulated day, matching the
// health engine's evaluation tick.
const DefaultCadence = 24.0

// Sample is one time-series point: 24 bytes, no pointers, so a full
// staging buffer is a single GC-free block.
type Sample struct {
	// T is the sample instant: simulation hours since epoch on sim-time
	// lanes, wall seconds since sampler start on wall lanes.
	T float64
	// V is the series' value at T — cumulative for counters, current for
	// gauges. Samples are recorded only when V changed, so consecutive
	// samples of one column always differ.
	V float64
	// Col is the series' column ordinal (Timeline.Column).
	Col int32
}

// laneBatch is the staging-buffer size of a lane: one publish per this
// many samples, 6 KiB of staging per lane.
const laneBatch = 256

// Timeline owns the sample lanes and the column (series name) table.
// Construct with New; a nil *Timeline (and every lane obtained from it)
// is a valid no-op.
type Timeline struct {
	cadence float64

	mu    sync.Mutex
	lanes []*Lane
	cols  []string
	colID map[string]int32

	// subs are the SSE delta subscribers; closed flips when the producer
	// calls Close, ending every subscriber stream.
	subMu   sync.Mutex
	subs    map[int]chan []byte
	nextSub int
	closed  bool
}

// New returns an empty timeline sampling on the given sim-time cadence in
// hours; cadence <= 0 (or NaN) selects DefaultCadence.
func New(cadence float64) *Timeline {
	if !(cadence > 0) {
		cadence = DefaultCadence
	}
	return &Timeline{cadence: cadence}
}

// Cadence returns the sim-time sampling cadence in hours (0 on a nil
// timeline).
func (t *Timeline) Cadence() float64 {
	if t == nil {
		return 0
	}
	return t.cadence
}

// Column interns a series name and returns its ordinal, stable for the
// timeline's lifetime. Returns 0 on a nil timeline (Record on a nil lane
// discards the sample anyway).
func (t *Timeline) Column(name string) int32 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.colID[name]; ok {
		return id
	}
	if t.colID == nil {
		t.colID = make(map[string]int32)
	}
	id := int32(len(t.cols))
	t.cols = append(t.cols, name)
	t.colID[name] = id
	return id
}

// Lane creates a new sample lane. Like obs.SpanRing, a lane is
// SINGLE-WRITER: exactly one goroutine may call Record / Flush at a time.
// Returns nil — a valid no-op lane — on a nil timeline.
func (t *Timeline) Lane(name string) *Lane {
	if t == nil {
		return nil
	}
	l := &Lane{t: t, name: name}
	t.mu.Lock()
	t.lanes = append(t.lanes, l)
	t.mu.Unlock()
	return l
}

// Len reports the number of flushed (reader-visible) samples.
func (t *Timeline) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for _, l := range t.laneList() {
		n += l.flushedLen()
	}
	return n
}

// laneList snapshots the lane slice.
func (t *Timeline) laneList() []*Lane {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Lane(nil), t.lanes...)
}

// columns snapshots the column name table.
func (t *Timeline) columns() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.cols...)
}

// Samples returns every flushed sample across all lanes, merged by time —
// the canonical serialization order. Each lane records time-ascending, so
// the lanes are k-way merged with ties broken by lane creation order;
// the result is deterministic for a deterministic recording. Safe to call
// while writers keep recording: it sees a consistent prefix of each lane.
func (t *Timeline) Samples() []Sample {
	if t == nil {
		return nil
	}
	lanes := t.laneList()
	flat := make([][]Sample, 0, len(lanes))
	total := 0
	for _, l := range lanes {
		blocks := l.blocks()
		n := 0
		for _, b := range blocks {
			n += len(b)
		}
		if n == 0 {
			continue
		}
		s := make([]Sample, 0, n)
		for _, b := range blocks {
			s = append(s, b...)
		}
		flat = append(flat, s)
		total += n
	}
	if len(flat) == 1 {
		return flat[0]
	}
	out := make([]Sample, 0, total)
	idx := make([]int, len(flat))
	for len(out) < total {
		best := -1
		for li, s := range flat {
			if idx[li] >= len(s) {
				continue
			}
			if best < 0 || s[idx[li]].T < flat[best][idx[best]].T {
				best = li
			}
		}
		out = append(out, flat[best][idx[best]])
		idx[best]++
	}
	return out
}

// Window returns the flushed samples with from <= T <= to, optionally
// restricted to one series name (empty means all), in the canonical
// merged order.
func (t *Timeline) Window(from, to float64, metric string) []Sample {
	if t == nil {
		return nil
	}
	col := int32(-1)
	if metric != "" {
		t.mu.Lock()
		id, ok := t.colID[metric]
		t.mu.Unlock()
		if !ok {
			return nil
		}
		col = id
	}
	var out []Sample
	for _, s := range t.Samples() {
		if s.T < from || s.T > to {
			continue
		}
		if col >= 0 && s.Col != col {
			continue
		}
		out = append(out, s)
	}
	return out
}

// WriteJSONL writes every flushed sample as one JSON object per line —
// {"t":…,"m":"series","v":…} — in the canonical merged order,
// deterministic for a fixed simulation seed. The encoder is hand-rolled
// append work tuned for the stream's shape: a cadence tick emits several
// samples sharing one timestamp (rendered once and reused), and each
// series' `,"m":"…","v":` fragment is pre-rendered per column.
func (t *Timeline) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	enc := encoder{cols: t.columns()}
	buf := make([]byte, 0, 1<<16)
	for _, s := range t.Samples() {
		buf = enc.appendSample(buf, s)
		if len(buf) >= 1<<16-128 {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// encoder carries WriteJSONL's per-stream caches: pre-rendered
// `,"m":"…","v":` fragments per column and the last rendered timestamp
// (samples of one cadence tick share it).
type encoder struct {
	cols    []string
	colFrag [][]byte
	lastT   float64
	tBuf    []byte
}

// frag returns the pre-rendered key fragment for column i.
func (e *encoder) frag(i int) []byte {
	for len(e.colFrag) <= i {
		e.colFrag = append(e.colFrag, nil)
	}
	if e.colFrag[i] == nil {
		name := strconv.Itoa(i)
		if i < len(e.cols) && e.cols[i] != "" {
			name = e.cols[i]
		}
		e.colFrag[i] = []byte(`,"m":"` + name + `","v":`)
	}
	return e.colFrag[i]
}

// appendSample encodes one sample as a JSON line. Series names must be
// plain JSON-safe text (no quotes, backslashes, or control characters) —
// the project's metric names all are.
func (e *encoder) appendSample(b []byte, s Sample) []byte {
	b = append(b, `{"t":`...)
	if s.T != e.lastT || e.tBuf == nil {
		e.lastT = s.T
		e.tBuf = appendFixed(e.tBuf[:0], s.T)
	}
	b = append(b, e.tBuf...)
	if s.Col >= 0 {
		b = append(b, e.frag(int(s.Col))...)
	} else {
		b = append(b, `,"m":"`...)
		b = strconv.AppendInt(b, int64(s.Col), 10)
		b = append(b, `","v":`...)
	}
	b = appendFixed(b, s.V)
	b = append(b, '}', '\n')
	return b
}

// appendFixed encodes v as a fixed-point decimal with up to six
// fractional digits, trailing zeros trimmed — the journal's timestamp
// encoding, shared here so timeline and journal timestamps compare
// byte-for-byte. Non-finite values and values beyond the fixed-point
// range fall back to shortest-float.
func appendFixed(b []byte, v float64) []byte {
	neg := v < 0
	if neg {
		v = -v
	}
	if !(v < 9e12) { // NaN, +Inf, or beyond the fixed-point range
		return strconv.AppendFloat(b, v, 'g', -1, 64)
	}
	if neg {
		b = append(b, '-')
	}
	u := uint64(v*1e6 + 0.5)
	b = strconv.AppendUint(b, u/1e6, 10)
	if fp := u % 1e6; fp != 0 {
		var tmp [7]byte
		tmp[0] = '.'
		for i := 6; i >= 1; i-- {
			tmp[i] = byte('0' + fp%10)
			fp /= 10
		}
		n := 7
		for tmp[n-1] == '0' {
			n--
		}
		b = append(b, tmp[:n]...)
	}
	return b
}

// Lane is a single-writer sample buffer feeding its timeline: Record
// stages into a fixed ring; full rings (and explicit Flush calls) publish
// immutable blocks to readers and fan deltas out to SSE subscribers. All
// methods are nil-safe.
type Lane struct {
	t    *Timeline
	name string

	buf [laneBatch]Sample // staging buffer, single-writer
	n   int

	// flushed holds published samples as immutable blocks (the SpanRing
	// publication pattern: appending a freshly-copied block never
	// re-copies earlier samples).
	mu      sync.Mutex
	flushed [][]Sample
	total   int
}

// Record stages one sample. No-op on a nil lane.
//
//hot:noalloc
func (l *Lane) Record(col int32, t, v float64) {
	if l == nil {
		return
	}
	l.buf[l.n] = Sample{T: t, V: v, Col: col}
	l.n++
	if l.n == laneBatch {
		l.Flush()
	}
}

// Flush publishes the staged samples to readers and subscribers. Only the
// writer may call it.
func (l *Lane) Flush() {
	if l == nil || l.n == 0 {
		return
	}
	blk := make([]Sample, l.n)
	copy(blk, l.buf[:l.n])
	l.mu.Lock()
	l.flushed = append(l.flushed, blk)
	l.total += l.n
	l.mu.Unlock()
	l.n = 0
	l.t.publish(blk)
}

// blocks returns the flushed sample blocks. The blocks themselves are
// immutable once published, so only the block list is copied.
func (l *Lane) blocks() [][]Sample {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([][]Sample(nil), l.flushed...)
}

// flushedLen returns the number of published samples.
func (l *Lane) flushedLen() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
