package timeline

import (
	"io"
	"testing"

	"dcnr/internal/obs"
)

// BenchmarkObsTimelineSample is the hot-path cost of one cadence tick
// over a typical tracked set (8 columns, one changed): must stay ≤50ns
// and 0 allocs/op — the timeline's end-to-end budget rests on it.
func BenchmarkObsTimelineSample(b *testing.B) {
	reg := obs.NewRegistry()
	tl := New(24)
	counters := []string{"c0", "c1", "c2", "c3", "c4", "c5"}
	gauges := []string{"g0", "g1"}
	s := NewSampler(tl, "sim", reg, counters, gauges)
	c := reg.Counter("c0")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		s.Sample(float64(i))
	}
}

func BenchmarkObsTimelineSampleNil(b *testing.B) {
	var s *Sampler
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(float64(i))
	}
}

func BenchmarkObsTimelineRecord(b *testing.B) {
	tl := New(24)
	col := tl.Column("series")
	l := tl.Lane("sim")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Record(col, float64(i), float64(i))
	}
}

func BenchmarkObsTimelineRecordNil(b *testing.B) {
	var l *Lane
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Record(0, float64(i), float64(i))
	}
}

func BenchmarkObsTimelineWriteJSONL(b *testing.B) {
	tl := New(24)
	col := tl.Column("des_events_fired_total")
	l := tl.Lane("sim")
	for i := 0; i < 4096; i++ {
		l.Record(col, float64(i)*24, float64(i*3))
	}
	l.Flush()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tl.WriteJSONL(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
