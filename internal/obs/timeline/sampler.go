package timeline

import (
	"sync"
	"time"

	"dcnr/internal/obs"
)

// column is one tracked registry series: exactly one of counter/gauge is
// set, and last is the value at the previous sample so unchanged series
// record nothing.
type column struct {
	col     int32
	counter *obs.Counter
	gauge   *obs.Gauge
	last    float64
}

// Sampler reads a fixed set of registry series on each tick and records
// the ones that changed into one timeline lane. Construct with
// NewSampler; a nil *Sampler is a valid no-op, and the tracked series are
// resolved once at construction so a tick costs one atomic load per
// column and nothing else.
type Sampler struct {
	lane *Lane
	cols []column
}

// NewSampler builds a sampler over reg feeding a new lane of t. The
// counters and gauges slices name the registry series to track (resolved
// get-or-create, so a series that never fires simply never records).
// Returns nil — a valid no-op — when t or reg is nil.
func NewSampler(t *Timeline, lane string, reg *obs.Registry, counters, gauges []string) *Sampler {
	if t == nil || reg == nil {
		return nil
	}
	s := &Sampler{lane: t.Lane(lane)}
	for _, name := range counters {
		s.cols = append(s.cols, column{col: t.Column(name), counter: reg.Counter(name)})
	}
	for _, name := range gauges {
		s.cols = append(s.cols, column{col: t.Column(name), gauge: reg.Gauge(name)})
	}
	return s
}

// Sample records every tracked series whose value changed since the last
// call, stamped with now (simulation hours on the DES grid, wall seconds
// from StartWall). Single-writer like the lane it feeds; no-op on a nil
// sampler.
//
//hot:noalloc
func (s *Sampler) Sample(now float64) {
	if s == nil {
		return
	}
	for i := range s.cols {
		c := &s.cols[i]
		var v float64
		if c.counter != nil {
			v = float64(c.counter.Value())
		} else {
			v = c.gauge.Value()
		}
		if v == c.last {
			continue
		}
		c.last = v
		s.lane.Record(c.col, now, v)
	}
}

// Flush publishes the lane's staged samples — registered as a simulator
// sync hook by the wiring layer, so staged samples become reader-visible
// exactly when the kernel's own staged telemetry does.
func (s *Sampler) Flush() {
	if s == nil {
		return
	}
	s.lane.Flush()
}

// StartWall starts a wall-clock sampling loop for servers: every period,
// the sampler ticks with T = seconds since the loop started and flushes,
// so HTTP history readers and SSE subscribers see fresh points each
// period. The returned stop function (idempotent, safe on a nil sampler)
// ends the loop, takes a final sample, and flushes.
func (s *Sampler) StartWall(period time.Duration) (stop func()) {
	if s == nil {
		return func() {}
	}
	if period <= 0 {
		period = time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		tk := time.NewTicker(period)
		defer tk.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-tk.C:
				s.Sample(now.Sub(start).Seconds())
				s.Flush()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
			s.Sample(time.Since(start).Seconds())
			s.Flush()
		})
	}
}
