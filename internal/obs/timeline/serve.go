package timeline

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
)

// publish encodes a freshly-flushed block and fans it out to every SSE
// subscriber. Sends are non-blocking: a subscriber that stopped draining
// loses deltas rather than stalling the producer. Cold path — one call
// per flushed block, nothing when nobody subscribed.
func (t *Timeline) publish(blk []Sample) {
	if t == nil {
		return
	}
	t.subMu.Lock()
	defer t.subMu.Unlock()
	if len(t.subs) == 0 {
		return
	}
	enc := encoder{cols: t.columns()}
	buf := make([]byte, 0, 64*len(blk))
	for _, s := range blk {
		buf = enc.appendSample(buf, s)
	}
	for _, ch := range t.subs {
		select {
		case ch <- buf:
		default:
		}
	}
}

// Close marks the timeline's stream over: every SSE subscriber channel
// closes, so streaming handlers return. Recording and history reads stay
// valid after Close; only the live delta feed ends.
func (t *Timeline) Close() {
	if t == nil {
		return
	}
	t.subMu.Lock()
	defer t.subMu.Unlock()
	t.closed = true
	for _, ch := range t.subs {
		close(ch)
	}
	t.subs = nil
}

// Subscribe registers a live-delta subscriber: each flushed block arrives
// as one JSONL chunk. The channel closes when the timeline is Closed
// (immediately if it already is); cancel must be called when the
// subscriber goes away.
func (t *Timeline) Subscribe() (<-chan []byte, func()) {
	ch := make(chan []byte, 16)
	if t == nil {
		close(ch)
		return ch, func() {}
	}
	t.subMu.Lock()
	defer t.subMu.Unlock()
	if t.closed {
		close(ch)
		return ch, func() {}
	}
	id := t.nextSub
	t.nextSub++
	if t.subs == nil {
		t.subs = make(map[int]chan []byte)
	}
	t.subs[id] = ch
	return ch, func() {
		t.subMu.Lock()
		defer t.subMu.Unlock()
		if _, ok := t.subs[id]; ok {
			delete(t.subs, id)
			close(ch)
		}
	}
}

// ServeHistory answers a windowed history query with JSONL, one sample
// per line in the canonical merged order. Query parameters:
//
//	from, to  inclusive time bounds (defaults: the whole history)
//	metric    restrict to one series name
//
// A nil timeline (or a malformed bound) serves an empty body / 400 rather
// than panicking, so handlers can be mounted unconditionally.
func (t *Timeline) ServeHistory(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	if t == nil {
		return
	}
	from, to := math.Inf(-1), math.Inf(1)
	if s := r.URL.Query().Get("from"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			http.Error(w, "bad from: "+err.Error(), http.StatusBadRequest)
			return
		}
		from = v
	}
	if s := r.URL.Query().Get("to"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			http.Error(w, "bad to: "+err.Error(), http.StatusBadRequest)
			return
		}
		to = v
	}
	enc := encoder{cols: t.columns()}
	buf := make([]byte, 0, 1<<14)
	for _, s := range t.Window(from, to, r.URL.Query().Get("metric")) {
		buf = enc.appendSample(buf, s)
		if len(buf) >= 1<<14-128 {
			if _, err := w.Write(buf); err != nil {
				return
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		// The write error is consciously dropped after the header went
		// out — a client that hung up mid-response is its own problem.
		if _, err := w.Write(buf); err != nil {
			return
		}
	}
}

// ServeEvents streams flushed sample blocks as server-sent events: each
// event's data is the block's JSONL (one sample per data line). The
// stream ends when the timeline is Closed or the client goes away. A nil
// timeline ends the stream immediately.
func (t *Timeline) ServeEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	ch, cancel := t.Subscribe()
	defer cancel()
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case chunk, ok := <-ch:
			if !ok {
				return // timeline closed
			}
			if err := writeSSE(w, chunk); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// writeSSE frames one JSONL chunk as a single SSE event: every line
// becomes a data: line, so the client reassembles the chunk by joining
// the event's data lines with newlines.
func writeSSE(w http.ResponseWriter, chunk []byte) error {
	start := 0
	for i, b := range chunk {
		if b != '\n' {
			continue
		}
		if _, err := fmt.Fprintf(w, "data: %s\n", chunk[start:i]); err != nil {
			return err
		}
		start = i + 1
	}
	if start < len(chunk) {
		if _, err := fmt.Fprintf(w, "data: %s\n", chunk[start:]); err != nil {
			return err
		}
	}
	_, err := w.Write([]byte("\n"))
	return err
}
