package timeline

import (
	"math"
	"net/http"
	"strconv"
)

// publish encodes a freshly-flushed block and fans it out to every SSE
// subscriber. Sends are non-blocking: a subscriber that stopped draining
// loses deltas rather than stalling the producer. Cold path — one call
// per flushed block, nothing when nobody subscribed.
func (t *Timeline) publish(blk []Sample) {
	if t == nil {
		return
	}
	t.subMu.Lock()
	defer t.subMu.Unlock()
	if len(t.subs) == 0 {
		return
	}
	enc := encoder{cols: t.columns()}
	buf := make([]byte, 0, 64*len(blk))
	for _, s := range blk {
		buf = enc.appendSample(buf, s)
	}
	for _, ch := range t.subs {
		select {
		case ch <- buf:
		default:
		}
	}
}

// Close marks the timeline's stream over: every SSE subscriber channel
// closes, so streaming handlers return. Recording and history reads stay
// valid after Close; only the live delta feed ends.
func (t *Timeline) Close() {
	if t == nil {
		return
	}
	t.subMu.Lock()
	defer t.subMu.Unlock()
	t.closed = true
	for _, ch := range t.subs {
		close(ch)
	}
	t.subs = nil
}

// Subscribe registers a live-delta subscriber: each flushed block arrives
// as one JSONL chunk. The channel closes when the timeline is Closed
// (immediately if it already is); cancel must be called when the
// subscriber goes away.
func (t *Timeline) Subscribe() (<-chan []byte, func()) {
	ch := make(chan []byte, 16)
	if t == nil {
		close(ch)
		return ch, func() {}
	}
	t.subMu.Lock()
	defer t.subMu.Unlock()
	if t.closed {
		close(ch)
		return ch, func() {}
	}
	id := t.nextSub
	t.nextSub++
	if t.subs == nil {
		t.subs = make(map[int]chan []byte)
	}
	t.subs[id] = ch
	return ch, func() {
		t.subMu.Lock()
		defer t.subMu.Unlock()
		if _, ok := t.subs[id]; ok {
			delete(t.subs, id)
			close(ch)
		}
	}
}

// ServeHistory answers a windowed history query with JSONL, one sample
// per line in the canonical merged order. Query parameters:
//
//	from, to  inclusive time bounds (defaults: the whole history)
//	metric    restrict to one series name
//
// A nil timeline (or a malformed bound) serves an empty body / 400 rather
// than panicking, so handlers can be mounted unconditionally.
func (t *Timeline) ServeHistory(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	if t == nil {
		return
	}
	from, to := math.Inf(-1), math.Inf(1)
	if s := r.URL.Query().Get("from"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			http.Error(w, "bad from: "+err.Error(), http.StatusBadRequest)
			return
		}
		from = v
	}
	if s := r.URL.Query().Get("to"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			http.Error(w, "bad to: "+err.Error(), http.StatusBadRequest)
			return
		}
		to = v
	}
	enc := encoder{cols: t.columns()}
	buf := make([]byte, 0, 1<<14)
	for _, s := range t.Window(from, to, r.URL.Query().Get("metric")) {
		buf = enc.appendSample(buf, s)
		if len(buf) >= 1<<14-128 {
			if _, err := w.Write(buf); err != nil {
				return
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		// The write error is consciously dropped after the header went
		// out — a client that hung up mid-response is its own problem.
		if _, err := w.Write(buf); err != nil {
			return
		}
	}
}

// The SSE delta stream built on Subscribe lives in internal/serve
// (serve.StreamSSE), the repo's one HTTP serving layer — this package
// keeps only the subscription primitive so it stays free of serving
// concerns.
