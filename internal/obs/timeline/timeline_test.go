package timeline

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dcnr/internal/obs"
)

func TestNilSafety(t *testing.T) {
	var tl *Timeline
	if tl.Cadence() != 0 {
		t.Errorf("nil Cadence = %v, want 0", tl.Cadence())
	}
	if tl.Column("x") != 0 {
		t.Errorf("nil Column != 0")
	}
	l := tl.Lane("sim")
	if l != nil {
		t.Fatalf("nil timeline Lane = %v, want nil", l)
	}
	l.Record(0, 1, 2)
	l.Flush()
	if n := tl.Len(); n != 0 {
		t.Errorf("nil Len = %d", n)
	}
	if s := tl.Samples(); s != nil {
		t.Errorf("nil Samples = %v", s)
	}
	if s := tl.Window(0, 1, ""); s != nil {
		t.Errorf("nil Window = %v", s)
	}
	if err := tl.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WriteJSONL: %v", err)
	}
	tl.Close()
	ch, cancel := tl.Subscribe()
	if _, ok := <-ch; ok {
		t.Errorf("nil Subscribe channel not closed")
	}
	cancel()

	var sm *Sampler
	sm.Sample(1)
	sm.Flush()
	sm.StartWall(time.Millisecond)()
	if s := NewSampler(nil, "x", obs.NewRegistry(), nil, nil); s != nil {
		t.Errorf("NewSampler(nil timeline) = %v, want nil", s)
	}
	if s := NewSampler(New(1), "x", nil, nil, nil); s != nil {
		t.Errorf("NewSampler(nil registry) = %v, want nil", s)
	}
}

func TestCadenceDefault(t *testing.T) {
	for _, c := range []float64{0, -1, math.NaN()} {
		if got := New(c).Cadence(); got != DefaultCadence {
			t.Errorf("New(%v).Cadence() = %v, want %v", c, got, DefaultCadence)
		}
	}
	if got := New(6).Cadence(); got != 6 {
		t.Errorf("New(6).Cadence() = %v", got)
	}
}

func TestRecordFlushAndMerge(t *testing.T) {
	tl := New(24)
	a, b := tl.Column("alpha"), tl.Column("beta")
	if a == b {
		t.Fatalf("columns collided: %d", a)
	}
	if again := tl.Column("alpha"); again != a {
		t.Fatalf("Column not stable: %d vs %d", again, a)
	}
	l1 := tl.Lane("one")
	l2 := tl.Lane("two")
	l1.Record(a, 1, 10)
	l1.Record(a, 3, 20)
	l2.Record(b, 2, 5)
	if tl.Len() != 0 {
		t.Fatalf("unflushed samples visible: %d", tl.Len())
	}
	l1.Flush()
	l2.Flush()
	if tl.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tl.Len())
	}
	got := tl.Samples()
	want := []Sample{{T: 1, V: 10, Col: a}, {T: 2, V: 5, Col: b}, {T: 3, V: 20, Col: a}}
	if len(got) != len(want) {
		t.Fatalf("Samples = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sample %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	win := tl.Window(2, 3, "")
	if len(win) != 2 || win[0].T != 2 || win[1].T != 3 {
		t.Errorf("Window(2,3) = %v", win)
	}
	win = tl.Window(math.Inf(-1), math.Inf(1), "alpha")
	if len(win) != 2 || win[0].V != 10 || win[1].V != 20 {
		t.Errorf("Window(alpha) = %v", win)
	}
	if win := tl.Window(0, 10, "missing"); win != nil {
		t.Errorf("Window(missing) = %v", win)
	}
}

func TestWriteJSONL(t *testing.T) {
	tl := New(24)
	ev := tl.Column("des_events_fired_total")
	q := tl.Column("des_queue_depth")
	l := tl.Lane("sim")
	l.Record(ev, 24, 100)
	l.Record(q, 24, 7.5)
	l.Record(ev, 48.000001, 250)
	l.Flush()

	var buf bytes.Buffer
	if err := tl.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"t":24,"m":"des_events_fired_total","v":100}
{"t":24,"m":"des_queue_depth","v":7.5}
{"t":48.000001,"m":"des_events_fired_total","v":250}
`
	if buf.String() != want {
		t.Errorf("WriteJSONL =\n%s\nwant\n%s", buf.String(), want)
	}
	// Every line must be valid JSON with the three expected keys.
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var rec struct {
			T float64 `json:"t"`
			M string  `json:"m"`
			V float64 `json:"v"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		if rec.M == "" {
			t.Errorf("line %q: empty metric", sc.Text())
		}
	}
}

func TestSamplerDeltaSuppression(t *testing.T) {
	reg := obs.NewRegistry()
	tl := New(24)
	s := NewSampler(tl, "sim", reg, []string{"events_total"}, []string{"depth"})
	c := reg.Counter("events_total")
	g := reg.Gauge("depth")

	s.Sample(24) // everything zero: nothing recorded
	c.Add(3)
	s.Sample(48)
	s.Sample(72) // unchanged: nothing recorded
	g.Set(2)
	c.Add(1)
	s.Sample(96)
	g.Set(0)
	s.Sample(120) // gauge returning to zero IS a change
	s.Flush()

	got := tl.Samples()
	want := []Sample{
		{T: 48, V: 3, Col: tl.Column("events_total")},
		{T: 96, V: 4, Col: tl.Column("events_total")},
		{T: 96, V: 2, Col: tl.Column("depth")},
		{T: 120, V: 0, Col: tl.Column("depth")},
	}
	if len(got) != len(want) {
		t.Fatalf("samples = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sample %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestSamplerWallTicker(t *testing.T) {
	reg := obs.NewRegistry()
	tl := New(24)
	s := NewSampler(tl, "wall", reg, []string{"hits"}, nil)
	reg.Counter("hits").Add(5)
	stop := s.StartWall(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for tl.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	if tl.Len() == 0 {
		t.Fatal("wall ticker recorded nothing")
	}
	ss := tl.Samples()
	if ss[0].V != 5 {
		t.Errorf("wall sample = %+v, want V=5", ss[0])
	}
}

func TestServeHistory(t *testing.T) {
	tl := New(24)
	a := tl.Column("a")
	b := tl.Column("b")
	l := tl.Lane("sim")
	l.Record(a, 10, 1)
	l.Record(b, 20, 2)
	l.Record(a, 30, 3)
	l.Flush()

	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		tl.ServeHistory(rec, httptest.NewRequest("GET", url, nil))
		return rec
	}
	rec := get("/metrics/history")
	if lines := strings.Count(rec.Body.String(), "\n"); lines != 3 {
		t.Errorf("full history: %d lines, want 3: %q", lines, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	rec = get("/metrics/history?from=15&to=25")
	if body := rec.Body.String(); body != `{"t":20,"m":"b","v":2}`+"\n" {
		t.Errorf("windowed = %q", body)
	}
	rec = get("/metrics/history?metric=a")
	if lines := strings.Count(rec.Body.String(), "\n"); lines != 2 {
		t.Errorf("metric filter: %q", rec.Body.String())
	}
	rec = get("/metrics/history?from=bogus")
	if rec.Code != 400 {
		t.Errorf("bad from: code %d", rec.Code)
	}

	var nilTL *Timeline
	rec = httptest.NewRecorder()
	nilTL.ServeHistory(rec, httptest.NewRequest("GET", "/metrics/history", nil))
	if rec.Code != 200 || rec.Body.Len() != 0 {
		t.Errorf("nil history: code %d body %q", rec.Code, rec.Body.String())
	}
}

func TestSubscribeDeltas(t *testing.T) {
	tl := New(24)
	a := tl.Column("a")
	ch, cancel := tl.Subscribe()
	defer cancel()
	l := tl.Lane("sim")
	l.Record(a, 5, 1)
	l.Flush()
	select {
	case chunk := <-ch:
		if string(chunk) != `{"t":5,"m":"a","v":1}`+"\n" {
			t.Errorf("delta chunk = %q", chunk)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delta published")
	}
	tl.Close()
	if _, ok := <-ch; ok {
		t.Error("channel not closed by Close")
	}
	// Subscribing after Close yields an immediately-closed channel.
	ch2, cancel2 := tl.Subscribe()
	defer cancel2()
	if _, ok := <-ch2; ok {
		t.Error("post-Close subscription not closed")
	}
}

func TestAppendFixed(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{1, "1"},
		{-2.5, "-2.5"},
		{24.000001, "24.000001"},
		{1e13, "1e+13"},
		{math.Inf(1), "+Inf"},
	}
	for _, c := range cases {
		if got := string(appendFixed(nil, c.v)); got != c.want {
			t.Errorf("appendFixed(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
