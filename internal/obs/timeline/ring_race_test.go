package timeline

import (
	"io"
	"sync"
	"testing"
)

// TestRingWraparoundConcurrentRead drives a single-writer lane through
// many staging-buffer wraparounds while concurrent readers assemble
// Samples, serialize JSONL, and answer windowed queries. Run under -race
// this pins the publication contract: readers only ever touch flushed
// immutable blocks, never the staging ring the writer is overwriting.
func TestRingWraparoundConcurrentRead(t *testing.T) {
	tl := New(1)
	col := tl.Column("series")
	lane := tl.Lane("sim")

	const total = laneBatch*8 + laneBatch/2 // several wraps plus a partial tail
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				prev := -1.0
				for _, s := range tl.Samples() {
					if s.T < prev {
						t.Errorf("samples out of order: %v after %v", s.T, prev)
						return
					}
					prev = s.T
				}
				if err := tl.WriteJSONL(io.Discard); err != nil {
					t.Errorf("WriteJSONL: %v", err)
					return
				}
				tl.Window(0, float64(total), "series")
			}
		}()
	}

	for i := 0; i < total; i++ {
		lane.Record(col, float64(i), float64(i%7))
	}
	lane.Flush()
	close(stop)
	wg.Wait()

	if got := tl.Len(); got != total {
		t.Fatalf("Len = %d, want %d", got, total)
	}
	// A reader after the final flush sees every sample, in order.
	ss := tl.Samples()
	for i, s := range ss {
		if s.T != float64(i) {
			t.Fatalf("sample %d has T=%v", i, s.T)
		}
	}
}
