package journal

import (
	"io"
	"testing"
)

// benchJournal builds a journal shaped like a real dcsim run: two lanes
// (faults, remediation) interleaving records, ~3.5 records per fault.
func benchJournal(n int) *Journal {
	j := New()
	j.SetNames([]string{"rack_switch", "fabric_switch"}, []string{"connectivity"}, []string{"sev3"})
	faults := j.Lane("faults")
	rem := j.Lane("remediation")
	for i := 0; i < n; i++ {
		t := float64(i) * 0.25
		raised := faults.Record(Record{Kind: FaultRaised, Time: t, Dev: uint8(i % 2), Class: 0, Sev: -1})
		detected := faults.Record(Record{Kind: FaultDetected, Parent: raised, Time: t, Dev: uint8(i % 2), Class: 0, Sev: -1})
		ticket := rem.Record(Record{Kind: TicketCut, Parent: detected, Time: t, Dev: uint8(i % 2), Class: 0, Sev: -1})
		disp := rem.Record(Record{Kind: Dispatched, Parent: ticket, Time: t + 0.1, Aux: 0.1, Dev: uint8(i % 2), Class: 0, Sev: -1})
		rem.Record(Record{Kind: Repaired, Parent: disp, Time: t + 0.2, Aux: 42, Dev: uint8(i % 2), Class: 0, Sev: -1})
	}
	faults.Flush()
	rem.Flush()
	return j
}

// benchN approximates one dcsim run's fault count (~350k records total).
const benchN = 70000

func BenchmarkObsJournalRecord(b *testing.B) {
	j := New()
	l := j.Lane("bench")
	r := Record{Kind: FaultRaised, Time: 1.5, Dev: 1, Class: 0, Sev: -1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Record(r)
	}
}

func BenchmarkObsJournalRecordNil(b *testing.B) {
	var l *Lane
	r := Record{Kind: FaultRaised, Time: 1.5}
	for i := 0; i < b.N; i++ {
		l.Record(r)
	}
}

func BenchmarkObsJournalRecords(b *testing.B) {
	j := benchJournal(benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(j.Records()); got != 5*benchN {
			b.Fatalf("got %d records", got)
		}
	}
}

func BenchmarkObsJournalIndex(b *testing.B) {
	j := benchJournal(benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = j.Index()
	}
}

func BenchmarkObsJournalWriteJSONL(b *testing.B) {
	x := benchJournal(benchN).Index()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := x.WriteJSONL(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObsJournalSummary(b *testing.B) {
	x := benchJournal(benchN).Index()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Summary()
	}
}
