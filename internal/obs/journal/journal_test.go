package journal

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// chainRecords journals one complete automated-repair chain and one
// escalated incident chain, returning the journal.
func chainJournal() *Journal {
	j := New()
	j.SetNames([]string{"RSW", "CSW"}, []string{"port ping failure"}, []string{"", "SEV1", "SEV2", "SEV3"})
	l := j.Lane("test")

	// Automated repair: raised → detected → ticket → dispatched → repaired.
	raised := l.Record(Record{Kind: FaultRaised, Time: 10, Dev: 0, Class: 0, Sev: -1})
	detected := l.Record(Record{Kind: FaultDetected, Time: 10, Parent: raised, Dev: 0, Class: 0, Sev: -1})
	ticket := l.Record(Record{Kind: TicketCut, Time: 10, Parent: detected, Dev: 0, Class: 0, Sev: -1})
	disp := l.Record(Record{Kind: Dispatched, Time: 10, Parent: ticket, Aux: 24, Dev: 0, Class: 0, Sev: -1})
	l.Record(Record{Kind: Repaired, Time: 34, Parent: disp, Aux: 2.5, Dev: 0, Class: 0, Sev: -1})

	// Escalated incident: raised → detected → ticket → escalated → opened → closed.
	raised2 := l.Record(Record{Kind: FaultRaised, Time: 50, Dev: 1, Class: 0, Sev: -1})
	det2 := l.Record(Record{Kind: FaultDetected, Time: 50, Parent: raised2, Dev: 1, Class: 0, Sev: -1})
	tick2 := l.Record(Record{Kind: TicketCut, Time: 50, Parent: det2, Dev: 1, Class: 0, Sev: -1})
	esc := l.Record(Record{Kind: Escalated, Time: 50, Parent: tick2, Dev: 1, Class: 0, Sev: -1})
	opened := l.Record(Record{Kind: IncidentOpened, Time: 50, Parent: esc, Dev: 1, Class: 0, Sev: 2, Ref: 7})
	l.Record(Record{Kind: IncidentClosed, Time: 54, Parent: opened, Aux: 4, Dev: 1, Class: 0, Sev: 2, Ref: 7})

	l.Flush()
	return j
}

func TestNilJournalIsNoOp(t *testing.T) {
	var j *Journal
	j.SetNames(nil, nil, nil)
	l := j.Lane("x")
	if l != nil {
		t.Fatalf("nil journal Lane = %v, want nil", l)
	}
	if id := l.Record(Record{Kind: FaultRaised}); id != 0 {
		t.Fatalf("nil lane Record = %d, want 0", id)
	}
	l.Flush()
	if n := j.Len(); n != 0 {
		t.Fatalf("nil journal Len = %d, want 0", n)
	}
	if recs := j.Records(); recs != nil {
		t.Fatalf("nil journal Records = %v, want nil", recs)
	}
	if err := j.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil journal WriteJSONL: %v", err)
	}
	if got := j.Index().Len(); got != 0 {
		t.Fatalf("nil journal Index.Len = %d, want 0", got)
	}
}

func TestIDsAreDenseAndOrdered(t *testing.T) {
	j := chainJournal()
	recs := j.Records()
	if len(recs) != 11 {
		t.Fatalf("Records len = %d, want 11", len(recs))
	}
	for i, r := range recs {
		if r.ID != ID(i+1) {
			t.Fatalf("record %d has ID %d, want %d", i, r.ID, i+1)
		}
	}
	if j.Len() != 11 {
		t.Fatalf("Len = %d, want 11", j.Len())
	}
}

func TestAutoFlushAtBatchFull(t *testing.T) {
	j := New()
	l := j.Lane("hot")
	for i := 0; i < laneBatch; i++ {
		l.Record(Record{Kind: FaultRaised, Time: float64(i), Class: -1, Sev: -1})
	}
	// No explicit Flush: a full staging buffer must have published itself.
	if got := j.Len(); got != laneBatch {
		t.Fatalf("flushed %d records after %d Records, want auto-flush", got, laneBatch)
	}
}

func TestChainWalkAndComplete(t *testing.T) {
	x := chainJournal().Index()
	closed := x.Incidents()
	if len(closed) != 1 {
		t.Fatalf("Incidents = %d, want 1", len(closed))
	}
	chain := x.Chain(closed[0].ID)
	wantKinds := []Kind{FaultRaised, FaultDetected, TicketCut, Escalated, IncidentOpened, IncidentClosed}
	if len(chain) != len(wantKinds) {
		t.Fatalf("chain len = %d, want %d", len(chain), len(wantKinds))
	}
	for i, k := range wantKinds {
		if chain[i].Kind != k {
			t.Fatalf("chain[%d].Kind = %s, want %s", i, chain[i].Kind, k)
		}
	}
	if !x.Complete(closed[0].ID) {
		t.Fatalf("incident chain reported incomplete")
	}
	// A record with a dangling parent is incomplete.
	y := NewIndex([]Record{{ID: 9, Parent: 3, Kind: IncidentClosed}}, Names(nil, nil, nil))
	if y.Complete(9) {
		t.Fatalf("dangling chain reported complete")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	j := chainJournal()
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	out := buf.String()
	if n := strings.Count(out, "\n"); n != 11 {
		t.Fatalf("wrote %d lines, want 11:\n%s", n, out)
	}
	if !strings.Contains(out, `"kind":"incident_closed"`) || !strings.Contains(out, `"dev":"CSW"`) {
		t.Fatalf("missing expected fields:\n%s", out)
	}

	x, err := ReadJSONL(strings.NewReader(out))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if x.Len() != 11 {
		t.Fatalf("read %d records, want 11", x.Len())
	}
	closed := x.Incidents()
	if len(closed) != 1 || !x.Complete(closed[0].ID) {
		t.Fatalf("round-tripped incident chain broken: %+v", closed)
	}
	if closed[0].Ref != 7 || closed[0].Aux != 4 {
		t.Fatalf("round-tripped incident = %+v, want Ref 7 Aux 4", closed[0])
	}

	// The re-encoded stream must be byte-identical: ReadJSONL interning
	// preserves names, and ID order is canonical.
	var buf2 bytes.Buffer
	if err := writeJSONL(&buf2, x.Records(), x.names); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	// Severity ordinals differ after interning (table starts at the first
	// seen name), but the emitted names must match.
	if !strings.Contains(buf2.String(), `"sev":"SEV2"`) {
		t.Fatalf("re-encoded stream lost severity name:\n%s", buf2.String())
	}
}

func TestReadJSONLSkipsHeaderLines(t *testing.T) {
	j := chainJournal()
	var buf bytes.Buffer
	buf.WriteString(`{"run":0,"scenario":"baseline","records":11}` + "\n")
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	x, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if x.Len() != 11 {
		t.Fatalf("read %d records, want 11 (header skipped)", x.Len())
	}
}

func TestSummaryPhaseDecomposition(t *testing.T) {
	s := chainJournal().Index().Summary()
	if s.Records != 11 || s.Faults != 2 || s.Repairs != 1 || s.Escalations != 1 || s.Incidents != 1 {
		t.Fatalf("summary counts = %+v", s)
	}
	if s.CompleteChains != 1 || s.Incomplete != 0 {
		t.Fatalf("chain accounting = %+v", s)
	}
	if len(s.Phases) != 2 {
		t.Fatalf("phases = %+v, want RSW and CSW rows", s.Phases)
	}
	rsw := s.Phases[0]
	if rsw.Device != "RSW" || rsw.Repairs != 1 ||
		rsw.MeanDispatchHours != 24 || rsw.MeanRepairSeconds != 2.5 {
		t.Fatalf("RSW phases = %+v", rsw)
	}
	csw := s.Phases[1]
	if csw.Device != "CSW" || csw.Incidents != 1 || csw.MeanResolutionHours != 4 {
		t.Fatalf("CSW phases = %+v", csw)
	}
	if rsw.MeanDetectionHours != 0 {
		t.Fatalf("detection should be 0 by construction, got %g", rsw.MeanDetectionHours)
	}
}

func TestMergeSummaries(t *testing.T) {
	a := Summary{
		Records: 10, Faults: 2, Repairs: 2, Incidents: 1, CompleteChains: 1,
		Phases: []PhaseStats{{Device: "RSW", Faults: 2, Repairs: 2, MeanDispatchHours: 10, MeanRepairSeconds: 4, Incidents: 1, MeanResolutionHours: 2}},
	}
	b := Summary{
		Records: 5, Faults: 1, Repairs: 1, Incidents: 1, CompleteChains: 1,
		Phases: []PhaseStats{
			{Device: "RSW", Faults: 1, Repairs: 1, MeanDispatchHours: 40, MeanRepairSeconds: 1, Incidents: 1, MeanResolutionHours: 6},
			{Device: "FSW", Faults: 0, Repairs: 0},
		},
	}
	m := MergeSummaries([]Summary{a, b})
	if m.Records != 15 || m.Faults != 3 || m.Repairs != 3 || m.Incidents != 2 || m.CompleteChains != 2 {
		t.Fatalf("merged counts = %+v", m)
	}
	if len(m.Phases) != 2 || m.Phases[0].Device != "RSW" || m.Phases[1].Device != "FSW" {
		t.Fatalf("merged phases = %+v", m.Phases)
	}
	rsw := m.Phases[0]
	if rsw.Repairs != 3 || rsw.MeanDispatchHours != 20 { // (2*10 + 1*40) / 3
		t.Fatalf("re-weighted dispatch mean = %+v", rsw)
	}
	if rsw.MeanRepairSeconds != 3 { // (2*4 + 1*1) / 3
		t.Fatalf("re-weighted repair mean = %+v", rsw)
	}
	if rsw.MeanResolutionHours != 4 { // (1*2 + 1*6) / 2
		t.Fatalf("re-weighted resolution mean = %+v", rsw)
	}
}

// TestConcurrentReadersSeeFlushedPrefix pins the lane publication
// contract: readers may index and serialize the journal while the writer
// keeps recording, and see only whole flushed blocks.
func TestConcurrentReadersSeeFlushedPrefix(t *testing.T) {
	j := New()
	l := j.Lane("hot")
	const total = laneBatch * 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			recs := j.Records()
			for i, r := range recs {
				if r.ID != ID(i+1) {
					t.Errorf("reader saw gap: recs[%d].ID = %d", i, r.ID)
					return
				}
			}
			var sink bytes.Buffer
			if err := j.WriteJSONL(&sink); err != nil {
				t.Errorf("WriteJSONL under writer: %v", err)
				return
			}
			_ = j.Index().Summary()
		}
	}()
	for i := 0; i < total; i++ {
		l.Record(Record{Kind: FaultRaised, Time: float64(i), Class: -1, Sev: -1})
	}
	close(stop)
	wg.Wait()
	l.Flush()
	if j.Len() != total {
		t.Fatalf("Len = %d, want %d", j.Len(), total)
	}
}

func BenchmarkLaneRecord(b *testing.B) {
	j := New()
	l := j.Lane("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Record(Record{Kind: FaultRaised, Time: float64(i), Class: -1, Sev: -1})
	}
}

func BenchmarkNilLaneRecord(b *testing.B) {
	var l *Lane
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Record(Record{Kind: FaultRaised, Time: float64(i)})
	}
}
