package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Index is the query side of a journal: records keyed by causal ID, with
// chain walking and the paper-style MTTR phase decomposition
// (time-in-detection / time-in-dispatch / time-in-repair per device
// type). Build one with Journal.Index over a live journal's flushed
// records, NewIndex over a record slice, or ReadJSONL over a written
// stream.
type Index struct {
	recs []Record
	// dense is the common case: a journal flushed after a full run has IDs
	// 1..n in order, so recs[id-1] IS the lookup and no map is built. byID
	// backs Get only for sparse snapshots (a live mid-run index where one
	// lane's tail is still unflushed) or externally assembled records.
	dense bool
	byID  map[ID]int
	names nameTables
}

// Index snapshots the journal's flushed records into a queryable index.
// Safe to call while writers keep recording (a live /journal endpoint
// indexes the published prefix). Returns an empty index on a nil journal.
func (j *Journal) Index() *Index {
	return NewIndex(j.Records(), j.names())
}

// NewIndex builds an index over records. The records must carry unique
// IDs; names supplies the enum tables used in summaries (zero value is
// fine — names fall back to bare ordinals).
func NewIndex(recs []Record, names nameTables) *Index {
	x := &Index{recs: recs, dense: true, names: names}
	for i, r := range recs {
		if r.ID != ID(i+1) {
			x.dense = false
			break
		}
	}
	if !x.dense {
		x.byID = make(map[ID]int, len(recs))
		for i, r := range recs {
			x.byID[r.ID] = i
		}
	}
	return x
}

// Names bundles enum name tables for NewIndex callers outside the
// journal; the zero value means bare ordinals.
func Names(dev, class, sev []string) nameTables {
	return nameTables{dev: dev, class: class, sev: sev}
}

// ReadJSONL parses a journal stream written by WriteJSONL back into an
// index. Enum names are interned in first-appearance order, so summaries
// carry the original names. Lines without an "id" field (such as the
// per-run header lines a sweep campaign stream interleaves) are skipped.
func ReadJSONL(r io.Reader) (*Index, error) {
	var (
		recs  []Record
		names nameTables
		dev   = map[string]uint8{}
		class = map[string]uint8{}
		sevs  = map[string]uint8{}
	)
	kinds := make(map[string]Kind, numKinds)
	for k := Kind(0); int(k) < numKinds; k++ {
		kinds[k.String()] = k
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var jr struct {
			ID     uint64  `json:"id"`
			Parent uint64  `json:"parent"`
			Kind   string  `json:"kind"`
			T      float64 `json:"t"`
			Dev    string  `json:"dev"`
			Class  *string `json:"class"`
			Aux    float64 `json:"aux"`
			Sev    *string `json:"sev"`
			Ref    int32   `json:"ref"`
		}
		if err := json.Unmarshal(text, &jr); err != nil {
			return nil, fmt.Errorf("journal: line %d: %w", line, err)
		}
		if jr.ID == 0 {
			continue // not a journal record (campaign header line)
		}
		k, ok := kinds[jr.Kind]
		if !ok {
			return nil, fmt.Errorf("journal: line %d: unknown kind %q", line, jr.Kind)
		}
		rec := Record{
			ID: ID(jr.ID), Parent: ID(jr.Parent), Kind: k,
			Time: jr.T, Aux: jr.Aux, Ref: jr.Ref,
			Dev:   intern8(&names.dev, dev, jr.Dev),
			Class: -1, Sev: -1,
		}
		if jr.Class != nil {
			rec.Class = int8(intern8(&names.class, class, *jr.Class))
		}
		if jr.Sev != nil {
			rec.Sev = int8(intern8(&names.sev, sevs, *jr.Sev))
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return NewIndex(recs, names), nil
}

// intern8 maps name to a stable small ordinal, growing the table on first
// sight.
func intern8(table *[]string, seen map[string]uint8, name string) uint8 {
	if i, ok := seen[name]; ok {
		return i
	}
	i := uint8(len(*table))
	*table = append(*table, name)
	seen[name] = i
	return i
}

// WriteJSONL writes the indexed records as one JSON object per line, in
// stored (ID) order — the same stream Journal.WriteJSONL produces, without
// re-snapshotting the journal. Callers that both write and query a
// finished journal should build the index once and do both through it.
func (x *Index) WriteJSONL(w io.Writer) error {
	return writeJSONL(w, x.recs, x.names)
}

// Len reports the number of indexed records.
func (x *Index) Len() int { return len(x.recs) }

// Records returns the indexed records in their stored (ID) order.
func (x *Index) Records() []Record { return x.recs }

// Get returns the record with the given ID.
func (x *Index) Get(id ID) (Record, bool) {
	if x.dense {
		if id == 0 || uint64(id) > uint64(len(x.recs)) {
			return Record{}, false
		}
		return x.recs[id-1], true
	}
	i, ok := x.byID[id]
	if !ok {
		return Record{}, false
	}
	return x.recs[i], true
}

// Chain returns the causal chain ending at id, root first — the
// explanation of how that record came to be. A dangling parent truncates
// the chain at the last resolvable record.
func (x *Index) Chain(id ID) []Record {
	var chain []Record
	for steps := 0; id != 0 && steps <= len(x.recs); steps++ {
		r, ok := x.Get(id)
		if !ok {
			break
		}
		chain = append(chain, r)
		id = r.Parent
	}
	// Reverse to root-first order.
	for i, jj := 0, len(chain)-1; i < jj; i, jj = i+1, jj-1 {
		chain[i], chain[jj] = chain[jj], chain[i]
	}
	return chain
}

// Complete reports whether id's causal chain resolves all the way to a
// FaultRaised root with no dangling parent links.
func (x *Index) Complete(id ID) bool {
	chain := x.Chain(id)
	return len(chain) > 0 && chain[0].Kind == FaultRaised && chain[0].Parent == 0
}

// Incidents returns every IncidentClosed record, in stored order.
func (x *Index) Incidents() []Record {
	var out []Record
	for _, r := range x.recs {
		if r.Kind == IncidentClosed {
			out = append(out, r)
		}
	}
	return out
}

// PhaseStats decomposes one device type's repair timeline the way the
// paper splits MTTR: how long faults sat in each lifecycle phase, plus
// the population counts the means are over.
type PhaseStats struct {
	// Device is the device type name.
	Device string `json:"device"`
	// Faults counts FaultRaised records.
	Faults int `json:"faults"`
	// Repairs counts automated repairs; ManualRepairs the pre-automation
	// technician fixes.
	Repairs       int `json:"repairs"`
	ManualRepairs int `json:"manual_repairs,omitempty"`
	// Escalations counts faults automation handed back to humans.
	Escalations int `json:"escalations"`
	// Incidents counts closed incidents (SEVs).
	Incidents int `json:"incidents"`
	// MeanDetectionHours is raised→detected: zero by construction in the
	// current model (monitoring detects instantaneously); the journal
	// records it so the claim is checkable rather than assumed.
	MeanDetectionHours float64 `json:"mean_detection_hours"`
	// MeanDispatchHours is the mean queueing wait of automated repairs.
	MeanDispatchHours float64 `json:"mean_dispatch_hours"`
	// MeanRepairSeconds is the mean execution time of automated repairs.
	MeanRepairSeconds float64 `json:"mean_repair_seconds"`
	// MeanResolutionHours is the mean incident resolution time.
	MeanResolutionHours float64 `json:"mean_resolution_hours"`
}

// Summary is the roll-up a journal reduces to: chain-completeness
// accounting plus the per-device-type MTTR phase decomposition.
// JSON-serializable; campaign-level summaries merge with MergeSummaries.
type Summary struct {
	// Records is the total record count; Faults/Repairs/Escalations/
	// Incidents count lifecycle roots and outcomes across all devices.
	Records     int `json:"records"`
	Faults      int `json:"faults"`
	Repairs     int `json:"repairs"`
	Escalations int `json:"escalations"`
	Incidents   int `json:"incidents"`
	// CompleteChains counts closed incidents whose causal chain resolves
	// to a FaultRaised root; Incomplete counts the rest (always 0 for a
	// journal flushed after the run).
	CompleteChains int `json:"complete_chains"`
	Incomplete     int `json:"incomplete_chains,omitempty"`
	// Phases is the per-device-type decomposition, ordered by device
	// ordinal.
	Phases []PhaseStats `json:"phases"`
}

// phaseAcc accumulates one device type's sums.
type phaseAcc struct {
	faults, repairs, manual, escalations, incidents int
	detectionSum, detected                          float64
	dispatchSum, repairSum                          float64
	resolutionSum                                   float64
}

// Summary computes the journal roll-up over the indexed records.
func (x *Index) Summary() Summary {
	acc := map[uint8]*phaseAcc{}
	at := func(d uint8) *phaseAcc {
		a := acc[d]
		if a == nil {
			a = &phaseAcc{}
			acc[d] = a
		}
		return a
	}
	s := Summary{Records: len(x.recs)}
	for _, r := range x.recs {
		a := at(r.Dev)
		switch r.Kind {
		case FaultRaised:
			s.Faults++
			a.faults++
		case FaultDetected:
			if p, ok := x.Get(r.Parent); ok {
				a.detectionSum += r.Time - p.Time
				a.detected++
			}
		case Dispatched:
			a.dispatchSum += r.Aux
		case Escalated:
			s.Escalations++
			a.escalations++
		case Repaired:
			s.Repairs++
			if p, ok := x.Get(r.Parent); ok && p.Kind == Dispatched {
				a.repairs++
				a.repairSum += r.Aux
			} else {
				a.manual++
			}
		case IncidentClosed:
			s.Incidents++
			a.incidents++
			a.resolutionSum += r.Aux
			if x.Complete(r.ID) {
				s.CompleteChains++
			} else {
				s.Incomplete++
			}
		}
	}
	devs := make([]int, 0, len(acc))
	for d := range acc {
		devs = append(devs, int(d))
	}
	sort.Ints(devs)
	for _, d := range devs {
		a := acc[uint8(d)]
		p := PhaseStats{
			Device:        x.names.devName(uint8(d)),
			Faults:        a.faults,
			Repairs:       a.repairs,
			ManualRepairs: a.manual,
			Escalations:   a.escalations,
			Incidents:     a.incidents,
		}
		if a.detected > 0 {
			p.MeanDetectionHours = a.detectionSum / a.detected
		}
		if a.repairs > 0 {
			p.MeanDispatchHours = a.dispatchSum / float64(a.repairs)
			p.MeanRepairSeconds = a.repairSum / float64(a.repairs)
		}
		if a.incidents > 0 {
			p.MeanResolutionHours = a.resolutionSum / float64(a.incidents)
		}
		s.Phases = append(s.Phases, p)
	}
	return s
}

// MergeSummaries combines per-run summaries into a campaign-level one:
// counts sum, phase means are re-weighted by their population counts, and
// device rows are unioned by name (ordered by first appearance across the
// inputs).
func MergeSummaries(ss []Summary) Summary {
	var out Summary
	byDev := map[string]*PhaseStats{}
	var order []string
	for _, s := range ss {
		out.Records += s.Records
		out.Faults += s.Faults
		out.Repairs += s.Repairs
		out.Escalations += s.Escalations
		out.Incidents += s.Incidents
		out.CompleteChains += s.CompleteChains
		out.Incomplete += s.Incomplete
		for _, p := range s.Phases {
			m := byDev[p.Device]
			if m == nil {
				m = &PhaseStats{Device: p.Device}
				byDev[p.Device] = m
				order = append(order, p.Device)
			}
			// Re-weight: means become sums here, divided back out below.
			detected := p.Faults // detection mean is over detected faults ≈ raised
			m.MeanDetectionHours += p.MeanDetectionHours * float64(detected)
			m.MeanDispatchHours += p.MeanDispatchHours * float64(p.Repairs)
			m.MeanRepairSeconds += p.MeanRepairSeconds * float64(p.Repairs)
			m.MeanResolutionHours += p.MeanResolutionHours * float64(p.Incidents)
			m.Faults += p.Faults
			m.Repairs += p.Repairs
			m.ManualRepairs += p.ManualRepairs
			m.Escalations += p.Escalations
			m.Incidents += p.Incidents
		}
	}
	for _, dev := range order {
		m := byDev[dev]
		if m.Faults > 0 {
			m.MeanDetectionHours /= float64(m.Faults)
		}
		if m.Repairs > 0 {
			m.MeanDispatchHours /= float64(m.Repairs)
			m.MeanRepairSeconds /= float64(m.Repairs)
		}
		if m.Incidents > 0 {
			m.MeanResolutionHours /= float64(m.Incidents)
		}
		out.Phases = append(out.Phases, *m)
	}
	return out
}
