// Package journal is a causal incident journal: an allocation-conscious
// structured wide-event stream that records the full lifecycle of every
// simulated fault — raised → detected → ticket cut → remediation
// dispatched → escalated (if any) → repaired → incident opened/closed —
// with stable causal IDs linking each record to its parent, so any
// incident can be explained as a chain walked root-to-leaf.
//
// The paper's methodology rests on exactly this kind of provenance: a SEV
// ties a root-cause event to the device, the remediation path, and the
// time spent in each phase, which is what makes its MTTR decompositions
// possible. The journal captures the same provenance at generation time.
//
// # Memory layout
//
// Records are pointer-free fixed-size structs (40 bytes) staged in
// per-lane rings — the SpanRing pattern from internal/obs: each Lane has a
// single-writer staging buffer that is published as immutable blocks, so
// the hot path costs one struct store and one atomic ID allocation, never
// a map or an encoder. Lanes flush automatically when the staging buffer
// fills and explicitly at simulation sync points; readers (WriteJSONL,
// Index) see only flushed blocks, so a mid-run reader observes a
// consistent prefix of each lane while writers keep recording.
//
// # Determinism
//
// IDs are allocated from one atomic counter across all lanes. The DES
// kernel is single-threaded, so for a fixed seed the allocation order —
// and therefore the ID-sorted JSONL output — is bit-for-bit reproducible.
// Recording draws no randomness and reads no wall clock, so an attached
// journal never perturbs the simulation's RNG streams or outputs.
//
// All methods are safe on a nil *Journal and nil *Lane, matching the
// project-wide observability contract: a nil journal is a no-op costing
// the hot paths nothing.
package journal

import (
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// ID is a causal record identifier, unique within one journal. IDs are
// dense, start at 1, and increase in record-issue order; 0 means "no
// record" (an absent parent, or a Record call on a nil lane).
type ID uint64

// Kind discriminates the lifecycle stages a record can mark.
type Kind uint8

const (
	// FaultRaised is the root of every chain: a device issue occurred.
	FaultRaised Kind = iota
	// FaultDetected marks monitoring noticing the fault (parent: the
	// FaultRaised record).
	FaultDetected
	// TicketCut marks the remediation system accepting the fault (parent:
	// FaultDetected).
	TicketCut
	// Dispatched marks an automated repair leaving the queue; Aux carries
	// the queueing wait in hours (parent: TicketCut).
	Dispatched
	// Escalated marks automation giving up — unsupported device, disabled
	// engine, or an unfixable issue (parent: TicketCut).
	Escalated
	// Repaired marks a completed repair; Aux carries the execution time in
	// seconds for automated repairs (parent: Dispatched) and 0 for
	// manual-era technician fixes (parent: FaultDetected).
	Repaired
	// IncidentOpened marks a SEV being cut; Ref is the SEV store ID and
	// Sev the severity (parent: Escalated, or FaultDetected pre-2013).
	IncidentOpened
	// IncidentClosed marks the incident resolving; Aux carries the
	// resolution time in hours (parent: IncidentOpened).
	IncidentClosed

	numKinds = int(IncidentClosed) + 1
)

var kindNames = [numKinds]string{
	"fault_raised", "fault_detected", "ticket_cut", "dispatched",
	"escalated", "repaired", "incident_opened", "incident_closed",
}

// String names the kind as it appears in the JSONL stream.
func (k Kind) String() string {
	if int(k) >= numKinds {
		return "kind(" + strconv.Itoa(int(k)) + ")"
	}
	return kindNames[k]
}

// Record is one journal entry: 40 bytes, no pointers, so a full staging
// buffer is a single GC-free block.
type Record struct {
	// ID is the record's causal identifier, assigned by Lane.Record.
	ID ID
	// Parent links to the record this one was caused by; 0 at chain roots.
	Parent ID
	// Time is the simulation time of the event in hours since epoch.
	Time float64
	// Aux is a kind-specific value: queue wait in hours (Dispatched),
	// repair execution in seconds (Repaired), resolution in hours
	// (IncidentClosed); 0 otherwise.
	Aux float64
	// Ref is the SEV store ID on incident records; 0 otherwise.
	Ref int32
	// Kind is the lifecycle stage this record marks.
	Kind Kind
	// Dev is the device type ordinal (topology.DeviceType).
	Dev uint8
	// Class is the fault class ordinal, or -1 when not applicable.
	Class int8
	// Sev is the severity on incident records (1–3), or -1.
	Sev int8
}

// laneBatch is the staging-buffer size of a lane: one publish per this
// many records, 10 KiB of staging per lane.
const laneBatch = 256

// Journal allocates causal IDs and owns the record lanes. Construct with
// New; a nil *Journal (and every lane obtained from it) is a valid no-op.
type Journal struct {
	nextID atomic.Uint64

	mu    sync.Mutex
	lanes []*Lane
	// Name tables for JSONL encoding, indexed by the Record ordinals. Set
	// once before recording (SetNames); missing entries fall back to the
	// bare number.
	devNames, classNames, sevNames []string
}

// New returns an empty journal.
func New() *Journal { return &Journal{} }

// SetNames installs the enum name tables used when encoding records:
// device types indexed by Record.Dev, fault classes by Record.Class,
// severities by Record.Sev. Call once, before the journal is written or
// indexed. Nil slices keep the previous table.
func (j *Journal) SetNames(dev, class, sev []string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if dev != nil {
		j.devNames = dev
	}
	if class != nil {
		j.classNames = class
	}
	if sev != nil {
		j.sevNames = sev
	}
}

// Lane creates a new record lane. Like obs.SpanRing, a lane is
// SINGLE-WRITER: exactly one goroutine may call Record / Flush at a time
// (callers that share a lane across goroutines serialize on their own
// mutex, as the remediation engine does). Returns nil — a valid no-op
// lane — on a nil journal.
func (j *Journal) Lane(name string) *Lane {
	if j == nil {
		return nil
	}
	l := &Lane{j: j, name: name}
	j.mu.Lock()
	j.lanes = append(j.lanes, l)
	j.mu.Unlock()
	return l
}

// Len reports the number of flushed (reader-visible) records.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	lanes := append([]*Lane(nil), j.lanes...)
	j.mu.Unlock()
	n := 0
	for _, l := range lanes {
		n += l.flushedLen()
	}
	return n
}

// Records returns every flushed record across all lanes, sorted by ID —
// the canonical causal order. Safe to call while writers keep recording:
// it sees a consistent prefix of each lane.
//
// A lane's records carry strictly increasing IDs (one writer drawing from
// the shared counter), so the lanes are merged rather than sorted: a study
// run's few hundred thousand records assemble in one O(n·lanes) pass
// instead of an O(n log n) comparison sort over 40-byte elements.
func (j *Journal) Records() []Record {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	lanes := append([]*Lane(nil), j.lanes...)
	j.mu.Unlock()

	allBlocks := make([][]Record, 0, 8)
	total := 0
	for _, l := range lanes {
		for _, b := range l.blocks() {
			allBlocks = append(allBlocks, b)
			total += len(b)
		}
	}

	// Fast path: a journal whose lanes are fully flushed holds exactly the
	// IDs 1..total, so every record can be placed directly at recs[ID-1] —
	// no comparisons at all. A live mid-run snapshot (some IDs issued but
	// unflushed) leaves holes; then fall back to merging the lanes.
	recs := make([]Record, total)
	placed := true
	for _, blk := range allBlocks {
		for _, r := range blk {
			if r.ID < 1 || r.ID > ID(total) || recs[r.ID-1].ID != 0 {
				placed = false
				break
			}
			recs[r.ID-1] = r
		}
		if !placed {
			break
		}
	}
	if placed {
		return recs
	}

	// Slow path: concatenate and sort by ID. Each lane's records are
	// already ID-ascending (one writer drawing from the shared counter), so
	// the sort sees mostly-ordered input; this path only runs for partial
	// snapshots, which live introspection keeps small and rare.
	recs = recs[:0]
	for _, blk := range allBlocks {
		recs = append(recs, blk...)
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].ID < recs[b].ID })
	return recs
}

// names returns the journal's name tables.
func (j *Journal) names() nameTables {
	if j == nil {
		return nameTables{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return nameTables{j.devNames, j.classNames, j.sevNames}
}

// nameTables bundles the enum name tables a journal encodes with.
type nameTables struct {
	dev, class, sev []string
}

func (t nameTables) devName(i uint8) string {
	if int(i) < len(t.dev) && t.dev[i] != "" {
		return t.dev[i]
	}
	return strconv.Itoa(int(i))
}

func (t nameTables) className(i int8) string {
	if i >= 0 && int(i) < len(t.class) && t.class[i] != "" {
		return t.class[i]
	}
	return strconv.Itoa(int(i))
}

func (t nameTables) sevName(i int8) string {
	if i >= 0 && int(i) < len(t.sev) && t.sev[i] != "" {
		return t.sev[i]
	}
	return strconv.Itoa(int(i))
}

// WriteJSONL writes every flushed record as one JSON object per line, in
// ID order — deterministic for a fixed simulation seed. The encoder is
// hand-rolled append-based work tuned for the stream's shape: a full
// study run journals a few hundred thousand records, so per-record
// nanoseconds are end-to-end milliseconds. Time and aux values are
// written as fixed-point decimals with up to six fractional digits
// (micro-hour / micro-second resolution) — integer formatting is several
// times cheaper than shortest-float, and a fault's lifecycle records
// share timestamps, which the encoder renders once and reuses.
func (j *Journal) WriteJSONL(w io.Writer) error {
	if j == nil {
		return nil
	}
	return writeJSONL(w, j.Records(), j.names())
}

// kindFrag pre-renders each kind together with the key that always
// follows it.
var kindFrag = func() [numKinds][]byte {
	var frags [numKinds][]byte
	for k := range frags {
		frags[k] = []byte(`,"kind":"` + Kind(k).String() + `","t":`)
	}
	return frags
}()

// encoder carries writeJSONL's per-stream caches: pre-rendered
// `,"dev":"…"`-style fragments per ordinal, and the last rendered time
// (consecutive lifecycle records of one fault share timestamps).
type encoder struct {
	names                       nameTables
	devFrag, classFrag, sevFrag [][]byte
	lastTime                    float64
	timeBuf                     []byte
}

func (e *encoder) frag(table *[][]byte, i int, key, name string) []byte {
	for len(*table) <= i {
		*table = append(*table, nil)
	}
	if (*table)[i] == nil {
		(*table)[i] = []byte(`,"` + key + `":"` + name + `"`)
	}
	return (*table)[i]
}

// appendFixed encodes v as a fixed-point decimal with up to six
// fractional digits, trailing zeros trimmed. Non-finite values and values
// beyond the fixed-point range fall back to shortest-float.
func appendFixed(b []byte, v float64) []byte {
	neg := v < 0
	if neg {
		v = -v
	}
	if !(v < 9e12) { // NaN, +Inf, or beyond the fixed-point range
		return strconv.AppendFloat(b, v, 'g', -1, 64)
	}
	if neg {
		b = append(b, '-')
	}
	u := uint64(v*1e6 + 0.5)
	b = strconv.AppendUint(b, u/1e6, 10)
	if fp := u % 1e6; fp != 0 {
		var tmp [7]byte
		tmp[0] = '.'
		for i := 6; i >= 1; i-- {
			tmp[i] = byte('0' + fp%10)
			fp /= 10
		}
		n := 7
		for tmp[n-1] == '0' {
			n--
		}
		b = append(b, tmp[:n]...)
	}
	return b
}

func writeJSONL(w io.Writer, recs []Record, names nameTables) error {
	enc := encoder{names: names}
	buf := make([]byte, 0, 1<<16)
	for _, r := range recs {
		buf = enc.appendRecord(buf, r)
		if len(buf) >= 1<<16-256 {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// appendRecord encodes one record as a JSON line. Names must be plain
// JSON-safe text (no quotes, backslashes, or control characters) — the
// project's enum String() methods all are.
func (e *encoder) appendRecord(b []byte, r Record) []byte {
	b = append(b, `{"id":`...)
	b = strconv.AppendUint(b, uint64(r.ID), 10)
	if r.Parent != 0 {
		b = append(b, `,"parent":`...)
		b = strconv.AppendUint(b, uint64(r.Parent), 10)
	}
	if int(r.Kind) < numKinds {
		b = append(b, kindFrag[r.Kind]...)
	} else {
		b = append(b, `,"kind":"`...)
		b = append(b, r.Kind.String()...)
		b = append(b, `","t":`...)
	}
	if r.Time != e.lastTime || e.timeBuf == nil {
		e.lastTime = r.Time
		e.timeBuf = appendFixed(e.timeBuf[:0], r.Time)
	}
	b = append(b, e.timeBuf...)
	b = append(b, e.frag(&e.devFrag, int(r.Dev), "dev", e.names.devName(r.Dev))...)
	if r.Class >= 0 {
		b = append(b, e.frag(&e.classFrag, int(r.Class), "class", e.names.className(r.Class))...)
	}
	if r.Aux != 0 {
		b = append(b, `,"aux":`...)
		b = appendFixed(b, r.Aux)
	}
	if r.Sev >= 0 {
		b = append(b, e.frag(&e.sevFrag, int(r.Sev), "sev", e.names.sevName(r.Sev))...)
	}
	if r.Ref != 0 {
		b = append(b, `,"ref":`...)
		b = strconv.AppendInt(b, int64(r.Ref), 10)
	}
	b = append(b, '}', '\n')
	return b
}

// Lane is a single-writer record buffer feeding its journal: Record
// stages into a fixed ring; full rings (and explicit Flush calls) publish
// immutable blocks to readers. All methods are nil-safe.
type Lane struct {
	j    *Journal
	name string

	buf [laneBatch]Record // staging buffer, single-writer
	n   int

	// flushed holds published records as immutable blocks (the SpanRing
	// publication pattern: appending a freshly-copied block never
	// re-copies earlier records).
	mu      sync.Mutex
	flushed [][]Record
	total   int
}

// Record assigns the next causal ID to r, stages it, and returns the ID
// so the caller can parent subsequent records on it. Returns 0 on a nil
// lane.
//
//hot:noalloc
func (l *Lane) Record(r Record) ID {
	if l == nil {
		return 0
	}
	r.ID = ID(l.j.nextID.Add(1))
	l.buf[l.n] = r
	l.n++
	if l.n == laneBatch {
		l.Flush()
	}
	return r.ID
}

// Flush publishes the staged records to readers. Only the writer may call
// it.
func (l *Lane) Flush() {
	if l == nil || l.n == 0 {
		return
	}
	blk := make([]Record, l.n)
	copy(blk, l.buf[:l.n])
	l.mu.Lock()
	l.flushed = append(l.flushed, blk)
	l.total += l.n
	l.mu.Unlock()
	l.n = 0
}

// blocks returns the flushed record blocks. The blocks themselves are
// immutable once published, so only the block list is copied.
func (l *Lane) blocks() [][]Record {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([][]Record(nil), l.flushed...)
}

// flushedLen returns the number of published records.
func (l *Lane) flushedLen() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
