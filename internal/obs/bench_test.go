package obs

import "testing"

// The micro-benchmarks bound the per-observation cost the instrumented hot
// paths pay (scripts/bench_obs.sh records them into BENCH_obs.json next to
// the end-to-end overhead numbers).

func BenchmarkObsCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench_gauge")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkObsHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_hist", []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-4)
	}
}

func BenchmarkObsTracerSpan(b *testing.B) {
	tr := NewTracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Begin("bench", "span").End()
	}
}

func BenchmarkObsTracerSpanNil(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Begin("bench", "span").End()
	}
}
