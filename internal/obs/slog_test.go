package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestSimHandlerInjectsGaugeFallback(t *testing.T) {
	r := NewRegistry()
	sim := r.Gauge("des_sim_hours")
	sim.Set(1234.5)
	var buf bytes.Buffer
	h, err := NewSimHandler(&buf, "json", slog.LevelInfo, sim)
	if err != nil {
		t.Fatal(err)
	}
	slog.New(h).Info("fault injected", "device", "rsw")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	if got := rec[SimHoursKey]; got != 1234.5 {
		t.Errorf("sim_hours = %v, want 1234.5 from gauge", got)
	}
	if _, ok := rec["time"]; !ok {
		t.Error("record lost the wall-clock time attribute")
	}
}

func TestSimHandlerExplicitAttrWins(t *testing.T) {
	r := NewRegistry()
	sim := r.Gauge("des_sim_hours")
	sim.Set(999)
	var buf bytes.Buffer
	h, err := NewSimHandler(&buf, "json", slog.LevelInfo, sim)
	if err != nil {
		t.Fatal(err)
	}
	slog.New(h).Info("repair done", SimHours(42))
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if got := rec[SimHoursKey]; got != 42.0 {
		t.Errorf("sim_hours = %v, want explicit 42 to win over gauge 999", got)
	}
	if n := strings.Count(buf.String(), SimHoursKey); n != 1 {
		t.Errorf("sim_hours appears %d times, want exactly once:\n%s", n, buf.String())
	}
}

func TestSimHandlerNilGaugeAndText(t *testing.T) {
	var buf bytes.Buffer
	h, err := NewSimHandler(&buf, "text", slog.LevelWarn, nil)
	if err != nil {
		t.Fatal(err)
	}
	log := slog.New(h)
	log.Info("filtered out")
	log.Warn("kept")
	out := buf.String()
	if strings.Contains(out, "filtered out") {
		t.Error("level filter did not drop info record")
	}
	if !strings.Contains(out, "kept") {
		t.Errorf("warn record missing: %q", out)
	}
	if strings.Contains(out, SimHoursKey) {
		t.Errorf("nil gauge must not inject sim_hours: %q", out)
	}
}

func TestSimHandlerWithAttrsAndGroupKeepGauge(t *testing.T) {
	r := NewRegistry()
	sim := r.Gauge("des_sim_hours")
	sim.Set(7)
	var buf bytes.Buffer
	h, err := NewSimHandler(&buf, "json", slog.LevelInfo, sim)
	if err != nil {
		t.Fatal(err)
	}
	slog.New(h).With("component", "health").WithGroup("alert").Info("firing", "rule", "fast-burn")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["component"] != "health" {
		t.Errorf("WithAttrs attribute lost: %v", rec)
	}
	grp, _ := rec["alert"].(map[string]any)
	if grp == nil || grp["rule"] != "fast-burn" {
		t.Errorf("WithGroup nesting lost: %v", rec)
	}
	// sim_hours lands inside the open group for grouped records — the
	// contract is that it is present somewhere, sourced from the gauge.
	if rec[SimHoursKey] != 7.0 && grp[SimHoursKey] != 7.0 {
		t.Errorf("derived handler lost the sim gauge: %v", rec)
	}
}

func TestSimHandlerConcurrentUse(t *testing.T) {
	r := NewRegistry()
	sim := r.Gauge("des_sim_hours")
	var buf bytes.Buffer
	h, err := NewSimHandler(&buf, "json", slog.LevelInfo, sim)
	if err != nil {
		t.Fatal(err)
	}
	log := slog.New(h)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sim.Set(float64(i))
				log.Info("event", "worker", w, "i", i)
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d log lines, want 400", len(lines))
	}
	for _, ln := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("interleaved write produced invalid JSON line: %v\n%s", err, ln)
		}
	}
}

func TestParseLogLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want slog.Level
	}{
		{"debug", slog.LevelDebug},
		{"info", slog.LevelInfo},
		{"", slog.LevelInfo},
		{"WARN", slog.LevelWarn},
		{"warning", slog.LevelWarn},
		{"error", slog.LevelError},
	} {
		got, err := ParseLogLevel(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Error("ParseLogLevel accepted bogus level")
	}
	if _, err := NewSimHandler(&bytes.Buffer{}, "xml", slog.LevelInfo, nil); err == nil {
		t.Error("NewSimHandler accepted bogus format")
	}
}
