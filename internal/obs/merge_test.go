package obs

import (
	"math"
	"testing"
)

func snapWith(h *Histogram, samples ...float64) HistogramSnapshot {
	for _, v := range samples {
		h.Observe(v)
	}
	snap := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.Count(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		snap.Counts[i] = h.counts[i].Load()
	}
	return snap
}

func TestSnapshotMergeCombinesAllKinds(t *testing.T) {
	ra, rb := NewRegistry(), NewRegistry()
	ra.Counter("events_total").Add(3)
	rb.Counter("events_total").Add(4)
	rb.Counter("only_b_total").Add(1)
	ra.Gauge("depth").Set(2)
	rb.Gauge("depth").Set(7)
	ra.Histogram("lat", []float64{1, 10}).Observe(0.5)
	rb.Histogram("lat", []float64{1, 10}).Observe(5)
	rb.Histogram("lat", []float64{1, 10}).Observe(100)

	merged := ra.Snapshot()
	if err := merged.Merge(rb.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if got := merged.Counters["events_total"]; got != 7 {
		t.Errorf("merged counter = %d, want 7", got)
	}
	if got := merged.Counters["only_b_total"]; got != 1 {
		t.Errorf("counter present only in other = %d, want 1", got)
	}
	if got := merged.Gauges["depth"]; got != 7 {
		t.Errorf("merged gauge = %v, want 7 (last writer wins)", got)
	}
	h := merged.Histograms["lat"]
	if h.Count != 3 {
		t.Errorf("merged histogram count = %d, want 3", h.Count)
	}
	if want := []int64{1, 1, 1}; len(h.Counts) != 3 || h.Counts[0] != want[0] || h.Counts[1] != want[1] || h.Counts[2] != want[2] {
		t.Errorf("merged buckets = %v, want %v", h.Counts, want)
	}
	if math.Abs(h.Sum-105.5) > 1e-9 {
		t.Errorf("merged sum = %v, want 105.5", h.Sum)
	}
}

func TestSnapshotMergeIntoZeroValue(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Histogram("h", []float64{1}).Observe(0.5)
	var merged Snapshot // zero maps: Merge must allocate them
	if err := merged.Merge(r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if merged.Counters["c"] != 1 || merged.Histograms["h"].Count != 1 {
		t.Errorf("merge into zero snapshot lost data: %+v", merged)
	}
	// Merging into a fresh target must not alias the source's buckets.
	src := r.Snapshot()
	if err := merged.Merge(src); err != nil {
		t.Fatal(err)
	}
	if src.Histograms["h"].Counts[0] != 1 {
		t.Errorf("merge mutated the source snapshot: %v", src.Histograms["h"].Counts)
	}
}

func TestSnapshotMergeRejectsMismatchedBounds(t *testing.T) {
	ra, rb := NewRegistry(), NewRegistry()
	ra.Histogram("h", []float64{1, 2}).Observe(1)
	rb.Histogram("h", []float64{1, 3}).Observe(1)
	a := ra.Snapshot()
	if err := a.Merge(rb.Snapshot()); err == nil {
		t.Fatal("merging histograms with different bounds should error")
	}
	rc := NewRegistry()
	rc.Histogram("h", []float64{1}).Observe(1)
	b := ra.Snapshot()
	if err := b.Merge(rc.Snapshot()); err == nil {
		t.Fatal("merging histograms with different bucket counts should error")
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	// Empty histogram: no estimate.
	empty := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []int64{0, 0, 0}}
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Errorf("empty histogram quantile = %v, want NaN", empty.Quantile(0.5))
	}

	// Single sample: every quantile interpolates inside its bucket and
	// stays within the bucket's bounds.
	single := snapWith(NewRegistry().Histogram("s", []float64{1, 2, 4}), 1.5)
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		got := single.Quantile(q)
		if got < 1 || got > 2 {
			t.Errorf("single-sample Quantile(%v) = %v, want within (1, 2]", q, got)
		}
	}
	if got := single.Quantile(1); math.Abs(got-2) > 1e-9 {
		t.Errorf("single-sample Quantile(1) = %v, want upper bound 2", got)
	}

	// Zero-count buckets between populated ones do not break the scan.
	gaps := snapWith(NewRegistry().Histogram("g", []float64{1, 2, 4, 8}), 0.5, 0.6, 7, 7.5)
	if got := gaps.Quantile(0.25); got > 1 {
		t.Errorf("Quantile(0.25) = %v, want inside first bucket (≤1)", got)
	}
	if got := gaps.Quantile(0.9); got < 4 || got > 8 {
		t.Errorf("Quantile(0.9) = %v, want inside (4, 8] bucket", got)
	}

	// Ranks in the +Inf bucket saturate at the last finite bound.
	inf := snapWith(NewRegistry().Histogram("i", []float64{1, 2}), 100, 200, 300)
	if got := inf.Quantile(0.99); got != 2 {
		t.Errorf("+Inf-bucket quantile = %v, want saturation at 2", got)
	}

	// Out-of-range q clamps instead of panicking.
	if got := inf.Quantile(2); got != 2 {
		t.Errorf("Quantile(2) = %v, want clamp to 1 → 2", got)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	// 100 samples uniform over (0, 10] in ten unit buckets: the estimator
	// should land near the true quantiles.
	h := NewRegistry().Histogram("u", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i)*0.1 + 0.05)
	}
	snap := snapWith(h)
	for _, tc := range []struct{ q, want float64 }{{0.5, 5}, {0.75, 7.5}, {0.9, 9}} {
		if got := snap.Quantile(tc.q); math.Abs(got-tc.want) > 0.2 {
			t.Errorf("Quantile(%v) = %v, want ≈ %v", tc.q, got, tc.want)
		}
	}
}
