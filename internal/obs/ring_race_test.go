package obs

import (
	"io"
	"sync"
	"testing"
)

// TestSpanRingWraparoundUnderFork pins flushed-block immutability under the
// dcsim streaming pattern: one writer drives a ring through several
// staging-buffer wraparounds (auto-flush at ringBatch) while readers
// repeatedly serialize the same tracer and a forked tracer's writer records
// concurrently. A mid-run Events snapshot must be a stable prefix of the
// final trace — if Flush published the staging array instead of a copy,
// the writer's wraparound would rewrite records the readers already hold
// (and the race detector would see the overlap).
func TestSpanRingWraparoundUnderFork(t *testing.T) {
	tr := NewTracer()
	ring := tr.Ring(WallPID, 1, "test", "hot", "v").SetNames("even", "odd")

	const total = 3*ringBatch + 17 // several wraparounds plus a partial batch

	var wg sync.WaitGroup
	done := make(chan struct{})

	// Writer: wraps the staging buffer repeatedly; every record's arg
	// equals its timestamp, so any torn or rewritten record is detectable.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < total; i++ {
			ring.Record(int32(i%2), float64(i), 1, float64(i), 0, 0)
		}
		ring.Flush()
	}()

	// Fork writer: records on a forked tracer's own ring concurrently —
	// forks share only the wall-clock origin, never ring state.
	fork := tr.Fork()
	fring := fork.Ring(WallPID, 2, "test", "forked", "v")
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < ringBatch+5; i++ {
			fring.Record(-1, float64(i), 1, float64(i), 0, 0)
		}
		fring.Flush()
	}()

	// Readers: hammer the serialization paths while both writers run, and
	// keep one mid-run snapshot for the immutability check.
	var snapshot []Event
	for loop := true; loop; {
		select {
		case <-done:
			loop = false
		default:
		}
		evs := tr.Events()
		for _, e := range evs {
			if e.Args["v"] != e.TS {
				t.Fatalf("record torn or rewritten under reader: ts=%v v=%v", e.TS, e.Args["v"])
			}
		}
		if snapshot == nil && len(evs) >= ringBatch {
			snapshot = evs
		}
		if err := tr.WriteJSON(io.Discard); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		_ = tr.Len()
	}
	wg.Wait()

	if snapshot == nil {
		// The writer finished before a full batch was visible; the final
		// trace still serves as the (trivial) snapshot.
		snapshot = tr.Events()
	}
	final := tr.Events()
	if len(final) != total {
		t.Fatalf("final trace has %d records, want %d", len(final), total)
	}
	for i := range snapshot {
		if snapshot[i].TS != final[i].TS || snapshot[i].Name != final[i].Name ||
			snapshot[i].Args["v"] != final[i].Args["v"] {
			t.Fatalf("flushed block mutated after publication: snapshot[%d]=%+v final[%d]=%+v",
				i, snapshot[i], i, final[i])
		}
	}
	// Per-record names resolve through the table across wraparounds.
	if final[0].Name != "even" || final[1].Name != "odd" {
		t.Errorf("name table lost across flushes: %q, %q", final[0].Name, final[1].Name)
	}
	// The fork stayed independent.
	if fork.Len() != ringBatch+5 {
		t.Errorf("fork recorded %d spans, want %d", fork.Len(), ringBatch+5)
	}
	if tr.Len() != total {
		t.Errorf("fork leaked into parent: parent has %d spans, want %d", tr.Len(), total)
	}
}
