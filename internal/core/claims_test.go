package core

import (
	"testing"

	"dcnr/internal/fleet"
	"dcnr/internal/sev"
)

func TestIntraClaimsPassOnReferenceSeed(t *testing.T) {
	a := intraAnalysis(t)
	results := a.VerifyIntraClaims()
	if len(results) < 10 {
		t.Fatalf("only %d intra claims", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		if seen[r.ID] {
			t.Errorf("duplicate claim ID %s", r.ID)
		}
		seen[r.ID] = true
		if r.Claim == "" || r.Detail == "" {
			t.Errorf("claim %s missing text", r.ID)
		}
		if !r.Pass {
			t.Errorf("claim %s failed on reference seed: %s (%s)", r.ID, r.Claim, r.Detail)
		}
	}
}

func TestInterClaimsPassOnReferenceSeed(t *testing.T) {
	a := interAnalysis(t)
	results := a.VerifyInterClaims()
	if len(results) < 6 {
		t.Fatalf("only %d inter claims", len(results))
	}
	for _, r := range results {
		if !r.Pass {
			t.Errorf("claim %s failed on reference seed: %s (%s)", r.ID, r.Claim, r.Detail)
		}
	}
}

func TestIntraClaimsFailOnGarbageData(t *testing.T) {
	// A dataset that plainly does not exhibit the paper's shapes must
	// fail claims — the verifier cannot be a rubber stamp.
	store := sev.NewStore()
	for i := 0; i < 50; i++ {
		if _, err := store.Add(sev.Report{
			Severity:   sev.Sev1,
			Device:     "csa001.dc1.ra",
			RootCauses: []sev.RootCause{sev.Capacity},
			Start:      float64(i),
			Duration:   1,
			Resolution: 1,
			Year:       2011,
		}); err != nil {
			t.Fatal(err)
		}
	}
	a := NewIntraAnalysis(store, fleet.New(1))
	results := a.VerifyIntraClaims()
	failures := 0
	for _, r := range results {
		if !r.Pass {
			failures++
		}
	}
	if failures < 5 {
		t.Errorf("garbage dataset passed almost everything (%d failures of %d)", failures, len(results))
	}
}
