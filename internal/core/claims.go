package core

import (
	"fmt"
	"math"

	"dcnr/internal/backbone"
	"dcnr/internal/fleet"
	"dcnr/internal/sev"
	"dcnr/internal/stats"
	"dcnr/internal/topology"
)

// mostReliableContinent is Table 4's outlier: Africa's few edges have the
// longest uptimes.
const mostReliableContinent = backbone.Africa

// ClaimResult grades one of the paper's headline claims against a
// dataset. The claims are the shape checks DESIGN.md commits to; `repro
// -verify` prints them as a scoreboard and the test suite asserts them on
// the reference seeds.
type ClaimResult struct {
	// ID is a short stable identifier ("table2-maintenance-largest").
	ID string
	// Claim restates the paper's assertion.
	Claim string
	// Detail shows the measured values behind the verdict.
	Detail string
	// Pass reports whether the dataset exhibits the claim.
	Pass bool
}

// VerifyIntraClaims grades the §5 claims against the dataset.
func (a *IntraAnalysis) VerifyIntraClaims() []ClaimResult {
	var out []ClaimResult
	add := func(id, claim, detail string, pass bool) {
		out = append(out, ClaimResult{ID: id, Claim: claim, Detail: detail, Pass: pass})
	}

	dist := a.RootCauseDistribution()
	largest := true
	for _, c := range sev.RootCauses {
		if c == sev.Maintenance || c == sev.Undetermined {
			continue
		}
		if dist[c] > dist[sev.Maintenance] {
			largest = false
		}
	}
	add("table2-maintenance-largest",
		"maintenance is the largest determined root-cause category (§5.1)",
		fmt.Sprintf("maintenance %.1f%%", 100*dist[sev.Maintenance]), largest)

	human := dist[sev.Configuration] + dist[sev.Bug]
	ratio := 0.0
	if dist[sev.Hardware] > 0 {
		ratio = human / dist[sev.Hardware]
	}
	add("table2-human-2x-hardware",
		"human-induced issues occur at ~2x the hardware rate (§5.1)",
		fmt.Sprintf("ratio %.2f", ratio), ratio > 1.3 && ratio < 3.0)

	csa13 := a.IncidentRate(2013)[topology.CSA]
	csa14 := a.IncidentRate(2014)[topology.CSA]
	add("fig3-csa-above-one",
		"CSA incident rate exceeded 1.0 in 2013-2014 (§5.2)",
		fmt.Sprintf("2013 %.2f, 2014 %.2f", csa13, csa14), csa13 > 1 && csa14 > 1)

	r2017 := a.IncidentRate(2017)
	rswLowest := true
	for _, dt := range topology.IntraDCTypes {
		if dt != topology.RSW && r2017[dt] <= r2017[topology.RSW] {
			rswLowest = false
		}
	}
	add("fig3-rsw-lowest-rate",
		"RSWs have the lowest per-device incident rate (§5.2)",
		fmt.Sprintf("RSW %.2e", r2017[topology.RSW]), rswLowest)

	fr := a.IncidentFractions()[2017]
	add("fig8-core-34pct",
		"Core devices contribute ~34% of 2017 incidents (§5.4)",
		fmt.Sprintf("measured %.1f%%", 100*fr[topology.Core]),
		math.Abs(fr[topology.Core]-0.34) <= 0.08)
	add("fig8-rsw-28pct",
		"rack switches contribute ~28% of 2017 incidents (§5.4)",
		fmt.Sprintf("measured %.1f%%", 100*fr[topology.RSW]),
		math.Abs(fr[topology.RSW]-0.28) <= 0.08)

	di := a.DesignIncidents(2017)
	fc := 0.0
	if di[2017][topology.DesignCluster] > 0 {
		fc = di[2017][topology.DesignFabric] / di[2017][topology.DesignCluster]
	}
	add("fig9-fabric-half-cluster",
		"2017 fabric incidents are ~50% of cluster incidents (§5.5)",
		fmt.Sprintf("ratio %.2f", fc), fc > 0.3 && fc < 0.75)

	dr := a.DesignRate()
	fabricBelow := true
	for year := fleet.FabricDeployYear; year <= fleet.LastYear; year++ {
		if dr[year][topology.DesignFabric] >= dr[year][topology.DesignCluster] {
			fabricBelow = false
		}
	}
	add("fig10-fabric-rate-below",
		"fabric incidents-per-device stay below cluster after deployment (§5.5)",
		fmt.Sprintf("2017: fabric %.4f vs cluster %.4f",
			dr[2017][topology.DesignFabric], dr[2017][topology.DesignCluster]), fabricBelow)

	fab := a.DesignMTBI(2017, topology.DesignFabric)
	clu := a.DesignMTBI(2017, topology.DesignCluster)
	mtbiRatio := 0.0
	if clu > 0 {
		mtbiRatio = fab / clu
	}
	add("s56-fabric-mtbi-3x",
		"fabric switches fail ~3.2x less frequently than cluster switches (§5.6)",
		fmt.Sprintf("ratio %.2f", mtbiRatio), mtbiRatio > 2 && mtbiRatio < 5)

	mtbi := a.MTBI(2017)
	span := 0.0
	if mtbi[topology.Core] > 0 {
		span = mtbi[topology.RSW] / mtbi[topology.Core]
	}
	add("fig12-mtbi-orders",
		"MTBI varies by orders of magnitude across switch types (§5.6)",
		fmt.Sprintf("RSW/Core span %.0fx", span), span > 100)

	pts := a.IRTvsScale()
	corr, err := stats.Correlation(pts)
	add("fig14-irt-grows-with-scale",
		"larger networks increase incident resolution time (§5.6)",
		fmt.Sprintf("correlation %.2f", corr), err == nil && corr > 0.6)

	growth := 0.0
	byYear := a.Store.Query().CountByYear()
	if byYear[fleet.FirstYear] > 0 {
		growth = float64(byYear[fleet.LastYear]) / float64(byYear[fleet.FirstYear])
	}
	add("s54-growth-9x",
		"total network SEVs grew ~9.4x from 2011 to 2017 (§5.4)",
		fmt.Sprintf("growth %.1fx", growth), growth > 6 && growth < 14)

	return out
}

// VerifyInterClaims grades the §6 claims against the dataset.
func (a *InterAnalysis) VerifyInterClaims() []ClaimResult {
	var out []ClaimResult
	add := func(id, claim, detail string, pass bool) {
		out = append(out, ClaimResult{ID: id, Claim: claim, Detail: detail, Pass: pass})
	}

	mtbfFit, mtbfErr := FitCurve(a.EdgeMTBF())
	add("fig15-edge-mtbf-exponential",
		"edge MTBF follows an exponential percentile curve, B ~ 2.34 (§6.1)",
		fmt.Sprintf("%.1f*e^(%.2fp), R2=%.2f", mtbfFit.A, mtbfFit.B, mtbfFit.R2),
		mtbfErr == nil && mtbfFit.B > 1.6 && mtbfFit.B < 3.2 && mtbfFit.R2 > 0.6)

	mttrFit, mttrErr := FitCurve(a.EdgeMTTR())
	add("fig16-edge-mttr-exponential",
		"edge MTTR follows an exponential percentile curve, B ~ 4.26 (§6.1)",
		fmt.Sprintf("%.2f*e^(%.2fp), R2=%.2f", mttrFit.A, mttrFit.B, mttrFit.R2),
		mttrErr == nil && mttrFit.B > 2.5 && mttrFit.B < 6.0 && mttrFit.R2 > 0.6)

	vals := metricValues(a.EdgeMTTR())
	p50, err := stats.Percentile(vals, 50)
	add("fig16-edges-recover-hours",
		"50% of edges recover within ~10 hours (§6.1)",
		fmt.Sprintf("p50 %.1f h", p50), err == nil && p50 > 3 && p50 < 30)

	vmtbf := a.VendorMTBF()
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vmtbf {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	spread := 0.0
	if lo > 0 {
		spread = hi / lo
	}
	add("fig17-vendor-spread",
		"vendor MTBF spans orders of magnitude (§6.2)",
		fmt.Sprintf("spread %.0fx", spread), spread > 10)

	vFit, vErr := FitCurve(a.VendorMTTR())
	add("fig18-vendor-mttr-model",
		"vendor MTTR fits ~1.13*e^(4.77p) (§6.2)",
		fmt.Sprintf("%.2f*e^(%.2fp), R2=%.2f", vFit.A, vFit.B, vFit.R2),
		vErr == nil && vFit.B > 2.5 && vFit.B < 7 && vFit.R2 > 0.6)

	rows := a.ByContinent()
	africaLongest := true
	for c, r := range rows {
		if c != mostReliableContinent && r.MTBF > rows[mostReliableContinent].MTBF {
			africaLongest = false
		}
	}
	add("table4-africa-longest-mtbf",
		"edges in Africa have the longest MTBF (Table 4)",
		fmt.Sprintf("Africa %.0f h", rows[mostReliableContinent].MTBF), africaLongest)

	withinDay := true
	worst := 0.0
	for _, r := range rows {
		if r.MTTR > worst {
			worst = r.MTTR
		}
		if r.MTTR > 36 {
			withinDay = false
		}
	}
	add("table4-recover-within-day",
		"edges recover within ~1 day on average on all continents (§6.3)",
		fmt.Sprintf("slowest continent %.1f h", worst), withinDay)

	return out
}

func metricValues(m map[string]float64) []float64 {
	vals := make([]float64, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	return vals
}
