package core

import (
	"math"
	"sync"
	"testing"

	"dcnr/internal/backbone"
	"dcnr/internal/stats"
	"dcnr/internal/tickets"
)

var (
	interOnce sync.Once
	interA    *InterAnalysis
	interErr  error
	interTopo *backbone.Topology
)

func interAnalysis(t *testing.T) *InterAnalysis {
	t.Helper()
	interOnce.Do(func() {
		cfg := backbone.DefaultConfig()
		cfg.Seed = 20161001 // window start: October 2016
		topo, err := backbone.Build(cfg)
		if err != nil {
			interErr = err
			return
		}
		interTopo = topo
		downs, err := topo.Simulate(cfg)
		if err != nil {
			interErr = err
			return
		}
		// Round-trip the raw intervals through the full ticket pipeline,
		// so the analysis consumes what the collector reconstructed.
		coll := tickets.NewCollector()
		coll.WindowHours = cfg.WindowHours()
		for _, n := range tickets.Generate(topo, downs) {
			if err := coll.Ingest(n); err != nil {
				interErr = err
				return
			}
		}
		interA, interErr = NewInterAnalysis(topo, coll.Downtimes(), cfg.WindowHours())
	})
	if interErr != nil {
		t.Fatal(interErr)
	}
	return interA
}

func TestNewInterAnalysisValidation(t *testing.T) {
	topo, err := backbone.Build(backbone.Config{Edges: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewInterAnalysis(topo, nil, 0); err == nil {
		t.Error("zero window accepted")
	}
	bad := []tickets.Downtime{{Link: "link0001", Start: -5, End: 1}}
	if _, err := NewInterAnalysis(topo, bad, 100); err == nil {
		t.Error("negative-start interval accepted")
	}
	late := []tickets.Downtime{{Link: "link0001", Start: 50, End: 200}}
	if _, err := NewInterAnalysis(topo, late, 100); err == nil {
		t.Error("interval past window accepted")
	}
}

func TestMergeIntervals(t *testing.T) {
	got := mergeIntervals([]interval{{5, 8}, {1, 3}, {2, 4}, {8, 9}, {20, 21}})
	want := []interval{{1, 4}, {5, 9}, {20, 21}}
	if len(got) != len(want) {
		t.Fatalf("merged = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged = %v, want %v", got, want)
		}
	}
	if mergeIntervals(nil) != nil {
		t.Error("empty merge not nil")
	}
}

func TestEdgeOutagesRequireAllLinksDown(t *testing.T) {
	topo, err := backbone.Build(backbone.Config{Edges: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	edge := topo.Edges[0]
	linkName := func(i int) string { return topo.Links[edge.Links[i]].Name }
	// One link down: no outage. All links down overlapping [10, 12]: outage.
	var downs []tickets.Downtime
	downs = append(downs, tickets.Downtime{Link: linkName(0), Edge: edge.Name, Vendor: "v", Start: 1, End: 3})
	for i := range edge.Links {
		downs = append(downs, tickets.Downtime{
			Link: linkName(i), Edge: edge.Name, Vendor: "v",
			Start: 10 - float64(i), End: 12 + float64(i),
		})
	}
	a, err := NewInterAnalysis(topo, downs, 100)
	if err != nil {
		t.Fatal(err)
	}
	outages := a.edgeOutages(edge.Name)
	if len(outages) != 1 {
		t.Fatalf("outages = %v, want exactly one", outages)
	}
	if outages[0].start != 10 || outages[0].end != 12 {
		t.Errorf("outage = %v, want [10, 12]", outages[0])
	}
	// A single outage cannot yield a time-between-failures estimate.
	if _, ok := a.EdgeMTBF()[edge.Name]; ok {
		t.Error("edge MTBF reported from a single outage")
	}
	mttr := a.EdgeMTTR()
	if mttr[edge.Name] != 2 {
		t.Errorf("edge MTTR = %v, want 2", mttr[edge.Name])
	}

	// Add a second full-edge outage at [50, 53]: MTBF = gap of starts.
	for i := range edge.Links {
		downs = append(downs, tickets.Downtime{
			Link: linkName(i), Edge: edge.Name, Vendor: "v", Start: 50, End: 53,
		})
	}
	a2, err := NewInterAnalysis(topo, downs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := a2.EdgeMTBF()[edge.Name]; got != 40 {
		t.Errorf("edge MTBF = %v, want 40 (gap between outage starts)", got)
	}
}

func TestEdgeMTBFMediansFig15(t *testing.T) {
	a := interAnalysis(t)
	mtbf := a.EdgeMTBF()
	if len(mtbf) < 100 {
		t.Fatalf("only %d edges measured", len(mtbf))
	}
	vals := make([]float64, 0, len(mtbf))
	for _, v := range mtbf {
		vals = append(vals, v)
	}
	p50, err := stats.Percentile(vals, 50)
	if err != nil {
		t.Fatal(err)
	}
	// §6.1: 50% of edges fail less than once every ~1710 h.
	if p50 < 1000 || p50 > 2800 {
		t.Errorf("edge MTBF p50 = %.0f h, want ~1710", p50)
	}
	p90, _ := stats.Percentile(vals, 90)
	if p90 < 2300 || p90 > 7000 {
		t.Errorf("edge MTBF p90 = %.0f h, want ~3521", p90)
	}
}

func TestEdgeMTBFModelFitFig15(t *testing.T) {
	a := interAnalysis(t)
	fit, err := FitCurve(a.EdgeMTBF())
	if err != nil {
		t.Fatal(err)
	}
	// The paper: MTBF(p) = 462.88·e^(2.3408p), R² = 0.94. We assert an
	// exponential percentile curve of the same character.
	if fit.R2 < 0.80 {
		t.Errorf("edge MTBF fit R² = %.3f, want ≥ 0.80 (paper: 0.94)", fit.R2)
	}
	if fit.B < 1.0 || fit.B > 4.0 {
		t.Errorf("edge MTBF fit B = %.3f, want ~2.34", fit.B)
	}
	if fit.A < 150 || fit.A > 1200 {
		t.Errorf("edge MTBF fit A = %.1f, want ~463", fit.A)
	}
}

func TestEdgeMTTRFig16(t *testing.T) {
	a := interAnalysis(t)
	mttr := a.EdgeMTTR()
	vals := make([]float64, 0, len(mttr))
	for _, v := range mttr {
		vals = append(vals, v)
	}
	p50, err := stats.Percentile(vals, 50)
	if err != nil {
		t.Fatal(err)
	}
	// §6.1: 50% of edges recover within ~10 h; 90% within ~71 h.
	if p50 < 4 || p50 > 26 {
		t.Errorf("edge MTTR p50 = %.1f h, want ~10", p50)
	}
	fit, err := FitCurve(mttr)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.70 {
		t.Errorf("edge MTTR fit R² = %.3f, want ≥ 0.70 (paper: 0.87)", fit.R2)
	}
	if fit.B < 1.5 || fit.B > 7 {
		t.Errorf("edge MTTR fit B = %.2f, want ~4.26", fit.B)
	}
}

func TestVendorMTBFFig17(t *testing.T) {
	a := interAnalysis(t)
	mtbf := a.VendorMTBF()
	if len(mtbf) < 15 {
		t.Fatalf("only %d vendors measured", len(mtbf))
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range mtbf {
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	// §6.2: vendor MTBF varies by orders of magnitude.
	if max/min < 10 {
		t.Errorf("vendor MTBF spread = %.1f×, want ≥ 10×", max/min)
	}
	vals := make([]float64, 0, len(mtbf))
	for _, v := range mtbf {
		vals = append(vals, v)
	}
	p50, _ := stats.Percentile(vals, 50)
	// §6.2: 50% of vendors have a link failure every ~2326 h or sooner.
	if p50 < 800 || p50 > 5000 {
		t.Errorf("vendor MTBF p50 = %.0f, want ~2326", p50)
	}
}

func TestVendorMTTRFig18(t *testing.T) {
	a := interAnalysis(t)
	mttr := a.VendorMTTR()
	vals := make([]float64, 0, len(mttr))
	for _, v := range mttr {
		vals = append(vals, v)
	}
	p50, err := stats.Percentile(vals, 50)
	if err != nil {
		t.Fatal(err)
	}
	// §6.2: 50% of vendors repair within ~13 h.
	if p50 < 4 || p50 > 35 {
		t.Errorf("vendor MTTR p50 = %.1f, want ~13", p50)
	}
	fit, err := FitCurve(mttr)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: MTTR(p) = 1.1345·e^(4.7709p) with R² = 0.98.
	if fit.R2 < 0.75 {
		t.Errorf("vendor MTTR fit R² = %.3f, want high (paper: 0.98)", fit.R2)
	}
	if fit.B < 2.0 || fit.B > 7.5 {
		t.Errorf("vendor MTTR fit B = %.2f, want ~4.77", fit.B)
	}
}

func TestByContinentTable4(t *testing.T) {
	a := interAnalysis(t)
	rows := a.ByContinent()
	if len(rows) != len(backbone.Continents) {
		t.Fatalf("continents = %d", len(rows))
	}
	shareSum := 0.0
	for _, r := range rows {
		shareSum += r.Share
	}
	if math.Abs(shareSum-1) > 1e-9 {
		t.Errorf("continent shares sum to %v", shareSum)
	}
	// North America holds the plurality of edges.
	for c, r := range rows {
		if c != backbone.NorthAmerica && r.Share > rows[backbone.NorthAmerica].Share {
			t.Errorf("%v share %.2f exceeds North America %.2f", c, r.Share, rows[backbone.NorthAmerica].Share)
		}
	}
	// Africa: longest MTBF (Table 4's outlier).
	for c, r := range rows {
		if c != backbone.Africa && r.MTBF > rows[backbone.Africa].MTBF {
			t.Errorf("%v MTBF %.0f exceeds Africa %.0f", c, r.MTBF, rows[backbone.Africa].MTBF)
		}
	}
	// Australia: fastest recovery.
	for c, r := range rows {
		if c != backbone.Australia && r.MTTR < rows[backbone.Australia].MTTR {
			t.Errorf("%v MTTR %.1f below Australia %.1f", c, r.MTTR, rows[backbone.Australia].MTTR)
		}
	}
	// All continents recover within ~a day on average.
	for c, r := range rows {
		if r.MTTR > 36 {
			t.Errorf("%v MTTR = %.1f h, want ≲ 1 day", c, r.MTTR)
		}
	}
}

func TestConditionalRiskAndPlanRisk(t *testing.T) {
	a := interAnalysis(t)
	risk := a.ConditionalRisk()
	for edge, r := range risk {
		if r < 0 || r > 1 {
			t.Errorf("%s risk = %v", edge, r)
		}
	}
	p9999, err := a.PlanRisk(99.99)
	if err != nil {
		t.Fatal(err)
	}
	p50, _ := a.PlanRisk(50)
	if p9999 < p50 {
		t.Errorf("99.99th percentile risk %.5f below median %.5f", p9999, p50)
	}
	if p9999 <= 0 || p9999 > 0.25 {
		t.Errorf("plan risk = %.5f, want small but positive", p9999)
	}
}

func TestEventScale(t *testing.T) {
	// §6: tens of thousands of events over 18 months at study scale — our
	// default config produces thousands of intervals (each two events).
	a := interAnalysis(t)
	if a.LinkFailureCount() < 2000 {
		t.Errorf("link failure intervals = %d, want thousands", a.LinkFailureCount())
	}
}

func TestCurveHelpers(t *testing.T) {
	metric := map[string]float64{"a": 1, "b": 2, "c": 4}
	pts := Curve(metric)
	if len(pts) != 3 || pts[0].Y != 1 || pts[2].Y != 4 {
		t.Errorf("Curve = %v", pts)
	}
	if _, err := FitCurve(map[string]float64{}); err == nil {
		t.Error("FitCurve of empty metric succeeded")
	}
}

func TestVendorProfiles(t *testing.T) {
	a := interAnalysis(t)
	profiles := a.VendorProfiles()
	if len(profiles) != 24 {
		t.Fatalf("profiles = %d, want every vendor", len(profiles))
	}
	// Sorted most reliable first (no-failure vendors, then by MTBF).
	for i := 1; i < len(profiles); i++ {
		prev, cur := profiles[i-1], profiles[i]
		if prev.Failures > 0 && cur.Failures == 0 {
			t.Fatalf("ordering: failure-free vendor %s after %s", cur.Vendor, prev.Vendor)
		}
		if prev.Failures > 0 && cur.Failures > 0 && prev.MTBF < cur.MTBF {
			t.Fatalf("ordering: %s (%.0f) before %s (%.0f)", prev.Vendor, prev.MTBF, cur.Vendor, cur.MTBF)
		}
	}
	totalLinks := 0
	for _, p := range profiles {
		totalLinks += p.Links
		if p.Links == 0 {
			t.Errorf("vendor %s operates no links", p.Vendor)
		}
		if p.Failures > 0 && (p.MTBF <= 0 || p.MTTR <= 0) {
			t.Errorf("vendor %s has failures but no measured times: %+v", p.Vendor, p)
		}
	}
	if totalLinks != len(interTopo.Links) {
		t.Errorf("profiles cover %d links, topology has %d", totalLinks, len(interTopo.Links))
	}
}
