// Package core is the reliability-analysis engine: the paper's primary
// contribution, re-implemented over simulated operational data.
//
// The intra-data-center half consumes a SEV store and the fleet model and
// produces every statistic of §5: root-cause distributions, per-device-type
// incident rates, severity mixes, incident distributions, design
// comparisons, mean time between incidents, and 75th-percentile incident
// resolution times. The inter-data-center half (inter.go) consumes the
// reconstructed vendor-ticket intervals and produces §6's MTBF/MTTR
// percentile curves, exponential models, and continent breakdowns.
//
// Nothing in this package reads the generator's calibration: every number
// is recomputed from the raw records, which is what lets the test suite
// check that the paper's shapes *emerge* from the simulated history.
package core

import (
	"sort"

	"dcnr/internal/fleet"
	"dcnr/internal/sev"
	"dcnr/internal/stats"
	"dcnr/internal/topology"
)

// IntraAnalysis answers the §5 questions over one SEV dataset.
type IntraAnalysis struct {
	Store *sev.Store
	Fleet *fleet.Model
}

// NewIntraAnalysis pairs a SEV dataset with the fleet model it was
// collected from.
func NewIntraAnalysis(store *sev.Store, fl *fleet.Model) *IntraAnalysis {
	return &IntraAnalysis{Store: store, Fleet: fl}
}

// RootCauseDistribution returns Table 2: the fraction of SEVs that carry
// each root-cause category. A SEV with several causes counts toward each,
// so the fractions may sum to slightly more than 1.
func (a *IntraAnalysis) RootCauseDistribution() map[sev.RootCause]float64 {
	counts := a.Store.Query().CountByRootCause()
	total := a.Store.Len()
	out := make(map[sev.RootCause]float64, len(counts))
	if total == 0 {
		return out
	}
	for c, n := range counts {
		out[c] = float64(n) / float64(total)
	}
	return out
}

// RootCauseByDevice returns Figure 2: for each root-cause category, the
// fraction of that category's incidents attributed to each device type.
func (a *IntraAnalysis) RootCauseByDevice() map[sev.RootCause]map[topology.DeviceType]float64 {
	out := make(map[sev.RootCause]map[topology.DeviceType]float64)
	for _, c := range sev.RootCauses {
		byType := a.Store.Query().RootCause(c).CountByDeviceType()
		total := 0
		for _, n := range byType {
			total += n
		}
		if total == 0 {
			continue
		}
		row := make(map[topology.DeviceType]float64, len(byType))
		for t, n := range byType {
			row[t] = float64(n) / float64(total)
		}
		out[c] = row
	}
	return out
}

// IncidentRate returns Figure 3 for one year: incidents per active device
// of each type (r = i/n, §5.2). Types with no population that year are
// omitted.
func (a *IntraAnalysis) IncidentRate(year int) map[topology.DeviceType]float64 {
	counts := a.Store.Query().Year(year).CountByDeviceType()
	out := make(map[topology.DeviceType]float64)
	for _, t := range topology.IntraDCTypes {
		pop := a.Fleet.Population(year, t)
		if pop == 0 {
			continue
		}
		out[t] = float64(counts[t]) / float64(pop)
	}
	return out
}

// SeverityShare describes one severity level's slice of Figure 4: its share
// of all SEVs (the figure's N annotations) and the per-device-type
// composition of that level.
type SeverityShare struct {
	// Share is the fraction of the year's SEVs at this level.
	Share float64
	// ByDevice is the fraction of this level's SEVs per device type.
	ByDevice map[topology.DeviceType]float64
}

// SeverityBreakdown returns Figure 4 for one year.
func (a *IntraAnalysis) SeverityBreakdown(year int) map[sev.Severity]SeverityShare {
	out := make(map[sev.Severity]SeverityShare, len(sev.Severities))
	bySevType := a.Store.Query().Year(year).CountBySeverityDeviceType()
	total := 0
	for _, byType := range bySevType {
		for _, c := range byType {
			total += c
		}
	}
	if total == 0 {
		return out
	}
	for _, s := range sev.Severities {
		n := 0
		for _, c := range bySevType[s] {
			n += c
		}
		share := SeverityShare{
			Share:    float64(n) / float64(total),
			ByDevice: make(map[topology.DeviceType]float64),
		}
		for t, c := range bySevType[s] {
			share.ByDevice[t] = float64(c) / float64(n)
		}
		out[s] = share
	}
	return out
}

// SevRatePerDevice returns Figure 5: for each year, SEVs of each level per
// deployed network device.
func (a *IntraAnalysis) SevRatePerDevice() map[int]map[sev.Severity]float64 {
	out := make(map[int]map[sev.Severity]float64)
	byYearSev := a.Store.Query().CountByYearSeverity()
	for _, year := range a.Fleet.Years() {
		pop := a.Fleet.TotalPopulation(year)
		if pop == 0 {
			continue
		}
		row := make(map[sev.Severity]float64, len(sev.Severities))
		for s, n := range byYearSev[year] {
			row[s] = float64(n) / float64(pop)
		}
		out[year] = row
	}
	return out
}

// SwitchesVsEmployees returns Figure 6: normalized fleet size against the
// employee count, one point per year.
func (a *IntraAnalysis) SwitchesVsEmployees() []stats.Point {
	norm := a.Fleet.NormalizedPopulation()
	var pts []stats.Point
	for _, year := range a.Fleet.Years() {
		pts = append(pts, stats.Point{
			X: float64(a.Fleet.Employees(year)),
			Y: norm[year],
		})
	}
	return pts
}

// IncidentFractions returns Figure 7: for each year, each device type's
// fraction of that year's incidents.
func (a *IntraAnalysis) IncidentFractions() map[int]map[topology.DeviceType]float64 {
	out := make(map[int]map[topology.DeviceType]float64)
	for year, byType := range a.Store.Query().CountByYearDeviceType() {
		total := 0
		for _, n := range byType {
			total += n
		}
		if total == 0 {
			continue
		}
		row := make(map[topology.DeviceType]float64, len(byType))
		for t, n := range byType {
			row[t] = float64(n) / float64(total)
		}
		out[year] = row
	}
	return out
}

// NormalizedIncidents returns Figure 8: per year and device type, incident
// counts normalized to a fixed baseline — the total number of SEVs in
// baselineYear (the paper uses 2017).
func (a *IntraAnalysis) NormalizedIncidents(baselineYear int) map[int]map[topology.DeviceType]float64 {
	baseline := a.Store.Query().Year(baselineYear).Count()
	out := make(map[int]map[topology.DeviceType]float64)
	if baseline == 0 {
		return out
	}
	for year, byType := range a.Store.Query().CountByYearDeviceType() {
		row := make(map[topology.DeviceType]float64, len(byType))
		for t, n := range byType {
			row[t] = float64(n) / float64(baseline)
		}
		out[year] = row
	}
	return out
}

// DesignIncidents returns Figure 9: per year, each network design's
// incident count normalized to the baseline year's total SEVs. Only the
// cluster and fabric designs are reported (RSW and Core are shared).
func (a *IntraAnalysis) DesignIncidents(baselineYear int) map[int]map[topology.Design]float64 {
	baseline := a.Store.Query().Year(baselineYear).Count()
	out := make(map[int]map[topology.Design]float64)
	if baseline == 0 {
		return out
	}
	for year, byDesign := range a.Store.Query().CountByYearDesign() {
		row := make(map[topology.Design]float64)
		for _, d := range []topology.Design{topology.DesignCluster, topology.DesignFabric} {
			row[d] = float64(byDesign[d]) / float64(baseline)
		}
		out[year] = row
	}
	return out
}

// DesignRate returns Figure 10: per year, incidents per device for each
// network design.
func (a *IntraAnalysis) DesignRate() map[int]map[topology.Design]float64 {
	out := make(map[int]map[topology.Design]float64)
	byYearDesign := a.Store.Query().CountByYearDesign()
	for _, year := range a.Fleet.Years() {
		row := make(map[topology.Design]float64)
		for _, d := range []topology.Design{topology.DesignCluster, topology.DesignFabric} {
			pop := a.Fleet.DesignPopulation(year, d)
			if pop == 0 {
				continue
			}
			row[d] = float64(byYearDesign[year][d]) / float64(pop)
		}
		out[year] = row
	}
	return out
}

// PopulationBreakdown returns Figure 11: each device type's fraction of
// the fleet per year.
func (a *IntraAnalysis) PopulationBreakdown() map[int]map[topology.DeviceType]float64 {
	out := make(map[int]map[topology.DeviceType]float64)
	for _, year := range a.Fleet.Years() {
		total := a.Fleet.TotalPopulation(year)
		if total == 0 {
			continue
		}
		row := make(map[topology.DeviceType]float64)
		for _, t := range topology.IntraDCTypes {
			if pop := a.Fleet.Population(year, t); pop > 0 {
				row[t] = float64(pop) / float64(total)
			}
		}
		out[year] = row
	}
	return out
}

// MTBI returns Figure 12 for one year: mean time between incidents in
// device-hours for each type (device-hours accumulated by the population
// divided by its incident count, §5.6). Types with no incidents that year
// are omitted — their MTBI is unbounded by observation.
func (a *IntraAnalysis) MTBI(year int) map[topology.DeviceType]float64 {
	counts := a.Store.Query().Year(year).CountByDeviceType()
	out := make(map[topology.DeviceType]float64)
	for _, t := range topology.IntraDCTypes {
		n := counts[t]
		if n == 0 {
			continue
		}
		out[t] = a.Fleet.DeviceHours(year, t) / float64(n)
	}
	return out
}

// DesignMTBI returns §5.6's design comparison for one year: the average
// MTBI across a design's device types, in device-hours.
func (a *IntraAnalysis) DesignMTBI(year int, d topology.Design) float64 {
	counts := a.Store.Query().Year(year).CountByDeviceType()
	hours, incidents := 0.0, 0
	for _, t := range topology.IntraDCTypes {
		if t.Design() != d {
			continue
		}
		hours += a.Fleet.DeviceHours(year, t)
		incidents += counts[t]
	}
	if incidents == 0 {
		return 0
	}
	return hours / float64(incidents)
}

// P75IRT returns Figure 13 for one year: the 75th-percentile incident
// resolution time in hours per device type. Types with no incidents are
// omitted.
func (a *IntraAnalysis) P75IRT(year int) map[topology.DeviceType]float64 {
	out := make(map[topology.DeviceType]float64)
	byType := a.Store.Query().Year(year).ResolutionsByDeviceType()
	for _, t := range topology.IntraDCTypes {
		res := byType[t]
		if len(res) == 0 {
			continue
		}
		p, err := stats.Percentile(res, 75)
		if err != nil {
			continue
		}
		out[t] = p
	}
	return out
}

// P75IRTOverall returns the pooled (all device types) p75 resolution time
// per year.
func (a *IntraAnalysis) P75IRTOverall() map[int]float64 {
	out := make(map[int]float64)
	for year, res := range a.Store.Query().ResolutionsByYear() {
		if p, err := stats.Percentile(res, 75); err == nil {
			out[year] = p
		}
	}
	return out
}

// IRTvsScale returns Figure 14: one point per year pairing the pooled p75
// resolution time (X, hours) with the normalized fleet size (Y).
func (a *IntraAnalysis) IRTvsScale() []stats.Point {
	p75 := a.P75IRTOverall()
	norm := a.Fleet.NormalizedPopulation()
	years := make([]int, 0, len(p75))
	for y := range p75 {
		years = append(years, y)
	}
	sort.Ints(years)
	var pts []stats.Point
	for _, y := range years {
		pts = append(pts, stats.Point{X: p75[y], Y: norm[y]})
	}
	return pts
}

// Years returns the years present in the dataset, ascending.
func (a *IntraAnalysis) Years() []int {
	byYear := a.Store.Query().CountByYear()
	years := make([]int, 0, len(byYear))
	for y := range byYear {
		years = append(years, y)
	}
	sort.Ints(years)
	return years
}

// DurationStats answers §2's "How long do network failures affect software
// when they occur?" for one year: summary statistics plus the median and
// tail of incident durations (root-cause manifestation until fix), in
// hours.
type DurationStats struct {
	Summary  stats.Summary
	P50, P95 float64
}

// IncidentDurations returns the duration statistics of the year's
// incidents, or false when the year has none.
func (a *IntraAnalysis) IncidentDurations(year int) (DurationStats, bool) {
	var durations []float64
	for _, r := range a.Store.Query().Year(year).Reports() {
		durations = append(durations, r.Duration)
	}
	if len(durations) == 0 {
		return DurationStats{}, false
	}
	ds := DurationStats{Summary: stats.Summarize(durations)}
	ps, err := stats.Percentiles(durations, 50, 95)
	if err != nil {
		return DurationStats{}, false
	}
	ds.P50, ds.P95 = ps[0], ps[1]
	return ds, true
}
