package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunLimitRunsEveryTask(t *testing.T) {
	const n = 100
	done := make([]int32, n)
	if err := RunLimit(4, n, func(i int) error {
		atomic.AddInt32(&done[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range done {
		if c != 1 {
			t.Errorf("task %d ran %d times", i, c)
		}
	}
}

func TestRunLimitBoundsConcurrency(t *testing.T) {
	const workers, n = 3, 64
	var cur, peak int32
	var mu sync.Mutex
	err := RunLimit(workers, n, func(int) error {
		c := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if c > peak {
			peak = c
		}
		mu.Unlock()
		defer atomic.AddInt32(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Errorf("observed %d concurrent tasks, limit %d", peak, workers)
	}
}

// The returned error is the failing task with the lowest index, and later
// tasks still run — deterministic outcome, full coverage.
func TestRunLimitFirstErrorByIndex(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	var ran int32
	err := RunLimit(8, 20, func(i int) error {
		atomic.AddInt32(&ran, 1)
		switch i {
		case 13:
			return errB
		case 5:
			return errA
		}
		return nil
	})
	if err != errA {
		t.Errorf("err = %v, want task 5's error", err)
	}
	if ran != 20 {
		t.Errorf("%d tasks ran, want all 20", ran)
	}
}

func TestRunLimitEdgeCases(t *testing.T) {
	if err := RunLimit(4, 0, func(int) error { t.Error("task ran"); return nil }); err != nil {
		t.Fatal(err)
	}
	// workers <= 0 defaults to NumCPU; workers > n is clamped.
	var ran int32
	if err := RunLimit(0, 3, func(int) error { atomic.AddInt32(&ran, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Errorf("ran = %d, want 3", ran)
	}
	ran = 0
	if err := RunLimit(100, 2, func(int) error { atomic.AddInt32(&ran, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Errorf("ran = %d, want 2", ran)
	}
}
