package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"dcnr/internal/obs"
)

func TestRunLimitRunsEveryTask(t *testing.T) {
	const n = 100
	done := make([]int32, n)
	if err := RunLimit(4, n, func(i int) error {
		atomic.AddInt32(&done[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range done {
		if c != 1 {
			t.Errorf("task %d ran %d times", i, c)
		}
	}
}

func TestRunLimitBoundsConcurrency(t *testing.T) {
	const workers, n = 3, 64
	var cur, peak int32
	var mu sync.Mutex
	err := RunLimit(workers, n, func(int) error {
		c := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if c > peak {
			peak = c
		}
		mu.Unlock()
		defer atomic.AddInt32(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Errorf("observed %d concurrent tasks, limit %d", peak, workers)
	}
}

// The returned error is the failing task with the lowest index, and later
// tasks still run — deterministic outcome, full coverage.
func TestRunLimitFirstErrorByIndex(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	var ran int32
	err := RunLimit(8, 20, func(i int) error {
		atomic.AddInt32(&ran, 1)
		switch i {
		case 13:
			return errB
		case 5:
			return errA
		}
		return nil
	})
	if err != errA {
		t.Errorf("err = %v, want task 5's error", err)
	}
	if ran != 20 {
		t.Errorf("%d tasks ran, want all 20", ran)
	}
}

func TestRunLimitTracedRecordsPerTaskSpans(t *testing.T) {
	tr := obs.NewTracer()
	const workers, n = 3, 17
	failing := errors.New("task 4 boom")
	err := RunLimitTraced(workers, n, tr, "analysis",
		func(i int) string { return fmt.Sprintf("exp%02d", i) },
		func(i int) error {
			if i == 4 {
				return failing
			}
			return nil
		})
	if err != failing {
		t.Fatalf("err = %v, want the failing task's error", err)
	}
	evs := tr.Events()
	if len(evs) != n {
		t.Fatalf("spans = %d, want %d", len(evs), n)
	}
	seen := make(map[string]bool)
	for _, e := range evs {
		if e.Phase != "X" || e.Cat != "analysis" {
			t.Errorf("bad span %+v", e)
		}
		if e.TID < 1 || e.TID > workers {
			t.Errorf("span lane %d outside worker pool [1, %d]", e.TID, workers)
		}
		seen[e.Name] = true
		if e.Name == "exp04" && e.Args["error"] == nil {
			t.Error("failing task's span missing error arg")
		}
	}
	for i := 0; i < n; i++ {
		if name := fmt.Sprintf("exp%02d", i); !seen[name] {
			t.Errorf("no span for %s", name)
		}
	}
	// nil name function falls back to index labels.
	tr2 := obs.NewTracer()
	if err := RunLimitTraced(2, 2, tr2, "c", nil, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range tr2.Events() {
		names[e.Name] = true
	}
	if !names["task 0"] || !names["task 1"] {
		t.Errorf("fallback labels wrong: %v", names)
	}
}

func TestRunLimitEdgeCases(t *testing.T) {
	if err := RunLimit(4, 0, func(int) error { t.Error("task ran"); return nil }); err != nil {
		t.Fatal(err)
	}
	// workers <= 0 defaults to NumCPU; workers > n is clamped.
	var ran int32
	if err := RunLimit(0, 3, func(int) error { atomic.AddInt32(&ran, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Errorf("ran = %d, want 3", ran)
	}
	ran = 0
	if err := RunLimit(100, 2, func(int) error { atomic.AddInt32(&ran, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Errorf("ran = %d, want 2", ran)
	}
}
