package core

import (
	"math"
	"sync"
	"testing"

	"dcnr/internal/faults"
	"dcnr/internal/fleet"
	"dcnr/internal/sev"
	"dcnr/internal/stats"
	"dcnr/internal/topology"
)

// The intra tests share one deterministic seven-year dataset.
var (
	intraOnce sync.Once
	intraA    *IntraAnalysis
	intraErr  error
)

func intraAnalysis(t *testing.T) *IntraAnalysis {
	t.Helper()
	intraOnce.Do(func() {
		fl := fleet.New(1)
		d, err := faults.NewDriver(fl, 20181031) // IMC'18 in Boston
		if err != nil {
			intraErr = err
			return
		}
		store, err := d.Run(fleet.FirstYear, fleet.LastYear)
		if err != nil {
			intraErr = err
			return
		}
		intraA = NewIntraAnalysis(store, fl)
	})
	if intraErr != nil {
		t.Fatal(intraErr)
	}
	return intraA
}

func TestRootCauseDistributionTable2(t *testing.T) {
	a := intraAnalysis(t)
	dist := a.RootCauseDistribution()
	// Maintenance is the largest determined category (§5.1).
	for _, c := range sev.RootCauses {
		if c == sev.Maintenance || c == sev.Undetermined {
			continue
		}
		if dist[c] > dist[sev.Maintenance] {
			t.Errorf("%v (%.3f) exceeds maintenance (%.3f)", c, dist[c], dist[sev.Maintenance])
		}
	}
	// Undetermined ≈ 29%.
	if math.Abs(dist[sev.Undetermined]-0.29) > 0.06 {
		t.Errorf("undetermined = %.3f, want ~0.29", dist[sev.Undetermined])
	}
	// Human-induced (config + bug) ≈ 2× hardware.
	ratio := (dist[sev.Configuration] + dist[sev.Bug]) / dist[sev.Hardware]
	if ratio < 1.4 || ratio > 2.8 {
		t.Errorf("human:hardware = %.2f, want ~1.9", ratio)
	}
}

func TestRootCauseByDeviceFig2(t *testing.T) {
	a := intraAnalysis(t)
	byCause := a.RootCauseByDevice()
	// Major categories are represented across many device types (§5.1:
	// "relatively even representation").
	for _, c := range []sev.RootCause{sev.Maintenance, sev.Hardware, sev.Configuration, sev.Undetermined} {
		row := byCause[c]
		if len(row) < 4 {
			t.Errorf("%v spans only %d device types", c, len(row))
		}
		sum := 0.0
		for _, f := range row {
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%v fractions sum to %v", c, sum)
		}
	}
}

func TestIncidentRateFig3(t *testing.T) {
	a := intraAnalysis(t)
	// 2013–2014: CSA incident rate exceeds 1.0 (§5.2's 1.7× and 1.5×).
	for _, year := range []int{2013, 2014} {
		if r := a.IncidentRate(year)[topology.CSA]; r < 1.0 {
			t.Errorf("%d CSA rate = %.2f, want > 1.0", year, r)
		}
	}
	r2017 := a.IncidentRate(2017)
	// Highest-bisection devices (Core, CSA) have the highest rates;
	// RSWs the lowest (§5.2).
	for _, dt := range []topology.DeviceType{topology.CSW, topology.ESW, topology.SSW, topology.FSW, topology.RSW} {
		if r2017[dt] >= r2017[topology.Core] {
			t.Errorf("2017: %v rate %.4f >= Core rate %.4f", dt, r2017[dt], r2017[topology.Core])
		}
	}
	for _, dt := range []topology.DeviceType{topology.Core, topology.CSA, topology.CSW, topology.ESW, topology.SSW, topology.FSW} {
		if r2017[topology.RSW] >= r2017[dt] {
			t.Errorf("2017: RSW rate %.5f >= %v rate %.5f", r2017[topology.RSW], dt, r2017[dt])
		}
	}
	// CSA rate decreased after 2014 (§5.2's fourth observation).
	if a.IncidentRate(2017)[topology.CSA] > a.IncidentRate(2014)[topology.CSA]/2 {
		t.Errorf("CSA rate did not decrease markedly: 2014=%.2f 2017=%.2f",
			a.IncidentRate(2014)[topology.CSA], a.IncidentRate(2017)[topology.CSA])
	}
}

func TestSeverityBreakdownFig4(t *testing.T) {
	a := intraAnalysis(t)
	br := a.SeverityBreakdown(2017)
	// N values: SEV3 ≈ 82%, SEV2 ≈ 13%, SEV1 ≈ 5%.
	if s := br[sev.Sev3].Share; math.Abs(s-0.82) > 0.07 {
		t.Errorf("SEV3 share = %.3f, want ~0.82", s)
	}
	if s := br[sev.Sev2].Share; math.Abs(s-0.13) > 0.06 {
		t.Errorf("SEV2 share = %.3f, want ~0.13", s)
	}
	if s := br[sev.Sev1].Share; math.Abs(s-0.05) > 0.05 {
		t.Errorf("SEV1 share = %.3f, want ~0.05", s)
	}
	// Core and RSW dominate the SEV3 slice (they are ~62% of incidents).
	sev3 := br[sev.Sev3].ByDevice
	if sev3[topology.Core]+sev3[topology.RSW] < 0.4 {
		t.Errorf("Core+RSW share of SEV3 = %.3f, want > 0.4", sev3[topology.Core]+sev3[topology.RSW])
	}
	shares := br[sev.Sev1].Share + br[sev.Sev2].Share + br[sev.Sev3].Share
	if math.Abs(shares-1) > 1e-9 {
		t.Errorf("severity shares sum to %v", shares)
	}
}

func TestSevRatePerDeviceFig5(t *testing.T) {
	a := intraAnalysis(t)
	rates := a.SevRatePerDevice()
	total := func(year int) float64 {
		sum := 0.0
		for _, v := range rates[year] {
			sum += v
		}
		return sum
	}
	// The overall SEV-per-device rate grows until the fabric inflection,
	// then stops growing: 2017 must sit below the 2013–2015 peak.
	peak := math.Max(total(2013), math.Max(total(2014), total(2015)))
	if total(2017) > peak {
		t.Errorf("2017 rate %.5f exceeds pre-fabric peak %.5f — no inflection", total(2017), peak)
	}
	if total(2011) >= peak {
		t.Errorf("rate did not grow from 2011 (%.5f) to the peak (%.5f)", total(2011), peak)
	}
	// SEV3 dominates every year it appears.
	for year, row := range rates {
		if row[sev.Sev3] < row[sev.Sev1] || row[sev.Sev3] < row[sev.Sev2] {
			t.Errorf("%d: SEV3 rate not dominant: %v", year, row)
		}
	}
}

func TestSwitchesVsEmployeesFig6(t *testing.T) {
	a := intraAnalysis(t)
	pts := a.SwitchesVsEmployees()
	if len(pts) != fleet.NumYears {
		t.Fatalf("points = %d", len(pts))
	}
	r, err := stats.Correlation(pts)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.95 {
		t.Errorf("correlation = %.3f, want strong positive (switches grow with employees)", r)
	}
}

func TestIncidentFractionsFig7(t *testing.T) {
	a := intraAnalysis(t)
	fr := a.IncidentFractions()
	// Fractions sum to 1 each year.
	for year, row := range fr {
		sum := 0.0
		for _, f := range row {
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%d fractions sum to %v", year, sum)
		}
	}
	// §5.4: 2017 — Core ≈ 34%, RSW ≈ 28% of incidents.
	if f := fr[2017][topology.Core]; math.Abs(f-0.34) > 0.07 {
		t.Errorf("2017 Core fraction = %.3f, want ~0.34", f)
	}
	if f := fr[2017][topology.RSW]; math.Abs(f-0.28) > 0.07 {
		t.Errorf("2017 RSW fraction = %.3f, want ~0.28", f)
	}
	// Cluster-specific devices shrink as a proportion over time.
	cluster := func(year int) float64 { return fr[year][topology.CSA] + fr[year][topology.CSW] }
	if cluster(2017) >= cluster(2013) {
		t.Errorf("cluster share grew: 2013=%.3f 2017=%.3f", cluster(2013), cluster(2017))
	}
}

func TestNormalizedIncidentsFig8(t *testing.T) {
	a := intraAnalysis(t)
	norm := a.NormalizedIncidents(2017)
	// Total 2017 normalized incidents = 1 by construction.
	sum2017 := 0.0
	for _, f := range norm[2017] {
		sum2017 += f
	}
	if math.Abs(sum2017-1) > 1e-9 {
		t.Errorf("2017 normalized total = %v", sum2017)
	}
	// §5.4: total SEVs grew ~9.4× from 2011 to 2017.
	sum2011 := 0.0
	for _, f := range norm[2011] {
		sum2011 += f
	}
	growth := sum2017 / sum2011
	if growth < 6 || growth > 14 {
		t.Errorf("2011→2017 growth = %.1f×, want ~9.4×", growth)
	}
}

func TestDesignIncidentsFig9(t *testing.T) {
	a := intraAnalysis(t)
	di := a.DesignIncidents(2017)
	// No fabric incidents before deployment.
	for year := fleet.FirstYear; year < fleet.FabricDeployYear; year++ {
		if di[year][topology.DesignFabric] != 0 {
			t.Errorf("%d: fabric incidents before deployment", year)
		}
	}
	// §5.5: in 2017 fabric incidents ≈ 50% of cluster incidents.
	ratio := di[2017][topology.DesignFabric] / di[2017][topology.DesignCluster]
	if ratio < 0.3 || ratio > 0.75 {
		t.Errorf("2017 fabric:cluster incidents = %.2f, want ~0.5", ratio)
	}
	// Cluster incidents decline after the fabric inflection.
	if di[2017][topology.DesignCluster] >= di[2014][topology.DesignCluster] {
		t.Errorf("cluster incidents did not decline: 2014=%.3f 2017=%.3f",
			di[2014][topology.DesignCluster], di[2017][topology.DesignCluster])
	}
}

func TestDesignRateFig10(t *testing.T) {
	a := intraAnalysis(t)
	dr := a.DesignRate()
	// Fabric incidents-per-device consistently below cluster since 2015.
	for year := fleet.FabricDeployYear; year <= fleet.LastYear; year++ {
		c := dr[year][topology.DesignCluster]
		f := dr[year][topology.DesignFabric]
		if f >= c {
			t.Errorf("%d: fabric rate %.4f >= cluster rate %.4f", year, f, c)
		}
	}
}

func TestPopulationBreakdownFig11(t *testing.T) {
	a := intraAnalysis(t)
	pb := a.PopulationBreakdown()
	for year, row := range pb {
		sum := 0.0
		for _, f := range row {
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%d population fractions sum to %v", year, sum)
		}
		if row[topology.RSW] < 0.9 {
			t.Errorf("%d RSW fraction = %.3f", year, row[topology.RSW])
		}
	}
	// Inflection: CSW fraction decreases after 2015, FSW increases.
	if pb[2017][topology.CSW] >= pb[2015][topology.CSW] {
		t.Error("CSW population fraction did not decline after 2015")
	}
	if pb[2017][topology.FSW] <= pb[2015][topology.FSW] {
		t.Error("FSW population fraction did not grow after 2015")
	}
}

func TestMTBIFig12(t *testing.T) {
	a := intraAnalysis(t)
	m := a.MTBI(2017)
	// §5.6: MTBI spans ~three orders of magnitude, Core lowest (~39 495
	// device-hours), RSW highest (~10M device-hours).
	if m[topology.Core] < 20000 || m[topology.Core] > 80000 {
		t.Errorf("Core MTBI = %.0f, want ~39 495", m[topology.Core])
	}
	if m[topology.RSW] < 5e6 || m[topology.RSW] > 2.5e7 {
		t.Errorf("RSW MTBI = %.0f, want ~1e7", m[topology.RSW])
	}
	if ratio := m[topology.RSW] / m[topology.Core]; ratio < 100 {
		t.Errorf("RSW:Core MTBI ratio = %.0f, want orders of magnitude", ratio)
	}
}

func TestDesignMTBI(t *testing.T) {
	a := intraAnalysis(t)
	// §5.6: fabric switches fail ~3.2× less frequently than cluster
	// switches in 2017.
	fab := a.DesignMTBI(2017, topology.DesignFabric)
	clu := a.DesignMTBI(2017, topology.DesignCluster)
	if fab == 0 || clu == 0 {
		t.Fatal("missing design MTBI")
	}
	ratio := fab / clu
	if ratio < 2.0 || ratio > 5.0 {
		t.Errorf("fabric:cluster MTBI = %.2f, want ~3.2", ratio)
	}
}

func TestP75IRTFig13(t *testing.T) {
	a := intraAnalysis(t)
	// Resolution times grew over the years for the pooled fleet.
	overall := a.P75IRTOverall()
	if overall[2017] < 4*overall[2011] {
		t.Errorf("p75IRT 2011=%.1f 2017=%.1f — growth too small", overall[2011], overall[2017])
	}
	// Per-type values exist for the high-volume types.
	byType := a.P75IRT(2017)
	for _, dt := range []topology.DeviceType{topology.Core, topology.CSW, topology.RSW} {
		if byType[dt] <= 0 {
			t.Errorf("no 2017 p75IRT for %v", dt)
		}
	}
}

func TestIRTvsScaleFig14(t *testing.T) {
	a := intraAnalysis(t)
	pts := a.IRTvsScale()
	if len(pts) < 5 {
		t.Fatalf("points = %d", len(pts))
	}
	r, err := stats.Correlation(pts)
	if err != nil {
		t.Fatal(err)
	}
	// §5.6: larger networks increase incident resolution time.
	if r < 0.6 {
		t.Errorf("p75IRT vs fleet size correlation = %.3f, want positive", r)
	}
}

func TestYears(t *testing.T) {
	a := intraAnalysis(t)
	ys := a.Years()
	if len(ys) != fleet.NumYears || ys[0] != fleet.FirstYear || ys[len(ys)-1] != fleet.LastYear {
		t.Errorf("Years = %v", ys)
	}
}

func TestEmptyStoreAnalyses(t *testing.T) {
	a := NewIntraAnalysis(sev.NewStore(), fleet.New(1))
	if len(a.RootCauseDistribution()) != 0 {
		t.Error("empty store has root causes")
	}
	if len(a.SeverityBreakdown(2017)) != 0 {
		t.Error("empty store has severity breakdown")
	}
	if len(a.NormalizedIncidents(2017)) != 0 {
		t.Error("empty store has normalized incidents")
	}
	if got := a.IncidentRate(2017); got[topology.RSW] != 0 {
		t.Error("empty store has nonzero rate")
	}
}

func TestIncidentDurations(t *testing.T) {
	a := intraAnalysis(t)
	ds, ok := a.IncidentDurations(2017)
	if !ok {
		t.Fatal("no 2017 durations")
	}
	if ds.Summary.N == 0 || ds.P50 <= 0 || ds.P95 < ds.P50 {
		t.Errorf("duration stats = %+v", ds)
	}
	// Durations are bounded by resolutions by construction.
	res := a.P75IRTOverall()[2017]
	if ds.P50 > res {
		t.Errorf("median duration %v exceeds p75 resolution %v", ds.P50, res)
	}
	// §2's question has a year-over-year answer: durations grew as
	// networks grew.
	early, ok := a.IncidentDurations(2011)
	if !ok {
		t.Fatal("no 2011 durations")
	}
	if ds.P50 <= early.P50 {
		t.Errorf("median duration did not grow: %v (2011) → %v (2017)", early.P50, ds.P50)
	}
	if _, ok := a.IncidentDurations(1999); ok {
		t.Error("durations reported for an empty year")
	}
}
