package core

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"dcnr/internal/obs"
)

// RunLimit runs n independent tasks across a bounded pool of at most
// workers goroutines and waits for all of them. Tasks are claimed in index
// order from a shared counter, so the pool stays busy regardless of how
// task durations vary. workers <= 0 means one worker per CPU.
//
// Every task runs even when an earlier one fails; the returned error is
// the failing task with the lowest index, which keeps the outcome
// deterministic under concurrency.
func RunLimit(workers, n int, task func(i int) error) error {
	return RunLimitTraced(workers, n, nil, "", nil, task)
}

// RunLimitTraced is RunLimit with per-task telemetry: each task records a
// wall-clock span on tr, named by name(i) (the task index when name is
// nil), with one trace lane (tid) per pool worker — so the trace viewer
// shows the fan-out's actual occupancy, and callers can rebuild wall-time
// accounting from the recorded spans instead of timing tasks themselves.
// A nil tr records nothing and adds no overhead beyond a nil check.
func RunLimitTraced(workers, n int, tr *obs.Tracer, cat string, name func(i int) string, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if tr != nil {
					label := ""
					if name != nil {
						label = name(i)
					}
					if label == "" {
						label = "task " + strconv.Itoa(i)
					}
					sp := tr.BeginOn(w+1, cat, label)
					errs[i] = task(i)
					if errs[i] != nil {
						sp = sp.SetArg("error", errs[i].Error())
					}
					sp.End()
				} else {
					errs[i] = task(i)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
