package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// RunLimit runs n independent tasks across a bounded pool of at most
// workers goroutines and waits for all of them. Tasks are claimed in index
// order from a shared counter, so the pool stays busy regardless of how
// task durations vary. workers <= 0 means one worker per CPU.
//
// Every task runs even when an earlier one fails; the returned error is
// the failing task with the lowest index, which keeps the outcome
// deterministic under concurrency.
func RunLimit(workers, n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				errs[i] = task(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
