package core

import (
	"errors"
	"fmt"
	"sort"

	"dcnr/internal/backbone"
	"dcnr/internal/stats"
	"dcnr/internal/tickets"
)

// InterAnalysis answers the §6 questions over reconstructed vendor-ticket
// intervals. Construct with NewInterAnalysis.
type InterAnalysis struct {
	// WindowHours is the observation window length.
	WindowHours float64

	downs []tickets.Downtime
	// edgeLinks maps each edge to its link names (from the backbone
	// inventory — monitoring knows the topology even for links that never
	// failed).
	edgeLinks map[string][]string
	// vendorLinks counts each vendor's operated links.
	vendorLinks map[string]int
	edgeCont    map[string]backbone.Continent

	// merged caches per-link merged downtime intervals.
	merged map[string][]interval
}

type interval struct{ start, end float64 }

// NewInterAnalysis builds the analysis over the reconstructed downtime
// records, using the backbone inventory to enumerate links and their
// owners.
func NewInterAnalysis(topo *backbone.Topology, downs []tickets.Downtime, windowHours float64) (*InterAnalysis, error) {
	if windowHours <= 0 {
		return nil, errors.New("core: non-positive observation window")
	}
	a := &InterAnalysis{
		WindowHours: windowHours,
		downs:       downs,
		edgeLinks:   make(map[string][]string),
		vendorLinks: make(map[string]int),
		edgeCont:    make(map[string]backbone.Continent),
		merged:      make(map[string][]interval),
	}
	for _, e := range topo.Edges {
		for _, li := range e.Links {
			a.edgeLinks[e.Name] = append(a.edgeLinks[e.Name], topo.Links[li].Name)
		}
		a.edgeCont[e.Name] = e.Continent
	}
	for _, l := range topo.Links {
		a.vendorLinks[topo.Vendors[l.Vendor].Name]++
	}
	for _, d := range downs {
		if d.Start < 0 || d.End > windowHours || d.End < d.Start {
			return nil, fmt.Errorf("core: interval [%v, %v] outside window", d.Start, d.End)
		}
	}
	a.mergePerLink()
	return a, nil
}

// mergePerLink unions each link's (possibly overlapping) downtime
// intervals: a cut and an independent failure can overlap, but the link is
// simply down for the union.
func (a *InterAnalysis) mergePerLink() {
	byLink := make(map[string][]interval)
	for _, d := range a.downs {
		byLink[d.Link] = append(byLink[d.Link], interval{d.Start, d.End})
	}
	for link, ivs := range byLink {
		a.merged[link] = mergeIntervals(ivs)
	}
}

func mergeIntervals(ivs []interval) []interval {
	if len(ivs) == 0 {
		return nil
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
	out := []interval{ivs[0]}
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.start <= last.end {
			if iv.end > last.end {
				last.end = iv.end
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// edgeOutages returns the intervals during which every link of the edge is
// simultaneously down — the §6 definition of edge failure.
func (a *InterAnalysis) edgeOutages(edge string) []interval {
	links := a.edgeLinks[edge]
	if len(links) == 0 {
		return nil
	}
	// Sweep the +1/-1 boundaries of all links' merged intervals; the edge
	// is out while the down-counter equals the link count.
	type boundary struct {
		at    float64
		delta int
	}
	var bs []boundary
	for _, link := range links {
		for _, iv := range a.merged[link] {
			bs = append(bs, boundary{iv.start, +1}, boundary{iv.end, -1})
		}
	}
	sort.Slice(bs, func(i, j int) bool {
		if bs[i].at != bs[j].at {
			return bs[i].at < bs[j].at
		}
		// Process openings before closings at equal times so zero-length
		// touches do not register as outages.
		return bs[i].delta > bs[j].delta
	})
	var out []interval
	downCount, outageStart := 0, 0.0
	for _, b := range bs {
		before := downCount
		downCount += b.delta
		if before < len(links) && downCount == len(links) {
			outageStart = b.at
		}
		if before == len(links) && downCount < len(links) {
			if b.at > outageStart {
				out = append(out, interval{outageStart, b.at})
			}
		}
	}
	return out
}

// EdgeMTBF returns each edge's measured mean time between failures: the
// mean gap between consecutive outage starts. Estimating time *between*
// failures needs at least two outages in the window; edges with fewer are
// omitted (their MTBF is not measurable from this window).
func (a *InterAnalysis) EdgeMTBF() map[string]float64 {
	out := make(map[string]float64)
	for edge := range a.edgeLinks {
		outages := a.edgeOutages(edge)
		if len(outages) < 2 {
			continue
		}
		first, last := outages[0].start, outages[len(outages)-1].start
		out[edge] = (last - first) / float64(len(outages)-1)
	}
	return out
}

// EdgeAvailability returns each edge's measured availability over the
// observation window: the fraction of the window during which at least one
// of its backbone links was up (1 − total outage time / window). Every
// edge in the inventory is reported; an edge with no outages reads 1.
// This is the §6 availability signal the sweep engine aggregates into
// cross-run bands, computed from reconstructed tickets exactly like the
// health engine's edge-availability SLO.
func (a *InterAnalysis) EdgeAvailability() map[string]float64 {
	out := make(map[string]float64, len(a.edgeLinks))
	for edge := range a.edgeLinks {
		down := 0.0
		for _, o := range a.edgeOutages(edge) {
			down += o.end - o.start
		}
		out[edge] = 1 - down/a.WindowHours
	}
	return out
}

// EdgeMTTR returns each edge's mean outage duration in hours.
func (a *InterAnalysis) EdgeMTTR() map[string]float64 {
	out := make(map[string]float64)
	for edge := range a.edgeLinks {
		outages := a.edgeOutages(edge)
		if len(outages) == 0 {
			continue
		}
		sum := 0.0
		for _, o := range outages {
			sum += o.end - o.start
		}
		out[edge] = sum / float64(len(outages))
	}
	return out
}

// isolated reports whether a downtime record is attributable to the
// vendor's own link (equipment fault or vendor maintenance) rather than a
// correlated edge-severing cut. Cuts affect every link of an edge at once
// regardless of operator, so the per-vendor reliability comparison (§6.2)
// uses only isolated records.
func isolated(d tickets.Downtime) bool { return d.Maintenance }

// VendorMTBF returns each vendor's measured link MTBF: the vendor's total
// link observation hours divided by its isolated link failure count.
// Vendors with no isolated failures are omitted.
func (a *InterAnalysis) VendorMTBF() map[string]float64 {
	failures := make(map[string]int)
	for _, d := range a.downs {
		if isolated(d) {
			failures[d.Vendor]++
		}
	}
	out := make(map[string]float64)
	for vendor, n := range failures {
		if n == 0 {
			continue
		}
		out[vendor] = float64(a.vendorLinks[vendor]) * a.WindowHours / float64(n)
	}
	return out
}

// VendorMTTR returns each vendor's mean repair duration in hours over its
// isolated link failures.
func (a *InterAnalysis) VendorMTTR() map[string]float64 {
	sums := make(map[string]float64)
	counts := make(map[string]int)
	for _, d := range a.downs {
		if !isolated(d) {
			continue
		}
		sums[d.Vendor] += d.Duration()
		counts[d.Vendor]++
	}
	out := make(map[string]float64)
	for vendor, n := range counts {
		if n == 0 {
			continue
		}
		out[vendor] = sums[vendor] / float64(n)
	}
	return out
}

// Curve converts a name→value metric into its percentile curve (the solid
// lines of Figures 15–18): X is the fraction of entries with that value or
// lower, Y the value.
func Curve(metric map[string]float64) []stats.Point {
	vals := make([]float64, 0, len(metric))
	for _, v := range metric {
		vals = append(vals, v)
	}
	return stats.PercentileCurve(vals)
}

// FitCurve fits the exponential model y = A·e^(B·p) to a metric's
// percentile curve — the §6.1 modeling method (least squares, with R²
// reported in the original space).
func FitCurve(metric map[string]float64) (stats.ExpFit, error) {
	return stats.FitExponential(Curve(metric))
}

// ContinentStats is one row of Table 4.
type ContinentStats struct {
	// Share is the continent's fraction of all edges.
	Share float64
	// MTBF and MTTR are hour-means over the continent's edges.
	MTBF, MTTR float64
}

// EdgeFailureRateMTBF returns the rate-based per-edge MTBF estimate:
// observation window over outage count, for edges with at least one
// outage. Unlike EdgeMTBF's inter-arrival estimate (used for the Figure 15
// percentile curve, where a continuous statistic matters), the rate
// estimator is unbiased for low-failure-rate edges, which is what the
// Table 4 continent comparison needs — conditioning on two-plus outages
// would systematically understate the most reliable continents.
func (a *InterAnalysis) EdgeFailureRateMTBF() map[string]float64 {
	out := make(map[string]float64)
	for edge := range a.edgeLinks {
		n := len(a.edgeOutages(edge))
		if n == 0 {
			continue
		}
		out[edge] = a.WindowHours / float64(n)
	}
	return out
}

// ByContinent returns Table 4 using pooled per-continent estimators:
// MTBF is the continent's total edge observation time over its total
// outage count, and MTTR its total outage time over the outage count.
// Pooling avoids the convexity bias of averaging per-edge window/n values
// (an edge with a single outage would otherwise contribute the whole
// window and inflate the most reliable continents).
func (a *InterAnalysis) ByContinent() map[backbone.Continent]ContinentStats {
	type agg struct {
		edges     int
		outages   int
		downHours float64
	}
	aggs := make(map[backbone.Continent]*agg)
	total := 0
	for edge, cont := range a.edgeCont {
		g := aggs[cont]
		if g == nil {
			g = &agg{}
			aggs[cont] = g
		}
		g.edges++
		total++
		for _, o := range a.edgeOutages(edge) {
			g.outages++
			g.downHours += o.end - o.start
		}
	}
	out := make(map[backbone.Continent]ContinentStats, len(aggs))
	for cont, g := range aggs {
		s := ContinentStats{Share: float64(g.edges) / float64(total)}
		if g.outages > 0 {
			s.MTBF = float64(g.edges) * a.WindowHours / float64(g.outages)
			s.MTTR = g.downHours / float64(g.outages)
		}
		out[cont] = s
	}
	return out
}

// ConditionalRisk returns the probability that an edge is unavailable at a
// random instant, estimated per edge as total outage time over the window.
// Facebook plans edge and link capacity to tolerate the 99.99th percentile
// of conditional risk (§6.1); PlanRisk returns that percentile across
// edges.
func (a *InterAnalysis) ConditionalRisk() map[string]float64 {
	out := make(map[string]float64)
	for edge := range a.edgeLinks {
		downSum := 0.0
		for _, o := range a.edgeOutages(edge) {
			downSum += o.end - o.start
		}
		out[edge] = downSum / a.WindowHours
	}
	return out
}

// PlanRisk returns the p-th percentile of conditional risk across edges.
func (a *InterAnalysis) PlanRisk(p float64) (float64, error) {
	risk := a.ConditionalRisk()
	vals := make([]float64, 0, len(risk))
	for _, v := range risk {
		vals = append(vals, v)
	}
	return stats.Percentile(vals, p)
}

// LinkFailureCount returns the raw number of ticket intervals — the
// "tens of thousands of real world events" scale check of §6.
func (a *InterAnalysis) LinkFailureCount() int { return len(a.downs) }

// VendorProfile is one fiber vendor's measured reliability record (§6.2).
type VendorProfile struct {
	// Vendor is the vendor name.
	Vendor string
	// Links is how many backbone links the vendor operates.
	Links int
	// Failures counts the vendor's isolated link failures in the window.
	Failures int
	// MTBF and MTTR are the measured per-vendor values in hours (zero
	// when the vendor had no isolated failures).
	MTBF, MTTR float64
}

// VendorProfiles returns every vendor's record, most reliable (longest
// MTBF) first — the §6.2 ranking whose top entry the paper notes operates
// "in a big city in the USA".
func (a *InterAnalysis) VendorProfiles() []VendorProfile {
	mtbf := a.VendorMTBF()
	mttr := a.VendorMTTR()
	failures := make(map[string]int)
	for _, d := range a.downs {
		if isolated(d) {
			failures[d.Vendor]++
		}
	}
	profiles := make([]VendorProfile, 0, len(a.vendorLinks))
	for vendor, links := range a.vendorLinks {
		profiles = append(profiles, VendorProfile{
			Vendor:   vendor,
			Links:    links,
			Failures: failures[vendor],
			MTBF:     mtbf[vendor],
			MTTR:     mttr[vendor],
		})
	}
	sort.Slice(profiles, func(i, j int) bool {
		a, b := profiles[i], profiles[j]
		// Vendors with no failures observed are the most reliable.
		aBound, bBound := a.Failures > 0, b.Failures > 0
		if aBound != bBound {
			return !aBound
		}
		if a.MTBF != b.MTBF {
			return a.MTBF > b.MTBF
		}
		return a.Vendor < b.Vendor
	})
	return profiles
}
