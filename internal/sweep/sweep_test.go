package sweep

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"sync"
	"testing"

	"dcnr/internal/obs"
	"dcnr/internal/observe"
)

// fastGrid is a small campaign over a single simulated year, cheap enough
// to run many times in tests.
func fastGrid() Config {
	return Config{
		Seeds: []uint64{1, 2},
		Scenarios: []Scenario{
			{Name: "baseline", FromYear: 2014, ToYear: 2014},
			{Name: "no-remediation", DisableRemediation: true, FromYear: 2014, ToYear: 2014},
		},
	}
}

func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	var reports [3][]byte
	var streams [3]string
	for i, workers := range []int{1, 4, 4} {
		cfg := fastGrid()
		cfg.Workers = workers
		var jsonl bytes.Buffer
		cfg.Results = &jsonl
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		var rep bytes.Buffer
		if err := res.WriteReport(&rep); err != nil {
			t.Fatalf("WriteReport: %v", err)
		}
		reports[i] = rep.Bytes()
		streams[i] = jsonl.String()
	}
	if !bytes.Equal(reports[0], reports[1]) {
		t.Errorf("serial and parallel reports differ:\n%s\nvs\n%s", reports[0], reports[1])
	}
	if !bytes.Equal(reports[1], reports[2]) {
		t.Errorf("repeated parallel reports differ")
	}
	if streams[0] != streams[1] || streams[1] != streams[2] {
		t.Errorf("JSONL streams differ across workers/repeats")
	}
}

func TestSweepRunStatsContent(t *testing.T) {
	cfg := fastGrid()
	cfg.Workers = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Runs) != 4 {
		t.Fatalf("got %d runs, want 4", len(res.Runs))
	}
	for i, r := range res.Runs {
		if r.Run != i {
			t.Errorf("run %d records index %d", i, r.Run)
		}
		if r.Incidents <= 0 || r.Faults <= 0 {
			t.Errorf("run %d: empty simulation (faults=%d incidents=%d)", i, r.Faults, r.Incidents)
		}
		if r.FromYear != 2014 || r.ToYear != 2014 {
			t.Errorf("run %d: years [%d, %d], want [2014, 2014]", i, r.FromYear, r.ToYear)
		}
		if len(r.IncidentRate) == 0 || len(r.RootCauseMix) == 0 {
			t.Errorf("run %d: missing per-type statistics", i)
		}
	}
	// The ablation escalates every supported fault: its incident counts
	// must dwarf the baseline's, and it must carry no repair ratios.
	base, abl := res.Runs[0], res.Runs[2]
	if base.Scenario != "baseline" || abl.Scenario != "no-remediation" {
		t.Fatalf("unexpected run order: %q, %q", base.Scenario, abl.Scenario)
	}
	if abl.Incidents <= base.Incidents {
		t.Errorf("ablation incidents %d not above baseline %d", abl.Incidents, base.Incidents)
	}
	if len(base.RepairRatio) == 0 {
		t.Errorf("baseline run has no repair ratios")
	}

	// Groups aggregate in grid order with every seed contributing.
	if len(res.Report.Groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(res.Report.Groups))
	}
	for _, g := range res.Report.Groups {
		if g.Seeds != 2 {
			t.Errorf("group %s: %d seeds, want 2", g.Scenario, g.Seeds)
		}
		if g.Incidents.N != 2 || g.Incidents.P5 > g.Incidents.P95 {
			t.Errorf("group %s: malformed incidents band %+v", g.Scenario, g.Incidents)
		}
		if g.Incidents.Mean < g.Incidents.P5 || g.Incidents.Mean > g.Incidents.P95 {
			t.Errorf("group %s: mean %v outside [p5, p95] band", g.Scenario, g.Incidents.Mean)
		}
	}
}

func TestSweepJSONLStreamOrdered(t *testing.T) {
	cfg := fastGrid()
	cfg.Workers = 4
	var buf bytes.Buffer
	cfg.Results = &buf
	if _, err := Run(cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d JSONL lines, want 4", len(lines))
	}
	for i, line := range lines {
		var r RunStats
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if r.Run != i {
			t.Errorf("line %d carries run %d; stream not in run order", i, r.Run)
		}
	}
}

func TestSweepMetricsMergedAndCampaignCounters(t *testing.T) {
	cfg := fastGrid()
	cfg.Workers = 2
	reg := obs.NewRegistry()
	cfg.Observe = observe.Observe{Metrics: reg}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["sweep_runs_total"]; got != 4 {
		t.Errorf("sweep_runs_total = %d, want 4", got)
	}
	if got := snap.Counters["sweep_run_failures_total"]; got != 0 {
		t.Errorf("sweep_run_failures_total = %d, want 0", got)
	}
	var want int64
	for _, r := range res.Runs {
		want += int64(r.Incidents)
	}
	if got := snap.Counters["sweep_incidents_total"]; got != want {
		t.Errorf("sweep_incidents_total = %d, want %d", got, want)
	}
	// The merged per-run snapshot carries the simulation's own counters,
	// summed across runs — and stays separate from the campaign registry.
	if res.Metrics.Counters["des_events_fired_total"] == 0 {
		t.Errorf("merged snapshot missing des_events_fired_total")
	}
	if snap.Counters["des_events_fired_total"] != 0 {
		t.Errorf("simulation metrics leaked into the campaign registry")
	}
	if res.Metrics.Counters["sweep_runs_total"] != 0 {
		t.Errorf("campaign bookkeeping leaked into the merged run metrics")
	}
}

func TestSweepUninstrumentedHasNoMetrics(t *testing.T) {
	cfg := fastGrid()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Metrics.Counters) != 0 {
		t.Errorf("uninstrumented sweep accumulated metrics: %v", res.Metrics.Counters)
	}
}

func TestSweepValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string
	}{
		{"no seeds", func(c *Config) { c.Seeds = nil }, "no seeds"},
		{"zero scale", func(c *Config) { c.Scales = []int{0} }, "Scale must be positive"},
		{"negative scale", func(c *Config) { c.Scales = []int{-2} }, "Scale must be positive"},
		{"unnamed scenario", func(c *Config) { c.Scenarios[0].Name = "" }, "has no name"},
		{"duplicate scenario", func(c *Config) { c.Scenarios[1] = c.Scenarios[0] }, "duplicate scenario"},
		{"bad scenario years", func(c *Config) { c.Scenarios[0].FromYear = 2017; c.Scenarios[0].ToYear = 2011 }, "not ordered"},
		{"bad elevation", func(c *Config) { c.Scenarios[0].ElevateYear = 2014; c.Scenarios[0].ElevateFactor = 0.5 }, "ElevateFactor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := fastGrid()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestSweepValidateNormalizes(t *testing.T) {
	cfg := Config{Seeds: []uint64{1}}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(cfg.Scales) != 1 || cfg.Scales[0] != 1 {
		t.Errorf("Scales = %v, want [1]", cfg.Scales)
	}
	if len(cfg.Scenarios) != 1 || cfg.Scenarios[0].Name != "baseline" {
		t.Errorf("Scenarios = %+v, want a single baseline", cfg.Scenarios)
	}
	if cfg.Scenarios[0].FromYear != 2011 || cfg.Scenarios[0].ToYear != 2017 {
		t.Errorf("scenario years [%d, %d] not normalized to the study period",
			cfg.Scenarios[0].FromYear, cfg.Scenarios[0].ToYear)
	}
}

func TestSweepValidateClampsWorkers(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	cfg := Config{Seeds: []uint64{1}, Workers: max + 5}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if cfg.Workers != max {
		t.Errorf("Workers = %d, want clamp to GOMAXPROCS %d", cfg.Workers, max)
	}
	// At or below the cap, the requested value stands — including the
	// "one per CPU" default of 0.
	for _, w := range []int{0, 1, max} {
		cfg := Config{Seeds: []uint64{1}, Workers: w}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("Validate(workers=%d): %v", w, err)
		}
		if cfg.Workers != w {
			t.Errorf("Workers = %d after Validate, want %d untouched", cfg.Workers, w)
		}
	}
}

func TestOrderedWriterFlushesContiguousPrefix(t *testing.T) {
	var buf bytes.Buffer
	ow := newOrderedWriter(&buf, 4)
	type rec struct {
		I int `json:"i"`
	}
	// Arrival order 2, 0, 3, 1 must still stream as 0, 1, 2, 3.
	for _, i := range []int{2, 0, 3, 1} {
		if err := ow.write(i, rec{I: i}); err != nil {
			t.Fatalf("write(%d): %v", i, err)
		}
	}
	want := "{\"i\":0}\n{\"i\":1}\n{\"i\":2}\n{\"i\":3}\n"
	if buf.String() != want {
		t.Errorf("stream = %q, want %q", buf.String(), want)
	}
	if err := ow.flushErr(); err != nil {
		t.Errorf("flushErr: %v", err)
	}
}

// failAfter fails every write after the first n bytes worth of calls.
type failAfter struct {
	calls int
}

func (f *failAfter) Write(p []byte) (int, error) {
	f.calls++
	if f.calls > 1 {
		return 0, errWriterBroken
	}
	return len(p), nil
}

var errWriterBroken = &brokenErr{}

type brokenErr struct{}

func (*brokenErr) Error() string { return "writer broken" }

func TestOrderedWriterStickyError(t *testing.T) {
	ow := newOrderedWriter(&failAfter{}, 3)
	if err := ow.write(0, 0); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if err := ow.write(1, 1); err == nil {
		t.Fatalf("second write succeeded past a broken writer")
	}
	if err := ow.write(2, 2); err == nil {
		t.Fatalf("third write did not surface the sticky error")
	}
	if err := ow.flushErr(); err == nil {
		t.Fatalf("flushErr lost the sticky error")
	}
}

func TestOrderedWriterNilWriterIsNoop(t *testing.T) {
	ow := newOrderedWriter(nil, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := ow.write(i, i); err != nil {
				t.Errorf("write(%d): %v", i, err)
			}
		}(i)
	}
	wg.Wait()
}

func TestSweepBackboneLeg(t *testing.T) {
	if testing.Short() {
		t.Skip("backbone leg is slow")
	}
	cfg := Config{
		Seeds:     []uint64{1},
		Scenarios: []Scenario{{Name: "baseline", FromYear: 2014, ToYear: 2014}},
		Backbone:  true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r := res.Runs[0]
	if r.EdgeAvailability <= 0 || r.EdgeAvailability > 1 {
		t.Errorf("edge availability %v outside (0, 1]", r.EdgeAvailability)
	}
	if r.EdgeMTBFHours <= 0 || r.EdgeMTTRHours <= 0 {
		t.Errorf("edge MTBF/MTTR not populated: %v / %v", r.EdgeMTBFHours, r.EdgeMTTRHours)
	}
	g := res.Report.Groups[0]
	if g.EdgeAvailability == nil || g.EdgeAvailability.N != 1 {
		t.Errorf("report missing edge availability band: %+v", g.EdgeAvailability)
	}
}

func TestSweepTimelineDeterministicAcrossWorkers(t *testing.T) {
	var streams [3]string
	for i, workers := range []int{1, 4, 4} {
		cfg := fastGrid()
		cfg.Workers = workers
		var tl bytes.Buffer
		cfg.Timeline = &tl
		if _, err := Run(cfg); err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		streams[i] = tl.String()
	}
	if streams[0] != streams[1] || streams[1] != streams[2] {
		t.Errorf("timeline streams differ across workers/repeats")
	}
	// Shape check: one header line per run, then that run's samples, all
	// valid JSON.
	lines := strings.Split(strings.TrimSuffix(streams[0], "\n"), "\n")
	headers, samples := 0, 0
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad timeline line %q: %v", line, err)
		}
		if _, ok := rec["run"]; ok {
			headers++
		} else if _, ok := rec["m"]; ok {
			samples++
		} else {
			t.Errorf("timeline line is neither header nor sample: %q", line)
		}
	}
	if headers != 4 {
		t.Errorf("got %d timeline headers, want one per run (4)", headers)
	}
	if samples == 0 {
		t.Errorf("timeline stream has no samples")
	}
}

func TestSweepTimelineWithoutMetrics(t *testing.T) {
	// A timeline alone must not switch on campaign-level metric merging:
	// Result.Metrics stays zero when Observe.Metrics is nil.
	cfg := fastGrid()
	cfg.Workers = 2
	var tl bytes.Buffer
	cfg.Timeline = &tl
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Metrics.Counters) != 0 {
		t.Errorf("uninstrumented campaign merged %d counters", len(res.Metrics.Counters))
	}
	if tl.Len() == 0 {
		t.Errorf("timeline stream is empty")
	}
}

func TestSweepStatusResources(t *testing.T) {
	cfg := fastGrid()
	cfg.Workers = 2
	st := NewStatus()
	cfg.Status = st
	if _, err := Run(cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	cs := st.Snapshot()
	var sumEvents int64
	for _, row := range cs.Runs {
		if row.Events <= 0 {
			t.Errorf("run %d: Events = %d, want > 0", row.Run, row.Events)
		}
		if row.SimHoursPerSec <= 0 || row.EventsPerSec <= 0 {
			t.Errorf("run %d: rates = (%g sim-h/s, %g ev/s), want > 0",
				row.Run, row.SimHoursPerSec, row.EventsPerSec)
		}
		sumEvents += row.Events
	}
	if cs.Events != sumEvents {
		t.Errorf("campaign Events = %d, want sum of rows %d", cs.Events, sumEvents)
	}
	// One simulated year per run in fastGrid.
	if want := float64(len(cs.Runs)) * hoursPerYear; cs.SimHours != want {
		t.Errorf("campaign SimHours = %g, want %g", cs.SimHours, want)
	}
}
