package sweep

import (
	"sort"

	"dcnr/internal/core"
	"dcnr/internal/sim"
	"dcnr/internal/stats"
)

// RunStats is the small record a run is reduced to before its SEV store is
// dropped: the paper's key statistics for one (scenario, seed, scale) cell,
// evaluated at the run's final simulated year. It is the JSONL line format
// of the Results stream.
type RunStats struct {
	Run      int    `json:"run"`
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	Scale    int    `json:"scale"`
	FromYear int    `json:"from_year"`
	ToYear   int    `json:"to_year"`

	// Faults and Incidents count generated device faults and escalated
	// SEVs over the whole run.
	Faults    int `json:"faults"`
	Incidents int `json:"incidents"`

	// IncidentRate is incidents per device in the final year, by device
	// type (Fig. 4 / §5.1).
	IncidentRate map[string]float64 `json:"incident_rate"`
	// RootCauseMix is the share of each root cause over the run (Table 2).
	RootCauseMix map[string]float64 `json:"root_cause_mix"`
	// MTBIHours is mean time between incidents in the final year, by
	// device type (Table 1's MTBI column).
	MTBIHours map[string]float64 `json:"mtbi_hours"`
	// RepairRatio is the automated-repair success ratio by supported
	// device type (Table 1's ratio column). Empty when remediation was
	// disabled.
	RepairRatio map[string]float64 `json:"repair_ratio,omitempty"`
	// P75ResolutionHours is the 75th-percentile incident resolution time
	// in the final year (Fig. 12).
	P75ResolutionHours float64 `json:"p75_resolution_hours"`

	// Backbone statistics (§6), present only when Config.Backbone is set:
	// fleet-wide mean edge availability and median per-edge MTBF/MTTR.
	EdgeAvailability float64 `json:"edge_availability,omitempty"`
	EdgeMTBFHours    float64 `json:"edge_mtbf_hours,omitempty"`
	EdgeMTTRHours    float64 `json:"edge_mttr_hours,omitempty"`
}

// intraStats reduces a completed intra-DC run to its RunStats record.
func intraStats(spec runSpec, res *sim.IntraResult) RunStats {
	year := spec.scenario.ToYear
	rs := RunStats{
		Run:       spec.run,
		Scenario:  spec.scenario.Name,
		Seed:      spec.seed,
		Scale:     spec.scale,
		FromYear:  spec.scenario.FromYear,
		ToYear:    year,
		Faults:    res.Faults,
		Incidents: res.Incidents,

		IncidentRate:       make(map[string]float64),
		RootCauseMix:       make(map[string]float64),
		MTBIHours:          make(map[string]float64),
		P75ResolutionHours: res.Analysis.P75IRTOverall()[year],
	}
	for dt, rate := range res.Analysis.IncidentRate(year) {
		rs.IncidentRate[dt.String()] = rate
	}
	for rc, share := range res.Analysis.RootCauseDistribution() {
		rs.RootCauseMix[rc.String()] = share
	}
	for dt, mtbi := range res.Analysis.MTBI(year) {
		rs.MTBIHours[dt.String()] = mtbi
	}
	if len(res.RemediationStats) > 0 {
		rs.RepairRatio = make(map[string]float64, len(res.RemediationStats))
		for dt, ts := range res.RemediationStats {
			if ts.Issues > 0 {
				rs.RepairRatio[dt.String()] = ts.RepairRatio()
			}
		}
	}
	return rs
}

// addBackboneStats folds a run's inter-DC leg into its record: mean edge
// availability across the backbone and median per-edge MTBF/MTTR.
func addBackboneStats(rs *RunStats, a *core.InterAnalysis) {
	rs.EdgeAvailability = meanOf(a.EdgeAvailability())
	rs.EdgeMTBFHours = medianOf(a.EdgeMTBF())
	rs.EdgeMTTRHours = medianOf(a.EdgeMTTR())
}

func meanOf(m map[string]float64) float64 {
	if len(m) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range m {
		sum += v
	}
	return sum / float64(len(m))
}

func medianOf(m map[string]float64) float64 {
	if len(m) == 0 {
		return 0
	}
	xs := make([]float64, 0, len(m))
	for _, v := range m {
		xs = append(xs, v)
	}
	med, err := stats.Percentile(xs, 50)
	if err != nil {
		return 0
	}
	return med
}

// Band is the cross-run distribution of one statistic: mean with an
// empirical p5–p95 band over N contributing runs.
type Band struct {
	Mean float64 `json:"mean"`
	P5   float64 `json:"p5"`
	P95  float64 `json:"p95"`
	N    int     `json:"n"`
}

// bandOf summarizes samples into a Band; the zero Band for no samples.
func bandOf(xs []float64) Band {
	if len(xs) == 0 {
		return Band{}
	}
	ps, err := stats.Percentiles(xs, 5, 95)
	if err != nil {
		return Band{}
	}
	return Band{Mean: stats.Mean(xs), P5: ps[0], P95: ps[1], N: len(xs)}
}

// Group is the aggregation of every run sharing a (scenario, scale) cell:
// each per-run statistic summarized across seeds as a Band.
type Group struct {
	Scenario string `json:"scenario"`
	Scale    int    `json:"scale"`
	Seeds    int    `json:"seeds"`

	Faults    Band `json:"faults"`
	Incidents Band `json:"incidents"`

	IncidentRate       map[string]Band `json:"incident_rate"`
	RootCauseMix       map[string]Band `json:"root_cause_mix"`
	MTBIHours          map[string]Band `json:"mtbi_hours"`
	RepairRatio        map[string]Band `json:"repair_ratio,omitempty"`
	P75ResolutionHours Band            `json:"p75_resolution_hours"`

	EdgeAvailability *Band `json:"edge_availability,omitempty"`
	EdgeMTBFHours    *Band `json:"edge_mtbf_hours,omitempty"`
	EdgeMTTRHours    *Band `json:"edge_mttr_hours,omitempty"`
}

// Report is the aggregated campaign output: the grid that ran (minus
// anything execution-dependent — worker count and wall time are excluded
// so reports are comparable across machines) and one Group per
// (scenario, scale) cell, in grid order.
type Report struct {
	Seeds     []uint64   `json:"seeds"`
	Scales    []int      `json:"scales"`
	Scenarios []Scenario `json:"scenarios"`
	Backbone  bool       `json:"backbone,omitempty"`
	Groups    []Group    `json:"groups"`
}

// aggregate folds per-run records into the campaign report. Runs are
// grouped in grid order and every map is keyed by the sorted union of the
// runs' keys, so aggregation order never depends on scheduling.
func aggregate(cfg Config, runs []RunStats) Report {
	rep := Report{
		Seeds:     cfg.Seeds,
		Scales:    cfg.Scales,
		Scenarios: cfg.Scenarios,
		Backbone:  cfg.Backbone,
	}
	for _, sc := range cfg.Scenarios {
		for _, scale := range cfg.Scales {
			var members []RunStats
			for _, r := range runs {
				if r.Scenario == sc.Name && r.Scale == scale {
					members = append(members, r)
				}
			}
			g := Group{
				Scenario:  sc.Name,
				Scale:     scale,
				Seeds:     len(members),
				Faults:    bandOf(intSamples(members, func(r RunStats) int { return r.Faults })),
				Incidents: bandOf(intSamples(members, func(r RunStats) int { return r.Incidents })),
				IncidentRate: mapBands(members, func(r RunStats) map[string]float64 {
					return r.IncidentRate
				}),
				RootCauseMix: mapBands(members, func(r RunStats) map[string]float64 {
					return r.RootCauseMix
				}),
				MTBIHours: mapBands(members, func(r RunStats) map[string]float64 {
					return r.MTBIHours
				}),
				RepairRatio: mapBands(members, func(r RunStats) map[string]float64 {
					return r.RepairRatio
				}),
				P75ResolutionHours: bandOf(samples(members, func(r RunStats) float64 {
					return r.P75ResolutionHours
				})),
			}
			if cfg.Backbone {
				avail := bandOf(samples(members, func(r RunStats) float64 { return r.EdgeAvailability }))
				mtbf := bandOf(samples(members, func(r RunStats) float64 { return r.EdgeMTBFHours }))
				mttr := bandOf(samples(members, func(r RunStats) float64 { return r.EdgeMTTRHours }))
				g.EdgeAvailability, g.EdgeMTBFHours, g.EdgeMTTRHours = &avail, &mtbf, &mttr
			}
			rep.Groups = append(rep.Groups, g)
		}
	}
	return rep
}

func samples(runs []RunStats, get func(RunStats) float64) []float64 {
	xs := make([]float64, len(runs))
	for i, r := range runs {
		xs[i] = get(r)
	}
	return xs
}

func intSamples(runs []RunStats, get func(RunStats) int) []float64 {
	xs := make([]float64, len(runs))
	for i, r := range runs {
		xs[i] = float64(get(r))
	}
	return xs
}

// mapBands aggregates a per-run map statistic key-by-key: every key seen
// in any run, sorted, each summarized over the runs where it is present.
func mapBands(runs []RunStats, get func(RunStats) map[string]float64) map[string]Band {
	keys := make(map[string]bool)
	for _, r := range runs {
		for k := range get(r) {
			keys[k] = true
		}
	}
	if len(keys) == 0 {
		return nil
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	out := make(map[string]Band, len(sorted))
	for _, k := range sorted {
		var xs []float64
		for _, r := range runs {
			if v, ok := get(r)[k]; ok {
				xs = append(xs, v)
			}
		}
		out[k] = bandOf(xs)
	}
	return out
}
