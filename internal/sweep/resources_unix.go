//go:build unix

package sweep

import "syscall"

// processCPUSeconds returns the process's cumulative CPU time (user +
// system) in seconds, or 0 where getrusage is unavailable.
func processCPUSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	sec := func(tv syscall.Timeval) float64 {
		return float64(tv.Sec) + float64(tv.Usec)/1e6
	}
	return sec(ru.Utime) + sec(ru.Stime)
}
