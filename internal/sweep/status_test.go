package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dcnr/internal/obs/journal"
)

// TestSweepJournalDeterministicAcrossWorkers pins the campaign journal
// stream: byte-identical at any worker count, one header line plus the
// run's records per grid cell, in run order.
func TestSweepJournalDeterministicAcrossWorkers(t *testing.T) {
	var streams [2]string
	for i, workers := range []int{1, 4} {
		cfg := fastGrid()
		cfg.Workers = workers
		var jnl bytes.Buffer
		cfg.Journal = &jnl
		if _, err := Run(cfg); err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		streams[i] = jnl.String()
	}
	if streams[0] != streams[1] {
		t.Fatalf("journal streams differ between 1 and 4 workers (%d vs %d bytes)",
			len(streams[0]), len(streams[1]))
	}
	// The stream interleaves run headers and records; headers carry run
	// numbers in order and their record counts match the lines between them.
	lines := strings.Split(strings.TrimSpace(streams[0]), "\n")
	run, recorded, want := -1, 0, 0
	for _, line := range lines {
		var hdr struct {
			Run      *int   `json:"run"`
			Records  int    `json:"records"`
			ID       int    `json:"id"`
			Scenario string `json:"scenario"`
		}
		if err := json.Unmarshal([]byte(line), &hdr); err != nil {
			t.Fatalf("unparseable journal line: %q: %v", line, err)
		}
		if hdr.ID == 0 { // header line
			if hdr.Run == nil || *hdr.Run != run+1 {
				t.Fatalf("journal headers out of order at %q (after run %d)", line, run)
			}
			if recorded != want {
				t.Fatalf("run %d streamed %d records, header said %d", run, recorded, want)
			}
			run, recorded, want = *hdr.Run, 0, hdr.Records
			continue
		}
		recorded++
	}
	if run != 3 || recorded != want {
		t.Fatalf("journal stream ended at run %d with %d/%d records", run, recorded, want)
	}
	if want == 0 {
		t.Fatalf("final run journaled no records")
	}
}

// TestSweepReportUnchangedByIntrospection pins the no-observer-effect
// contract at campaign level: attaching a live status table and a journal
// stream leaves sweep_report.json and the results JSONL byte-identical.
func TestSweepReportUnchangedByIntrospection(t *testing.T) {
	var reports, streams [2][]byte
	for i, introspect := range []bool{false, true} {
		cfg := fastGrid()
		cfg.Workers = 4
		var jsonl bytes.Buffer
		cfg.Results = &jsonl
		if introspect {
			cfg.Status = NewStatus()
			cfg.Journal = &bytes.Buffer{}
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run(introspect=%v): %v", introspect, err)
		}
		var rep bytes.Buffer
		if err := res.WriteReport(&rep); err != nil {
			t.Fatalf("WriteReport: %v", err)
		}
		reports[i] = rep.Bytes()
		streams[i] = jsonl.Bytes()
	}
	if !bytes.Equal(reports[0], reports[1]) {
		t.Errorf("introspection changed the campaign report")
	}
	if !bytes.Equal(streams[0], streams[1]) {
		t.Errorf("introspection changed the results JSONL stream")
	}
}

// TestSweepRunJoinsStreamErrors is the regression for the dropped flush
// error: a broken results or journal writer must surface in Run's returned
// error on every exit path, including when the write failure also aborts
// the failing run.
func TestSweepRunJoinsStreamErrors(t *testing.T) {
	t.Run("results", func(t *testing.T) {
		cfg := fastGrid()
		cfg.Workers = 2
		cfg.Results = &failAfter{}
		_, err := Run(cfg)
		if err == nil {
			t.Fatalf("Run succeeded past a broken results writer")
		}
		if !errors.Is(err, errWriterBroken) {
			t.Fatalf("Run error lost the writer failure: %v", err)
		}
		if !strings.Contains(err.Error(), "streaming results:") {
			t.Fatalf("flush error not joined into Run error: %v", err)
		}
	})
	t.Run("journal", func(t *testing.T) {
		cfg := fastGrid()
		cfg.Workers = 2
		cfg.Journal = &failAfter{}
		_, err := Run(cfg)
		if err == nil {
			t.Fatalf("Run succeeded past a broken journal writer")
		}
		if !errors.Is(err, errWriterBroken) {
			t.Fatalf("Run error lost the writer failure: %v", err)
		}
		if !strings.Contains(err.Error(), "streaming journal:") {
			t.Fatalf("journal flush error not joined into Run error: %v", err)
		}
	})
}

// TestSweepStatusLifecycle drives a campaign with a live status table and
// checks the final snapshot, the merged journal summary, and the SSE event
// stream.
func TestSweepStatusLifecycle(t *testing.T) {
	cfg := fastGrid()
	cfg.Workers = 2
	st := NewStatus()
	cfg.Status = st

	ch, cancel := st.subscribe()
	defer cancel()
	events := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range ch {
			events++
		}
	}()

	if _, err := Run(cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	wg.Wait()
	if events != 4 {
		t.Errorf("got %d SSE events, want 4", events)
	}

	cs := st.Snapshot()
	if cs.Total != 4 || cs.Completed != 4 || cs.Running != 0 || cs.Failed != 0 {
		t.Fatalf("snapshot = total %d completed %d running %d failed %d",
			cs.Total, cs.Completed, cs.Running, cs.Failed)
	}
	if cs.Faults.N != 4 || cs.Faults.Mean <= 0 {
		t.Errorf("faults band not populated: %+v", cs.Faults)
	}
	if cs.Incidents.N != 4 || cs.Incidents.P5 > cs.Incidents.P95 {
		t.Errorf("incidents band malformed: %+v", cs.Incidents)
	}
	for i, r := range cs.Runs {
		if r.Run != i || r.State != "done" {
			t.Errorf("run %d: row %+v", i, r)
		}
		if r.Faults <= 0 || r.Incidents <= 0 {
			t.Errorf("run %d: counts not recorded: %+v", i, r)
		}
	}

	sum, runs := st.JournalSummary()
	if runs != 4 {
		t.Fatalf("journal summary covers %d runs, want 4", runs)
	}
	if sum.Faults <= 0 || sum.Incidents <= 0 || sum.Incomplete != 0 {
		t.Errorf("merged journal summary malformed: %+v", sum)
	}

	// A late subscriber to a finished campaign gets a closed channel, not
	// a hang.
	late, cancelLate := st.subscribe()
	defer cancelLate()
	if _, ok := <-late; ok {
		t.Errorf("late subscriber received an event after finish")
	}
}

// TestSweepStatusHandler exercises the /campaign and /journal endpoints
// against a completed campaign.
func TestSweepStatusHandler(t *testing.T) {
	cfg := fastGrid()
	st := NewStatus()
	cfg.Status = st
	if _, err := Run(cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	h := st.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/campaign", nil))
	if rec.Code != 200 {
		t.Fatalf("/campaign: status %d", rec.Code)
	}
	var cs CampaignStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &cs); err != nil {
		t.Fatalf("/campaign: %v", err)
	}
	if cs.Total != 4 || cs.Completed != 4 {
		t.Errorf("/campaign reported %d/%d runs", cs.Completed, cs.Total)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/journal", nil))
	if rec.Code != 200 {
		t.Fatalf("/journal: status %d", rec.Code)
	}
	var jr struct {
		Runs    int `json:"runs_journaled"`
		Summary struct {
			Incidents int `json:"incidents"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &jr); err != nil {
		t.Fatalf("/journal: %v", err)
	}
	if jr.Runs != 4 || jr.Summary.Incidents <= 0 {
		t.Errorf("/journal = %+v", jr)
	}
}

// TestSweepStatusStragglers builds a status table by hand: three completed
// runs with tight wall times and one running run far beyond them must be
// flagged; with too few completed runs, nothing is.
func TestSweepStatusStragglers(t *testing.T) {
	specs := []runSpec{
		{run: 0, scenario: Scenario{Name: "a"}},
		{run: 1, scenario: Scenario{Name: "a"}},
		{run: 2, scenario: Scenario{Name: "a"}},
		{run: 3, scenario: Scenario{Name: "a"}},
	}
	st := NewStatus()
	st.begin(specs)
	now := time.Now()
	for i, d := range []time.Duration{time.Second, 2 * time.Second, time.Second} {
		c := &st.cells[i]
		c.startNS.Store(now.Add(-time.Minute).UnixNano())
		c.endNS.Store(now.Add(-time.Minute).Add(d).UnixNano())
		c.state.Store(stateDone)
	}
	// Run 3 started ten minutes ago and is still going: z ≫ 2.
	st.cells[3].startNS.Store(now.Add(-10 * time.Minute).UnixNano())
	st.cells[3].state.Store(stateRunning)

	cs := st.Snapshot()
	if !cs.Runs[3].Straggler {
		t.Errorf("long-running run not flagged: %+v", cs.Runs[3])
	}
	for i := 0; i < 3; i++ {
		if cs.Runs[i].Straggler {
			t.Errorf("completed run %d flagged as straggler", i)
		}
	}

	// With only two completed runs there is no distribution to flag
	// against.
	st.cells[2].state.Store(stateRunning)
	if cs := st.Snapshot(); cs.Runs[3].Straggler {
		t.Errorf("straggler flagged with fewer than %d completed runs", stragglerMinDone)
	}
}

// TestSweepStatusNilSafe pins the nil contract: every recording method and
// reader is a no-op on a nil status.
func TestSweepStatusNilSafe(t *testing.T) {
	var st *Status
	st.begin(nil)
	st.start(0)
	st.done(0, &RunStats{}, Resources{})
	st.fail(0)
	st.setJournal(0, journal.Summary{})
	st.finish()
	if cs := st.Snapshot(); cs.Total != 0 {
		t.Errorf("nil snapshot = %+v", cs)
	}
	if _, runs := st.JournalSummary(); runs != 0 {
		t.Errorf("nil journal summary reported %d runs", runs)
	}
}
