//go:build !unix

package sweep

// processCPUSeconds is unavailable off unix; attribution degrades to 0.
func processCPUSeconds() float64 { return 0 }
