// Package sweep is the scenario-sweep campaign engine: it fans a grid of
// simulation runs — seed × scale × scenario — across a bounded worker
// pool, streams per-run summary statistics out as JSONL, and aggregates
// the paper's key statistics (per-device-type incident rates, root-cause
// mix, MTBF, resolution times, repair ratios, edge availability) into
// cross-run mean/p5/p95 bands.
//
// The paper's every headline number is a point estimate from one observed
// history; a sweep quantifies the run-to-run variance a reproduction
// should report alongside it. Design constraints:
//
//   - Bounded memory. A run's SEV store is reduced to a small RunStats
//     record on the worker that produced it and then dropped, so a
//     100-run campaign never holds 100 stores.
//   - Full isolation. Every run builds its own simulator, fleet, and
//     seeded RNG source (simrand.NewSource(seed) per driver), plus its
//     own metrics registry when the campaign is instrumented — workers
//     share nothing but the result slice.
//   - Deterministic output. Runs are expanded, numbered, streamed, and
//     aggregated in grid order regardless of which worker finishes first,
//     so the same grid yields byte-identical reports at any worker count.
package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"dcnr/internal/backbone"
	"dcnr/internal/core"
	"dcnr/internal/faults"
	"dcnr/internal/obs"
	"dcnr/internal/obs/timeline"
	"dcnr/internal/observe"
	"dcnr/internal/sim"
)

// Scenario is one named variant of the intra-DC simulation: the baseline,
// the §5.6 no-remediation ablation, an -elevate-* burn drill, or any year
// slice of the study period.
type Scenario struct {
	// Name labels the scenario in results and reports; names must be
	// unique within a campaign.
	Name string `json:"name"`
	// DisableRemediation turns off the automated repair engine (§5.6).
	DisableRemediation bool `json:"disable_remediation,omitempty"`
	// ElevateYear and ElevateFactor (> 1) multiply one year's fault
	// arrival rate — the burn-drill anomaly.
	ElevateYear   int     `json:"elevate_year,omitempty"`
	ElevateFactor float64 `json:"elevate_factor,omitempty"`
	// FromYear and ToYear bound the simulated years; zero values mean the
	// full study period.
	FromYear int `json:"from_year,omitempty"`
	ToYear   int `json:"to_year,omitempty"`
}

// DefaultScenarios returns the standard campaign: the baseline study
// period, the §5.6 no-remediation ablation, and a 5× burn drill in 2014.
func DefaultScenarios() []Scenario {
	return []Scenario{
		{Name: "baseline"},
		{Name: "no-remediation", DisableRemediation: true},
		{Name: "elevate-2014x5", ElevateYear: 2014, ElevateFactor: 5},
	}
}

// Config parameterizes a sweep campaign.
type Config struct {
	// Observe bundles the campaign-level observability wiring. Metrics
	// receives the sweep_* counters and gauges; Trace records one span
	// per run with a lane per pool worker; Logger gets one progress
	// record per completed run. Health is not wired — runs have
	// independent simulation clocks, so a shared health engine would
	// interleave unrelated histories; instrument single runs instead.
	observe.Observe
	// Seeds are the RNG roots to sweep. Every (scenario, scale, seed)
	// cell becomes one run; a campaign needs at least one seed.
	Seeds []uint64
	// Scales are the fleet scales to sweep. Empty means [1].
	Scales []int
	// Scenarios are the simulation variants to sweep. Empty means
	// [{Name: "baseline"}].
	Scenarios []Scenario
	// Workers bounds the worker pool; <= 0 means one per CPU. Validate
	// clamps it to runtime.GOMAXPROCS(0): each run is CPU-bound, so
	// oversubscribing the machine only adds scheduler churn (measured ~12%
	// slower with 8 workers on a 1-CPU box) without changing output.
	Workers int
	// Backbone, when true, adds an inter-DC leg to every run: a backbone
	// simulation at the run's seed (edges scaled by the run's scale)
	// whose edge availability and MTBF/MTTR medians join the run's
	// statistics.
	Backbone bool
	// Results, when non-nil, receives one JSON line per completed run
	// (a RunStats record), streamed in run order as soon as each run's
	// predecessor lines are flushed.
	Results io.Writer
	// Journal, when non-nil, receives every run's causal incident journal
	// as JSONL in run order: a header line per run ({"run":N,...}) followed
	// by the run's records. Like Results, the stream is byte-identical at
	// any worker count.
	Journal io.Writer
	// Timeline, when non-nil, receives every run's metric timeline as
	// JSONL in run order: a header line per run ({"run":N,...}) followed
	// by the run's samples on the sim-time cadence grid. Like Results,
	// the stream is byte-identical at any worker count.
	Timeline io.Writer
	// TimelineCadence is the per-run sampling cadence in sim-hours;
	// <= 0 selects the timeline default (24, one grid point per
	// simulated day).
	TimelineCadence float64
	// Status, when non-nil, is updated live as runs start and finish; serve
	// Status.Handler to watch the campaign from outside. Status only adds
	// progress accounting — sweep_report.json is unchanged by it.
	Status *Status
}

// Validate normalizes the campaign in place — default scales and
// scenarios, scenario year bounds resolved to the study period — and
// rejects what cannot run: no seeds, non-positive scales, duplicate or
// empty scenario names, or a scenario whose own simulation config fails
// sim.IntraConfig.Validate.
func (c *Config) Validate() error {
	if len(c.Seeds) == 0 {
		return fmt.Errorf("sweep: no seeds configured")
	}
	if max := runtime.GOMAXPROCS(0); c.Workers > max {
		c.Workers = max
	}
	if len(c.Scales) == 0 {
		c.Scales = []int{1}
	}
	for _, s := range c.Scales {
		if s <= 0 {
			return fmt.Errorf("sweep: Scale must be positive, got %d", s)
		}
	}
	if len(c.Scenarios) == 0 {
		c.Scenarios = []Scenario{{Name: "baseline"}}
	}
	seen := make(map[string]bool, len(c.Scenarios))
	for i := range c.Scenarios {
		sc := &c.Scenarios[i]
		if sc.Name == "" {
			return fmt.Errorf("sweep: scenario %d has no name", i)
		}
		if seen[sc.Name] {
			return fmt.Errorf("sweep: duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		// Normalize and check through the simulation config itself, so a
		// sweep rejects exactly what a single run would.
		probe := sc.intraConfig(c.Seeds[0], c.Scales[0])
		if err := probe.Validate(); err != nil {
			return fmt.Errorf("sweep: scenario %q: %w", sc.Name, err)
		}
		sc.FromYear, sc.ToYear = probe.FromYear, probe.ToYear
	}
	return nil
}

// intraConfig builds the simulation config for one grid cell.
func (s Scenario) intraConfig(seed uint64, scale int) sim.IntraConfig {
	return sim.IntraConfig{
		Seed:               seed,
		Scale:              scale,
		FromYear:           s.FromYear,
		ToYear:             s.ToYear,
		DisableRemediation: s.DisableRemediation,
		ElevateYear:        s.ElevateYear,
		ElevateFactor:      s.ElevateFactor,
	}
}

// runSpec is one expanded grid cell.
type runSpec struct {
	run      int
	scenario Scenario
	seed     uint64
	scale    int
}

// expand enumerates the grid in deterministic order: scenarios outermost,
// then scales, then seeds — so all of a scenario's runs are numbered
// contiguously and paired-seed comparisons line up across scenarios.
func (c *Config) expand() []runSpec {
	specs := make([]runSpec, 0, len(c.Scenarios)*len(c.Scales)*len(c.Seeds))
	for _, sc := range c.Scenarios {
		for _, scale := range c.Scales {
			for _, seed := range c.Seeds {
				specs = append(specs, runSpec{run: len(specs), scenario: sc, seed: seed, scale: scale})
			}
		}
	}
	return specs
}

// Result is a completed campaign: the aggregated report, every per-run
// record, and the merged telemetry of all instrumented runs.
type Result struct {
	// Report is the cross-run aggregation, ready for WriteReport.
	Report Report
	// Runs holds one RunStats per grid cell, in run order.
	Runs []RunStats
	// Metrics is the merge of every run's private registry (plus nothing
	// else — the campaign registry passed via Observe.Metrics stays
	// separate so sweep_* bookkeeping never pollutes simulation metrics).
	// Zero when the campaign was uninstrumented.
	Metrics obs.Snapshot
}

// WriteReport writes the campaign report as deterministically-ordered,
// indented JSON: the same grid produces byte-identical output at any
// worker count.
func (r *Result) WriteReport(w io.Writer) error {
	data, err := json.MarshalIndent(&r.Report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Run executes the campaign: every grid cell across the worker pool, the
// JSONL stream to cfg.Results, and the final aggregation. The returned
// error is the failing run with the lowest index (every run is attempted
// even when an earlier one fails, matching core.RunLimit).
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	specs := cfg.expand()
	o := cfg.Observe

	var (
		mRuns     = o.Metrics.Counter("sweep_runs_total")
		mFailures = o.Metrics.Counter("sweep_run_failures_total")
		mFaults   = o.Metrics.Counter("sweep_faults_total")
		mIncs     = o.Metrics.Counter("sweep_incidents_total")
		gWorkers  = o.Metrics.Gauge("sweep_active_workers")
	)

	stream := newOrderedWriter(cfg.Results, len(specs))
	jstream := newOrderedWriter(cfg.Journal, len(specs))
	tstream := newOrderedWriter(cfg.Timeline, len(specs))
	// A journal stream or a live status table both need per-run journals;
	// either alone turns journaling on for every run.
	journaling := cfg.Journal != nil || cfg.Status != nil
	// A private registry per run: for campaign-level metric merging, for
	// the timeline sampler's series, and for Status's per-run resource
	// attribution (events processed). Any of the three turns it on.
	instrument := o.Metrics != nil || cfg.Timeline != nil || cfg.Status != nil
	cfg.Status.begin(specs)
	results := make([]RunStats, len(specs))
	var (
		mergedMu sync.Mutex
		merged   obs.Snapshot
	)

	runOne := func(i int) error {
		gWorkers.Add(1)
		defer gWorkers.Add(-1)
		spec := specs[i]
		probe := beginProbe()

		// Per-run isolated telemetry: a private registry per run (when
		// the campaign is instrumented at all), merged after the run so
		// concurrent runs never share a counter.
		var reg *obs.Registry
		if instrument {
			reg = obs.NewRegistry()
		}
		icfg := spec.scenario.intraConfig(spec.seed, spec.scale)
		icfg.Observe = observe.Observe{Metrics: reg}
		if journaling {
			icfg.Observe.Journal = faults.NewJournal()
		}
		if cfg.Timeline != nil {
			icfg.Observe.Timeline = timeline.New(cfg.TimelineCadence)
		}
		res, err := sim.IntraDC(icfg)
		if err != nil {
			mFailures.Inc()
			return fmt.Errorf("sweep: run %d (%s seed %d scale %d): %w",
				spec.run, spec.scenario.Name, spec.seed, spec.scale, err)
		}
		stats := intraStats(spec, res)
		res = nil // the SEV store is reduced; let the worker drop it

		if cfg.Backbone {
			bcfg := backbone.DefaultConfig()
			bcfg.Seed = spec.seed
			bcfg.Edges *= spec.scale
			bcfg.Observe = observe.Observe{Metrics: reg}
			bres, err := sim.Backbone(bcfg)
			if err != nil {
				mFailures.Inc()
				return fmt.Errorf("sweep: run %d backbone (seed %d): %w", spec.run, spec.seed, err)
			}
			addBackboneStats(&stats, bres.Analysis)
		}

		var events int64
		if reg != nil {
			snap := reg.Snapshot()
			events = snap.Counters["des_events_fired_total"]
			// Campaign-level merging only when the caller asked for
			// metrics; a registry created just for attribution or
			// timeline sampling stays private to its run.
			if o.Metrics != nil {
				mergedMu.Lock()
				mergeErr := merged.Merge(snap)
				mergedMu.Unlock()
				if mergeErr != nil {
					return fmt.Errorf("sweep: run %d: merging metrics: %w", spec.run, mergeErr)
				}
			}
		}
		results[i] = stats
		mRuns.Inc()
		mFaults.Add(int64(stats.Faults))
		mIncs.Add(int64(stats.Incidents))
		if err := stream.write(i, &stats); err != nil {
			return fmt.Errorf("sweep: run %d: streaming result: %w", spec.run, err)
		}
		if j := icfg.Observe.Journal; j != nil {
			// One index serves both the JSONL chunk and the summary; the
			// journal's records are assembled (merged across lanes) once.
			x := j.Index()
			if cfg.Journal != nil {
				// Serialize the run's journal as one chunk — a header line
				// naming the run, then the records — streamed in run order.
				var buf bytes.Buffer
				fmt.Fprintf(&buf, "{\"run\":%d,\"scenario\":%q,\"seed\":%d,\"scale\":%d,\"records\":%d}\n",
					spec.run, spec.scenario.Name, spec.seed, spec.scale, x.Len())
				if err := x.WriteJSONL(&buf); err != nil {
					return fmt.Errorf("sweep: run %d: serializing journal: %w", spec.run, err)
				}
				if err := jstream.writeRaw(i, buf.Bytes()); err != nil {
					return fmt.Errorf("sweep: run %d: streaming journal: %w", spec.run, err)
				}
			}
			cfg.Status.setJournal(i, x.Summary())
		}
		if tl := icfg.Observe.Timeline; tl != nil && cfg.Timeline != nil {
			// Serialize the run's timeline as one chunk — a header line
			// naming the run, then the samples — streamed in run order.
			var buf bytes.Buffer
			fmt.Fprintf(&buf, "{\"run\":%d,\"scenario\":%q,\"seed\":%d,\"scale\":%d,\"samples\":%d}\n",
				spec.run, spec.scenario.Name, spec.seed, spec.scale, tl.Len())
			if err := tl.WriteJSONL(&buf); err != nil {
				return fmt.Errorf("sweep: run %d: serializing timeline: %w", spec.run, err)
			}
			if err := tstream.writeRaw(i, buf.Bytes()); err != nil {
				return fmt.Errorf("sweep: run %d: streaming timeline: %w", spec.run, err)
			}
		}
		simHours := float64(spec.scenario.ToYear-spec.scenario.FromYear+1) * hoursPerYear
		cfg.Status.done(i, &stats, probe.end(events, simHours))
		if o.Logger != nil {
			o.Logger.Info("sweep run complete",
				"run", spec.run, "of", len(specs),
				"scenario", spec.scenario.Name,
				"seed", spec.seed, "scale", spec.scale,
				"faults", stats.Faults, "incidents", stats.Incidents)
		}
		return nil
	}
	task := func(i int) error {
		cfg.Status.start(i)
		if err := runOne(i); err != nil {
			cfg.Status.fail(i)
			return err
		}
		return nil
	}

	err := core.RunLimitTraced(cfg.Workers, len(specs), o.Trace, "sweep",
		func(i int) string {
			s := specs[i]
			return fmt.Sprintf("%s/seed%d/x%d", s.scenario.Name, s.seed, s.scale)
		}, task)
	cfg.Status.finish()
	// The stream errors join the run error instead of being masked by it:
	// a campaign that both lost a run and truncated its JSONL reports both,
	// and a clean-looking abort can no longer hide a broken stream.
	if err = errors.Join(err, flushErrs(stream, jstream, tstream)); err != nil {
		return nil, err
	}
	return &Result{
		Report:  aggregate(cfg, results),
		Runs:    results,
		Metrics: merged,
	}, nil
}

// flushErrs collects the sticky stream errors from the results, journal,
// and timeline streams, labeled by stream.
func flushErrs(stream, jstream, tstream *orderedWriter) error {
	var errs []error
	if err := stream.flushErr(); err != nil {
		errs = append(errs, fmt.Errorf("sweep: streaming results: %w", err))
	}
	if err := jstream.flushErr(); err != nil {
		errs = append(errs, fmt.Errorf("sweep: streaming journal: %w", err))
	}
	if err := tstream.flushErr(); err != nil {
		errs = append(errs, fmt.Errorf("sweep: streaming timeline: %w", err))
	}
	return errors.Join(errs...)
}

// orderedWriter streams JSON lines in index order no matter the completion
// order: line i is held until lines 0..i-1 have been written, so the JSONL
// stream is deterministic under concurrency while only out-of-order
// completions are buffered.
type orderedWriter struct {
	mu      sync.Mutex
	w       io.Writer
	next    int
	pending map[int][]byte
	err     error
}

func newOrderedWriter(w io.Writer, n int) *orderedWriter {
	return &orderedWriter{w: w, pending: make(map[int][]byte, n/8+1)}
}

// write enqueues record i and flushes every line that is now contiguous.
// The first underlying write error is sticky and returned to every later
// caller, so one broken pipe fails the campaign instead of silently
// truncating the stream.
func (ow *orderedWriter) write(i int, record any) error {
	if ow.w == nil {
		return nil
	}
	line, err := json.Marshal(record)
	if err != nil {
		return err
	}
	return ow.writeRaw(i, append(line, '\n'))
}

// writeRaw enqueues a pre-serialized chunk for index i — one line or many —
// with the same ordering and sticky-error contract as write. The chunk is
// retained until flushed; callers must not reuse it.
func (ow *orderedWriter) writeRaw(i int, chunk []byte) error {
	if ow.w == nil {
		return nil
	}
	ow.mu.Lock()
	defer ow.mu.Unlock()
	if ow.err != nil {
		return ow.err
	}
	ow.pending[i] = chunk
	for {
		buf, ok := ow.pending[ow.next]
		if !ok {
			return nil
		}
		delete(ow.pending, ow.next)
		if _, err := ow.w.Write(buf); err != nil {
			ow.err = err
			return err
		}
		ow.next++
	}
}

// flushErr reports the sticky stream error, if any.
func (ow *orderedWriter) flushErr() error {
	ow.mu.Lock()
	defer ow.mu.Unlock()
	return ow.err
}
