package sweep

import (
	"runtime/metrics"
	"time"
)

// Resources is one run's resource attribution: how much machine one grid
// cell consumed. Events and SimHours are exact (read from the run's
// private registry and its scenario's year range); WallSeconds is the
// run's own wall time; CPUSeconds and AllocBytes are process-level deltas
// over the run's window — exact on a single-worker campaign, an
// attribution approximation when workers overlap (each run then also
// absorbs a share of its neighbours' usage). They are introspection
// numbers for Status, never part of sweep_report.json or the results
// stream, so determinism is unaffected.
type Resources struct {
	// Events is the number of DES events the run's kernel fired.
	Events int64
	// SimHours is the simulated span in hours.
	SimHours float64
	// WallSeconds is the run's wall-clock duration.
	WallSeconds float64
	// CPUSeconds is the process CPU time (user+system) consumed during
	// the run's window.
	CPUSeconds float64
	// AllocBytes is the heap allocation volume during the run's window.
	AllocBytes uint64
}

// SimHoursPerSec is the run's simulation throughput; 0 until finished.
func (r Resources) SimHoursPerSec() float64 {
	if r.WallSeconds <= 0 {
		return 0
	}
	return r.SimHours / r.WallSeconds
}

// EventsPerSec is the run's event throughput; 0 until finished.
func (r Resources) EventsPerSec() float64 {
	if r.WallSeconds <= 0 {
		return 0
	}
	return float64(r.Events) / r.WallSeconds
}

// hoursPerYear mirrors des.HoursPerYear without importing the kernel.
const hoursPerYear = 365 * 24

// resourceProbe captures the process counters at run start so end can
// attribute the deltas.
type resourceProbe struct {
	start  time.Time
	cpu0   float64
	alloc0 uint64
}

func beginProbe() resourceProbe {
	return resourceProbe{start: time.Now(), cpu0: processCPUSeconds(), alloc0: heapAllocBytes()}
}

func (p resourceProbe) end(events int64, simHours float64) Resources {
	return Resources{
		Events:      events,
		SimHours:    simHours,
		WallSeconds: time.Since(p.start).Seconds(),
		CPUSeconds:  processCPUSeconds() - p.cpu0,
		AllocBytes:  heapAllocBytes() - p.alloc0,
	}
}

// heapAllocBytes reads the cumulative heap allocation volume via
// runtime/metrics — cheap (no stop-the-world), monotone.
func heapAllocBytes() uint64 {
	s := []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}
