package sweep

import (
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dcnr/internal/obs/journal"
	"dcnr/internal/obs/timeline"
	"dcnr/internal/serve"
)

// Run states as stored in a statusCell. The zero value is pending so a
// freshly-initialized table needs no writes.
const (
	statePending int32 = iota
	stateRunning
	stateDone
	stateFailed
)

var stateNames = [...]string{"pending", "running", "done", "failed"}

// Status is the live campaign introspection table: a lock-free per-run
// progress grid the sweep workers update in place, queryable at any
// moment while the campaign runs. Construct with NewStatus, set it on
// Config.Status, and serve Handler — dcsweep's -status-addr does exactly
// that.
//
// The write path is wait-free: each worker touches only its own run's
// cell, and every cell field is an atomic, so progress accounting never
// serializes the worker pool. Readers (Snapshot, the HTTP handlers)
// assemble a consistent-enough view from the atomics without stopping
// anyone.
//
// All recording methods are safe on a nil *Status, matching the
// project-wide observability nil contract.
type Status struct {
	// begun is set once by begin; specs/cells are immutable afterwards.
	specs   []runSpec
	cells   []statusCell
	startNS atomic.Int64 // campaign start, wall nanos

	// subs are the SSE subscribers; finished flips when the campaign
	// ends, closing every subscriber channel.
	subMu    sync.Mutex
	subs     map[int]chan []byte
	nextSub  int
	finished bool

	// jmu guards the per-run journal summaries behind the /journal
	// endpoint (cold path: one write per completed run).
	jmu       sync.Mutex
	summaries map[int]journal.Summary

	// tl is the campaign's wall-clock timeline, when one is attached; the
	// /metrics/history endpoints serve it.
	tl atomic.Pointer[timeline.Timeline]
}

// statusCell is one run's progress state; every field is atomic so the
// owning worker writes without a lock.
type statusCell struct {
	state     atomic.Int32
	startNS   atomic.Int64
	endNS     atomic.Int64
	faults    atomic.Int64
	incidents atomic.Int64

	// Resource attribution, stored by done. The float fields travel as
	// IEEE-754 bits so the cell stays all-atomic.
	events       atomic.Int64
	simHoursBits atomic.Uint64
	cpuSecBits   atomic.Uint64
	allocBytes   atomic.Uint64
}

// NewStatus returns an empty status table, ready for Config.Status.
func NewStatus() *Status { return &Status{} }

// begin sizes the table for the expanded grid. Called once by Run.
func (s *Status) begin(specs []runSpec) {
	if s == nil {
		return
	}
	s.specs = specs
	s.cells = make([]statusCell, len(specs))
	s.startNS.Store(time.Now().UnixNano())
}

// start marks run i running.
func (s *Status) start(i int) {
	if s == nil {
		return
	}
	c := &s.cells[i]
	c.startNS.Store(time.Now().UnixNano())
	c.state.Store(stateRunning)
}

// done marks run i completed, records its resource attribution, and
// publishes a progress event.
func (s *Status) done(i int, st *RunStats, res Resources) {
	if s == nil {
		return
	}
	c := &s.cells[i]
	c.faults.Store(int64(st.Faults))
	c.incidents.Store(int64(st.Incidents))
	c.events.Store(res.Events)
	c.simHoursBits.Store(math.Float64bits(res.SimHours))
	c.cpuSecBits.Store(math.Float64bits(res.CPUSeconds))
	c.allocBytes.Store(res.AllocBytes)
	c.endNS.Store(time.Now().UnixNano())
	c.state.Store(stateDone)
	s.publish(i, "done")
}

// fail marks run i failed and publishes a progress event.
func (s *Status) fail(i int) {
	if s == nil {
		return
	}
	c := &s.cells[i]
	c.endNS.Store(time.Now().UnixNano())
	c.state.Store(stateFailed)
	s.publish(i, "failed")
}

// setJournal stores run i's journal summary for the /journal endpoint.
func (s *Status) setJournal(i int, sum journal.Summary) {
	if s == nil {
		return
	}
	s.jmu.Lock()
	defer s.jmu.Unlock()
	if s.summaries == nil {
		s.summaries = make(map[int]journal.Summary)
	}
	s.summaries[i] = sum
}

// finish marks the campaign over: a final event goes out and every SSE
// subscriber channel closes, so streaming handlers return.
func (s *Status) finish() {
	if s == nil {
		return
	}
	s.subMu.Lock()
	defer s.subMu.Unlock()
	s.finished = true
	for _, ch := range s.subs {
		close(ch)
	}
	s.subs = nil
}

// subscribe registers an SSE subscriber. The returned channel closes when
// the campaign finishes (immediately if it already has); cancel must be
// called when the subscriber goes away.
func (s *Status) subscribe() (<-chan []byte, func()) {
	ch := make(chan []byte, 16)
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.finished {
		close(ch)
		return ch, func() {}
	}
	id := s.nextSub
	s.nextSub++
	if s.subs == nil {
		s.subs = make(map[int]chan []byte)
	}
	s.subs[id] = ch
	return ch, func() {
		s.subMu.Lock()
		defer s.subMu.Unlock()
		if _, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(ch)
		}
	}
}

// publish fans one run-completion event out to every subscriber. Sends
// are non-blocking: a subscriber that stopped draining loses events
// rather than stalling the worker pool.
func (s *Status) publish(i int, state string) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if len(s.subs) == 0 {
		return
	}
	completed := 0
	for j := range s.cells {
		if st := s.cells[j].state.Load(); st == stateDone || st == stateFailed {
			completed++
		}
	}
	spec := s.specs[i]
	ev := fmt.Sprintf(`{"run":%d,"scenario":%q,"seed":%d,"scale":%d,"state":%q,"completed":%d,"total":%d}`,
		spec.run, spec.scenario.Name, spec.seed, spec.scale, state, completed, len(s.cells))
	for _, ch := range s.subs {
		select {
		case ch <- []byte(ev):
		default:
		}
	}
}

// RunStatus is one run's row in a CampaignStatus.
type RunStatus struct {
	Run      int    `json:"run"`
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	Scale    int    `json:"scale"`
	State    string `json:"state"`
	// ElapsedSeconds is the run's wall time: running so far, or total once
	// finished.
	ElapsedSeconds float64 `json:"elapsed_seconds,omitempty"`
	// Straggler flags a running run whose elapsed wall time sits more than
	// two standard deviations above the mean of completed runs.
	Straggler bool `json:"straggler,omitempty"`
	Faults    int  `json:"faults,omitempty"`
	Incidents int  `json:"incidents,omitempty"`
	// Resource attribution, set once the run finishes. Events and
	// SimHoursPerSec/EventsPerSec are exact per-run numbers; CPUSeconds
	// and AllocBytes are process-level deltas over the run's window — an
	// approximation when workers overlap (see Resources).
	Events         int64   `json:"events,omitempty"`
	SimHoursPerSec float64 `json:"sim_hours_per_sec,omitempty"`
	EventsPerSec   float64 `json:"events_per_sec,omitempty"`
	CPUSeconds     float64 `json:"cpu_seconds,omitempty"`
	AllocBytes     uint64  `json:"alloc_bytes,omitempty"`
}

// CampaignStatus is the live campaign snapshot the /campaign endpoint
// serves: aggregate progress, live cross-run bands over the completed
// runs, and the per-run grid.
type CampaignStatus struct {
	Total          int     `json:"total"`
	Completed      int     `json:"completed"`
	Running        int     `json:"running"`
	Failed         int     `json:"failed"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// Events and SimHours total the completed runs' attribution — how much
	// simulation the campaign has chewed through so far.
	Events   int64   `json:"events"`
	SimHours float64 `json:"sim_hours"`
	// Faults and Incidents band the completed runs' counts — the report's
	// cross-run variance, watchable while the campaign is still going.
	Faults    Band        `json:"faults"`
	Incidents Band        `json:"incidents"`
	Runs      []RunStatus `json:"runs"`
}

// stragglerZ is the z-score threshold above which a running run is
// flagged, and stragglerMinDone the completed-run floor below which no
// flagging happens (a z-score over two samples is noise).
const (
	stragglerZ       = 2.0
	stragglerMinDone = 3
)

// Snapshot assembles the current campaign view. Safe to call at any time
// from any goroutine; returns the zero value on a nil status.
func (s *Status) Snapshot() CampaignStatus {
	if s == nil {
		return CampaignStatus{}
	}
	now := time.Now()
	cs := CampaignStatus{Total: len(s.cells)}
	if start := s.startNS.Load(); start != 0 {
		cs.ElapsedSeconds = now.Sub(time.Unix(0, start)).Seconds()
	}
	var (
		faults, incidents, durations []float64
		rows                         = make([]RunStatus, len(s.cells))
	)
	for i := range s.cells {
		c := &s.cells[i]
		spec := s.specs[i]
		row := RunStatus{
			Run: spec.run, Scenario: spec.scenario.Name,
			Seed: spec.seed, Scale: spec.scale,
		}
		state := c.state.Load()
		row.State = stateNames[state]
		switch state {
		case stateRunning:
			cs.Running++
			row.ElapsedSeconds = now.Sub(time.Unix(0, c.startNS.Load())).Seconds()
		case stateDone:
			cs.Completed++
			row.ElapsedSeconds = time.Duration(c.endNS.Load() - c.startNS.Load()).Seconds()
			row.Faults = int(c.faults.Load())
			row.Incidents = int(c.incidents.Load())
			row.Events = c.events.Load()
			simHours := math.Float64frombits(c.simHoursBits.Load())
			row.CPUSeconds = math.Float64frombits(c.cpuSecBits.Load())
			row.AllocBytes = c.allocBytes.Load()
			if row.ElapsedSeconds > 0 {
				row.SimHoursPerSec = simHours / row.ElapsedSeconds
				row.EventsPerSec = float64(row.Events) / row.ElapsedSeconds
			}
			cs.Events += row.Events
			cs.SimHours += simHours
			faults = append(faults, float64(row.Faults))
			incidents = append(incidents, float64(row.Incidents))
			durations = append(durations, row.ElapsedSeconds)
		case stateFailed:
			cs.Failed++
			row.ElapsedSeconds = time.Duration(c.endNS.Load() - c.startNS.Load()).Seconds()
		}
		rows[i] = row
	}
	// Straggler flagging: z-score of each running run's elapsed time
	// against the completed runs' wall-time distribution.
	if mean, std, ok := meanStd(durations); ok {
		for i := range rows {
			if rows[i].State != stateNames[stateRunning] {
				continue
			}
			z := (rows[i].ElapsedSeconds - mean) / std
			rows[i].Straggler = z > stragglerZ
		}
	}
	cs.Faults = bandOf(faults)
	cs.Incidents = bandOf(incidents)
	cs.Runs = rows
	return cs
}

// meanStd returns the mean and standard deviation of xs, with ok false
// when there are too few samples (or no spread) for a meaningful z-score.
func meanStd(xs []float64) (mean, std float64, ok bool) {
	if len(xs) < stragglerMinDone {
		return 0, 0, false
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	std = math.Sqrt(ss / float64(len(xs)))
	return mean, std, std > 0
}

// JournalSummary merges the journal summaries of every completed run (in
// run order) into one campaign-level summary, reporting how many runs
// contributed.
func (s *Status) JournalSummary() (journal.Summary, int) {
	if s == nil {
		return journal.Summary{}, 0
	}
	s.jmu.Lock()
	defer s.jmu.Unlock()
	ordered := make([]journal.Summary, 0, len(s.summaries))
	for i := range s.cells {
		if sum, ok := s.summaries[i]; ok {
			ordered = append(ordered, sum)
		}
	}
	return journal.MergeSummaries(ordered), len(ordered)
}

// AttachTimeline wires a wall-clock timeline onto the status handler, so
// /metrics/history and /metrics/history/events serve it. Safe on a nil
// status (no-op) and with a nil timeline (the endpoints 404 again).
func (s *Status) AttachTimeline(tl *timeline.Timeline) {
	if s == nil {
		return
	}
	s.tl.Store(tl)
}

// Handler serves the campaign introspection endpoints:
//
//	/campaign                live CampaignStatus as JSON
//	/campaign/events         SSE stream, one event per completed run
//	/journal                 merged causal-journal summary of completed runs
//	/metrics/history         attached timeline samples as JSONL (from/to/metric params)
//	/metrics/history/events  SSE stream of new timeline sample blocks
//
// The /metrics/history endpoints answer 404 until AttachTimeline wires a
// timeline in.
func (s *Status) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/campaign", func(w http.ResponseWriter, r *http.Request) {
		serve.WriteJSON(w, s.Snapshot())
	})
	mux.HandleFunc("/campaign/events", func(w http.ResponseWriter, r *http.Request) {
		serve.StreamSSE(w, r, s.subscribe)
	})
	mux.HandleFunc("/journal", func(w http.ResponseWriter, r *http.Request) {
		sum, runs := s.JournalSummary()
		serve.WriteJSON(w, struct {
			Runs    int             `json:"runs_journaled"`
			Summary journal.Summary `json:"summary"`
		}{runs, sum})
	})
	mux.HandleFunc("/metrics/history", func(w http.ResponseWriter, r *http.Request) {
		if tl := s.tl.Load(); tl != nil {
			tl.ServeHistory(w, r)
			return
		}
		http.NotFound(w, r)
	})
	mux.HandleFunc("/metrics/history/events", func(w http.ResponseWriter, r *http.Request) {
		if tl := s.tl.Load(); tl != nil {
			serve.StreamSSE(w, r, tl.Subscribe)
			return
		}
		http.NotFound(w, r)
	})
	return mux
}
