// Package notify is the transport between fiber vendors and the repair-
// ticket collector: a minimal line-oriented TCP protocol in the spirit of
// the email delivery path §4.3.2 describes ("the emails are automatically
// parsed and stored in a database").
//
// Protocol: a client connects and sends any number of messages. Each
// message is a sequence of text lines terminated by a line containing a
// single period; message lines that begin with a period are dot-stuffed as
// in SMTP. After each message the server replies with one status line:
// "OK" when its handler accepted the message, or "ERR <reason>". The client
// fails fast on ERR.
package notify

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// Handler processes one received message. Returning an error rejects the
// message: the sender sees an ERR status.
type Handler func(text string) error

// Server accepts vendor connections and feeds each received message to its
// handler. Use NewServer, then Start (or Serve with your own listener), and
// Close to shut down.
type Server struct {
	handler Handler

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	received int
	wg       sync.WaitGroup
}

// NewServer returns a Server delivering messages to handler.
func NewServer(handler Handler) *Server {
	if handler == nil {
		panic("notify: nil handler")
	}
	return &Server{handler: handler, conns: make(map[net.Conn]struct{})}
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves in a background
// goroutine. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("notify: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close() // the "server closed" error is the one that matters
		return "", errors.New("notify: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(ln)
	}()
	return ln.Addr().String(), nil
}

// Serve accepts connections from ln until Close. It is the blocking
// alternative to Start for callers that manage their own listener.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("notify: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.acceptLoop(ln)
	return nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close() // shutting down; the accept loop exits either way
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// HandleConn serves one already-established connection (useful for
// in-memory transports like net.Pipe in tests). It returns when the peer
// disconnects.
func (s *Server) HandleConn(conn net.Conn) {
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	s.handleConn(conn)
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var msg strings.Builder
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == ".":
			status := "OK"
			if err := s.handler(msg.String()); err != nil {
				status = "ERR " + strings.ReplaceAll(err.Error(), "\n", " ")
			} else {
				s.mu.Lock()
				s.received++
				s.mu.Unlock()
			}
			msg.Reset()
			if _, err := bw.WriteString(status + "\n"); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
		case strings.HasPrefix(line, ".."):
			// Undo dot-stuffing.
			msg.WriteString(line[1:])
			msg.WriteByte('\n')
		default:
			msg.WriteString(line)
			msg.WriteByte('\n')
		}
	}
}

// Received reports how many messages the handler has accepted.
func (s *Server) Received() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received
}

// Close stops the listener and closes every open connection, then waits
// for the connection goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for conn := range s.conns {
		// Peers may already have hung up; a failed listener close is the
		// only error worth surfacing.
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Client is a vendor-side sender.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects to a collector at addr. The context bounds connection
// establishment.
func Dial(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("notify: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (e.g. one side of net.Pipe).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
}

// Send transmits one message and waits for the server's status line. A
// server-side rejection surfaces as an error prefixed with the server's
// reason.
func (c *Client) Send(text string) error {
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, ".") {
			line = "." + line // dot-stuff
		}
		if _, err := c.bw.WriteString(line + "\n"); err != nil {
			return fmt.Errorf("notify: write: %w", err)
		}
	}
	if _, err := c.bw.WriteString(".\n"); err != nil {
		return fmt.Errorf("notify: write: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("notify: flush: %w", err)
	}
	status, err := c.br.ReadString('\n')
	if err != nil {
		return fmt.Errorf("notify: reading status: %w", err)
	}
	status = strings.TrimRight(status, "\r\n")
	if status == "OK" {
		return nil
	}
	return fmt.Errorf("notify: server rejected message: %s", strings.TrimPrefix(status, "ERR "))
}

// Notify is an alias for Send, satisfying the health.Sink interface: a
// dialed Client plugs straight into the health engine as its alert
// transition sink.
func (c *Client) Notify(text string) error { return c.Send(text) }

// SetDeadline bounds subsequent sends.
func (c *Client) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// SendAll dials addr, sends every message in order, and closes the
// connection. It stops at the first failure. The context bounds the dial
// and, via its deadline if any, each send.
func SendAll(ctx context.Context, addr string, messages []string) error {
	c, err := Dial(ctx, addr)
	if err != nil {
		return err
	}
	defer c.Close()
	if deadline, ok := ctx.Deadline(); ok {
		if err := c.SetDeadline(deadline); err != nil {
			return err
		}
	}
	for i, m := range messages {
		if err := c.Send(m); err != nil {
			return fmt.Errorf("notify: message %d of %d: %w", i+1, len(messages), err)
		}
	}
	return nil
}

// Recorder is an in-memory notification sink: it satisfies the same
// Notify interface as Client but simply accumulates messages. The health
// engine uses one when no collector endpoint is configured, so alert
// transitions are always inspectable after a run.
type Recorder struct {
	mu   sync.Mutex
	msgs []string
}

// Notify records one message. It never fails.
func (r *Recorder) Notify(text string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.msgs = append(r.msgs, text)
	return nil
}

// Messages returns a copy of everything recorded, in arrival order.
func (r *Recorder) Messages() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.msgs...)
}
