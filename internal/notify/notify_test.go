package notify

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func startServer(t *testing.T, h Handler) (*Server, string) {
	t.Helper()
	s := NewServer(h)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func TestSendReceiveOverTCP(t *testing.T) {
	var mu sync.Mutex
	var got []string
	s, addr := startServer(t, func(text string) error {
		mu.Lock()
		got = append(got, text)
		mu.Unlock()
		return nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	msgs := []string{"Header: one\nBody: x\n", "Header: two\n"}
	if err := SendAll(ctx, addr, msgs); err != nil {
		t.Fatal(err)
	}
	if s.Received() != 2 {
		t.Errorf("Received = %d", s.Received())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0] != msgs[0] || got[1] != "Header: two\n" {
		t.Errorf("got = %q", got)
	}
}

func TestDotStuffingRoundTrip(t *testing.T) {
	var mu sync.Mutex
	var got string
	_, addr := startServer(t, func(text string) error {
		mu.Lock()
		got = text
		mu.Unlock()
		return nil
	})
	msg := ".leading dot\n..double dot\nnormal\n"
	ctx := context.Background()
	if err := SendAll(ctx, addr, []string{msg}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got != msg {
		t.Errorf("dot-stuffing broke message: %q != %q", got, msg)
	}
}

func TestHandlerRejectionSurfacesToClient(t *testing.T) {
	_, addr := startServer(t, func(text string) error {
		if strings.Contains(text, "bad") {
			return errors.New("malformed ticket")
		}
		return nil
	})
	ctx := context.Background()
	c, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send("good message\n"); err != nil {
		t.Fatalf("good message rejected: %v", err)
	}
	err = c.Send("bad message\n")
	if err == nil {
		t.Fatal("bad message accepted")
	}
	if !strings.Contains(err.Error(), "malformed ticket") {
		t.Errorf("rejection reason lost: %v", err)
	}
	// The connection survives a rejection.
	if err := c.Send("good again\n"); err != nil {
		t.Fatalf("connection unusable after rejection: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	var count int
	var mu sync.Mutex
	_, addr := startServer(t, func(string) error {
		mu.Lock()
		count++
		mu.Unlock()
		return nil
	})
	const clients, perClient = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			msgs := make([]string, perClient)
			for j := range msgs {
				msgs[j] = fmt.Sprintf("Client: %d\nSeq: %d\n", id, j)
			}
			errs <- SendAll(context.Background(), addr, msgs)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if count != clients*perClient {
		t.Errorf("received %d messages, want %d", count, clients*perClient)
	}
}

func TestServerCloseStopsAccepting(t *testing.T) {
	s, addr := startServer(t, func(string) error { return nil })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := SendAll(ctx, addr, []string{"late\n"}); err == nil {
		t.Error("send to closed server succeeded")
	}
	// Start after Close is rejected.
	if _, err := s.Start("127.0.0.1:0"); err == nil {
		t.Error("Start after Close succeeded")
	}
}

func TestDialFailure(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := Dial(ctx, "127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestNewServerNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewServer(nil) did not panic")
		}
	}()
	NewServer(nil)
}

func TestPipeTransport(t *testing.T) {
	// The protocol works over any net.Conn — here an in-memory pipe.
	var got string
	var mu sync.Mutex
	s := NewServer(func(text string) error {
		mu.Lock()
		got = text
		mu.Unlock()
		return nil
	})
	defer s.Close()
	serverSide, clientSide := net.Pipe()
	go s.HandleConn(serverSide)
	c := NewClient(clientSide)
	defer c.Close()
	if err := c.Send("Via: pipe\n"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got != "Via: pipe\n" {
		t.Errorf("got %q", got)
	}
}

func TestEmptyMessage(t *testing.T) {
	var got *string
	var mu sync.Mutex
	_, addr := startServer(t, func(text string) error {
		mu.Lock()
		got = &text
		mu.Unlock()
		return nil
	})
	if err := SendAll(context.Background(), addr, []string{""}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got == nil {
		t.Fatal("empty message not delivered")
	}
	if *got != "\n" {
		t.Errorf("empty message arrived as %q", *got)
	}
}

func TestSendAllStopsAtFirstError(t *testing.T) {
	var count int
	var mu sync.Mutex
	_, addr := startServer(t, func(text string) error {
		mu.Lock()
		defer mu.Unlock()
		count++
		if count == 2 {
			return errors.New("second message rejected")
		}
		return nil
	})
	err := SendAll(context.Background(), addr, []string{"a\n", "b\n", "c\n"})
	if err == nil {
		t.Fatal("SendAll ignored rejection")
	}
	if !strings.Contains(err.Error(), "message 2 of 3") {
		t.Errorf("error lacks position: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if count != 2 {
		t.Errorf("handler saw %d messages, want 2 (send must stop)", count)
	}
}

func BenchmarkSendReceive(b *testing.B) {
	s := NewServer(func(string) error { return nil })
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(context.Background(), addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	msg := "Ticket-ID: TKT-000001\nVendor: vendor01\nLink: link0001\nEvent: REPAIR_START\nAt-Hours: 1.0\n"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestServeBlockingVariant(t *testing.T) {
	s := NewServer(func(string) error { return nil })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	if err := SendAll(context.Background(), ln.Addr().String(), []string{"via Serve\n"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	if s.Received() != 1 {
		t.Errorf("Received = %d", s.Received())
	}
	// Serve after Close is rejected.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	if err := s.Serve(ln2); err == nil {
		t.Error("Serve after Close succeeded")
	}
}

func TestStartBadAddress(t *testing.T) {
	s := NewServer(func(string) error { return nil })
	defer s.Close()
	if _, err := s.Start("256.256.256.256:0"); err == nil {
		t.Error("bad listen address accepted")
	}
}

func TestClientDeadline(t *testing.T) {
	// A server that never replies: the client's deadline must fire.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 1024)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
			// Swallow input, never acknowledge.
		}
	}()
	c, err := Dial(context.Background(), ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetDeadline(time.Now().Add(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if err := c.Send("hello\n"); err == nil {
		t.Error("send to a mute server succeeded")
	}
}

func TestSendAllPropagatesContextDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 1024)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	if err := SendAll(ctx, ln.Addr().String(), []string{"never acked\n"}); err == nil {
		t.Error("SendAll to a mute server succeeded despite deadline")
	}
}
