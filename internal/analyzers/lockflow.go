package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockFlow is the inter-procedural successor of heaplock. heaplock checks
// each method of a mutex+simulator struct in isolation, so a mutation
// moved into a helper method — annotated "//lint:allow heaplock caller
// holds mu" — drops out of its view entirely; whether every caller really
// holds the mutex goes unverified. LockFlow verifies it: a must-hold
// dataflow over each guarded method's CFG learns the lock state at every
// statement, and a fixpoint over the call graph propagates "this method
// can be entered with the mutex NOT held" (exported methods are unlocked
// entry points by convention; unexported ones inherit it from non-closure
// call sites where the caller had not locked). A heap mutation is
// reported only when an unlocked path actually reaches it — with the
// caller chain named in the message — so a correctly confined helper
// stays silent no matter what its //lint:allow comment claims.
//
// Scope and conventions (DESIGN §12): only methods of structs owning both
// a mutex and a guarded shared resource are analyzed. Two resource kinds
// are guarded: *des.Simulator — the shape that shares a simulator across
// goroutines (the PR-2 race class) — and *serve.Server, whose Register
// and Start calls belong to the single-goroutine construction phase
// (serve's lifecycle contract), so a struct sharing a Server behind a
// mutex must hold it around them. Plain functions driving a resource
// single-threaded (setup code, the sweep runner) are out of scope.
// Mutations are matched type-wise on ANY expression of a guarded type, so
// `sim := e.sim; sim.After(...)` is seen where heaplock's receiver-field
// syntax match is not. Function literals run inside the single-threaded
// DES event loop: call sites inside closures do not transmit unlocked
// reachability, and a helper called only from closures is exempt.
var LockFlow = &ModuleAnalyzer{
	Name: "lockflow",
	Doc:  "guarded-resource mutations (DES heap, serve.Server lifecycle) must be unreachable from call paths that do not hold the owning mutex",
	Contract: `On any struct owning both a mutex and a guarded shared resource
(*des.Simulator or *serve.Server), every call path from an unlocked entry
point (exported methods, by convention) to a resource mutation — a des
heap mutation (Schedule/After/Cancel/Every/Run/Step/Halt/Reset) or a
serve lifecycle call (Register/Start), on ANY expression of the guarded
type, aliases included — must acquire the mutex along the way. Unlike
heaplock, which checks one method at a time, lockflow follows calls
between methods: a helper annotated "caller holds mu" is verified against
its actual callers and reported with the unlocked caller chain if the
claim is false. Call sites inside function literals are exempt (they run
on the single-threaded DES event loop).
Example fixture: internal/analyzers/testdata/src/lockflow/bad/bad.go`,
	Run: runLockFlow,
}

// serveMutators are the serve.Server methods confined to the single-
// goroutine construction phase: Register appends to an unsynchronized
// route table and Start transitions the lifecycle, so a struct sharing a
// Server across goroutines must confine both behind its mutex.
var serveMutators = map[string]bool{"Register": true, "Start": true}

// resourceKind is one guarded shared-resource field type: owning it
// together with a mutex puts a struct in lockflow's scope, and the
// mutator set names the calls that must be reached locked.
type resourceKind struct {
	pkgPath, typeName string
	mutators          map[string]bool
	consequence       string // why an unlocked mutation is a bug
}

var lockflowKinds = []resourceKind{
	{desPath, "Simulator", heapMutators, "concurrent entry corrupts the event heap"},
	{servePath, "Server", serveMutators, "Register and Start are unsynchronized construction-phase calls"},
}

// display renders the kind as it appears in diagnostics, e.g.
// "des.Simulator".
func (k *resourceKind) display() string {
	return k.pkgPath[strings.LastIndexByte(k.pkgPath, '/')+1:] + "." + k.typeName
}

// lockSite is one resource mutation inside a guarded method, with the
// lock state the must-hold analysis proved at that point.
type lockSite struct {
	call   *ast.CallExpr
	kind   *resourceKind
	method string // the mutator name on the guarded type
	held   bool
}

// lockInfo is one guarded method's lockflow summary.
type lockInfo struct {
	node      *CGNode
	guarded   *lockedSimType
	mutexName string
	recvName  string
	sites     []lockSite
	// heldAt maps each outgoing call edge to whether the receiver's
	// mutex is (must-)held at the call site.
	heldAt map[*CGEdge]bool
	// unlockedReach: some call path enters this method with the mutex
	// not held; via is one witness chain of caller names.
	unlockedReach bool
	via           string
}

func runLockFlow(pass *ModulePass) error {
	m := pass.Mod
	g := m.Graph()

	guarded := make(map[*types.TypeName]*lockedSimType)
	for _, pkg := range m.Pkgs {
		for _, t := range findLockedResTypes(pkg.Types) {
			guarded[t.named.Obj()] = t
		}
	}
	if len(guarded) == 0 {
		return nil
	}

	infos := make(map[*CGNode]*lockInfo)
	for _, n := range g.Order {
		if li := analyzeLockMethod(n, guarded); li != nil {
			infos[n] = li
		}
	}

	// Unlocked-reachability fixpoint. Exported methods seed it: external
	// callers hold nothing. An unheld, non-closure call edge between
	// guarded methods transmits it.
	for _, li := range infos {
		if li.node.Fn.Exported() {
			li.unlockedReach = true
			li.via = li.node.Fn.Name()
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Order {
			li := infos[n]
			if li == nil || !li.unlockedReach {
				continue
			}
			for _, e := range n.Out {
				if e.InClosure || li.heldAt[e] {
					continue
				}
				cal := infos[e.To]
				if cal == nil || cal.unlockedReach {
					continue
				}
				cal.unlockedReach = true
				cal.via = li.via + " -> " + cal.node.Fn.Name()
				changed = true
			}
		}
	}

	for _, n := range g.Order {
		li := infos[n]
		if li == nil || !li.unlockedReach {
			continue
		}
		for _, s := range li.sites {
			if s.held {
				continue
			}
			pass.Reportf(s.call.Pos(),
				"%s.%s runs without holding %s.%s on the unlocked path %s: %s (lock first, or keep every caller on a locked path)",
				s.kind.display(), s.method, li.recvName, li.mutexName, li.via, s.kind.consequence)
		}
	}
	return nil
}

// analyzeLockMethod computes one guarded method's mutation sites and
// per-call-edge lock state via the must-hold dataflow, or returns nil for
// functions that are not guarded-type methods.
func analyzeLockMethod(n *CGNode, guarded map[*types.TypeName]*lockedSimType) *lockInfo {
	info := n.Pkg.Info
	if n.Decl.Recv == nil || len(n.Decl.Recv.List) != 1 || len(n.Decl.Recv.List[0].Names) == 0 {
		return nil
	}
	named := baseNamed(info.TypeOf(n.Decl.Recv.List[0].Type))
	if named == nil {
		return nil
	}
	t := guarded[named.Obj()]
	if t == nil {
		return nil
	}
	recvName := n.Decl.Recv.List[0].Names[0].Name
	if recvName == "_" {
		return nil
	}
	li := &lockInfo{
		node: n, guarded: t, mutexName: firstKey(t.mutexes),
		recvName: recvName, heldAt: make(map[*CGEdge]bool),
	}

	cfg := n.CFG()
	flow := Flow[int]{
		Dir:      Forward,
		Boundary: func() int { return 0 },
		Init:     func() int { return 1 }, // top for a must-analysis
		Transfer: func(b *Block, in int) int {
			held := in != 0
			for _, nd := range b.Nodes {
				held = li.transferNode(nd, held, nil)
			}
			if held {
				return 1
			}
			return 0
		},
		Join:  func(a, b int) int { return a & b },
		Equal: func(a, b int) bool { return a == b },
	}
	heldIn := Solve(cfg, flow)

	siteOf := make(map[*ast.CallExpr]*CGEdge, len(n.Out))
	for _, e := range n.Out {
		siteOf[e.Site] = e
	}
	for _, b := range cfg.Blocks {
		held := heldIn[b] != 0
		for _, nd := range b.Nodes {
			held = li.transferNode(nd, held, func(call *ast.CallExpr, h bool) {
				if e, ok := siteOf[call]; ok {
					li.heldAt[e] = h
				}
				if kind, method, ok := resMutatorCall(info, call); ok {
					li.sites = append(li.sites, lockSite{call: call, kind: kind, method: method, held: h})
				}
			})
		}
	}
	return li
}

// transferNode threads the held flag through one CFG node, invoking visit
// (if non-nil) for every call expression outside function literals with
// the held state at that point. Deferred statements are skipped entirely:
// a deferred Unlock releases at return, so the lock stays held for the
// remainder of the body.
func (li *lockInfo) transferNode(nd ast.Node, held bool, visit func(*ast.CallExpr, bool)) bool {
	ast.Inspect(nd, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if field, method, ok := recvFieldCall(c, li.recvName); ok && li.guarded.mutexes[field] {
				switch method {
				case "Lock", "RLock":
					held = true
				case "Unlock", "RUnlock":
					held = false
				}
				return true
			}
			if visit != nil {
				visit(c, held)
			}
		}
		return true
	})
	return held
}

// resMutatorCall matches a call of a guarded-kind mutator on any
// expression of the guarded type — the receiver field, a local alias, a
// parameter — unlike heaplock's stricter recv.field.method syntax.
func resMutatorCall(info *types.Info, call *ast.CallExpr) (*resourceKind, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return nil, "", false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil, "", false
	}
	for i := range lockflowKinds {
		k := &lockflowKinds[i]
		if named.Obj().Pkg().Path() == k.pkgPath && named.Obj().Name() == k.typeName &&
			k.mutators[sel.Sel.Name] {
			return k, sel.Sel.Name, true
		}
	}
	return nil, "", false
}

// findLockedResTypes scans the package scope for struct types declaring
// both a mutex field and a guarded-resource pointer field — lockflow's
// wider analogue of findLockedSimTypes (heaplock stays des-only).
func findLockedResTypes(pkg *types.Package) []*lockedSimType {
	var out []*lockedSimType
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		t := &lockedSimType{named: named, mutexes: map[string]bool{}, simFields: map[string]bool{}}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if isMutexType(f.Type()) {
				t.mutexes[f.Name()] = true
			}
			if isGuardedResPtr(f.Type()) {
				t.simFields[f.Name()] = true
			}
		}
		if len(t.mutexes) > 0 && len(t.simFields) > 0 {
			out = append(out, t)
		}
	}
	return out
}

// isGuardedResPtr reports whether t is a pointer to any lockflow-guarded
// resource type.
func isGuardedResPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	for i := range lockflowKinds {
		k := &lockflowKinds[i]
		if named.Obj().Pkg().Path() == k.pkgPath && named.Obj().Name() == k.typeName {
			return true
		}
	}
	return false
}
