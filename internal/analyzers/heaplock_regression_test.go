package analyzers

// The heaplock regression pair: PR 2 fixed remediation.Engine.Submit
// scheduling on the shared DES heap after releasing the engine mutex —
// a race the type system cannot see and reviewers missed once already.
// The fixture under testdata/src/heaplock/regression reintroduces that
// exact call pattern; the static check below must flag it, and the real
// (fixed) remediation package must stay clean. The dynamic counterpart is
// remediation.TestStatsConsistentUnderConcurrentSubmit, which the tier-1
// gate runs under the race detector: reintroducing the bug in the real
// engine trips both layers.

import "testing"

func TestHeapLockRegressionFixtureFlagged(t *testing.T) {
	pkg := loadFixture(t, "heaplock/regression")
	diags := pkg.Analyze([]*Analyzer{HeapLock})
	assertDiags(t, diags, []string{
		"regression.go:30:2 heaplock", // sim.After after mu.Unlock — the PR-2 bug
	})
	if !diagsMention(diags, "race on the event heap") {
		t.Errorf("diagnostic should explain the race: %q", diagKeys(diags))
	}
}

func TestHeapLockRealRemediationClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads a package via go list")
	}
	pkgs, err := Load("../..", []string{"dcnr/internal/remediation"})
	if err != nil {
		t.Fatalf("loading remediation: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if diags := pkgs[0].Analyze([]*Analyzer{HeapLock}); len(diags) != 0 {
		t.Errorf("fixed remediation engine should be clean, got %q", diagKeys(diags))
	}
}
