package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// listPackage is the subset of `go list -json` output the driver needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
}

// Load enumerates the packages matching patterns (relative to dir), parses
// and type-checks each one, and returns them ready for analysis. It shells
// out to `go list -export -deps -json`, so dependencies are resolved from
// compiler export data rather than re-type-checked from source — the same
// package graph the build uses, at build speed.
func Load(dir string, patterns []string) ([]*Package, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	exports := make(map[string]string)
	importMap := make(map[string]string)
	var targets []*listPackage
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var out []*Package
	for _, p := range targets {
		pkg, err := typeCheck(fset, imp, p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Package is one parsed, type-checked package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyze runs the analyzers over the package and returns the findings.
func (p *Package) Analyze(list []*Analyzer) []Diagnostic {
	return RunAnalyzers(p.Fset, p.Files, p.Types, p.Info, list)
}

// Run is the whole pipeline: load the packages matching patterns and run
// every analyzer in list over each, returning findings sorted by position
// with file paths relative to dir where possible.
func Run(dir string, patterns []string, list []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, pkg.Analyze(list)...)
	}
	abs, err := filepath.Abs(dir)
	if err == nil {
		for i := range diags {
			if rel, err := filepath.Rel(abs, diags[i].File); err == nil && filepath.IsLocal(rel) {
				diags[i].File = rel
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// goList invokes `go list -export -deps -json` and decodes the package
// stream. The -export flag populates build-cache export data for every
// dependency, which is what lets the type checker resolve imports without
// re-compiling the world from source.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// typeCheck parses the package's files and runs the go/types checker over
// them with dependencies resolved through imp.
func typeCheck(fset *token.FileSet, imp types.Importer, p *listPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
	}
	return &Package{Path: p.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
