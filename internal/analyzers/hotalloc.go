package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// HotAlloc turns the repo's bench-only "0 allocs/op" invariant into a
// lint gate. A function whose doc comment carries a `//hot:noalloc`
// directive declares its body a hot region: the compiler's escape
// analysis must prove no value in it escapes to the heap. The analyzer
// re-runs the compiler with `-gcflags=<pkg>=-m` for each package that
// declares a region (the build cache replays the diagnostics, so repeat
// runs are cheap) and reports every "escapes to heap" / "moved to heap"
// diagnostic that lands inside a region.
//
// This is deliberately the compiler's own verdict, not a reimplementation
// of escape analysis: if gc says a line allocates, the bench gate would
// eventually say the same thing — at merge time instead of review time.
// Intentional allocations inside a hot region (error paths, one-time
// growth) are suppressed with //lint:allow hotalloc on the line.
//
// Because it shells out to `go build`, HotAlloc is not in the default
// AllModule catalog; the driver runs it behind -hot (`make lint-hot`).
var HotAlloc = &ModuleAnalyzer{
	Name: "hotalloc",
	Doc:  "//hot:noalloc regions must be free of compiler-reported heap escapes",
	Contract: `A function whose doc comment contains //hot:noalloc declares its body
an allocation-free region: the gc compiler's escape analysis (re-run via
go build -gcflags=<pkg>=-m; cached builds replay diagnostics) must report
no "escapes to heap"/"moved to heap" inside it. Annotated in this repo:
the DES scheduler hot path, obs.SpanRing record paths, and journal
Lane.Record — the paths whose 0 allocs/op invariant the benchmarks gate.
Intentional cold-path allocations take //lint:allow hotalloc on the line.
Runs behind dcnrlint -hot / make lint-hot because it shells out to the
compiler. Example fixture: internal/analyzers/testdata/hotallocmod/`,
	Run: runHotAlloc,
}

// HotDirective marks a function body as a no-allocation region when it
// appears in the function's doc comment.
const HotDirective = "//hot:noalloc"

// hotRegion is one annotated function body, in file-coordinate form so
// compiler diagnostics can be matched against it.
type hotRegion struct {
	file       string // absolute, cleaned path
	start, end int    // body line span, inclusive
	fn         string
}

func runHotAlloc(pass *ModulePass) error {
	m := pass.Mod
	regions := make(map[string][]hotRegion) // package path → regions
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasHotDirective(fd) {
					continue
				}
				start := m.Fset.Position(fd.Body.Lbrace)
				end := m.Fset.Position(fd.Body.Rbrace)
				regions[pkg.Path] = append(regions[pkg.Path], hotRegion{
					file:  filepath.Clean(start.Filename),
					start: start.Line,
					end:   end.Line,
					fn:    funcDisplayName(fd),
				})
			}
		}
	}
	if len(regions) == 0 {
		return nil
	}

	paths := make([]string, 0, len(regions))
	for p := range regions {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	for _, pkgPath := range paths {
		diags, err := escapeDiagnostics(m.Dir, pkgPath)
		if err != nil {
			return err
		}
		for _, d := range diags {
			for _, r := range regions[pkgPath] {
				if d.file != r.file || d.line < r.start || d.line > r.end {
					continue
				}
				pass.reportAt(token.Position{Filename: d.file, Line: d.line, Column: d.col},
					"heap allocation in //hot:noalloc region %s: %s (restructure to keep it on the stack, or //lint:allow hotalloc for an intentional cold path)",
					r.fn, d.msg)
				break
			}
		}
	}
	return nil
}

func hasHotDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, HotDirective)
		if ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
			return true
		}
	}
	return false
}

func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		return "(" + typeExprString(fd.Recv.List[0].Type) + ")." + fd.Name.Name
	}
	return fd.Name.Name
}

func typeExprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.StarExpr:
		return "*" + typeExprString(v.X)
	case *ast.IndexExpr:
		return typeExprString(v.X)
	}
	return "?"
}

// escapeDiag is one parsed compiler diagnostic.
type escapeDiag struct {
	file      string
	line, col int
	msg       string
}

// escapeLine matches `path/to/file.go:12:34: message`.
var escapeLine = regexp.MustCompile(`^(.*\.go):(\d+):(\d+): (.*)$`)

// escapeDiagnostics compiles one package with -m and returns its
// heap-escape diagnostics with absolute file paths.
func escapeDiagnostics(dir, pkgPath string) ([]escapeDiag, error) {
	cmd := exec.Command("go", "build", "-gcflags="+pkgPath+"=-m", pkgPath)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m %s: %v\n%s", pkgPath, err, out)
	}
	// The compiler prints paths relative to the working directory; region
	// spans come from the FileSet, which holds absolute paths.
	absDir, err := filepath.Abs(dir)
	if err != nil {
		absDir = dir
	}
	var diags []escapeDiag
	for _, line := range strings.Split(string(out), "\n") {
		mt := escapeLine.FindStringSubmatch(line)
		if mt == nil {
			continue
		}
		msg := mt[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := mt[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(absDir, file)
		}
		ln, _ := strconv.Atoi(mt[2])
		col, _ := strconv.Atoi(mt[3])
		diags = append(diags, escapeDiag{file: filepath.Clean(file), line: ln, col: col, msg: msg})
	}
	return diags, nil
}
