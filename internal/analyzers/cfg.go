package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// This file lowers a function body to a control-flow graph of basic
// blocks — the substrate the dataflow solver (dataflow.go) iterates over.
// The lowering is intentionally source-shaped: every statement of the
// body appears in exactly one block, in execution order, and control
// expressions (an if condition, a switch tag, a range operand) are
// appended to the block that evaluates them, so transfer functions see
// every expression the program evaluates without re-walking the AST.
//
// Modeling decisions, chosen for the analyzers this engine serves:
//
//   - Function literals are opaque values: their bodies are not lowered
//     into the enclosing CFG (closures run at an unknown time, usually
//     inside the DES event loop, which has its own concurrency contract).
//   - defer statements appear at their lexical position. The deferred
//     call's effect-at-return is the analyzer's business (lockflow treats
//     a deferred Unlock as "held until exit", matching Go's semantics for
//     the patterns this repo uses).
//   - panics and runtime aborts are not modeled as edges; the Exit block
//     is reached by returns and by falling off the end.
type CFG struct {
	// Blocks holds every basic block; Blocks[0] is the entry. The Exit
	// block is included (always last).
	Blocks []*Block
	// Exit is the distinguished exit block: returns and the fall-off end
	// of the body edge here. It holds no statements.
	Exit *Block
}

// Block is one basic block: a straight-line run of AST nodes with a
// single entry and a set of successor edges.
type Block struct {
	Index int
	// Nodes are the statements and control expressions of the block, in
	// execution order. Entries are ast.Stmt or ast.Expr values.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// cfgBuilder carries the under-construction graph plus the break,
// continue, goto, and fallthrough context of the statement walk.
type cfgBuilder struct {
	cfg *CFG
	// cur is the block receiving statements; nil after a terminating
	// statement (return, break, goto) until the next label or join point.
	cur *Block

	loops  []loopCtx
	labels map[string]*Block
	gotos  []pendingGoto
}

// loopCtx is one enclosing breakable construct: loops carry both targets,
// switch/select only brk.
type loopCtx struct {
	label string
	brk   *Block
	cont  *Block // nil for switch/select
}

type pendingGoto struct {
	from  *Block
	label string
}

// BuildCFG lowers fn's body to a control-flow graph. fn must have a body.
func BuildCFG(fn *ast.FuncDecl) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: map[string]*Block{}}
	b.cur = b.newBlock()
	exit := &Block{}
	b.stmtList(fn.Body.List)
	b.edge(b.cur, exit)
	b.labels[retLabel] = exit
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.edge(g.from, target)
		}
	}
	exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, exit)
	b.cfg.Exit = exit
	for _, blk := range b.cfg.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edge links from → to; a nil from (terminated path) adds nothing.
func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// add appends a node to the current block, opening an unreachable block
// if the path has terminated (so dead statements still exist for
// reporting passes).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// findLoop resolves a break/continue target; label "" means innermost.
// cont selects the continue target (skipping switch/select contexts).
func (b *cfgBuilder) findLoop(label string, cont bool) *Block {
	for i := len(b.loops) - 1; i >= 0; i-- {
		l := b.loops[i]
		if label != "" && l.label != label {
			continue
		}
		if cont {
			if l.cont != nil {
				return l.cont
			}
			continue
		}
		return l.brk
	}
	return nil
}

// stmt lowers one statement. label is the pending label when the
// statement is the body of a LabeledStmt (so break/continue can name it).
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		target := b.newBlock()
		b.edge(b.cur, target)
		b.cur = target
		b.labels[s.Label.Name] = target
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.ReturnStmt:
		b.add(s)
		b.returnEdge()

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findLoop(labelName(s.Label), false); t != nil {
				b.add(s)
				b.edge(b.cur, t)
				b.cur = nil
			}
		case token.CONTINUE:
			if t := b.findLoop(labelName(s.Label), true); t != nil {
				b.add(s)
				b.edge(b.cur, t)
				b.cur = nil
			}
		case token.GOTO:
			b.add(s)
			if b.cur != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by the switch lowering (the case body's fall edge);
			// nothing terminates here.
			b.add(s)
		}

	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmtList(s.Body.List)
		afterThen := b.cur
		var afterElse *Block
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else, "")
			afterElse = b.cur
		}
		done := b.newBlock()
		b.edge(afterThen, done)
		if s.Else != nil {
			b.edge(afterElse, done)
		} else {
			b.edge(cond, done)
		}
		b.cur = done

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		done := &Block{}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
			cont = post
		}
		body := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, done)
		}
		b.loops = append(b.loops, loopCtx{label: label, brk: done, cont: cont})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, cont)
		b.loops = b.loops[:len(b.loops)-1]
		b.placeBlock(done)

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(b.cur, head)
		// The RangeStmt node itself is the head's "statement": transfer
		// functions read X and the key/value definitions from it.
		head.Nodes = append(head.Nodes, s)
		done := &Block{}
		body := b.newBlock()
		b.edge(head, body)
		b.edge(head, done)
		b.loops = append(b.loops, loopCtx{label: label, brk: done, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, head)
		b.loops = b.loops[:len(b.loops)-1]
		b.placeBlock(done)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(s.Body.List, label, func(c ast.Stmt) ([]ast.Node, []ast.Stmt, bool) {
			cc := c.(*ast.CaseClause)
			exprs := make([]ast.Node, len(cc.List))
			for i, e := range cc.List {
				exprs[i] = e
			}
			return exprs, cc.Body, cc.List == nil
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(s.Body.List, label, func(c ast.Stmt) ([]ast.Node, []ast.Stmt, bool) {
			cc := c.(*ast.CaseClause)
			return nil, cc.Body, cc.List == nil
		})

	case *ast.SelectStmt:
		sel := b.cur
		if sel == nil {
			sel = b.newBlock()
			b.cur = sel
		}
		done := &Block{}
		b.loops = append(b.loops, loopCtx{label: label, brk: done})
		ends := make([]*Block, 0, len(s.Body.List))
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			caseB := b.newBlock()
			b.edge(sel, caseB)
			b.cur = caseB
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			if b.cur != nil {
				ends = append(ends, b.cur)
			}
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.placeBlockFrom(done, ends, nil)

	case *ast.DeclStmt, *ast.AssignStmt, *ast.ExprStmt, *ast.IncDecStmt,
		*ast.SendStmt, *ast.GoStmt, *ast.DeferStmt, *ast.EmptyStmt:
		b.add(s)
	}
}

// returnEdge terminates the current path into the (future) exit block.
// The exit block does not exist yet while building, so returns are staged
// as gotos to a reserved label.
func (b *cfgBuilder) returnEdge() {
	if b.cur != nil {
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: retLabel})
	}
	b.cur = nil
}

// retLabel is the reserved goto label return statements target; BuildCFG
// binds it to the exit block.
const retLabel = "\x00return"

// switchClauses lowers the case clauses of a switch or type switch. split
// extracts each clause's guard expressions, body, and default-ness. Guard
// expressions are evaluated in the dispatch block (they are, dynamically,
// evaluated until one matches — the CFG approximates with "all").
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, label string,
	split func(ast.Stmt) ([]ast.Node, []ast.Stmt, bool)) {

	dispatch := b.cur
	if dispatch == nil {
		dispatch = b.newBlock()
		b.cur = dispatch
	}
	done := &Block{}
	b.loops = append(b.loops, loopCtx{label: label, brk: done})

	// Create every case's entry block first so fallthrough can edge to
	// the lexically next case.
	entries := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		exprs, _, isDefault := split(c)
		for _, e := range exprs {
			dispatch.Nodes = append(dispatch.Nodes, e)
		}
		entries[i] = b.newBlock()
		b.edge(dispatch, entries[i])
		if isDefault {
			hasDefault = true
		}
	}
	ends := make([]*Block, 0, len(clauses))
	for i, c := range clauses {
		_, body, _ := split(c)
		b.cur = entries[i]
		b.stmtList(body)
		if b.cur == nil {
			continue
		}
		if n := len(b.cur.Nodes); n > 0 {
			if br, ok := b.cur.Nodes[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(entries) {
				b.edge(b.cur, entries[i+1])
				continue
			}
		}
		ends = append(ends, b.cur)
	}
	b.loops = b.loops[:len(b.loops)-1]
	var extra *Block
	if !hasDefault {
		extra = dispatch
	}
	b.placeBlockFrom(done, ends, extra)
}

// placeBlock registers a staged join block (created with &Block{} so break
// statements could target it before it had an index) and makes it current.
func (b *cfgBuilder) placeBlock(done *Block) {
	done.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, done)
	b.cur = done
}

// placeBlockFrom places a staged join block and edges every end block
// (plus the optional extra predecessor) into it.
func (b *cfgBuilder) placeBlockFrom(done *Block, ends []*Block, extra *Block) {
	for _, e := range ends {
		b.edge(e, done)
	}
	if extra != nil {
		b.edge(extra, done)
	}
	b.placeBlock(done)
}

func labelName(id *ast.Ident) string {
	if id == nil {
		return ""
	}
	return id.Name
}

// String renders the CFG compactly for tests and debugging:
// "b0[stmt kinds] -> b1 b2" per line.
func (c *CFG) String() string {
	var sb strings.Builder
	for _, blk := range c.Blocks {
		fmt.Fprintf(&sb, "b%d[", blk.Index)
		for i, n := range blk.Nodes {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(nodeKind(n))
		}
		sb.WriteByte(']')
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		if blk == c.Exit {
			sb.WriteString(" (exit)")
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// nodeKind names an AST node for CFG string renderings.
func nodeKind(n ast.Node) string {
	switch n := n.(type) {
	case *ast.AssignStmt:
		return "assign"
	case *ast.DeclStmt:
		return "decl"
	case *ast.ExprStmt:
		return "expr"
	case *ast.IncDecStmt:
		return "incdec"
	case *ast.ReturnStmt:
		return "return"
	case *ast.BranchStmt:
		return strings.ToLower(n.Tok.String())
	case *ast.RangeStmt:
		return "range"
	case *ast.SendStmt:
		return "send"
	case *ast.GoStmt:
		return "go"
	case *ast.DeferStmt:
		return "defer"
	case ast.Expr:
		return "cond"
	}
	return "stmt"
}
