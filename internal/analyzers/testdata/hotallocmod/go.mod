module hotallocmod

go 1.24
