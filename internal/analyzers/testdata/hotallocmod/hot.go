// Package hotallocmod is the hotalloc golden fixture: a standalone module
// (the analyzer shells out to `go build`, so it needs a real buildable
// module) with one escaping hot region, one clean one, one unannotated
// allocator, and one allowed escape.
package hotallocmod

// BadHot violates its annotation: returning the pointer forces the
// allocation onto the heap, and the compiler says so.
//
//hot:noalloc
func BadHot() *int {
	x := new(int)
	*x = 1
	return x
}

// GoodHot stays on the stack: pure arithmetic over a borrowed slice.
//
//hot:noalloc
func GoodHot(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// ColdAlloc allocates freely — no annotation, no finding.
func ColdAlloc(n int) []int {
	return make([]int, n)
}

// AllowedHot documents an intentional cold-path escape inside a hot
// region with the analyzer's escape hatch.
//
//hot:noalloc
func AllowedHot() *byte {
	b := new(byte) //lint:allow hotalloc intentional cold-path escape
	return b
}
