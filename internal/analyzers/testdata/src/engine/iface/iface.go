// Package iface is the call-graph fixture for interface resolution: a
// module-defined interface with one value-receiver and one
// pointer-receiver implementation. Run's d.Do() call must expand to both
// concrete methods as Dynamic edges, each exactly once.
package iface

type Doer interface{ Do() }

type ByValue struct{}

func (ByValue) Do() {}

type ByPointer struct{}

func (*ByPointer) Do() {}

func Run(d Doer) { d.Do() }
