// Package chain is the engine's summary-propagation fixture: two 3-deep
// call chains, one carrying wall-clock taint UP through returns, one
// carrying a sink obligation UP through parameters. The engine test
// asserts the computed summaries directly, independent of any analyzer's
// reporting.
package chain

import (
	"time"

	"dcnr/internal/obs/journal"
)

// Return chain: C reads the wall clock, B forwards it, A's result must be
// summarized wall-tainted after three propagation hops.
func C() float64 { return float64(time.Now().UnixNano()) }

func B() float64 { return C() }

func A() float64 { return B() }

// Parameter chain: C2 writes its record parameter to the journal sink,
// so A2's summary must mark its record parameter sink-bound two hops up.
func C2(l *journal.Lane, r journal.Record) { l.Record(r) }

func B2(l *journal.Lane, r journal.Record) { C2(l, r) }

func A2(l *journal.Lane, r journal.Record) { B2(l, r) }

// Mixed: passes a clean constant through the sink chain — no taint, no
// finding, but the sink summary still propagates.
func Clean(l *journal.Lane) { A2(l, journal.Record{Time: 1}) }
