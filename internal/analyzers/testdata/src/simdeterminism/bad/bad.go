// Package bad exercises every simdeterminism violation: wall-clock reads,
// the math/rand global source, and map-iteration-ordered output, in a
// package that imports the DES kernel (which puts it in simulation scope).
package bad

import (
	"fmt"
	"math/rand"
	"time"

	"dcnr/internal/des"
)

// Timestamp stamps an event with the wall clock instead of simulation time.
func Timestamp(sim *des.Simulator) float64 {
	t := time.Now()
	return float64(t.Unix()) + sim.Now()
}

// Jitter draws delays from the global math/rand source.
func Jitter() float64 { return rand.Float64() }

// Names returns device names in map iteration order.
func Names(devices map[string]int) []string {
	var out []string
	for name := range devices {
		out = append(out, name)
	}
	return out
}

// Dump prints directly while ranging over a map.
func Dump(devices map[string]int) {
	for name, n := range devices {
		fmt.Println(name, n)
	}
}

// Stream sends map entries on ch in iteration order.
func Stream(devices map[string]int, ch chan string) {
	for name := range devices {
		ch <- name
	}
}
