// Wall-clock reads nested in log/slog call arguments are exempt without a
// directive: every log record carries its own wall timestamp, so a time
// read feeding a log attribute is telemetry by construction.
package good

import (
	"log/slog"
	"time"

	"dcnr/internal/des"
)

// LogHandlerCost logs a handler's wall-clock cost; the time.Since inside
// the slog call needs no //lint:allow.
func LogHandlerCost(l *slog.Logger, sim *des.Simulator, h des.Handler) {
	start := time.Now() //lint:allow simdeterminism wall-clock telemetry
	h(sim.Now())
	l.Info("handler done", "sim_hours", sim.Now(), "wall_ms", time.Since(start).Milliseconds())
}
