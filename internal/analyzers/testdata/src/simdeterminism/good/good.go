// Package good is simulation-scope code that stays deterministic: seeded
// simrand streams, simulation time from the kernel, sorted map output, and
// an explicitly allowed wall-clock telemetry site.
package good

import (
	"sort"
	"time"

	"dcnr/internal/des"
	"dcnr/internal/simrand"
)

// Delay draws from a seeded stream, not math/rand.
func Delay(rng *simrand.Stream) float64 { return rng.Exp(1) }

// Names sorts the slice it builds from map iteration.
func Names(devices map[string]int) []string {
	var out []string
	for name := range devices {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Totals accumulates into a map: insertion order cannot leak out.
func Totals(devices map[string]int) map[string]int {
	out := make(map[string]int, len(devices))
	for name, n := range devices {
		out[name] += n
	}
	return out
}

// WallCost measures a handler's wall-clock cost for telemetry, the
// sanctioned use of the wall clock in simulation code.
func WallCost(sim *des.Simulator, h des.Handler) time.Duration {
	start := time.Now() //lint:allow simdeterminism wall-clock telemetry
	h(sim.Now())
	return time.Since(start) //lint:allow simdeterminism wall-clock telemetry
}
