// Servers come from serve.New and are held by pointer: a nil *Server is
// inert (Register and Shutdown no-op, Start errors), so callers can wire
// serving unconditionally.
package good

import (
	"net/http"

	"dcnr/internal/serve"
)

// Gateway holds its server by pointer, constructor-built.
type Gateway struct {
	api *serve.Server
}

// NewGateway mounts routes during the single-goroutine construction
// phase, per the serve lifecycle contract.
func NewGateway(addr string) *Gateway {
	g := &Gateway{api: serve.New(serve.Options{Addr: addr})}
	g.api.Register("/ping", http.NotFoundHandler())
	return g
}

// Close releases the server through its nil-safe Shutdown.
func (g *Gateway) Close() { g.api.Shutdown() }
