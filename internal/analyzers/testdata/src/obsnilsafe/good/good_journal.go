// The causal journal follows the obs contract: built by journal.New, lanes
// handed out by Journal.Lane, both held by pointer, nil meaning journaling
// is off and every record is dropped for free.
package good

import "dcnr/internal/obs/journal"

// Recorder holds the journal and one lane by pointer; both are nil when
// the run is not journaled.
type Recorder struct {
	j    *journal.Journal
	lane *journal.Lane
}

// NewRecorder wires a recorder; j may be nil (the no-op journal, whose
// Lane method returns the no-op lane).
func NewRecorder(j *journal.Journal) *Recorder {
	return &Recorder{j: j, lane: j.Lane("events")}
}

// Note stages one record through the nil-safe lane. Record and ID are
// plain data and move by value freely.
func (r *Recorder) Note(rec journal.Record) journal.ID {
	return r.lane.Record(rec)
}

// Fresh builds a journal the sanctioned way.
func Fresh() *journal.Journal { return journal.New() }
