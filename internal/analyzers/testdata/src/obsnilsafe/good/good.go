// Package good wires metrics through the Registry and holds them by
// pointer, so a nil registry yields nil, no-op metrics end to end.
package good

import "dcnr/internal/obs"

// Collector reports through registry-owned metrics.
type Collector struct {
	events  *obs.Counter
	backlog *obs.Gauge
}

// NewCollector registers the metrics; reg may be nil for uninstrumented
// runs, which hands out nil (no-op) metrics.
func NewCollector(reg *obs.Registry) *Collector {
	return &Collector{
		events:  reg.Counter("events_total"),
		backlog: reg.Gauge("backlog"),
	}
}

// Record goes through the nil-safe methods only.
func (c *Collector) Record(depth float64) {
	c.events.Inc()
	c.backlog.Set(depth)
}
