// The metric timeline follows the obs contract: built by timeline.New,
// lanes handed out by Timeline.Lane, both held by pointer, nil meaning
// sampling is off and every sample is dropped for free.
package good

import "dcnr/internal/obs/timeline"

// Dashboard holds the timeline and one lane by pointer; both are nil
// when the run is not sampled.
type Dashboard struct {
	tl   *timeline.Timeline
	lane *timeline.Lane
}

// NewDashboard wires a dashboard; tl may be nil (the no-op timeline,
// whose Lane method returns the no-op lane).
func NewDashboard(tl *timeline.Timeline) *Dashboard {
	return &Dashboard{tl: tl, lane: tl.Lane("des_events_fired_total")}
}

// Mark stages one sample through the nil-safe lane. Sample is plain
// data and moves by value freely.
func (d *Dashboard) Mark(s timeline.Sample) {
	d.lane.Record(s.Col, s.T, s.V)
}

// FreshTimeline builds a timeline the sanctioned way.
func FreshTimeline() *timeline.Timeline { return timeline.New(24) }
