// The health engine follows the same contract as obs metrics: built by
// its constructor, held by pointer, nil meaning uninstrumented no-op.
package good

import "dcnr/internal/obs/health"

// Health owns a constructor-built engine.
type Health struct {
	engine *health.Engine
}

// NewHealth builds the engine through health.New, which validates rules.
func NewHealth(targets health.Targets) (*Health, error) {
	eng, err := health.New(targets, health.DefaultRules())
	if err != nil {
		return nil, err
	}
	return &Health{engine: eng}, nil
}

// Healthy reads through the nil-safe pointer.
func (h *Health) Healthy() bool { return h.engine.Healthy() }
