// Observability fan-out wiring: one bundle of optional sinks, each
// guarded on its own nil check before any method that is not nil-safe is
// called on it. This pins the facade's fix for the classic wiring bug —
// gating health.SetLogger behind `logger != nil` while the engine itself
// might be nil. Each sink's guard must test that sink, not a sibling.
package good

import (
	"log/slog"

	"dcnr/internal/obs"
	"dcnr/internal/obs/health"
)

// Wiring bundles the optional observability sinks a subsystem accepts.
// All are pointers with nil meaning "not wired".
type Wiring struct {
	Metrics *obs.Registry
	Trace   *obs.Tracer
	Health  *health.Engine
	Logger  *slog.Logger
}

// consumer stands in for a driver that accepts the wiring.
type consumer struct {
	health *health.Engine
	logger *slog.Logger
}

func (c *consumer) instrument(reg *obs.Registry, tr *obs.Tracer) {}

// Apply fans the bundle out. Metrics and Trace are nil-safe by contract
// and pass through unguarded; the engine and logger cross-wiring is
// guarded per sink: the logger reaches the engine only when BOTH are
// present.
func (c *consumer) Apply(w Wiring) {
	c.instrument(w.Metrics, w.Trace)
	if w.Health != nil {
		w.Health.Instrument(w.Metrics)
		c.health = w.Health
	}
	if w.Logger != nil {
		c.logger = w.Logger
		if w.Health != nil {
			w.Health.SetLogger(w.Logger)
		}
	}
}
