// Hand-rolled journals: only journal.New hands out a journal whose lanes
// share one causal ID counter, and only a pointer can be the nil no-op.
package bad

import "dcnr/internal/obs/journal"

// Recorder holds a journal by value: copying forks the ID counter and the
// lane list, minting colliding causal IDs.
type Recorder struct {
	journal journal.Journal
}

// HiddenJournal builds journals that bypass the constructor.
func HiddenJournal() *journal.Journal {
	_ = journal.Journal{}
	return new(journal.Journal)
}

// CopiedLane takes a lane by value, forking its staging buffer.
func CopiedLane(l journal.Lane) {}
