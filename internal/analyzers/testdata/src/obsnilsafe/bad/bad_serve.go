// Hand-rolled servers: only serve.New wires the mux and the lifecycle
// state, and only a pointer can be the inert nil server.
package bad

import "dcnr/internal/serve"

// Gateway holds a server by value: copying forks the shutdown Once, so
// one copy's Shutdown leaves the other's goroutine running.
type Gateway struct {
	api serve.Server
}

// HiddenServer builds servers that bypass the constructor: no mux, so
// Register panics, and no lifecycle state behind Start/Shutdown.
func HiddenServer() *serve.Server {
	_ = serve.Server{}
	return new(serve.Server)
}
