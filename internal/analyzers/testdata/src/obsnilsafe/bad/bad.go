// Package bad hand-rolls obs metrics instead of wiring them through a
// Registry, so they are invisible to every exposition path and lose the
// nil-pointer no-op contract.
package bad

import "dcnr/internal/obs"

// Collector holds a counter by value: copying the struct forks the
// counter's atomics, and the field can never be the nil no-op.
type Collector struct {
	events obs.Counter
}

// Hidden builds metrics no Snapshot, expvar, or Prometheus endpoint will
// ever see.
func Hidden() *obs.Gauge {
	_ = obs.Registry{}
	h := new(obs.Histogram)
	h.Observe(1)
	return &obs.Gauge{}
}

// Record takes a histogram by value — observations land on a copy.
func Record(h obs.Histogram) {
	h.Observe(1)
}
