// Hand-rolled timelines: only timeline.New wires the column table and
// staging rings, and only a pointer can be the nil no-op sampler.
package bad

import "dcnr/internal/obs/timeline"

// Dashboard holds a timeline by value: copying forks the column table
// and the staging rings behind the merged sample view.
type Dashboard struct {
	history timeline.Timeline
}

// HiddenTimeline builds timelines that bypass the constructor.
func HiddenTimeline() *timeline.Timeline {
	_ = timeline.Timeline{}
	return new(timeline.Timeline)
}

// CopiedTimelineLane takes a lane by value, forking its staging ring.
func CopiedTimelineLane(l timeline.Lane) {}
