// Hand-rolled health engines: only health.New validates rules and wires
// the alert state machine, and only a pointer can be the nil no-op.
package bad

import "dcnr/internal/obs/health"

// Monitor holds an engine by value: copying forks the mutex and the alert
// state.
type Monitor struct {
	engine health.Engine
}

// HiddenEngine builds engines that skipped rule validation.
func HiddenEngine() *health.Engine {
	_ = health.Engine{}
	return new(health.Engine)
}
