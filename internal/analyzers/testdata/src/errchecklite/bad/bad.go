// Package bad silently discards exactly the I/O errors errchecklite is
// scoped to: dataset writes, closes, and serve-loop exits.
package bad

import (
	"fmt"
	"io"
	"net"
	"os"
)

// Save loses both the write error and the close error: a full disk yields
// a truncated dataset and a clean exit status.
func Save(path string, data []byte) {
	f, _ := os.Create(path)
	f.Write(data)
	f.Close()
}

// Render drops the write error on an arbitrary (fallible) writer.
func Render(w io.Writer, devices int) {
	fmt.Fprintf(w, "%d devices\n", devices)
}

// Serve discards the loop's exit reason in a goroutine: when serving
// stops, nothing records why.
func Serve(conn net.PacketConn, handle func([]byte)) {
	go serveLoop(conn, handle)
}

func serveLoop(conn net.PacketConn, handle func([]byte)) error {
	buf := make([]byte, 512)
	for {
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			return err
		}
		handle(buf[:n])
	}
}
