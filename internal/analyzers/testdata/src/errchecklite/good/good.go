// Package good handles or deliberately discards every I/O error form the
// analyzer recognizes.
package good

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
)

// Save propagates write and close failures.
func Save(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close() // the write error takes precedence
		return err
	}
	return f.Close()
}

// Describe builds a string through an infallible writer: exempt.
func Describe(n int) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%d devices\n", n)
	return b.String()
}

// Warn writes diagnostics to stderr, where a failure has nowhere to be
// reported anyway: exempt.
func Warn(msg string) {
	fmt.Fprintln(os.Stderr, msg)
}

// Serve surfaces the serve loop's exit reason on a channel.
func Serve(conn net.PacketConn, handle func([]byte)) <-chan error {
	errc := make(chan error, 1)
	go func() {
		errc <- serveLoop(conn, handle)
	}()
	return errc
}

func serveLoop(conn net.PacketConn, handle func([]byte)) error {
	buf := make([]byte, 512)
	for {
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			return err
		}
		handle(buf[:n])
	}
}

// Cleanup uses the idiomatic (exempt) deferred close on a read path.
func Cleanup(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var buf [8]byte
	_, err = io.ReadFull(f, buf[:])
	return err
}
