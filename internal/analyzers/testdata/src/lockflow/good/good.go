// Package good is the clean counterpart of lockflow/bad: every path to a
// heap mutation holds the mutex, and event-loop closures are exempt.
package good

import (
	"sync"

	"dcnr/internal/des"
)

type Engine struct {
	mu  sync.Mutex
	sim *des.Simulator
}

// Submit locks at the entry point; the helper's "caller holds mu" claim
// is true for every caller, so lockflow stays silent where heaplock
// needed the directive.
func (e *Engine) Submit(h float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.submitLocked(h)
}

// Resubmit shares the helper; it locks too.
func (e *Engine) Resubmit(h float64) {
	e.mu.Lock()
	e.submitLocked(h)
	e.mu.Unlock()
}

func (e *Engine) submitLocked(h float64) {
	e.sim.After(h, nil) //lint:allow heaplock caller holds mu
}

// Arm schedules a periodic handler; the closure body runs on the
// single-threaded DES event loop, so its re-arm needs no mutex and its
// callee is reached only through closure edges.
func (e *Engine) Arm(h float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sim.After(h, func(now float64) {
		e.tick(now)
	})
}

// tick is called only from the event-loop closure: exempt by convention.
func (e *Engine) tick(now float64) {
	e.sim.After(1, nil) //lint:allow heaplock event-loop context
}
