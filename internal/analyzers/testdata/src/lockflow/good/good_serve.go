// The clean serving-layer shape: every path to a Server lifecycle call
// holds the mutex, so the shared route table and Start transition are
// confined.
package good

import (
	"net/http"
	"sync"

	"dcnr/internal/serve"
)

type Gateway struct {
	mu  sync.Mutex
	srv *serve.Server
}

// Mount locks at the entry point; the helper's claim holds for every
// caller.
func (g *Gateway) Mount(pattern string, h http.Handler) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.mountLocked(pattern, h)
}

func (g *Gateway) mountLocked(pattern string, h http.Handler) {
	g.srv.Register(pattern, h)
}

// Launch starts under the same lock, closing the construction phase.
func (g *Gateway) Launch() (string, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.srv.Start()
}
