// Package bad exercises lockflow: DES heap mutations reachable over
// unlocked call paths that per-method heaplock cannot see.
package bad

import (
	"sync"

	"dcnr/internal/des"
)

type Engine struct {
	mu  sync.Mutex
	sim *des.Simulator
}

// Submit is an unlocked entry point: the mutation two calls down runs
// with no lock held anywhere on the path.
func (e *Engine) Submit(h float64) {
	e.helperA(h)
}

func (e *Engine) helperA(h float64) {
	e.helperB(h)
}

// helperB claims its callers lock — the directive silences heaplock, but
// lockflow checks the claim against the actual call graph and finds the
// Submit -> helperA -> helperB path holds nothing.
func (e *Engine) helperB(h float64) {
	e.sim.After(h, nil) //lint:allow heaplock caller holds mu
}

// Alias defeats heaplock's recv.field.method syntax match entirely:
// the mutation happens through a local copy of the simulator pointer.
func (e *Engine) Alias(h float64) {
	sim := e.sim
	sim.After(h, nil) // type-matched mutation, unlocked
}

// Maybe locks only on one branch; the must-hold join proves the lock is
// not guaranteed at the mutation. heaplock's lexical scan is fooled by
// the earlier Lock.
func (e *Engine) Maybe(h float64, lock bool) {
	if lock {
		e.mu.Lock()
		defer e.mu.Unlock()
	}
	e.sim.After(h, nil) // unheld on the !lock path
}
