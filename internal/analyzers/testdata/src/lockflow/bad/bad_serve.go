// The serving-layer analogue of the mutex+simulator shape: Register and
// Start are unsynchronized construction-phase calls, so a struct that
// shares a Server behind a mutex must hold it on every path to them.
package bad

import (
	"net/http"
	"sync"

	"dcnr/internal/serve"
)

type Gateway struct {
	mu  sync.Mutex
	srv *serve.Server
}

// Mount is an unlocked entry point whose helper mutates the route table
// with no lock held anywhere on the path.
func (g *Gateway) Mount(pattern string, h http.Handler) {
	g.mount(pattern, h)
}

func (g *Gateway) mount(pattern string, h http.Handler) {
	g.srv.Register(pattern, h) // unlocked Mount -> mount path
}

// Launch aliases the server pointer, defeating a syntax-only match, and
// starts it unlocked.
func (g *Gateway) Launch() {
	srv := g.srv
	_, _ = srv.Start()
}
