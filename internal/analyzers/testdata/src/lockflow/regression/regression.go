// Package regression is the seeded-mutation proof for lockflow: the
// exact PR-2 Engine.Submit race, reintroduced two calls deep. Submit
// takes the mutex for its own bookkeeping, releases it, and only then
// walks into a helper chain that mutates the DES heap — the helper's
// "//lint:allow heaplock caller holds mu" annotation makes the old
// per-method analyzer report NOTHING in this package. The driver test
// asserts heaplock finds 0 and lockflow finds exactly 1, naming the
// Submit -> schedule -> enqueue path.
package regression

import (
	"sync"

	"dcnr/internal/des"
)

type Engine struct {
	mu      sync.Mutex
	sim     *des.Simulator
	pending int
}

func (e *Engine) Submit(at float64) {
	e.mu.Lock()
	e.pending++
	e.mu.Unlock()
	e.schedule(at) // the lock is already gone here
}

func (e *Engine) schedule(at float64) {
	e.enqueue(at)
}

func (e *Engine) enqueue(at float64) {
	e.sim.Schedule(at, nil) //lint:allow heaplock caller holds mu
}
