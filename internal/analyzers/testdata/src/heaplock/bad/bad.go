// Package bad mutates a shared des.Simulator outside the owning mutex —
// the race class heaplock exists to catch.
package bad

import (
	"sync"

	"dcnr/internal/des"
)

// Engine owns a mutex and a simulator, so every heap mutation in its
// methods must hold the mutex.
type Engine struct {
	mu    sync.Mutex
	sim   *des.Simulator
	count int
}

// Submit schedules before taking the lock: concurrent submitters race
// inside container/heap.
func (e *Engine) Submit(done func()) {
	e.sim.After(0, func(float64) { done() })
	e.mu.Lock()
	e.count++
	e.mu.Unlock()
}

// Drain releases the lock and then runs the simulator.
func (e *Engine) Drain() {
	e.mu.Lock()
	e.count = 0
	e.mu.Unlock()
	e.sim.Run(24)
}

// Recycle resets the pooled kernel without the lock: a racing Reset
// corrupts the free list and generation counters, not just the heap.
func (e *Engine) Recycle() {
	e.sim.Reset()
}
