// Package regression preserves the exact pre-PR-2 shape of
// remediation.Engine.Submit: statistics were updated under the mutex, the
// mutex released, and only then was the outcome event scheduled — so two
// concurrent Submit calls raced inside container/heap on the simulator's
// event queue. The heaplock analyzer flags this statically;
// remediation.TestStatsConsistentUnderConcurrentSubmit (run under
// -race in the tier-1 gate) is the dynamic guard on the real engine.
package regression

import (
	"sync"

	"dcnr/internal/des"
)

// Engine mirrors remediation.Engine: a mutex-owning struct sharing one
// des.Simulator across submitting goroutines.
type Engine struct {
	mu     sync.Mutex
	sim    *des.Simulator
	issues int
}

// Submit is the buggy pre-fix shape: the event heap is mutated after the
// lock is released.
func (e *Engine) Submit(done func()) {
	e.mu.Lock()
	e.issues++
	e.mu.Unlock()
	e.sim.After(0, func(float64) { done() })
}
