// Package good holds the mutex across every simulator mutation, the
// post-PR-2 remediation.Engine discipline.
package good

import (
	"sync"

	"dcnr/internal/des"
)

// Engine owns a mutex and a simulator.
type Engine struct {
	mu    sync.Mutex
	sim   *des.Simulator
	count int
}

// Submit locks before touching the heap; the deferred unlock keeps the
// lock held through the After call.
func (e *Engine) Submit(done func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.count++
	e.sim.After(0, func(float64) { done() })
}

// Reset locks and unlocks explicitly around the mutations, including the
// pooled kernel's own Reset (a heap mutator since the free-list rewrite).
func (e *Engine) Reset() {
	e.mu.Lock()
	e.sim.Halt()
	e.sim.Reset()
	e.count = 0
	e.mu.Unlock()
}

// scheduleLocked is a helper whose callers hold e.mu, the documented
// escape hatch.
func (e *Engine) scheduleLocked(at float64, h des.Handler) {
	//lint:allow heaplock caller holds e.mu
	e.sim.After(at, h)
}
