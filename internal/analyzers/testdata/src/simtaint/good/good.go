// Package good is the clean counterpart of simtaint/bad: sim-time values
// into sinks, wall-clock values confined to telemetry, sorted map
// accumulation, and an explicit allow for an intentional wall field.
package good

import (
	"sort"
	"time"

	"dcnr/internal/des"
	"dcnr/internal/obs"
	"dcnr/internal/obs/journal"
	"dcnr/internal/sev"
)

// simTime: values derived from the simulation clock are clean.
func simTime(l *journal.Lane, sim *des.Simulator) {
	now := sim.Now()
	l.Record(journal.Record{Time: now})
}

// telemetry: wall-clock readings into metrics are not sink-bound, so no
// directive is needed — the whole point of taint over syntax.
func telemetry(h *obs.Histogram, t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// sortedAccumulation: sorting clears the map-order bit before the sink.
func sortedAccumulation(s *sev.Store, durs map[string]float64) error {
	var reports []sev.Report
	for dev, d := range durs {
		reports = append(reports, sev.Report{Device: dev, Duration: d})
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Device < reports[j].Device })
	for _, r := range reports {
		if _, err := s.Add(r); err != nil {
			return err
		}
	}
	return nil
}

// intentional: a deliberate wall-clock field rides with an allow
// directive naming the analyzer.
func intentional(l *journal.Lane) {
	wall := float64(time.Now().UnixNano())
	l.Record(journal.Record{Aux: wall}) //lint:allow simtaint intentional wall-clock provenance field
}

// cleanWrapper forwards its record to the sink; clean callers stay
// silent even though the wrapper's summary marks the parameter.
func cleanWrapper(l *journal.Lane, r journal.Record) {
	l.Record(r)
}

func callsCleanWrapper(l *journal.Lane, sim *des.Simulator) {
	cleanWrapper(l, journal.Record{Time: sim.Now()})
}
