// Package bad exercises simtaint: wall-clock and map-order taint flowing
// through locals, helpers, and parameters into deterministic-output
// sinks. Every finding position is pinned by the driver test.
package bad

import (
	"time"

	"dcnr/internal/obs/journal"
	"dcnr/internal/sev"
)

// direct: a wall-clock read flows through two locals and a composite
// literal into the journal lane.
func direct(l *journal.Lane, t0 time.Time) {
	elapsed := time.Since(t0).Hours()
	rec := journal.Record{Time: elapsed}
	l.Record(rec) // wall taint at the sink
}

// stamp launders the wall clock through a helper return: the syntactic
// checker sees no banned call anywhere near the sink.
func stamp() float64 {
	ns := time.Now().UnixNano()
	return float64(ns)
}

func viaHelper(l *journal.Lane) {
	r := journal.Record{Aux: stamp()}
	l.Record(r) // wall taint via stamp()
}

// sinkWrapper's parameter reaches the sink, so its summary marks it a
// derived sink and tainted CALLERS are flagged at their call site.
func sinkWrapper(l *journal.Lane, r journal.Record) {
	l.Record(r)
}

func callsWrapper(l *journal.Lane) {
	sinkWrapper(l, journal.Record{Time: stamp()}) // via sinkWrapper
}

// mapOrder: reports accumulated in map iteration order reach the sev
// store unsorted.
func mapOrder(s *sev.Store, durs map[string]float64) error {
	var reports []sev.Report
	for dev, d := range durs {
		reports = append(reports, sev.Report{Device: dev, Duration: d})
	}
	for _, r := range reports {
		if _, err := s.Add(r); err != nil { // map-order taint
			return err
		}
	}
	return nil
}
