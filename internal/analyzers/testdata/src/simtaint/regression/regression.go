// Package regression is the seeded-mutation proof for simtaint: this
// package imports neither dcnr/internal/des nor dcnr/internal/simrand, so
// it is OUTSIDE simdeterminism's scope — the old syntactic analyzer
// reports nothing here by construction. The wall clock still leaks into
// the journal encoder, three value hops from the time.Now call. The
// driver test asserts simdeterminism finds 0 and simtaint finds exactly 1.
package regression

import (
	"time"

	"dcnr/internal/obs/journal"
)

// stamp reads the wall clock far from any sink.
func stamp() float64 {
	return float64(time.Now().UnixNano())
}

// annotate copies the stamp through a struct field.
func annotate(r journal.Record) journal.Record {
	r.Aux = stamp()
	return r
}

// Emit writes the laundered wall-clock value into the deterministic
// journal stream.
func Emit(l *journal.Lane, r journal.Record) {
	l.Record(annotate(r)) // the only finding in this package
}
