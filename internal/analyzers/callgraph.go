package analyzers

// callgraph.go builds the module-wide call graph the inter-procedural
// analyzers (lockflow, simtaint) propagate summaries over. Edges are
// resolved two ways: statically, through calleeFunc (direct calls and
// method calls on concrete receivers), and dynamically, by expanding
// interface method calls to every module-defined concrete type that
// implements the interface. Calls through plain function values, stored
// closures, and reflection are NOT resolved — a documented limit of the
// engine (DESIGN §12); the codebase's closure-heavy spots (DES event
// handlers) are instead covered by the InClosure edge flag, which lets
// analyzers treat "only called from inside a closure" as a distinct,
// conventionally-guarded context.

import (
	"fmt"
	"go/ast"
	"go/types"
	"io"
	"sort"
	"strings"
)

// CGNode is one module function (or method) with a body.
type CGNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Out and In are the resolved call edges, in deterministic
	// (position-sorted) order.
	Out []*CGEdge
	In  []*CGEdge

	cfg *CFG
}

// CFG lowers (and caches) the node's body as a control-flow graph.
func (n *CGNode) CFG() *CFG {
	if n.cfg == nil {
		n.cfg = BuildCFG(n.Decl)
	}
	return n.cfg
}

// Name is the node's fully qualified name, e.g.
// "dcnr/internal/des.New" or "(*dcnr/internal/des.Simulator).After".
func (n *CGNode) Name() string { return n.Fn.FullName() }

// CGEdge is one resolved call site.
type CGEdge struct {
	From, To *CGNode
	Site     *ast.CallExpr
	// Dynamic marks edges resolved through an interface method set
	// rather than a statically-known callee: the call MAY reach To.
	Dynamic bool
	// InClosure marks call sites that sit lexically inside a function
	// literal within From's body — the call runs when the closure runs,
	// not when From does.
	InClosure bool
}

// CallGraph is the module call graph.
type CallGraph struct {
	Nodes map[*types.Func]*CGNode
	// Order lists the nodes sorted by source position, so iteration over
	// the graph is deterministic.
	Order []*CGNode
}

// Lookup returns the node for fn, or nil if fn has no body in the module.
func (g *CallGraph) Lookup(fn *types.Func) *CGNode {
	if fn == nil {
		return nil
	}
	return g.Nodes[fn]
}

func buildCallGraph(m *Module) *CallGraph {
	g := &CallGraph{Nodes: make(map[*types.Func]*CGNode)}

	// Pass 1: one node per declared function body.
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &CGNode{Fn: fn, Decl: fd, Pkg: pkg}
				g.Nodes[fn] = node
				g.Order = append(g.Order, node)
			}
		}
	}
	sort.Slice(g.Order, func(i, j int) bool {
		pi := m.Fset.Position(g.Order[i].Decl.Pos())
		pj := m.Fset.Position(g.Order[j].Decl.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Line < pj.Line
	})

	// Concrete module types, for expanding interface calls.
	var concrete []types.Type
	for _, pkg := range m.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			concrete = append(concrete, named, types.NewPointer(named))
		}
	}

	// Pass 2: resolve call sites.
	for _, node := range g.Order {
		info := node.Pkg.Info
		var walk func(n ast.Node, inClosure bool)
		walk = func(n ast.Node, inClosure bool) {
			ast.Inspect(n, func(c ast.Node) bool {
				switch x := c.(type) {
				case *ast.FuncLit:
					walk(x.Body, true)
					return false
				case *ast.CallExpr:
					addCallEdges(g, node, info, x, inClosure, concrete)
				}
				return true
			})
		}
		walk(node.Decl.Body, false)
	}

	// In-edges, in Out-edge (hence deterministic) order.
	for _, node := range g.Order {
		for _, e := range node.Out {
			e.To.In = append(e.To.In, e)
		}
	}
	return g
}

// addCallEdges resolves one call site into zero or more edges.
func addCallEdges(g *CallGraph, from *CGNode, info *types.Info, call *ast.CallExpr, inClosure bool, concrete []types.Type) {
	if fn := calleeFunc(info, call); fn != nil {
		// calleeFunc resolves interface method calls to the interface's
		// own *types.Func, which has no body node — fall through to
		// dynamic expansion for those.
		if to := g.Nodes[fn]; to != nil {
			e := &CGEdge{From: from, To: to, Site: call, InClosure: inClosure}
			from.Out = append(from.Out, e)
			return
		}
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return
	}
	iface, ok := selection.Recv().Underlying().(*types.Interface)
	if !ok {
		return
	}
	name := sel.Sel.Name
	seen := make(map[*CGNode]bool)
	for _, t := range concrete {
		if !types.Implements(t, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(t, true, from.Pkg.Types, name)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		// A type and its pointer both implementing the interface resolve
		// to the same method; add the edge once.
		if to := g.Nodes[fn]; to != nil && !seen[to] {
			seen[to] = true
			e := &CGEdge{From: from, To: to, Site: call, Dynamic: true, InClosure: inClosure}
			from.Out = append(from.Out, e)
		}
	}
}

// FindNodes returns the nodes whose qualified name contains pattern
// (exact match wins if present), for the driver's -graph flag. Matching
// also runs against a receiver-normalized form — "(*pkg.T).m" as
// "pkg.T.m" — so the natural spelling "T.m" finds pointer methods.
func (g *CallGraph) FindNodes(pattern string) []*CGNode {
	normalize := func(s string) string {
		return strings.NewReplacer("(*", "", "(", "", ")", "").Replace(s)
	}
	var exact, partial []*CGNode
	for _, n := range g.Order {
		name, norm := n.Name(), normalize(n.Name())
		switch {
		case name == pattern || norm == pattern:
			exact = append(exact, n)
		case strings.Contains(name, pattern) || strings.Contains(norm, pattern):
			partial = append(partial, n)
		}
	}
	if len(exact) > 0 {
		return exact
	}
	return partial
}

// WriteDOT writes the call-graph neighborhood of the nodes matching
// pattern — every node within depth call hops, in either direction — in
// Graphviz DOT form. Dynamic edges render dashed, closure-borne edges
// dotted.
func (g *CallGraph) WriteDOT(w io.Writer, pattern string, depth int) error {
	roots := g.FindNodes(pattern)
	if len(roots) == 0 {
		return fmt.Errorf("no function matching %q in call graph (%d nodes)", pattern, len(g.Order))
	}
	dist := make(map[*CGNode]int)
	frontier := roots
	for _, n := range roots {
		dist[n] = 0
	}
	for d := 1; d <= depth && len(frontier) > 0; d++ {
		var next []*CGNode
		for _, n := range frontier {
			for _, e := range n.Out {
				if _, seen := dist[e.To]; !seen {
					dist[e.To] = d
					next = append(next, e.To)
				}
			}
			for _, e := range n.In {
				if _, seen := dist[e.From]; !seen {
					dist[e.From] = d
					next = append(next, e.From)
				}
			}
		}
		frontier = next
	}

	if _, err := fmt.Fprintf(w, "digraph callgraph {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n"); err != nil {
		return err
	}
	for _, n := range g.Order {
		if _, ok := dist[n]; !ok {
			continue
		}
		attrs := ""
		if dist[n] == 0 {
			attrs = ", style=filled, fillcolor=lightyellow"
		}
		if _, err := fmt.Fprintf(w, "  %q [label=%q%s];\n", n.Name(), n.Name(), attrs); err != nil {
			return err
		}
	}
	for _, n := range g.Order {
		if _, ok := dist[n]; !ok {
			continue
		}
		for _, e := range n.Out {
			if _, ok := dist[e.To]; !ok {
				continue
			}
			var style []string
			if e.Dynamic {
				style = append(style, "style=dashed")
			}
			if e.InClosure {
				style = append(style, "style=dotted", "label=closure")
			}
			attr := ""
			if len(style) > 0 {
				attr = " [" + strings.Join(style, ", ") + "]"
			}
			if _, err := fmt.Fprintf(w, "  %q -> %q%s;\n", n.Name(), e.To.Name(), attr); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
