package analyzers

import (
	"go/ast"
	"go/types"
)

// SimDeterminism enforces the reproducibility invariant of the simulation:
// the same seed must yield bit-for-bit identical output. It applies to the
// DES kernel, the simrand package, and every package that imports either —
// those are exactly the packages whose behaviour feeds simulated results.
//
// Banned inside that scope:
//
//   - wall-clock reads (time.Now, time.Since, timers, sleeps): simulation
//     time comes from des.Simulator.Now. Wall-clock telemetry (obs trace
//     lanes, handler-cost histograms) is legitimate — mark those sites
//     with //lint:allow simdeterminism. Wall-clock reads nested inside the
//     arguments of a log/slog call are exempt without a directive: log
//     records already carry a wall-clock timestamp of their own, so a
//     time read feeding a log attribute is telemetry by construction and
//     cannot leak into simulated results.
//   - math/rand and math/rand/v2: their global source is seeded from the
//     wall clock and their sequences are not stable across Go releases;
//     dcnr/internal/simrand is the project's deterministic source.
//   - output built in map iteration order: appends, prints, and channel
//     sends inside a range-over-map whose order escapes the loop. Sorting
//     the built slice afterwards (in the same function) clears the flag.
var SimDeterminism = &Analyzer{
	Name: "simdeterminism",
	Doc:  "ban wall-clock, math/rand, and map-ordered output in simulation packages",
	Contract: `Packages in the deterministic scope (dcnr/internal/des,
dcnr/internal/simrand, and anything importing them) must not call
time.Now/Since/Until/Sleep/timers, must not import math/rand or
math/rand/v2 (use dcnr/internal/simrand), and must not emit output in map
iteration order (append-without-sort, fmt prints, channel sends inside a
range over a map). Syntactic and per-function; its inter-procedural
successor is simtaint, which follows the value instead of the call site.
Example fixture: internal/analyzers/testdata/src/simdeterminism/bad/bad.go`,
	Run: runSimDeterminism,
}

// simPackages are the roots of the deterministic scope: the DES kernel and
// the seeded randomness source. A package is in scope if it is one of
// these or directly imports one.
var simPackages = map[string]bool{
	"dcnr/internal/des":     true,
	"dcnr/internal/simrand": true,
}

// bannedTimeFuncs are the wall-clock entry points of package time.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

func inSimScope(pkg *types.Package) bool {
	if simPackages[pkg.Path()] {
		return true
	}
	for _, imp := range pkg.Imports() {
		if simPackages[imp.Path()] {
			return true
		}
	}
	return false
}

func runSimDeterminism(pass *Pass) {
	if !inSimScope(pass.Pkg) {
		return
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			switch imp.Path.Value {
			case `"math/rand"`, `"math/rand/v2"`:
				pass.Reportf(imp.Pos(),
					"import of %s in simulation code: use dcnr/internal/simrand (seeded, version-stable streams)",
					imp.Path.Value)
			}
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSimFunc(pass, fn)
		}
	}
}

func checkSimFunc(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callee := calleeFunc(pass.Info, n)
			if callee != nil && callee.Pkg() != nil {
				if callee.Pkg().Path() == "log/slog" {
					// Skip the call's subtree: wall-clock reads feeding
					// structured-log attributes are telemetry, and slog
					// stamps every record with time.Now regardless.
					return false
				}
				if callee.Pkg().Path() == "time" && bannedTimeFuncs[callee.Name()] {
					pass.Reportf(n.Pos(),
						"wall clock in simulation code: time.%s (simulation time is des.Simulator.Now; for wall-clock telemetry add //lint:allow simdeterminism)",
						callee.Name())
				}
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					checkMapRange(pass, fn, n)
				}
			}
		}
		return true
	})
}

// checkMapRange flags order-dependent sinks inside a range over a map:
// appends to a slice that is never sorted in the enclosing function,
// direct printing, and channel sends.
func checkMapRange(pass *Pass, fn *ast.FuncDecl, loop *ast.RangeStmt) {
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltin(pass.Info, call, "append") || i >= len(n.Lhs) {
					continue
				}
				root := rootIdent(n.Lhs[i])
				if root == nil || sortedLater(pass, fn, root) {
					continue
				}
				pass.Reportf(n.Pos(),
					"%s is built in map iteration order and never sorted in %s; sort it or iterate sorted keys",
					exprString(n.Lhs[i]), fn.Name.Name)
			}
		case *ast.CallExpr:
			if callee := calleeFunc(pass.Info, n); callee != nil && callee.Pkg() != nil &&
				callee.Pkg().Path() == "fmt" && isPrintName(callee.Name()) {
				pass.Reportf(n.Pos(),
					"fmt.%s inside a range over a map emits output in map iteration order", callee.Name())
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside a range over a map delivers values in map iteration order")
		}
		return true
	})
}

func isPrintName(name string) bool {
	switch name {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
		return true
	}
	return false
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// rootIdent returns the leftmost identifier of an lvalue (x, x.f, x[i].f).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// sortedLater reports whether the enclosing function passes anything
// rooted at the same object as root to a sort.* or slices.Sort* call.
func sortedLater(pass *Pass, fn *ast.FuncDecl, root *ast.Ident) bool {
	obj := pass.Info.Uses[root]
	if obj == nil {
		obj = pass.Info.Defs[root]
	}
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		callee := calleeFunc(pass.Info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if path := callee.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// exprString renders a short lvalue (best effort, for messages only).
func exprString(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprString(v.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	}
	return "value"
}
