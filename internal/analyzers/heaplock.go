package analyzers

import (
	"go/ast"
	"go/types"
)

// HeapLock targets the exact race class fixed in PR 2: a struct that owns
// both a mutex and a *des.Simulator (the remediation.Engine shape) mutated
// the simulator's event heap outside the mutex, so concurrent Submit calls
// corrupted the heap. The des kernel is deliberately unsynchronized — any
// type that shares a simulator across goroutines owns the locking.
//
// For every struct type declaring both a sync.Mutex/RWMutex field and a
// *des.Simulator field, each method on that type must hold the mutex (a
// lexically earlier <recv>.<mu>.Lock with no intervening non-deferred
// Unlock) at every call that mutates the simulator's heap or clock:
// Schedule, After, Cancel, Every, Run, Step, Halt, Reset.
//
// Function literals are skipped: closures handed to Schedule/After execute
// inside the single-threaded event loop, where the heap is safe to touch.
// Helper methods documented as "caller holds mu" should carry a
// //lint:allow heaplock comment with that reason.
var HeapLock = &Analyzer{
	Name: "heaplock",
	Doc:  "des.Simulator mutations on mutex-owning structs must hold the mutex",
	Contract: `In any struct declaring both a sync.Mutex/RWMutex field and a
*des.Simulator field, each method must hold the mutex (a lexically
earlier Lock with no intervening non-deferred Unlock) at every
<recv>.<sim>.Schedule/After/Cancel/Every/Run/Step/Halt/Reset call —
the PR-2 race class. Per-method and syntactic; helpers annotated
"//lint:allow heaplock caller holds mu" are instead verified
inter-procedurally by lockflow.
Example fixture: internal/analyzers/testdata/src/heaplock/bad/bad.go`,
	Run: runHeapLock,
}

// heapMutators are the des.Simulator methods that touch the event heap or
// clock and are therefore unsafe to call concurrently. Reset joined the
// set with the pooled free-list kernel: it recycles every node, so a
// racing Reset corrupts not just the heap but the pool's generation
// counters.
var heapMutators = map[string]bool{
	"Schedule": true, "After": true, "Cancel": true, "Every": true,
	"Run": true, "Step": true, "Halt": true, "Reset": true,
}

const desPath = "dcnr/internal/des"

// lockedSimType describes one struct owning both a mutex and a simulator.
type lockedSimType struct {
	named     *types.Named
	mutexes   map[string]bool // field names of sync.Mutex/RWMutex type
	simFields map[string]bool // field names of type *des.Simulator
}

func runHeapLock(pass *Pass) {
	guarded := findLockedSimTypes(pass.Pkg)
	if len(guarded) == 0 {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil || len(fn.Recv.List) != 1 {
				continue
			}
			recvType := baseNamed(pass.Info.TypeOf(fn.Recv.List[0].Type))
			if recvType == nil {
				continue
			}
			var target *lockedSimType
			for _, g := range guarded {
				if g.named.Obj() == recvType.Obj() {
					target = g
					break
				}
			}
			if target == nil || len(fn.Recv.List[0].Names) == 0 {
				continue
			}
			recvName := fn.Recv.List[0].Names[0].Name
			if recvName == "_" {
				continue
			}
			checkHeapLockMethod(pass, fn, recvName, target)
		}
	}
}

// findLockedSimTypes scans the package scope for struct types declaring
// both a mutex field and a *des.Simulator field.
func findLockedSimTypes(pkg *types.Package) []*lockedSimType {
	var out []*lockedSimType
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		t := &lockedSimType{named: named, mutexes: map[string]bool{}, simFields: map[string]bool{}}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if isMutexType(f.Type()) {
				t.mutexes[f.Name()] = true
			}
			if isDesSimulatorPtr(f.Type()) {
				t.simFields[f.Name()] = true
			}
		}
		if len(t.mutexes) > 0 && len(t.simFields) > 0 {
			out = append(out, t)
		}
	}
	return out
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

func isDesSimulatorPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == desPath && named.Obj().Name() == "Simulator"
}

func baseNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// checkHeapLockMethod walks the method body in source order, tracking
// whether the receiver's mutex is held, and flags simulator mutations at
// unheld points. The tracking is lexical: branches are visited in source
// order, a deferred Unlock keeps the lock held for the rest of the body,
// and function literals are not entered.
func checkHeapLockMethod(pass *Pass, fn *ast.FuncDecl, recvName string, t *lockedSimType) {
	held := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			// defer recv.mu.Unlock() releases at return; the lock stays
			// held for the remainder of the body.
			return false
		case *ast.CallExpr:
			field, method, ok := recvFieldCall(n, recvName)
			if !ok {
				return true
			}
			if t.mutexes[field] {
				switch method {
				case "Lock", "RLock":
					held = true
				case "Unlock", "RUnlock":
					held = false
				}
				return true
			}
			if t.simFields[field] && heapMutators[method] && !held {
				pass.Reportf(n.Pos(),
					"des.Simulator.%s on %s.%s without holding %s.%s: concurrent callers race on the event heap (lock first, or //lint:allow heaplock if the caller holds it)",
					method, t.named.Obj().Name(), field, recvName, firstKey(t.mutexes))
			}
		}
		return true
	})
}

// recvFieldCall matches calls of the form <recv>.<field>.<method>(...) and
// returns the field and method names.
func recvFieldCall(call *ast.CallExpr, recvName string) (field, method string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	inner, okSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	id, okSel := ast.Unparen(inner.X).(*ast.Ident)
	if !okSel || id.Name != recvName {
		return "", "", false
	}
	return inner.Sel.Name, sel.Sel.Name, true
}

func firstKey(m map[string]bool) string {
	best := ""
	for k := range m {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}
