package analyzers

// engine_test.go covers the v2 analysis engine on its own — CFG lowering
// shapes, the generic dataflow solver, call-graph resolution, and
// inter-procedural summary propagation — so an engine regression fails
// here even if every analyzer still happens to pass its fixtures.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// parseFuncBody wraps a statement list in a function and parses it.
// BuildCFG needs no type information, so undeclared helpers are fine.
func parseFuncBody(t *testing.T, body string) *ast.FuncDecl {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing body: %v\n%s", err, src)
	}
	return file.Decls[0].(*ast.FuncDecl)
}

func TestCFGConstruction(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{
			name: "if without else",
			body: `x := 1
if x > 0 {
	x++
}
return`,
			want: `b0[assign cond] -> b1 b2
b1[incdec] -> b2
b2[return] -> b3
b3[] (exit)
`,
		},
		{
			name: "if else join",
			body: `x := 1
if x > 0 {
	a()
} else {
	b()
}
c()`,
			want: `b0[assign cond] -> b1 b2
b1[expr] -> b3
b2[expr] -> b3
b3[expr] -> b4
b4[] (exit)
`,
		},
		{
			name: "for with break and continue",
			body: `for i := 0; i < 3; i++ {
	if i == 1 {
		continue
	}
	if i == 2 {
		break
	}
	work()
}
after()`,
			want: `b0[assign] -> b1
b1[cond] -> b3 b8
b2[incdec] -> b1
b3[cond] -> b4 b5
b4[continue] -> b2
b5[cond] -> b6 b7
b6[break] -> b8
b7[expr] -> b2
b8[expr] -> b9
b9[] (exit)
`,
		},
		{
			name: "switch with fallthrough and default",
			body: `x := 0
switch x {
case 1:
	a()
	fallthrough
case 2:
	b()
default:
	c()
}
d()`,
			want: `b0[assign cond cond cond] -> b1 b2 b3
b1[expr fallthrough] -> b2
b2[expr] -> b4
b3[expr] -> b4
b4[expr] -> b5
b5[] (exit)
`,
		},
		{
			name: "select",
			body: `select {
case v := <-ch:
	use(v)
case ch2 <- 1:
	done()
}
end()`,
			want: `b0[] -> b1 b2
b1[assign expr] -> b3
b2[send expr] -> b3
b3[expr] -> b4
b4[] (exit)
`,
		},
		{
			name: "goto loop",
			body: `i := 0
loop:
	i++
	if i < 3 {
		goto loop
	}
	return`,
			want: `b0[assign] -> b1
b1[incdec cond] -> b2 b3
b2[goto] -> b1
b3[return] -> b4
b4[] (exit)
`,
		},
		{
			name: "defer and range",
			body: `defer cleanup()
for k := range m {
	use(k)
}`,
			want: `b0[defer] -> b1
b1[range] -> b2 b3
b2[expr] -> b1
b3[] -> b4
b4[] (exit)
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := BuildCFG(parseFuncBody(t, tc.body))
			if got := cfg.String(); got != tc.want {
				t.Errorf("CFG mismatch:\ngot:\n%s\nwant:\n%s", got, tc.want)
			}
			// Preds must mirror Succs exactly.
			for _, b := range cfg.Blocks {
				for _, s := range b.Succs {
					found := false
					for _, p := range s.Preds {
						if p == b {
							found = true
						}
					}
					if !found {
						t.Errorf("b%d -> b%d has no matching pred entry", b.Index, s.Index)
					}
				}
			}
		})
	}
}

// TestSolveBackward exercises the backward direction with an exit
// reachability problem over an infinite loop: blocks inside `for {}`
// cannot reach the exit, the dead join after it can.
func TestSolveBackward(t *testing.T) {
	cfg := BuildCFG(parseFuncBody(t, "for {\n\tx()\n}"))
	reach := Solve(cfg, Flow[bool]{
		Dir:      Backward,
		Boundary: func() bool { return true },
		Init:     func() bool { return false },
		Transfer: func(_ *Block, in bool) bool { return in },
		Join:     func(a, b bool) bool { return a || b },
		Equal:    func(a, b bool) bool { return a == b },
	})
	if !reach[cfg.Exit] {
		t.Errorf("exit block must reach itself")
	}
	// b0 is the entry, which only flows into the loop head.
	if reach[cfg.Blocks[0]] {
		t.Errorf("entry of an infinite loop must not reach the exit")
	}
	// The staged join block after the loop edges straight to exit.
	join := cfg.Blocks[len(cfg.Blocks)-2]
	if !reach[join] {
		t.Errorf("post-loop join must reach the exit")
	}
}

// loadFixtureModule wraps one fixture package as a Module for the
// module-wide analyzers and the call graph.
func loadFixtureModule(t *testing.T, rel string) *Module {
	t.Helper()
	pkg := loadFixture(t, rel)
	return NewModule(filepath.Join("testdata", "src", rel), []*Package{pkg})
}

func fixtureFunc(t *testing.T, m *Module, name string) *types.Func {
	t.Helper()
	for _, pkg := range m.Pkgs {
		if obj := pkg.Types.Scope().Lookup(name); obj != nil {
			if fn, ok := obj.(*types.Func); ok {
				return fn
			}
		}
	}
	t.Fatalf("fixture function %s not found", name)
	return nil
}

func TestCallGraphStaticEdges(t *testing.T) {
	m := loadFixtureModule(t, "engine/chain")
	g := m.Graph()
	wantEdges := map[string]string{
		"A": "B", "B": "C", "A2": "B2", "B2": "C2", "Clean": "A2",
	}
	for from, to := range wantEdges {
		n := g.Lookup(fixtureFunc(t, m, from))
		if n == nil {
			t.Fatalf("no node for %s", from)
		}
		found := false
		for _, e := range n.Out {
			if e.To.Fn.Name() == to {
				found = true
				if e.Dynamic || e.InClosure {
					t.Errorf("%s -> %s should be a plain static edge", from, to)
				}
			}
		}
		if !found {
			t.Errorf("missing call edge %s -> %s; out = %d edges", from, to, len(n.Out))
		}
	}
	// In-edges mirror out-edges.
	c2 := g.Lookup(fixtureFunc(t, m, "C2"))
	if len(c2.In) != 1 || c2.In[0].From.Fn.Name() != "B2" {
		t.Errorf("C2 in-edges: want exactly [B2], got %d", len(c2.In))
	}
}

func TestCallGraphInterfaceResolution(t *testing.T) {
	m := loadFixtureModule(t, "engine/iface")
	g := m.Graph()
	run := g.Lookup(fixtureFunc(t, m, "Run"))
	if run == nil {
		t.Fatal("no node for Run")
	}
	var targets []string
	for _, e := range run.Out {
		if !e.Dynamic {
			t.Errorf("interface call edge to %s should be Dynamic", e.To.Name())
		}
		targets = append(targets, e.To.Name())
	}
	if len(targets) != 2 {
		t.Fatalf("Run should resolve to exactly the two implementations, got %v", targets)
	}
	joined := strings.Join(targets, " ")
	if !strings.Contains(joined, "ByValue") || !strings.Contains(joined, "ByPointer") {
		t.Errorf("Run targets = %v, want ByValue.Do and (*ByPointer).Do", targets)
	}
}

func TestCallGraphClosureEdges(t *testing.T) {
	m := loadFixtureModule(t, "lockflow/good")
	g := m.Graph()
	// Engine.Arm calls e.tick only inside the event-loop closure.
	for _, n := range g.Order {
		if n.Fn.Name() != "Arm" {
			continue
		}
		for _, e := range n.Out {
			if e.To.Fn.Name() == "tick" && !e.InClosure {
				t.Errorf("Arm -> tick runs inside a function literal; edge must be InClosure")
			}
		}
		return
	}
	t.Fatal("Arm not found in lockflow/good")
}

// TestTaintSummaryPropagation3Deep pins the engine's inter-procedural
// contract on the chain fixture: wall taint surfaces through three
// returns, and a sink obligation climbs through three parameter lists.
func TestTaintSummaryPropagation3Deep(t *testing.T) {
	m := loadFixtureModule(t, "engine/chain")
	g := m.Graph()
	sums := computeTaintSummaries(g)

	a := sums[fixtureFunc(t, m, "A")]
	if len(a.ret) != 1 || a.ret[0]&taintWall == 0 {
		t.Errorf("A's result must be wall-tainted through B and C; ret = %#v", a.ret)
	}
	if sums[fixtureFunc(t, m, "B")].ret[0]&taintWall == 0 {
		t.Errorf("B's result must be wall-tainted through C")
	}

	// A2(l, r): r is parameter slot 1; its taint must be marked
	// sink-bound two hops above the actual l.Record call.
	for _, name := range []string{"A2", "B2", "C2"} {
		s := sums[fixtureFunc(t, m, name)]
		if s.sink&paramTaintBit(1) == 0 {
			t.Errorf("%s's record parameter must be summarized sink-bound (sink=%#x)", name, s.sink)
		}
		if s.sink&paramTaintBit(0) != 0 {
			t.Errorf("%s's lane parameter is not record data; sink=%#x", name, s.sink)
		}
	}
	if via := sums[fixtureFunc(t, m, "A2")].via; !strings.Contains(via, "B2") {
		t.Errorf("A2's sink witness should name B2, got %q", via)
	}
	// Clean passes an untainted record: the whole fixture must be silent.
	diags, err := m.Analyze([]*ModuleAnalyzer{SimTaint})
	if err != nil {
		t.Fatal(err)
	}
	assertDiags(t, diags, nil)
}
