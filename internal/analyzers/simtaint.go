package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SimTaint is the inter-procedural successor of simdeterminism: instead of
// banning wall-clock call sites by syntax inside simulation packages, it
// tracks the VALUES those sources produce — through locals, fields,
// returns, and (via per-function summaries propagated over the call graph)
// across function boundaries — and reports only when a tainted value
// reaches a deterministic-output sink: the journal lane writer, the sev
// store, or the sweep report's ordered JSONL writers. Wall-clock telemetry
// that stays in metrics and traces is therefore fine without any
// directive; a time.Now() laundered through three helpers into the
// journal encoder is not.
//
// Taint bits:
//   - wall: values derived from time.Now/Since/Until/… or math/rand.
//   - order: values built in map-iteration order (range over a map);
//     passing the value to sort.*/slices.Sort* clears the bit.
//
// Per-function summaries record, for each result, which parameter's taint
// it propagates and whether it is intrinsically tainted; and which
// parameters flow into a sink (so callers of a sink-wrapping helper are
// checked too, with the witness chain named in the message).
//
// Limits (DESIGN §12): closures are not tracked as values, calls through
// stored function values resolve to nothing, and unknown (non-module)
// callees are modeled as "result = union of argument taint; pointer-shaped
// arguments become tainted" — conservative for fmt.Fprintf(&buf, tainted).
var SimTaint = &ModuleAnalyzer{
	Name: "simtaint",
	Doc:  "track wall-clock/PRNG/map-order taint from source to deterministic-output sinks",
	Contract: `Values derived from the wall clock (time.Now/Since/Until, timers),
math/rand, or map-iteration order must never reach a deterministic-output
sink: journal Lane.Record, sev Store.Add, or the sweep report's ordered
JSONL writers. Taint follows the value — through locals, struct fields,
returns, and call chains via per-function summaries — so telemetry that
stays in metrics/traces needs no directive, while a time.Now() laundered
through helpers into an encoder is reported at the sink call with the
witness chain. Sorting (sort.*/slices.Sort*) clears map-order taint.
Example fixture: internal/analyzers/testdata/src/simtaint/bad/bad.go`,
	Run: runSimTaint,
}

const (
	taintWall  uint32 = 1 << 0
	taintOrder uint32 = 1 << 1
	// Parameter slots start at bit 2; a function can track its first
	// maxTaintParams parameters (receiver counts as slot 0).
	taintParamShift        = 2
	maxTaintParams         = 30
	taintIntrinsic  uint32 = taintWall | taintOrder
)

func paramTaintBit(slot int) uint32 {
	if slot < 0 || slot >= maxTaintParams {
		return 0
	}
	return 1 << (taintParamShift + slot)
}

// taintSink is one deterministic-output entry point. Arg is the index
// into call.Args (the receiver is matched by recv, not by index).
type taintSink struct {
	pkg, recv, name string
	arg             int
}

var taintSinks = []taintSink{
	{pkg: "dcnr/internal/obs/journal", recv: "Lane", name: "Record", arg: 0},
	{pkg: "dcnr/internal/sev", recv: "Store", name: "Add", arg: 0},
	{pkg: "dcnr/internal/sweep", recv: "orderedWriter", name: "write", arg: 1},
	{pkg: "dcnr/internal/sweep", recv: "orderedWriter", name: "writeRaw", arg: 1},
}

func matchTaintSink(fn *types.Func) *taintSink {
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	recv := ""
	if sig.Recv() != nil {
		if named := baseNamed(sig.Recv().Type()); named != nil {
			recv = named.Obj().Name()
		}
	}
	for i := range taintSinks {
		s := &taintSinks[i]
		if fn.Pkg().Path() == s.pkg && fn.Name() == s.name && recv == s.recv {
			return s
		}
	}
	return nil
}

// taintSummary is one function's inter-procedural fact sheet.
type taintSummary struct {
	// ret[i] is the taint mask of result i: intrinsic bits plus the
	// parameter bits whose taint the result propagates.
	ret []uint32
	// sink is the set of parameter bits that flow into a sink inside
	// this function (or a callee of it).
	sink uint32
	// via names the call chain from this function down to the sink, for
	// diagnostics at the eventual tainted call site.
	via string
}

func (s *taintSummary) equal(o *taintSummary) bool {
	if s.sink != o.sink || len(s.ret) != len(o.ret) {
		return false
	}
	for i := range s.ret {
		if s.ret[i] != o.ret[i] {
			return false
		}
	}
	return true
}

// taintFacts maps in-scope objects to their taint mask. Zero-mask entries
// are never stored, so map equality is lattice equality.
type taintFacts map[types.Object]uint32

func (f taintFacts) clone() taintFacts {
	out := make(taintFacts, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func (f taintFacts) set(obj types.Object, mask uint32) {
	if obj == nil {
		return
	}
	if mask == 0 {
		delete(f, obj)
	} else {
		f[obj] = mask
	}
}

func (f taintFacts) merge(obj types.Object, mask uint32) {
	if obj != nil && mask != 0 {
		f[obj] |= mask
	}
}

func taintJoin(a, b taintFacts) taintFacts {
	out := a.clone()
	for k, v := range b {
		out[k] |= v
	}
	return out
}

func taintEqual(a, b taintFacts) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func runSimTaint(pass *ModulePass) error {
	g := pass.Mod.Graph()
	sums := computeTaintSummaries(g)
	// Report pass: replay each function once against the final summaries.
	for _, n := range g.Order {
		analyzeTaintFunc(n, sums, pass)
	}
	return nil
}

// computeTaintSummaries runs the inter-procedural summary fixpoint over
// the call graph. Masks only grow, so this converges; the iteration bound
// is a backstop against a lattice bug, not a tuning knob.
func computeTaintSummaries(g *CallGraph) map[*types.Func]*taintSummary {
	sums := make(map[*types.Func]*taintSummary, len(g.Order))
	for _, n := range g.Order {
		sums[n.Fn] = &taintSummary{ret: make([]uint32, resultCount(n.Fn))}
	}
	for iter := 0; iter < 12; iter++ {
		changed := false
		for _, n := range g.Order {
			next := analyzeTaintFunc(n, sums, nil)
			if !next.equal(sums[n.Fn]) {
				sums[n.Fn] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return sums
}

func resultCount(fn *types.Func) int {
	if sig, ok := fn.Type().(*types.Signature); ok {
		return sig.Results().Len()
	}
	return 0
}

// taintState carries one function's analysis context through the transfer
// functions.
type taintState struct {
	node   *CGNode
	info   *types.Info
	sums   map[*types.Func]*taintSummary
	sum    *taintSummary
	report *ModulePass
	// results are the named result objects, for naked returns.
	results []types.Object
}

// analyzeTaintFunc solves the intra-procedural taint flow for one function
// and returns its refreshed summary. With report set it also emits
// diagnostics at tainted sink calls.
func analyzeTaintFunc(n *CGNode, sums map[*types.Func]*taintSummary, report *ModulePass) *taintSummary {
	st := &taintState{
		node:   n,
		info:   n.Pkg.Info,
		sums:   sums,
		sum:    &taintSummary{ret: make([]uint32, resultCount(n.Fn))},
		report: report,
	}
	st.sum.sink = 0

	boundary := make(taintFacts)
	slot := 0
	seed := func(names []*ast.Ident) {
		for _, name := range names {
			if obj := st.info.Defs[name]; obj != nil {
				boundary.set(obj, paramTaintBit(slot))
			}
			slot++
		}
	}
	if n.Decl.Recv != nil {
		for _, f := range n.Decl.Recv.List {
			seed(f.Names)
			if len(f.Names) == 0 {
				slot++
			}
		}
	}
	if n.Decl.Type.Params != nil {
		for _, f := range n.Decl.Type.Params.List {
			seed(f.Names)
			if len(f.Names) == 0 {
				slot++
			}
		}
	}
	if n.Decl.Type.Results != nil {
		for _, f := range n.Decl.Type.Results.List {
			for _, name := range f.Names {
				if obj := st.info.Defs[name]; obj != nil {
					st.results = append(st.results, obj)
				}
			}
		}
	}

	cfg := n.CFG()
	flow := Flow[taintFacts]{
		Dir:      Forward,
		Boundary: func() taintFacts { return boundary },
		Init:     func() taintFacts { return make(taintFacts) },
		Transfer: func(b *Block, in taintFacts) taintFacts {
			out := in.clone()
			for _, nd := range b.Nodes {
				st.apply(nd, out, false)
			}
			return out
		},
		Join:  taintJoin,
		Equal: taintEqual,
	}
	in := Solve(cfg, flow)

	// Collection pass over the solved facts: summaries (returns, sink
	// contributions) and, when reporting, diagnostics.
	for _, b := range cfg.Blocks {
		facts := in[b].clone()
		for _, nd := range b.Nodes {
			st.apply(nd, facts, true)
		}
	}
	return st.sum
}

// apply transfers one CFG node over facts. With collect set it also folds
// returns and sink hits into the summary (and diagnostics, if reporting).
func (st *taintState) apply(n ast.Node, facts taintFacts, collect bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		st.applyAssign(n, facts, collect)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) == 1 && len(vs.Names) > 1 {
					masks := st.evalMulti(vs.Values[0], len(vs.Names), facts, collect)
					for i, name := range vs.Names {
						facts.set(st.info.Defs[name], masks[i])
					}
					continue
				}
				for i, name := range vs.Names {
					mask := uint32(0)
					if i < len(vs.Values) {
						mask = st.eval(vs.Values[i], facts, collect)
					}
					facts.set(st.info.Defs[name], mask)
				}
			}
		}
	case *ast.RangeStmt:
		xMask := st.eval(n.X, facts, collect)
		mask := xMask
		if tv, ok := st.info.Types[n.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				mask |= taintOrder
			}
		}
		for _, lhs := range []ast.Expr{n.Key, n.Value} {
			if lhs == nil {
				continue
			}
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				obj := st.info.Defs[id]
				if obj == nil {
					obj = st.info.Uses[id]
				}
				facts.set(obj, mask)
			} else if root := rootIdent(lhs); root != nil {
				facts.merge(st.lookupObj(root), mask)
			}
		}
	case *ast.ReturnStmt:
		if collect {
			st.collectReturn(n, facts)
		} else {
			for _, r := range n.Results {
				st.eval(r, facts, false)
			}
		}
	case *ast.ExprStmt:
		st.eval(n.X, facts, collect)
	case *ast.SendStmt:
		st.eval(n.Chan, facts, collect)
		st.eval(n.Value, facts, collect)
	case *ast.GoStmt:
		st.eval(n.Call, facts, collect)
	case *ast.DeferStmt:
		st.eval(n.Call, facts, collect)
	case *ast.IncDecStmt:
		st.eval(n.X, facts, collect)
	case *ast.LabeledStmt:
		// Lowered by the CFG builder; nothing to transfer.
	case ast.Expr:
		st.eval(n, facts, collect)
	}
}

func (st *taintState) collectReturn(n *ast.ReturnStmt, facts taintFacts) {
	if len(n.Results) == 0 {
		for i, obj := range st.results {
			if i < len(st.sum.ret) {
				st.sum.ret[i] |= facts[obj]
			}
		}
		return
	}
	if len(n.Results) == 1 && len(st.sum.ret) > 1 {
		masks := st.evalMulti(n.Results[0], len(st.sum.ret), facts, true)
		for i := range st.sum.ret {
			st.sum.ret[i] |= masks[i]
		}
		return
	}
	for i, r := range n.Results {
		mask := st.eval(r, facts, true)
		if i < len(st.sum.ret) {
			st.sum.ret[i] |= mask
		}
	}
}

func (st *taintState) applyAssign(n *ast.AssignStmt, facts taintFacts, collect bool) {
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		masks := st.evalMulti(n.Rhs[0], len(n.Lhs), facts, collect)
		for i, lhs := range n.Lhs {
			st.assignTo(lhs, masks[i], facts, n.Tok == token.DEFINE)
		}
		return
	}
	for i, rhs := range n.Rhs {
		mask := st.eval(rhs, facts, collect)
		if i >= len(n.Lhs) {
			continue
		}
		if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
			// Compound assignment (+= etc.) keeps the old taint.
			mask |= st.eval(n.Lhs[i], facts, false)
		}
		st.assignTo(n.Lhs[i], mask, facts, n.Tok == token.DEFINE)
	}
}

// assignTo updates facts for one lvalue: strong update for a plain
// identifier, weak (taint-adding) update through fields, indexes, and
// dereferences — writing a clean value into one field does not launder
// the rest of the struct.
func (st *taintState) assignTo(lhs ast.Expr, mask uint32, facts taintFacts, define bool) {
	switch v := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if v.Name == "_" {
			return
		}
		obj := st.info.Defs[v]
		if obj == nil {
			obj = st.info.Uses[v]
		}
		facts.set(obj, mask)
	default:
		if root := rootIdent(lhs); root != nil {
			facts.merge(st.lookupObj(root), mask)
		}
	}
	_ = define
}

func (st *taintState) lookupObj(id *ast.Ident) types.Object {
	if obj := st.info.Uses[id]; obj != nil {
		return obj
	}
	return st.info.Defs[id]
}

// eval computes the taint mask of an expression, applying call side
// effects (pointer-argument tainting for unknown callees, sort clearing)
// to facts as it goes.
func (st *taintState) eval(e ast.Expr, facts taintFacts, collect bool) uint32 {
	if e == nil {
		return 0
	}
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return facts[st.lookupObj(v)]
	case *ast.BasicLit, *ast.FuncLit:
		return 0
	case *ast.SelectorExpr:
		// Qualified identifier (pkg.Var) or field read: taint of the root.
		if root := rootIdent(v); root != nil {
			return facts[st.lookupObj(root)]
		}
		return st.eval(v.X, facts, collect)
	case *ast.IndexExpr:
		return st.eval(v.X, facts, collect) | st.eval(v.Index, facts, collect)
	case *ast.SliceExpr:
		return st.eval(v.X, facts, collect)
	case *ast.StarExpr:
		return st.eval(v.X, facts, collect)
	case *ast.UnaryExpr:
		return st.eval(v.X, facts, collect)
	case *ast.BinaryExpr:
		return st.eval(v.X, facts, collect) | st.eval(v.Y, facts, collect)
	case *ast.KeyValueExpr:
		return st.eval(v.Value, facts, collect)
	case *ast.CompositeLit:
		mask := uint32(0)
		for _, elt := range v.Elts {
			mask |= st.eval(elt, facts, collect)
		}
		return mask
	case *ast.TypeAssertExpr:
		return st.eval(v.X, facts, collect)
	case *ast.CallExpr:
		masks := st.evalCall(v, 1, facts, collect)
		return masks[0]
	}
	return 0
}

// evalMulti evaluates an expression expected to yield n values (a
// multi-result call, or a map/type-assert comma-ok form).
func (st *taintState) evalMulti(e ast.Expr, n int, facts taintFacts, collect bool) []uint32 {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		return st.evalCall(call, n, facts, collect)
	}
	masks := make([]uint32, n)
	m := st.eval(e, facts, collect)
	for i := range masks {
		masks[i] = m
	}
	return masks
}

// wallSourcePkgs are packages whose every call yields wall-clock taint.
var wallSourcePkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// evalCall models one call: source detection, summary expansion for
// module callees, the conservative unknown-callee rule, sink checks, and
// sort-clears. It returns n result masks.
func (st *taintState) evalCall(call *ast.CallExpr, n int, facts taintFacts, collect bool) []uint32 {
	masks := make([]uint32, n)
	if n == 0 {
		masks = make([]uint32, 1)
	}

	// Type conversions pass taint through.
	if fun := ast.Unparen(call.Fun); len(call.Args) == 1 {
		if tv, ok := st.info.Types[fun]; ok && tv.IsType() {
			m := st.eval(call.Args[0], facts, collect)
			for i := range masks {
				masks[i] = m
			}
			return masks
		}
	}

	// Builtins: append/copy propagate, len/cap/make/new are clean.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := st.info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "append":
				m := uint32(0)
				for _, a := range call.Args {
					m |= st.eval(a, facts, collect)
				}
				masks[0] = m
			case "min", "max":
				m := uint32(0)
				for _, a := range call.Args {
					m |= st.eval(a, facts, collect)
				}
				masks[0] = m
			default:
				for _, a := range call.Args {
					st.eval(a, facts, collect)
				}
			}
			return masks
		}
	}

	callee := calleeFunc(st.info, call)

	// Wall-clock and PRNG sources.
	if callee != nil && callee.Pkg() != nil {
		path := callee.Pkg().Path()
		if path == "time" && bannedTimeFuncs[callee.Name()] {
			for _, a := range call.Args {
				st.eval(a, facts, collect)
			}
			for i := range masks {
				masks[i] = taintWall
			}
			return masks
		}
		if wallSourcePkgs[path] {
			for _, a := range call.Args {
				st.eval(a, facts, collect)
			}
			for i := range masks {
				masks[i] = taintWall
			}
			return masks
		}
		// Sorting establishes a deterministic order: clear the order bit
		// on the sorted value.
		if path == "sort" || path == "slices" {
			for _, a := range call.Args {
				st.eval(a, facts, collect)
				if root := rootIdent(a); root != nil {
					if obj := st.lookupObj(root); obj != nil && facts[obj]&taintOrder != 0 {
						facts.set(obj, facts[obj]&^taintOrder)
					}
				}
			}
			return masks
		}
	}

	// Argument masks aligned to parameter slots (receiver = slot 0).
	argMasks, slotOf := st.callSlots(call, callee, facts, collect)

	// Sink checks.
	if sink := matchTaintSink(callee); sink != nil && sink.arg < len(call.Args) {
		mask := st.eval(call.Args[sink.arg], facts, false)
		st.sinkHit(call, callee, mask, "", collect)
	}
	if callee != nil {
		if sum, ok := st.sums[callee]; ok && sum.sink != 0 {
			mask := uint32(0)
			for slot, m := range argMasks {
				if sum.sink&paramTaintBit(slot) != 0 {
					mask |= m
				}
			}
			st.sinkHit(call, callee, mask, sum.via, collect)
		}
	}

	// Result masks.
	if callee != nil {
		if sum, ok := st.sums[callee]; ok {
			for i := range masks {
				if i < len(sum.ret) {
					masks[i] = st.expandMask(sum.ret[i], argMasks)
				}
			}
			return masks
		}
	}

	// Unknown callee (stdlib or unresolved): results carry the union of
	// argument taint, and writable (pointer-shaped) arguments absorb it —
	// fmt.Fprintf(&buf, time.Now()) taints buf.
	union := uint32(0)
	for _, m := range argMasks {
		union |= m
	}
	for i, a := range call.Args {
		_ = i
		if !writableArg(st.info, a) {
			continue
		}
		if root := rootIdent(a); root != nil {
			facts.merge(st.lookupObj(root), union)
		}
	}
	_ = slotOf
	for i := range masks {
		masks[i] = union
	}
	return masks
}

// callSlots evaluates the call's receiver and arguments into
// parameter-slot-aligned masks. slotOf maps call.Args index → slot.
func (st *taintState) callSlots(call *ast.CallExpr, callee *types.Func, facts taintFacts, collect bool) ([]uint32, []int) {
	var masks []uint32
	hasRecv := false
	if callee != nil {
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
			hasRecv = true
		}
	}
	if hasRecv {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			masks = append(masks, st.eval(sel.X, facts, collect))
		} else {
			masks = append(masks, 0)
		}
	}
	slotOf := make([]int, len(call.Args))
	for i, a := range call.Args {
		slotOf[i] = len(masks)
		masks = append(masks, st.eval(a, facts, collect))
	}
	return masks, slotOf
}

// expandMask substitutes the caller's argument masks into a summary mask:
// intrinsic bits pass through, parameter bits become the corresponding
// argument's mask (which may itself contain the caller's parameter bits —
// that is what propagates taint up a call chain).
func (st *taintState) expandMask(mask uint32, argMasks []uint32) uint32 {
	out := mask & taintIntrinsic
	for slot, m := range argMasks {
		if mask&paramTaintBit(slot) != 0 {
			out |= m
		}
	}
	return out
}

// sinkHit processes a tainted mask arriving at a sink call: intrinsic
// taint is reported here; parameter taint promotes this function into a
// sink wrapper (recorded in the summary so callers are checked).
func (st *taintState) sinkHit(call *ast.CallExpr, callee *types.Func, mask uint32, via string, collect bool) {
	if !collect || mask == 0 {
		return
	}
	chain := callee.FullName()
	if via != "" {
		chain += " via " + via
	}
	if mask&taintIntrinsic != 0 && st.report != nil {
		st.report.Reportf(call.Pos(),
			"%s value reaches deterministic output sink %s: simulated results must not depend on it (derive from sim time / simrand, or //lint:allow simtaint for intentional wall-clock fields)",
			taintKinds(mask), chain)
	}
	if param := mask &^ taintIntrinsic; param != 0 {
		st.sum.sink |= param
		if st.sum.via == "" {
			st.sum.via = chain
		}
	}
}

func taintKinds(mask uint32) string {
	var kinds []string
	if mask&taintWall != 0 {
		kinds = append(kinds, "wall-clock/PRNG-derived")
	}
	if mask&taintOrder != 0 {
		kinds = append(kinds, "map-iteration-ordered")
	}
	if len(kinds) == 0 {
		return "tainted"
	}
	return strings.Join(kinds, " and ")
}

// writableArg reports whether an argument could be mutated by the callee:
// an explicit address-of, or a pointer/slice/map/chan-typed value.
func writableArg(info *types.Info, a ast.Expr) bool {
	if u, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && u.Op == token.AND {
		return true
	}
	tv, ok := info.Types[a]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}
