package analyzers

import (
	"testing"
)

// TestHotAllocFixtureModule runs the compiler-backed analyzer over the
// standalone fixture module: the violating region produces exactly one
// finding at the compiler-reported position; the clean region, the
// unannotated allocator, and the allowed escape produce none.
func TestHotAllocFixtureModule(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build")
	}
	m, err := LoadModule("testdata/hotallocmod", []string{"./..."})
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	diags, err := m.Analyze([]*ModuleAnalyzer{HotAlloc})
	if err != nil {
		t.Fatalf("hotalloc: %v", err)
	}
	assertDiags(t, diags, []string{
		"hot.go:12:10 hotalloc", // new(int) escapes in BadHot
	})
	if !diagsMention(diags, "BadHot") {
		t.Errorf("the finding should name the annotated region: %q", diagKeys(diags))
	}
	if !diagsMention(diags, "escapes to heap") {
		t.Errorf("the finding should quote the compiler diagnostic: %q", diagKeys(diags))
	}
}
