// Package analyzers is the project-invariant static analysis suite behind
// cmd/dcnrlint.
//
// The repository's last two PRs each fixed a latent bug that a
// project-specific static check would have caught at review time: an
// unsynchronized sim.After racing on the DES event heap, and Store.Get
// assuming sorted input after ReadJSON. The paper this repo reproduces is a
// measurement study, so the simulator must stay deterministic and
// reproducible — an invariant the compiler cannot express. Each analyzer
// here encodes one such invariant:
//
//   - simdeterminism: simulation packages must not read the wall clock or
//     math/rand, and must not emit map-iteration-ordered output.
//   - heaplock: des.Simulator mutations on a mutex-owning struct must
//     happen with the mutex held (the PR-2 race class).
//   - obsnilsafe: obs metrics must be wired through the nil-safe Registry,
//     never constructed or copied by value.
//   - errchecklite: I/O-shaped error returns (ReadJSON, serve loops, file
//     and network calls) must not be silently discarded.
//
// The suite is standard library only: go/parser + go/types + go/importer,
// with package discovery and export data supplied by `go list`. Findings
// are suppressed by a `//lint:allow <analyzer> [reason]` comment on the
// flagged line or the line directly above it.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned for editors (file:line:col).
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// Analyzer is one project-invariant check. Run inspects the type-checked
// package in pass and reports findings through pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name>` suppression comments.
	Name string
	// Doc is a one-line description for `dcnrlint -list`.
	Doc string
	// Contract is the longer invariant statement printed by
	// `dcnrlint -explain <name>`, with a pointer to an example fixture.
	Contract string
	// Run performs the check.
	Run func(*Pass)
}

// All is the analyzer catalog, in the order the driver runs them.
var All = []*Analyzer{SimDeterminism, HeapLock, ObsNilSafe, ErrCheckLite}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// allow maps "file:line" to the set of analyzer names suppressed
	// there (the wildcard "*" suppresses every analyzer).
	allow map[string]map[string]bool
	// diags collects findings across analyzers for the package.
	diags *[]Diagnostic
}

// AllowDirective is the comment prefix that suppresses a finding.
const AllowDirective = "//lint:allow"

// buildAllow indexes every `//lint:allow` comment by file:line.
func buildAllow(fset *token.FileSet, files []*ast.File) map[string]map[string]bool {
	allow := make(map[string]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, AllowDirective)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				if allow[key] == nil {
					allow[key] = make(map[string]bool)
				}
				allow[key][fields[0]] = true
			}
		}
	}
	return allow
}

// allowed reports whether the analyzer is suppressed at the given position:
// a directive on the flagged line itself, or alone on the line above.
func (p *Pass) allowed(pos token.Position) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		set := p.allow[fmt.Sprintf("%s:%d", pos.Filename, line)]
		if set != nil && (set[p.Analyzer.Name] || set["*"]) {
			return true
		}
	}
	return false
}

// Reportf records a finding at pos unless an allow directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allowed(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzers runs every analyzer in list over one type-checked package
// and returns the findings sorted by position.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, list []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	allow := buildAllow(fset, files)
	for _, a := range list {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			allow:    allow,
			diags:    &diags,
		}
		a.Run(pass)
	}
	sortDiagnostics(diags)
	return diags
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// calleeFunc resolves the statically-known callee of a call expression, or
// nil for calls through function values, builtins, and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether fn is the package-level function (or method)
// path.name.
func isPkgFunc(fn *types.Func, path, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == path && fn.Name() == name
}
