package analyzers

import (
	"fmt"
	"go/token"
	"path/filepath"
	"time"
)

// module.go is the inter-procedural layer of the suite: a Module bundles
// every type-checked package of one `go list` invocation, builds the
// call graph lazily, and runs ModuleAnalyzers — checks whose facts flow
// across function (and package) boundaries, unlike the per-package
// Analyzer kind in analyzers.go.

// Module is the whole analyzed package set, loaded once and shared by the
// per-package and module-wide analyzers.
type Module struct {
	Dir  string
	Fset *token.FileSet
	Pkgs []*Package

	graph *CallGraph
	allow map[string]map[string]bool
}

// LoadModule loads and type-checks the packages matching patterns
// (relative to dir) into a Module.
func LoadModule(dir string, patterns []string) (*Module, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	return NewModule(dir, pkgs), nil
}

// NewModule wraps already-loaded packages (they must share one FileSet,
// as Load guarantees) into a Module.
func NewModule(dir string, pkgs []*Package) *Module {
	m := &Module{Dir: dir, Pkgs: pkgs}
	if len(pkgs) > 0 {
		m.Fset = pkgs[0].Fset
	} else {
		m.Fset = token.NewFileSet()
	}
	m.allow = make(map[string]map[string]bool)
	for _, p := range pkgs {
		for key, set := range buildAllow(p.Fset, p.Files) {
			if m.allow[key] == nil {
				m.allow[key] = make(map[string]bool)
			}
			for name := range set {
				m.allow[key][name] = true
			}
		}
	}
	return m
}

// Graph returns the module call graph, building it on first use.
func (m *Module) Graph() *CallGraph {
	if m.graph == nil {
		m.graph = buildCallGraph(m)
	}
	return m.graph
}

// allowedAt reports whether analyzer name is suppressed at position by a
// `//lint:allow` directive on the line or the line above.
func (m *Module) allowedAt(pos token.Position, name string) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		set := m.allow[fmt.Sprintf("%s:%d", pos.Filename, line)]
		if set != nil && (set[name] || set["*"]) {
			return true
		}
	}
	return false
}

// ModuleAnalyzer is one inter-procedural check. Run inspects the whole
// module through pass and reports findings through pass.Reportf; it
// returns an error only for infrastructure failures (a compiler
// invocation that failed, not a finding).
type ModuleAnalyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name>` suppression comments.
	Name string
	// Doc is a one-line description for `dcnrlint -list`.
	Doc string
	// Contract is the longer invariant statement printed by
	// `dcnrlint -explain <name>`, with a pointer to an example fixture.
	Contract string
	Run      func(*ModulePass) error
}

// AllModule is the module-analyzer catalog run by default. HotAlloc is
// deliberately not in it: it shells out to the compiler, so the driver
// runs it only behind -hot (`make lint-hot`).
var AllModule = []*ModuleAnalyzer{SimTaint, LockFlow}

// ModuleByName returns the module analyzer (including HotAlloc) with the
// given name, or nil.
func ModuleByName(name string) *ModuleAnalyzer {
	for _, a := range append([]*ModuleAnalyzer{HotAlloc}, AllModule...) {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// ModulePass hands the module to one analyzer.
type ModulePass struct {
	Analyzer *ModuleAnalyzer
	Mod      *Module

	diags *[]Diagnostic
}

// Reportf records a finding at pos unless an allow directive covers it.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.reportAt(p.Mod.Fset.Position(pos), format, args...)
}

// reportAt records a finding at an already-resolved position — the path
// hotalloc uses for compiler-reported diagnostics that never had a
// token.Pos in our FileSet.
func (p *ModulePass) reportAt(position token.Position, format string, args ...any) {
	if p.Mod.allowedAt(position, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyze runs the module analyzers and returns findings sorted by
// position. Infrastructure errors abort the run.
func (m *Module) Analyze(list []*ModuleAnalyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range list {
		pass := &ModulePass{Analyzer: a, Mod: m, diags: &diags}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// AnalyzePackages runs per-package analyzers over every package.
func (m *Module) AnalyzePackages(list []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range m.Pkgs {
		diags = append(diags, pkg.Analyze(list)...)
	}
	sortDiagnostics(diags)
	return diags
}

// Timing is one analyzer's (or the loader's) wall cost, reported by
// RunModule so `make lint` can keep lint latency visible.
type Timing struct {
	Name string
	Wall time.Duration
}

// RunModule is the full driver pipeline: load the module once, run the
// per-package analyzers and the module analyzers over it, and return
// findings sorted by position with file paths relative to dir where
// possible, plus per-stage wall timings.
func RunModule(dir string, patterns []string, pkgList []*Analyzer, modList []*ModuleAnalyzer) ([]Diagnostic, []Timing, error) {
	var timings []Timing
	start := time.Now()
	m, err := LoadModule(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	timings = append(timings, Timing{Name: "load", Wall: time.Since(start)})

	var diags []Diagnostic
	for _, a := range pkgList {
		start = time.Now()
		for _, pkg := range m.Pkgs {
			diags = append(diags, pkg.Analyze([]*Analyzer{a})...)
		}
		timings = append(timings, Timing{Name: a.Name, Wall: time.Since(start)})
	}
	for _, a := range modList {
		start = time.Now()
		d, err := m.Analyze([]*ModuleAnalyzer{a})
		if err != nil {
			return nil, timings, err
		}
		diags = append(diags, d...)
		timings = append(timings, Timing{Name: a.Name, Wall: time.Since(start)})
	}

	if abs, err := filepath.Abs(dir); err == nil {
		for i := range diags {
			if rel, err := filepath.Rel(abs, diags[i].File); err == nil && filepath.IsLocal(rel) {
				diags[i].File = rel
			}
		}
	}
	sortDiagnostics(diags)
	return diags, timings, nil
}
