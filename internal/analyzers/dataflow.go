package analyzers

// dataflow.go is the generic worklist solver behind the v2 analyzers:
// a monotone dataflow framework over the CFGs built by cfg.go. An
// analyzer supplies the lattice (Join/Equal), the boundary and initial
// facts, and a Transfer function; Solve iterates blocks to a fixpoint and
// returns the fact flowing INTO each block. Analyzers then replay
// Transfer over the solved in-facts to visit each statement with precise
// state (the standard solve-then-report pattern), which keeps reporting
// out of the fixpoint loop.

// Direction selects forward (entry→exit) or backward (exit→entry)
// propagation.
type Direction int

const (
	Forward Direction = iota
	Backward
)

// Flow defines one monotone dataflow problem.
type Flow[F any] struct {
	Dir Direction
	// Boundary produces the fact at the graph boundary: the entry block's
	// in-fact (Forward) or the exit block's in-fact (Backward).
	Boundary func() F
	// Init produces the starting fact for every other block edge — the
	// lattice bottom for may-analyses, top for must-analyses.
	Init func() F
	// Transfer applies the block's statements to an incoming fact and
	// returns the outgoing fact. It must not mutate its argument.
	Transfer func(*Block, F) F
	// Join combines facts where edges meet. It must not mutate its
	// arguments.
	Join func(F, F) F
	// Equal reports lattice equality; the fixpoint stops when no block's
	// out-fact changes.
	Equal func(F, F) bool
}

// Solve iterates the problem to a fixpoint and returns the in-fact of
// every block: the state on entry to the block along f.Dir.
func Solve[F any](c *CFG, f Flow[F]) map[*Block]F {
	in := make(map[*Block]F, len(c.Blocks))
	out := make(map[*Block]F, len(c.Blocks))
	for _, b := range c.Blocks {
		out[b] = f.Init()
	}

	boundary := c.Blocks[0]
	sources := func(b *Block) []*Block { return b.Preds }
	targets := func(b *Block) []*Block { return b.Succs }
	if f.Dir == Backward {
		boundary = c.Exit
		sources, targets = targets, sources
	}

	// Worklist seeded with every block so unreachable code is still
	// transferred once (reporting passes want to see dead statements).
	work := make([]*Block, len(c.Blocks))
	copy(work, c.Blocks)
	queued := make([]bool, len(c.Blocks))
	for i := range queued {
		queued[i] = true
	}
	pop := func() *Block {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false
		return b
	}
	push := func(b *Block) {
		if !queued[b.Index] {
			queued[b.Index] = true
			work = append(work, b)
		}
	}

	for len(work) > 0 {
		b := pop()
		fact := f.Init()
		if b == boundary {
			fact = f.Join(fact, f.Boundary())
		}
		for _, p := range sources(b) {
			fact = f.Join(fact, out[p])
		}
		in[b] = fact
		next := f.Transfer(b, fact)
		if !f.Equal(next, out[b]) {
			out[b] = next
			for _, s := range targets(b) {
				push(s)
			}
		}
	}
	return in
}
