package analyzers

import (
	"testing"
)

func moduleDiags(t *testing.T, rel string, list []*ModuleAnalyzer) []Diagnostic {
	t.Helper()
	m := loadFixtureModule(t, rel)
	diags, err := m.Analyze(list)
	if err != nil {
		t.Fatalf("analyzing %s: %v", rel, err)
	}
	return diags
}

func TestSimTaintBadFixture(t *testing.T) {
	diags := moduleDiags(t, "simtaint/bad", []*ModuleAnalyzer{SimTaint})
	assertDiags(t, diags, []string{
		"bad.go:18:2 simtaint",  // wall taint through locals into Lane.Record
		"bad.go:30:2 simtaint",  // wall taint via the stamp() helper
		"bad.go:40:2 simtaint",  // tainted call into the sinkWrapper derived sink
		"bad.go:51:16 simtaint", // map-order taint into Store.Add
	})
	if !diagsMention(diags, "wall-clock") {
		t.Errorf("wall diagnostics should name the taint kind: %q", diagKeys(diags))
	}
	if !diagsMention(diags, "map-iteration-ordered") {
		t.Errorf("the Store.Add diagnostic should name map-order taint: %q", diagKeys(diags))
	}
	if !diagsMention(diags, "sinkWrapper") {
		t.Errorf("the derived-sink diagnostic should name the wrapper chain: %q", diagKeys(diags))
	}
}

func TestSimTaintGoodFixture(t *testing.T) {
	assertDiags(t, moduleDiags(t, "simtaint/good", []*ModuleAnalyzer{SimTaint}), nil)
}

// TestSimTaintRegression is the seeded-mutation proof: the package is
// outside simdeterminism's import-scope, so the old syntactic analyzer
// reports nothing, while the taint engine follows the wall-clock value
// through two helpers into the journal encoder.
func TestSimTaintRegression(t *testing.T) {
	pkg := loadFixture(t, "simtaint/regression")
	assertDiags(t, pkg.Analyze([]*Analyzer{SimDeterminism}), nil)

	diags := moduleDiags(t, "simtaint/regression", []*ModuleAnalyzer{SimTaint})
	assertDiags(t, diags, []string{
		"regression.go:29:2 simtaint",
	})
	if !diagsMention(diags, "Record") {
		t.Errorf("the diagnostic should name the journal sink: %q", diagKeys(diags))
	}
}

func TestLockFlowBadFixture(t *testing.T) {
	// heaplock sees nothing here: the helper carries an allow directive,
	// the alias defeats the syntax match, and the conditional lock fools
	// the lexical scan.
	pkg := loadFixture(t, "lockflow/bad")
	assertDiags(t, pkg.Analyze([]*Analyzer{HeapLock}), nil)

	diags := moduleDiags(t, "lockflow/bad", []*ModuleAnalyzer{LockFlow})
	assertDiags(t, diags, []string{
		"bad.go:30:2 lockflow",       // helperB, reached via Submit -> helperA
		"bad.go:37:2 lockflow",       // aliased simulator pointer
		"bad.go:48:2 lockflow",       // conditional lock, must-join says unheld
		"bad_serve.go:25:2 lockflow", // Register in helper, reached via Mount -> mount
		"bad_serve.go:32:9 lockflow", // aliased server pointer, unlocked Start
	})
	if !diagsMention(diags, "Submit -> helperA -> helperB") {
		t.Errorf("the helperB diagnostic should carry the unlocked caller chain: %q", diagKeys(diags))
	}
	if !diagsMention(diags, "Mount -> mount") {
		t.Errorf("the Register diagnostic should carry the unlocked caller chain: %q", diagKeys(diags))
	}
	if !diagsMention(diags, "serve.Server.Start") {
		t.Errorf("the Start diagnostic should name the serve mutator: %q", diagKeys(diags))
	}
}

func TestLockFlowGoodFixture(t *testing.T) {
	assertDiags(t, moduleDiags(t, "lockflow/good", []*ModuleAnalyzer{LockFlow}), nil)
}

// TestLockFlowRegression reintroduces the exact PR-2 Engine.Submit race
// two calls deep: heaplock is blind (per-method + allow directive);
// lockflow names the unlocked path.
func TestLockFlowRegression(t *testing.T) {
	pkg := loadFixture(t, "lockflow/regression")
	assertDiags(t, pkg.Analyze([]*Analyzer{HeapLock}), nil)

	diags := moduleDiags(t, "lockflow/regression", []*ModuleAnalyzer{LockFlow})
	assertDiags(t, diags, []string{
		"regression.go:35:2 lockflow",
	})
	if !diagsMention(diags, "Submit -> schedule -> enqueue") {
		t.Errorf("the diagnostic should carry the Submit -> schedule -> enqueue path: %q", diagKeys(diags))
	}
}

func TestModuleByName(t *testing.T) {
	for _, a := range append([]*ModuleAnalyzer{HotAlloc}, AllModule...) {
		if ModuleByName(a.Name) != a {
			t.Errorf("ModuleByName(%q) did not return the analyzer", a.Name)
		}
		if a.Contract == "" {
			t.Errorf("%s needs a Contract for -explain", a.Name)
		}
	}
	if ModuleByName("nope") != nil {
		t.Errorf("ModuleByName on unknown name should be nil")
	}
	for _, a := range All {
		if a.Contract == "" {
			t.Errorf("%s needs a Contract for -explain", a.Name)
		}
	}
}
