package analyzers

import (
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// fixtureDeps are the packages the testdata fixtures may import. Export
// data for them (and, via -deps, everything they import) backs the type
// checker, so fixtures type-check exactly like real code.
var fixtureDeps = []string{
	"dcnr/internal/des", "dcnr/internal/obs", "dcnr/internal/obs/health",
	"dcnr/internal/obs/journal", "dcnr/internal/obs/timeline",
	"dcnr/internal/serve", "dcnr/internal/sev", "dcnr/internal/simrand",
	"bytes", "fmt", "io", "log/slog", "math/rand", "net", "net/http",
	"os", "sort", "sync", "time",
}

var fixtureEnv struct {
	once sync.Once
	fset *token.FileSet
	imp  types.Importer
	err  error
}

func fixtureImporter(t *testing.T) (*token.FileSet, types.Importer) {
	t.Helper()
	fixtureEnv.once.Do(func() {
		pkgs, err := goList(".", fixtureDeps)
		if err != nil {
			fixtureEnv.err = err
			return
		}
		exports := make(map[string]string)
		for _, p := range pkgs {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
		fixtureEnv.fset = token.NewFileSet()
		fixtureEnv.imp = importer.ForCompiler(fixtureEnv.fset, "gc", func(path string) (io.ReadCloser, error) {
			file, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("fixture importer: no export data for %q", path)
			}
			return os.Open(file)
		})
	})
	if fixtureEnv.err != nil {
		t.Fatalf("loading fixture dependencies: %v", fixtureEnv.err)
	}
	return fixtureEnv.fset, fixtureEnv.imp
}

// loadFixture parses and type-checks one fixture package directory under
// testdata/src.
func loadFixture(t *testing.T, rel string) *Package {
	t.Helper()
	fset, imp := fixtureImporter(t)
	dir := filepath.Join("testdata", "src", rel)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	lp := &listPackage{ImportPath: "fixture/" + rel, Dir: dir}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			lp.GoFiles = append(lp.GoFiles, e.Name())
		}
	}
	pkg, err := typeCheck(fset, imp, lp)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", rel, err)
	}
	return pkg
}

// diagKeys renders diagnostics as "file:line:col analyzer" for exact
// position assertions.
func diagKeys(diags []Diagnostic) []string {
	out := make([]string, 0, len(diags))
	for _, d := range diags {
		out = append(out, fmt.Sprintf("%s:%d:%d %s", filepath.Base(d.File), d.Line, d.Col, d.Analyzer))
	}
	return out
}

func assertDiags(t *testing.T, diags []Diagnostic, want []string) {
	t.Helper()
	got := diagKeys(diags)
	if len(got) != len(want) {
		t.Fatalf("diagnostics mismatch:\ngot  %q\nwant %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSimDeterminismBadFixture(t *testing.T) {
	pkg := loadFixture(t, "simdeterminism/bad")
	diags := pkg.Analyze([]*Analyzer{SimDeterminism})
	assertDiags(t, diags, []string{
		"bad.go:8:2 simdeterminism",  // import "math/rand"
		"bad.go:16:7 simdeterminism", // time.Now()
		"bad.go:27:3 simdeterminism", // append in map range, never sorted
		"bad.go:35:3 simdeterminism", // fmt.Println in map range
		"bad.go:42:3 simdeterminism", // channel send in map range
	})
	for _, sub := range []string{"math/rand", "time.Now", "never sorted", "fmt.Println", "channel send"} {
		if !diagsMention(diags, sub) {
			t.Errorf("no diagnostic mentions %q", sub)
		}
	}
}

func TestSimDeterminismGoodFixture(t *testing.T) {
	pkg := loadFixture(t, "simdeterminism/good")
	assertDiags(t, pkg.Analyze([]*Analyzer{SimDeterminism}), nil)
}

func TestHeapLockBadFixture(t *testing.T) {
	pkg := loadFixture(t, "heaplock/bad")
	diags := pkg.Analyze([]*Analyzer{HeapLock})
	assertDiags(t, diags, []string{
		"bad.go:22:2 heaplock", // sim.After before Lock
		"bad.go:33:2 heaplock", // sim.Run after Unlock
		"bad.go:39:2 heaplock", // sim.Reset without the lock
	})
	if !diagsMention(diags, "des.Simulator.After") || !diagsMention(diags, "des.Simulator.Run") {
		t.Errorf("diagnostics should name the mutating method: %q", diagKeys(diags))
	}
}

func TestHeapLockGoodFixture(t *testing.T) {
	pkg := loadFixture(t, "heaplock/good")
	assertDiags(t, pkg.Analyze([]*Analyzer{HeapLock}), nil)
}

func TestObsNilSafeBadFixture(t *testing.T) {
	pkg := loadFixture(t, "obsnilsafe/bad")
	diags := pkg.Analyze([]*Analyzer{ObsNilSafe})
	assertDiags(t, diags, []string{
		"bad.go:11:2 obsnilsafe",           // field of value type obs.Counter
		"bad.go:17:6 obsnilsafe",           // obs.Registry{} composite literal
		"bad.go:18:7 obsnilsafe",           // new(obs.Histogram)
		"bad.go:20:10 obsnilsafe",          // &obs.Gauge{} composite literal
		"bad.go:24:13 obsnilsafe",          // parameter of value type obs.Histogram
		"bad_health.go:10:2 obsnilsafe",    // field of value type health.Engine
		"bad_health.go:15:6 obsnilsafe",    // health.Engine{} composite literal
		"bad_health.go:16:9 obsnilsafe",    // new(health.Engine)
		"bad_journal.go:10:2 obsnilsafe",   // field of value type journal.Journal
		"bad_journal.go:15:6 obsnilsafe",   // journal.Journal{} composite literal
		"bad_journal.go:16:9 obsnilsafe",   // new(journal.Journal)
		"bad_journal.go:20:17 obsnilsafe",  // parameter of value type journal.Lane
		"bad_serve.go:10:2 obsnilsafe",     // field of value type serve.Server
		"bad_serve.go:16:6 obsnilsafe",     // serve.Server{} composite literal
		"bad_serve.go:17:9 obsnilsafe",     // new(serve.Server)
		"bad_timeline.go:10:2 obsnilsafe",  // field of value type timeline.Timeline
		"bad_timeline.go:15:6 obsnilsafe",  // timeline.Timeline{} composite literal
		"bad_timeline.go:16:9 obsnilsafe",  // new(timeline.Timeline)
		"bad_timeline.go:20:25 obsnilsafe", // parameter of value type timeline.Lane
	})
	if !diagsMention(diags, "health.New") {
		t.Errorf("engine diagnostics should point at health.New: %q", diagKeys(diags))
	}
	if !diagsMention(diags, "journal.New") {
		t.Errorf("journal diagnostics should point at journal.New: %q", diagKeys(diags))
	}
	if !diagsMention(diags, "timeline.New") {
		t.Errorf("timeline diagnostics should point at timeline.New: %q", diagKeys(diags))
	}
	if !diagsMention(diags, "serve.New") {
		t.Errorf("server diagnostics should point at serve.New: %q", diagKeys(diags))
	}
}

func TestObsNilSafeGoodFixture(t *testing.T) {
	pkg := loadFixture(t, "obsnilsafe/good")
	assertDiags(t, pkg.Analyze([]*Analyzer{ObsNilSafe}), nil)
}

func TestErrCheckLiteBadFixture(t *testing.T) {
	pkg := loadFixture(t, "errchecklite/bad")
	diags := pkg.Analyze([]*Analyzer{ErrCheckLite})
	assertDiags(t, diags, []string{
		"bad.go:16:2 errchecklite", // f.Write
		"bad.go:17:2 errchecklite", // f.Close
		"bad.go:22:2 errchecklite", // fmt.Fprintf to a fallible writer
		"bad.go:28:5 errchecklite", // go serveLoop(...)
	})
	if !diagsMention(diags, "goroutine") {
		t.Errorf("the go-statement diagnostic should mention the goroutine: %q", diagKeys(diags))
	}
}

func TestErrCheckLiteGoodFixture(t *testing.T) {
	pkg := loadFixture(t, "errchecklite/good")
	assertDiags(t, pkg.Analyze([]*Analyzer{ErrCheckLite}), nil)
}

// TestAllowDirectiveScope pins the suppression contract: same line and
// line-above suppress, two lines above does not, and the analyzer name
// must match.
func TestAllowDirectiveScope(t *testing.T) {
	pkg := loadFixture(t, "simdeterminism/good")
	// The good fixture relies on same-line directives; a full run of every
	// analyzer over it must stay clean.
	assertDiags(t, pkg.Analyze(All), nil)
}

func diagsMention(diags []Diagnostic, sub string) bool {
	for _, d := range diags {
		if strings.Contains(d.Message, sub) {
			return true
		}
	}
	return false
}

func TestByName(t *testing.T) {
	for _, a := range All {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the analyzer", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Errorf("ByName on unknown name should be nil")
	}
}
