package analyzers

import (
	"go/ast"
	"go/types"
)

// ErrCheckLite flags silently discarded errors from I/O, without the full
// generality (or noise) of errcheck: only calls whose failure genuinely
// loses data or hides a dead serve loop are in scope.
//
// A call is I/O-shaped when its final result is error and any of:
//
//   - it is declared in an I/O package (os, io, net, bufio), e.g. a bare
//     f.Close() or conn.Close() statement;
//   - its signature mentions an io or net type (io.Reader/Writer,
//     net.Conn, net.Listener, ...), which covers the project's own
//     Store.ReadJSON/WriteJSON, Monitor.ServePacket, tickets.WriteAll and
//     any future serve loop, wherever it is declared;
//   - it is fmt.Fprint* writing to a fallible writer (writes to
//     bytes.Buffer, strings.Builder, and hash.Hash never fail and are
//     exempt).
//
// Flagged forms are the bare expression statement and the `go` statement
// (a goroutine discarding a serve loop's error hides why serving
// stopped). `defer f.Close()` is idiomatic and exempt, an explicit
// `_ = call()` is treated as a deliberate, reviewed discard, and writes
// directly to os.Stderr/os.Stdout are exempt — there is nowhere to report
// their failure, and the equivalent fmt.Printf is unflaggable anyway.
var ErrCheckLite = &Analyzer{
	Name: "errchecklite",
	Doc:  "I/O and serve-loop errors must be checked or explicitly discarded",
	Contract: `Error returns from I/O-shaped calls (file/network writes, Close,
ReadJSON/WriteJSON, serve loops — including ones spawned in go
statements) must be assigned and checked, or explicitly discarded with
_ =. A measurement pipeline that drops a write error reports truncated
statistics as complete.
Example fixture: internal/analyzers/testdata/src/errchecklite/bad/bad.go`,
	Run: runErrCheckLite,
}

// ioPackages are packages whose error-returning calls are always in scope.
var ioPackages = map[string]bool{
	"os": true, "io": true, "net": true, "bufio": true,
}

// infallibleWriters never return a write error; fmt.Fprint* into them is
// the standard way to build strings and hashes.
var infallibleWriters = map[string]bool{
	"*bytes.Buffer":      true,
	"*strings.Builder":   true,
	"bytes.Buffer":       true,
	"strings.Builder":    true,
	"hash.Hash":          true,
	"hash.Hash32":        true,
	"hash.Hash64":        true,
	"*hash/maphash.Hash": true,
}

func runErrCheckLite(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscardedCall(pass, call, "")
				}
			case *ast.GoStmt:
				checkDiscardedCall(pass, n.Call, " in a goroutine (the serve loop's exit reason is lost)")
				return false
			case *ast.DeferStmt:
				return false
			}
			return true
		})
	}
}

func checkDiscardedCall(pass *Pass, call *ast.CallExpr, context string) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !lastResultIsError(sig) {
		return
	}
	// Method calls on writers that never fail (a hash.Hash64's Write is
	// io.Writer.Write by declaration, but fnv hashes cannot error).
	if sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); okSel && isInfallibleWriter(pass, sel.X) {
		return
	}
	if !ioShaped(pass, fn, sig, call) {
		return
	}
	pass.Reportf(call.Pos(),
		"error from %s discarded%s: check it or assign to _ to discard deliberately",
		fn.Name(), context)
}

func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	t := res.At(res.Len() - 1).Type()
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func ioShaped(pass *Pass, fn *types.Func, sig *types.Signature, call *ast.CallExpr) bool {
	path := fn.Pkg().Path()
	if ioPackages[path] {
		return true
	}
	if path == "fmt" && isFprintName(fn.Name()) {
		return len(call.Args) > 0 &&
			!isInfallibleWriter(pass, call.Args[0]) && !isStdStream(pass, call.Args[0])
	}
	if recv := sig.Recv(); recv != nil && mentionsIONet(recv.Type()) {
		return true
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if mentionsIONet(params.At(i).Type()) {
			return true
		}
	}
	return false
}

func isFprintName(name string) bool {
	switch name {
	case "Fprint", "Fprintf", "Fprintln":
		return true
	}
	return false
}

func isInfallibleWriter(pass *Pass, arg ast.Expr) bool {
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	return infallibleWriters[types.TypeString(tv.Type, nil)]
}

// isStdStream matches the expressions os.Stderr and os.Stdout.
func isStdStream(pass *Pass, arg ast.Expr) bool {
	sel, ok := ast.Unparen(arg).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := pass.Info.Uses[sel.Sel].(*types.Var)
	return ok && v.Pkg() != nil && v.Pkg().Path() == "os" &&
		(v.Name() == "Stderr" || v.Name() == "Stdout")
}

// mentionsIONet reports whether t is (or points to) a named type declared
// in package io or net — the signal that a function performs real I/O.
func mentionsIONet(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == "io" || path == "net"
}
